// Package repro is a Go implementation of the replica placement strategies
// from Li, Gao & Reiter, "Replica Placement for Availability in the Worst
// Case" (ICDCS 2015, DOI 10.1109/ICDCS.2015.67).
//
// The problem: place b objects, each replicated on r of n nodes, so that
// as many objects as possible survive when an adversary — who knows the
// placement — fails the worst possible k nodes. An object fails once s of
// its replicas are on failed nodes.
//
// The library provides:
//
//   - Simple(x, λ) placements (combinatorial t-packings: no x+1 nodes
//     host more than λ common objects), with the Lemma 2 availability
//     lower bound and the Theorem 1 c-competitiveness constants;
//   - Combo placements combining Simple(x, λx) for x = 0..s-1, with the
//     paper's dynamic program for choosing ⟨λx⟩ (PlanCombo);
//   - concrete constructions backed by real Steiner systems (triple
//     systems, quadruple systems, affine/projective/spherical geometries)
//     built from scratch in internal/design;
//   - the Random load-balanced baseline and its worst-case analysis
//     (Vuln, prAvail — Theorem 2, Definition 6, Lemma 4);
//   - an exact/branch-and-bound worst-case adversary for evaluating
//     Avail(π) on concrete placements;
//   - failure-domain topologies of any depth (flat racks, zone→rack,
//     region→zone→rack and deeper, as level-indexed trees), a
//     domain-correlated adversary that fails whole domains of any
//     chosen level (the At variants; Topology.Collapse projects a level
//     to the flat view the shared search core runs on), and a
//     hierarchical domain-aware spreading post-pass
//     (SpreadAcrossDomains) that maps abstract node ids onto physical
//     nodes — optionally under per-rack replica caps — without ever
//     hurting availability under the domain adversary at any level;
//   - a cluster simulation layer (NewCluster) with object lifecycle,
//     failure injection, and adaptive capacity growth.
//
// Quick start:
//
//	spec, bound, _ := repro.PlanCombo(71, 3, 2, 4, 600)   // n, r, s, k, b
//	pl, _ := repro.Materialize(71, 3, spec, 600)
//	avail, _, _ := repro.Avail(pl, 2, 4, 0)               // exact worst case
//	fmt.Println(bound <= int64(avail))                     // always true
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every figure.
package repro

import (
	"io"

	"repro/internal/adversary"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/placement"
	"repro/internal/randplace"
	"repro/internal/topology"
)

// Core model types, re-exported from the placement engine.
type (
	// Params are the system model parameters (n, b, r, s, k) in the
	// paper's notation.
	Params = placement.Params
	// Placement maps objects to replica sets.
	Placement = placement.Placement
	// ComboSpec is a configured Combo(⟨λx⟩) strategy.
	ComboSpec = placement.ComboSpec
	// Unit describes one Simple(x, ·) building block available to Combo.
	Unit = placement.Unit
	// SimpleOptions configures concrete Simple placement construction.
	SimpleOptions = placement.SimpleOptions
	// AttackResult reports a worst-case failure search outcome.
	AttackResult = adversary.Result
	// Topology maps nodes into a level-indexed tree of named failure
	// domains (regions, zones, racks — any depth >= 1).
	Topology = topology.Topology
	// FailureDomain is one named domain of a Topology.
	FailureDomain = topology.Domain
	// SpreadOptions tunes SpreadAcrossDomainsWith (per-domain replica
	// caps at any level, weighted-damage scoring).
	SpreadOptions = placement.SpreadOpts
	// CapCertificate explains why a cap set is unsatisfiable: the named
	// subtree must absorb more replicas than it allows.
	CapCertificate = placement.CapCert
	// DomainAttackResult reports a worst-case correlated (whole-domain)
	// failure search outcome.
	DomainAttackResult = adversary.DomainResult
	// SpreadStats summarizes replica spreading over failure domains.
	SpreadStats = placement.SpreadStats
	// SpreadTelemetry reports the spread pass's candidate-scoring work
	// (exact evaluations, memo hits, warm seeds, instance rebuilds);
	// hand one in via SpreadOptions.Telemetry.
	SpreadTelemetry = placement.SpreadTelemetry
	// AttackSession incrementally re-evaluates the worst case across
	// one-replica re-plans: CSR move deltas instead of instance
	// rebuilds, warm-started search, and exact-damage memoization by
	// canonical placement signature.
	AttackSession = adversary.Session
	// AttackSessionResult is one AttackSession evaluation: the damage,
	// witness, exactness, and which acceleration answered it.
	AttackSessionResult = adversary.SessionResult
	// AttackSessionStats are an AttackSession's lifetime counters.
	AttackSessionStats = adversary.SessionStats
	// AttackOptions are the explicit search options (budget, worker
	// fan-out, pruning bound, object weights) sessions and the With
	// engine variants take.
	AttackOptions = adversary.SearchOpts
	// Controller is the continuous-operation reconcile loop: it owns a
	// placement, consumes topology mutations, and re-plans under a
	// bounded per-step move budget without ever letting worst-case
	// damage exceed the step's pre-migration guarantee, actuating each
	// move through a journaled two-phase machine with crash recovery.
	Controller = controller.Controller
	// ControllerConfig configures NewController (topology, adversary
	// level, move budget, data plane, journal path).
	ControllerConfig = controller.Config
	// ControllerOptions tunes a Controller's actuation (call timeout,
	// retries, backoff) and planning (search options, candidate fan-out).
	ControllerOptions = controller.Options
	// TopologyMutation is one input event to a Controller: drain, fail
	// or restore a node, reweight a node, or cap a domain.
	TopologyMutation = controller.Mutation
	// ReconcileReport is one reconcile step's transcript: baseline,
	// resulting damage, per-move actuation records, and typed outcome.
	ReconcileReport = controller.StepReport
	// Actuator is the pluggable data plane a Controller drives replica
	// moves through (PrepareAdd/CommitAdd/DropOld/Abort).
	Actuator = controller.Actuator
	// Cluster is a simulated storage cluster using these placements.
	Cluster = cluster.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = cluster.Config
	// ClusterStrategy selects a cluster's placement policy.
	ClusterStrategy = cluster.Strategy
)

// Cluster strategies.
const (
	StrategyCombo  = cluster.StrategyCombo
	StrategyRandom = cluster.StrategyRandom
)

// LeafLevel selects the leaf (finest) level of a topology wherever an
// attack level is taken — the default the level-less functions use.
const LeafLevel = topology.Leaf

// PlanCombo chooses the availability-optimal Combo configuration ⟨λx⟩ for
// placing b objects on n nodes (r replicas, fatality threshold s) against
// k worst-case node failures, using the design catalog's best known
// Steiner orders. It returns the spec together with its availability
// lower bound lbAvail_co (Lemma 3): at least that many objects survive
// ANY k node failures under the materialized placement.
func PlanCombo(n, r, s, k, b int) (ComboSpec, int64, error) {
	units, err := placement.DefaultUnits(n, r, s, false)
	if err != nil {
		return ComboSpec{}, 0, err
	}
	return placement.OptimizeCombo(b, k, s, units)
}

// PlanComboConstructible is PlanCombo restricted to Steiner systems this
// library can actually build, so that the resulting spec can be
// materialized by Materialize without greedy fallbacks.
func PlanComboConstructible(n, r, s, k, b int) (ComboSpec, int64, error) {
	units, err := placement.DefaultUnits(n, r, s, true)
	if err != nil {
		return ComboSpec{}, 0, err
	}
	return placement.OptimizeCombo(b, k, s, units)
}

// Materialize builds the concrete placement for a planned Combo spec.
func Materialize(n, r int, spec ComboSpec, b int) (*Placement, error) {
	return placement.BuildCombo(n, r, spec, b, placement.SimpleOptions{})
}

// BuildSimple builds a concrete Simple(x, λ) placement of b objects: an
// (x+1)-(n, r, λ) packing (no x+1 nodes share more than λ objects).
func BuildSimple(n, r, x, lambda, b int, opts SimpleOptions) (*Placement, error) {
	return placement.BuildSimple(n, r, x, lambda, b, opts)
}

// RandomPlacement builds the load-balanced Random baseline placement
// (Definition 4) for the given parameters.
func RandomPlacement(p Params, seed int64) (*Placement, error) {
	return randplace.Generate(p, seed)
}

// Avail computes Avail(π) = b minus the worst-case number of objects an
// adversary can fail with k node failures (Definition 1), via
// branch-and-bound. budget <= 0 searches exhaustively (exact); a positive
// budget bounds the search and the result reports whether it stayed
// exact.
func Avail(pl *Placement, s, k int, budget int64) (int, AttackResult, error) {
	return adversary.Avail(pl, s, k, budget)
}

// WorstAttack returns the most damaging k-node failure found for the
// placement (see Avail for the budget semantics).
func WorstAttack(pl *Placement, s, k int, budget int64) (AttackResult, error) {
	return adversary.WorstCase(pl, s, k, budget)
}

// WorstAttackParallel is WorstAttack fanned out over worker goroutines
// (workers <= 0 selects GOMAXPROCS); workers share the incumbent bound,
// so exact searches often finish super-linearly faster on structured
// placements.
func WorstAttackParallel(pl *Placement, s, k int, budget int64, workers int) (AttackResult, error) {
	return adversary.WorstCaseParallel(pl, s, k, budget, workers)
}

// LowerBoundSimple returns lbAvail_si(x, λ) (Lemma 2): a floor on
// Avail(π) for any Simple(x, λ) placement of b objects.
func LowerBoundSimple(b int64, k, s, x, lambda int) int64 {
	return placement.LBAvailSimple(b, k, s, x, lambda)
}

// LowerBoundCombo returns lbAvail_co(⟨λx⟩) (Lemma 3).
func LowerBoundCombo(b int64, k, s int, lambdas []int) int64 {
	return placement.LBAvailCombo(b, k, s, lambdas)
}

// PrAvail returns the number of objects probably available under Random
// placement facing a worst-case adversary (Definition 6, evaluated with
// the Theorem 2 limit).
func PrAvail(p Params) (int, error) {
	return randplace.PrAvail(p)
}

// UniformTopology spreads n nodes evenly over the given number of racks.
func UniformTopology(n, racks int) (*Topology, error) {
	return topology.Uniform(n, racks)
}

// HierarchicalTopology spreads n nodes over zones×racksPerZone racks
// grouped into zones.
func HierarchicalTopology(n, zones, racksPerZone int) (*Topology, error) {
	return topology.UniformHierarchy(n, zones, racksPerZone)
}

// TreeTopology builds a uniform failure hierarchy of any depth:
// branching is the fan-out per level from the top down, so
// TreeTopology(n, 2, 3, 4) is 2 regions × 3 zones × 4 racks. Use
// Topology.Collapse(level) for the flat view of any level, and the At
// functions below to attack one.
func TreeTopology(n int, branching ...int) (*Topology, error) {
	return topology.UniformTree(n, branching...)
}

// ParseTopology parses the textual topology spec format for n nodes:
// ';'-separated leaf domains, each naming its ancestor chain
// ("rack@zone@region:nodes"). Topology.Spec renders the canonical form
// back.
func ParseTopology(n int, spec string) (*Topology, error) {
	return topology.ParseSpec(n, spec)
}

// SpreadAcrossDomains relabels a placement's abstract node ids onto
// physical nodes so each object's replicas land in maximally distinct
// failure domains. The result is never worse than the input under the
// exact d-whole-domain adversary (the identity mapping competes), and
// node-level availability is unchanged (the node adversary is label
// blind). It returns the relabeled placement and the mapping used.
func SpreadAcrossDomains(pl *Placement, topo *Topology, s, d int) (*Placement, []int, error) {
	return placement.SpreadAcrossDomains(pl, topo, s, d)
}

// SpreadAcrossDomainsWith is SpreadAcrossDomains with explicit options:
// SpreadOptions.Caps bounds the replicas each leaf domain may absorb
// (the never-worse guarantee then holds among cap-feasible layouts).
func SpreadAcrossDomainsWith(pl *Placement, topo *Topology, s, d int, opts SpreadOptions) (*Placement, []int, error) {
	return placement.SpreadAcrossDomainsWith(pl, topo, s, d, opts)
}

// DomainSpread reports per-object domain-spread statistics.
func DomainSpread(pl *Placement, topo *Topology) (SpreadStats, error) {
	return placement.DomainSpread(pl, topo)
}

// CheckCaps decides whether the per-node replica loads can be relabeled
// onto topo's physical slots without any domain's subtree exceeding its
// replica cap, at any level. caps[level][di] caps domain di of that
// level (negative = unlimited; nil caps uses the topology's own cap=
// annotations). It returns either a witness assignment (node → leaf
// domain) proving feasibility, or a human-readable pigeonhole
// certificate naming the violated subtree — never both.
func CheckCaps(topo *Topology, loads []int, caps [][]int) ([]int, *CapCertificate, error) {
	return placement.CheckCaps(topo, loads, caps)
}

// ObjectWeights derives per-object weights from the topology's node
// weights (an object inherits its hottest replica host's weight), the
// vector weighted adversaries consume; nil on unweighted topologies.
func ObjectWeights(pl *Placement, topo *Topology) ([]int64, error) {
	return placement.ObjectWeights(pl, topo)
}

// SumWeights is the weighted analogue of the object count: Σ w (or b
// itself when w is nil), the baseline weighted availability is measured
// against.
func SumWeights(w []int64, b int) int64 {
	return placement.SumWeights(w, b)
}

// WorstDomainAttackWeighted is WorstDomainAttack scoring lost WEIGHT:
// the adversary fails the d whole domains maximizing the failed
// objects' total weight under w (nil = unit weights, reducing to
// WorstDomainAttack). The result's Failed field is lost weight; pair it
// with SumWeights for weighted availability.
func WorstDomainAttackWeighted(pl *Placement, topo *Topology, s, d int, budget int64, w []int64) (DomainAttackResult, error) {
	return adversary.DomainWorstCaseWith(pl, topo, s, d, adversary.SearchOpts{Budget: budget, ObjWeights: w})
}

// WorstAttackWeighted is WorstAttack scoring lost weight (see
// WorstDomainAttackWeighted).
func WorstAttackWeighted(pl *Placement, s, k int, budget int64, w []int64) (AttackResult, error) {
	return adversary.WorstCaseWith(pl, s, k, adversary.SearchOpts{Budget: budget, ObjWeights: w})
}

// DomainAvail computes availability under the worst d whole-domain
// failures (exact when budget <= 0), with its witnessing attack.
func DomainAvail(pl *Placement, topo *Topology, s, d int, budget int64) (int, DomainAttackResult, error) {
	return adversary.DomainAvail(pl, topo, s, d, budget)
}

// DomainAvailAt is DomainAvail with the adversary failing whole domains
// of the given topology level (0 = top, LeafLevel = racks).
func DomainAvailAt(pl *Placement, topo *Topology, level, s, d int, budget int64) (int, DomainAttackResult, error) {
	return adversary.DomainAvailAt(pl, topo, level, s, d, budget)
}

// WorstDomainAttack returns the most damaging d-whole-domain failure
// found (see DomainAvail for budget semantics).
func WorstDomainAttack(pl *Placement, topo *Topology, s, d int, budget int64) (DomainAttackResult, error) {
	return adversary.DomainWorstCase(pl, topo, s, d, budget)
}

// WorstDomainAttackAt is WorstDomainAttack against whole domains of the
// given topology level — fail zones or regions instead of racks with no
// other change; the search core is identical at every level.
func WorstDomainAttackAt(pl *Placement, topo *Topology, level, s, d int, budget int64) (DomainAttackResult, error) {
	return adversary.DomainWorstCaseAt(pl, topo, level, s, d, budget)
}

// WorstDomainAttackParallel is WorstDomainAttack fanned out over worker
// goroutines (workers <= 0 selects GOMAXPROCS, 1 is exactly the serial
// engine); workers share the incumbent bound and budget, so exact
// searches return the same damage as the serial engine, faster — the
// path to take once topologies reach hundreds of domains.
func WorstDomainAttackParallel(pl *Placement, topo *Topology, s, d int, budget int64, workers int) (DomainAttackResult, error) {
	return adversary.DomainWorstCasePar(pl, topo, s, d, budget, workers)
}

// WorstDomainAttackParallelAt is WorstDomainAttackParallel against
// whole domains of the given topology level.
func WorstDomainAttackParallelAt(pl *Placement, topo *Topology, level, s, d int, budget int64, workers int) (DomainAttackResult, error) {
	return adversary.DomainWorstCaseParAt(pl, topo, level, s, d, budget, workers)
}

// WorstConstrainedAttack returns the most damaging k-node failure
// confined to at most d failure domains — the paper's adversary with a
// correlation budget.
func WorstConstrainedAttack(pl *Placement, topo *Topology, s, k, d int, budget int64) (DomainAttackResult, error) {
	return adversary.ConstrainedWorstCase(pl, topo, s, k, d, budget)
}

// WorstConstrainedAttackAt is WorstConstrainedAttack with the blast
// radius counted in whole domains of the given topology level (k node
// failures inside at most d zones, regions, ...).
func WorstConstrainedAttackAt(pl *Placement, topo *Topology, level, s, k, d int, budget int64) (DomainAttackResult, error) {
	return adversary.ConstrainedWorstCaseAt(pl, topo, level, s, k, d, budget)
}

// WorstConstrainedAttackParallel is WorstConstrainedAttack with the
// domain subsets sharded across worker goroutines (workers <= 0 selects
// GOMAXPROCS, 1 is exactly the serial engine), sharing the incumbent
// and budget.
func WorstConstrainedAttackParallel(pl *Placement, topo *Topology, s, k, d int, budget int64, workers int) (DomainAttackResult, error) {
	return adversary.ConstrainedWorstCasePar(pl, topo, s, k, d, budget, workers)
}

// NewAttackSession opens an incremental node-level adversary session on
// the placement: Move applies one replica move and returns the updated
// worst k-node attack, Evaluate answers arbitrary placements (same →
// memo, one move apart → CSR delta, otherwise one rebuild). Damage,
// witness, and exactness always equal a cold WorstAttack on the same
// placement; a chain of re-plans just gets them far cheaper.
func NewAttackSession(pl *Placement, s, k int, opts AttackOptions) (*AttackSession, error) {
	return adversary.NewNodeSession(pl, s, k, opts)
}

// NewDomainAttackSession is NewAttackSession against whole domains of
// the given topology level (moves within one attack-level domain are
// answered without searching — they cannot change the answer).
func NewDomainAttackSession(pl *Placement, topo *Topology, level, s, d int, opts AttackOptions) (*AttackSession, error) {
	return adversary.NewDomainSession(pl, topo, level, s, d, opts)
}

// NewController starts a continuous-operation reconcile loop on the
// placement: Apply feeds it one topology mutation (drain/fail/restore/
// weight/cap) and reconciles under the configured per-step move budget,
// never letting worst-case damage exceed the step's pre-migration
// guarantee; Step reconciles leftover work without a mutation. Moves
// actuate through a two-phase machine journaled write-ahead to the
// configured checkpoint — after a crash, LoadController + Recover rolls
// the in-flight move forward or back.
func NewController(pl *Placement, cfg ControllerConfig) (*Controller, error) {
	return controller.New(pl, cfg)
}

// LoadController restarts a Controller from its fsync'd journal,
// reattaching the given data plane; call Recover on the result to
// resolve any in-flight move before applying new mutations.
func LoadController(path string, act Actuator, opts ControllerOptions) (*Controller, error) {
	return controller.Load(path, act, opts)
}

// NewMemActuator builds the in-memory reference data plane, started in
// sync with pl — the strict-protocol oracle the controller tests prove
// the no-leak property against.
func NewMemActuator(pl *Placement) *controller.MemActuator {
	return controller.NewMemActuator(pl)
}

// ParseMutationScript reads a mutation script ("drain 2", "fail 10",
// "restore 2", "weight 7 3", "cap rack0 8"; # comments) into the
// mutations a Controller consumes.
func ParseMutationScript(r io.Reader) ([]TopologyMutation, error) {
	return controller.ParseScript(r)
}

// NewCluster builds a simulated storage cluster (see ClusterConfig).
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(cfg)
}
