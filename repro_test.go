package repro_test

import (
	"fmt"
	"testing"

	"repro"
)

func TestPlanMaterializeAttackRoundTrip(t *testing.T) {
	const (
		n, r, s, k = 13, 3, 2, 3
		b          = 26
	)
	spec, bound, err := repro.PlanComboConstructible(n, r, s, k, b)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Capacity() < int64(b) {
		t.Fatalf("planned capacity %d < b", spec.Capacity())
	}
	pl, err := repro.Materialize(n, r, spec, b)
	if err != nil {
		t.Fatal(err)
	}
	avail, attack, err := repro.Avail(pl, s, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !attack.Exact {
		t.Error("exact search expected at this size")
	}
	if int64(avail) < bound {
		t.Errorf("Avail = %d below the guaranteed bound %d", avail, bound)
	}
}

func TestComboGuaranteeBeatsRandomEmpirically(t *testing.T) {
	// End-to-end comparison through the public API only: the Combo
	// guarantee should beat what Random actually achieves against the
	// worst case, for paper-style parameters scaled down.
	const (
		n, r, s, k = 13, 3, 2, 3
		b          = 26
	)
	_, bound, err := repro.PlanComboConstructible(n, r, s, k, b)
	if err != nil {
		t.Fatal(err)
	}
	worstRandom := b
	for seed := int64(0); seed < 5; seed++ {
		rp, err := repro.RandomPlacement(repro.Params{N: n, B: b, R: r, S: s, K: k}, seed)
		if err != nil {
			t.Fatal(err)
		}
		avail, _, err := repro.Avail(rp, s, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if avail < worstRandom {
			worstRandom = avail
		}
	}
	if int64(worstRandom) > bound+2 {
		t.Logf("note: Random did unusually well (%d vs bound %d)", worstRandom, bound)
	}
	if bound < int64(worstRandom)-10 {
		t.Errorf("Combo guarantee %d far below Random's observed %d", bound, worstRandom)
	}
}

func TestBuildSimpleAndParallelAttack(t *testing.T) {
	pl, err := repro.BuildSimple(13, 3, 1, 1, 26, repro.SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := repro.WorstAttack(pl, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := repro.WorstAttackParallel(pl, 2, 3, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Failed != par.Failed {
		t.Errorf("parallel worst case %d != sequential %d", par.Failed, seq.Failed)
	}
	if !par.Exact {
		t.Error("unbounded parallel search should be exact")
	}
}

func TestLowerBoundsExposed(t *testing.T) {
	if got := repro.LowerBoundSimple(600, 2, 2, 1, 1); got != 599 {
		t.Errorf("LowerBoundSimple = %d, want 599", got)
	}
	if got := repro.LowerBoundCombo(100, 4, 2, []int{3, 2}); got != 82 {
		t.Errorf("LowerBoundCombo = %d, want 82", got)
	}
	pr, err := repro.PrAvail(repro.Params{N: 71, B: 600, R: 3, S: 2, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pr < 0 || pr > 600 {
		t.Errorf("PrAvail = %d out of range", pr)
	}
}

func TestClusterFacade(t *testing.T) {
	c, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:             13,
		Replicas:          3,
		FatalityThreshold: 2,
		PlannedFailures:   3,
		ExpectedObjects:   10,
		Strategy:          repro.StrategyCombo,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.AddObject(fmt.Sprintf("vm-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Report(); st.AvailableObjects != 10 {
		t.Errorf("AvailableObjects = %d, want 10", st.AvailableObjects)
	}
}

func ExamplePlanCombo() {
	// Plan placements for 600 objects on 71 nodes, 3 replicas each,
	// where losing 2 replicas kills an object, against 4 failures.
	spec, bound, err := repro.PlanCombo(71, 3, 2, 4, 600)
	if err != nil {
		panic(err)
	}
	fmt.Println("lambdas:", spec.Lambdas)
	fmt.Println("guaranteed available:", bound)
	// Output:
	// lambdas: [0 1]
	// guaranteed available: 594
}

// TestMultiRegionFacade drives the acceptance scenario end to end
// through the public facade: a depth-3 region→zone→rack topology is
// parsed from a spec, attacked at each of its three levels via the
// shared search core, spread hierarchically (with and without rack
// caps), and never loses availability to the oblivious layout at any
// level.
func TestMultiRegionFacade(t *testing.T) {
	const (
		n, r, s, k = 12, 3, 2, 6
		b          = 16
	)
	spec, _, err := repro.PlanComboConstructible(n, r, s, k, b)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := repro.Materialize(n, r, spec, b)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := repro.TreeTopology(n, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", topo.Levels())
	}
	// The spec round-trips through the facade parser.
	back, err := repro.ParseTopology(n, topo.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if back.Spec() != topo.Spec() {
		t.Errorf("spec round trip changed: %q -> %q", topo.Spec(), back.Spec())
	}

	aware, _, err := repro.SpreadAcrossDomains(pl, topo, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	for level := 0; level < topo.Levels(); level++ {
		obliv, err := repro.WorstDomainAttackAt(pl, topo, level, s, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		spreadRes, err := repro.WorstDomainAttackAt(aware, topo, level, s, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !obliv.Exact || !spreadRes.Exact {
			t.Fatalf("level %d: exact searches expected", level)
		}
		if spreadRes.Failed > obliv.Failed {
			t.Errorf("level %d: aware fails %d > oblivious %d", level, spreadRes.Failed, obliv.Failed)
		}
		// The parallel engine agrees with the serial one at every level.
		par, err := repro.WorstDomainAttackParallelAt(pl, topo, level, s, 1, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Failed != obliv.Failed {
			t.Errorf("level %d: parallel %d != serial %d", level, par.Failed, obliv.Failed)
		}
	}
	// Constrained at region level: k nodes inside one region.
	conRes, err := repro.WorstConstrainedAttackAt(aware, topo, 0, s, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	free, err := repro.WorstAttack(aware, s, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if conRes.Failed > free.Failed {
		t.Errorf("region-confined attack %d beats the free adversary %d", conRes.Failed, free.Failed)
	}
	// Capped spread through the facade: no rack over its cap.
	caps := make([]int, topo.NumDomains())
	for i := range caps {
		caps[i] = 8
	}
	capped, _, err := repro.SpreadAcrossDomainsWith(pl, topo, s, 1, repro.SpreadOptions{Caps: caps})
	if err != nil {
		t.Fatal(err)
	}
	spreadStats, err := repro.DomainSpread(capped, topo)
	if err != nil {
		t.Fatal(err)
	}
	if spreadStats.MinDomains < 1 {
		t.Errorf("capped spread min domains = %d", spreadStats.MinDomains)
	}
	availAt, _, err := repro.DomainAvailAt(capped, topo, repro.LeafLevel, s, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if availAt < 0 || availAt > b {
		t.Errorf("DomainAvailAt out of range: %d", availAt)
	}
}
