// Multi-region placement: real outages are hierarchical — a rack loses
// power, a zone loses cooling, a whole region falls off the network.
// This walkthrough places objects with Combo, describes a three-level
// region→zone→rack topology, and shows how one placement fares against
// the correlated adversary at every level of the tree: the hierarchical
// spreading pass separates each object's replicas across regions first,
// then zones, then racks, so the layout holds up even when a whole
// region dies — and per-rack replica caps keep any single rack from
// absorbing more than its share.
//
//	go run ./examples/multiregion
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 12 // nodes
		r = 3  // replicas per object
		s = 2  // an object dies once 2 of its replicas die
		k = 6  // plan for 6 worst-case independent node failures
		b = 16 // objects to place
		d = 1  // the correlated adversary takes down 1 whole domain
	)

	// 1. Plan and materialize as usual. With k this aggressive the DP
	//    picks x = 0 partition chunks — compact, but fatal when a chunk's
	//    replica triple shares a failure domain.
	spec, bound, err := repro.PlanComboConstructible(n, r, s, k, b)
	if err != nil {
		return err
	}
	pl, err := repro.Materialize(n, r, spec, b)
	if err != nil {
		return err
	}
	fmt.Printf("combo lambdas %v: >= %d of %d objects survive any %d node failures\n",
		spec.Lambdas, bound, b, k)

	// 2. Describe the physical hierarchy: 2 regions, each with 2 zones
	//    of 2 racks. The same tree could be parsed from a spec
	//    ("rack@zone@region:nodes;..." — see repro.ParseTopology).
	topo, err := repro.TreeTopology(n, 2, 2, 2)
	if err != nil {
		return err
	}
	fmt.Printf("topology (%d levels): %s\n\n", topo.Levels(), topo.Spec())

	// 3. The oblivious layout versus the hierarchical spreading pass,
	//    judged by the exact whole-domain adversary at every level. The
	//    spread is never worse at ANY level — the top level is separated
	//    first, then each subtree recursively.
	aware, _, err := repro.SpreadAcrossDomains(pl, topo, s, d)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s  %-18s  %-18s\n", "level", "oblivious Avail", "aware Avail")
	for level := 0; level < topo.Levels(); level++ {
		oblivAvail, _, err := repro.DomainAvailAt(pl, topo, level, s, d, 0)
		if err != nil {
			return err
		}
		awareAvail, attack, err := repro.DomainAvailAt(aware, topo, level, s, d, 0)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s  %-18s  %-18s (worst: %v)\n",
			topo.LevelName(level),
			fmt.Sprintf("%d of %d", oblivAvail, b),
			fmt.Sprintf("%d of %d", awareAvail, b),
			topo.DomainNamesAt(level, attack.Domains))
	}

	// 4. The node-level guarantee is untouched: relabeling is invisible
	//    to the independent adversary.
	availNode, _, err := repro.Avail(aware, s, k, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nnode adversary on the aware layout: %d of %d (guarantee was %d)\n",
		availNode, b, bound)

	// 5. An attacker with k node failures confined to one region — the
	//    realistic "big blast radius" threat — is still weaker than the
	//    free adversary.
	constrained, err := repro.WorstConstrainedAttackAt(aware, topo, 0, s, k, d, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%d node failures confined to %d region: %d of %d available\n",
		k, d, constrained.Avail(b), b)

	// 6. Capacity-constrained racks: cap every rack at its balanced
	//    share (this placement loads every node with 4 replicas, so a
	//    2-node rack gets a budget of 8) and spread again; no rack
	//    exceeds its budget, and the never-worse guarantee now holds
	//    among cap-feasible layouts — a relabeling that piled extra
	//    replicas onto one rack would be rejected outright.
	caps := make([]int, topo.NumDomains())
	for i, rack := range topo.Leaves() {
		caps[i] = 4 * len(rack.Nodes)
	}
	capped, _, err := repro.SpreadAcrossDomainsWith(pl, topo, s, d, repro.SpreadOptions{Caps: caps})
	if err != nil {
		return err
	}
	cappedAvail, _, err := repro.DomainAvailAt(capped, topo, repro.LeafLevel, s, d, 0)
	if err != nil {
		return err
	}
	fmt.Printf("with balanced per-rack caps: %d of %d available under the rack adversary\n",
		cappedAvail, b)
	return nil
}
