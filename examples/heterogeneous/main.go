// Heterogeneous clusters: one node is hot — it serves an order of
// magnitude more traffic than its peers, so an object stored on it is
// an order of magnitude more painful to lose. This walkthrough gives
// that node a weight, lets the correlated adversary maximize LOST
// WEIGHT instead of lost object count, and shows that a
// weighted-aware spreading pass strictly beats the unit-weight-aware
// one: both lose the same number of objects to the worst rack failure,
// but the weighted pass arranges for the lost objects to be cold.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n   = 9  // nodes
		r   = 3  // replicas per object
		s   = 2  // an object dies once 2 of its replicas die
		k   = 3  // plan for 3 worst-case independent node failures
		b   = 16 // objects to place
		d   = 1  // the correlated adversary takes down 1 whole rack
		hot = 10 // node 0 serves 10x the traffic of its peers
	)

	// 1. Plan and materialize as usual: the placement layer knows
	//    nothing about weights.
	spec, bound, err := repro.PlanComboConstructible(n, r, s, k, b)
	if err != nil {
		return err
	}
	pl, err := repro.Materialize(n, r, spec, b)
	if err != nil {
		return err
	}
	fmt.Printf("combo lambdas %v: >= %d of %d objects survive any %d node failures\n",
		spec.Lambdas, bound, b, k)

	// 2. Describe the physical reality: 3 racks, and node 0 is hot.
	//    The same topology could be parsed from a spec with *w
	//    annotations: "rack0:0*10,1,2;rack1:3-5;rack2:6-8".
	topo, err := repro.UniformTopology(n, 3)
	if err != nil {
		return err
	}
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = hot
	topo.Weights = weights
	fmt.Printf("topology: %s  (node 0 weighs %d)\n\n", topo.Spec(), hot)

	// 3. Spread twice: unit-weight-aware (the plain pass — it minimizes
	//    lost OBJECTS) and weighted-aware (SpreadOptions.Weighted — it
	//    minimizes lost WEIGHT, where an object inherits the weight of
	//    its hottest replica host).
	unitAware, _, err := repro.SpreadAcrossDomains(pl, topo, s, d)
	if err != nil {
		return err
	}
	weightedAware, _, err := repro.SpreadAcrossDomainsWith(pl, topo, s, d,
		repro.SpreadOptions{Weighted: true})
	if err != nil {
		return err
	}

	// 4. Judge all three layouts under BOTH adversaries: the plain one
	//    (lost objects) and the weighted one (lost weight).
	fmt.Printf("%-16s  %-16s  %-22s\n", "layout", "objects lost", "weight lost")
	report := func(name string, layout *repro.Placement) (int, error) {
		plain, err := repro.WorstDomainAttack(layout, topo, s, d, 0)
		if err != nil {
			return 0, err
		}
		objW, err := repro.ObjectWeights(layout, topo)
		if err != nil {
			return 0, err
		}
		weighted, err := repro.WorstDomainAttackWeighted(layout, topo, s, d, 0, objW)
		if err != nil {
			return 0, err
		}
		total := repro.SumWeights(objW, b)
		fmt.Printf("%-16s  %-16s  %-22s\n", name,
			fmt.Sprintf("%d of %d", plain.Failed, b),
			fmt.Sprintf("%d of %d", weighted.Failed, total))
		return weighted.Failed, nil
	}
	if _, err := report("oblivious", pl); err != nil {
		return err
	}
	lostUnit, err := report("unit-aware", unitAware)
	if err != nil {
		return err
	}
	lostWeighted, err := report("weighted-aware", weightedAware)
	if err != nil {
		return err
	}

	// 5. The point: the weighted-aware pass strictly beats the
	//    unit-weight-aware one on lost weight — same object count, but
	//    it steers the unavoidable losses onto cold objects.
	if lostWeighted >= lostUnit {
		return fmt.Errorf("expected a strict weighted win, got unit-aware %d vs weighted-aware %d",
			lostUnit, lostWeighted)
	}
	fmt.Printf("\nweighted-aware loses %d weight where unit-aware loses %d — a %.0f%% cut,\n",
		lostWeighted, lostUnit, 100*float64(lostUnit-lostWeighted)/float64(lostUnit))
	fmt.Printf("with the node-level guarantee untouched (relabeling is invisible to the node adversary).\n")
	return nil
}
