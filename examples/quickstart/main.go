// Quickstart: plan an availability-optimal replica placement, materialize
// it, and verify the worst-case guarantee by actually attacking it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 71  // nodes
		r = 3   // replicas per object
		s = 2   // an object dies once 2 of its replicas die
		k = 4   // plan for the worst 4 simultaneous node failures
		b = 600 // objects to place
	)

	// 1. Plan: the paper's dynamic program picks how many objects to
	//    place at each overlap level x (Combo over Simple(x, λx)).
	spec, bound, err := repro.PlanComboConstructible(n, r, s, k, b)
	if err != nil {
		return err
	}
	fmt.Printf("planned lambdas per overlap level: %v\n", spec.Lambdas)
	fmt.Printf("guarantee: >= %d of %d objects survive ANY %d node failures\n", bound, b, k)

	// 2. Materialize: real Steiner-system-backed replica sets.
	pl, err := repro.Materialize(n, r, spec, b)
	if err != nil {
		return err
	}
	fmt.Printf("first object's replicas: nodes %v\n", pl.ReplicaNodes(0))

	// 3. Verify: run the worst-case adversary against the concrete
	//    placement (branch-and-bound, bounded effort here).
	avail, attack, err := repro.Avail(pl, s, k, 3_000_000)
	if err != nil {
		return err
	}
	mode := "exact"
	if !attack.Exact {
		mode = "lower bound"
	}
	fmt.Printf("worst attack found fails nodes %v -> %d objects survive (%s)\n",
		attack.Nodes, avail, mode)
	fmt.Printf("guarantee holds: %v\n", int64(avail) >= bound)

	// 4. Compare with the Random baseline's analysis.
	pr, err := repro.PrAvail(repro.Params{N: n, B: b, R: r, S: s, K: k})
	if err != nil {
		return err
	}
	fmt.Printf("random placement would probably keep %d of %d available\n", pr, b)
	return nil
}
