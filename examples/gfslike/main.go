// gfslike simulates a GFS/HDFS-style chunk store: files are 3-way
// replicated (r = 3) and a chunk survives as long as ANY replica survives
// (s = r = 3, the paper's file-system setting). It drives the cluster
// simulation layer: chunks are admitted over time, nodes fail and
// recover, and the control plane reports availability — including the
// adaptive λ growth the paper leaves as future work.
//
//	go run ./examples/gfslike
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	c, err := repro.NewCluster(repro.ClusterConfig{
		Nodes:             13,
		Replicas:          3,
		FatalityThreshold: 3, // all replicas must die
		PlannedFailures:   3,
		ExpectedObjects:   20, // initial plan; the store will outgrow it
		Strategy:          repro.StrategyCombo,
		Seed:              7,
	})
	if err != nil {
		return err
	}

	// Day 1: ingest 20 chunks (the planned capacity).
	for i := 0; i < 20; i++ {
		if err := c.AddObject(fmt.Sprintf("chunk-%04d", i)); err != nil {
			return err
		}
	}
	st := c.Report()
	fmt.Printf("day 1: %d chunks placed, lambdas %v, max host load %d\n",
		st.Objects, st.Lambdas, st.MaxLoad)

	// Day 2: the dataset doubles — capacity grows adaptively.
	for i := 20; i < 40; i++ {
		if err := c.AddObject(fmt.Sprintf("chunk-%04d", i)); err != nil {
			return err
		}
	}
	st = c.Report()
	fmt.Printf("day 2: %d chunks placed, lambdas grew to %v\n", st.Objects, st.Lambdas)

	// A rack with three hosts burns down.
	for _, host := range []int{2, 5, 8} {
		if err := c.FailNode(host); err != nil {
			return err
		}
	}
	st = c.Report()
	fmt.Printf("after losing hosts {2, 5, 8}: %d available, %d lost\n",
		st.AvailableObjects, st.FailedObjects)

	// What would the WORST 3-host failure have done?
	worst, err := c.WorstCase(3, 0)
	if err != nil {
		return err
	}
	fmt.Printf("worst possible 3-host failure would lose %d chunks (hosts %v)\n",
		worst.Failed, worst.Nodes)

	// Repair: hosts come back, chunks revive.
	for _, host := range []int{2, 5, 8} {
		if err := c.RestoreNode(host); err != nil {
			return err
		}
	}
	fmt.Printf("after repair: %d available\n", c.Report().AvailableObjects)

	// Retention: old chunks are deleted; their replica slots recycle.
	for i := 0; i < 10; i++ {
		if err := c.RemoveObject(fmt.Sprintf("chunk-%04d", i)); err != nil {
			return err
		}
	}
	for i := 40; i < 50; i++ {
		if err := c.AddObject(fmt.Sprintf("chunk-%04d", i)); err != nil {
			return err
		}
	}
	st = c.Report()
	fmt.Printf("after retention churn: %d chunks, lambdas %v (slots recycled)\n",
		st.Objects, st.Lambdas)
	return nil
}
