// adaptive stress-tests the cluster layer's future-work feature: objects
// arrive and depart continuously, and the Combo placement grows its ⟨λx⟩
// on demand while keeping worst-case availability measurably ahead of a
// random-placement cluster subjected to the same churn.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

const (
	nodes    = 13
	replicas = 3
	fatality = 2
	failures = 3
	churn    = 300 // add/remove operations
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	combo, err := newCluster(repro.StrategyCombo)
	if err != nil {
		return err
	}
	random, err := newCluster(repro.StrategyRandom)
	if err != nil {
		return err
	}

	// Identical churn on both clusters.
	rng := rand.New(rand.NewSource(99))
	var live []string
	next := 0
	for op := 0; op < churn; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			id := fmt.Sprintf("obj-%d", next)
			next++
			if err := combo.AddObject(id); err != nil {
				return err
			}
			if err := random.AddObject(id); err != nil {
				return err
			}
			live = append(live, id)
		} else {
			i := rng.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := combo.RemoveObject(id); err != nil {
				return err
			}
			if err := random.RemoveObject(id); err != nil {
				return err
			}
		}
	}

	cs, rs := combo.Report(), random.Report()
	fmt.Printf("after %d churn operations: %d live objects\n", churn, cs.Objects)
	fmt.Printf("combo cluster:  lambdas %v, max load %d\n", cs.Lambdas, cs.MaxLoad)
	fmt.Printf("random cluster: max load %d\n\n", rs.MaxLoad)

	comboWorst, err := combo.WorstCase(failures, 0)
	if err != nil {
		return err
	}
	randomWorst, err := random.WorstCase(failures, 0)
	if err != nil {
		return err
	}
	fmt.Printf("worst %d-node failure against the combo cluster:  loses %d objects\n",
		failures, comboWorst.Failed)
	fmt.Printf("worst %d-node failure against the random cluster: loses %d objects\n",
		failures, randomWorst.Failed)
	if comboWorst.Failed <= randomWorst.Failed {
		fmt.Println("\nthe adaptive combinatorial placement stayed at or ahead of random under churn")
	} else {
		fmt.Println("\nnote: random happened to win this churn pattern (possible at small scale)")
	}
	return nil
}

func newCluster(strategy repro.ClusterStrategy) (*repro.Cluster, error) {
	return repro.NewCluster(repro.ClusterConfig{
		Nodes:             nodes,
		Replicas:          replicas,
		FatalityThreshold: fatality,
		PlannedFailures:   failures,
		ExpectedObjects:   30,
		Strategy:          strategy,
		Seed:              5,
	})
}
