// quorum simulates majority-quorum replicated state machines (the
// paper's r = 5, s = 3 setting): each object is a 5-replica group that
// stays live while a majority (3 of 5) survives — i.e. it fails once
// s = 3 replicas die. The example sweeps the number of failures k and
// prints the guaranteed availability of the combinatorial placement
// against the analytic behavior of random placement, reproducing the
// shape of the paper's r = 5, s = 3 comparisons.
//
//	go run ./examples/quorum
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	nodes    = 71
	groups   = 2400 // replicated state machine groups
	replicas = 5
	majority = 3 // failing 3 of 5 kills the quorum
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("%d Raft-style groups (%d replicas, majority %d) on %d nodes\n\n",
		groups, replicas, majority, nodes)
	fmt.Printf("%3s  %12s  %12s  %s\n", "k", "combo(lb)", "random(pr)", "combo preserves")

	for k := majority; k <= 7; k++ {
		spec, bound, err := repro.PlanCombo(nodes, replicas, majority, k, groups)
		if err != nil {
			return err
		}
		pr, err := repro.PrAvail(repro.Params{
			N: nodes, B: groups, R: replicas, S: majority, K: k})
		if err != nil {
			return err
		}
		_ = spec
		note := ""
		if int64(pr) < int64(groups) {
			preserved := float64(bound-int64(pr)) / float64(int64(groups)-int64(pr)) * 100
			note = fmt.Sprintf("%.0f%% of Random's probable losses", preserved)
		}
		fmt.Printf("%3d  %12d  %12d  %s\n", k, bound, pr, note)
	}

	// Materialize the k = 5 plan and verify the guarantee empirically at
	// reduced search effort.
	const k = 5
	spec, bound, err := repro.PlanComboConstructible(nodes, replicas, majority, k, groups)
	if err != nil {
		return err
	}
	pl, err := repro.Materialize(nodes, replicas, spec, groups)
	if err != nil {
		return err
	}
	avail, attack, err := repro.Avail(pl, majority, k, 2_000_000)
	if err != nil {
		return err
	}
	fmt.Printf("\nmaterialized plan for k=%d: lambdas %v\n", k, spec.Lambdas)
	fmt.Printf("strongest attack found: %v -> %d/%d groups keep quorum (guarantee: %d)\n",
		attack.Nodes, avail, groups, bound)
	return nil
}
