// Rack-aware placement: the paper's adversary fails any k independent
// nodes, but real outages take out whole racks. This walkthrough places
// objects with Combo, maps the abstract node ids onto a rack topology
// with the domain-aware spreading pass, and shows that (1) the
// node-level worst-case guarantee is untouched, since relabeling is
// invisible to the independent adversary, and (2) against the
// correlated whole-rack adversary the spread layout is never worse than
// the oblivious one — and strictly better when the placement's
// structure would otherwise align with the racks.
//
//	go run ./examples/rackaware
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n     = 12 // nodes
		r     = 3  // replicas per object
		s     = 2  // an object dies once 2 of its replicas die
		k     = 6  // plan for 6 worst-case independent node failures
		b     = 8  // objects to place
		racks = 3  // 4-node racks
		d     = 1  // the correlated adversary takes down 1 whole rack
	)

	// 1. Plan and materialize as usual. With k this aggressive the DP
	//    picks x = 0 partition chunks: groups of objects sharing one
	//    replica triple — compact, but fatal if a triple shares a rack.
	spec, bound, err := repro.PlanComboConstructible(n, r, s, k, b)
	if err != nil {
		return err
	}
	pl, err := repro.Materialize(n, r, spec, b)
	if err != nil {
		return err
	}
	fmt.Printf("combo lambdas %v: >= %d of %d objects survive any %d node failures\n",
		spec.Lambdas, bound, b, k)

	// 2. Describe the physical topology: 3 racks of 4 nodes.
	topo, err := repro.UniformTopology(n, racks)
	if err != nil {
		return err
	}
	fmt.Printf("topology: %s\n\n", topo.Spec())

	// 3. The oblivious layout (abstract id = physical node) puts whole
	//    replica triples inside single racks.
	stats, err := repro.DomainSpread(pl, topo)
	if err != nil {
		return err
	}
	availOblivious, attack, err := repro.DomainAvail(pl, topo, s, d, 0)
	if err != nil {
		return err
	}
	fmt.Printf("oblivious: objects span %d-%d racks; losing rack %v leaves %d of %d available\n",
		stats.MinDomains, stats.MaxDomains, topo.DomainNames(attack.Domains), availOblivious, b)

	// 4. The spreading post-pass relabels nodes so every object's three
	//    replicas land in three different racks.
	aware, _, err := repro.SpreadAcrossDomains(pl, topo, s, d)
	if err != nil {
		return err
	}
	stats, err = repro.DomainSpread(aware, topo)
	if err != nil {
		return err
	}
	availAware, attack, err := repro.DomainAvail(aware, topo, s, d, 0)
	if err != nil {
		return err
	}
	fmt.Printf("aware:     objects span %d-%d racks; losing rack %v leaves %d of %d available\n",
		stats.MinDomains, stats.MaxDomains, topo.DomainNames(attack.Domains), availAware, b)

	// 5. The node-level guarantee is untouched by the relabeling.
	availNode, _, err := repro.Avail(aware, s, k, 0)
	if err != nil {
		return err
	}
	fmt.Printf("\nnode adversary on the aware layout: %d of %d (guarantee was %d)\n",
		availNode, b, bound)

	// 6. An attacker with k node failures but limited blast radius
	//    (at most d racks) is much weaker than the free adversary.
	constrained, err := repro.WorstConstrainedAttack(aware, topo, s, k, d, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%d node failures confined to %d rack(s): %d of %d available\n",
		k, d, constrained.Avail(b), b)
	return nil
}
