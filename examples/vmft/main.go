// vmft simulates VM fault-tolerance pairs (the paper's r = 2 motivating
// scenario, e.g. VMware FT): each virtual machine runs as a
// primary/secondary pair on two hosts, and the VM dies only when both
// hosts die (s = r = 2). The example contrasts the worst-case damage of
// the combinatorial placement against random pair assignment as rack
// failures take out multiple hosts.
//
//	go run ./examples/vmft
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	hosts    = 31  // physical hosts
	vms      = 400 // FT virtual machine pairs
	replicas = 2
	fatality = 2 // both copies must die
	failures = 3 // worst-case simultaneous host failures planned for
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("placing %d FT VM pairs on %d hosts, planning for %d host failures\n\n",
		vms, hosts, failures)

	// Combinatorial placement: no two hosts share more than λ VM pairs.
	spec, bound, err := repro.PlanComboConstructible(hosts, replicas, fatality, failures, vms)
	if err != nil {
		return err
	}
	comboPl, err := repro.Materialize(hosts, replicas, spec, vms)
	if err != nil {
		return err
	}
	comboAvail, comboAttack, err := repro.Avail(comboPl, fatality, failures, 0)
	if err != nil {
		return err
	}
	fmt.Printf("combinatorial placement (lambdas %v):\n", spec.Lambdas)
	fmt.Printf("  guaranteed survivors: %d/%d\n", bound, vms)
	fmt.Printf("  actual worst case:    %d/%d (attack on hosts %v)\n\n",
		comboAvail, vms, comboAttack.Nodes)

	// Random pair assignment, averaged over a few deployments.
	worst, bestWorst := vms, 0
	for seed := int64(1); seed <= 5; seed++ {
		rp, err := repro.RandomPlacement(repro.Params{
			N: hosts, B: vms, R: replicas, S: fatality, K: failures}, seed)
		if err != nil {
			return err
		}
		avail, _, err := repro.Avail(rp, fatality, failures, 0)
		if err != nil {
			return err
		}
		if avail < worst {
			worst = avail
		}
		if avail > bestWorst {
			bestWorst = avail
		}
	}
	fmt.Printf("random pairing over 5 deployments:\n")
	fmt.Printf("  worst-case survivors ranged %d..%d of %d\n\n", worst, bestWorst, vms)

	fmt.Printf("summary: the combinatorial placement caps the blast radius of any\n")
	fmt.Printf("%d-host failure at %d VMs; random pairing concentrates pairs and\n",
		failures, vms-comboAvail)
	fmt.Printf("loses up to %d VMs in its worst deployments.\n", vms-worst)
	return nil
}
