// Package gf implements arithmetic in small finite fields GF(p^m).
//
// The block-design constructions in internal/design (affine and projective
// line designs, spherical/Möbius designs) are algebraic: their points and
// blocks are coordinates over a finite field. Fields here are small (the
// paper needs at most a few hundred elements), so elements are represented
// as ints in [0, q) whose base-p digits are the polynomial coefficients of
// the element over the prime subfield, and multiplication uses exp/log
// tables built from a multiplicative generator.
package gf

import (
	"errors"
	"fmt"
)

// MaxOrder bounds the field sizes this package will construct. It is far
// above anything the designs in this repository need, while keeping table
// construction trivially cheap.
const MaxOrder = 1 << 16

// Field is a finite field GF(q) with q = P^M elements. Elements are the
// integers 0..Q-1; 0 and 1 are the additive and multiplicative identities.
type Field struct {
	P int // characteristic (prime)
	M int // extension degree
	Q int // order, P^M

	irred []int // monic irreducible polynomial of degree M (coefficients, len M+1), nil when M == 1
	exp   []int // exp[i] = g^i for i in [0, 2(Q-1))
	log   []int // log[a] for a in [1, Q)
	gen   int   // a multiplicative generator
}

// New constructs GF(q). It returns an error unless q is a prime power with
// 2 <= q <= MaxOrder.
func New(q int) (*Field, error) {
	p, m, ok := PrimePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	if q > MaxOrder {
		return nil, fmt.Errorf("gf: order %d exceeds MaxOrder %d", q, MaxOrder)
	}
	f := &Field{P: p, M: m, Q: q}
	if m > 1 {
		irred, err := findIrreducible(p, m)
		if err != nil {
			return nil, err
		}
		f.irred = irred
	}
	if err := f.buildTables(); err != nil {
		return nil, err
	}
	return f, nil
}

// Add returns a + b.
func (f *Field) Add(a, b int) int {
	if f.M == 1 {
		return (a + b) % f.P
	}
	// Digit-wise addition mod p.
	sum := 0
	mult := 1
	for i := 0; i < f.M; i++ {
		da := a % f.P
		db := b % f.P
		a /= f.P
		b /= f.P
		sum += ((da + db) % f.P) * mult
		mult *= f.P
	}
	return sum
}

// Neg returns -a.
func (f *Field) Neg(a int) int {
	if f.M == 1 {
		return (f.P - a%f.P) % f.P
	}
	neg := 0
	mult := 1
	for i := 0; i < f.M; i++ {
		d := a % f.P
		a /= f.P
		neg += ((f.P - d) % f.P) * mult
		mult *= f.P
	}
	return neg
}

// Sub returns a - b.
func (f *Field) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

// Mul returns a * b.
func (f *Field) Mul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	return f.exp[f.log[a]+f.log[b]]
}

// Inv returns the multiplicative inverse of a, or an error if a == 0.
func (f *Field) Inv(a int) (int, error) {
	if a == 0 {
		return 0, errors.New("gf: inverse of zero")
	}
	return f.exp[(f.Q-1)-f.log[a]], nil
}

// Div returns a / b, or an error if b == 0.
func (f *Field) Div(a, b int) (int, error) {
	inv, err := f.Inv(b)
	if err != nil {
		return 0, err
	}
	return f.Mul(a, inv), nil
}

// Pow returns a^e for e >= 0, with 0^0 = 1.
func (f *Field) Pow(a int, e int) int {
	if e < 0 {
		panic("gf: negative exponent")
	}
	if a == 0 {
		if e == 0 {
			return 1
		}
		return 0
	}
	idx := (f.log[a] * (e % (f.Q - 1))) % (f.Q - 1)
	return f.exp[idx]
}

// Generator returns a generator of the multiplicative group.
func (f *Field) Generator() int { return f.gen }

// Element validates that a names an element of the field.
func (f *Field) Element(a int) error {
	if a < 0 || a >= f.Q {
		return fmt.Errorf("gf: %d out of range for GF(%d)", a, f.Q)
	}
	return nil
}

// buildTables finds a multiplicative generator and fills the exp/log
// tables. Multiplication during table construction uses polynomial
// arithmetic directly.
func (f *Field) buildTables() error {
	mulSlow := func(a, b int) int {
		if f.M == 1 {
			return a * b % f.P
		}
		return f.polyMulMod(a, b)
	}
	// Factor q-1 to test element orders.
	factors := primeFactors(f.Q - 1)
	isGenerator := func(g int) bool {
		for _, pf := range factors {
			if powSlow(f, g, (f.Q-1)/pf, mulSlow) == 1 {
				return false
			}
		}
		return true
	}
	gen := 0
	for g := 2; g < f.Q; g++ {
		if isGenerator(g) {
			gen = g
			break
		}
	}
	if gen == 0 {
		if f.Q == 2 {
			gen = 1
		} else {
			return fmt.Errorf("gf: no generator found for GF(%d)", f.Q)
		}
	}
	f.gen = gen
	f.exp = make([]int, 2*(f.Q-1))
	f.log = make([]int, f.Q)
	cur := 1
	for i := 0; i < f.Q-1; i++ {
		f.exp[i] = cur
		f.exp[i+f.Q-1] = cur
		f.log[cur] = i
		cur = mulSlow(cur, gen)
	}
	if cur != 1 {
		return fmt.Errorf("gf: generator %d has wrong order in GF(%d)", gen, f.Q)
	}
	return nil
}

// polyMulMod multiplies two elements of GF(p^m) in their polynomial
// representation, reducing modulo the irreducible polynomial.
func (f *Field) polyMulMod(a, b int) int {
	// Expand to coefficient vectors.
	da := digits(a, f.P, f.M)
	db := digits(b, f.P, f.M)
	prod := make([]int, 2*f.M-1)
	for i, ca := range da {
		if ca == 0 {
			continue
		}
		for j, cb := range db {
			prod[i+j] = (prod[i+j] + ca*cb) % f.P
		}
	}
	// Reduce modulo the irreducible polynomial (monic, degree M).
	for d := len(prod) - 1; d >= f.M; d-- {
		c := prod[d]
		if c == 0 {
			continue
		}
		// Subtract c * x^(d-M) * irred; the j = M term cancels prod[d].
		for j := 0; j <= f.M; j++ {
			idx := d - f.M + j
			prod[idx] = ((prod[idx]-c*f.irred[j])%f.P + f.P) % f.P
		}
	}
	out := 0
	mult := 1
	for i := 0; i < f.M; i++ {
		out += prod[i] * mult
		mult *= f.P
	}
	return out
}

func powSlow(f *Field, a, e int, mul func(int, int) int) int {
	result := 1
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = mul(result, base)
		}
		base = mul(base, base)
		e >>= 1
	}
	return result
}

func digits(a, p, m int) []int {
	d := make([]int, m)
	for i := 0; i < m; i++ {
		d[i] = a % p
		a /= p
	}
	return d
}

// PrimePower reports whether q = p^m for a prime p and m >= 1, returning
// the decomposition.
func PrimePower(q int) (p, m int, ok bool) {
	if q < 2 {
		return 0, 0, false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			// d is the smallest prime factor; q must be a power of d.
			m := 0
			for q > 1 {
				if q%d != 0 {
					return 0, 0, false
				}
				q /= d
				m++
			}
			return d, m, true
		}
	}
	return q, 1, true // q itself is prime
}

// IsPrimePower reports whether q is a prime power >= 2.
func IsPrimePower(q int) bool {
	_, _, ok := PrimePower(q)
	return ok
}

func primeFactors(n int) []int {
	var factors []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			factors = append(factors, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	return factors
}

// findIrreducible returns a monic irreducible polynomial of degree m over
// GF(p) as a coefficient slice c[0..m] with c[m] = 1 (c[i] multiplies x^i).
func findIrreducible(p, m int) ([]int, error) {
	// Enumerate monic polynomials by their lower coefficients encoded in
	// base p, and trial-divide by all monic polynomials of degree
	// 1..m/2 (sufficient for irreducibility of small degrees).
	total := 1
	for i := 0; i < m; i++ {
		total *= p
	}
	for enc := 0; enc < total; enc++ {
		poly := digits(enc, p, m)
		poly = append(poly, 1) // monic
		if poly[0] == 0 {
			continue // divisible by x
		}
		if isIrreducible(poly, p) {
			return poly, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", m, p)
}

// isIrreducible tests irreducibility of a monic polynomial over GF(p) by
// trial division by all monic polynomials of degree up to deg/2.
func isIrreducible(poly []int, p int) bool {
	deg := len(poly) - 1
	for d := 1; d <= deg/2; d++ {
		count := 1
		for i := 0; i < d; i++ {
			count *= p
		}
		for enc := 0; enc < count; enc++ {
			div := digits(enc, p, d)
			div = append(div, 1) // monic of degree d
			if polyDivides(div, poly, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether div divides poly over GF(p). Both are monic.
func polyDivides(div, poly []int, p int) bool {
	rem := make([]int, len(poly))
	copy(rem, poly)
	dd := len(div) - 1
	for d := len(rem) - 1; d >= dd; d-- {
		c := rem[d]
		if c == 0 {
			continue
		}
		for j := 0; j <= dd; j++ {
			idx := d - dd + j
			rem[idx] = ((rem[idx]-c*div[j])%p + p) % p
		}
	}
	for _, c := range rem {
		if c != 0 {
			return false
		}
	}
	return true
}
