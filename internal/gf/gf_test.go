package gf

import (
	"testing"
)

var testOrders = []int{2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27, 32, 49, 64, 81, 125, 243, 256}

func TestNewRejectsNonPrimePowers(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 100, 24} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d): want error for non prime power", q)
		}
	}
	if _, err := New(MaxOrder * 2); err == nil {
		t.Error("New above MaxOrder: want error")
	}
}

func TestPrimePower(t *testing.T) {
	tests := []struct {
		q, p, m int
		ok      bool
	}{
		{2, 2, 1, true},
		{4, 2, 2, true},
		{8, 2, 3, true},
		{9, 3, 2, true},
		{243, 3, 5, true},
		{257, 257, 1, true},
		{6, 0, 0, false},
		{1, 0, 0, false},
		{0, 0, 0, false},
	}
	for _, tt := range tests {
		p, m, ok := PrimePower(tt.q)
		if ok != tt.ok || p != tt.p || m != tt.m {
			t.Errorf("PrimePower(%d) = (%d, %d, %v), want (%d, %d, %v)",
				tt.q, p, m, ok, tt.p, tt.m, tt.ok)
		}
		if IsPrimePower(tt.q) != tt.ok {
			t.Errorf("IsPrimePower(%d) = %v, want %v", tt.q, !tt.ok, tt.ok)
		}
	}
}

// TestFieldAxioms exhaustively verifies the field axioms for every test
// order small enough, and on a coarse grid for the larger ones.
func TestFieldAxioms(t *testing.T) {
	for _, q := range testOrders {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		step := 1
		if q > 32 {
			step = q / 17
			if step < 1 {
				step = 1
			}
		}
		for a := 0; a < q; a += step {
			for b := 0; b < q; b += step {
				// Commutativity.
				if f.Add(a, b) != f.Add(b, a) {
					t.Fatalf("GF(%d): add not commutative at (%d, %d)", q, a, b)
				}
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("GF(%d): mul not commutative at (%d, %d)", q, a, b)
				}
				for c := 0; c < q; c += step {
					// Associativity.
					if f.Add(f.Add(a, b), c) != f.Add(a, f.Add(b, c)) {
						t.Fatalf("GF(%d): add not associative at (%d, %d, %d)", q, a, b, c)
					}
					if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
						t.Fatalf("GF(%d): mul not associative at (%d, %d, %d)", q, a, b, c)
					}
					// Distributivity.
					if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
						t.Fatalf("GF(%d): not distributive at (%d, %d, %d)", q, a, b, c)
					}
				}
			}
		}
	}
}

func TestFieldIdentitiesAndInverses(t *testing.T) {
	for _, q := range testOrders {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		for a := 0; a < q; a++ {
			if f.Add(a, 0) != a {
				t.Fatalf("GF(%d): %d + 0 != %d", q, a, a)
			}
			if f.Mul(a, 1) != a {
				t.Fatalf("GF(%d): %d * 1 != %d", q, a, a)
			}
			if f.Mul(a, 0) != 0 {
				t.Fatalf("GF(%d): %d * 0 != 0", q, a)
			}
			if f.Add(a, f.Neg(a)) != 0 {
				t.Fatalf("GF(%d): %d + (-%d) != 0", q, a, a)
			}
			if f.Sub(a, a) != 0 {
				t.Fatalf("GF(%d): %d - %d != 0", q, a, a)
			}
			if a != 0 {
				inv, err := f.Inv(a)
				if err != nil {
					t.Fatalf("GF(%d): Inv(%d): %v", q, a, err)
				}
				if f.Mul(a, inv) != 1 {
					t.Fatalf("GF(%d): %d * %d != 1", q, a, inv)
				}
				d, err := f.Div(1, a)
				if err != nil || d != inv {
					t.Fatalf("GF(%d): Div(1, %d) = %d, %v; want %d", q, a, d, err, inv)
				}
			}
		}
		if _, err := f.Inv(0); err == nil {
			t.Fatalf("GF(%d): Inv(0) should fail", q)
		}
		if _, err := f.Div(1, 0); err == nil {
			t.Fatalf("GF(%d): Div by zero should fail", q)
		}
	}
}

func TestFermatLittleGeneralized(t *testing.T) {
	// a^q == a for all a in GF(q).
	for _, q := range testOrders {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		for a := 0; a < q; a++ {
			if got := f.Pow(a, q); got != a {
				t.Fatalf("GF(%d): %d^%d = %d, want %d", q, a, q, got, a)
			}
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	for _, q := range testOrders {
		if q == 2 {
			continue
		}
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		g := f.Generator()
		seen := make(map[int]bool, q-1)
		cur := 1
		for i := 0; i < q-1; i++ {
			if seen[cur] {
				t.Fatalf("GF(%d): generator %d cycles early at step %d", q, g, i)
			}
			seen[cur] = true
			cur = f.Mul(cur, g)
		}
		if cur != 1 {
			t.Fatalf("GF(%d): g^(q-1) = %d, want 1", q, cur)
		}
		if len(seen) != q-1 {
			t.Fatalf("GF(%d): generator hits %d elements, want %d", q, len(seen), q-1)
		}
	}
}

func TestCharacteristic(t *testing.T) {
	// Adding 1 to itself P times gives 0.
	for _, q := range []int{4, 8, 9, 25, 27, 49} {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		sum := 0
		for i := 0; i < f.P; i++ {
			sum = f.Add(sum, 1)
		}
		if sum != 0 {
			t.Errorf("GF(%d): 1 added P=%d times = %d, want 0", q, f.P, sum)
		}
	}
}

func TestPowEdgeCases(t *testing.T) {
	f, err := New(9)
	if err != nil {
		t.Fatal(err)
	}
	if f.Pow(0, 0) != 1 {
		t.Error("0^0 != 1")
	}
	if f.Pow(0, 5) != 0 {
		t.Error("0^5 != 0")
	}
	if f.Pow(5, 0) != 1 {
		t.Error("a^0 != 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("Pow with negative exponent should panic")
		}
	}()
	f.Pow(2, -1)
}

func TestElementValidation(t *testing.T) {
	f, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Element(6); err != nil {
		t.Errorf("Element(6): %v", err)
	}
	if err := f.Element(7); err == nil {
		t.Error("Element(7): want error")
	}
	if err := f.Element(-1); err == nil {
		t.Error("Element(-1): want error")
	}
}

func TestFrobeniusIsAdditive(t *testing.T) {
	// (a+b)^p == a^p + b^p in characteristic p: a strong consistency check
	// coupling the additive and multiplicative structures.
	for _, q := range []int{4, 8, 9, 16, 25, 27, 64} {
		f, err := New(q)
		if err != nil {
			t.Fatalf("New(%d): %v", q, err)
		}
		for a := 0; a < q; a++ {
			for b := 0; b < q; b++ {
				left := f.Pow(f.Add(a, b), f.P)
				right := f.Add(f.Pow(a, f.P), f.Pow(b, f.P))
				if left != right {
					t.Fatalf("GF(%d): Frobenius fails at (%d, %d): %d != %d", q, a, b, left, right)
				}
			}
		}
	}
}
