//go:build invariants

package search

import "fmt"

// InvariantsEnabled reports whether the build carries the runtime
// invariant assertions (`go test -tags invariants`).
const InvariantsEnabled = true

// assertInvariants validates the full CSR contract after a structural
// mutation (ApplyMove, RevertMove, CloneForMoves). It recomputes every
// derived quantity from the hit runs — the one source of truth — and
// panics on the first divergence. O(nnz) per call: strictly a debug
// build; the !invariants stub compiles to nothing.
//
// The checked contract:
//
//	offs    monotone, 0-based, closed by len(hits)
//	runs    sorted strictly ascending by Obj, every C >= 1, Obj in range
//	objs    (C = 1 strip) mirrors hits exactly when present
//	loads   Σ C·w per run, non-increasing (canonical order), key-tied
//	full    equals loads entry-wise when prepared; fullSum = Σ full
//	index   inverted object → candidate CSR matches the forward runs
//	        whenever it claims freshness (prepared && !invStale)
//	cnt     clean (all zero) — moves are between-search operations
func (in *HitInstance) assertInvariants(context string) {
	fail := func(format string, args ...any) {
		panic(fmt.Sprintf("search: invariants after %s: %s", context, fmt.Sprintf(format, args...)))
	}
	m := in.Len()
	numObjects := len(in.cnt)

	// offs well-formedness.
	if len(in.offs) != m+1 || in.offs[0] != 0 {
		fail("offs malformed: len %d (want %d), offs[0] %d", len(in.offs), m+1, in.offs[0])
	}
	if int(in.offs[m]) != len(in.hits) {
		fail("offs[%d] = %d does not close len(hits) = %d", m, in.offs[m], len(in.hits))
	}
	for i := 0; i < m; i++ {
		if in.offs[i] > in.offs[i+1] {
			fail("offs not monotone at %d: %d > %d", i, in.offs[i], in.offs[i+1])
		}
	}

	// Runs: sorted, positive counts, objects in range. Recompute loads.
	if len(in.loads) != m {
		fail("len(loads) = %d, want %d", len(in.loads), m)
	}
	for i := 0; i < m; i++ {
		run := in.hits[in.offs[i]:in.offs[i+1]]
		var sum int64
		for j, h := range run {
			if h.C < 1 {
				fail("candidate %d hit %d: count %d < 1", i, j, h.C)
			}
			if h.Obj < 0 || int(h.Obj) >= numObjects {
				fail("candidate %d hit %d: object %d out of range [0, %d)", i, j, h.Obj, numObjects)
			}
			if j > 0 && run[j-1].Obj >= h.Obj {
				fail("candidate %d run not strictly ascending at %d: %d >= %d", i, j, run[j-1].Obj, h.Obj)
			}
			c := int64(h.C)
			if in.w != nil {
				c *= in.w[h.Obj]
			}
			sum += c
		}
		if in.loads[i] != sum {
			fail("candidate %d load %d != Σ C·w %d", i, in.loads[i], sum)
		}
	}

	// C = 1 fast strip mirrors the runs.
	if in.objs != nil {
		if len(in.objs) != len(in.hits) {
			fail("objs strip len %d != len(hits) %d", len(in.objs), len(in.hits))
		}
		for g, h := range in.hits {
			if h.C != 1 {
				fail("objs strip present but hits[%d].C = %d", g, h.C)
			}
			if in.objs[g] != h.Obj {
				fail("objs strip diverges at %d: %d != %d", g, in.objs[g], h.Obj)
			}
		}
	}

	// Canonical candidate order: loads non-increasing, keys break ties.
	if in.moveKeys != nil && len(in.moveKeys) != m {
		fail("len(moveKeys) = %d, want %d", len(in.moveKeys), m)
	}
	for i := 1; i < m; i++ {
		if in.loads[i-1] < in.loads[i] {
			fail("loads not non-increasing at %d: %d < %d", i, in.loads[i-1], in.loads[i])
		}
		if in.moveKeys != nil && in.loads[i-1] == in.loads[i] && in.moveKeys[i-1] >= in.moveKeys[i] {
			fail("load tie at %d not key-ordered: key %d >= %d", i, in.moveKeys[i-1], in.moveKeys[i])
		}
	}

	// Residual baselines track the patched loads.
	if in.prepared {
		if len(in.full) != m {
			fail("len(full) = %d, want %d", len(in.full), m)
		}
		var fullSum int64
		for i := 0; i < m; i++ {
			if in.full[i] != in.loads[i] {
				fail("candidate %d full %d != load %d", i, in.full[i], in.loads[i])
			}
			fullSum += in.full[i]
		}
		if in.fullSum != fullSum {
			fail("fullSum %d != Σ full %d", in.fullSum, fullSum)
		}
	}

	// Inverted index: only checked when it claims to be fresh.
	if in.prepared && !in.invStale {
		in.assertInvertedFresh(fail)
	}

	// Moves are between-search operations: counters clean, residual
	// upkeep suspended until the next EnableResidual.
	for obj, c := range in.cnt {
		if c != 0 {
			fail("counter for object %d is %d, want 0 (moves require clean state)", obj, c)
		}
	}
}

// assertInvertedFresh re-derives the object → candidate index from the
// forward runs and compares it to the stored one.
func (in *HitInstance) assertInvertedFresh(fail func(string, ...any)) {
	m := in.Len()
	numObjects := len(in.cnt)
	if len(in.objOffs) != numObjects+1 {
		fail("len(objOffs) = %d, want %d", len(in.objOffs), numObjects+1)
	}
	counts := make([]int32, numObjects)
	for _, h := range in.hits {
		counts[h.Obj]++
	}
	for j := 0; j < numObjects; j++ {
		if in.objOffs[j+1]-in.objOffs[j] != counts[j] {
			fail("object %d inverted run length %d, want %d", j, in.objOffs[j+1]-in.objOffs[j], counts[j])
		}
	}
	if len(in.objHits) != len(in.hits) {
		fail("len(objHits) = %d != len(hits) = %d", len(in.objHits), len(in.hits))
	}
	cursor := append([]int32(nil), in.objOffs[:numObjects]...)
	for i := 0; i < m; i++ {
		for _, h := range in.hits[in.offs[i]:in.offs[i+1]] {
			g := cursor[h.Obj]
			ch := in.objHits[g]
			if int(ch.Cand) != i || ch.C != h.C {
				fail("inverted entry %d for object %d is (cand %d, C %d), want (cand %d, C %d)",
					g, h.Obj, ch.Cand, ch.C, i, h.C)
			}
			if in.objCands != nil && in.objCands[g] != ch.Cand {
				fail("objCands strip diverges at %d: %d != %d", g, in.objCands[g], ch.Cand)
			}
			cursor[h.Obj]++
		}
	}
}
