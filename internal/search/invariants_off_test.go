//go:build !invariants

package search

import "testing"

// TestInvariantsCompiledOut pins the default-build contract: the
// assertions cost nothing and fire never, even on a corrupt instance.
func TestInvariantsCompiledOut(t *testing.T) {
	if InvariantsEnabled {
		t.Fatal("InvariantsEnabled = true without the invariants tag")
	}
	in := NewHitInstance(1, 2)
	in.Reinit(1, [][]Hit{{{Obj: 0, C: 1}}, {{Obj: 1, C: 1}}}, []int64{1, 1})
	in.loads[0] = 99 // corrupt: Σ C·w is 1
	in.assertInvariants("test") // must be a no-op
}
