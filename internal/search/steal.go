// Work-stealing branch-and-bound: the parallel driver behind
// BranchAndBoundParallelWith.
//
// Pending work is an explicit, splittable frontier of Tasks — a
// selection prefix plus an untried sibling range — rather than a
// goroutine's call stack. Each worker owns a bounded LIFO deque (at
// most K entries: one continuation per ancestor of its current path)
// and explores depth-first exactly like the serial driver; whenever it
// descends into a child it publishes the node's untried siblings as a
// Task. The deque is depth-ordered, so the owner pops the deepest
// continuation (cheap replay: Removes only) while idle workers steal
// from the head — the *shallowest* range, i.e. the largest subtree —
// keeping steals rare and the Add/Remove prefix replay amortized.
//
// Two shared-atomic hot spots of the old top-level sharding are gone:
//
//   - Budget: workers consume states from leased chunks (leaseChunk at
//     a time, scaled down near the limit so one worker cannot starve
//     the rest), returning the unused remainder at exit. Used() still
//     settles to exactly the states entered; the limit is never
//     overshot.
//   - Incumbent: pruning reads a worker-local snapshot refreshed on
//     lease boundaries (and by the worker's own improvements). The
//     snapshot only lags the true incumbent, so stale reads cost extra
//     exploration, never correctness.
//
// Exact runs return byte-identical (Failed, Sel) to BranchAndBoundWith.
// The serial driver keeps the seed whenever it ties the optimum
// (incumbent updates are strict) and otherwise returns the
// lexicographically smallest optimal selection (it walks selections in
// ascending lex order and records the first optimum). The scheduler
// reproduces that reduction order-independently: ties are reported, the
// reducer keeps the seed against any tie and otherwise the lex-smallest
// tied selection, and a subtree whose bound exactly ties the snapshot
// is only pruned once no leaf in it could lex-precede the incumbent.
// Visited-state *sets* may differ from the serial run (speculative
// exploration under a stale snapshot); when the greedy seed is already
// optimal — every tracked benchmark — the incumbent never moves and the
// visited set, and hence the count, is identical at any worker count.
//
// The frontier doubles as a checkpoint: Suspend parks every in-flight
// sibling range and drains the deques, returning serializable Tasks
// that StartFrom resumes — the seam a multi-process shard layer plugs
// into. A budget-exhausted run parks its frontier the same way, so a
// resumed search with a fresh budget picks up where the old one dried
// up.
package search

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Task is one unit of pending branch-and-bound work, serializable for
// checkpointing: the search node reached by choosing Prefix (with
// Failed objects down and LoadSum chosen static load) still owes the
// sibling branches choosing candidates Start.. next. Tasks are only
// created for nodes with at least two picks remaining; leaves and
// final-level scans complete inline.
type Task struct {
	Prefix  []int `json:"prefix"`
	Start   int   `json:"start"`
	Failed  int   `json:"failed"`
	LoadSum int64 `json:"loadSum"`
}

// leaseChunk is how many budget states a worker claims per Lease. Large
// enough to keep the shared atomic off the per-state hot path, small
// enough that incumbent snapshots stay fresh and budgeted runs spread
// states across workers (near the limit, requests shrink to an even
// per-worker share).
const leaseChunk = 256

// deque is one worker's bounded work queue. The owner pushes and pops
// at the tail (LIFO, deepest continuation first); thieves steal from
// the head, which — because entries are continuations of the owner's
// current root-to-node path — is always the shallowest pending range.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) push(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) pop() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return Task{}, false
	}
	t := d.tasks[n-1]
	d.tasks = d.tasks[:n-1]
	return t, true
}

func (d *deque) steal() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return Task{}, false
	}
	t := d.tasks[0]
	d.tasks = append(d.tasks[:0], d.tasks[1:]...)
	return t, true
}

func (d *deque) empty() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.tasks) == 0
}

func (d *deque) drain() []Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	ts := d.tasks
	d.tasks = nil
	return ts
}

// ParallelSearch is a suspendable work-stealing branch-and-bound run.
// Build with NewParallelSearch, launch with Start (or StartFrom with a
// checkpointed frontier), then either Wait for the result or Suspend to
// park the remaining frontier. BranchAndBoundParallelWith wraps the
// Start/Wait pair for callers that never checkpoint.
type ParallelSearch struct {
	instances []Instance
	bud       *Budget
	bound     Bound
	workers   int
	k, m      int

	deques  []*deque
	idle    atomic.Int32
	wg      sync.WaitGroup
	started bool

	exhausted atomic.Bool // budget drained: stop, result inexact
	suspended atomic.Bool // caller asked for the frontier back
	done      atomic.Bool // frontier drained: the first worker to prove it releases the rest
	claimed   atomic.Bool // a Suspend already handed the frontier out
	finalized atomic.Bool // Wait already sealed the run

	mu         sync.Mutex
	best       Result
	bestIsSeed bool                  // best.Sel is still the caller's seed (ties never displace it)
	bestScore  atomic.Int64          // mirror of best.Failed for lock-free snapshots
	bestSel    atomic.Pointer[[]int] // nil while bestIsSeed; else a frozen copy of best.Sel

	parkedMu sync.Mutex
	parked   []Task // frontier collected at suspension or exhaustion

	finish sync.Once
	final  Result
}

// NewParallelSearch builds the per-worker instances for a work-stealing
// run. probe is a ready (Reset) instance the caller already built —
// worker 0 reuses it; newInst must return independent instances of the
// same search for the rest. Every instance is built before any worker
// spawns, so a factory failure cannot leak live workers. workers <= 0
// selects GOMAXPROCS. bud is shared (possibly with other searches); nil
// means unlimited.
func NewParallelSearch(probe Instance, newInst func() (Instance, error), seed Result, bud *Budget, workers int, bound Bound) (*ParallelSearch, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default only; results are proven worker-count invariant
	}
	instances := make([]Instance, workers)
	instances[0] = probe
	for w := 1; w < workers; w++ {
		in, err := newInst()
		if err != nil {
			return nil, err
		}
		instances[w] = in
	}
	if bud == nil {
		bud = NewBudget(0)
	}
	ps := &ParallelSearch{
		instances:  instances,
		bud:        bud,
		bound:      bound,
		workers:    workers,
		k:          probe.K(),
		m:          probe.Len(),
		best:       Result{Failed: seed.Failed, Sel: append([]int(nil), seed.Sel...), Exact: true},
		bestIsSeed: true,
		deques:     make([]*deque, workers),
	}
	for i := range ps.deques {
		ps.deques[i] = &deque{}
	}
	ps.bestScore.Store(int64(seed.Failed))
	return ps, nil
}

// Start enters the root state (charging it to the budget exactly like
// the serial driver) and launches the workers on the resulting
// frontier.
func (ps *ParallelSearch) Start() { ps.launch(ps.enterRoot()) }

// StartFrom resumes a run from a checkpointed frontier instead of the
// root. The tasks must come from a Suspend (or Frontier) of a search
// over an identically configured instance, and the seed passed to
// NewParallelSearch should be the suspended run's Result so the
// incumbent carries over; under that contract a completed resume is
// globally exact. The root was charged by the original run, so no state
// is consumed here.
func (ps *ParallelSearch) StartFrom(tasks []Task) { ps.launch(tasks) }

func (ps *ParallelSearch) launch(tasks []Task) {
	if ps.started {
		panic("search: ParallelSearch started twice")
	}
	ps.started = true
	for i, t := range tasks {
		d := ps.deques[i%ps.workers]
		d.tasks = append(d.tasks, t) // pre-spawn: no contention yet
	}
	for w := range ps.instances {
		ps.wg.Add(1)
		go func(id int) {
			defer ps.wg.Done()
			newStealWorker(ps, id).run()
		}(w)
	}
}

// enterRoot reproduces the serial driver's root-state handling — charge
// one budget unit, then leaf/bounds/final-level checks — and returns
// the initial frontier (empty when the root resolves the search).
func (ps *ParallelSearch) enterRoot() []Task {
	in := ps.instances[0]
	if !ps.bud.Visit() {
		ps.exhausted.Store(true)
		return nil
	}
	k, m := ps.k, ps.m
	if k == 0 || k > m {
		return nil
	}
	prefix := loadPrefix(in)
	rb := residualOf(in, ps.bound)
	if prunable(rb, 0, 0, prefix[k]-prefix[0], int64(in.S()), ps.bestScore.Load(), 0, k) {
		return nil
	}
	if k == 1 {
		dup := dupFlags(in)
		bestI, bestGain := -1, -1
		for i := 0; i < m; i++ {
			if dup != nil && i > 0 && dup[i] {
				continue
			}
			if g := in.Marginal(i); g > bestGain {
				bestGain, bestI = g, i
			}
		}
		if bestI >= 0 {
			ps.report(bestGain, []int{bestI})
		}
		return nil
	}
	return []Task{{Prefix: []int{}, Start: 0, Failed: 0, LoadSum: 0}}
}

// Suspend asks every worker to park: in-flight sibling ranges and
// queued continuations become frontier Tasks. It blocks until the
// workers exit and returns the frontier (empty when the search finished
// first). Wait still returns the incumbent result, marked inexact when
// work was parked.
//
// The frontier is handed out at most once: a second Suspend, or a
// Suspend after Wait has sealed the run, is a safe no-op returning nil
// — resuming the same checkpoint from two searches would explore the
// parked subtrees twice. An exhausted run's remainder stays readable
// through Frontier, which never claims it.
func (ps *ParallelSearch) Suspend() []Task {
	ps.suspended.Store(true)
	ps.wg.Wait()
	if ps.finalized.Load() || ps.claimed.Swap(true) {
		return nil
	}
	return ps.Frontier()
}

// Frontier returns the parked tasks of a finished run: the checkpoint
// of a Suspend, the unexplored remainder of a budget-exhausted run, or
// nil when the search completed. It blocks until the workers exit.
func (ps *ParallelSearch) Frontier() []Task {
	ps.wg.Wait()
	ps.parkedMu.Lock()
	defer ps.parkedMu.Unlock()
	return append([]Task(nil), ps.parked...)
}

// Wait blocks until the workers exit and returns the result. Exact is
// true only when the frontier was fully explored within budget.
func (ps *ParallelSearch) Wait() Result {
	ps.wg.Wait()
	ps.finalized.Store(true)
	ps.finish.Do(func() {
		ps.parkedMu.Lock()
		pending := len(ps.parked)
		ps.parkedMu.Unlock()
		ps.best.Visited = ps.bud.Used()
		ps.best.Exact = !ps.exhausted.Load() && pending == 0
		sort.Ints(ps.best.Sel)
		ps.final = ps.best
	})
	return ps.final
}

func (ps *ParallelSearch) stop() bool {
	return ps.exhausted.Load() || ps.suspended.Load()
}

func (ps *ParallelSearch) allEmpty() bool {
	for _, d := range ps.deques {
		if !d.empty() {
			return false
		}
	}
	return true
}

func (ps *ParallelSearch) addParked(ts ...Task) {
	ps.parkedMu.Lock()
	ps.parked = append(ps.parked, ts...)
	ps.parkedMu.Unlock()
}

// report offers a completed selection to the shared reducer. The order
// workers find selections in is scheduling-dependent, so the reducer —
// not discovery order — enforces the serial result: strict improvements
// always win; a tie never displaces the seed and otherwise wins only by
// lex order. sel must be ascending (the DFS builds it that way).
func (ps *ParallelSearch) report(failed int, sel []int) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	switch {
	case failed > ps.best.Failed:
	case failed == ps.best.Failed && !ps.bestIsSeed && lexLess(sel, ps.best.Sel):
	default:
		return
	}
	ps.best.Failed = failed
	ps.best.Sel = append(ps.best.Sel[:0], sel...)
	ps.bestIsSeed = false
	ps.bestScore.Store(int64(failed))
	frozen := append([]int(nil), sel...)
	ps.bestSel.Store(&frozen)
}

// lexLess orders equal-length ascending selections lexicographically.
func lexLess(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// stealWorker is one goroutine's view of the run: its instance, the
// applied prefix mirroring the instance's counters, its budget lease
// and incumbent snapshot.
type stealWorker struct {
	ps     *ParallelSearch
	id     int
	in     Instance
	deq    *deque
	prefix []int64
	rb     ResidualBounder
	dup    []bool
	s      int64
	cur    []int
	lease  int64
	snap   int64
	selBuf []int
	free   [][]int // recycled Task.Prefix buffers: one push per state entered, so allocation must not be
}

func newStealWorker(ps *ParallelSearch, id int) *stealWorker {
	in := ps.instances[id]
	return &stealWorker{
		ps:     ps,
		id:     id,
		in:     in,
		deq:    ps.deques[id],
		prefix: loadPrefix(in),
		rb:     residualOf(in, ps.bound),
		dup:    dupFlags(in),
		s:      int64(in.S()),
		cur:    make([]int, 0, ps.k),
		snap:   ps.bestScore.Load(),
	}
}

func (w *stealWorker) run() {
	defer w.park()
	for {
		t, ok := w.next()
		if !ok {
			return
		}
		w.runTask(t)
	}
}

// park unwinds the instance back to clean (callers reuse probes across
// searches), settles the budget lease, and checkpoints whatever is
// still queued locally.
func (w *stealWorker) park() {
	w.adopt(nil)
	if w.lease > 0 {
		w.ps.bud.Return(w.lease)
		w.lease = 0
	}
	if ts := w.deq.drain(); len(ts) > 0 {
		w.ps.addParked(ts...)
	}
}

// next pops the worker's own deepest continuation, else steals the
// shallowest range from a victim, else spins until every worker is idle
// over empty deques — at which point no task exists anywhere and none
// can appear (only owners push, and every owner drained its deque
// before idling). The first worker to prove that sets done, releasing
// the others: exits decrement the idle gauge, so later spinners could
// never re-observe idle == workers themselves. A worker whose steal
// lands in the instant the condition is proven just finishes its
// subtree alone — it drains its own deque before ever consulting done.
func (w *stealWorker) next() (Task, bool) {
	if w.ps.stop() {
		return Task{}, false
	}
	if t, ok := w.deq.pop(); ok {
		return t, true
	}
	ps := w.ps
	ps.idle.Add(1)
	defer ps.idle.Add(-1)
	for spins := 0; ; spins++ {
		if ps.stop() || ps.done.Load() {
			return Task{}, false
		}
		for off := 1; off < ps.workers; off++ {
			if t, ok := ps.deques[(w.id+off)%ps.workers].steal(); ok {
				return t, true
			}
		}
		if ps.idle.Load() == int32(ps.workers) && ps.allEmpty() {
			ps.done.Store(true)
			return Task{}, false
		}
		if spins%256 == 255 {
			time.Sleep(50 * time.Microsecond) // oversubscribed tails: stop burning the core
		}
		runtime.Gosched()
	}
}

// adopt replays the instance onto the given prefix: Remove back to the
// common ancestor, Add the rest. Popping an own continuation removes a
// suffix only; a stolen task pays the full replay — amortized, since
// steals take the shallowest (largest) pending subtrees.
func (w *stealWorker) adopt(prefix []int) {
	lcp := 0
	for lcp < len(w.cur) && lcp < len(prefix) && w.cur[lcp] == prefix[lcp] {
		lcp++
	}
	for j := len(w.cur) - 1; j >= lcp; j-- {
		w.in.Remove(w.cur[j])
	}
	w.cur = w.cur[:lcp]
	for _, c := range prefix[lcp:] {
		w.in.Add(c)
		w.cur = append(w.cur, c)
	}
}

// prefixCopy snapshots w.cur into a recycled buffer — a push happens on
// every descent (one per interior state), so per-push allocation would
// dominate the hot path.
func (w *stealWorker) prefixCopy() []int {
	var buf []int
	if n := len(w.free); n > 0 {
		buf = w.free[n-1][:0]
		w.free = w.free[:n-1]
	} else {
		buf = make([]int, 0, w.ps.k)
	}
	return append(buf, w.cur...)
}

// recycle returns an adopted task's prefix buffer to the freelist. A
// stolen buffer migrates to the thief's freelist; parked buffers escape
// the cycle (they outlive the run as the checkpoint).
func (w *stealWorker) recycle(buf []int) {
	if cap(buf) > 0 && len(w.free) < 64 {
		w.free = append(w.free, buf)
	}
}

// runTask explores the task's sibling range depth-first, mirroring the
// serial driver state for state: each child entered charges one leased
// budget unit, then runs the same leaf/prune/final-level logic; a child
// with two or more picks remaining becomes the new node after the
// untried siblings are published for thieves.
func (w *stealWorker) runTask(t Task) {
	w.adopt(t.Prefix)
	w.recycle(t.Prefix)
	failed, loadSum, start := t.Failed, t.LoadSum, t.Start
	for {
		rem := w.ps.k - len(w.cur)
		if rem <= 0 {
			return
		}
		m := w.ps.m
		if rem == 1 { // defensive: tasks are built with rem >= 2
			w.scanLast(failed, start)
			return
		}
		// The node's own loop start (its entry point in the serial DFS):
		// the dup collapse is relative to it, not to a resumed Start.
		ns := 0
		if len(w.cur) > 0 {
			ns = w.cur[len(w.cur)-1] + 1
		}
		descended := false
		for i := start; i <= m-rem; i++ {
			if w.dup != nil && i > ns && w.dup[i] {
				continue
			}
			if w.ps.stop() {
				w.parkRange(i, failed, loadSum)
				return
			}
			if !w.charge() {
				w.parkRange(i, failed, loadSum)
				return
			}
			newly := w.in.Add(i)
			cf := failed + newly
			cl := loadSum + w.in.Load(i)
			crem := rem - 1
			cstart := i + 1
			window := w.prefix[cstart+crem] - w.prefix[cstart]
			if w.pruneChild(cf, cl, window, cstart, crem, i) {
				w.in.Remove(i)
				continue
			}
			if crem == 1 {
				w.cur = append(w.cur, i)
				w.scanLast(cf, cstart)
				w.cur = w.cur[:len(w.cur)-1]
				w.in.Remove(i)
				continue
			}
			if cstart <= m-rem {
				w.deq.push(Task{Prefix: w.prefixCopy(), Start: cstart, Failed: failed, LoadSum: loadSum})
			}
			w.cur = append(w.cur, i)
			failed, loadSum, start = cf, cl, cstart
			descended = true
			break
		}
		if !descended {
			return
		}
	}
}

// parkRange checkpoints the untried remainder [i..] of the current
// node's sibling range when the run stops mid-task.
func (w *stealWorker) parkRange(i, failed int, loadSum int64) {
	w.ps.addParked(Task{Prefix: append([]int(nil), w.cur...), Start: i, Failed: failed, LoadSum: loadSum})
}

// charge consumes one state from the worker's budget lease, claiming a
// fresh chunk — and refreshing the incumbent snapshot — on lease
// boundaries. Returns false when the shared budget is dry.
func (w *stealWorker) charge() bool {
	if w.lease == 0 {
		n := int64(leaseChunk)
		if rem := w.ps.bud.Remaining(); rem < n*int64(w.ps.workers) {
			// Near the limit: claim an even share so the last states are
			// spread across workers instead of hoarded by the first asker.
			n = rem/int64(w.ps.workers) + 1
		}
		g := w.ps.bud.Lease(n)
		if g == 0 {
			w.ps.exhausted.Store(true)
			return false
		}
		w.lease = g
		if s := w.ps.bestScore.Load(); s > w.snap {
			w.snap = s
		}
	}
	w.lease--
	return true
}

// pruneChild decides whether the just-entered child (cur + next, cf
// failed, cl chosen load) can be cut. The snapshot bound is admissible,
// so anything it prunes outright is safe; the subtle case is a bound
// that exactly ties the snapshot — such a subtree cannot improve the
// damage but may hold an equal-damage selection that lex-precedes the
// incumbent, which the serial reduction would have returned. Those
// subtrees survive unless the incumbent is still the seed (ties never
// displace it) or no leaf below can lex-precede the incumbent.
func (w *stealWorker) pruneChild(cf int, cl, window int64, cstart, crem, next int) bool {
	if !prunable(w.rb, cf, cl, window, w.s, w.snap, cstart, crem) {
		return false
	}
	if prunable(w.rb, cf, cl, window, w.s, w.snap-1, cstart, crem) {
		return true // strictly below the snapshot: no tie possible
	}
	sel := w.ps.bestSel.Load()
	if sel == nil {
		return true // incumbent is the seed; ties keep it
	}
	return !prefixMayPrecede(w.cur, next, *sel)
}

// prefixMayPrecede reports whether some completion of (cur..., next)
// could lex-precede sel. Conservative: equality so far counts as
// possible.
func prefixMayPrecede(cur []int, next int, sel []int) bool {
	for j, v := range cur {
		if j >= len(sel) {
			return false
		}
		if v != sel[j] {
			return v < sel[j]
		}
	}
	if len(cur) >= len(sel) {
		return false
	}
	if next != sel[len(cur)] {
		return next < sel[len(cur)]
	}
	return true
}

// scanLast is the final-level Marginal scan over candidates cstart..m-1
// for the node currently applied to the instance (failed objects down).
// Unlike the serial driver it also reports ties — the reducer needs
// them for the lex tie-break — but, like it, takes the first of equal
// maximizers and skips duplicate candidates.
func (w *stealWorker) scanLast(failed, cstart int) {
	m := w.ps.m
	bestI, bestGain := -1, -1
	for j := cstart; j < m; j++ {
		if w.dup != nil && j > cstart && w.dup[j] {
			continue
		}
		if g := w.in.Marginal(j); g > bestGain {
			bestGain, bestI = g, j
		}
	}
	if bestI < 0 {
		return
	}
	total := failed + bestGain
	if int64(total) < w.snap {
		return
	}
	w.selBuf = append(append(w.selBuf[:0], w.cur...), bestI)
	w.ps.report(total, w.selBuf)
	if int64(total) > w.snap {
		w.snap = int64(total)
	}
}
