package search

import (
	"math/rand"
	"testing"
)

// moveModel is the rebuilt-from-scratch oracle ApplyMove is tested
// against: a plain per-candidate × per-object replica-count matrix,
// from which a canonical instance (candidates by load descending, ties
// by id ascending — the engine adapters' order) can be built at any
// time.
type moveModel struct {
	s      int
	k      int
	counts [][]int32 // [candidate id][object] replica count
	w      []int64   // optional object weights
}

func (mm *moveModel) numObjects() int { return len(mm.counts[0]) }

func (mm *moveModel) load(id int) int64 {
	var sum int64
	for obj, c := range mm.counts[id] {
		wv := int64(1)
		if mm.w != nil {
			wv = mm.w[obj]
		}
		sum += int64(c) * wv
	}
	return sum
}

// order returns candidate ids in canonical instance order.
func (mm *moveModel) order() []int {
	m := len(mm.counts)
	ids := make([]int, m)
	for i := range ids {
		ids[i] = i
	}
	loads := make([]int64, m)
	for id := range loads {
		loads[id] = mm.load(id)
	}
	for i := 1; i < m; i++ { // insertion sort: stable, tiny m
		for j := i; j > 0 && (loads[ids[j]] > loads[ids[j-1]] ||
			(loads[ids[j]] == loads[ids[j-1]] && ids[j] < ids[j-1])); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// build stamps a fresh canonical instance; pos maps candidate id →
// position and is kept current by the onSwap mirror when live is true.
func (mm *moveModel) build(live bool) (in *HitInstance, ids []int, pos []int) {
	ids = mm.order()
	m := len(ids)
	pos = make([]int, m)
	lists := make([][]Hit, m)
	loads := make([]int64, m)
	keys := make([]int32, m)
	for p, id := range ids {
		pos[id] = p
		keys[p] = int32(id)
		loads[p] = mm.load(id)
		for obj, c := range mm.counts[id] {
			if c > 0 {
				lists[p] = append(lists[p], Hit{Obj: int32(obj), C: c})
			}
		}
	}
	in = NewHitInstance(mm.s, mm.numObjects())
	in.Reinit(mm.k, lists, loads)
	in.SetWeights(mm.w)
	if live {
		in.EnableMoves(keys, func(i, j int) {
			a, b := ids[i], ids[j]
			ids[i], ids[j] = b, a
			pos[a], pos[b] = j, i
		})
	}
	return in, ids, pos
}

// randomModel populates a model with objects of r replicas spread over
// candidates; aggregate allows multi-replica hits (domain-style).
func randomModel(rng *rand.Rand, m, objects, r, s, k int, aggregate, weighted bool) *moveModel {
	mm := &moveModel{s: s, k: k, counts: make([][]int32, m)}
	for id := range mm.counts {
		mm.counts[id] = make([]int32, objects)
	}
	for obj := 0; obj < objects; obj++ {
		for rep := 0; rep < r; rep++ {
			id := rng.Intn(m)
			if !aggregate {
				// Node-style: distinct candidates per object.
				for mm.counts[id][obj] > 0 {
					id = (id + 1) % m
				}
			}
			mm.counts[id][obj]++
		}
	}
	if weighted {
		mm.w = make([]int64, objects)
		for obj := range mm.w {
			mm.w[obj] = int64(rng.Intn(4)) // 0 included: weightless moves
		}
	}
	return mm
}

// randomMove picks a random applicable (obj, fromID, toID) and applies
// it to the model. aggregate permits moving onto a candidate already
// holding the object.
func (mm *moveModel) randomMove(rng *rand.Rand, aggregate bool) (obj, fromID, toID int) {
	m := len(mm.counts)
	for {
		obj = rng.Intn(mm.numObjects())
		fromID = rng.Intn(m)
		if mm.counts[fromID][obj] == 0 {
			continue
		}
		toID = rng.Intn(m)
		if toID == fromID {
			continue
		}
		if !aggregate && mm.counts[toID][obj] > 0 {
			continue
		}
		mm.counts[fromID][obj]--
		mm.counts[toID][obj]++
		return obj, fromID, toID
	}
}

// assertSameLayout compares the moved instance against a freshly built
// oracle: the whole immutable surface the searches read. The C = 1
// strip is conservative (dropped forever once any count aggregates),
// so it is only required equal while the moved instance still has one.
func assertSameLayout(t *testing.T, tag string, got, want *HitInstance) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: Len %d, want %d", tag, got.Len(), want.Len())
	}
	for i := range got.offs {
		if got.offs[i] != want.offs[i] {
			t.Fatalf("%s: offs[%d] = %d, want %d", tag, i, got.offs[i], want.offs[i])
		}
	}
	if len(got.hits) != len(want.hits) {
		t.Fatalf("%s: %d hits, want %d", tag, len(got.hits), len(want.hits))
	}
	for i := range got.hits {
		if got.hits[i] != want.hits[i] {
			t.Fatalf("%s: hits[%d] = %+v, want %+v", tag, i, got.hits[i], want.hits[i])
		}
	}
	for i := range got.loads {
		if got.loads[i] != want.loads[i] {
			t.Fatalf("%s: loads[%d] = %d, want %d", tag, i, got.loads[i], want.loads[i])
		}
	}
	if got.objs != nil {
		if want.objs == nil {
			t.Fatalf("%s: moved instance kept a C=1 strip the oracle lacks", tag)
		}
		for i := range got.objs {
			if got.objs[i] != want.objs[i] {
				t.Fatalf("%s: objs[%d] = %d, want %d", tag, i, got.objs[i], want.objs[i])
			}
		}
	}
}

// searchBoth runs the standard greedy-seeded branch-and-bound on both
// instances and requires byte-identical results — same damage, same
// witness, same exactness, same visited states.
func searchBoth(t *testing.T, tag string, moved, fresh *HitInstance) {
	t.Helper()
	run := func(in *HitInstance) Result {
		seed := Greedy(in)
		in.Reset()
		return BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)
	}
	got, want := run(moved), run(fresh)
	if got.Failed != want.Failed || got.Exact != want.Exact || got.Visited != want.Visited {
		t.Fatalf("%s: moved search (failed=%d exact=%v visited=%d), fresh (failed=%d exact=%v visited=%d)",
			tag, got.Failed, got.Exact, got.Visited, want.Failed, want.Exact, want.Visited)
	}
	if len(got.Sel) != len(want.Sel) {
		t.Fatalf("%s: witness length %d, want %d", tag, len(got.Sel), len(want.Sel))
	}
	for i := range got.Sel {
		if got.Sel[i] != want.Sel[i] {
			t.Fatalf("%s: witness %v, want %v", tag, got.Sel, want.Sel)
		}
	}
}

// TestApplyMoveMatchesRebuild drives random move chains through a live
// instance — interleaved with full searches, so moves hit prepared,
// residual-tracked state — and checks after every move that the
// patched layout and its search results are byte-identical to a fresh
// canonical rebuild.
func TestApplyMoveMatchesRebuild(t *testing.T) {
	cases := []struct {
		name                string
		aggregate, weighted bool
	}{
		{"node-unit", false, false},
		{"domain-aggregate", true, false},
		{"node-weighted", false, true},
		{"domain-weighted", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 20; trial++ {
				mm := randomModel(rng, 8, 30, 3, 2, 3, tc.aggregate, tc.weighted)
				live, _, pos := mm.build(true)
				for mv := 0; mv < 12; mv++ {
					obj, fromID, toID := mm.randomMove(rng, tc.aggregate)
					live.ApplyMove(obj, pos[fromID], pos[toID])
					fresh, _, _ := mm.build(false)
					tag := tc.name
					assertSameLayout(t, tag, live, fresh)
					if mv%3 == 0 { // search on some states: residual machinery gets built and re-patched
						searchBoth(t, tag, live, fresh)
					}
				}
			}
		})
	}
}

// TestRevertMoveRestores checks the ApplyMove/RevertMove round trip is
// the identity on the full layout, including after searches prepared
// the residual baselines.
func TestRevertMoveRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		mm := randomModel(rng, 7, 25, 3, 2, 3, trial%2 == 0, false)
		live, _, pos := mm.build(true)
		if trial%3 == 0 {
			seed := Greedy(live)
			live.Reset()
			BranchAndBoundWith(live, seed, NewBudget(0), BoundResidual)
		}
		snapshot, _, _ := mm.build(false)
		obj, fromID, toID := mm.randomMove(rng, trial%2 == 0)
		nf, nt := live.ApplyMove(obj, pos[fromID], pos[toID])
		if nf != pos[fromID] || nt != pos[toID] {
			t.Fatalf("returned positions (%d,%d) disagree with the onSwap mirror (%d,%d)",
				nf, nt, pos[fromID], pos[toID])
		}
		live.RevertMove(obj, nf, nt)
		mm.counts[fromID][obj]++
		mm.counts[toID][obj]--
		assertSameLayout(t, "revert", live, snapshot)
		searchBoth(t, "revert", live, snapshot)
	}
}

// TestRevalidate checks the warm-start helper returns the witness's
// damage and leaves the counters clean.
func TestRevalidate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mm := randomModel(rng, 8, 30, 3, 2, 3, false, false)
	in, _, _ := mm.build(false)
	seed := Greedy(in)
	in.Reset()
	res := BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)
	if rv := Revalidate(in, res.Sel); rv != res.Failed {
		t.Fatalf("Revalidate(witness) = %d, want the witness damage %d", rv, res.Failed)
	}
	// Counters clean: a second identical search reproduces the result.
	seed2 := Greedy(in)
	in.Reset()
	res2 := BranchAndBoundWith(in, seed2, NewBudget(0), BoundResidual)
	if res2.Failed != res.Failed || res2.Visited != res.Visited {
		t.Fatalf("search after Revalidate diverged: (failed=%d visited=%d), want (failed=%d visited=%d)",
			res2.Failed, res2.Visited, res.Failed, res.Visited)
	}
}

// TestWarmSeedReturnsWitnessVerbatim pins the warm-start driver
// contract: seeding branch-and-bound with a re-validated witness that
// is already optimal returns that witness unchanged (drivers replace
// the incumbent only on strict improvement).
func TestWarmSeedReturnsWitnessVerbatim(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mm := randomModel(rng, 8, 30, 3, 2, 3, false, false)
	in, _, _ := mm.build(false)
	seed := Greedy(in)
	in.Reset()
	opt := BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)
	warm := BranchAndBoundWith(in, Result{Failed: opt.Failed, Sel: opt.Sel}, NewBudget(0), BoundResidual)
	if warm.Failed != opt.Failed || !warm.Exact {
		t.Fatalf("warm re-search: failed=%d exact=%v, want failed=%d exact=true", warm.Failed, warm.Exact, opt.Failed)
	}
	for i := range warm.Sel {
		if warm.Sel[i] != opt.Sel[i] {
			t.Fatalf("warm re-search witness %v, want the seed witness %v", warm.Sel, opt.Sel)
		}
	}
	if warm.Visited > opt.Visited {
		t.Fatalf("warm re-search visited %d states, more than the cold %d", warm.Visited, opt.Visited)
	}
}

// FuzzMoveRevert drives arbitrary move/revert sequences from fuzz data
// against the rebuilt-from-scratch oracle.
func FuzzMoveRevert(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x13, 0x42, 0x7f, 0x01, 0x99})
	f.Add(int64(42), []byte{0xff, 0xee, 0xdd, 0x10, 0x20, 0x30, 0x40, 0x50})
	f.Add(int64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		rng := rand.New(rand.NewSource(seed))
		aggregate := seed%2 == 0
		mm := randomModel(rng, 6, 20, 3, 2, 3, aggregate, seed%3 == 0)
		live, _, pos := mm.build(true)
		type applied struct{ obj, nf, nt, fromID, toID int }
		var undoable []applied
		if len(ops) > 64 {
			ops = ops[:64]
		}
		for _, op := range ops {
			if op&1 == 1 && len(undoable) > 0 {
				// Revert the most recent un-reverted move.
				a := undoable[len(undoable)-1]
				undoable = undoable[:len(undoable)-1]
				live.RevertMove(a.obj, pos[a.fromID], pos[a.toID])
				mm.counts[a.fromID][a.obj]++
				mm.counts[a.toID][a.obj]--
			} else {
				obj, fromID, toID := mm.randomMove(rng, aggregate)
				nf, nt := live.ApplyMove(obj, pos[fromID], pos[toID])
				undoable = append(undoable, applied{obj, nf, nt, fromID, toID})
			}
			fresh, _, _ := mm.build(false)
			assertSameLayout(t, "fuzz", live, fresh)
			if op&0x40 != 0 { // occasionally run the full search comparison
				searchBoth(t, "fuzz", live, fresh)
			}
		}
	})
}
