//go:build !invariants

package search

// InvariantsEnabled reports whether the build carries the runtime
// invariant assertions (`go test -tags invariants`).
const InvariantsEnabled = false

// assertInvariants is a no-op in regular builds; the call sites inline
// away entirely.
func (in *HitInstance) assertInvariants(string) {}
