package search

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomHitInstance builds a HitInstance from a random object→replica
// assignment: b objects, each replicated on r distinct raw candidates
// with per-candidate multiplicities in [1, maxC], candidates reordered
// into the descending-load invariant. It returns the instance plus the
// per-candidate hit lists in final candidate order (for oracles).
func randomHitInstance(rng *rand.Rand, m, r, b, s, k, maxC int) (*HitInstance, [][]Hit) {
	perCand := make([]map[int32]int32, m)
	for i := range perCand {
		perCand[i] = make(map[int32]int32)
	}
	for obj := 0; obj < b; obj++ {
		perm := rng.Perm(m)
		for _, c := range perm[:r] {
			perCand[c][int32(obj)] = int32(1 + rng.Intn(maxC))
		}
	}
	lists := make([][]Hit, m)
	loads := make([]int64, m)
	for c := 0; c < m; c++ {
		for obj := int32(0); obj < int32(b); obj++ {
			if cnt, ok := perCand[c][obj]; ok {
				lists[c] = append(lists[c], Hit{Obj: obj, C: cnt})
				loads[c] += int64(cnt)
			}
		}
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	// Descending load, ties by raw id — the branch-and-bound invariant.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if loads[order[j]] > loads[order[i]] ||
				(loads[order[j]] == loads[order[i]] && order[j] < order[i]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	ordLists := make([][]Hit, m)
	ordLoads := make([]int64, m)
	for i, raw := range order {
		ordLists[i] = lists[raw]
		ordLoads[i] = loads[raw]
	}
	in := NewHitInstance(s, b)
	in.Reinit(k, ordLists, ordLoads)
	return in, ordLists
}

// TestResidualBoundEquivalence is the bound-soundness property test the
// ablation switch rests on: on random instances, residual-bound B&B,
// static-bound B&B, and Exhaustive return identical damage (and the two
// B&B modes the identical witness, since they walk the same tree), while
// the residual mode never visits more states than the static mode.
func TestResidualBoundEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	var tighter int
	for trial := 0; trial < 60; trial++ {
		m := 6 + rng.Intn(6)
		r := 2 + rng.Intn(2)
		b := 5 + rng.Intn(25)
		maxC := 1 + rng.Intn(3)
		s := 1 + rng.Intn(r*maxC)
		if s > r*maxC {
			s = r * maxC
		}
		k := 1 + rng.Intn(m-1)
		in, _ := randomHitInstance(rng, m, r, b, s, k, maxC)

		ex := Exhaustive(in)
		seed := Greedy(in)
		in.Reset()
		static := BranchAndBoundWith(in, seed, NewBudget(0), BoundStatic)
		resid := BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)

		if static.Failed != ex.Failed || resid.Failed != ex.Failed {
			t.Errorf("trial %d (m=%d r=%d b=%d s=%d k=%d): damage static=%d residual=%d exhaustive=%d",
				trial, m, r, b, s, k, static.Failed, resid.Failed, ex.Failed)
		}
		if !static.Exact || !resid.Exact {
			t.Errorf("trial %d: unbounded searches not exact (static %v, residual %v)",
				trial, static.Exact, resid.Exact)
		}
		if !reflect.DeepEqual(static.Sel, resid.Sel) {
			t.Errorf("trial %d: witness diverged: static %v, residual %v — same tree, same incumbents",
				trial, static.Sel, resid.Sel)
		}
		if resid.Visited > static.Visited {
			t.Errorf("trial %d: residual visited %d > static %d — the refinement loosened pruning",
				trial, resid.Visited, static.Visited)
		}
		if resid.Visited < static.Visited {
			tighter++
		}
	}
	if tighter == 0 {
		t.Error("residual bound never pruned deeper than static across 60 random trials — upkeep is likely broken")
	}
}

// TestResidualBoundUnderBudget pins the shared budget semantics for both
// bound modes: exactly one state per unit, incumbent within [greedy,
// exact], Exact cleared.
func TestResidualBoundUnderBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	in, _ := randomHitInstance(rng, 14, 3, 120, 2, 5, 1)
	seed := Greedy(in)
	in.Reset()
	full := BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)
	for _, bound := range []Bound{BoundStatic, BoundResidual} {
		for _, limit := range []int64{1, 9, 40} {
			bud := NewBudget(limit)
			res := BranchAndBoundWith(in, seed, bud, bound)
			if res.Exact {
				t.Errorf("%v budget %d: claims exactness", bound, limit)
			}
			if res.Visited != limit || bud.Used() != limit {
				t.Errorf("%v budget %d: visited %d used %d — one state per unit", bound, limit, res.Visited, bud.Used())
			}
			if res.Failed < seed.Failed || res.Failed > full.Failed {
				t.Errorf("%v budget %d: result %d outside [greedy %d, exact %d]",
					bound, limit, res.Failed, seed.Failed, full.Failed)
			}
		}
	}
}

// TestResidualStatsOracle drives a random Add/Remove stack against a
// from-scratch recomputation of the ResidualBounder invariants — the
// incremental upkeep (threshold crossings walking the inverted index)
// must match the definition at every step.
func TestResidualStatsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		m := 5 + rng.Intn(6)
		r := 2 + rng.Intn(2)
		b := 4 + rng.Intn(20)
		maxC := 1 + rng.Intn(3)
		s := 1 + rng.Intn(3)
		in, lists := randomHitInstance(rng, m, r, b, s, k1(m), maxC)
		in.EnableResidual()

		check := func(chosen []int) {
			// From-scratch: counters, then per-candidate residuals and
			// the aggregate invariants.
			cnt := make([]int64, b)
			for _, c := range chosen {
				for _, h := range lists[c] {
					cnt[h.Obj] += int64(h.C)
				}
			}
			var wantDead, wantResid, wantDisc int64
			resid := make([]int64, m)
			for obj := 0; obj < b; obj++ {
				if cnt[obj] >= int64(s) {
					wantDead += cnt[obj]
				}
			}
			for c := 0; c < m; c++ {
				for _, h := range lists[c] {
					if cnt[h.Obj] < int64(s) {
						resid[c] += int64(h.C)
					} else {
						wantDisc += int64(h.C)
					}
				}
				// All candidates, chosen included: the global residual
				// deliberately overcounts chosen candidates (sound, and
				// keeps Add/Remove free of chosen-set bookkeeping); the
				// precise per-suffix cap is TopResidual.
				wantResid += resid[c]
			}
			gotDead, gotResid, gotDisc := in.ResidualStats()
			if gotDead != wantDead || gotResid != wantResid || gotDisc != wantDisc {
				t.Fatalf("trial %d chosen %v: ResidualStats = (%d, %d, %d), oracle (%d, %d, %d)",
					trial, chosen, gotDead, gotResid, gotDisc, wantDead, wantResid, wantDisc)
			}
			// TopResidual against a sort-based oracle, at random cuts.
			start := rng.Intn(m)
			maxRem := m - start
			if maxRem == 0 {
				return
			}
			rem := 1 + rng.Intn(maxRem)
			suffix := append([]int64(nil), resid[start:]...)
			sort.Slice(suffix, func(a, b int) bool { return suffix[a] > suffix[b] })
			var want int64
			for _, v := range suffix[:rem] {
				want += v
			}
			if got := in.TopResidual(start, rem); got != want {
				t.Fatalf("trial %d chosen %v: TopResidual(%d, %d) = %d, oracle %d",
					trial, chosen, start, rem, got, want)
			}
		}

		var stack []int
		check(stack)
		for step := 0; step < 60; step++ {
			if len(stack) > 0 && (len(stack) == m || rng.Intn(2) == 0) {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				in.Remove(top)
			} else {
				c := rng.Intn(m)
				for contains(stack, c) {
					c = rng.Intn(m)
				}
				// Cross-check Add's newly-failed count too.
				want := in.Marginal(c)
				if got := in.Add(c); got != want {
					t.Fatalf("trial %d: Add(%d) = %d, Marginal said %d", trial, c, got, want)
				}
				stack = append(stack, c)
			}
			check(stack)
		}
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			in.Remove(top)
		}
		check(stack)
	}
}

func k1(m int) int {
	if m < 2 {
		return 1
	}
	return m / 2
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// marginalCounter counts final-level scan work. Embedding promotes
// DupOfPrev, so the wrapped instance still dedups; the cover variant
// below never does.
type marginalCounter struct {
	*HitInstance
	calls int
}

func (c *marginalCounter) Marginal(i int) int { c.calls++; return c.HitInstance.Marginal(i) }

type coverMarginalCounter struct {
	*coverInstance
	calls int
}

func (c *coverMarginalCounter) Marginal(i int) int { c.calls++; return c.coverInstance.Marginal(i) }

// TestDuplicateCollapse pins the dedup contract on a partition-style
// instance: pairs of candidates with identical hit lists (plus zero-load
// padding) are explored once, so the deduping HitInstance visits no more
// states than a dedup-blind instance of the same search — at identical
// damage — and, because the final-level Marginal scan skips duplicates
// too, does strictly less scan work per rem == 1 node.
func TestDuplicateCollapse(t *testing.T) {
	// 4 groups of 2 identical candidates; group g hosts objects
	// 3g..3g+2 (with C = 1), s = 2, k = 3.
	const groups, b, s, k = 4, 12, 2, 3
	var members [][]int // per object: raw candidate indices (for coverInstance)
	lists := make([][]Hit, 2*groups)
	loads := make([]int64, 2*groups)
	members = make([][]int, b)
	for g := 0; g < groups; g++ {
		for o := 0; o < 3; o++ {
			obj := 3*g + o
			members[obj] = []int{2 * g, 2*g + 1}
			for _, c := range []int{2 * g, 2*g + 1} {
				lists[c] = append(lists[c], Hit{Obj: int32(obj), C: 1})
				loads[c] += 1
			}
		}
	}
	hit := NewHitInstance(s, b)
	hit.Reinit(k, lists, loads)
	for i := 1; i < 2*groups; i++ {
		wantDup := i%2 == 1 // the second member of each pair duplicates the first
		if hit.DupOfPrev(i) != wantDup {
			t.Errorf("DupOfPrev(%d) = %v, want %v", i, hit.DupOfPrev(i), wantDup)
		}
	}

	cover := newCoverInstance(2*groups, k, s, members) // no Deduper support
	want := Exhaustive(cover).Failed

	seedC := Greedy(cover)
	cover.Reset()
	blindIn := &coverMarginalCounter{coverInstance: cover}
	blind := BranchAndBoundWith(blindIn, seedC, NewBudget(0), BoundStatic)
	seedH := Greedy(hit)
	hit.Reset()
	dedupIn := &marginalCounter{HitInstance: hit}
	dedup := BranchAndBoundWith(dedupIn, seedH, NewBudget(0), BoundStatic)

	if blind.Failed != want || dedup.Failed != want {
		t.Fatalf("damage: blind %d, dedup %d, exhaustive %d", blind.Failed, dedup.Failed, want)
	}
	if dedup.Visited >= blind.Visited {
		t.Errorf("dedup visited %d >= blind %d — duplicate branches not collapsed", dedup.Visited, blind.Visited)
	}
	// The final-level scan is uncounted by the budget, so the skip shows
	// up in Marginal calls, not Visited: every dedup scan drops the
	// second member of each pair past its start.
	if dedupIn.calls >= blindIn.calls {
		t.Errorf("dedup made %d Marginal calls >= blind %d — final-level scan not skipping duplicates", dedupIn.calls, blindIn.calls)
	}
}

// TestReinitReuse pins the scratch-reuse contract the constrained
// engines rely on: re-initializing one instance across different
// candidate sets (of the same object universe) yields the same results
// as fresh instances.
func TestReinitReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	scratch := NewHitInstance(2, 30)
	for trial := 0; trial < 10; trial++ {
		m := 4 + rng.Intn(5)
		k := 1 + rng.Intn(m-1)
		fresh, lists := randomHitInstance(rng, m, 2, 30, 2, k, 2)
		loads := make([]int64, m)
		for i, hl := range lists {
			for _, h := range hl {
				loads[i] += int64(h.C)
			}
		}
		scratch.Reinit(k, lists, loads)

		wantSeed := Greedy(fresh)
		fresh.Reset()
		want := BranchAndBound(fresh, wantSeed, NewBudget(0))
		gotSeed := Greedy(scratch)
		scratch.Reset()
		got := BranchAndBound(scratch, gotSeed, NewBudget(0))
		if got.Failed != want.Failed || got.Visited != want.Visited || !reflect.DeepEqual(got.Sel, want.Sel) {
			t.Errorf("trial %d: reused scratch {failed %d visited %d sel %v} != fresh {failed %d visited %d sel %v}",
				trial, got.Failed, got.Visited, got.Sel, want.Failed, want.Visited, want.Sel)
		}
	}
}

// FuzzBoundEquivalence derives a tiny instance from the fuzz input and
// asserts the bound-equivalence property (static damage == residual
// damage == exhaustive damage; residual visits no more states).
func FuzzBoundEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(2), uint8(12), uint8(2), uint8(3))
	f.Add(int64(42), uint8(6), uint8(3), uint8(20), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, m8, r8, b8, s8, k8 uint8) {
		m := 2 + int(m8%9)
		r := 1 + int(r8%3)
		if r > m {
			r = m
		}
		b := 1 + int(b8%24)
		s := 1 + int(s8%3)
		k := 1 + int(k8)%m
		if k >= m {
			k = m - 1
		}
		if k < 1 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		in, _ := randomHitInstance(rng, m, r, b, s, k, 2)
		ex := Exhaustive(in)
		seedRes := Greedy(in)
		in.Reset()
		static := BranchAndBoundWith(in, seedRes, NewBudget(0), BoundStatic)
		resid := BranchAndBoundWith(in, seedRes, NewBudget(0), BoundResidual)
		if static.Failed != ex.Failed || resid.Failed != ex.Failed {
			t.Fatalf("damage static=%d residual=%d exhaustive=%d (m=%d r=%d b=%d s=%d k=%d)",
				static.Failed, resid.Failed, ex.Failed, m, r, b, s, k)
		}
		if resid.Visited > static.Visited {
			t.Fatalf("residual visited %d > static %d", resid.Visited, static.Visited)
		}
	})
}
