package search

import (
	"testing"
)

// cloneMovesFixture builds a small move-enabled instance: 6 candidates
// over 8 objects, C = 1 hits, loads non-increasing.
func cloneMovesFixture(t *testing.T) *HitInstance {
	t.Helper()
	lists := [][]Hit{
		{{Obj: 0, C: 1}, {Obj: 1, C: 1}, {Obj: 2, C: 1}, {Obj: 3, C: 1}},
		{{Obj: 0, C: 1}, {Obj: 1, C: 1}, {Obj: 4, C: 1}},
		{{Obj: 2, C: 1}, {Obj: 5, C: 1}, {Obj: 6, C: 1}},
		{{Obj: 3, C: 1}, {Obj: 4, C: 1}},
		{{Obj: 5, C: 1}, {Obj: 7, C: 1}},
		{{Obj: 6, C: 1}, {Obj: 7, C: 1}},
	}
	loads := []int64{4, 3, 3, 2, 2, 2}
	in := NewHitInstance(2, 8)
	in.Reinit(2, lists, loads)
	keys := []int32{0, 1, 2, 3, 4, 5}
	in.EnableMoves(keys, nil)
	return in
}

// TestCloneForMovesIsolation pins the fork contract CloneForMoves
// exists for: a move applied to the clone must leave the receiver's
// search results — and a move applied to the receiver must leave the
// clone's — byte-identical to an untouched twin, unlike Clone, whose
// shared CSR arrays ApplyMove would corrupt.
func TestCloneForMovesIsolation(t *testing.T) {
	parent := cloneMovesFixture(t)
	pristine := cloneMovesFixture(t)
	base := Exhaustive(pristine)

	child := parent.CloneForMoves()
	// Mutate the child heavily: move object 0 off the heaviest candidate
	// and back, then leave a net move in place.
	child.ApplyMove(0, 0, 3)
	child.ApplyMove(1, 0, 4)
	if got := Exhaustive(parent); got.Failed != base.Failed {
		t.Fatalf("child moves changed the parent: damage %d, want %d", got.Failed, base.Failed)
	}
	// Residual-pruned search on the parent after child moves: the
	// machinery prepares on the parent's own (untouched) backing.
	parent.Reset()
	parent.EnableResidual()
	seed := Greedy(parent)
	parent.Reset()
	parent.EnableResidual()
	if got := BranchAndBoundWith(parent, seed, NewBudget(0), BoundResidual); got.Failed != base.Failed {
		t.Fatalf("parent residual search after child moves: damage %d, want %d", got.Failed, base.Failed)
	}

	// And the reverse: parent moves must not leak into a fresh clone.
	parent2 := cloneMovesFixture(t)
	child2 := parent2.CloneForMoves()
	childBase := Exhaustive(child2)
	if childBase.Failed != base.Failed {
		t.Fatalf("clone damage %d, want %d", childBase.Failed, base.Failed)
	}
	parent2.ApplyMove(0, 0, 3)
	child2.Reset()
	if got := Exhaustive(child2); got.Failed != base.Failed {
		t.Fatalf("parent moves changed the clone: damage %d, want %d", got.Failed, base.Failed)
	}
}

// TestCloneForMovesRoundTrip checks a clone behaves exactly like a
// fresh instance under the move machinery: apply + revert restores the
// original damage, and the clone's own onSwap binding fires.
func TestCloneForMovesRoundTrip(t *testing.T) {
	parent := cloneMovesFixture(t)
	base := Exhaustive(parent)
	parent.Reset()

	child := parent.CloneForMoves()
	swaps := 0
	keys := []int32{0, 1, 2, 3, 4, 5}
	child.EnableMoves(keys, func(i, j int) { swaps++ })
	// Moving object 7 from candidate 4 (load 2 → 1, sinks) to candidate
	// 2 (load 3 → 4, rises past the load-3 run) forces re-sort swaps.
	nf, nt := child.ApplyMove(7, 4, 2)
	moved := Exhaustive(child)
	child.Reset()
	child.RevertMove(7, nf, nt)
	back := Exhaustive(child)
	if back.Failed != base.Failed {
		t.Fatalf("revert on clone: damage %d, want %d", back.Failed, base.Failed)
	}
	_ = moved
	if swaps == 0 {
		t.Fatal("the clone's own onSwap mirror never fired (load order must change for this fixture)")
	}
}
