//go:build invariants

package search

import (
	"strings"
	"testing"
)

// moveReady builds a small move-enabled instance in canonical order:
// three candidates with loads 2, 2, 1.
func moveReady(t *testing.T) *HitInstance {
	t.Helper()
	in := NewHitInstance(1, 3)
	in.Reinit(2, [][]Hit{
		{{Obj: 0, C: 1}, {Obj: 1, C: 1}},
		{{Obj: 0, C: 1}, {Obj: 2, C: 1}},
		{{Obj: 2, C: 1}},
	}, []int64{2, 2, 1})
	in.EnableMoves([]int32{0, 1, 2}, nil)
	return in
}

func TestInvariantsEnabled(t *testing.T) {
	if !InvariantsEnabled {
		t.Fatal("InvariantsEnabled = false under the invariants tag")
	}
}

// TestAssertInvariantsPassesOnValidMoves exercises the checked paths on
// a healthy instance: every ApplyMove, RevertMove and CloneForMoves
// runs the full CSR audit and must stay silent.
func TestAssertInvariantsPassesOnValidMoves(t *testing.T) {
	in := moveReady(t)
	from, to := in.ApplyMove(0, 0, 2)
	cp := in.CloneForMoves()
	if cp.Len() != in.Len() {
		t.Fatalf("clone Len %d != %d", cp.Len(), in.Len())
	}
	in.RevertMove(0, from, to)
}

// TestAssertInvariantsCatchesCorruption corrupts one derived quantity
// and expects the audit to panic: this is the fixture proving the
// assertions are live, not compiled out.
func TestAssertInvariantsCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(in *HitInstance)
		wantMsg string
	}{
		{"load drift", func(in *HitInstance) { in.loads[2]++ }, "load"},
		{"zero count", func(in *HitInstance) { in.hits[0].C = 0 }, "count"},
		{"unsorted run", func(in *HitInstance) {
			in.hits[0], in.hits[1] = in.hits[1], in.hits[0]
		}, "ascending"},
		{"dirty counter", func(in *HitInstance) { in.cnt[1] = 1 }, "counter"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := moveReady(t)
			tc.corrupt(in)
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("corruption not caught")
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, tc.wantMsg) {
					t.Fatalf("panic %v does not mention %q", r, tc.wantMsg)
				}
			}()
			if tc.name == "unsorted run" || tc.name == "zero count" {
				// The objs strip would mask run corruption: drop it so
				// the run checks themselves fire.
				in.objs = nil
			}
			in.assertInvariants("test")
		})
	}
}
