package search

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// BranchAndBoundParallel is BranchAndBound fanned out over worker
// goroutines with the default BoundResidual pruning discipline; see
// BranchAndBoundParallelWith.
func BranchAndBoundParallel(probe Instance, newInst func() (Instance, error), seed Result, bud *Budget, workers int) (Result, error) {
	return BranchAndBoundParallelWith(probe, newInst, seed, bud, workers, BoundResidual)
}

// BranchAndBoundParallelWith is BranchAndBoundWith fanned out over a
// work-stealing scheduler (see steal.go): pending work is an explicit
// frontier of {prefix, sibling-range} tasks, each worker explores
// depth-first on its own instance and publishes its shallowest untried
// ranges for idle workers to steal, budget states are consumed from
// leased chunks, and incumbent reads are a local snapshot refreshed on
// lease boundaries. workers <= 0 selects GOMAXPROCS; workers == 1
// degrades to the serial driver on the probe.
//
// probe is a ready (Reset) instance the caller already built — worker 0
// reuses it, so seeding greedy on it first costs no extra construction;
// it is returned clean (the applied prefix fully unwound), so callers
// may reuse it across searches. newInst must return independent
// instances of the same search (same candidate order, loads and damage
// accounting) for the remaining workers; each owns one. bud is shared
// across all workers — the same semantics as the serial driver,
// consumed collectively and accounted exactly.
//
// Exact runs return byte-identical (Failed, Sel) to BranchAndBoundWith.
// With a budget, the set of states visited differs between runs, so
// budgeted results may vary (each is still a valid attack and lower
// bound on the damage). Callers that need to checkpoint or resume the
// search use ParallelSearch directly.
func BranchAndBoundParallelWith(probe Instance, newInst func() (Instance, error), seed Result, bud *Budget, workers int, bound Bound) (Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default only; results are proven worker-count invariant
	}
	if workers == 1 {
		return BranchAndBoundWith(probe, seed, bud, bound), nil
	}
	ps, err := NewParallelSearch(probe, newInst, seed, bud, workers, bound)
	if err != nil {
		return Result{}, err
	}
	ps.Start()
	return ps.Wait(), nil
}

// BranchAndBoundShardedWith is the previous parallel driver, kept one
// release as the opt-out of the work-stealing scheduler and as the
// baseline that BenchmarkStealSkew quantifies against: workers drain a
// shared counter of top-level branches (the first failed candidate) and
// then grind each subtree alone, sharing the budget and incumbent
// through per-state atomics. With strong pruning most top-level
// branches die instantly and the survivors are grossly unequal, so
// workers starve on skewed instances — the starvation the work-stealing
// driver removes.
//
// Deprecated: use BranchAndBoundParallelWith.
func BranchAndBoundShardedWith(probe Instance, newInst func() (Instance, error), seed Result, bud *Budget, workers int, bound Bound) (Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default only; results are proven worker-count invariant
	}
	if workers == 1 {
		return BranchAndBoundWith(probe, seed, bud, bound), nil
	}
	m, k := probe.Len(), probe.K()
	// Build every worker's instance before spawning any goroutine: a
	// factory failure mid-spawn would otherwise leak live workers that
	// keep searching and draining the caller's budget.
	instances := make([]Instance, workers)
	instances[0] = probe
	for w := 1; w < workers; w++ {
		in, err := newInst()
		if err != nil {
			return Result{}, err
		}
		instances[w] = in
	}

	var (
		mu        sync.Mutex
		best      = Result{Failed: seed.Failed, Sel: append([]int(nil), seed.Sel...), Exact: true}
		bestScore atomic.Int64 // mirror of best.Failed for lock-free pruning
		exhausted atomic.Bool
	)
	bestScore.Store(int64(seed.Failed))
	report := func(failed int, sel []int) {
		mu.Lock()
		defer mu.Unlock()
		if failed > best.Failed {
			best.Failed = failed
			best.Sel = append(best.Sel[:0], sel...)
			bestScore.Store(int64(failed))
		}
	}

	// Top-level branches: first chosen candidate index.
	var nextStart atomic.Int64
	var wg sync.WaitGroup
	for _, in := range instances {
		wg.Add(1)
		go func(in Instance) {
			defer wg.Done()
			s := in.S()
			prefix := loadPrefix(in)
			rb := residualOf(in, bound)
			dup := dupFlags(in)
			cur := make([]int, 0, k)
			var dfs func(start, failed int, loadSum int64)
			dfs = func(start, failed int, loadSum int64) {
				if exhausted.Load() {
					return
				}
				if !bud.Visit() {
					exhausted.Store(true)
					return
				}
				rem := k - len(cur)
				if rem == 0 {
					if int64(failed) > bestScore.Load() {
						report(failed, cur)
					}
					return
				}
				if start+rem > m {
					return
				}
				window := prefix[start+rem] - prefix[start]
				if prunable(rb, failed, loadSum, window, int64(s), bestScore.Load(), start, rem) {
					return
				}
				if rem == 1 {
					bestI, bestGain := -1, -1
					for i := start; i < m; i++ {
						if dup != nil && i > start && dup[i] {
							continue
						}
						if g := in.Marginal(i); g > bestGain {
							bestGain = g
							bestI = i
						}
					}
					if bestI >= 0 && int64(failed+bestGain) > bestScore.Load() {
						cur = append(cur, bestI)
						report(failed+bestGain, cur)
						cur = cur[:len(cur)-1]
					}
					return
				}
				for i := start; i <= m-rem; i++ {
					if dup != nil && i > start && dup[i] {
						continue
					}
					newly := in.Add(i)
					cur = append(cur, i)
					dfs(i+1, failed+newly, loadSum+in.Load(i))
					cur = cur[:len(cur)-1]
					in.Remove(i)
					if exhausted.Load() {
						return
					}
				}
			}
			for {
				first := int(nextStart.Add(1)) - 1
				if first > m-k || exhausted.Load() {
					return
				}
				// Top-level duplicate collapse: the worker that drew
				// first-1 covers every selection this branch could add.
				if dup != nil && first > 0 && dup[first] {
					continue
				}
				newly := in.Add(first)
				cur = append(cur[:0], first)
				dfs(first+1, newly, in.Load(first))
				cur = cur[:0]
				in.Remove(first)
			}
		}(in)
	}
	wg.Wait()

	best.Visited = bud.Used()
	best.Exact = !exhausted.Load()
	sort.Ints(best.Sel)
	return best, nil
}
