package search

import "fmt"

// This file is the incremental half of the search core: one-replica
// move deltas over a live HitInstance, so that chains of nearly
// identical searches (candidate scoring in the spread pass, re-plans
// in a continuous reconciler) patch the CSR layout in place instead of
// rebuilding it per evaluation.
//
// A move transfers one replica of one object between two candidates.
// ApplyMove patches the hit runs, the static loads and — when the
// residual machinery has been built — the per-candidate full-load
// baselines, then restores the canonical candidate order (loads
// non-increasing, the branch-and-bound invariant) by adjacent-swap
// bubbling; the inverted object → candidate index is NOT patched, only
// marked stale, and re-derived once by the next EnableResidual. The
// warm-start side of the contract is Revalidate: replay the previous
// search's witness on the patched instance and seed the next
// BranchAndBoundWith with whatever damage it still achieves, so the
// first prune is already tight.
//
// Moves and clones don't mix: Clone shares the CSR backing arrays that
// ApplyMove mutates, so — exactly like Reinit — never apply a move
// while clones from a previous search are still live. The parallel
// driver builds its clones after the caller's moves and discards them
// before the next one, which satisfies this by construction.

// EnableMoves declares the instance mutable by ApplyMove and installs
// the caller's candidate identities. keys[i] is candidate i's identity
// (a node or domain id): after a move changes loads, candidates are
// re-sorted by (load descending, key ascending) — the same order the
// engine adapters build fresh instances in, so a moved instance stays
// byte-identical to a cold rebuild. onSwap, when non-nil, is invoked
// for every adjacent transposition (i, j = i+1) so the caller can
// mirror its own index ↔ identity maps. A nil keys keeps ties in their
// current relative order (moves remain sound, but the layout is no
// longer canonical on load ties). Reinit clears both; re-enable after
// every Reinit.
func (in *HitInstance) EnableMoves(keys []int32, onSwap func(i, j int)) {
	if keys != nil && len(keys) != in.Len() {
		panic(fmt.Sprintf("search: %d move keys for %d candidates", len(keys), in.Len()))
	}
	if keys == nil {
		in.moveKeys = nil
	} else {
		in.moveKeys = append(in.moveKeys[:0], keys...)
	}
	in.onSwap = onSwap
}

// ApplyMove transfers one replica of obj from candidate position from
// to candidate position to, patching the CSR layout, the loads and the
// residual baselines in place, and returns the two candidates' new
// positions after the canonical re-sort. The from run must hold a hit
// on obj; the to run gains one (aggregating onto an existing hit when
// the candidate already covers obj, as whole-domain adapters do).
// Counters must be clean (between searches). The residual upkeep is
// suspended until the next EnableResidual rebuilds the inverted index
// from the patched runs.
func (in *HitInstance) ApplyMove(obj, from, to int) (newFrom, newTo int) {
	m := in.Len()
	if obj < 0 || obj >= len(in.cnt) {
		panic(fmt.Sprintf("search: ApplyMove object %d out of range [0, %d)", obj, len(in.cnt)))
	}
	if from < 0 || from >= m || to < 0 || to >= m {
		panic(fmt.Sprintf("search: ApplyMove candidates (%d, %d) out of range [0, %d)", from, to, m))
	}
	if from == to {
		return from, to
	}
	wd := int64(1)
	if in.w != nil {
		wd = in.w[obj]
	}
	in.removeReplica(obj, from)
	in.addReplica(obj, to)
	in.loads[from] -= wd
	in.loads[to] += wd
	if in.prepared {
		in.full[from] -= wd
		in.full[to] += wd
		in.invStale = true // fullSum is unchanged; the index is not
	}
	in.track = false
	// Restore the canonical order: from lost load and only ever sinks
	// right, to gained load and only ever rises left. Each transposition
	// keeps the other runs sorted, so two insertion passes suffice.
	for from+1 < m && in.sortsBefore(from+1, from) {
		in.swapAdjacent(from)
		if to == from+1 {
			to = from
		}
		from++
	}
	for to > 0 && in.sortsBefore(to, to-1) {
		in.swapAdjacent(to - 1)
		if from == to-1 {
			from = to
		}
		to--
	}
	in.assertInvariants("ApplyMove")
	return from, to
}

// RevertMove undoes ApplyMove(obj, …) given the positions that move
// RETURNED: it is exactly ApplyMove with the endpoints exchanged, and
// restores the pre-move layout byte for byte (the re-sort is canonical,
// so the round trip is the identity).
func (in *HitInstance) RevertMove(obj, from, to int) (newFrom, newTo int) {
	return in.ApplyMove(obj, to, from)
}

// removeReplica drops one replica of obj from candidate pos's run:
// decrement the aggregated count, or excise the hit entirely when it
// was the last one.
func (in *HitInstance) removeReplica(obj, pos int) {
	lo, hi := int(in.offs[pos]), int(in.offs[pos+1])
	g := lo + findHit(in.hits[lo:hi], int32(obj))
	if g >= hi || in.hits[g].Obj != int32(obj) {
		panic(fmt.Sprintf("search: ApplyMove candidate %d holds no replica of object %d", pos, obj))
	}
	if in.hits[g].C > 1 {
		in.hits[g].C--
		return
	}
	in.hits = append(in.hits[:g], in.hits[g+1:]...)
	if in.objs != nil {
		in.objs = append(in.objs[:g], in.objs[g+1:]...)
	}
	for i := pos + 1; i < len(in.offs); i++ {
		in.offs[i]--
	}
}

// addReplica adds one replica of obj to candidate pos's run, inserting
// a fresh hit in object order or bumping the existing aggregate (which
// drops the C = 1 fast strip: a count of 2 no longer fits it).
func (in *HitInstance) addReplica(obj, pos int) {
	lo, hi := int(in.offs[pos]), int(in.offs[pos+1])
	g := lo + findHit(in.hits[lo:hi], int32(obj))
	if g < hi && in.hits[g].Obj == int32(obj) {
		in.hits[g].C++
		in.objs = nil // aggregated counts have outgrown the strip
		return
	}
	in.hits = append(in.hits, Hit{})
	copy(in.hits[g+1:], in.hits[g:])
	in.hits[g] = Hit{Obj: int32(obj), C: 1}
	if in.objs != nil {
		in.objs = append(in.objs, 0)
		copy(in.objs[g+1:], in.objs[g:])
		in.objs[g] = int32(obj)
	}
	for i := pos + 1; i < len(in.offs); i++ {
		in.offs[i]++
	}
}

// findHit returns the index of obj within the run (sorted by ascending
// object id), or the insertion point if absent.
func findHit(run []Hit, obj int32) int {
	lo, hi := 0, len(run)
	for lo < hi {
		mid := (lo + hi) / 2
		if run[mid].Obj < obj {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sortsBefore reports whether candidate a belongs strictly before
// candidate b in the canonical order: load descending, then — when
// EnableMoves installed identities — key ascending.
func (in *HitInstance) sortsBefore(a, b int) bool {
	if in.loads[a] != in.loads[b] {
		return in.loads[a] > in.loads[b]
	}
	if in.moveKeys != nil {
		return in.moveKeys[a] < in.moveKeys[b]
	}
	return false
}

// swapAdjacent exchanges candidates i and i+1: rotate their two runs
// within the flat CSR array, swap the per-candidate scalars, and
// notify the caller's onSwap mirror.
func (in *HitInstance) swapAdjacent(i int) {
	a, b, c := int(in.offs[i]), int(in.offs[i+1]), int(in.offs[i+2])
	in.hitScratch = append(in.hitScratch[:0], in.hits[a:b]...)
	copy(in.hits[a:], in.hits[b:c])
	copy(in.hits[a+(c-b):], in.hitScratch)
	if in.objs != nil {
		in.objScratch = append(in.objScratch[:0], in.objs[a:b]...)
		copy(in.objs[a:], in.objs[b:c])
		copy(in.objs[a+(c-b):], in.objScratch)
	}
	in.offs[i+1] = int32(a + (c - b))
	in.loads[i], in.loads[i+1] = in.loads[i+1], in.loads[i]
	if in.prepared {
		in.full[i], in.full[i+1] = in.full[i+1], in.full[i]
	}
	if in.moveKeys != nil {
		in.moveKeys[i], in.moveKeys[i+1] = in.moveKeys[i+1], in.moveKeys[i]
	}
	if in.onSwap != nil {
		in.onSwap(i, i+1)
	}
}

// Revalidate replays a witness selection on a (possibly moved)
// instance and returns the damage it still achieves — the warm-start
// incumbent for BranchAndBoundWith. Because the drivers only replace
// the incumbent on strict improvement, seeding with the revalidated
// previous witness means a re-plan whose optimum did not change
// returns the same witness it started from. The instance's counters
// must be clean and are left clean.
func Revalidate(in Instance, sel []int) int {
	failed := 0
	for _, i := range sel {
		failed += in.Add(i)
	}
	for _, i := range sel {
		in.Remove(i)
	}
	return failed
}
