// Package search is the generic worst-case subset-search core behind
// every adversary engine. The problem it solves: from m candidates,
// choose exactly K whose combined failure maximizes the number of failed
// objects, where incremental damage accounting is delegated to an
// Instance (node-level, whole-domain, and domain-constrained adversaries
// all reduce to this shape — the hierarchical correlated-failure view of
// Mills, Chandrasekaran & Mittal, arXiv:1701.01539, collapses them onto
// one search).
//
// Three drivers share one pruning discipline and one budget/visited-state
// semantics:
//
//   - Exhaustive: enumerate every K-subset. Reference oracle.
//   - Greedy: marginal-gain selection plus single-swap local search. A
//     valid attack, hence a lower bound on the damage.
//   - BranchAndBound (and its parallel twin): depth-first search in
//     candidate order, seeded with an incumbent and pruned by one or two
//     admissible damage bounds selected by a Bound mode (see below).
//
// # Pruning bounds
//
// The static replica-counting bound prunes a partial selection when even
// the top-loaded completion cannot beat the incumbent:
//
//	failed(K) <= ⌊(Σ_{c∈K} Load(c)) / S⌋
//
// The residual-load bound (BoundResidual, the default) additionally
// discounts damage already done on the current path: replicas belonging
// to objects that have crossed the S threshold are dead weight, so any
// completion can newly fail at most
//
//	⌊(liveSpent + min(window, residual)) / S⌋
//
// objects, where liveSpent counts failed replicas of still-live objects,
// window is the static top-rem load sum the static bound uses, and
// residual counts the unchosen candidates' replicas on still-live
// objects (see ResidualBounder). Because the chosen load decomposes as
// liveSpent + deadSpent with deadSpent >= S·failed, this bound is never
// weaker than the static one, so it is the only prune residual mode
// runs; BoundStatic (the ablation switch) restricts pruning to the
// static bound. Residual pruning is a strict refinement: on the same
// instance it visits a subset of the states the static bound visits and
// returns the identical result.
//
// Budget semantics (shared by every driver and engine built on them):
// each branch-and-bound search state entered — every partial selection
// considered, including the root — consumes one unit from the Budget.
// When the Budget runs dry the search stops, keeps its incumbent, and
// reports Exact = false. Greedy seeding never consumes budget.
package search

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Instance is the incremental damage-accounting state for one search: m
// candidates (indexed 0..Len()-1), of which exactly K must be chosen.
// Implementations must guarantee Len() >= K(), and the branch-and-bound
// drivers additionally require candidates in non-increasing Load order —
// the replica-counting bound assumes the first rem remaining candidates
// carry the most load, so an unsorted instance would prune incorrectly
// (the drivers verify and panic rather than return a wrong optimum).
type Instance interface {
	// Len returns the number of candidates m.
	Len() int
	// K returns the attack-set size.
	K() int
	// S returns how many failed replicas fail an object (the divisor of
	// the replica-counting bound).
	S() int
	// Load returns candidate i's static replica load: failing i can
	// fail at most Load(i) replicas.
	Load(i int) int64
	// Add fails candidate i and returns the number of newly failed
	// objects.
	Add(i int) int
	// Remove reverts Add(i).
	Remove(i int)
	// Marginal returns how many additional objects would fail if
	// candidate i were added, without mutating state.
	Marginal(i int) int
	// Reset zeroes all failure counters (after Greedy left them dirty).
	Reset()
}

// ResidualBounder is an optional Instance extension enabling the
// residual-load bound. Implementations maintain, alongside the failure
// counters, the per-candidate residual load resid(c) = Σ_{(obj,C) ∈
// hits(c), obj live} C — candidate c's replicas restricted to live
// objects — and the aggregate invariant quantities
//
//	deadSpent = Σ_{obj dead} cnt(obj)   (failed replicas of dead objects)
//	residual  = Σ_{c} resid(c)          (all candidates — overcounting the
//	                                     chosen ones is sound and keeps
//	                                     Add/Remove free of chosen-set
//	                                     bookkeeping)
//	discount  = Σ_{c} (fullLoad(c) - resid(c))   (dead load, all candidates)
//
// where an object is dead once S of its replicas have failed. The
// drivers derive liveSpent — failed replicas of still-live objects —
// as the chosen candidates' static load minus deadSpent (tracking the
// dead side keeps the common live-hit path branch-cheap). Any
// completion of the current selection then newly fails at most
// ⌊(liveSpent + cap) / S⌋ objects, where cap is any upper bound on the
// completion's hits to live objects: the drivers use
// min(static window, residual) as the O(1) cap and TopResidual as the
// exact one, gated by discount (the scan cannot recover more than the
// dead load, so it only runs when that could flip the decision).
// HitInstance implements this; instances that don't are searched with
// the static bound only.
// Because the upkeep (threshold-crossing walks over an inverted index)
// costs real work in Add/Remove, it is off until a driver calls
// EnableResidual — Greedy seeding, Exhaustive enumeration, and
// static-bound ablation runs all mutate at full speed.
type ResidualBounder interface {
	Instance
	// EnableResidual turns on the incremental residual upkeep. Must be
	// called on a clean (Reset) instance, whose baselines are correct by
	// construction; it stays on until the next Reinit.
	EnableResidual()
	// ResidualStats returns the current (deadSpent, residual, discount)
	// invariants. Valid only while the upkeep is enabled.
	ResidualStats() (deadSpent, residual, discount int64)
	// TopResidual returns the sum of the rem largest residual loads
	// among candidates start..Len()-1 — the exact residual analogue of
	// the static top-rem window (never larger, since resid <= Load
	// pointwise and candidates are load-sorted). The drivers only call
	// it with 0 < rem <= Len()-start.
	TopResidual(start, rem int) int64
}

// Deduper is an optional Instance extension enabling duplicate-candidate
// collapse: when DupOfPrev(i) reports that candidate i's hit list is
// identical to candidate i-1's, the branch-and-bound drivers skip the
// branch that chooses i after skipping i-1 at the same level — the
// damage of any such selection is already realized by the selection
// using i-1 instead. Common in symmetric placements (x = 0 partition
// chunks co-hosted on r nodes), singleton-domain topologies, and the
// zero-load candidates instances pad with.
type Deduper interface {
	Instance
	// DupOfPrev reports whether candidate i (i >= 1) has a hit list
	// identical to candidate i-1's.
	DupOfPrev(i int) bool
}

// Bound selects the branch-and-bound pruning discipline.
type Bound int

const (
	// BoundResidual prunes with both the static replica-counting bound
	// and the residual-load bound (when the instance supports it). The
	// default: never weaker than BoundStatic, identical results.
	BoundResidual Bound = iota
	// BoundStatic prunes with the static replica-counting bound only —
	// the ablation baseline.
	BoundStatic
)

// String names the bound for diagnostics and CLI output.
func (b Bound) String() string {
	switch b {
	case BoundResidual:
		return "residual"
	case BoundStatic:
		return "static"
	}
	return fmt.Sprintf("Bound(%d)", int(b))
}

// ParseBound parses a -bound flag value.
func ParseBound(s string) (Bound, error) {
	switch s {
	case "residual":
		return BoundResidual, nil
	case "static":
		return BoundStatic, nil
	}
	return 0, fmt.Errorf("search: unknown bound %q (want residual or static)", s)
}

// Result is a search outcome in candidate-index space. Callers translate
// Sel back to node or domain identities.
type Result struct {
	Failed  int   // objects failed by the best attack found
	Sel     []int // chosen candidate indices, ascending
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search states visited (diagnostics/ablation)
}

// Budget caps the number of branch-and-bound states one logical search
// may visit, shared across sub-searches (constrained per-subset runs)
// and worker goroutines (parallel drivers). A limit <= 0 means
// unlimited; states are still counted for diagnostics. The zero Budget
// is unlimited and ready to use.
type Budget struct {
	limit int64
	used  atomic.Int64
}

// NewBudget returns a budget allowing limit states (<= 0: unlimited).
func NewBudget(limit int64) *Budget { return &Budget{limit: limit} }

// Visit consumes one state. It reports false — without consuming — once
// the limit is reached; the caller must then stop searching and clear
// Exact. Concurrent use is safe; workers racing past the limit may
// overshoot by at most one state each.
func (b *Budget) Visit() bool {
	if b.limit > 0 && b.used.Load() >= b.limit {
		return false
	}
	b.used.Add(1)
	return true
}

// Used returns the number of states consumed so far. While a parallel
// search is in flight the count includes leased-but-unentered states
// (see Lease); once every worker has exited, leases are settled and
// Used is exactly the number of states entered.
func (b *Budget) Used() int64 { return b.used.Load() }

// Limit returns the configured state limit (<= 0: unlimited).
func (b *Budget) Limit() int64 { return b.limit }

// Remaining returns how many states the budget still allows. Unlimited
// budgets report math.MaxInt64.
func (b *Budget) Remaining() int64 {
	if b.limit <= 0 {
		return math.MaxInt64
	}
	if rem := b.limit - b.used.Load(); rem > 0 {
		return rem
	}
	return 0
}

// Exhausted reports whether the limit has been reached.
func (b *Budget) Exhausted() bool {
	return b.limit > 0 && b.used.Load() >= b.limit
}

// Lease atomically claims up to n states for a worker to consume
// without further synchronization, returning the number granted (0 once
// the limit is reached — never a partial zero while states remain). The
// worker must give back whatever it did not enter via Return before it
// exits, so that Used settles to exactly the states entered and a
// leased-but-unused remainder is never leaked. Unlimited budgets grant
// every request in full.
func (b *Budget) Lease(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if b.limit <= 0 {
		b.used.Add(n)
		return n
	}
	for {
		u := b.used.Load()
		if u >= b.limit {
			return 0
		}
		g := b.limit - u
		if g > n {
			g = n
		}
		if b.used.CompareAndSwap(u, u+g) {
			return g
		}
	}
}

// Return gives back the unused remainder of a Lease.
func (b *Budget) Return(n int64) {
	if n > 0 {
		b.used.Add(-n)
	}
}

// Exhaustive enumerates every K-subset of candidates. Cost is C(m, K)
// times the incremental update cost; use only when that product is
// small. The instance's failure counters must be clean and are left
// clean. (No pruning and no duplicate collapse: this is the reference
// oracle the pruned drivers are differentially tested against.)
func Exhaustive(in Instance) Result {
	m, k := in.Len(), in.K()
	best := Result{Failed: -1, Exact: true}
	cur := make([]int, 0, k)
	var visited int64
	var dfs func(start, failed int)
	dfs = func(start, failed int) {
		visited++
		if len(cur) == k {
			if failed > best.Failed {
				best.Failed = failed
				best.Sel = append(best.Sel[:0], cur...)
			}
			return
		}
		rem := k - len(cur)
		for i := start; i <= m-rem; i++ {
			newly := in.Add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly)
			cur = cur[:len(cur)-1]
			in.Remove(i)
		}
	}
	dfs(0, 0)
	best.Visited = visited
	if best.Failed < 0 {
		best.Failed = 0
	}
	return best
}

// Greedy picks K candidates by maximum marginal damage, then improves
// the set with single-swap local search. The result is a valid attack
// (a lower bound on the worst case) but not guaranteed optimal. The
// instance's failure counters are left dirty; Reset before reuse.
// Visited reports the number of marginal-damage evaluations actually
// performed (the unit of greedy work), so ablation tables compare real
// effort.
func Greedy(in Instance) Result {
	m, k := in.Len(), in.K()
	chosen := make([]bool, m)
	sel := make([]int, 0, k)
	failed := 0
	var evals int64
	for len(sel) < k {
		bestI, bestGain := -1, -1
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			evals++
			if g := in.Marginal(i); g > bestGain {
				bestGain = g
				bestI = i
			}
		}
		failed += in.Add(bestI)
		chosen[bestI] = true
		sel = append(sel, bestI)
	}
	// Swap local search: replace one chosen candidate with one unchosen
	// candidate when it strictly increases damage.
	improved := true
	rounds := 0
	for improved && rounds < 4*k {
		improved = false
		rounds++
		for si, ci := range sel {
			in.Remove(ci)
			evals++
			lost := in.Marginal(ci) // damage this candidate was contributing
			bestI, bestGain := ci, lost
			for i := 0; i < m; i++ {
				if chosen[i] { // includes ci itself
					continue
				}
				evals++
				if g := in.Marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			in.Add(bestI)
			if bestI != ci {
				chosen[ci] = false
				chosen[bestI] = true
				sel[si] = bestI
				failed += bestGain - lost
				improved = true
			}
		}
	}
	sorted := append([]int(nil), sel...)
	sort.Ints(sorted)
	return Result{
		Failed:  failed,
		Sel:     sorted,
		Exact:   false,
		Visited: evals,
	}
}

// BranchAndBound runs the depth-first search seeded with an incumbent
// (conventionally Greedy's result on the same instance, after Reset),
// pruning with the default BoundResidual discipline.
func BranchAndBound(in Instance, seed Result, bud *Budget) Result {
	return BranchAndBoundWith(in, seed, bud, BoundResidual)
}

// BranchAndBoundWith is BranchAndBound with an explicit pruning bound
// (the -bound ablation switch). The instance's failure counters must be
// clean. Every state entered consumes one unit of bud; when bud runs
// dry the incumbent so far is returned with Exact = false. Visited
// reports bud's total consumption, so searches sharing a Budget report
// the shared count.
func BranchAndBoundWith(in Instance, seed Result, bud *Budget, bound Bound) Result {
	m, k, s := in.Len(), in.K(), in.S()
	prefix := loadPrefix(in)
	rb := residualOf(in, bound)
	dup := dupFlags(in)
	best := Result{Failed: seed.Failed, Sel: append([]int(nil), seed.Sel...), Exact: true}
	cur := make([]int, 0, k)
	exhausted := false

	var dfs func(start, failed int, loadSum int64)
	dfs = func(start, failed int, loadSum int64) {
		if exhausted {
			return
		}
		if !bud.Visit() {
			exhausted = true
			return
		}
		rem := k - len(cur)
		if rem == 0 {
			if failed > best.Failed {
				best.Failed = failed
				best.Sel = append(best.Sel[:0], cur...)
			}
			return
		}
		if start+rem > m {
			return
		}
		window := prefix[start+rem] - prefix[start]
		if prunable(rb, failed, loadSum, window, int64(s), int64(best.Failed), start, rem) {
			return
		}
		if rem == 1 {
			// Final level: scan candidates for the best single extension.
			// Duplicates collapse here too: candidate i's marginal equals
			// its identical predecessor's, and the strict argmax keeps the
			// first of any equal pair, so skipping dup[i] (whose
			// representative i-1 >= start is scanned) changes nothing but
			// the scan work.
			bestI, bestGain := -1, -1
			for i := start; i < m; i++ {
				if dup != nil && i > start && dup[i] {
					continue
				}
				if g := in.Marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			if bestI >= 0 && failed+bestGain > best.Failed {
				best.Failed = failed + bestGain
				best.Sel = append(append(best.Sel[:0], cur...), bestI)
			}
			return
		}
		for i := start; i <= m-rem; i++ {
			// Duplicate collapse: choosing i after skipping the
			// identical i-1 at this level re-derives a selection whose
			// damage the i-1 branch already realized.
			if dup != nil && i > start && dup[i] {
				continue
			}
			newly := in.Add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly, loadSum+in.Load(i))
			cur = cur[:len(cur)-1]
			in.Remove(i)
			if exhausted {
				return
			}
		}
	}
	dfs(0, 0, 0)
	best.Visited = bud.Used()
	if exhausted {
		best.Exact = false
	}
	return best
}

// prunable is the one copy of the bound algebra shared by the serial
// and parallel drivers: it reports whether no completion of the current
// state — failed objects down, the chosen candidates carrying loadSum
// static load, rem picks left among candidates start..Len()-1 with
// top-rem static window — can beat the incumbent.
//
// With rb == nil it is the static replica-counting bound: any
// completion adds at most the top rem remaining loads, and s failed
// replicas are needed per failed object. With rb, the residual-load
// bound: completions can only newly fail objects that are still live,
// with future hits capped by the static window, the candidates'
// live-object residual, and (when the dead-load discount could flip
// the decision) the exact top-rem residual scan. The residual form
// dominates the static one (loadSum = liveSpent + deadSpent >=
// liveSpent + s·failed), so it is the only prune residual mode needs.
func prunable(rb ResidualBounder, failed int, loadSum, window, s, incumbent int64, start, rem int) bool {
	if rb == nil {
		return (loadSum+window)/s <= incumbent
	}
	deadSpent, residual, discount := rb.ResidualStats()
	liveSpent := loadSum - deadSpent
	cheap := window
	if residual < cheap {
		cheap = residual
	}
	f := int64(failed)
	if f+(liveSpent+cheap)/s <= incumbent {
		return true
	}
	if discount > 0 && f+(liveSpent+window-discount)/s <= incumbent &&
		f+(liveSpent+rb.TopResidual(start, rem))/s <= incumbent {
		return true
	}
	return false
}

// residualOf returns the instance's residual-bound view when the mode
// asks for it and the instance maintains one — switching its upkeep on
// (the instance is clean at driver entry) — else nil (static-only
// pruning).
func residualOf(in Instance, bound Bound) ResidualBounder {
	if bound != BoundResidual {
		return nil
	}
	rb, ok := in.(ResidualBounder)
	if !ok {
		return nil
	}
	rb.EnableResidual()
	return rb
}

// dupFlags precomputes the duplicate-candidate flags (dup[i]: candidate
// i's hits equal candidate i-1's) so the DFS inner loop avoids the
// interface call; nil when the instance has no duplicates to collapse.
func dupFlags(in Instance) []bool {
	d, ok := in.(Deduper)
	if !ok {
		return nil
	}
	m := in.Len()
	var flags []bool
	for i := 1; i < m; i++ {
		if d.DupOfPrev(i) {
			if flags == nil {
				flags = make([]bool, m)
			}
			flags[i] = true
		}
	}
	return flags
}

// loadPrefix returns prefix sums of the instance's candidate loads
// (prefix[i] = sum of Load(0..i-1)), panicking if the loads are not
// non-increasing: the replica-counting bound is unsound on unsorted
// candidates, and a panic beats a silently wrong "exact" optimum.
func loadPrefix(in Instance) []int64 {
	m := in.Len()
	prefix := make([]int64, m+1)
	for i := 0; i < m; i++ {
		if i > 0 && in.Load(i) > in.Load(i-1) {
			panic("search: branch-and-bound requires candidates in non-increasing Load order")
		}
		prefix[i+1] = prefix[i] + in.Load(i)
	}
	return prefix
}
