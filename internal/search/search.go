// Package search is the generic worst-case subset-search core behind
// every adversary engine. The problem it solves: from m candidates,
// choose exactly K whose combined failure maximizes the number of failed
// objects, where incremental damage accounting is delegated to an
// Instance (node-level, whole-domain, and domain-constrained adversaries
// all reduce to this shape — the hierarchical correlated-failure view of
// Mills, Chandrasekaran & Mittal, arXiv:1701.01539, collapses them onto
// one search).
//
// Three drivers share one pruning bound and one budget/visited-state
// semantics:
//
//   - Exhaustive: enumerate every K-subset. Reference oracle.
//   - Greedy: marginal-gain selection plus single-swap local search. A
//     valid attack, hence a lower bound on the damage.
//   - BranchAndBound (and its parallel twin): depth-first search in
//     candidate order, seeded with an incumbent, pruned with the
//     replica-counting bound failed(K) <= ⌊(Σ_{c∈K} Load(c)) / S⌋.
//
// Budget semantics (shared by every driver and engine built on them):
// each branch-and-bound search state entered — every partial selection
// considered, including the root — consumes one unit from the Budget.
// When the Budget runs dry the search stops, keeps its incumbent, and
// reports Exact = false. Greedy seeding never consumes budget.
package search

import (
	"sort"
	"sync/atomic"
)

// Instance is the incremental damage-accounting state for one search: m
// candidates (indexed 0..Len()-1), of which exactly K must be chosen.
// Implementations must guarantee Len() >= K(), and the branch-and-bound
// drivers additionally require candidates in non-increasing Load order —
// the replica-counting bound assumes the first rem remaining candidates
// carry the most load, so an unsorted instance would prune incorrectly
// (the drivers verify and panic rather than return a wrong optimum).
type Instance interface {
	// Len returns the number of candidates m.
	Len() int
	// K returns the attack-set size.
	K() int
	// S returns how many failed replicas fail an object (the divisor of
	// the replica-counting bound).
	S() int
	// Load returns candidate i's static replica load: failing i can
	// fail at most Load(i) replicas.
	Load(i int) int64
	// Add fails candidate i and returns the number of newly failed
	// objects.
	Add(i int) int
	// Remove reverts Add(i).
	Remove(i int)
	// Marginal returns how many additional objects would fail if
	// candidate i were added, without mutating state.
	Marginal(i int) int
	// Reset zeroes all failure counters (after Greedy left them dirty).
	Reset()
}

// Result is a search outcome in candidate-index space. Callers translate
// Sel back to node or domain identities.
type Result struct {
	Failed  int   // objects failed by the best attack found
	Sel     []int // chosen candidate indices, ascending
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search states visited (diagnostics/ablation)
}

// Budget caps the number of branch-and-bound states one logical search
// may visit, shared across sub-searches (constrained per-subset runs)
// and worker goroutines (parallel drivers). A limit <= 0 means
// unlimited; states are still counted for diagnostics. The zero Budget
// is unlimited and ready to use.
type Budget struct {
	limit int64
	used  atomic.Int64
}

// NewBudget returns a budget allowing limit states (<= 0: unlimited).
func NewBudget(limit int64) *Budget { return &Budget{limit: limit} }

// Visit consumes one state. It reports false — without consuming — once
// the limit is reached; the caller must then stop searching and clear
// Exact. Concurrent use is safe; workers racing past the limit may
// overshoot by at most one state each.
func (b *Budget) Visit() bool {
	if b.limit > 0 && b.used.Load() >= b.limit {
		return false
	}
	b.used.Add(1)
	return true
}

// Used returns the number of states consumed so far.
func (b *Budget) Used() int64 { return b.used.Load() }

// Exhausted reports whether the limit has been reached.
func (b *Budget) Exhausted() bool {
	return b.limit > 0 && b.used.Load() >= b.limit
}

// Exhaustive enumerates every K-subset of candidates. Cost is C(m, K)
// times the incremental update cost; use only when that product is
// small. The instance's failure counters must be clean and are left
// clean.
func Exhaustive(in Instance) Result {
	m, k := in.Len(), in.K()
	best := Result{Failed: -1, Exact: true}
	cur := make([]int, 0, k)
	var visited int64
	var dfs func(start, failed int)
	dfs = func(start, failed int) {
		visited++
		if len(cur) == k {
			if failed > best.Failed {
				best.Failed = failed
				best.Sel = append(best.Sel[:0], cur...)
			}
			return
		}
		rem := k - len(cur)
		for i := start; i <= m-rem; i++ {
			newly := in.Add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly)
			cur = cur[:len(cur)-1]
			in.Remove(i)
		}
	}
	dfs(0, 0)
	best.Visited = visited
	if best.Failed < 0 {
		best.Failed = 0
	}
	return best
}

// Greedy picks K candidates by maximum marginal damage, then improves
// the set with single-swap local search. The result is a valid attack
// (a lower bound on the worst case) but not guaranteed optimal. The
// instance's failure counters are left dirty; Reset before reuse.
func Greedy(in Instance) Result {
	m, k := in.Len(), in.K()
	chosen := make([]bool, m)
	sel := make([]int, 0, k)
	failed := 0
	for len(sel) < k {
		bestI, bestGain := -1, -1
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			if g := in.Marginal(i); g > bestGain {
				bestGain = g
				bestI = i
			}
		}
		failed += in.Add(bestI)
		chosen[bestI] = true
		sel = append(sel, bestI)
	}
	// Swap local search: replace one chosen candidate with one unchosen
	// candidate when it strictly increases damage.
	improved := true
	rounds := 0
	for improved && rounds < 4*k {
		improved = false
		rounds++
		for si, ci := range sel {
			in.Remove(ci)
			lost := in.Marginal(ci) // damage this candidate was contributing
			bestI, bestGain := ci, lost
			for i := 0; i < m; i++ {
				if chosen[i] { // includes ci itself
					continue
				}
				if g := in.Marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			in.Add(bestI)
			if bestI != ci {
				chosen[ci] = false
				chosen[bestI] = true
				sel[si] = bestI
				failed += bestGain - lost
				improved = true
			}
		}
	}
	sorted := append([]int(nil), sel...)
	sort.Ints(sorted)
	return Result{
		Failed:  failed,
		Sel:     sorted,
		Exact:   false,
		Visited: int64(rounds) * int64(m),
	}
}

// BranchAndBound runs the depth-first search seeded with an incumbent
// (conventionally Greedy's result on the same instance, after Reset).
// The instance's failure counters must be clean. Every state entered
// consumes one unit of bud; when bud runs dry the incumbent so far is
// returned with Exact = false. Visited reports bud's total consumption,
// so searches sharing a Budget report the shared count.
func BranchAndBound(in Instance, seed Result, bud *Budget) Result {
	m, k, s := in.Len(), in.K(), in.S()
	prefix := loadPrefix(in)
	best := Result{Failed: seed.Failed, Sel: append([]int(nil), seed.Sel...), Exact: true}
	cur := make([]int, 0, k)
	exhausted := false

	var dfs func(start, failed int, loadSum int64)
	dfs = func(start, failed int, loadSum int64) {
		if exhausted {
			return
		}
		if !bud.Visit() {
			exhausted = true
			return
		}
		rem := k - len(cur)
		if rem == 0 {
			if failed > best.Failed {
				best.Failed = failed
				best.Sel = append(best.Sel[:0], cur...)
			}
			return
		}
		// Replica-counting bound: any completion adds at most the top
		// rem remaining loads; s failed replicas are needed per failed
		// object.
		if start+rem > m {
			return
		}
		maxLoad := loadSum + prefix[start+rem] - prefix[start]
		if int(maxLoad/int64(s)) <= best.Failed {
			return
		}
		if rem == 1 {
			// Final level: scan candidates for the best single extension.
			bestI, bestGain := -1, -1
			for i := start; i < m; i++ {
				if g := in.Marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			if bestI >= 0 && failed+bestGain > best.Failed {
				best.Failed = failed + bestGain
				best.Sel = append(append(best.Sel[:0], cur...), bestI)
			}
			return
		}
		for i := start; i <= m-rem; i++ {
			newly := in.Add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly, loadSum+in.Load(i))
			cur = cur[:len(cur)-1]
			in.Remove(i)
			if exhausted {
				return
			}
		}
	}
	dfs(0, 0, 0)
	best.Visited = bud.Used()
	if exhausted {
		best.Exact = false
	}
	return best
}

// loadPrefix returns prefix sums of the instance's candidate loads
// (prefix[i] = sum of Load(0..i-1)), panicking if the loads are not
// non-increasing: the replica-counting bound is unsound on unsorted
// candidates, and a panic beats a silently wrong "exact" optimum.
func loadPrefix(in Instance) []int64 {
	m := in.Len()
	prefix := make([]int64, m+1)
	for i := 0; i < m; i++ {
		if i > 0 && in.Load(i) > in.Load(i-1) {
			panic("search: branch-and-bound requires candidates in non-increasing Load order")
		}
		prefix[i+1] = prefix[i] + in.Load(i)
	}
	return prefix
}

// Hit records that failing a candidate adds C failed replicas to object
// Obj — the aggregated accounting unit shared by every whole-domain
// adapter (a node-level adapter is the special case C = 1 throughout).
type Hit struct {
	Obj int32
	C   int32
}

// HitCounter is the s-threshold failure accounting over aggregated
// hits: an object fails once its failed-replica count reaches S. It
// exists so the two domain adapters (package adversary's engine
// instance and package placement's never-worse evaluator) share one
// copy of the crossing logic instead of mirroring it.
type HitCounter struct {
	S   int32
	Cnt []int32 // failed replicas per object
}

// Add applies the hits and returns the number of newly failed objects.
func (h *HitCounter) Add(hits []Hit) int {
	newly := 0
	for _, hit := range hits {
		old := h.Cnt[hit.Obj]
		h.Cnt[hit.Obj] = old + hit.C
		if old < h.S && old+hit.C >= h.S {
			newly++
		}
	}
	return newly
}

// Remove reverts Add(hits).
func (h *HitCounter) Remove(hits []Hit) {
	for _, hit := range hits {
		h.Cnt[hit.Obj] -= hit.C
	}
}

// Marginal returns how many objects Add(hits) would newly fail, without
// mutating state.
func (h *HitCounter) Marginal(hits []Hit) int {
	gain := 0
	for _, hit := range hits {
		if c := h.Cnt[hit.Obj]; c < h.S && c+hit.C >= h.S {
			gain++
		}
	}
	return gain
}

// Reset zeroes the counters.
func (h *HitCounter) Reset() {
	for i := range h.Cnt {
		h.Cnt[i] = 0
	}
}

// HitInstance is a ready-made Instance over aggregated hits: candidate
// i fails every object in Hits[i] by the recorded replica counts, and
// an object dies once Ctr.S of its replicas have failed. Callers supply
// candidates in non-increasing Loads order (the branch-and-bound
// invariant) and keep any identity mapping (candidate index → node or
// domain id) on the side. Both domain search adapters — the adversary
// engines and placement's never-worse evaluator — are this type plus a
// candidate-selection policy.
type HitInstance struct {
	Count int // attack-set size K
	Hits  [][]Hit
	Loads []int64
	Ctr   HitCounter
}

var _ Instance = (*HitInstance)(nil)

func (in *HitInstance) Len() int           { return len(in.Hits) }
func (in *HitInstance) K() int             { return in.Count }
func (in *HitInstance) S() int             { return int(in.Ctr.S) }
func (in *HitInstance) Load(i int) int64   { return in.Loads[i] }
func (in *HitInstance) Add(i int) int      { return in.Ctr.Add(in.Hits[i]) }
func (in *HitInstance) Remove(i int)       { in.Ctr.Remove(in.Hits[i]) }
func (in *HitInstance) Marginal(i int) int { return in.Ctr.Marginal(in.Hits[i]) }
func (in *HitInstance) Reset()             { in.Ctr.Reset() }

// Clone returns an independent searcher over the same immutable
// preprocessing: Hits and Loads are shared (read-only during search),
// only the failure counters are fresh — the cheap way to stamp out
// per-worker instances for BranchAndBoundParallel.
func (in *HitInstance) Clone() *HitInstance {
	cp := *in
	cp.Ctr.Cnt = make([]int32, len(in.Ctr.Cnt))
	return &cp
}
