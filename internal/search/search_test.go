package search

import (
	"math/rand"
	"sort"
	"testing"
)

// coverInstance is a minimal Instance for tests: object j fails once s
// of the candidates listed in members[j] are in the attack set.
type coverInstance struct {
	k, s    int
	members [][]int // per object, candidate indices hosting a replica
	objsOf  [][]int // per candidate, object indices
	cnt     []int
	loads   []int64
}

// newCoverInstance reindexes raw candidates into descending-load order,
// the branch-and-bound drivers' required invariant.
func newCoverInstance(m, k, s int, members [][]int) *coverInstance {
	rawLoads := make([]int64, m)
	rawObjs := make([][]int, m)
	for obj, ms := range members {
		for _, c := range ms {
			rawObjs[c] = append(rawObjs[c], obj)
			rawLoads[c]++
		}
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if rawLoads[order[a]] != rawLoads[order[b]] {
			return rawLoads[order[a]] > rawLoads[order[b]]
		}
		return order[a] < order[b]
	})
	in := &coverInstance{k: k, s: s, members: members}
	in.objsOf = make([][]int, m)
	in.loads = make([]int64, m)
	for i, raw := range order {
		in.objsOf[i] = rawObjs[raw]
		in.loads[i] = rawLoads[raw]
	}
	in.cnt = make([]int, len(members))
	return in
}

func (in *coverInstance) Len() int         { return len(in.objsOf) }
func (in *coverInstance) K() int           { return in.k }
func (in *coverInstance) S() int           { return in.s }
func (in *coverInstance) Load(i int) int64 { return in.loads[i] }

func (in *coverInstance) Add(i int) int {
	newly := 0
	for _, obj := range in.objsOf[i] {
		in.cnt[obj]++
		if in.cnt[obj] == in.s {
			newly++
		}
	}
	return newly
}

func (in *coverInstance) Remove(i int) {
	for _, obj := range in.objsOf[i] {
		in.cnt[obj]--
	}
}

func (in *coverInstance) Marginal(i int) int {
	gain := 0
	for _, obj := range in.objsOf[i] {
		if in.cnt[obj] == in.s-1 {
			gain++
		}
	}
	return gain
}

func (in *coverInstance) Reset() {
	for i := range in.cnt {
		in.cnt[i] = 0
	}
}

// bruteForce evaluates every K-subset from scratch, sharing no code with
// the drivers.
func bruteForce(m, k, s int, members [][]int) int {
	sel := make([]int, k)
	best := 0
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			failed := 0
			for _, ms := range members {
				hit := 0
				for _, c := range ms {
					for _, chosen := range sel {
						if c == chosen {
							hit++
							break
						}
					}
				}
				if hit >= s {
					failed++
				}
			}
			if failed > best {
				best = failed
			}
			return
		}
		for i := start; i <= m-(k-depth); i++ {
			sel[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}

func randomMembers(rng *rand.Rand, m, r, b int) [][]int {
	members := make([][]int, b)
	for j := range members {
		perm := rng.Perm(m)
		members[j] = append([]int(nil), perm[:r]...)
	}
	return members
}

func TestDriversAgreeOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		m := 6 + rng.Intn(5)
		r := 2 + rng.Intn(2)
		b := 5 + rng.Intn(20)
		s := 1 + rng.Intn(r)
		k := 1 + rng.Intn(m-1)
		members := randomMembers(rng, m, r, b)
		want := bruteForce(m, k, s, members)

		in := newCoverInstance(m, k, s, members)
		ex := Exhaustive(in)
		if ex.Failed != want {
			t.Errorf("trial %d (m=%d r=%d b=%d s=%d k=%d): Exhaustive = %d, brute force = %d",
				trial, m, r, b, s, k, ex.Failed, want)
		}
		if !ex.Exact || len(ex.Sel) != k {
			t.Errorf("trial %d: Exhaustive exact=%v |sel|=%d", trial, ex.Exact, len(ex.Sel))
		}

		greedy := Greedy(in)
		if greedy.Failed > want {
			t.Errorf("trial %d: Greedy %d exceeds optimum %d", trial, greedy.Failed, want)
		}
		in.Reset()

		bnb := BranchAndBound(in, greedy, NewBudget(0))
		if bnb.Failed != want {
			t.Errorf("trial %d: BranchAndBound = %d, brute force = %d", trial, bnb.Failed, want)
		}
		if !bnb.Exact {
			t.Error("unbounded BranchAndBound must be exact")
		}
		if bnb.Visited > ex.Visited {
			t.Errorf("trial %d: B&B visited %d > exhaustive %d: pruning broken",
				trial, bnb.Visited, ex.Visited)
		}

		par, err := BranchAndBoundParallel(newCoverInstance(m, k, s, members), func() (Instance, error) {
			return newCoverInstance(m, k, s, members), nil
		}, greedy, NewBudget(0), 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Failed != want || !par.Exact {
			t.Errorf("trial %d: parallel = %d exact=%v, want %d exact", trial, par.Failed, par.Exact, want)
		}
	}
}

func TestBudgetSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	members := randomMembers(rng, 18, 3, 120)
	const k, s = 5, 2
	mk := func() *coverInstance { return newCoverInstance(18, k, s, members) }

	in := mk()
	seed := Greedy(in)
	in.Reset()
	full := BranchAndBound(in, seed, NewBudget(0))
	if !full.Exact {
		t.Fatal("unbounded search not exact")
	}

	for _, limit := range []int64{1, 7, 50} {
		in := mk()
		seed := Greedy(in)
		in.Reset()
		bud := NewBudget(limit)
		res := BranchAndBound(in, seed, bud)
		if res.Exact {
			t.Errorf("budget %d: search claims exactness", limit)
		}
		if res.Visited != limit || bud.Used() != limit {
			t.Errorf("budget %d: visited %d, used %d — one state per unit, no overshoot",
				limit, res.Visited, bud.Used())
		}
		if !bud.Exhausted() {
			t.Errorf("budget %d: not exhausted", limit)
		}
		if res.Failed < seed.Failed || res.Failed > full.Failed {
			t.Errorf("budget %d: result %d outside [greedy %d, exact %d]",
				limit, res.Failed, seed.Failed, full.Failed)
		}
	}

	// A shared budget spans sub-searches: the second search starts where
	// the first left off.
	bud := NewBudget(10)
	in1, in2 := mk(), mk()
	BranchAndBound(in1, Result{}, bud)
	first := bud.Used()
	if first != 10 {
		t.Fatalf("first search consumed %d of 10", first)
	}
	res := BranchAndBound(in2, Result{}, bud)
	if res.Exact || bud.Used() != 10 {
		t.Errorf("drained budget allowed more work: exact=%v used=%d", res.Exact, bud.Used())
	}
}

func TestZeroBudgetValueIsUnlimited(t *testing.T) {
	var bud Budget
	for i := 0; i < 1000; i++ {
		if !bud.Visit() {
			t.Fatal("zero Budget refused a visit")
		}
	}
	if bud.Used() != 1000 || bud.Exhausted() {
		t.Errorf("used %d exhausted %v", bud.Used(), bud.Exhausted())
	}
}
