package search

import (
	"math/rand"
	"sort"
	"testing"
)

// randWeightedInstance builds a random HitInstance over m candidates and
// numObjects objects with the given per-object weights (nil = unit):
// candidates sorted by descending WEIGHTED load, as the drivers require.
// It returns the instance plus the raw hit lists in candidate order so
// an independent oracle can re-evaluate any selection.
func randWeightedInstance(rng *rand.Rand, m, numObjects, k, s int, w []int64) (*HitInstance, [][]Hit) {
	raw := make([][]Hit, m)
	for c := 0; c < m; c++ {
		for obj := 0; obj < numObjects; obj++ {
			if rng.Intn(3) == 0 {
				raw[c] = append(raw[c], Hit{Obj: int32(obj), C: int32(1 + rng.Intn(2))})
			}
		}
	}
	wload := func(hl []Hit) int64 {
		var sum int64
		for _, h := range hl {
			c := int64(h.C)
			if w != nil {
				c *= w[h.Obj]
			}
			sum += c
		}
		return sum
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := wload(raw[order[a]]), wload(raw[order[b]])
		if la != lb {
			return la > lb
		}
		return order[a] < order[b]
	})
	lists := make([][]Hit, m)
	loads := make([]int64, m)
	for i, c := range order {
		lists[i] = raw[c]
		loads[i] = wload(raw[c])
	}
	in := NewHitInstance(s, numObjects)
	in.Reinit(k, lists, loads)
	in.SetWeights(w)
	return in, lists
}

// weightedOracle finds the exact maximum Σ w over failed objects by
// independent enumeration over all k-subsets of candidates.
func weightedOracle(lists [][]Hit, numObjects, k, s int, w []int64) int {
	m := len(lists)
	sel := make([]int, k)
	cnt := make([]int, numObjects)
	best := 0
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			for i := range cnt {
				cnt[i] = 0
			}
			for _, c := range sel {
				for _, h := range lists[c] {
					cnt[h.Obj] += int(h.C)
				}
			}
			damage := 0
			for obj, c := range cnt {
				if c >= s {
					if w != nil {
						damage += int(w[obj])
					} else {
						damage++
					}
				}
			}
			if damage > best {
				best = damage
			}
			return
		}
		for c := start; c <= m-(k-depth); c++ {
			sel[depth] = c
			rec(c+1, depth+1)
		}
	}
	rec(0, 0)
	return best
}

// TestWeightedDifferential pins the weighted search against an
// independent brute-force oracle: Exhaustive is exact, Greedy is a
// valid lower bound, and branch-and-bound under BOTH pruning bounds
// returns the oracle value with residual visiting no more states than
// static.
func TestWeightedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 40; trial++ {
		m := 4 + rng.Intn(4)
		numObjects := 4 + rng.Intn(8)
		k := 1 + rng.Intn(3)
		if k > m {
			k = m
		}
		s := 1 + rng.Intn(3)
		w := make([]int64, numObjects)
		for i := range w {
			w[i] = int64(1 + rng.Intn(5))
		}
		in, lists := randWeightedInstance(rng, m, numObjects, k, s, w)
		want := weightedOracle(lists, numObjects, k, s, w)

		ex := Exhaustive(in)
		if ex.Failed != want {
			t.Fatalf("trial %d: Exhaustive weighted damage %d, oracle %d", trial, ex.Failed, want)
		}
		gr := Greedy(in)
		in.Reset()
		if gr.Failed > want {
			t.Fatalf("trial %d: Greedy weighted damage %d exceeds oracle %d", trial, gr.Failed, want)
		}
		res := BranchAndBoundWith(in, gr, NewBudget(0), BoundResidual)
		if !res.Exact || res.Failed != want {
			t.Fatalf("trial %d: residual B&B %+v, oracle %d", trial, res, want)
		}
		in.Reinit(k, lists, loadsOf(in))
		in.SetWeights(w)
		gr2 := Greedy(in)
		in.Reset()
		stat := BranchAndBoundWith(in, gr2, NewBudget(0), BoundStatic)
		if !stat.Exact || stat.Failed != want {
			t.Fatalf("trial %d: static B&B %+v, oracle %d", trial, stat, want)
		}
		if res.Visited > stat.Visited {
			t.Fatalf("trial %d: residual visited %d > static %d", trial, res.Visited, stat.Visited)
		}
	}
}

// loadsOf reads back an instance's candidate loads (Reinit scratch for
// re-initializing the same search).
func loadsOf(in *HitInstance) []int64 {
	loads := make([]int64, in.Len())
	for i := range loads {
		loads[i] = in.Load(i)
	}
	return loads
}

// TestUnitWeightsByteIdentical is the weights≡1 pin: explicit all-one
// weights must reproduce the unweighted search EXACTLY — damage,
// witness selection, exactness, and visited-state counts — across all
// three drivers and both pruning bounds.
func TestUnitWeightsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 30; trial++ {
		m := 4 + rng.Intn(5)
		numObjects := 5 + rng.Intn(10)
		k := 1 + rng.Intn(3)
		if k > m {
			k = m
		}
		s := 1 + rng.Intn(3)
		ones := make([]int64, numObjects)
		for i := range ones {
			ones[i] = 1
		}
		// Same RNG draw for both instances: clone the generator state by
		// re-seeding per trial.
		seed := rng.Int63()
		plain, _ := randWeightedInstance(rand.New(rand.NewSource(seed)), m, numObjects, k, s, nil)
		weighted, _ := randWeightedInstance(rand.New(rand.NewSource(seed)), m, numObjects, k, s, ones)

		type run struct {
			name string
			f    func(in *HitInstance) Result
		}
		runs := []run{
			{"exhaustive", func(in *HitInstance) Result { return Exhaustive(in) }},
			{"greedy", func(in *HitInstance) Result { r := Greedy(in); in.Reset(); return r }},
			{"bnb-residual", func(in *HitInstance) Result {
				seed := Greedy(in)
				in.Reset()
				return BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)
			}},
			{"bnb-static", func(in *HitInstance) Result {
				seed := Greedy(in)
				in.Reset()
				return BranchAndBoundWith(in, seed, NewBudget(0), BoundStatic)
			}},
		}
		for _, r := range runs {
			a := r.f(plain)
			b := r.f(weighted)
			if a.Failed != b.Failed || a.Exact != b.Exact || a.Visited != b.Visited {
				t.Fatalf("trial %d %s: unit-weight run differs: plain %+v, weighted %+v", trial, r.name, a, b)
			}
			if len(a.Sel) != len(b.Sel) {
				t.Fatalf("trial %d %s: witness lengths differ: %v vs %v", trial, r.name, a.Sel, b.Sel)
			}
			for i := range a.Sel {
				if a.Sel[i] != b.Sel[i] {
					t.Fatalf("trial %d %s: witnesses differ: %v vs %v", trial, r.name, a.Sel, b.Sel)
				}
			}
			// The drivers leave counters balanced; re-running the next
			// driver on the same instances is intentional.
		}
	}
}

// TestSetWeightsContract pins the misuse guards: weight vectors must
// match the object count and precede the residual preparation, and
// Reinit reverts to unit weights.
func TestSetWeightsContract(t *testing.T) {
	in := NewHitInstance(1, 3)
	in.Reinit(1, [][]Hit{{{Obj: 0, C: 1}}}, []int64{1})
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("short weights", func() { in.SetWeights([]int64{1}) })
	in.SetWeights([]int64{5, 1, 1})
	if got := in.Marginal(0); got != 5 {
		t.Errorf("weighted Marginal = %d, want 5", got)
	}
	in.EnableResidual()
	mustPanic("SetWeights after prepare", func() { in.SetWeights([]int64{1, 1, 1}) })
	in.Reinit(1, [][]Hit{{{Obj: 0, C: 1}}}, []int64{1})
	if got := in.Marginal(0); got != 1 {
		t.Errorf("Reinit did not revert to unit weights: Marginal = %d", got)
	}
}
