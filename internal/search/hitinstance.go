package search

import "fmt"

// This file is the one concrete Instance every engine in the repository
// searches on: aggregated (object, replica-count) hits in a flat CSR
// layout, with incremental residual-load accounting for the
// BoundResidual prune and duplicate-candidate detection for branch
// collapse.
//
// Weighted damage: SetWeights(w) switches the instance from counting
// failed objects to summing their weights — Add/Remove/Marginal report
// weight gained, and every quantity of the residual ledger (loads,
// resid, deadSpent) is kept in weight units (each hit contributes C·w
// instead of C). The bound algebra is unchanged: a completion that
// newly fails objects of total weight W spends at least s·W weighted
// replicas on them, so failed(K) <= ⌊(Σ weighted loads)/s⌋ holds
// verbatim with "failed" read as lost weight. With w ≡ 1 every number
// — damage, witness, visited states — is identical to the unweighted
// instance; the weighted code paths are separate methods so unweighted
// searches keep their exact pre-weights hot loops.
//
// CSR layout contract: candidate i's hits occupy the contiguous run
// hits[offs[i]:offs[i+1]] of one flat backing array, sorted by ascending
// object id, at most one hit per (candidate, object) pair — so Add,
// Remove and Marginal stream over contiguous memory instead of chasing
// per-candidate slice headers, and duplicate candidates are detected by
// an elementwise run comparison. Callers supply candidates in
// non-increasing load order (the branch-and-bound invariant).

// Hit records that failing a candidate adds C failed replicas to object
// Obj — the aggregated accounting unit shared by every adapter (a
// node-level adapter is the special case C = 1 throughout).
type Hit struct {
	Obj int32
	C   int32
}

// candHit is one entry of the inverted (object → candidate) index: the
// object in question has C replicas on candidate Cand.
type candHit struct {
	Cand int32
	C    int32
}

// HitInstance is the ready-made Instance over aggregated hits: candidate
// i fails every object in its CSR run by the recorded replica counts,
// and an object dies once S of its replicas have failed. All engine
// adapters — node-level (C = 1), whole-domain, constrained-subset, and
// placement's never-worse evaluator — are this type plus a
// candidate-selection policy; identity mapping (candidate index → node
// or domain id) stays on the caller's side.
//
// The instance maintains the ResidualBounder invariants incrementally:
// when an object's failed-replica count crosses S, every candidate
// holding replicas of it (via the inverted index) sheds that dead load
// from its residual, and symmetrically on the way back down. It also
// implements Deduper over adjacent identical CSR runs.
type HitInstance struct {
	count int   // attack-set size K
	s     int32 // failed replicas that kill an object

	// Immutable between Reinit calls (shared by Clone).
	hits     []Hit     // flat CSR: candidate i owns hits[offs[i]:offs[i+1]]
	objs     []int32   // C = 1 fast strip: hits[j].Obj when every C == 1, else nil
	offs     []int32   // len = Len()+1
	loads    []int64   // static load per candidate
	full     []int64   // Σ C per candidate: residual at a clean state
	fullSum  int64     // Σ full
	objHits  []candHit // flat inverted CSR: object j owns objHits[objOffs[j]:objOffs[j+1]]
	objCands []int32   // C = 1 fast strip of objHits (candidate ids only)
	objOffs  []int32   // len = numObjects+1

	// Weighted damage (nil = unit weights). Immutable between
	// SetWeights calls, shared by Clone.
	w []int64 // per-object weight; Add/Marginal return Σ w over crossings

	// Move-delta state (see ApplyMove). moveKeys are the caller's
	// tie-break identities restoring the canonical candidate order after
	// a load change; invStale records that the inverted index no longer
	// matches the patched CSR runs and must be rebuilt before the next
	// residual-tracked search.
	moveKeys []int32
	onSwap   func(i, j int)
	invStale bool

	// Mutable search state (fresh per Clone).
	cnt       []int32 // failed replicas per object
	track     bool    // residual upkeep enabled (see EnableResidual)
	prepared  bool    // residual baselines + inverted index built (lazy)
	resid     []int64 // per-candidate load restricted to live objects
	residAll  int64   // Σ resid over all candidates
	deadSpent int64   // Σ cnt over dead objects (liveSpent = chosen load − deadSpent)

	cursor     []int32 // Reinit scratch for the inverted-index fill
	top        []int64 // TopResidual scratch (rem largest residuals)
	hitScratch []Hit   // ApplyMove scratch for run rotation
	objScratch []int32 // ApplyMove scratch for the C = 1 strip rotation
}

var (
	_ Instance        = (*HitInstance)(nil)
	_ ResidualBounder = (*HitInstance)(nil)
	_ Deduper         = (*HitInstance)(nil)
)

// NewHitInstance returns an empty instance over numObjects objects with
// fatality threshold s; Reinit populates (and re-populates) its
// candidate set. The two-step construction lets the constrained engines
// stamp one instance per worker and reuse its allocations across every
// C(D, d) domain subset.
func NewHitInstance(s, numObjects int) *HitInstance {
	return &HitInstance{
		s:       int32(s),
		cnt:     make([]int32, numObjects),
		objOffs: make([]int32, numObjects+1),
		cursor:  make([]int32, numObjects),
	}
}

// Reinit reconfigures the instance in place for a new search — k picks
// among the given candidates — reusing prior allocations. hitLists[i]
// must be sorted by ascending object id with at most one entry per
// object; loads must be non-increasing with loads[i] = Σ C over
// hitLists[i] (zero-load padding candidates carry empty lists). The
// failure counters are expected clean (drivers leave them balanced;
// call Reset after Greedy) and are not touched, so a caller sharing one
// instance across sub-searches keeps one object-counter array.
func (in *HitInstance) Reinit(k int, hitLists [][]Hit, loads []int64) {
	in.count = k

	in.offs = append(in.offs[:0], 0)
	in.hits = in.hits[:0]
	for _, hl := range hitLists {
		in.hits = append(in.hits, hl...)
		in.offs = append(in.offs, int32(len(in.hits)))
	}
	in.loads = append(in.loads[:0], loads...)

	// The C = 1 fast strip: the node-level adapters' case, where the
	// 4-byte object stream halves the memory traffic of the hot
	// Add/Remove/Marginal loops.
	in.objs = in.objs[:0]
	for _, h := range in.hits {
		if h.C != 1 {
			in.objs = nil
			break
		}
		in.objs = append(in.objs, h.Obj)
	}

	// Residual baselines and the inverted index are built lazily by
	// EnableResidual: Greedy seeding, Exhaustive enumeration and
	// static-bound searches never pay for them.
	in.deadSpent = 0
	in.track = false
	in.prepared = false
	in.invStale = false
	in.w = nil
	// A new candidate set invalidates the caller's position identities;
	// re-enable moves (EnableMoves) after every Reinit.
	in.moveKeys = nil
	in.onSwap = nil
}

// SetWeights switches the instance to weighted damage accounting:
// object obj is worth w[obj] (>= 0), Add/Remove/Marginal report the
// weight of the objects crossing the S threshold instead of their
// count, and the residual ledger runs in weight units. Call it after
// Reinit (which reverts to unit weights) and before the first search on
// the new candidate set; the loads passed to Reinit must then be the
// WEIGHTED candidate loads Σ C·w[obj] over each hit list — the
// replica-counting bound divides that weighted spend by S, so plain
// loads would prune unsoundly. A nil w reverts to unit weights.
func (in *HitInstance) SetWeights(w []int64) {
	if w != nil && len(w) != len(in.cnt) {
		panic(fmt.Sprintf("search: %d object weights for %d objects", len(w), len(in.cnt)))
	}
	if in.prepared {
		panic("search: SetWeights after the residual baselines were built; call it right after Reinit")
	}
	in.w = w
}

// prepare builds the residual machinery: per-candidate full loads (the
// clean-state residuals) and the inverted object → candidate index the
// threshold-crossing walks use.
func (in *HitInstance) prepare() {
	m := in.Len()
	in.full = in.full[:0]
	in.fullSum = 0
	for i := 0; i < m; i++ {
		var sum int64
		for _, h := range in.run(i) {
			c := int64(h.C)
			if in.w != nil {
				c *= in.w[h.Obj]
			}
			sum += c
		}
		in.full = append(in.full, sum)
		in.fullSum += sum
	}
	in.resid = append(in.resid[:0], in.full...)
	in.residAll = in.fullSum
	in.deadSpent = 0
	in.buildInverted()
	in.prepared = true
	in.invStale = false
}

// buildInverted (re)derives the object → candidate index from the
// current CSR runs: count, prefix-sum, fill. Called by prepare and by
// EnableResidual when ApplyMove left the index stale.
func (in *HitInstance) buildInverted() {
	m := in.Len()
	for i := range in.objOffs {
		in.objOffs[i] = 0
	}
	for _, h := range in.hits {
		in.objOffs[h.Obj+1]++
	}
	for i := 1; i < len(in.objOffs); i++ {
		in.objOffs[i] += in.objOffs[i-1]
	}
	if cap(in.objHits) < len(in.hits) {
		in.objHits = make([]candHit, len(in.hits))
	}
	in.objHits = in.objHits[:len(in.hits)]
	if len(in.cursor) < len(in.objOffs)-1 {
		in.cursor = make([]int32, len(in.objOffs)-1)
	}
	copy(in.cursor, in.objOffs[:len(in.cursor)])
	for i := 0; i < m; i++ {
		for _, h := range in.run(i) {
			in.objHits[in.cursor[h.Obj]] = candHit{Cand: int32(i), C: h.C}
			in.cursor[h.Obj]++
		}
	}
	in.objCands = in.objCands[:0]
	if in.objs != nil {
		for _, ch := range in.objHits {
			in.objCands = append(in.objCands, ch.Cand)
		}
	} else {
		in.objCands = nil
	}
}

// run returns candidate i's contiguous hit run.
func (in *HitInstance) run(i int) []Hit {
	return in.hits[in.offs[i]:in.offs[i+1]]
}

func runsEqual(a, b []Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (in *HitInstance) Len() int         { return len(in.offs) - 1 }
func (in *HitInstance) K() int           { return in.count }
func (in *HitInstance) S() int           { return int(in.s) }
func (in *HitInstance) Load(i int) int64 { return in.loads[i] }

// Add fails candidate i, returning the number of newly failed objects.
// Objects crossing the S threshold shed their replicas from every
// holder's residual via the inverted index (Remove walks the exact
// inverse). The
// residual upkeep touches only hits on dead objects and threshold
// crossings, so the common live-hit path costs one predictable branch.
func (in *HitInstance) Add(i int) int {
	if in.w != nil {
		return in.addW(i)
	}
	newly := 0
	s := in.s
	if !in.track {
		// Upkeep off (greedy/exhaustive/static ablation): the bare
		// threshold count, the pre-residual hot loop.
		if in.objs != nil {
			for _, obj := range in.objs[in.offs[i]:in.offs[i+1]] {
				in.cnt[obj]++
				if in.cnt[obj] == s {
					newly++
				}
			}
		} else {
			for _, h := range in.run(i) {
				old := in.cnt[h.Obj]
				nw := old + h.C
				in.cnt[h.Obj] = nw
				if old < s && nw >= s {
					newly++
				}
			}
		}
		return newly
	}
	var dDead int64
	if in.objs != nil {
		cross := s - 1
		for _, obj := range in.objs[in.offs[i]:in.offs[i+1]] {
			old := in.cnt[obj]
			in.cnt[obj] = old + 1
			if old >= cross {
				if old == cross {
					newly++
					dDead += int64(old) + 1
					in.objectDied(obj)
				} else {
					dDead++
				}
			}
		}
	} else {
		for _, h := range in.run(i) {
			old := in.cnt[h.Obj]
			nw := old + h.C
			in.cnt[h.Obj] = nw
			if nw >= s {
				if old < s {
					newly++
					dDead += int64(nw)
					in.objectDied(h.Obj)
				} else {
					dDead += int64(h.C)
				}
			}
		}
	}
	in.deadSpent += dDead
	return newly
}

// addW is Add under SetWeights: the return value is the total weight of
// the newly dead objects, and the dead-spent ledger counts each failed
// replica of a dead object as C·w.
func (in *HitInstance) addW(i int) int {
	s := in.s
	newly := 0
	if !in.track {
		for _, h := range in.run(i) {
			old := in.cnt[h.Obj]
			nw := old + h.C
			in.cnt[h.Obj] = nw
			if old < s && nw >= s {
				newly += int(in.w[h.Obj])
			}
		}
		return newly
	}
	var dDead int64
	for _, h := range in.run(i) {
		old := in.cnt[h.Obj]
		nw := old + h.C
		in.cnt[h.Obj] = nw
		if nw >= s {
			w := in.w[h.Obj]
			if old < s {
				newly += int(w)
				dDead += int64(nw) * w
				in.objectDiedW(h.Obj)
			} else {
				dDead += int64(h.C) * w
			}
		}
	}
	in.deadSpent += dDead
	return newly
}

// Remove reverts Add(i).
func (in *HitInstance) Remove(i int) {
	if in.w != nil {
		in.removeW(i)
		return
	}
	s := in.s
	if !in.track {
		if in.objs != nil {
			for _, obj := range in.objs[in.offs[i]:in.offs[i+1]] {
				in.cnt[obj]--
			}
		} else {
			for _, h := range in.run(i) {
				in.cnt[h.Obj] -= h.C
			}
		}
		return
	}
	var dDead int64
	if in.objs != nil {
		for _, obj := range in.objs[in.offs[i]:in.offs[i+1]] {
			old := in.cnt[obj]
			in.cnt[obj] = old - 1
			if old >= s {
				if old == s {
					in.objectRevived(obj)
					dDead -= int64(old)
				} else {
					dDead--
				}
			}
		}
	} else {
		for _, h := range in.run(i) {
			old := in.cnt[h.Obj]
			nw := old - h.C
			in.cnt[h.Obj] = nw
			if old >= s {
				if nw < s {
					in.objectRevived(h.Obj)
					dDead -= int64(old)
				} else {
					dDead -= int64(h.C)
				}
			}
		}
	}
	in.deadSpent += dDead
}

// removeW reverts addW(i).
func (in *HitInstance) removeW(i int) {
	s := in.s
	if !in.track {
		for _, h := range in.run(i) {
			in.cnt[h.Obj] -= h.C
		}
		return
	}
	var dDead int64
	for _, h := range in.run(i) {
		old := in.cnt[h.Obj]
		nw := old - h.C
		in.cnt[h.Obj] = nw
		if old >= s {
			w := in.w[h.Obj]
			if nw < s {
				in.objectRevivedW(h.Obj)
				dDead -= int64(old) * w
			} else {
				dDead -= int64(h.C) * w
			}
		}
	}
	in.deadSpent += dDead
}

// objectDied discounts every candidate's replicas of the newly dead
// object: future hits on it are wasted, so they leave the residuals.
func (in *HitInstance) objectDied(obj int32) {
	if in.objCands != nil {
		for _, cand := range in.objCands[in.objOffs[obj]:in.objOffs[obj+1]] {
			in.resid[cand]--
		}
		in.residAll -= int64(in.objOffs[obj+1] - in.objOffs[obj])
		return
	}
	var c int64
	for _, ch := range in.objHits[in.objOffs[obj]:in.objOffs[obj+1]] {
		in.resid[ch.Cand] -= int64(ch.C)
		c += int64(ch.C)
	}
	in.residAll -= c
}

// objectRevived reverts objectDied.
func (in *HitInstance) objectRevived(obj int32) {
	if in.objCands != nil {
		for _, cand := range in.objCands[in.objOffs[obj]:in.objOffs[obj+1]] {
			in.resid[cand]++
		}
		in.residAll += int64(in.objOffs[obj+1] - in.objOffs[obj])
		return
	}
	var c int64
	for _, ch := range in.objHits[in.objOffs[obj]:in.objOffs[obj+1]] {
		in.resid[ch.Cand] += int64(ch.C)
		c += int64(ch.C)
	}
	in.residAll += c
}

// objectDiedW is objectDied in weight units: every hit on the dead
// object leaves the residuals at its weighted size C·w.
func (in *HitInstance) objectDiedW(obj int32) {
	w := in.w[obj]
	if in.objCands != nil {
		for _, cand := range in.objCands[in.objOffs[obj]:in.objOffs[obj+1]] {
			in.resid[cand] -= w
		}
		in.residAll -= w * int64(in.objOffs[obj+1]-in.objOffs[obj])
		return
	}
	var c int64
	for _, ch := range in.objHits[in.objOffs[obj]:in.objOffs[obj+1]] {
		d := int64(ch.C) * w
		in.resid[ch.Cand] -= d
		c += d
	}
	in.residAll -= c
}

// objectRevivedW reverts objectDiedW.
func (in *HitInstance) objectRevivedW(obj int32) {
	w := in.w[obj]
	if in.objCands != nil {
		for _, cand := range in.objCands[in.objOffs[obj]:in.objOffs[obj+1]] {
			in.resid[cand] += w
		}
		in.residAll += w * int64(in.objOffs[obj+1]-in.objOffs[obj])
		return
	}
	var c int64
	for _, ch := range in.objHits[in.objOffs[obj]:in.objOffs[obj+1]] {
		d := int64(ch.C) * w
		in.resid[ch.Cand] += d
		c += d
	}
	in.residAll += c
}

// Marginal returns how many objects Add(i) would newly fail, without
// mutating state (the objects' total weight under SetWeights).
func (in *HitInstance) Marginal(i int) int {
	if in.w != nil {
		return in.marginalW(i)
	}
	gain := 0
	if in.objs != nil {
		cross := in.s - 1
		for _, obj := range in.objs[in.offs[i]:in.offs[i+1]] {
			if in.cnt[obj] == cross {
				gain++
			}
		}
		return gain
	}
	s := in.s
	for _, h := range in.run(i) {
		if c := in.cnt[h.Obj]; c < s && c+h.C >= s {
			gain++
		}
	}
	return gain
}

// marginalW is Marginal under SetWeights.
func (in *HitInstance) marginalW(i int) int {
	gain := 0
	s := in.s
	for _, h := range in.run(i) {
		if c := in.cnt[h.Obj]; c < s && c+h.C >= s {
			gain += int(in.w[h.Obj])
		}
	}
	return gain
}

// Reset restores the clean state: all objects live, no candidate chosen.
func (in *HitInstance) Reset() {
	for i := range in.cnt {
		in.cnt[i] = 0
	}
	if in.prepared {
		copy(in.resid, in.full)
		in.residAll = in.fullSum
		in.deadSpent = 0
	}
}

// EnableResidual switches the incremental residual upkeep on. The
// instance must be clean (Reset): the baselines Reinit/Reset install
// are exactly the clean-state invariants, so no recomputation is
// needed. Reinit switches it back off, and ApplyMove suspends it —
// the per-candidate full loads are patched in place by the move, but
// the inverted index is only re-derived here, once, when the next
// residual-pruned search actually starts.
func (in *HitInstance) EnableResidual() {
	if !in.prepared {
		in.prepare()
	} else if in.invStale {
		in.buildInverted()
		copy(in.resid, in.full)
		in.residAll = in.fullSum
		in.deadSpent = 0
		in.invStale = false
	}
	in.track = true
}

// ResidualStats returns the residual-bound invariants: failed replicas
// of dead objects (the caller derives liveSpent as the chosen static
// load minus this), the candidates' load restricted to live objects,
// and the total dead load discounted so far.
func (in *HitInstance) ResidualStats() (deadSpent, residual, discount int64) {
	return in.deadSpent, in.residAll, in.fullSum - in.residAll
}

// TopResidual returns the sum of the rem largest residual loads among
// candidates start..Len()-1. The DFS chooses candidates in ascending
// index order, so every candidate >= start is unchosen and eligible.
func (in *HitInstance) TopResidual(start, rem int) int64 {
	if cap(in.top) < rem {
		in.top = make([]int64, rem)
	}
	top := in.top[:rem] // ascending; top[0] is the smallest kept
	copy(top, in.resid[start:start+rem])
	for i := 1; i < rem; i++ {
		for j := i; j > 0 && top[j] < top[j-1]; j-- {
			top[j], top[j-1] = top[j-1], top[j]
		}
	}
	var sum int64
	for _, v := range top {
		sum += v
	}
	for _, v := range in.resid[start+rem:] {
		if v > top[0] {
			sum += v - top[0]
			j := 1
			for j < rem && top[j] < v {
				top[j-1] = top[j]
				j++
			}
			top[j-1] = v
		}
	}
	return sum
}

// DupOfPrev reports whether candidate i's hit run equals candidate
// i-1's. Computed on demand: the drivers ask once per candidate per
// search, so a precomputed table would cost the same comparisons
// whether or not a pruned search ever runs.
func (in *HitInstance) DupOfPrev(i int) bool { return runsEqual(in.run(i), in.run(i-1)) }

// CloneForMoves returns an independent editor-and-searcher: unlike
// Clone, the CSR backing arrays (hits, offsets, loads, the C = 1 fast
// strip and the move identities) are deep-copied, so ApplyMove on the
// clone never touches the receiver and vice versa — the primitive a
// probing session forks per worker. Only the per-object weight vector
// stays shared (immutable between SetWeights calls). The residual
// machinery is left unbuilt: the clone re-prepares lazily on its own
// backing at its first EnableResidual, which costs nothing extra on a
// probing workload — every ApplyMove marks the inverted index stale, so
// a moved instance rebuilds it per search anyway. The onSwap mirror is
// cleared; re-bind the caller's id ↔ position maps with EnableMoves.
// The receiver must be clean (Reset), as the clone starts clean.
func (in *HitInstance) CloneForMoves() *HitInstance {
	cp := *in
	cp.hits = append([]Hit(nil), in.hits...)
	if in.objs != nil {
		cp.objs = append([]int32(nil), in.objs...)
	}
	cp.offs = append([]int32(nil), in.offs...)
	cp.loads = append([]int64(nil), in.loads...)
	if in.moveKeys != nil {
		cp.moveKeys = append([]int32(nil), in.moveKeys...)
	}
	cp.onSwap = nil
	cp.cnt = make([]int32, len(in.cnt))
	cp.full, cp.resid, cp.objHits, cp.objCands = nil, nil, nil, nil
	cp.objOffs = make([]int32, len(in.objOffs))
	cp.fullSum = 0
	cp.prepared, cp.invStale, cp.track = false, false, false
	cp.deadSpent = 0
	cp.cursor, cp.top, cp.hitScratch, cp.objScratch = nil, nil, nil, nil
	cp.assertInvariants("CloneForMoves")
	return &cp
}

// Clone returns an independent searcher over the same immutable
// preprocessing: the CSR arrays, loads, duplicate flags and inverted
// index are shared (read-only during search), only the mutable failure
// and residual state is fresh — the cheap way to stamp out per-worker
// instances for BranchAndBoundParallel. The receiver must be clean
// (Reset), as the clone starts clean.
func (in *HitInstance) Clone() *HitInstance {
	cp := *in
	cp.cnt = make([]int32, len(in.cnt))
	if in.prepared && !in.invStale {
		// Share the immutable residual preprocessing; fresh state only.
		cp.resid = append([]int64(nil), in.full...)
		cp.residAll = in.fullSum
		cp.deadSpent = 0
	} else {
		// Unshare the lazily-built arrays: concurrent clones must not
		// race on the receiver's backing capacity when they prepare. A
		// stale inverted index (ApplyMove since the last residual run)
		// is treated the same way — the clone re-prepares from the
		// patched CSR runs on its own backing.
		cp.full, cp.resid, cp.objHits, cp.objCands = nil, nil, nil, nil
		cp.objOffs = make([]int32, len(in.objOffs))
		cp.prepared = false
		cp.invStale = false
	}
	cp.track = false // each driver re-enables on its own copy
	cp.cursor = nil  // prepare-only scratch, grown lazily
	cp.top = nil     // TopResidual scratch, grown lazily per instance
	// Clones are searchers, not editors: move identities and scratch
	// stay with the receiver (see the ApplyMove contract).
	cp.moveKeys = nil
	cp.onSwap = nil
	cp.hitScratch = nil
	cp.objScratch = nil
	return &cp
}
