package search

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestStealMatchesSerial is the work-stealing parity property: on
// randomized instances — cover, hit-count, and weighted — and across
// worker counts, exact runs return byte-identical (Failed, Sel, Exact)
// to the serial driver, whatever order the workers raced through the
// tree in.
func TestStealMatchesSerial(t *testing.T) {
	workerCounts := []int{2, 3, 8}

	t.Run("cover", func(t *testing.T) {
		rng := rand.New(rand.NewSource(131))
		for trial := 0; trial < 30; trial++ {
			m := 6 + rng.Intn(6)
			r := 2 + rng.Intn(2)
			b := 5 + rng.Intn(25)
			s := 1 + rng.Intn(r)
			k := 1 + rng.Intn(m-1)
			members := randomMembers(rng, m, r, b)
			mk := func() (Instance, error) { return newCoverInstance(m, k, s, members), nil }

			in := newCoverInstance(m, k, s, members)
			seed := Greedy(in)
			in.Reset()
			want := BranchAndBoundWith(in, seed, NewBudget(0), BoundStatic)

			for _, workers := range workerCounts {
				got, err := BranchAndBoundParallelWith(newCoverInstance(m, k, s, members), func() (Instance, error) {
					return mk()
				}, seed, NewBudget(0), workers, BoundStatic)
				if err != nil {
					t.Fatal(err)
				}
				if got.Failed != want.Failed || got.Exact != want.Exact || !reflect.DeepEqual(got.Sel, want.Sel) {
					t.Errorf("trial %d workers=%d: got (%d, %v, %v), serial (%d, %v, %v)",
						trial, workers, got.Failed, got.Sel, got.Exact, want.Failed, want.Sel, want.Exact)
				}
			}
		}
	})

	t.Run("hit", func(t *testing.T) {
		rng := rand.New(rand.NewSource(137))
		for trial := 0; trial < 30; trial++ {
			m := 6 + rng.Intn(6)
			r := 2 + rng.Intn(2)
			b := 5 + rng.Intn(25)
			maxC := 1 + rng.Intn(3)
			s := 1 + rng.Intn(r*maxC)
			k := 1 + rng.Intn(m-1)
			in, _ := randomHitInstance(rng, m, r, b, s, k, maxC)
			seed := Greedy(in)
			in.Reset()
			want := BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)
			in.Reset()

			for _, workers := range workerCounts {
				got, err := BranchAndBoundParallelWith(in, func() (Instance, error) {
					return in.Clone(), nil
				}, seed, NewBudget(0), workers, BoundResidual)
				if err != nil {
					t.Fatal(err)
				}
				if got.Failed != want.Failed || got.Exact != want.Exact || !reflect.DeepEqual(got.Sel, want.Sel) {
					t.Errorf("trial %d workers=%d: got (%d, %v, %v), serial (%d, %v, %v)",
						trial, workers, got.Failed, got.Sel, got.Exact, want.Failed, want.Sel, want.Exact)
				}
			}
		}
	})

	t.Run("weighted", func(t *testing.T) {
		rng := rand.New(rand.NewSource(139))
		for trial := 0; trial < 20; trial++ {
			m := 6 + rng.Intn(5)
			b := 5 + rng.Intn(20)
			s := 1 + rng.Intn(3)
			k := 1 + rng.Intn(m-1)
			w := make([]int64, b)
			for i := range w {
				w[i] = int64(1 + rng.Intn(9))
			}
			in, _ := randWeightedInstance(rng, m, b, k, s, w)
			seed := Greedy(in)
			in.Reset()
			want := BranchAndBoundWith(in, seed, NewBudget(0), BoundResidual)
			in.Reset()

			for _, workers := range workerCounts {
				got, err := BranchAndBoundParallelWith(in, func() (Instance, error) {
					return in.Clone(), nil
				}, seed, NewBudget(0), workers, BoundResidual)
				if err != nil {
					t.Fatal(err)
				}
				if got.Failed != want.Failed || got.Exact != want.Exact || !reflect.DeepEqual(got.Sel, want.Sel) {
					t.Errorf("trial %d workers=%d: got (%d, %v, %v), serial (%d, %v, %v)",
						trial, workers, got.Failed, got.Sel, got.Exact, want.Failed, want.Sel, want.Exact)
				}
			}
		}
	})
}

// TestStealLeaseAccounting pins the leased-budget contract: leases are
// settled at worker exit, so Used() is exactly the states entered, not
// the states claimed.
func TestStealLeaseAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	members := randomMembers(rng, 16, 3, 100)
	const m, k, s = 16, 5, 2
	mk := func() (Instance, error) { return newCoverInstance(m, k, s, members), nil }

	// Seed with the exact optimum so the incumbent never moves: prune
	// decisions match the serial run state for state and the visited set
	// — hence the count — is identical at any worker count.
	in := newCoverInstance(m, k, s, members)
	seed := Greedy(in)
	in.Reset()
	exact := BranchAndBoundWith(in, seed, NewBudget(0), BoundStatic)

	for _, workers := range []int{2, 3, 8} {
		// Unlimited: every lease chunk's unused remainder comes back.
		bud := NewBudget(0)
		probe, _ := mk()
		res, err := BranchAndBoundParallelWith(probe, mk, exact, bud, workers, BoundStatic)
		if err != nil {
			t.Fatal(err)
		}
		if bud.Used() != exact.Visited || res.Visited != exact.Visited {
			t.Errorf("workers=%d unlimited: used %d visited %d, serial visited %d — leases leaked",
				workers, bud.Used(), res.Visited, exact.Visited)
		}

		// Ample limit: the search finishes without exhausting, and the
		// limit's unclaimed tail must not be counted as used.
		bud = NewBudget(exact.Visited * 10)
		probe, _ = mk()
		res, err = BranchAndBoundParallelWith(probe, mk, exact, bud, workers, BoundStatic)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Errorf("workers=%d: ample budget run not exact", workers)
		}
		if bud.Used() != exact.Visited {
			t.Errorf("workers=%d ample: used %d, want %d", workers, bud.Used(), exact.Visited)
		}

		// Tiny limit: never overshoot, never report more visited than
		// allowed, remaining consistent.
		for _, limit := range []int64{1, 5, 37} {
			bud = NewBudget(limit)
			probe, _ = mk()
			res, err = BranchAndBoundParallelWith(probe, mk, seed, bud, workers, BoundStatic)
			if err != nil {
				t.Fatal(err)
			}
			if bud.Used() > limit || res.Visited > limit {
				t.Errorf("workers=%d limit=%d: used %d visited %d — overshoot", workers, limit, bud.Used(), res.Visited)
			}
			if res.Exact {
				t.Errorf("workers=%d limit=%d: exhausted run claims exactness", workers, limit)
			}
			if got, want := bud.Remaining(), limit-bud.Used(); got != want {
				t.Errorf("workers=%d limit=%d: Remaining %d, want %d", workers, limit, got, want)
			}
			if res.Failed < seed.Failed || res.Failed > exact.Failed {
				t.Errorf("workers=%d limit=%d: result %d outside [seed %d, exact %d]",
					workers, limit, res.Failed, seed.Failed, exact.Failed)
			}
		}
	}
}

// TestStealStress hammers the scheduler with oversubscribed workers and
// a tiny shared budget — the -race configuration: many goroutines
// racing over few states, leases shrunk to per-worker shares, repeated
// across searches draining one budget.
func TestStealStress(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	members := randomMembers(rng, 14, 3, 80)
	const m, k, s = 14, 4, 2
	mk := func() (Instance, error) { return newCoverInstance(m, k, s, members), nil }

	in := newCoverInstance(m, k, s, members)
	seed := Greedy(in)
	in.Reset()
	exact := BranchAndBoundWith(in, seed, NewBudget(0), BoundStatic)

	const workers = 32 // far more than cores: steal scans and idle spins collide constantly
	var wg sync.WaitGroup
	for round := 0; round < 8; round++ {
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			bud := NewBudget(int64(3 + round*17))
			for bud.Remaining() > 0 {
				probe, _ := mk()
				res, err := BranchAndBoundParallelWith(probe, mk, seed, bud, workers, BoundStatic)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Failed < seed.Failed || res.Failed > exact.Failed {
					t.Errorf("round %d: result %d outside [seed %d, exact %d]", round, res.Failed, seed.Failed, exact.Failed)
					return
				}
			}
			if bud.Used() > bud.Limit() {
				t.Errorf("round %d: used %d > limit %d", round, bud.Used(), bud.Limit())
			}
		}(round)
	}
	wg.Wait()
}

// TestStealSuspendResume pins the checkpoint seam: a suspended search
// hands back a frontier that, resumed with the suspended incumbent as
// seed, completes to the same damage as the straight-through run; and a
// budget-exhausted run parks its frontier the same way, so a fresh
// budget finishes the job.
func TestStealSuspendResume(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	members := randomMembers(rng, 18, 3, 140)
	const m, k, s = 18, 6, 2
	mk := func() (Instance, error) { return newCoverInstance(m, k, s, members), nil }

	in := newCoverInstance(m, k, s, members)
	seed := Greedy(in)
	in.Reset()
	want := BranchAndBoundWith(in, seed, NewBudget(0), BoundStatic)

	resume := func(t *testing.T, frontier []Task, incumbent Result, bud *Budget) Result {
		t.Helper()
		probe, _ := mk()
		ps, err := NewParallelSearch(probe, mk, incumbent, bud, 4, BoundStatic)
		if err != nil {
			t.Fatal(err)
		}
		ps.StartFrom(frontier)
		return ps.Wait()
	}

	t.Run("suspend", func(t *testing.T) {
		probe, _ := mk()
		ps, err := NewParallelSearch(probe, mk, seed, NewBudget(0), 4, BoundStatic)
		if err != nil {
			t.Fatal(err)
		}
		ps.Start()
		frontier := ps.Suspend()
		mid := ps.Wait()
		if len(frontier) == 0 {
			// The race finished before the suspension landed; the result
			// must already be the exact one.
			if !mid.Exact || mid.Failed != want.Failed {
				t.Fatalf("empty frontier but result (%d, exact=%v), want (%d, exact)", mid.Failed, mid.Exact, want.Failed)
			}
			return
		}
		if mid.Exact {
			t.Error("suspended run with parked work claims exactness")
		}
		final := resume(t, frontier, mid, NewBudget(0))
		if final.Failed != want.Failed {
			t.Errorf("resumed search found %d, straight-through %d", final.Failed, want.Failed)
		}
	})

	t.Run("exhausted", func(t *testing.T) {
		bud := NewBudget(25)
		probe, _ := mk()
		ps, err := NewParallelSearch(probe, mk, seed, bud, 4, BoundStatic)
		if err != nil {
			t.Fatal(err)
		}
		ps.Start()
		mid := ps.Wait()
		frontier := ps.Frontier()
		if mid.Exact {
			t.Error("exhausted run claims exactness")
		}
		if len(frontier) == 0 {
			t.Fatal("exhausted run parked no frontier")
		}
		final := resume(t, frontier, mid, NewBudget(0))
		if final.Failed != want.Failed {
			t.Errorf("resumed search found %d, straight-through %d", final.Failed, want.Failed)
		}
	})
}

// TestStealSuspendIdempotent pins the hardened Suspend contract: the
// frontier leaves through Suspend at most once. A second Suspend — or a
// Suspend issued after Wait already sealed the run — is a safe no-op
// returning nil, so no caller can resume the same parked subtrees from
// two searches. Frontier stays the read-only accessor: it never claims
// the checkpoint and keeps returning it.
func TestStealSuspendIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	members := randomMembers(rng, 18, 3, 140)
	const m, k, s = 18, 6, 2
	mk := func() (Instance, error) { return newCoverInstance(m, k, s, members), nil }

	t.Run("double-suspend", func(t *testing.T) {
		probe, _ := mk()
		seed := Greedy(probe)
		probe.Reset()
		ps, err := NewParallelSearch(probe, mk, seed, NewBudget(0), 4, BoundStatic)
		if err != nil {
			t.Fatal(err)
		}
		ps.Start()
		first := ps.Suspend()
		if again := ps.Suspend(); again != nil {
			t.Errorf("second Suspend returned %d tasks, want nil", len(again))
		}
		// The read-only accessor still sees whatever was parked.
		if got := ps.Frontier(); len(got) != len(first) {
			t.Errorf("Frontier returned %d tasks after claimed Suspend, want %d", len(got), len(first))
		}
	})

	t.Run("suspend-after-wait", func(t *testing.T) {
		probe, _ := mk()
		seed := Greedy(probe)
		probe.Reset()
		bud := NewBudget(25) // exhausts: a frontier IS parked
		ps, err := NewParallelSearch(probe, mk, seed, bud, 4, BoundStatic)
		if err != nil {
			t.Fatal(err)
		}
		ps.Start()
		res := ps.Wait()
		if res.Exact {
			t.Fatal("exhausted run claims exactness")
		}
		if got := ps.Suspend(); got != nil {
			t.Errorf("Suspend after Wait returned %d tasks, want nil", len(got))
		}
		if got := ps.Frontier(); len(got) == 0 {
			t.Error("Frontier lost the exhausted run's checkpoint")
		}
	})
}
