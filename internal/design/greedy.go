package design

import (
	"fmt"
	"math/rand"

	"repro/internal/combin"
)

// GreedyPacking builds a maximal t-(v, k, lambda) packing by randomized
// greedy search: random candidate blocks are added while they respect the
// packing property, followed by a completion sweep that tries to extend
// each under-covered t-subset into a block. The result is a valid packing
// (never a violation), deterministic for a given seed, but its capacity is
// generally below the design bound of Lemma 1.
//
// This is the documented fallback for Steiner orders with no implemented
// algebraic construction (see DESIGN.md §4). maxBlocks <= 0 means
// unbounded.
func GreedyPacking(t, v, k, lambda int, seed int64, maxBlocks int64) (*Packing, error) {
	if t < 1 || k < t || v < k || lambda < 1 {
		return nil, fmt.Errorf("design: invalid greedy packing parameters t=%d v=%d k=%d lambda=%d",
			t, v, k, lambda)
	}
	bound := MaxBlocks(t, v, k, lambda)
	if maxBlocks > 0 && maxBlocks < bound {
		bound = maxBlocks
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make(map[uint64]int)
	sub := make([]int, t)

	canAdd := func(b []int) bool {
		ok := true
		combin.ForEachSubset(len(b), t, func(idx []int) bool {
			for i, j := range idx {
				sub[i] = b[j]
			}
			if counts[encodeSubset(sub)] >= lambda {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	add := func(b []int) {
		combin.ForEachSubset(len(b), t, func(idx []int) bool {
			for i, j := range idx {
				sub[i] = b[j]
			}
			counts[encodeSubset(sub)]++
			return true
		})
	}

	var blocks [][]int
	// Phase 1: random candidate blocks until a long failure streak.
	failStreak := 0
	maxStreak := 50 * v
	candidate := make([]int, k)
	for int64(len(blocks)) < bound && failStreak < maxStreak {
		randomSubset(rng, v, candidate)
		sortBlock(candidate)
		if canAdd(candidate) {
			b := make([]int, k)
			copy(b, candidate)
			add(b)
			blocks = append(blocks, b)
			failStreak = 0
		} else {
			failStreak++
		}
	}
	// Phase 2: completion sweep. For every t-subset still under lambda,
	// try to grow it into an addable block.
	if int64(len(blocks)) < bound {
		base := make([]int, t)
		perm := rng.Perm(v)
		combin.ForEachSubset(v, t, func(idx []int) bool {
			for i, j := range idx {
				base[i] = perm[j]
			}
			sortBlock(base)
			if counts[encodeSubset(base)] >= lambda {
				return true
			}
			if b, ok := extendToBlock(base, v, k, canAdd, rng); ok {
				add(b)
				blocks = append(blocks, b)
			}
			return int64(len(blocks)) < bound
		})
	}
	return &Packing{V: v, K: k, T: t, Lambda: lambda, Blocks: blocks}, nil
}

// extendToBlock tries to grow the t-set base into a full k-block that
// canAdd accepts, trying points in random order with backtracking depth 1.
func extendToBlock(base []int, v, k int, canAdd func([]int) bool, rng *rand.Rand) ([]int, bool) {
	const attempts = 30
	in := make(map[int]bool, k)
	for a := 0; a < attempts; a++ {
		b := make([]int, len(base), k)
		copy(b, base)
		for key := range in {
			delete(in, key)
		}
		for _, pt := range base {
			in[pt] = true
		}
		for len(b) < k {
			pt := rng.Intn(v)
			if in[pt] {
				continue
			}
			b = append(b, pt)
			in[pt] = true
		}
		sortBlock(b)
		if canAdd(b) {
			return b, true
		}
	}
	return nil, false
}

// randomSubset fills dst with a uniformly random |dst|-subset of
// {0, ..., n-1} using partial Fisher-Yates on a virtual array.
func randomSubset(rng *rand.Rand, n int, dst []int) {
	k := len(dst)
	swapped := make(map[int]int, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vi, ok := swapped[i]
		if !ok {
			vi = i
		}
		vj, ok := swapped[j]
		if !ok {
			vj = j
		}
		dst[i] = vj
		swapped[j] = vi
	}
}
