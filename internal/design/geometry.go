package design

import (
	"fmt"
	"sort"

	"repro/internal/gf"
)

// AGLines returns the 2-(q^d, q, 1) design whose points are the vectors of
// the affine space AG(d, q) and whose blocks are its lines
// {p + t·dir : t ∈ GF(q)}. q must be a prime power and d >= 2.
func AGLines(d, q int) (*Packing, error) {
	if d < 2 {
		return nil, fmt.Errorf("design: AGLines needs d >= 2, got %d", d)
	}
	field, err := gf.New(q)
	if err != nil {
		return nil, fmt.Errorf("design: AGLines: %w", err)
	}
	v := 1
	for i := 0; i < d; i++ {
		if v > gf.MaxOrder {
			return nil, fmt.Errorf("design: AGLines(%d, %d) too large", d, q)
		}
		v *= q
	}

	encode := func(vec []int) int {
		e := 0
		for i := d - 1; i >= 0; i-- {
			e = e*q + vec[i]
		}
		return e
	}
	decode := func(e int, vec []int) {
		for i := 0; i < d; i++ {
			vec[i] = e % q
			e /= q
		}
	}

	directions := canonicalVectors(d, q)
	blocks := make([][]int, 0, int64(v/q)*int64(len(directions)))
	visited := make([]bool, v)
	p := make([]int, d)
	pt := make([]int, d)
	for _, dir := range directions {
		for i := range visited {
			visited[i] = false
		}
		for start := 0; start < v; start++ {
			if visited[start] {
				continue
			}
			decode(start, p)
			line := make([]int, 0, q)
			for t := 0; t < q; t++ {
				for i := 0; i < d; i++ {
					pt[i] = field.Add(p[i], field.Mul(t, dir[i]))
				}
				e := encode(pt)
				visited[e] = true
				line = append(line, e)
			}
			blocks = append(blocks, sortBlock(line))
		}
	}
	return &Packing{V: v, K: q, T: 2, Lambda: 1, Blocks: blocks}, nil
}

// PGLines returns the 2-((q^{d+1}-1)/(q-1), q+1, 1) design whose points are
// the points of the projective space PG(d, q) and whose blocks are its
// lines. q must be a prime power and d >= 2.
func PGLines(d, q int) (*Packing, error) {
	if d < 2 {
		return nil, fmt.Errorf("design: PGLines needs d >= 2, got %d", d)
	}
	field, err := gf.New(q)
	if err != nil {
		return nil, fmt.Errorf("design: PGLines: %w", err)
	}
	points := canonicalVectors(d+1, q)
	v := len(points)
	index := make(map[string]int, v)
	for i, p := range points {
		index[vecKey(p)] = i
	}
	canonIndex := func(vec []int) int {
		// Scale so the first nonzero coordinate is 1.
		lead := -1
		for i, c := range vec {
			if c != 0 {
				lead = i
				break
			}
		}
		inv, _ := field.Inv(vec[lead])
		canon := make([]int, len(vec))
		for i, c := range vec {
			canon[i] = field.Mul(c, inv)
		}
		return index[vecKey(canon)]
	}

	var blocks [][]int
	tmp := make([]int, d+1)
	line := make([]int, 0, q+1)
	for i := 0; i < v; i++ {
		for j := i + 1; j < v; j++ {
			// The line through points i and j: {P_i} ∪ {P_j + t·P_i}.
			line = line[:0]
			line = append(line, i)
			for t := 0; t < q; t++ {
				for c := range tmp {
					tmp[c] = field.Add(points[j][c], field.Mul(t, points[i][c]))
				}
				line = append(line, canonIndex(tmp))
			}
			sort.Ints(line)
			// Keep each line exactly once: when (i, j) are its two
			// smallest points.
			if line[0] != i || line[1] != j {
				continue
			}
			b := make([]int, len(line))
			copy(b, line)
			blocks = append(blocks, b)
		}
	}
	return &Packing{V: v, K: q + 1, T: 2, Lambda: 1, Blocks: blocks}, nil
}

// Spherical returns the 3-(q^d + 1, q+1, 1) design (a Möbius or
// "spherical" design) whose points are GF(q^d) ∪ {∞} and whose blocks are
// the images of the subline GF(q) ∪ {∞} under Möbius transformations, for
// q a prime power and d >= 2. For q = 3 these are Steiner quadruple
// systems; for q = 4 they are the 3-(17,5,1), 3-(65,5,1), 3-(257,5,1)
// systems the paper uses for r = 5.
//
// Generation uses 3-transitivity: every triple of points lies in exactly
// one block, and the block through (a, b, c) is the image of the base
// subline under the Möbius map sending (0, 1, ∞) to (a, b, c). A block is
// emitted when the triple examined is its three smallest points.
func Spherical(q, d int) (*Packing, error) {
	if d < 2 {
		return nil, fmt.Errorf("design: Spherical needs d >= 2, got %d", d)
	}
	order := 1
	for i := 0; i < d; i++ {
		if order > gf.MaxOrder {
			return nil, fmt.Errorf("design: Spherical(%d, %d) too large", q, d)
		}
		order *= q
	}
	field, err := gf.New(order)
	if err != nil {
		return nil, fmt.Errorf("design: Spherical: %w", err)
	}
	// The subfield GF(q) inside GF(q^d): fixed points of x -> x^q.
	subline := make([]int, 0, q+1)
	for x := 0; x < order; x++ {
		if field.Pow(x, q) == x {
			subline = append(subline, x)
		}
	}
	if len(subline) != q {
		return nil, fmt.Errorf("design: subfield of GF(%d) has %d elements, want %d",
			order, len(subline), q)
	}
	infinity := order // the point ∞
	v := order + 1

	// blockThrough fills dst with the q+1 points of the unique block
	// through the distinct points a < b < c (so only c may be ∞).
	blockThrough := func(a, b, c int, dst []int) []int {
		dst = dst[:0]
		if c == infinity {
			// M(x) = (b-a)·x + a maps (0,1,∞) to (a,b,∞).
			slope := field.Sub(b, a)
			for _, x := range subline {
				dst = append(dst, field.Add(field.Mul(slope, x), a))
			}
			dst = append(dst, infinity)
			return dst
		}
		// All finite: M(x) = (c·t·x + a) / (t·x + 1) with
		// t = (b-a)/(c-b), mapping (0,1,∞) to (a,b,c).
		t, err := field.Div(field.Sub(b, a), field.Sub(c, b))
		if err != nil || t == 0 {
			// Unreachable for distinct a, b, c; guard regardless.
			return dst
		}
		ct := field.Mul(c, t)
		for _, x := range subline {
			den := field.Add(field.Mul(t, x), 1)
			if den == 0 {
				dst = append(dst, infinity)
				continue
			}
			num := field.Add(field.Mul(ct, x), a)
			val, _ := field.Div(num, den)
			dst = append(dst, val)
		}
		dst = append(dst, c) // M(∞) = c·t/t = c
		return dst
	}

	count, _ := DesignBlocks(3, v, q+1, 1)
	blocks := make([][]int, 0, count)
	buf := make([]int, 0, q+1)
	for a := 0; a < v; a++ {
		for b := a + 1; b < v; b++ {
			for c := b + 1; c < v; c++ {
				buf = blockThrough(a, b, c, buf)
				sort.Ints(buf)
				if len(buf) != q+1 || buf[0] != a || buf[1] != b || buf[2] != c {
					continue
				}
				blk := make([]int, q+1)
				copy(blk, buf)
				blocks = append(blocks, blk)
			}
		}
	}
	return &Packing{V: v, K: q + 1, T: 3, Lambda: 1, Blocks: blocks}, nil
}

// canonicalVectors enumerates the nonzero vectors of GF(q)^n whose first
// nonzero coordinate is 1 — canonical representatives of projective
// points.
func canonicalVectors(n, q int) [][]int {
	var out [][]int
	vec := make([]int, n)
	var rec func(i int, leadSeen bool)
	rec = func(i int, leadSeen bool) {
		if i == n {
			if leadSeen {
				cp := make([]int, n)
				copy(cp, vec)
				out = append(out, cp)
			}
			return
		}
		if !leadSeen {
			// Coordinate may be 0 (still waiting for the lead) or 1 (lead).
			vec[i] = 0
			rec(i+1, false)
			vec[i] = 1
			rec(i+1, true)
			vec[i] = 0
			return
		}
		for c := 0; c < q; c++ {
			vec[i] = c
			rec(i+1, true)
		}
		vec[i] = 0
	}
	rec(0, false)
	return out
}

func vecKey(vec []int) string {
	b := make([]byte, 2*len(vec))
	for i, c := range vec {
		b[2*i] = byte(c >> 8)
		b[2*i+1] = byte(c)
	}
	return string(b)
}
