package design

import (
	"testing"
)

// requireDesign validates p and asserts it is a true t-design.
func requireDesign(t *testing.T, p *Packing, name string) {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: invalid packing: %v", name, err)
	}
	if !p.IsDesign() {
		t.Fatalf("%s: not a design (blocks=%d, want %d)", name, len(p.Blocks),
			func() int64 { n, _ := DesignBlocks(p.T, p.V, p.K, p.Lambda); return n }())
	}
}

func TestPartition(t *testing.T) {
	p, err := Partition(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 3 {
		t.Errorf("Partition(13, 4): %d blocks, want 3", len(p.Blocks))
	}
	// Exact division: a true 1-design.
	p2, err := Partition(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, p2, "Partition(12,4)")
	if _, err := Partition(3, 4); err == nil {
		t.Error("Partition(3, 4) should fail")
	}
}

func TestComplete(t *testing.T) {
	p, err := Complete(6, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, p, "Complete(6,3)")
	if len(p.Blocks) != 20 {
		t.Errorf("Complete(6,3): %d blocks, want 20", len(p.Blocks))
	}
	// Truncated: still a valid packing.
	p2, err := Complete(6, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Blocks) != 7 {
		t.Errorf("Complete(6,3,7): %d blocks, want 7", len(p2.Blocks))
	}
	if err := p2.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Complete(2, 3, 0); err == nil {
		t.Error("Complete(2,3) should fail")
	}
}

func TestAllPairs(t *testing.T) {
	p, err := AllPairs(9)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, p, "AllPairs(9)")
	if len(p.Blocks) != 36 {
		t.Errorf("AllPairs(9): %d blocks, want 36", len(p.Blocks))
	}
}

func TestSteinerTripleSystems(t *testing.T) {
	for _, v := range []int{3, 7, 9, 13, 15, 19, 21, 25, 27, 31, 33, 37, 39, 63, 69} {
		p, err := SteinerTriple(v)
		if err != nil {
			t.Fatalf("SteinerTriple(%d): %v", v, err)
		}
		requireDesign(t, p, "STS")
		if p.V != v {
			t.Errorf("STS(%d) reports V = %d", v, p.V)
		}
	}
}

func TestSteinerTripleLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping STS(255) in short mode")
	}
	p, err := SteinerTriple(255)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, p, "STS(255)")
}

func TestSteinerTripleInvalidOrders(t *testing.T) {
	for _, v := range []int{2, 4, 5, 6, 8, 11, 12, 14, 70} {
		if _, err := SteinerTriple(v); err == nil {
			t.Errorf("SteinerTriple(%d): want error", v)
		}
	}
}

func TestBooleanSQS(t *testing.T) {
	for m := 2; m <= 5; m++ {
		p, err := BooleanSQS(m)
		if err != nil {
			t.Fatalf("BooleanSQS(%d): %v", m, err)
		}
		requireDesign(t, p, "BooleanSQS")
	}
	if _, err := BooleanSQS(1); err == nil {
		t.Error("BooleanSQS(1): want error")
	}
}

func TestOneFactorization(t *testing.T) {
	for _, v := range []int{2, 4, 6, 10, 14, 20} {
		factors, err := OneFactorization(v)
		if err != nil {
			t.Fatalf("OneFactorization(%d): %v", v, err)
		}
		if len(factors) != v-1 {
			t.Fatalf("OneFactorization(%d): %d factors, want %d", v, len(factors), v-1)
		}
		edgeSeen := make(map[[2]int]int)
		for fi, factor := range factors {
			if len(factor) != v/2 {
				t.Fatalf("v=%d factor %d has %d edges, want %d", v, fi, len(factor), v/2)
			}
			vertexSeen := make(map[int]bool)
			for _, e := range factor {
				if e[0] >= e[1] {
					t.Fatalf("v=%d: edge %v not ordered", v, e)
				}
				if vertexSeen[e[0]] || vertexSeen[e[1]] {
					t.Fatalf("v=%d factor %d: vertex repeated", v, fi)
				}
				vertexSeen[e[0]] = true
				vertexSeen[e[1]] = true
				edgeSeen[e]++
			}
		}
		// Union must be exactly K_v.
		if len(edgeSeen) != v*(v-1)/2 {
			t.Fatalf("v=%d: %d distinct edges, want %d", v, len(edgeSeen), v*(v-1)/2)
		}
		for e, c := range edgeSeen {
			if c != 1 {
				t.Fatalf("v=%d: edge %v appears %d times", v, e, c)
			}
		}
	}
	if _, err := OneFactorization(5); err == nil {
		t.Error("OneFactorization(5): want error")
	}
}

func TestDoubleSQS(t *testing.T) {
	sqs4, err := SQS(4)
	if err != nil {
		t.Fatal(err)
	}
	sqs8, err := DoubleSQS(sqs4)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, sqs8, "DoubleSQS(4)")

	sqs10, err := Spherical(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	sqs20, err := DoubleSQS(sqs10)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, sqs20, "DoubleSQS(10)")

	sts, _ := SteinerTriple(7)
	if _, err := DoubleSQS(sts); err == nil {
		t.Error("DoubleSQS of an STS should fail")
	}
}

func TestSQSDispatcher(t *testing.T) {
	for _, v := range []int{4, 8, 10, 16, 20, 28, 32, 40} {
		p, err := SQS(v)
		if err != nil {
			t.Fatalf("SQS(%d): %v", v, err)
		}
		requireDesign(t, p, "SQS")
		if p.V != v {
			t.Errorf("SQS(%d) reports V = %d", v, p.V)
		}
	}
	// Existing but not constructible here.
	for _, v := range []int{14, 26, 70} {
		if !SQSExists(v) {
			t.Errorf("SQSExists(%d) = false, want true", v)
		}
		if SQSConstructible(v) {
			t.Errorf("SQSConstructible(%d) = true, want false", v)
		}
		if _, err := SQS(v); err == nil {
			t.Errorf("SQS(%d): want error", v)
		}
	}
	// Non-existing orders.
	for _, v := range []int{6, 9, 12, 18} {
		if SQSExists(v) {
			t.Errorf("SQSExists(%d) = true, want false", v)
		}
	}
}

func TestAGLines(t *testing.T) {
	tests := []struct{ d, q int }{{2, 3}, {3, 3}, {2, 4}, {3, 4}, {2, 5}, {2, 7}}
	for _, tt := range tests {
		p, err := AGLines(tt.d, tt.q)
		if err != nil {
			t.Fatalf("AGLines(%d, %d): %v", tt.d, tt.q, err)
		}
		requireDesign(t, p, "AGLines")
		wantV := 1
		for i := 0; i < tt.d; i++ {
			wantV *= tt.q
		}
		if p.V != wantV || p.K != tt.q || p.T != 2 {
			t.Errorf("AGLines(%d, %d): got %d-(%d, %d)", tt.d, tt.q, p.T, p.V, p.K)
		}
	}
	if _, err := AGLines(1, 3); err == nil {
		t.Error("AGLines(1, 3): want error")
	}
	if _, err := AGLines(2, 6); err == nil {
		t.Error("AGLines(2, 6): want error for non prime power")
	}
}

func TestPGLines(t *testing.T) {
	tests := []struct {
		d, q, wantV int
	}{{2, 2, 7}, {2, 3, 13}, {3, 3, 40}, {2, 4, 21}, {3, 4, 85}}
	for _, tt := range tests {
		p, err := PGLines(tt.d, tt.q)
		if err != nil {
			t.Fatalf("PGLines(%d, %d): %v", tt.d, tt.q, err)
		}
		requireDesign(t, p, "PGLines")
		if p.V != tt.wantV || p.K != tt.q+1 || p.T != 2 {
			t.Errorf("PGLines(%d, %d): got %d-(%d, %d), want v=%d", tt.d, tt.q, p.T, p.V, p.K, tt.wantV)
		}
	}
	if _, err := PGLines(1, 3); err == nil {
		t.Error("PGLines(1, 3): want error")
	}
}

func TestSpherical(t *testing.T) {
	tests := []struct {
		q, d, wantV int
	}{{3, 2, 10}, {4, 2, 17}, {3, 3, 28}, {5, 2, 26}}
	for _, tt := range tests {
		p, err := Spherical(tt.q, tt.d)
		if err != nil {
			t.Fatalf("Spherical(%d, %d): %v", tt.q, tt.d, err)
		}
		requireDesign(t, p, "Spherical")
		if p.V != tt.wantV || p.K != tt.q+1 || p.T != 3 {
			t.Errorf("Spherical(%d, %d): got %d-(%d, %d), want v=%d",
				tt.q, tt.d, p.T, p.V, p.K, tt.wantV)
		}
	}
	if _, err := Spherical(3, 1); err == nil {
		t.Error("Spherical(3, 1): want error")
	}
	if _, err := Spherical(6, 2); err == nil {
		t.Error("Spherical(6, 2): want error for non prime power")
	}
}

func TestSphericalMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 3-(65,5,1) in short mode")
	}
	p, err := Spherical(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, p, "Spherical(4,3) = 3-(65,5,1)")
}

func TestSphericalLargePaperOrders(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 3-(82,4,1) and 3-(257,5,1) in short mode")
	}
	// The SQS(82) used by the doubling closure.
	p82, err := Spherical(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireDesign(t, p82, "Spherical(3,4) = 3-(82,4,1)")
	// The n = 257, r = 5, x = 2 system of Fig. 4.
	p257, err := Spherical(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p257.V != 257 || len(p257.Blocks) != 279616 {
		t.Fatalf("3-(257,5,1): v=%d blocks=%d, want 257 and 279616", p257.V, len(p257.Blocks))
	}
	if err := p257.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p257.IsDesign() {
		t.Error("3-(257,5,1) is not a design")
	}
}
