package design

import (
	"fmt"
	"sort"

	"repro/internal/gf"
)

// The catalog encodes what is *known to exist* in design theory (used by
// the analytical experiments, which only need capacity formulas) and what
// this package can *actually construct* (used when concrete placements are
// materialized). The two sets differ: e.g. SQS(70) exists by Hanani's
// theorem but has no implemented construction here.
//
// All entries are Steiner systems, i.e. t-(v, k, 1) designs.

// knownThreeFive lists the orders v for which a 3-(v, 5, 1) design is
// known (the q = 4 spherical family 4^d + 1, plus 26 from Hanani, Hartman
// & Kramer's census of small 3-designs — the paper's Fig. 4 uses 26, 65
// and 257).
var knownThreeFive = []int{17, 26, 65, 257, 1025}

// knownFourFive lists the orders v for which an S(4, 5, v) is known: the
// derived designs of the 5-(q+1, 6, 1) family for prime powers
// q ≡ 3 (mod 4). Ostergard & Pottonen proved S(4, 5, 17) does not exist.
var knownFourFive = []int{11, 23, 47, 71, 83, 107, 131, 167, 243}

// SteinerExists reports whether a t-(v, k, 1) Steiner system is known to
// exist. Supported block sizes are 2 <= k <= 5 with 1 <= t <= k (the
// paper's replication range), and the degenerate t = 1 (partitions, which
// require k | v to be a true design) and t = k (complete designs).
func SteinerExists(t, v, k int) bool {
	if v < k || k < 1 || t < 1 || t > k {
		return false
	}
	if t == k {
		return true // every k-subset exactly once
	}
	if t == 1 {
		return v%k == 0
	}
	if v == k {
		return true // single block covers everything exactly once
	}
	switch {
	case t == 2 && k == 2:
		return true
	case t == 2 && k == 3:
		return v%6 == 1 || v%6 == 3
	case t == 2 && k == 4:
		return v%12 == 1 || v%12 == 4
	case t == 2 && k == 5:
		return v%20 == 1 || v%20 == 5
	case t == 3 && k == 4:
		return SQSExists(v)
	case t == 3 && k == 5:
		return containsInt(knownThreeFive, v)
	case t == 4 && k == 5:
		return containsInt(knownFourFive, v)
	default:
		return false
	}
}

// SteinerConstructible reports whether BuildSteiner can build a
// t-(v, k, 1) system.
func SteinerConstructible(t, v, k int) bool {
	if v < k || k < 1 || t < 1 || t > k {
		return false
	}
	if t == k || t == 1 || v == k {
		return true
	}
	switch {
	case t == 2 && k == 2:
		return true
	case t == 2 && k == 3:
		return v%6 == 1 || v%6 == 3
	case t == 2 && k == 4, t == 2 && k == 5:
		_, _, ok := lineGeometryFor(v, k)
		return ok
	case t == 3 && k == 4:
		return SQSConstructible(v)
	case t == 3 && k == 5:
		d, ok := sphericalDegree(v, 4)
		return ok && d >= 2 && v <= 1025
	default:
		return false
	}
}

// BuildSteiner constructs a t-(v, k, 1) Steiner system, dispatching to the
// algebraic construction families. It fails for parameters outside the
// constructible set; use GreedyPacking as the documented fallback.
func BuildSteiner(t, v, k int) (*Packing, error) {
	if !SteinerConstructible(t, v, k) {
		return nil, fmt.Errorf("design: no implemented construction for %d-(%d, %d, 1)", t, v, k)
	}
	switch {
	case t == 1:
		return Partition(v, k)
	case v == k:
		p, err := Complete(v, k, 0)
		if err != nil {
			return nil, err
		}
		// A single all-points block (or the complete design at v == k)
		// covers each t-subset exactly once; re-declare at strength t.
		p.T = t
		return p, nil
	case t == k:
		return Complete(v, k, 0)
	case t == 2 && k == 2:
		return AllPairs(v)
	case t == 2 && k == 3:
		return SteinerTriple(v)
	case t == 2 && (k == 4 || k == 5):
		kind, d, _ := lineGeometryFor(v, k)
		if kind == geomAffine {
			return AGLines(d, k)
		}
		return PGLines(d, k-1)
	case t == 3 && k == 4:
		return SQS(v)
	case t == 3 && k == 5:
		d, _ := sphericalDegree(v, 4)
		return Spherical(4, d)
	default:
		return nil, fmt.Errorf("design: no implemented construction for %d-(%d, %d, 1)", t, v, k)
	}
}

// KnownSteinerOrders returns, in increasing order, all orders v in
// [minV, maxV] for which a t-(v, k, 1) system is known to exist.
func KnownSteinerOrders(t, k, minV, maxV int) []int {
	var out []int
	for v := minV; v <= maxV; v++ {
		if SteinerExists(t, v, k) {
			out = append(out, v)
		}
	}
	return out
}

// BestKnownOrder returns the largest v <= maxV for which a t-(v, k, 1)
// system is known to exist.
func BestKnownOrder(t, k, maxV int) (int, bool) {
	for v := maxV; v >= k; v-- {
		if SteinerExists(t, v, k) {
			return v, true
		}
	}
	return 0, false
}

// BestConstructibleOrder returns the largest v <= maxV for which
// BuildSteiner has a construction.
func BestConstructibleOrder(t, k, maxV int) (int, bool) {
	for v := maxV; v >= k; v-- {
		if SteinerConstructible(t, v, k) {
			return v, true
		}
	}
	return 0, false
}

type geometryKind int

const (
	geomAffine geometryKind = iota + 1
	geomProjective
)

// lineGeometryFor decides whether v points with block size k match an
// affine line design (v = k^d, k a prime power) or a projective line
// design (v = ((k-1)^(d+1) - 1) / (k - 2), k-1 a prime power), returning
// the dimension d.
func lineGeometryFor(v, k int) (geometryKind, int, bool) {
	if gf.IsPrimePower(k) {
		size := k * k
		for d := 2; size <= 1<<20; d++ {
			if size == v {
				return geomAffine, d, true
			}
			size *= k
		}
	}
	q := k - 1
	if gf.IsPrimePower(q) {
		// PG(d, q) has 1 + q + q^2 + ... + q^d points.
		size := 1 + q + q*q
		power := q * q
		for d := 2; size <= 1<<20; d++ {
			if size == v {
				return geomProjective, d, true
			}
			power *= q
			size += power
		}
	}
	return 0, 0, false
}

// sphericalDegree reports d such that v = q^d + 1.
func sphericalDegree(v, q int) (int, bool) {
	size := q
	for d := 1; size <= 1<<20; d++ {
		if size+1 == v {
			return d, true
		}
		size *= q
	}
	return 0, false
}

func containsInt(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}
