package design

import (
	"fmt"

	"repro/internal/combin"
)

// Partition returns the 1-(v, k, 1) packing whose blocks are
// floor(v/k) disjoint k-sets: {0..k-1}, {k..2k-1}, .... This is the
// Simple(0, 1) building block (no node hosts two of the packed replicas).
func Partition(v, k int) (*Packing, error) {
	if k < 1 || v < k {
		return nil, fmt.Errorf("design: partition needs 1 <= k <= v, got k=%d v=%d", k, v)
	}
	count := v / k
	blocks := make([][]int, 0, count)
	for i := 0; i < count; i++ {
		b := make([]int, k)
		for j := range b {
			b[j] = i*k + j
		}
		blocks = append(blocks, b)
	}
	return &Packing{V: v, K: k, T: 1, Lambda: 1, Blocks: blocks}, nil
}

// Complete returns the k-(v, k, 1) design consisting of every k-subset of
// {0..v-1}, up to the limit maxBlocks (<= 0 means no limit). Any prefix of
// the enumeration is itself a valid k-(v, k, 1) packing, which is what the
// Simple(r-1, λ) strategy needs: blocks that simply never repeat more than
// λ times.
func Complete(v, k int, maxBlocks int64) (*Packing, error) {
	if k < 1 || v < k {
		return nil, fmt.Errorf("design: complete needs 1 <= k <= v, got k=%d v=%d", k, v)
	}
	total := combin.Choose(v, k)
	if total == 0 {
		return nil, fmt.Errorf("design: C(%d, %d) overflows", v, k)
	}
	if maxBlocks > 0 && maxBlocks < total {
		total = maxBlocks
	}
	blocks := make([][]int, 0, total)
	combin.ForEachSubset(v, k, func(s []int) bool {
		b := make([]int, k)
		copy(b, s)
		blocks = append(blocks, b)
		return int64(len(blocks)) < total
	})
	return &Packing{V: v, K: k, T: k, Lambda: 1, Blocks: blocks}, nil
}

// AllPairs returns the 2-(v, 2, 1) design of all pairs: the degenerate
// Steiner system used for r = 2 placements.
func AllPairs(v int) (*Packing, error) {
	return Complete(v, 2, 0)
}

// SteinerTriple returns a Steiner triple system STS(v), a 2-(v, 3, 1)
// design. STS(v) exists if and only if v ≡ 1 or 3 (mod 6); the Bose
// construction handles v = 6t+3 and the Skolem construction handles
// v = 6t+1 (both after Lindner & Rodger, "Design Theory").
func SteinerTriple(v int) (*Packing, error) {
	switch {
	case v == 3:
		return &Packing{V: 3, K: 3, T: 2, Lambda: 1, Blocks: [][]int{{0, 1, 2}}}, nil
	case v < 7:
		return nil, fmt.Errorf("design: no STS(%d)", v)
	case v%6 == 3:
		return bose(v), nil
	case v%6 == 1:
		return skolem(v), nil
	default:
		return nil, fmt.Errorf("design: no STS(%d): order must be 1 or 3 mod 6", v)
	}
}

// bose builds STS(6t+3) on Z_{2t+1} x {0,1,2} using the idempotent
// commutative quasigroup x∘y = (t+1)(x+y) mod (2t+1).
func bose(v int) *Packing {
	t := (v - 3) / 6
	m := 2*t + 1
	point := func(i, level int) int { return 3*i + level }
	op := func(x, y int) int { return (t + 1) * (x + y) % m }

	var blocks [][]int
	for i := 0; i < m; i++ {
		blocks = append(blocks, sortBlock([]int{point(i, 0), point(i, 1), point(i, 2)}))
	}
	for level := 0; level < 3; level++ {
		next := (level + 1) % 3
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				blocks = append(blocks, sortBlock([]int{
					point(i, level), point(j, level), point(op(i, j), next),
				}))
			}
		}
	}
	return &Packing{V: v, K: 3, T: 2, Lambda: 1, Blocks: blocks}
}

// skolem builds STS(6t+1) on (Z_{2t} x {0,1,2}) ∪ {∞} using the
// half-idempotent commutative quasigroup on Z_{2t} defined by
// x∘y = σ(x+y mod 2t), σ(2i) = i, σ(2i+1) = t+i.
func skolem(v int) *Packing {
	t := (v - 1) / 6
	m := 2 * t
	inf := v - 1 // the ∞ point
	point := func(i, level int) int { return 3*i + level }
	sigma := func(z int) int {
		if z%2 == 0 {
			return z / 2
		}
		return t + (z-1)/2
	}
	op := func(x, y int) int { return sigma((x + y) % m) }

	var blocks [][]int
	// (a) {(i,0), (i,1), (i,2)} for 0 <= i < t.
	for i := 0; i < t; i++ {
		blocks = append(blocks, sortBlock([]int{point(i, 0), point(i, 1), point(i, 2)}))
	}
	// (b) {∞, (t+i, level), (i, level+1)} for 0 <= i < t.
	for i := 0; i < t; i++ {
		for level := 0; level < 3; level++ {
			next := (level + 1) % 3
			blocks = append(blocks, sortBlock([]int{inf, point(t+i, level), point(i, next)}))
		}
	}
	// (c) {(i,level), (j,level), (i∘j, level+1)} for i < j.
	for level := 0; level < 3; level++ {
		next := (level + 1) % 3
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				blocks = append(blocks, sortBlock([]int{
					point(i, level), point(j, level), point(op(i, j), next),
				}))
			}
		}
	}
	return &Packing{V: v, K: 3, T: 2, Lambda: 1, Blocks: blocks}
}
