package design

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestGreedyPackingIsValid(t *testing.T) {
	tests := []struct {
		t_, v, k, lambda int
	}{
		{2, 14, 4, 1},
		{2, 26, 5, 1},
		{3, 14, 4, 1},
		{3, 26, 5, 1},
		{4, 23, 5, 1},
		{2, 19, 3, 2},
		{3, 12, 4, 3},
	}
	for _, tt := range tests {
		p, err := GreedyPacking(tt.t_, tt.v, tt.k, tt.lambda, 1, 0)
		if err != nil {
			t.Fatalf("GreedyPacking(%d,%d,%d,%d): %v", tt.t_, tt.v, tt.k, tt.lambda, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("GreedyPacking(%d,%d,%d,%d) invalid: %v", tt.t_, tt.v, tt.k, tt.lambda, err)
		}
		if len(p.Blocks) == 0 {
			t.Errorf("GreedyPacking(%d,%d,%d,%d): no blocks", tt.t_, tt.v, tt.k, tt.lambda)
		}
		if int64(len(p.Blocks)) > p.MaxBlocks() {
			t.Errorf("GreedyPacking exceeds the Lemma 1 bound: %d > %d",
				len(p.Blocks), p.MaxBlocks())
		}
	}
}

func TestGreedyPackingCapacityQuality(t *testing.T) {
	// For STS orders, greedy should reach a substantial fraction of the
	// design bound (it cannot reach it exactly in general, but far-off
	// results indicate a bug in the sweep phase).
	p, err := GreedyPacking(2, 15, 3, 1, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := p.MaxBlocks() // 35 for STS(15)
	if int64(len(p.Blocks)) < bound*6/10 {
		t.Errorf("greedy 2-(15,3,1) reached %d blocks, bound %d: below 60%%", len(p.Blocks), bound)
	}
}

func TestGreedyPackingDeterministic(t *testing.T) {
	a, err := GreedyPacking(3, 14, 4, 1, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GreedyPacking(3, 14, 4, 1, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Blocks, b.Blocks) {
		t.Error("GreedyPacking not deterministic for a fixed seed")
	}
}

func TestGreedyPackingMaxBlocks(t *testing.T) {
	p, err := GreedyPacking(2, 15, 3, 1, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 5 {
		t.Errorf("maxBlocks=5: got %d blocks", len(p.Blocks))
	}
}

func TestGreedyPackingRejectsBadParameters(t *testing.T) {
	bad := [][4]int{{0, 10, 3, 1}, {2, 2, 3, 1}, {4, 10, 3, 1}, {2, 10, 3, 0}}
	for _, b := range bad {
		if _, err := GreedyPacking(b[0], b[1], b[2], b[3], 1, 0); err == nil {
			t.Errorf("GreedyPacking(%v): want error", b)
		}
	}
}

func TestGreedyPackingPropertyRandomParams(t *testing.T) {
	f := func(seed int64, raw uint32) bool {
		v := 6 + int(raw%12)
		k := 3 + int(raw/12)%3
		if k > v {
			k = v
		}
		tt := 2
		lambda := 1 + int(raw/100)%2
		p, err := GreedyPacking(tt, v, k, lambda, seed, 0)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
