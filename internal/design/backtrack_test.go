package design

import (
	"testing"
)

func TestBacktrackFindsSmallSteinerSystems(t *testing.T) {
	cases := []struct {
		t_, v, k, lambda int
	}{
		{2, 7, 3, 1},  // Fano plane
		{2, 9, 3, 1},  // STS(9)
		{2, 13, 3, 1}, // STS(13)
		{3, 8, 4, 1},  // SQS(8)
		{2, 13, 4, 1}, // PG(2,3)
		{2, 7, 3, 2},  // doubled Fano (λ = 2)
		{1, 12, 4, 1}, // partition
	}
	for _, tc := range cases {
		p, ok, err := BacktrackDesign(tc.t_, tc.v, tc.k, tc.lambda, 0)
		if err != nil {
			t.Fatalf("BacktrackDesign(%d,%d,%d,%d): %v", tc.t_, tc.v, tc.k, tc.lambda, err)
		}
		if !ok {
			t.Fatalf("BacktrackDesign(%d,%d,%d,%d): no design found", tc.t_, tc.v, tc.k, tc.lambda)
		}
		requireDesign(t, p, "BacktrackDesign")
	}
}

func TestBacktrackProvesNonexistence(t *testing.T) {
	// 2-(6,3,1) fails the point-level divisibility condition.
	if _, _, err := BacktrackDesign(2, 6, 3, 1, 0); err == nil {
		t.Error("divisibility-violating parameters accepted")
	}
	// 2-(8,3,1) fails the block-level condition.
	if _, _, err := BacktrackDesign(2, 8, 3, 1, 0); err == nil {
		t.Error("divisibility-violating parameters accepted")
	}
	if testing.Short() {
		t.Skip("skipping the 2-(16,6,1) exhaustive nonexistence proof in short mode")
	}
	// 2-(16,6,1) passes divisibility (16·15/30 = 8 blocks, 3 per point)
	// but no such design exists; exhaustive search must report that.
	p, ok, err := BacktrackDesign(2, 16, 6, 1, 1<<24)
	if err != nil {
		t.Fatalf("BacktrackDesign(2,16,6,1): %v", err)
	}
	if ok {
		t.Fatalf("BacktrackDesign found a 2-(16,6,1) design, which must not exist: %v", p.Blocks)
	}
}

func TestBacktrackBudgetExhaustion(t *testing.T) {
	// A hard instance with a tiny budget errors rather than spins.
	_, _, err := BacktrackDesign(3, 14, 4, 1, 50)
	if err == nil {
		t.Error("expected budget exhaustion error")
	}
}

func TestBacktrackRejectsBadParams(t *testing.T) {
	if _, _, err := BacktrackDesign(0, 7, 3, 1, 0); err == nil {
		t.Error("t = 0 accepted")
	}
	if _, _, err := BacktrackDesign(2, 2, 3, 1, 0); err == nil {
		t.Error("v < k accepted")
	}
}
