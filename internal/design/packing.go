// Package design implements combinatorial block designs: t-(v, k, λ)
// packings and designs, with real algebraic constructions for the infinite
// families used by the paper (Steiner triple systems, quadruple systems,
// affine and projective line designs, spherical/Möbius designs), a greedy
// fallback packing builder for orders with no implemented construction, and
// an existence catalog encoding the known design spectra.
//
// A t-(v, k, λ) packing is a collection of k-element blocks over the point
// set {0, ..., v-1} such that every t-subset of points is contained in at
// most λ blocks. When every t-subset is contained in exactly λ blocks the
// packing is a t-design (for λ = 1, a Steiner system). The paper's
// Simple(x, λ) placement is exactly an (x+1)-(n, r, λ) packing whose blocks
// are the replica sets of objects.
package design

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/combin"
)

// Packing is a t-(V, K, Lambda) packing. Blocks hold sorted, distinct
// point indices in [0, V).
type Packing struct {
	V      int     // number of points
	K      int     // block size
	T      int     // subset size being packed
	Lambda int     // maximum multiplicity of any t-subset
	Blocks [][]int // the blocks
}

// Clone returns a deep copy of p.
func (p *Packing) Clone() *Packing {
	blocks := make([][]int, len(p.Blocks))
	for i, b := range p.Blocks {
		nb := make([]int, len(b))
		copy(nb, b)
		blocks[i] = nb
	}
	return &Packing{V: p.V, K: p.K, T: p.T, Lambda: p.Lambda, Blocks: blocks}
}

// MaxBlocks returns the packing bound of Lemma 1:
// floor(Lambda * C(V, T) / C(K, T)), the largest number of blocks any
// t-(V, K, Lambda) packing can have.
func (p *Packing) MaxBlocks() int64 {
	return MaxBlocks(p.T, p.V, p.K, p.Lambda)
}

// MaxBlocks returns floor(lambda * C(v, t) / C(k, t)), saturating at
// math.MaxInt64 when the numerator overflows int64: the Lemma 1 value
// is an UPPER bound on packable blocks, so an overflow must read as
// "astronomically many", never as 0 (which would claim nothing packs).
func MaxBlocks(t, v, k, lambda int) int64 {
	den := combin.ChooseOrHuge(k, t)
	if den == 0 {
		return 0
	}
	num := combin.ChooseOrHuge(v, t)
	if lambda > 0 && num > math.MaxInt64/int64(lambda) {
		return math.MaxInt64
	}
	return combin.FloorDiv(int64(lambda)*num, den)
}

// DesignBlocks returns the exact number of blocks of a t-(v, k, lambda)
// design: lambda * C(v, t) / C(k, t). The second result reports whether
// the division is exact (a necessary condition for the design to
// exist); an int64 overflow anywhere reports false — exactness cannot
// be verified, and the old Choose-is-0 path silently claimed an exact
// zero-block design instead.
func DesignBlocks(t, v, k, lambda int) (int64, bool) {
	c, err := combin.Binomial(v, t)
	if err != nil {
		return 0, false
	}
	den := combin.Choose(k, t)
	if den == 0 || (lambda > 0 && c > math.MaxInt64/int64(lambda)) {
		return 0, false
	}
	num := int64(lambda) * c
	if num%den != 0 {
		return 0, false
	}
	return num / den, true
}

// Admissible reports whether the standard divisibility conditions for the
// existence of a t-(v, k, lambda) design hold: for every 0 <= i < t,
// lambda * C(v-i, t-i) must be divisible by C(k-i, t-i). Overflowing
// parameters report false — the conditions cannot be verified, which
// must not read as "they hold".
func Admissible(t, v, k, lambda int) bool {
	if v < k || k < t || t < 1 || lambda < 1 {
		return false
	}
	for i := 0; i < t; i++ {
		c, err := combin.Binomial(v-i, t-i)
		if err != nil {
			return false
		}
		den := combin.Choose(k-i, t-i)
		if den == 0 || c > math.MaxInt64/int64(lambda) {
			return false
		}
		if (int64(lambda)*c)%den != 0 {
			return false
		}
	}
	return true
}

// Validate checks structural integrity and the packing property: block
// sizes, point ranges, sortedness, and that no t-subset occurs in more than
// Lambda blocks. It is exhaustive and therefore intended for tests and
// construction-time verification, not hot paths.
func (p *Packing) Validate() error {
	if p.T < 1 || p.K < p.T || p.V < p.K {
		return fmt.Errorf("design: invalid parameters t=%d k=%d v=%d", p.T, p.K, p.V)
	}
	if p.Lambda < 1 {
		return fmt.Errorf("design: invalid lambda %d", p.Lambda)
	}
	for bi, b := range p.Blocks {
		if len(b) != p.K {
			return fmt.Errorf("design: block %d has size %d, want %d", bi, len(b), p.K)
		}
		for i, pt := range b {
			if pt < 0 || pt >= p.V {
				return fmt.Errorf("design: block %d point %d out of range [0, %d)", bi, pt, p.V)
			}
			if i > 0 && b[i-1] >= pt {
				return fmt.Errorf("design: block %d not strictly sorted", bi)
			}
		}
	}
	counts := p.coverageCounts()
	for key, c := range counts {
		if c > p.Lambda {
			return fmt.Errorf("design: %d-subset %v covered %d times, max %d",
				p.T, decodeSubsetKey(key, p.T), c, p.Lambda)
		}
	}
	return nil
}

// IsDesign reports whether the packing is a t-design, i.e. every t-subset
// of points is covered exactly Lambda times. The packing must Validate
// first; IsDesign assumes structural integrity.
func (p *Packing) IsDesign() bool {
	want, exact := DesignBlocks(p.T, p.V, p.K, p.Lambda)
	if !exact || int64(len(p.Blocks)) != want {
		return false
	}
	counts := p.coverageCounts()
	// Every covered subset must be covered exactly Lambda times, and the
	// number of covered subsets must equal C(V, T).
	total := combin.Choose(p.V, p.T)
	if int64(len(counts)) != total {
		return false
	}
	for _, c := range counts {
		if c != p.Lambda {
			return false
		}
	}
	return true
}

// coverageCounts maps each covered t-subset (encoded) to its multiplicity.
func (p *Packing) coverageCounts() map[uint64]int {
	counts := make(map[uint64]int)
	sub := make([]int, p.T)
	for _, b := range p.Blocks {
		combin.ForEachSubset(len(b), p.T, func(idx []int) bool {
			for i, j := range idx {
				sub[i] = b[j]
			}
			counts[encodeSubset(sub)]++
			return true
		})
	}
	return counts
}

// encodeSubset packs up to five sorted point indices (< 4096) into a
// uint64 key. All designs in this repository satisfy these bounds.
func encodeSubset(s []int) uint64 {
	var key uint64
	for _, pt := range s {
		key = key<<12 | uint64(pt+1)
	}
	return key
}

func decodeSubsetKey(key uint64, t int) []int {
	out := make([]int, t)
	for i := t - 1; i >= 0; i-- {
		out[i] = int(key&0xfff) - 1
		key >>= 12
	}
	return out
}

// sortBlock sorts a block in place and returns it.
func sortBlock(b []int) []int {
	sort.Ints(b)
	return b
}

// relabel returns a copy of the packing with points renamed by perm
// (point i becomes perm[i]) and blocks re-sorted. It is used by tests to
// check isomorphism-invariance of the validators.
func (p *Packing) relabel(perm []int) *Packing {
	out := p.Clone()
	for _, b := range out.Blocks {
		for i := range b {
			b[i] = perm[b[i]]
		}
		sortBlock(b)
	}
	return out
}
