package design_test

import (
	"fmt"

	"repro/internal/design"
)

// ExampleSteinerTriple builds the Fano plane, the smallest nontrivial
// Steiner triple system.
func ExampleSteinerTriple() {
	sts, err := design.SteinerTriple(7)
	if err != nil {
		panic(err)
	}
	fmt.Println("blocks:", len(sts.Blocks))
	fmt.Println("is design:", sts.IsDesign())
	// Output:
	// blocks: 7
	// is design: true
}

// ExampleBuildSteiner dispatches to the construction families by
// parameters: here the projective plane of order 3 (2-(13,4,1)).
func ExampleBuildSteiner() {
	d, err := design.BuildSteiner(2, 13, 4)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d-(%d, %d, %d) with %d blocks\n", d.T, d.V, d.K, d.Lambda, len(d.Blocks))
	// Output:
	// 2-(13, 4, 1) with 13 blocks
}

// ExampleGreedyPacking builds a maximal packing for an order with no
// algebraic construction; the packing property still holds.
func ExampleGreedyPacking() {
	p, err := design.GreedyPacking(3, 14, 4, 1, 42, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", p.Validate() == nil)
	fmt.Println("within bound:", int64(len(p.Blocks)) <= p.MaxBlocks())
	// Output:
	// valid: true
	// within bound: true
}
