package design

import (
	"fmt"
)

// BooleanSQS returns the Steiner quadruple system SQS(2^m), the
// 3-(2^m, 4, 1) design whose blocks are the 4-subsets {a, b, c, d} of
// GF(2)^m (encoded as integers) with a ⊕ b ⊕ c ⊕ d = 0 — the planes of the
// Boolean affine geometry AG(m, 2).
func BooleanSQS(m int) (*Packing, error) {
	if m < 2 || m > 12 {
		return nil, fmt.Errorf("design: BooleanSQS needs 2 <= m <= 12, got %d", m)
	}
	v := 1 << m
	var blocks [][]int
	for a := 0; a < v; a++ {
		for b := a + 1; b < v; b++ {
			for c := b + 1; c < v; c++ {
				d := a ^ b ^ c
				if d > c {
					blocks = append(blocks, []int{a, b, c, d})
				}
			}
		}
	}
	return &Packing{V: v, K: 4, T: 3, Lambda: 1, Blocks: blocks}, nil
}

// OneFactorization returns a partition of the edge set of the complete
// graph K_v (v even) into v-1 perfect matchings ("1-factors") using the
// standard round-robin circle method. Factor f contains the edge
// {v-1, f} and the edges {(f+j) mod (v-1), (f-j) mod (v-1)} for
// 1 <= j <= v/2 - 1.
func OneFactorization(v int) ([][][2]int, error) {
	if v < 2 || v%2 != 0 {
		return nil, fmt.Errorf("design: 1-factorization needs even v >= 2, got %d", v)
	}
	m := v - 1
	factors := make([][][2]int, m)
	for f := 0; f < m; f++ {
		pairs := make([][2]int, 0, v/2)
		pairs = append(pairs, orderedPair(v-1, f))
		for j := 1; j <= v/2-1; j++ {
			a := ((f+j)%m + m) % m
			b := ((f-j)%m + m) % m
			pairs = append(pairs, orderedPair(a, b))
		}
		factors[f] = pairs
	}
	return factors, nil
}

func orderedPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// DoubleSQS builds SQS(2v) from SQS(v) using Hanani's doubling
// construction: on the point set V x {0, 1}, take (i) two disjoint copies
// of the inner system, and (ii) for every 1-factor F of K_v and every two
// edges {x, y}, {z, w} of F, the block {x₀, y₀, z₁, w₁}.
func DoubleSQS(inner *Packing) (*Packing, error) {
	if inner.T != 3 || inner.K != 4 || inner.Lambda != 1 {
		return nil, fmt.Errorf("design: DoubleSQS needs an SQS, got %d-(%d,%d,%d)",
			inner.T, inner.V, inner.K, inner.Lambda)
	}
	v := inner.V
	factors, err := OneFactorization(v)
	if err != nil {
		return nil, err
	}
	level := func(x, lvl int) int { return x + lvl*v }

	var blocks [][]int
	for _, b := range inner.Blocks {
		for lvl := 0; lvl < 2; lvl++ {
			nb := make([]int, 4)
			for i, pt := range b {
				nb[i] = level(pt, lvl)
			}
			blocks = append(blocks, sortBlock(nb))
		}
	}
	for _, factor := range factors {
		for _, e0 := range factor {
			for _, e1 := range factor {
				blocks = append(blocks, sortBlock([]int{
					level(e0[0], 0), level(e0[1], 0),
					level(e1[0], 1), level(e1[1], 1),
				}))
			}
		}
	}
	return &Packing{V: 2 * v, K: 4, T: 3, Lambda: 1, Blocks: blocks}, nil
}

// SQS returns a Steiner quadruple system of order v from the constructible
// closure of this package: the trivial SQS(4), Boolean systems 2^m,
// spherical systems 3^d + 1 (Möbius designs over GF(3^d)), and Hanani
// doubling of any of these. Orders v ≡ 2, 4 (mod 6) outside the closure
// (e.g. 14, 26, 70) exist by Hanani's theorem but have no implemented
// construction; use GreedyPacking for those.
func SQS(v int) (*Packing, error) {
	if !SQSConstructible(v) {
		return nil, fmt.Errorf("design: no implemented SQS(%d) construction", v)
	}
	switch {
	case v == 4:
		return &Packing{V: 4, K: 4, T: 3, Lambda: 1, Blocks: [][]int{{0, 1, 2, 3}}}, nil
	case isPowerOfTwo(v):
		m := 0
		for 1<<m < v {
			m++
		}
		return BooleanSQS(m)
	case isSpherical3(v):
		d := 0
		for p := 1; p < v-1; p *= 3 {
			d++
		}
		return Spherical(3, d)
	case v%2 == 0 && SQSConstructible(v/2):
		inner, err := SQS(v / 2)
		if err != nil {
			return nil, err
		}
		return DoubleSQS(inner)
	}
	return nil, fmt.Errorf("design: no implemented SQS(%d) construction", v)
}

// SQSConstructible reports whether SQS(v) is in this package's
// constructible closure.
func SQSConstructible(v int) bool {
	if v < 4 {
		return false
	}
	if v == 4 || isPowerOfTwo(v) || isSpherical3(v) {
		return true
	}
	return v%2 == 0 && SQSConstructible(v/2)
}

// SQSExists reports whether SQS(v) exists: Hanani's theorem says exactly
// the orders v ≡ 2 or 4 (mod 6), v >= 4 (plus trivial small cases).
func SQSExists(v int) bool {
	if v == 4 {
		return true
	}
	return v >= 8 && (v%6 == 2 || v%6 == 4)
}

func isPowerOfTwo(v int) bool { return v >= 2 && v&(v-1) == 0 }

// isSpherical3 reports whether v = 3^d + 1 for some d >= 2.
func isSpherical3(v int) bool {
	for p := 9; p <= 1<<20; p *= 3 {
		if v == p+1 {
			return true
		}
	}
	return false
}
