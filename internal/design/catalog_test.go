package design

import (
	"testing"
)

func TestSteinerExistsSpectra(t *testing.T) {
	tests := []struct {
		t_, v, k int
		want     bool
	}{
		// STS spectrum.
		{2, 7, 3, true}, {2, 9, 3, true}, {2, 8, 3, false}, {2, 69, 3, true},
		// 2-(v,4,1): v ≡ 1, 4 mod 12.
		{2, 13, 4, true}, {2, 16, 4, true}, {2, 64, 4, true}, {2, 70, 4, false},
		{2, 25, 4, true}, {2, 28, 4, true},
		// 2-(v,5,1): v ≡ 1, 5 mod 20.
		{2, 21, 5, true}, {2, 25, 5, true}, {2, 245, 5, true}, {2, 65, 5, true},
		{2, 30, 5, false},
		// SQS.
		{3, 8, 4, true}, {3, 14, 4, true}, {3, 70, 4, true}, {3, 9, 4, false},
		// 3-(v,5,1) known orders.
		{3, 17, 5, true}, {3, 26, 5, true}, {3, 65, 5, true}, {3, 257, 5, true},
		{3, 20, 5, false},
		// S(4,5,v) known orders; 17 proven nonexistent.
		{4, 11, 5, true}, {4, 23, 5, true}, {4, 71, 5, true}, {4, 243, 5, true},
		{4, 17, 5, false},
		// Degenerate families.
		{1, 12, 4, true}, {1, 13, 4, false},
		{5, 30, 5, true}, {2, 30, 2, true},
		{2, 4, 4, true}, {3, 5, 5, true},
		// Nonsense parameters.
		{0, 10, 3, false}, {4, 3, 5, false}, {2, 2, 3, false},
	}
	for _, tt := range tests {
		if got := SteinerExists(tt.t_, tt.v, tt.k); got != tt.want {
			t.Errorf("SteinerExists(%d, %d, %d) = %v, want %v", tt.t_, tt.v, tt.k, got, tt.want)
		}
	}
}

func TestExistsImpliesAdmissible(t *testing.T) {
	// Everything the catalog claims to exist must pass the divisibility
	// conditions — a consistency check between the two predicates.
	for k := 2; k <= 5; k++ {
		for tt := 2; tt <= k; tt++ {
			for v := k; v <= 400; v++ {
				if SteinerExists(tt, v, k) && !Admissible(tt, v, k, 1) {
					t.Errorf("SteinerExists(%d, %d, %d) but not Admissible", tt, v, k)
				}
			}
		}
	}
}

func TestConstructibleSubsetOfExists(t *testing.T) {
	for k := 2; k <= 5; k++ {
		for tt := 1; tt <= k; tt++ {
			for v := k; v <= 300; v++ {
				if SteinerConstructible(tt, v, k) && !SteinerExists(tt, v, k) {
					// Partition packings are constructible for any v but are
					// only true designs when k | v; skip that special case.
					if tt == 1 {
						continue
					}
					t.Errorf("SteinerConstructible(%d, %d, %d) but not SteinerExists", tt, v, k)
				}
			}
		}
	}
}

// TestBuildSteinerAllConstructible builds and fully verifies every
// constructible Steiner system with v within budget.
func TestBuildSteinerAllConstructible(t *testing.T) {
	maxV := 100
	if testing.Short() {
		maxV = 45
	}
	for k := 2; k <= 5; k++ {
		for tt := 2; tt <= k; tt++ {
			for v := k; v <= maxV; v++ {
				if !SteinerConstructible(tt, v, k) {
					continue
				}
				if tt == k && v > 12 {
					continue // complete designs get huge; covered elsewhere
				}
				p, err := BuildSteiner(tt, v, k)
				if err != nil {
					t.Fatalf("BuildSteiner(%d, %d, %d): %v", tt, v, k, err)
				}
				if p.V != v || p.K != k || p.T != tt || p.Lambda != 1 {
					t.Fatalf("BuildSteiner(%d, %d, %d): got %d-(%d, %d, %d)",
						tt, v, k, p.T, p.V, p.K, p.Lambda)
				}
				requireDesign(t, p, "BuildSteiner")
			}
		}
	}
}

func TestBuildSteinerUnconstructible(t *testing.T) {
	if _, err := BuildSteiner(4, 23, 5); err == nil {
		t.Error("BuildSteiner(4, 23, 5): want error (no S(4,5,23) construction)")
	}
	if _, err := BuildSteiner(2, 8, 3); err == nil {
		t.Error("BuildSteiner(2, 8, 3): want error (no STS(8))")
	}
}

func TestBestOrders(t *testing.T) {
	// Paper Fig. 4 orders (catalog view), with the 70 -> 64 substitution
	// for (n=71, r=4, x=1) documented in DESIGN.md.
	tests := []struct {
		t_, k, maxV, want int
	}{
		{2, 3, 31, 31},
		{2, 3, 71, 69},
		{2, 3, 257, 255},
		{2, 4, 31, 28},
		{2, 4, 71, 64}, // paper prints 70, which fails divisibility
		{2, 4, 257, 256},
		{3, 4, 31, 28},
		{3, 4, 71, 70},
		{3, 4, 257, 256},
		{2, 5, 31, 25},
		{2, 5, 71, 65},
		{2, 5, 257, 245},
		{3, 5, 31, 26},
		{3, 5, 71, 65},
		{3, 5, 257, 257},
		{4, 5, 31, 23},
		{4, 5, 71, 71},
		{4, 5, 257, 243},
	}
	for _, tt := range tests {
		got, ok := BestKnownOrder(tt.t_, tt.k, tt.maxV)
		if !ok || got != tt.want {
			t.Errorf("BestKnownOrder(%d, %d, %d) = %d, %v; want %d",
				tt.t_, tt.k, tt.maxV, got, ok, tt.want)
		}
	}
	// The trivial single-block 4-(5,5,1) system exists, so maxV = 10
	// resolves to v = 5; only maxV < k has no order at all.
	if got, ok := BestKnownOrder(4, 5, 10); !ok || got != 5 {
		t.Errorf("BestKnownOrder(4, 5, 10) = %d, %v; want 5", got, ok)
	}
	if _, ok := BestKnownOrder(4, 5, 4); ok {
		t.Error("BestKnownOrder(4, 5, 4): want none")
	}
}

func TestBestConstructibleOrder(t *testing.T) {
	tests := []struct {
		t_, k, maxV, want int
	}{
		{2, 3, 71, 69},
		{2, 4, 71, 64},
		{3, 4, 71, 64}, // SQS(70) exists but is not constructible; 64 = 2^6 is
		{2, 5, 71, 25},
		{3, 5, 71, 65},
		{2, 5, 257, 125},
	}
	for _, tt := range tests {
		got, ok := BestConstructibleOrder(tt.t_, tt.k, tt.maxV)
		if !ok || got != tt.want {
			t.Errorf("BestConstructibleOrder(%d, %d, %d) = %d, %v; want %d",
				tt.t_, tt.k, tt.maxV, got, ok, tt.want)
		}
	}
}

func TestKnownSteinerOrders(t *testing.T) {
	got := KnownSteinerOrders(2, 3, 7, 22)
	want := []int{7, 9, 13, 15, 19, 21}
	if len(got) != len(want) {
		t.Fatalf("KnownSteinerOrders = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("KnownSteinerOrders = %v, want %v", got, want)
		}
	}
}

func TestLineGeometryFor(t *testing.T) {
	tests := []struct {
		v, k  int
		kind  geometryKind
		d     int
		found bool
	}{
		{16, 4, geomAffine, 2, true},
		{64, 4, geomAffine, 3, true},
		{256, 4, geomAffine, 4, true},
		{13, 4, geomProjective, 2, true},
		{40, 4, geomProjective, 3, true},
		{121, 4, geomProjective, 4, true},
		{25, 5, geomAffine, 2, true},
		{21, 5, geomProjective, 2, true},
		{85, 5, geomProjective, 3, true},
		{70, 4, 0, 0, false},
	}
	for _, tt := range tests {
		kind, d, found := lineGeometryFor(tt.v, tt.k)
		if found != tt.found || kind != tt.kind || d != tt.d {
			t.Errorf("lineGeometryFor(%d, %d) = (%v, %d, %v), want (%v, %d, %v)",
				tt.v, tt.k, kind, d, found, tt.kind, tt.d, tt.found)
		}
	}
}
