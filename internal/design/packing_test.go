package design

import (
	"math/rand"
	"testing"
)

func TestValidateCatchesViolations(t *testing.T) {
	good := &Packing{V: 6, K: 3, T: 2, Lambda: 1, Blocks: [][]int{{0, 1, 2}, {3, 4, 5}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid packing rejected: %v", err)
	}

	tests := []struct {
		name string
		p    *Packing
	}{
		{"pair covered twice", &Packing{V: 6, K: 3, T: 2, Lambda: 1,
			Blocks: [][]int{{0, 1, 2}, {0, 1, 3}}}},
		{"wrong block size", &Packing{V: 6, K: 3, T: 2, Lambda: 1,
			Blocks: [][]int{{0, 1}}}},
		{"point out of range", &Packing{V: 6, K: 3, T: 2, Lambda: 1,
			Blocks: [][]int{{0, 1, 6}}}},
		{"negative point", &Packing{V: 6, K: 3, T: 2, Lambda: 1,
			Blocks: [][]int{{-1, 1, 2}}}},
		{"unsorted block", &Packing{V: 6, K: 3, T: 2, Lambda: 1,
			Blocks: [][]int{{2, 1, 0}}}},
		{"repeated point", &Packing{V: 6, K: 3, T: 2, Lambda: 1,
			Blocks: [][]int{{1, 1, 2}}}},
		{"bad parameters", &Packing{V: 2, K: 3, T: 2, Lambda: 1}},
		{"bad lambda", &Packing{V: 6, K: 3, T: 2, Lambda: 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); err == nil {
				t.Error("Validate accepted an invalid packing")
			}
		})
	}
}

func TestValidateRespectsLambda(t *testing.T) {
	p := &Packing{V: 6, K: 3, T: 2, Lambda: 2,
		Blocks: [][]int{{0, 1, 2}, {0, 1, 3}}}
	if err := p.Validate(); err != nil {
		t.Errorf("lambda=2 packing rejected: %v", err)
	}
	p.Blocks = append(p.Blocks, []int{0, 1, 4})
	if err := p.Validate(); err == nil {
		t.Error("pair {0,1} covered 3 times with lambda=2 accepted")
	}
}

func TestIsDesign(t *testing.T) {
	fano := &Packing{V: 7, K: 3, T: 2, Lambda: 1, Blocks: [][]int{
		{0, 1, 2}, {0, 3, 4}, {0, 5, 6}, {1, 3, 5}, {1, 4, 6}, {2, 3, 6}, {2, 4, 5},
	}}
	if err := fano.Validate(); err != nil {
		t.Fatalf("Fano plane rejected: %v", err)
	}
	if !fano.IsDesign() {
		t.Error("Fano plane not recognized as a design")
	}
	partial := &Packing{V: 7, K: 3, T: 2, Lambda: 1, Blocks: fano.Blocks[:6]}
	if partial.IsDesign() {
		t.Error("partial Fano plane recognized as a design")
	}
}

func TestMaxBlocksAndDesignBlocks(t *testing.T) {
	// STS(7): C(7,2)/C(3,2) = 7 blocks.
	if got := MaxBlocks(2, 7, 3, 1); got != 7 {
		t.Errorf("MaxBlocks(2,7,3,1) = %d, want 7", got)
	}
	n, exact := DesignBlocks(2, 7, 3, 1)
	if !exact || n != 7 {
		t.Errorf("DesignBlocks(2,7,3,1) = %d, %v; want 7, true", n, exact)
	}
	// 2-(8,3,1) fails divisibility.
	if _, exact := DesignBlocks(2, 8, 3, 1); exact {
		t.Error("DesignBlocks(2,8,3,1) should not be exact")
	}
	// Lambda scales linearly.
	if got := MaxBlocks(2, 7, 3, 3); got != 21 {
		t.Errorf("MaxBlocks(2,7,3,3) = %d, want 21", got)
	}
}

func TestAdmissible(t *testing.T) {
	tests := []struct {
		t_, v, k, lambda int
		want             bool
	}{
		{2, 7, 3, 1, true},
		{2, 9, 3, 1, true},
		{2, 8, 3, 1, false},
		{3, 8, 4, 1, true},   // SQS(8)
		{3, 9, 4, 1, false},  // 9 ≡ 3 mod 6
		{2, 70, 4, 1, false}, // the Fig. 4 OCR anomaly: 70·69/12 not integral
		{2, 64, 4, 1, true},  // AG(3,4)
		{3, 70, 4, 1, true},  // SQS(70) is admissible (and exists)
		{4, 71, 5, 1, true},
		{2, 5, 5, 1, true},
		{1, 10, 5, 1, true},
		{1, 11, 5, 1, false},
		{2, 7, 3, 0, false},
		{0, 7, 3, 1, false},
	}
	for _, tt := range tests {
		if got := Admissible(tt.t_, tt.v, tt.k, tt.lambda); got != tt.want {
			t.Errorf("Admissible(%d,%d,%d,%d) = %v, want %v",
				tt.t_, tt.v, tt.k, tt.lambda, got, tt.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &Packing{V: 6, K: 3, T: 2, Lambda: 1, Blocks: [][]int{{0, 1, 2}}}
	c := p.Clone()
	c.Blocks[0][0] = 5
	if p.Blocks[0][0] != 0 {
		t.Error("Clone shares block storage with the original")
	}
}

func TestRelabelPreservesDesignProperty(t *testing.T) {
	sts, err := SteinerTriple(13)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(13)
	relabeled := sts.relabel(perm)
	if err := relabeled.Validate(); err != nil {
		t.Fatalf("relabeled STS(13) invalid: %v", err)
	}
	if !relabeled.IsDesign() {
		t.Error("relabeled STS(13) is not a design")
	}
}

func TestEncodeDecodeSubsetKey(t *testing.T) {
	subs := [][]int{{0}, {0, 1}, {5, 100, 4000}, {1, 2, 3, 4, 5}}
	for _, s := range subs {
		key := encodeSubset(s)
		got := decodeSubsetKey(key, len(s))
		for i := range s {
			if got[i] != s[i] {
				t.Errorf("round trip %v -> %v", s, got)
			}
		}
	}
}
