package design

import (
	"fmt"
	"math"

	"repro/internal/combin"
)

// BacktrackDesign searches for a *complete* t-(v, k, lambda) design by
// exhaustive backtracking: repeatedly pick the lexicographically smallest
// under-covered t-subset and try every block through it that keeps the
// packing property. The search is exact — if it returns ok, the result
// is a true design; if it exhausts the space within budget, no design
// exists; if the node budget runs out first, ok is false and the error
// distinguishes the outcome.
//
// This complements the algebraic constructions for small orders outside
// their families (e.g. 2-(13,4,1) can be *searched* as well as built as
// PG(2,3)), and upgrades the greedy fallback when exactness matters more
// than time. Budgets make the worst case (which is super-exponential)
// explicit.
func BacktrackDesign(t, v, k, lambda int, budget int64) (*Packing, bool, error) {
	if t < 1 || k < t || v < k || lambda < 1 {
		return nil, false, fmt.Errorf("design: invalid parameters t=%d v=%d k=%d lambda=%d", t, v, k, lambda)
	}
	if !Admissible(t, v, k, lambda) {
		return nil, false, fmt.Errorf("design: %d-(%d, %d, %d) fails divisibility", t, v, k, lambda)
	}
	target, _ := DesignBlocks(t, v, k, lambda)
	if budget <= 0 {
		budget = 1 << 22
	}
	// In a complete design every point lies in exactly
	// λ·C(v-1, t-1)/C(k-1, t-1) blocks; exceeding that is a dead end.
	// An int64 overflow in the numerator means the true degree bound is
	// astronomical — leave it unconstrained rather than 0, which would
	// reject every block and fake a nonexistence proof.
	degMax := math.MaxInt
	if num := combin.ChooseOrHuge(v-1, t-1); num < math.MaxInt64/int64(lambda) {
		if den := combin.Choose(k-1, t-1); den > 0 {
			if dm := combin.FloorDiv(int64(lambda)*num, den); dm < int64(math.MaxInt) {
				degMax = int(dm)
			}
		}
	}
	deg := make([]int, v)

	counts := make(map[uint64]int)
	sub := make([]int, t)
	forEachTSubset := func(b []int, fn func(key uint64) bool) {
		combin.ForEachSubset(len(b), t, func(idx []int) bool {
			for i, j := range idx {
				sub[i] = b[j]
			}
			return fn(encodeSubset(sub))
		})
	}
	canAdd := func(b []int) bool {
		for _, p := range b {
			if deg[p] >= degMax {
				return false
			}
		}
		ok := true
		forEachTSubset(b, func(key uint64) bool {
			if counts[key] >= lambda {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	apply := func(b []int, delta int) {
		for _, p := range b {
			deg[p] += delta
		}
		forEachTSubset(b, func(key uint64) bool {
			counts[key] += delta
			return true
		})
	}

	// firstOpen returns the smallest t-subset still below lambda.
	tsub := make([]int, t)
	firstOpen := func() ([]int, bool) {
		found := false
		combin.ForEachSubset(v, t, func(s []int) bool {
			for i, x := range s {
				tsub[i] = x
			}
			if counts[encodeSubset(tsub)] < lambda {
				found = true
				return false
			}
			return true
		})
		return tsub, found
	}

	var (
		blocks  [][]int
		visited int64
		out     *Packing
	)
	var rec func() (bool, error)
	rec = func() (bool, error) {
		visited++
		if visited > budget {
			return false, fmt.Errorf("design: backtracking budget %d exhausted", budget)
		}
		open, any := firstOpen()
		if !any {
			// Every t-subset fully covered: a design.
			out = &Packing{V: v, K: k, T: t, Lambda: lambda, Blocks: cloneBlocks(blocks)}
			return true, nil
		}
		if int64(len(blocks)) >= target {
			return false, nil // block budget spent but subsets remain
		}
		// Extend `open` to every possible block, choosing the k-t extra
		// points above-or-around in lexicographic order.
		base := make([]int, t)
		copy(base, open)
		var extend func(b []int, next int) (bool, error)
		extend = func(b []int, next int) (bool, error) {
			if len(b) == k {
				blk := make([]int, k)
				copy(blk, b)
				sortBlock(blk)
				if !canAdd(blk) {
					return false, nil
				}
				apply(blk, +1)
				blocks = append(blocks, blk)
				done, err := rec()
				if err != nil {
					return false, err
				}
				if done {
					return true, nil
				}
				blocks = blocks[:len(blocks)-1]
				apply(blk, -1)
				return false, nil
			}
			for p := next; p < v; p++ {
				if containsPoint(b, p) {
					continue
				}
				done, err := extend(append(b, p), p+1)
				if err != nil || done {
					return done, err
				}
			}
			return false, nil
		}
		return extend(base, 0)
	}
	done, err := rec()
	if err != nil {
		return nil, false, err
	}
	if !done {
		return nil, false, nil // exhaustive: no such design
	}
	return out, true, nil
}

func cloneBlocks(blocks [][]int) [][]int {
	out := make([][]int, len(blocks))
	for i, b := range blocks {
		nb := make([]int, len(b))
		copy(nb, b)
		out[i] = nb
	}
	return out
}

func containsPoint(b []int, p int) bool {
	for _, x := range b {
		if x == p {
			return true
		}
	}
	return false
}
