// Package capacity implements the paper's parameter-selection machinery
// (Sec. III-C): given a system size n, how close can a Simple(x, λ)
// placement built from up to m chunks of known Steiner systems
// (Observation 2) come to the ideal capacity ⌊λ·C(n, x+1)/C(r, x+1)⌋?
//
// The "capacity gap" of Figs. 5 and 6 is (ideal − achieved)/ideal, where
// achieved is maximized over decompositions of the n nodes into at most m
// chunks whose orders admit designs. Fig. 5 restricts to μ = 1 Steiner
// systems; Fig. 6 widens the catalog to multiplicities μ ≤ 5 or μ ≤ 10
// (per-order admissibility is used as the availability criterion for
// μ > 1, a documented substitution for the survey table the paper cites).
package capacity

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/design"
)

// Gap describes the best chunk decomposition found for one system size.
type Gap struct {
	N        int     // total nodes available
	Orders   []int   // chosen chunk orders (descending), Σ <= N
	Ideal    int64   // ideal capacity numerator: C(n, t) (per λ, scaled by C(r,t))
	Achieved int64   // achieved capacity numerator: Σ C(n_i, t)
	Frac     float64 // (Ideal − Achieved)/Ideal in [0, 1]; 0 is best
}

// AvailableOrders returns the orders v in [k, maxV] usable as chunk
// orders for an (x+1)-(v, r, μ) design with t = x+1 and μ constrained to
// maxMu:
//
//   - maxMu == 1: orders with known μ = 1 Steiner systems (the design
//     catalog's spectrum knowledge);
//   - maxMu > 1: orders admissible for some μ <= maxMu (divisibility
//     conditions), the Fig. 6 relaxation.
//
// For t == 1 the usable orders are the multiples of r (partitions), and
// for t == r every order is usable (complete designs).
func AvailableOrders(t, r, maxV, maxMu int) ([]int, error) {
	if t < 1 || t > r {
		return nil, fmt.Errorf("capacity: t = %d must satisfy 1 <= t <= r = %d", t, r)
	}
	if maxMu < 1 {
		return nil, fmt.Errorf("capacity: maxMu = %d must be positive", maxMu)
	}
	var orders []int
	for v := r; v <= maxV; v++ {
		usable := false
		switch {
		case t == 1:
			usable = v%r == 0
		case t == r:
			usable = true
		case maxMu == 1:
			usable = design.SteinerExists(t, v, r)
		default:
			for mu := 1; mu <= maxMu && !usable; mu++ {
				if mu == 1 {
					usable = design.SteinerExists(t, v, r)
				} else {
					usable = design.Admissible(t, v, r, mu)
				}
			}
		}
		if usable {
			orders = append(orders, v)
		}
	}
	return orders, nil
}

// BestDecompositions computes, for every budget 0..maxN, the maximum
// achievable capacity numerator Σ C(n_i, t) over decompositions into at
// most m chunks drawn (with repetition) from orders. It returns the DP
// table achieved[budget] and a choice table for reconstruction.
func BestDecompositions(t int, orders []int, maxN, m int) (achieved []int64, choose [][]int32) {
	caps := make([]int64, len(orders))
	// An overflowed C(v, t) must rank as "astronomically large", never 0
	// (Choose's overflow convention would make the biggest chunks the
	// least attractive); clamp below MaxInt64/(m+1) so the DP's m-fold
	// sums cannot overflow either.
	hugeClamp := int64(math.MaxInt64) / int64(m+1)
	for i, v := range orders {
		c := combin.ChooseOrHuge(v, t)
		if c > hugeClamp {
			c = hugeClamp
		}
		caps[i] = c
	}
	prev := make([]int64, maxN+1)
	choose = make([][]int32, m+1)
	for j := 1; j <= m; j++ {
		cur := make([]int64, maxN+1)
		choice := make([]int32, maxN+1)
		for c := 0; c <= maxN; c++ {
			cur[c] = prev[c]
			choice[c] = -1
			for oi, v := range orders {
				if v > c {
					break // orders ascend
				}
				if cand := caps[oi] + prev[c-v]; cand > cur[c] {
					cur[c] = cand
					choice[c] = int32(oi)
				}
			}
		}
		choose[j] = choice
		prev = cur
	}
	return prev, choose
}

// BestGap returns the best decomposition of n nodes into at most m chunks
// for an (x+1)-(·, r, ·) family with t = x+1, using the given order
// catalog.
func BestGap(t, r, n, m int, orders []int) (Gap, error) {
	if n < 1 || m < 1 {
		return Gap{}, fmt.Errorf("capacity: n = %d and m = %d must be positive", n, m)
	}
	achieved, choose := BestDecompositions(t, orders, n, m)
	g := Gap{
		N:        n,
		Ideal:    combin.ChooseOrHuge(n, t),
		Achieved: achieved[n],
	}
	// Reconstruct the chunk orders.
	budget := n
	for j := m; j >= 1 && budget > 0; j-- {
		oi := choose[j][budget]
		if oi < 0 {
			continue
		}
		g.Orders = append(g.Orders, orders[oi])
		budget -= orders[oi]
	}
	if g.Ideal > 0 {
		g.Frac = float64(g.Ideal-g.Achieved) / float64(g.Ideal)
	}
	return g, nil
}

// GapCurve computes the capacity gap for every n in [nLo, nHi], sharing
// one DP pass across all sizes. It reproduces one curve of Fig. 5
// (maxMu = 1) or Fig. 6 (maxMu > 1).
func GapCurve(t, r, nLo, nHi, m, maxMu int) ([]Gap, error) {
	if nLo < 1 || nHi < nLo {
		return nil, fmt.Errorf("capacity: invalid range [%d, %d]", nLo, nHi)
	}
	orders, err := AvailableOrders(t, r, nHi, maxMu)
	if err != nil {
		return nil, err
	}
	achieved, choose := BestDecompositions(t, orders, nHi, m)
	gaps := make([]Gap, 0, nHi-nLo+1)
	for n := nLo; n <= nHi; n++ {
		g := Gap{N: n, Ideal: combin.ChooseOrHuge(n, t), Achieved: achieved[n]}
		budget := n
		for j := m; j >= 1 && budget > 0; j-- {
			oi := choose[j][budget]
			if oi < 0 {
				continue
			}
			g.Orders = append(g.Orders, orders[oi])
			budget -= orders[oi]
		}
		if g.Ideal > 0 {
			g.Frac = float64(g.Ideal-g.Achieved) / float64(g.Ideal)
		}
		gaps = append(gaps, g)
	}
	return gaps, nil
}

// CDF summarizes gap values as the fraction of system sizes whose gap is
// at most each threshold. Thresholds must be ascending.
func CDF(gaps []Gap, thresholds []float64) []float64 {
	out := make([]float64, len(thresholds))
	if len(gaps) == 0 {
		return out
	}
	for i, th := range thresholds {
		count := 0
		for _, g := range gaps {
			if g.Frac <= th+1e-12 {
				count++
			}
		}
		out[i] = float64(count) / float64(len(gaps))
	}
	return out
}
