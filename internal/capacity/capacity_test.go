package capacity

import (
	"testing"

	"repro/internal/combin"
)

func TestAvailableOrders(t *testing.T) {
	// STS orders within [3, 22].
	got, err := AvailableOrders(2, 3, 22, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 7, 9, 13, 15, 19, 21}
	if len(got) != len(want) {
		t.Fatalf("orders = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("orders = %v, want %v", got, want)
		}
	}

	// t = 1: multiples of r.
	got, err = AvailableOrders(1, 4, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	want = []int{4, 8, 12, 16}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("t=1 orders = %v, want %v", got, want)
		}
	}

	// t = r: every order.
	got, err = AvailableOrders(3, 3, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 { // 3, 4, 5, 6
		t.Fatalf("t=r orders = %v", got)
	}

	// μ > 1 widens the catalog: 3-(v,5,μ) for μ <= 10 admits far more
	// orders than the short μ=1 list.
	mu1, err := AvailableOrders(3, 5, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	mu10, err := AvailableOrders(3, 5, 300, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(mu10) <= len(mu1) {
		t.Errorf("μ<=10 catalog (%d orders) not larger than μ=1 (%d orders)",
			len(mu10), len(mu1))
	}

	if _, err := AvailableOrders(0, 3, 10, 1); err == nil {
		t.Error("t = 0 accepted")
	}
	if _, err := AvailableOrders(2, 3, 10, 0); err == nil {
		t.Error("maxMu = 0 accepted")
	}
}

func TestBestGapSingleChunkExact(t *testing.T) {
	// n exactly an STS order: gap 0 with one chunk.
	orders, err := AvailableOrders(2, 3, 21, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BestGap(2, 3, 21, 1, orders)
	if err != nil {
		t.Fatal(err)
	}
	if g.Frac != 0 {
		t.Errorf("gap at an exact order = %g, want 0 (got orders %v)", g.Frac, g.Orders)
	}
	if len(g.Orders) != 1 || g.Orders[0] != 21 {
		t.Errorf("decomposition = %v, want [21]", g.Orders)
	}
}

func TestBestGapUsesChunks(t *testing.T) {
	// n = 22 with m = 2: best is 15 + 7 = 22 exactly (C(15,2)+C(7,2) = 126),
	// beating the single chunk 21 (C(21,2) = 210)... single 21 wins on
	// capacity. Verify the DP picks the true maximum.
	orders, err := AvailableOrders(2, 3, 22, 1)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := BestGap(2, 3, 22, 1, orders)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BestGap(2, 3, 22, 2, orders)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Achieved < g1.Achieved {
		t.Errorf("m=2 achieved %d < m=1 achieved %d", g2.Achieved, g1.Achieved)
	}
	// Exhaustive check of the m=2 optimum.
	var best int64
	for _, a := range orders {
		for _, b := range orders {
			if a+b <= 22 {
				if c := combin.Choose(a, 2) + combin.Choose(b, 2); c > best {
					best = c
				}
			}
		}
		if c := combin.Choose(a, 2); c > best {
			best = c
		}
	}
	if g2.Achieved != best {
		t.Errorf("m=2 DP achieved %d, exhaustive best %d", g2.Achieved, best)
	}
}

func TestGapCurveMonotoneCoverage(t *testing.T) {
	// More chunks can only help.
	g1, err := GapCurve(2, 4, 50, 120, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := GapCurve(2, 4, 50, 120, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != len(g3) {
		t.Fatal("length mismatch")
	}
	for i := range g1 {
		if g3[i].Achieved < g1[i].Achieved {
			t.Errorf("n=%d: m=3 achieved %d < m=1 achieved %d",
				g1[i].N, g3[i].Achieved, g1[i].Achieved)
		}
		if g3[i].Frac < 0 || g3[i].Frac > 1 {
			t.Errorf("n=%d: gap %g outside [0,1]", g3[i].N, g3[i].Frac)
		}
	}
}

func TestGapCurvePaperShape(t *testing.T) {
	// Fig. 5, r=3 panel: with up to 3 chunks of Steiner triple systems,
	// nearly all system sizes in [50, 800] achieve a very low gap for
	// x=1 (STS orders are dense: 1,3 mod 6).
	gaps, err := GapCurve(2, 3, 50, 800, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	lowGap := 0
	for _, g := range gaps {
		if g.Frac <= 0.1 {
			lowGap++
		}
	}
	if frac := float64(lowGap) / float64(len(gaps)); frac < 0.95 {
		t.Errorf("r=3, x=1: only %.2f of sizes achieve gap <= 0.1; paper shows nearly all", frac)
	}

	// Fig. 5, r=5, x=2 panel: the μ=1 catalog for 3-(v,5,1) is sparse, so
	// most sizes have a large gap.
	gaps52, err := GapCurve(3, 5, 50, 800, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bigGap := 0
	for _, g := range gaps52 {
		if g.Frac > 0.3 {
			bigGap++
		}
	}
	if frac := float64(bigGap) / float64(len(gaps52)); frac < 0.5 {
		t.Errorf("r=5, x=2, μ=1: only %.2f of sizes have gap > 0.3; paper shows most do", frac)
	}

	// Fig. 6: allowing μ <= 10 must shrink gaps substantially vs μ = 1.
	gapsMu10, err := GapCurve(3, 5, 50, 800, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	improved := 0
	for i := range gaps52 {
		if gapsMu10[i].Frac < gaps52[i].Frac-1e-9 {
			improved++
		}
	}
	if improved == 0 {
		t.Error("μ <= 10 never improves on μ = 1, contradicting Fig. 6")
	}
}

func TestCDF(t *testing.T) {
	gaps := []Gap{{Frac: 0.0}, {Frac: 0.05}, {Frac: 0.2}, {Frac: 0.9}}
	out := CDF(gaps, []float64{0, 0.1, 0.5, 1})
	want := []float64{0.25, 0.5, 0.75, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("CDF = %v, want %v", out, want)
			break
		}
	}
	if got := CDF(nil, []float64{0.5}); got[0] != 0 {
		t.Error("empty CDF should be zero")
	}
}

func TestGapCurveInvalidRange(t *testing.T) {
	if _, err := GapCurve(2, 3, 10, 5, 1, 1); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := BestGap(2, 3, 0, 1, []int{7}); err == nil {
		t.Error("n = 0 accepted")
	}
}
