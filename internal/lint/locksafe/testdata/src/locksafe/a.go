package locksafe

import "sync"

type session struct {
	mu sync.Mutex
	n  int
}

func byValueParam(s session) int { // want `parameter passes session by value`
	return s.n
}

func byValueRecv(s session) {} // want `parameter passes session by value`

func (s session) valueMethod() int { // want `method receiver passes session by value`
	return s.n
}

func (s *session) pointerMethod() int { // ok: pointer receiver
	return s.n
}

func derefCopy(p *session) int {
	c := *p // want `assignment copies \*session by value`
	return c.n
}

func callCopy(p *session) int {
	return byValueParam(*p) // want `call argument copies \*session by value`
}

func rangeCopy(ss []session) int {
	total := 0
	for _, s := range ss { // want `range copies session elements by value`
		total += s.n
	}
	return total
}

func rangeIndex(ss []session) int {
	total := 0
	for i := range ss { // ok: index iteration, no copy
		total += ss[i].n
	}
	return total
}

func earlyReturn(s *session) int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n // want `return with s\.mu still locked`
	}
	s.mu.Unlock()
	return 0
}

func deferredUnlock(s *session) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n > 0 {
		return s.n // ok: deferred unlock covers every path
	}
	return 0
}

func unlockBothPaths(s *session) int {
	s.mu.Lock()
	if s.n > 0 {
		v := s.n
		s.mu.Unlock()
		return v // ok: unlocked on this path
	}
	s.mu.Unlock()
	return 0
}

type memoShard struct {
	mu sync.Mutex
	m  map[uint64]int
}

type engine struct{}

func (engine) Evaluate() int { return 0 }

func acrossEvaluate(sh *memoShard, ev engine) int {
	sh.mu.Lock()
	v := ev.Evaluate() // want `Evaluate while shard lock sh\.mu is held`
	sh.mu.Unlock()
	return v
}

func acrossChannel(sh *memoShard, ch chan int) {
	sh.mu.Lock()
	ch <- 1 // want `channel send while shard lock sh\.mu is held`
	sh.mu.Unlock()
}

func acrossSpawn(sh *memoShard) {
	sh.mu.Lock()
	go func() {}() // want `go statement while shard lock sh\.mu is held`
	sh.mu.Unlock()
}

func shardDiscipline(sh *memoShard, k uint64) (int, bool) {
	sh.mu.Lock()
	v, ok := sh.m[k] // ok: lock, touch the map, unlock
	sh.mu.Unlock()
	return v, ok
}

func sessionHeldEval(s *session, ev engine) int {
	s.mu.Lock()
	v := ev.Evaluate() // ok: not a shard lock — sessions pin state across probes by design
	s.mu.Unlock()
	return v
}
