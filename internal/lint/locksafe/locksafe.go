// Package locksafe extends vet's copylocks to this codebase's
// concurrency idioms, in three rules:
//
//  1. Lock-bearing values by value: a receiver, parameter, result,
//     dereference-copy (`x := *sess`), or range value whose type
//     transitively contains a sync.Mutex / RWMutex / WaitGroup / Once /
//     Cond is a finding — adversary.Session and the sharded memo must
//     only travel as pointers, or a fork silently splits the lock from
//     the state it guards.
//
//  2. Early return with a lock held: after an inline `x.Lock()` (no
//     deferred unlock), a return statement reachable before the
//     matching `x.Unlock()` leaks the lock — the classic missing-unlock
//     on an error path.
//
//  3. Shard locks across evaluation and channel operations: while a
//     lock whose owner is a memo shard (type or expression names
//     "shard") is held, calls to Evaluate / ProbeMoves / Wait, channel
//     sends/receives and `go` statements are findings — the
//     lock-striped memo discipline is "lock, touch the map, unlock";
//     holding a stripe across a search invites cross-worker deadlock.
//
// Suppress deliberate exceptions with `//lint:allow locksafe <reason>`.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Config scopes the analyzer; empty Packages means all (fixtures).
type Config struct {
	Packages []string
}

// New builds the analyzer.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "locksafe",
		Doc:  "lock-bearing values by value, missing unlocks on early returns, shard locks held across evaluation",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathMatches(pass.Pkg.Path(), cfg.Packages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignature(pass, fd)
			if fd.Body != nil {
				checkValueCopies(pass, fd.Body)
				sc := &scanner{pass: pass}
				sc.block(fd.Body.List, nil)
			}
		}
	}
	return nil
}

// --- rule 1: lock-bearing values by value ---

func checkSignature(pass *analysis.Pass, fd *ast.FuncDecl) {
	report := func(fl *ast.Field, kind string) {
		t := pass.TypeOf(fl.Type)
		if t == nil || !containsLock(t, nil) {
			return
		}
		pass.Reportf(fl.Pos(), "%s passes %s by value; it contains a sync lock — pass a pointer so the lock keeps guarding one copy of the state", kind, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	if fd.Recv != nil {
		for _, fl := range fd.Recv.List {
			report(fl, "method receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, fl := range fd.Type.Params.List {
			report(fl, "parameter")
		}
	}
	if fd.Type.Results != nil {
		for _, fl := range fd.Type.Results.List {
			report(fl, "result")
		}
	}
}

func checkValueCopies(pass *analysis.Pass, body *ast.BlockStmt) {
	deref := func(e ast.Expr, what string) {
		st, ok := e.(*ast.StarExpr)
		if !ok {
			return
		}
		t := pass.TypeOf(st)
		if t == nil || !containsLock(t, nil) {
			return
		}
		pass.Reportf(st.Pos(), "%s copies *%s by value; it contains a sync lock — keep the pointer", what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				deref(r, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range s.Values {
				deref(v, "declaration")
			}
		case *ast.CallExpr:
			for _, a := range s.Args {
				deref(a, "call argument")
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				deref(r, "return")
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					deref(kv.Value, "composite literal")
				} else {
					deref(el, "composite literal")
				}
			}
		case *ast.RangeStmt:
			if s.Value != nil {
				if t := pass.TypeOf(s.Value); t != nil && containsLock(t, nil) {
					pass.Reportf(s.Value.Pos(), "range copies %s elements by value; they contain a sync lock — range over indices or pointers", types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
		}
		return true
	})
}

// containsLock reports whether t transitively holds sync lock state by
// value.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := types.Unalias(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// --- rules 2 and 3: lock-held region scanning ---

// heldLock is one acquired lock in the current scan path.
type heldLock struct {
	expr     string // the lock expression, e.g. "sh.mu"
	pos      token.Pos
	deferred bool // a deferred unlock covers it (safe for rule 2)
	shard    bool // owner is a memo shard (rule 3 applies)
}

type scanner struct {
	pass *analysis.Pass
}

// block scans a statement list, threading the held-lock state through
// sequential statements and branching into nested bodies with copies.
// It returns the state after the list.
func (sc *scanner) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = sc.stmt(st, held)
	}
	return held
}

func (sc *scanner) stmt(st ast.Stmt, held []heldLock) []heldLock {
	// Rule 3 first: any shard lock held across this statement's
	// evaluation or channel traffic.
	sc.checkAcross(st, held)

	switch s := st.(type) {
	case *ast.ExprStmt:
		if lk, kind := sc.lockCall(s.X); lk != "" {
			switch kind {
			case "lock":
				held = append(held, heldLock{expr: lk, pos: s.Pos(), shard: isShard(sc.pass, s.X)})
			case "unlock":
				held = release(held, lk)
			}
		}
	case *ast.DeferStmt:
		if lk, kind := sc.lockCall(s.Call); kind == "unlock" {
			for i := range held {
				if held[i].expr == lk {
					held[i].deferred = true
				}
			}
		}
	case *ast.ReturnStmt:
		for _, h := range held {
			if !h.deferred {
				sc.pass.Reportf(s.Pos(), "return with %s still locked (locked at %s, no deferred unlock): early-return paths must release the lock",
					h.expr, sc.pass.Fset.Position(h.pos))
			}
		}
	case *ast.BlockStmt:
		held = sc.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = sc.stmt(s.Init, held)
		}
		sc.block(s.Body.List, append([]heldLock(nil), held...))
		if s.Else != nil {
			sc.stmt(s.Else, append([]heldLock(nil), held...))
		}
	case *ast.ForStmt:
		sc.block(s.Body.List, append([]heldLock(nil), held...))
	case *ast.RangeStmt:
		sc.block(s.Body.List, append([]heldLock(nil), held...))
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sc.block(cc.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				sc.block(cc.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				sc.block(cc.Body, append([]heldLock(nil), held...))
			}
		}
	case *ast.LabeledStmt:
		held = sc.stmt(s.Stmt, held)
	}
	return held
}

func release(held []heldLock, expr string) []heldLock {
	out := held[:0:len(held)]
	for _, h := range held {
		if h.expr != expr {
			out = append(out, h)
		}
	}
	return out
}

// lockCall classifies e as a Lock/RLock ("lock") or Unlock/RUnlock
// ("unlock") call on a sync lock, returning the lock expression.
func (sc *scanner) lockCall(e ast.Expr) (lockExpr, kind string) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	t := sc.pass.TypeOf(sel.X)
	if t == nil {
		return "", ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if !isSyncLock(t) {
		return "", ""
	}
	return types.ExprString(sel.X), kind
}

func isSyncLock(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isShard reports whether the lock call's owner looks like a memo
// shard: the expression or any owner type on its selector path names
// "shard".
func isShard(pass *analysis.Pass, call ast.Expr) bool {
	c, ok := call.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if strings.Contains(strings.ToLower(types.ExprString(sel.X)), "shard") {
		return true
	}
	for e := sel.X; ; {
		inner, ok := e.(*ast.SelectorExpr)
		if !ok {
			break
		}
		if t := pass.TypeOf(inner.X); t != nil {
			if strings.Contains(strings.ToLower(types.TypeString(t, nil)), "shard") {
				return true
			}
		}
		e = inner.X
	}
	return false
}

// checkAcross reports rule-3 findings: evaluation or channel traffic
// inside st while a shard lock is held. Nested function literals and
// nested statement bodies are scanned when they execute inline; `go`
// statements are themselves findings.
func (sc *scanner) checkAcross(st ast.Stmt, held []heldLock) {
	var shard *heldLock
	for i := range held {
		if held[i].shard {
			shard = &held[i]
			break
		}
	}
	if shard == nil {
		return
	}
	// Only inspect the statement's own expressions, not nested bodies —
	// those are scanned with the same held state by the structural walk.
	var exprs []ast.Expr
	switch s := st.(type) {
	case *ast.ExprStmt:
		exprs = append(exprs, s.X)
	case *ast.AssignStmt:
		exprs = append(append(exprs, s.Lhs...), s.Rhs...)
	case *ast.ReturnStmt:
		exprs = append(exprs, s.Results...)
	case *ast.IfStmt:
		exprs = append(exprs, s.Cond)
	case *ast.SendStmt:
		sc.pass.Reportf(s.Pos(), "channel send while shard lock %s is held (locked at %s): release the stripe before communicating",
			shard.expr, sc.pass.Fset.Position(shard.pos))
		return
	case *ast.GoStmt:
		sc.pass.Reportf(s.Pos(), "go statement while shard lock %s is held (locked at %s): release the stripe before spawning workers",
			shard.expr, sc.pass.Fset.Position(shard.pos))
		return
	}
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					sc.pass.Reportf(x.Pos(), "channel receive while shard lock %s is held (locked at %s): release the stripe before communicating",
						shard.expr, sc.pass.Fset.Position(shard.pos))
				}
			case *ast.CallExpr:
				if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
					switch sel.Sel.Name {
					case "Evaluate", "ProbeMoves", "Wait":
						sc.pass.Reportf(x.Pos(), "%s while shard lock %s is held (locked at %s): the memo stripe discipline is lock, touch the map, unlock",
							sel.Sel.Name, shard.expr, sc.pass.Fset.Position(shard.pos))
					}
				}
			}
			return true
		})
	}
}
