package locksafe_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	linttest.Run(t, locksafe.New(locksafe.Config{}), "locksafe")
}
