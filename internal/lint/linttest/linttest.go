// Package linttest runs an analyzer over a fixture package and checks
// its diagnostics against `// want "regexp"` comments — the
// analysistest contract, reimplemented on the standard library. The
// check is bidirectional: a diagnostic with no matching want fails, and
// a want with no matching diagnostic fails — so a disabled or broken
// analyzer cannot pass its fixture.
//
// Fixtures live under the calling test's testdata/src/<dir>/ and may
// import only the standard library: type information comes from
// go/importer's source importer, which compiles stdlib dependencies
// from GOROOT and therefore needs no build cache and no network.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/driver"
)

// wantRe pulls the quoted patterns off a want comment; both Go string
// forms are accepted: // want "..." or // want `...`.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run analyzes the fixture package at testdata/src/<dir> with an,
// routing diagnostics through the production driver (so allow
// annotations suppress exactly as in a real run), and compares them
// against the fixture's want comments.
func Run(t *testing.T, an *analysis.Analyzer, dir string) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(root, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", root)
	}

	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := driver.NewInfo()
	pkg, err := conf.Check("fixture/"+dir, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	findings, err := driver.CheckPackage(fset, files, pkg, info, []*analysis.Analyzer{an})
	if err != nil {
		t.Fatalf("running %s: %v", an.Name, err)
	}

	expects := collectWants(t, fset, files)
	for _, f := range findings {
		pos := fset.Position(f.Pos)
		matched := false
		for i := range expects {
			e := &expects[i]
			if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, f.Message, f.Analyzer)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: want diagnostic matching %s, got none", e.file, e.line, e.raw)
		}
	}
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []expectation {
	t.Helper()
	var expects []expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				quoted := wantRe.FindAllString(text[len("want "):], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: malformed want comment: %s", pos, c.Text)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: unquoting %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: compiling %q: %v", pos, pat, err)
					}
					expects = append(expects, expectation{file: pos.Filename, line: pos.Line, re: re, raw: q})
				}
			}
		}
	}
	return expects
}
