package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct {
		Err string
	}
}

// RunStandalone loads the packages matching patterns with
// `go list -deps -export -json`, type-checks each root package against
// the compiler export data of its dependencies, and runs the suite.
// Findings are printed to out as file:line:col: message [analyzer];
// the bool result reports whether any finding was printed.
//
// `-export` makes the go command populate every dependency's export
// file from the build cache (compiling if needed), which works fully
// offline — the same data `go vet` hands tools via its cfg protocol.
func RunStandalone(patterns []string, out io.Writer) (bool, error) {
	args := append([]string{"list", "-deps", "-export", "-json", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return false, err
	}
	if err := cmd.Start(); err != nil {
		return false, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(stdout)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return false, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return false, fmt.Errorf("go list -deps -export failed: %v\n%s", err, stderr.String())
	}

	exportFor := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exportFor[p.ImportPath] = p.Export
		}
	}

	// One importer for the whole run: it caches dependency packages, so
	// shared deps type-check once.
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	suite := Suite()
	anyFinding := false
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return anyFinding, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return anyFinding, err
		}
		pkg, info, err := typeCheck(fset, p.ImportPath, files, imp)
		if err != nil {
			return anyFinding, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		findings, err := CheckPackage(fset, files, pkg, info, suite)
		if err != nil {
			return anyFinding, fmt.Errorf("analyzing %s: %v", p.ImportPath, err)
		}
		for _, f := range findings {
			anyFinding = true
			fmt.Fprintf(out, "%s: %s [%s]\n", fset.Position(f.Pos), f.Message, f.Analyzer)
		}
	}
	return anyFinding, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
