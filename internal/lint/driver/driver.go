// Package driver wires the replicalint analyzers to real packages. It
// has two front ends, both used by cmd/replicalint:
//
//   - standalone: load packages with `go list -deps -export -json`,
//     type-check each root against the compiler's export data, run the
//     suite (see standalone.go);
//   - vet unit: speak `go vet -vettool`'s one-package-per-process
//     config protocol (see vet.go).
//
// Both modes run on the standard library alone: type information comes
// from gc export data via go/importer, exactly the route x/tools'
// unitchecker takes — the toolchain's build cache supplies the export
// files, so no network and no external modules are needed.
package driver

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
	"repro/internal/lint/detrange"
	"repro/internal/lint/journalfsync"
	"repro/internal/lint/locksafe"
	"repro/internal/lint/nodeterm"
	"repro/internal/lint/phaseswitch"
)

// Suite is the production replicalint configuration: the five contract
// analyzers scoped to the packages whose contracts they enforce.
// detrange, nodeterm and locksafe cover the deterministic core;
// journalfsync covers the journaling controller; phaseswitch follows
// its marked enums wherever they are switched on.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrange.New(detrange.Config{Packages: analysis.DeterministicPackages}),
		nodeterm.New(nodeterm.Config{Packages: analysis.DeterministicPackages}),
		locksafe.New(locksafe.Config{Packages: analysis.DeterministicPackages}),
		phaseswitch.New(phaseswitch.Config{Types: phaseswitch.DefaultTypes}),
		journalfsync.New(journalfsync.Config{Packages: journalfsync.DefaultPackages}),
	}
}

// A Finding is one diagnostic attributed to its analyzer.
type Finding struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// CheckPackage runs the analyzers over one type-checked package and
// returns position-sorted findings. Allow-annotation suppression is
// applied here, and malformed allow annotations (no reason) surface as
// findings of the pseudo-analyzer "lintallow".
func CheckPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]Finding, error) {
	allows := analysis.NewAllowSet(fset, files)
	var findings []Finding
	for _, d := range allows.Malformed {
		findings = append(findings, Finding{Pos: d.Pos, Message: d.Message, Analyzer: "lintallow"})
	}
	for _, an := range analyzers {
		an := an
		pass := &analysis.Pass{
			Analyzer: an,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Report: func(d analysis.Diagnostic) {
				if allows.Allows(an.Name, d.Pos) {
					return
				}
				findings = append(findings, Finding{Pos: d.Pos, Message: d.Message, Analyzer: an.Name})
			},
		}
		if err := an.Run(pass); err != nil {
			return nil, err
		}
	}
	sort.SliceStable(findings, func(i, j int) bool {
		pi, pj := fset.Position(findings[i].Pos), fset.Position(findings[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return findings, nil
}
