package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
)

// vetConfig mirrors the JSON configuration the go command writes for
// `go vet -vettool` tools — one file per compiled unit, the same
// protocol golang.org/x/tools/go/analysis/unitchecker speaks.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit analyzes the single compilation unit described by the
// go-vet config at cfgPath, printing findings to out. The returned
// code is the process exit status the protocol expects: 0 clean,
// 1 internal error, 2 findings.
func RunVetUnit(cfgPath string, out io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(out, "replicalint: %v\n", err)
		return 1
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(out, "replicalint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command caches analysis facts in vetx files. This suite
	// propagates no facts, so the output is always empty — but it must
	// exist for the cache entry to complete, and a facts-only request
	// (VetxOnly, for dependencies of the target set) needs nothing else.
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, nil, 0o666)
	}
	if cfg.VetxOnly {
		if err := writeVetx(); err != nil {
			fmt.Fprintf(out, "replicalint: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(out, "replicalint: %v\n", err)
		return 1
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		// ImportMap sends source-level paths to canonical ones (test
		// variants, vendoring); PackageFile locates the export data the
		// go command already built.
		if real, ok := cfg.ImportMap[path]; ok {
			path = real
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, err := typeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintf(out, "replicalint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	findings, err := CheckPackage(fset, files, pkg, info, Suite())
	if err != nil {
		fmt.Fprintf(out, "replicalint: analyzing %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(); err != nil {
		fmt.Fprintf(out, "replicalint: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(out, "%s: %s [%s]\n", fset.Position(f.Pos), f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// typeCheck checks one package's parsed files against an importer,
// tolerating nothing: the tree is expected to compile (tier-1 builds it
// before lint runs).
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{
		Importer: imp,
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
