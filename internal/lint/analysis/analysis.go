// Package analysis is the minimal in-tree analyzer framework behind
// cmd/replicalint. It mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) on the standard library alone, because
// this repository builds hermetically with zero external modules: the
// x/tools multichecker cannot be a dependency, but its driver protocol
// can be reimplemented — cmd/replicalint speaks both the standalone
// `go list -export` route and `go vet -vettool`'s unit-checker config
// protocol over the analyzers defined here.
//
// The framework deliberately has no fact propagation: every analyzer in
// this repository is a single-package syntax+types check. What it adds
// over raw AST walking is shared contract plumbing:
//
//   - allow annotations: a site carrying `//lint:allow <analyzer>
//     <reason>` on its own line or the line above is exempt from that
//     one analyzer. The reason is mandatory — a bare allow is itself
//     reported — so every exemption documents why it is sound.
//   - enum markers: a type declaration carrying `//replicalint:exhaustive`
//     opts its constant set into phaseswitch's exhaustiveness check.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` annotations.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run performs the check. A non-nil error aborts the whole run
	// (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report delivers one finding. The driver applies allow-annotation
	// suppression after this.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf is Info.TypeOf with a nil guard for robustness on partially
// checked trees.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// InTestFile reports whether pos lies in a _test.go file. The contracts
// replicalint enforces bind production code; tests violate them freely
// (differential tests iterate maps of engines, fault injection seeds
// rand, and so on).
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// AllowPrefix introduces a suppression annotation:
// //lint:allow <analyzer> <reason>.
const AllowPrefix = "//lint:allow "

// ExhaustiveMarker on a type declaration opts the type into
// phaseswitch's exhaustiveness contract.
const ExhaustiveMarker = "//replicalint:exhaustive"

// JournalWriterMarker on a function declaration blesses it as the one
// atomic fsync'd checkpoint writer journalfsync admits raw os file
// calls in.
const JournalWriterMarker = "//replicalint:journal-writer"

// An AllowSet indexes every `//lint:allow` annotation of a file set:
// which analyzers are suppressed on which lines, plus the malformed
// annotations (missing reason) that must be reported instead of
// honored.
type AllowSet struct {
	fset *token.FileSet
	// byFile maps filename -> line -> analyzer names allowed there.
	byFile map[string]map[int][]string
	// Malformed annotations: an allow without a reason never
	// suppresses; it surfaces as its own diagnostic so the contract
	// ("every exemption documents why") is machine-checked too.
	Malformed []Diagnostic
}

// NewAllowSet scans the comments of files for allow annotations.
func NewAllowSet(fset *token.FileSet, files []*ast.File) *AllowSet {
	as := &AllowSet{fset: fset, byFile: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Only a comment that IS the annotation counts — prose
				// mentioning the syntax mid-comment does not.
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				rest := strings.TrimSpace(c.Text[len(AllowPrefix):])
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					as.Malformed = append(as.Malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "lint:allow annotation needs an analyzer name and a reason: //lint:allow <analyzer> <why this site is sound>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				lines := as.byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					as.byFile[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], fields[0])
			}
		}
	}
	return as
}

// Allows reports whether analyzer name is suppressed at pos: an
// annotation sits on the same line or the line directly above.
func (as *AllowSet) Allows(name string, pos token.Pos) bool {
	p := as.fset.Position(pos)
	lines := as.byFile[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{p.Line, p.Line - 1} {
		for _, a := range lines[l] {
			if a == name {
				return true
			}
		}
	}
	return false
}

// HasMarker reports whether the declaration's doc comment carries the
// given marker directive.
func HasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// PathMatches reports whether the package import path is one of pkgs or
// lies underneath one of them. An empty pkgs list matches everything —
// the fixture-test configuration.
func PathMatches(path string, pkgs []string) bool {
	if len(pkgs) == 0 {
		return true
	}
	for _, p := range pkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// DeterministicPackages is the byte-identity blast radius: packages
// whose outputs (damage vectors, witnesses, signatures, CLI sections,
// journal bytes) must be reproducible bit for bit at any worker count,
// on any machine. detrange and nodeterm scope to these.
var DeterministicPackages = []string{
	"repro/internal/search",
	"repro/internal/adversary",
	"repro/internal/placement",
	"repro/internal/controller",
	"repro/internal/topology",
}
