package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const allowSrc = `package p

func a() {
	x := 1 //lint:allow detrange keys are sorted upstream
	_ = x
	//lint:allow nodeterm clock only feeds a log line
	y := 2
	z := 3 //lint:allow locksafe
	_, _ = y, z
}
`

func parseOne(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "a.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func lineStart(fset *token.FileSet, f *ast.File, line int) token.Pos {
	return fset.File(f.Pos()).LineStart(line)
}

func TestAllowSet(t *testing.T) {
	fset, f := parseOne(t, allowSrc)
	as := NewAllowSet(fset, []*ast.File{f})

	// Same-line suppression.
	if !as.Allows("detrange", lineStart(fset, f, 4)) {
		t.Errorf("detrange not allowed on its own line")
	}
	// Line-above suppression.
	if !as.Allows("nodeterm", lineStart(fset, f, 7)) {
		t.Errorf("nodeterm not allowed on the line below the annotation")
	}
	// Wrong analyzer name does not suppress.
	if as.Allows("nodeterm", lineStart(fset, f, 4)) {
		t.Errorf("detrange annotation suppressed nodeterm")
	}
	// Lines not adjacent to the annotation are not suppressed.
	if as.Allows("detrange", lineStart(fset, f, 9)) {
		t.Errorf("allow leaked past its line pair")
	}
	// A reason-less allow never suppresses; it is reported instead.
	if as.Allows("locksafe", lineStart(fset, f, 8)) {
		t.Errorf("bare allow (no reason) suppressed a finding")
	}
	if len(as.Malformed) != 1 {
		t.Fatalf("Malformed = %d annotations, want 1", len(as.Malformed))
	}
	if got := fset.Position(as.Malformed[0].Pos).Line; got != 8 {
		t.Errorf("malformed allow reported at line %d, want 8", got)
	}
}

func TestAllowProseMentionIgnored(t *testing.T) {
	// A doc comment that merely *mentions* the syntax mid-prose is
	// neither an annotation nor malformed.
	fset, f := parseOne(t, `package p

// Suppress findings with a comment of the form //lint:allow
// <analyzer> <reason> on the same line.
func a() {}
`)
	as := NewAllowSet(fset, []*ast.File{f})
	if len(as.Malformed) != 0 {
		t.Errorf("prose mention flagged as malformed: %v", as.Malformed)
	}
}
