package nodeterm_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/nodeterm"
)

func TestNodeterm(t *testing.T) {
	linttest.Run(t, nodeterm.New(nodeterm.Config{}), "nodeterm")
}
