package nodeterm

import (
	"math/rand"
	"os"
	"runtime"
	"time"
)

func clocks() int64 {
	t := time.Now() // want `time\.Now is a wall-clock read`
	return t.Unix()
}

func environment() string {
	return os.Getenv("HOME") // want `os\.Getenv is a environment read`
}

func scheduler() int {
	return runtime.GOMAXPROCS(0) // want `runtime\.GOMAXPROCS is a scheduler-dependent value`
}

func globalRand() int {
	return rand.Int() // want `math/rand\.Int reads the global math/rand state`
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // ok: caller-owned, seeded state
	return rng.Intn(10)
}

func pacing() {
	time.Sleep(time.Millisecond) // ok: delays output without entering it
}

func workerDefault(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default; results worker-count invariant
	}
	return workers
}
