// Package nodeterm bans ambient nondeterminism in the core packages:
// wall-clock reads (time.Now / Since / Until), the global math/rand
// state, environment reads (os.Getenv / LookupEnv / Environ), and
// scheduler introspection (runtime.GOMAXPROCS / NumCPU). Exact search
// results, damage vectors and journal bytes must be pure functions of
// their inputs — these are the rules the workflow/resume machinery
// already forced on the search core, now machine-checked.
//
// Deliberate exceptions carry `//lint:allow nodeterm <reason>`: the
// canonical one is a worker-count default (`workers <= 0 selects
// GOMAXPROCS`) in a path whose results are proven worker-count
// invariant. Seeded generators (rand.New(rand.NewSource(seed))) are
// fine — only the global math/rand functions are banned. time.Sleep
// is fine too: backoff pacing delays outputs without entering them.
package nodeterm

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Config scopes the analyzer; empty Packages means all (fixtures).
type Config struct {
	Packages []string
}

// banned maps package path -> function name -> short why.
var banned = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getenv":    "environment read",
		"LookupEnv": "environment read",
		"Environ":   "environment read",
	},
	"runtime": {
		"GOMAXPROCS": "scheduler-dependent value",
		"NumCPU":     "machine-dependent value",
	},
}

// randAllowed are the math/rand package functions that construct
// seeded, caller-owned state instead of reading the shared global.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// New builds the analyzer.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "nodeterm",
		Doc:  "bans wall-clock, global rand, env and GOMAXPROCS reads in deterministic core code",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathMatches(pass.Pkg.Path(), cfg.Packages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are caller-owned state
			}
			path, name := fn.Pkg().Path(), fn.Name()
			switch path {
			case "math/rand", "math/rand/v2":
				if !randAllowed[name] {
					pass.Reportf(sel.Pos(), "%s.%s reads the global math/rand state; seed a local rand.New(rand.NewSource(seed)) instead, or annotate with %snodeterm <reason>",
						path, name, analysis.AllowPrefix[2:])
				}
			default:
				if why, ok := banned[path][name]; ok {
					pass.Reportf(sel.Pos(), "%s.%s is a %s; deterministic core code must take it as an input, or annotate with %snodeterm <reason>",
						path, name, why, analysis.AllowPrefix[2:])
				}
			}
			return true
		})
	}
	return nil
}
