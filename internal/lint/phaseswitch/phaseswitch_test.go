package phaseswitch_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/phaseswitch"
)

func TestPhaseswitch(t *testing.T) {
	linttest.Run(t, phaseswitch.New(phaseswitch.Config{}), "phaseswitch")
}
