package phaseswitch

// Phase is a journaled move phase.
//
//replicalint:exhaustive
type Phase string

const (
	PhaseIntent   Phase = "intent"
	PhasePrepared Phase = "prepared"
	PhaseAdded    Phase = "added"
)

func exhaustive(p Phase) string {
	switch p { // ok: every constant named
	case PhaseIntent:
		return "i"
	case PhasePrepared:
		return "p"
	case PhaseAdded:
		return "a"
	}
	return "?"
}

func missingOne(p Phase) string {
	switch p { // want `switch over Phase misses PhaseAdded`
	case PhaseIntent:
		return "i"
	case PhasePrepared:
		return "p"
	default:
		return "?" // a default does not excuse the missing case
	}
}

func missingTwo(p Phase) bool {
	switch p { // want `switch over Phase misses PhaseAdded, PhasePrepared`
	case PhaseIntent:
		return true
	}
	return false
}

func multiCase(p Phase) bool {
	switch p { // ok: grouped cases cover everything
	case PhaseIntent, PhasePrepared:
		return false
	case PhaseAdded:
		return true
	}
	return false
}

func annotated(p Phase) bool {
	switch p { //lint:allow phaseswitch only the terminal phase matters here
	case PhaseAdded:
		return true
	}
	return false
}

type unmarked int

const (
	u0 unmarked = iota
	u1
)

func unmarkedType(u unmarked) bool {
	switch u { // ok: type not marked exhaustive
	case u0:
		return true
	}
	return false
}
