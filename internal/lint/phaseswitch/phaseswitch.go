// Package phaseswitch enforces exhaustive switches over the marked
// state-machine enums — the controller's move phases, outcomes, move
// results, node statuses and mutation kinds. Adding a phase to the
// two-phase machine must break `make lint`, not crash recovery: a
// switch over a marked enum must name every declared constant of the
// type. A default clause is allowed (defensive handling of corrupt
// journals) but does not excuse a missing named case.
//
// Types opt in two ways:
//
//   - `//replicalint:exhaustive` on the type declaration (checked for
//     switches in the declaring package), or
//   - Config.Types, fully qualified ("pkg/path.Name"), which also
//     covers switches in importing packages (where only the exported
//     constants are visible and required).
package phaseswitch

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Config lists additionally enforced enum types as "pkg/path.Name".
type Config struct {
	Types []string
}

// DefaultTypes is the production configuration: the controller's
// journaled state-machine enums, enforced even from importing packages.
var DefaultTypes = []string{
	"repro/internal/controller.Phase",
	"repro/internal/controller.Outcome",
	"repro/internal/controller.MoveResult",
	"repro/internal/controller.NodeStatus",
	"repro/internal/controller.MutationKind",
}

// New builds the analyzer.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "phaseswitch",
		Doc:  "switches over marked state-machine enums must cover every declared constant",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

type enumInfo struct {
	name   *types.TypeName
	consts []*types.Const // declared constants of the type, declaration order
}

func run(pass *analysis.Pass, cfg Config) error {
	enums := collectEnums(pass, cfg)
	if len(enums) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := pass.TypeOf(sw.Tag)
			if t == nil {
				return true
			}
			named, ok := types.Unalias(t).(*types.Named)
			if !ok {
				return true
			}
			info, ok := enums[named.Obj()]
			if !ok {
				return true
			}
			checkSwitch(pass, sw, info)
			return true
		})
	}
	return nil
}

// collectEnums finds the enforced enum types visible to this package:
// marker-carrying declarations in the package itself, plus the
// configured fully-qualified list resolved through the import graph.
func collectEnums(pass *analysis.Pass, cfg Config) map[*types.TypeName]enumInfo {
	enums := make(map[*types.TypeName]enumInfo)

	addConsts := func(tn *types.TypeName, scope *types.Scope) {
		target := types.Unalias(tn.Type())
		var cs []*types.Const
		names := scope.Names() // sorted: deterministic report order
		for _, nm := range names {
			c, ok := scope.Lookup(nm).(*types.Const)
			if !ok {
				continue
			}
			if types.Identical(types.Unalias(c.Type()), target) {
				cs = append(cs, c)
			}
		}
		if len(cs) > 0 {
			enums[tn] = enumInfo{name: tn, consts: cs}
		}
	}

	// Marker-carrying declarations in the analyzed package.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !analysis.HasMarker(gd.Doc, analysis.ExhaustiveMarker) &&
					!analysis.HasMarker(ts.Doc, analysis.ExhaustiveMarker) {
					continue
				}
				tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				addConsts(tn, pass.Pkg.Scope())
			}
		}
	}

	// Configured types, resolved in this package or its imports.
	for _, full := range cfg.Types {
		dot := strings.LastIndex(full, ".")
		if dot < 0 {
			continue
		}
		path, name := full[:dot], full[dot+1:]
		var p *types.Package
		if pass.Pkg.Path() == path {
			p = pass.Pkg
		} else {
			for _, imp := range pass.Pkg.Imports() {
				if imp.Path() == path {
					p = imp
					break
				}
			}
		}
		if p == nil {
			continue
		}
		tn, ok := p.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if _, dup := enums[tn]; !dup {
			addConsts(tn, p.Scope())
		}
	}
	return enums
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, info enumInfo) {
	covered := make([]bool, len(info.consts))
	for _, st := range sw.Body.List {
		cc, ok := st.(*ast.CaseClause)
		if !ok || cc.List == nil {
			continue // default clause
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				continue
			}
			for i, c := range info.consts {
				if !covered[i] && constant.Compare(tv.Value, token.EQL, c.Val()) {
					covered[i] = true
				}
			}
		}
	}
	var missing []string
	for i, c := range info.consts {
		if !covered[i] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Switch, "switch over %s misses %s; the %s enum is marked exhaustive — handle every value (a default clause does not excuse named cases)",
		info.name.Name(), strings.Join(missing, ", "), info.name.Name())
}
