package detrange

import "sort"

func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: commutative integer accumulation
		total += v
	}
	return total
}

func firstPositive(m map[string]int) int {
	for k, v := range m { // want "range over map m: iteration order is randomized"
		if v > 0 {
			return len(k) // picks a random element
		}
	}
	return 0
}

func sortedIdiom(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: keys sorted before any other use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "range over map m: iteration order is randomized"
		keys = append(keys, k)
	}
	return keys // random order escapes
}

func maxValue(m map[string]int) int {
	best := 0
	for _, v := range m { // ok: extremum accumulation
		if v > best {
			best = v
		}
	}
	return best
}

func keyedWrite(m map[string]int, out map[string]bool) {
	for k := range m { // ok: writes indexed by the loop key never collide
		out[k] = true
	}
}

func pruned(m map[string]int) {
	for k, v := range m { // ok: delete and continue commute
		if v == 0 {
			delete(m, k)
			continue
		}
	}
}

func annotated(m map[string]int) {
	for k := range m { //lint:allow detrange human-facing debug print, order irrelevant
		println(k)
	}
}

func printed(m map[string]int) {
	for k := range m { // want "range over map m: iteration order is randomized"
		println(k) // calls observe the random order
	}
}
