// Package detrange flags `range` over maps in the deterministic
// packages. Go randomizes map iteration order per run, so any map
// range whose iteration order can reach a returned slice, a damage
// vector, a signature, CLI output, or journal bytes silently breaks
// the byte-identity contract the adversary core and the reconcile
// controller are proven against.
//
// A map range is admitted without annotation only when its body is
// provably order-independent:
//
//   - integer accumulation (x++, x--, x += e, x |= e, x &= e, x ^= e),
//   - delete(m, k),
//   - map writes indexed by the loop key (distinct keys, so no
//     last-write-wins races with order), or any map write whose value
//     is a constant literal (duplicates write the same bytes),
//   - continue, and if/else whose condition is call-free and whose
//     branches recursively qualify,
//   - extremum accumulation: `if v > acc { acc = v }` (and <, >=, <=),
//   - the sorted-keys idiom: a body that only appends the key to a
//     slice which the enclosing block sorts (sort.* / slices.Sort*)
//     before any other use.
//
// Everything else needs `//lint:allow detrange <reason>` — break or
// return select the first element in random order, plain assignments
// under a condition encode order-dependent tie-breaks, and function
// calls can observe the iteration (printing, appending).
package detrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Config scopes the analyzer. Packages empty means every package — the
// fixture-test configuration; the production driver passes
// analysis.DeterministicPackages.
type Config struct {
	Packages []string
}

// New builds the analyzer.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "detrange",
		Doc:  "flags map iteration whose order can leak into deterministic outputs",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathMatches(pass.Pkg.Path(), cfg.Packages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			// Scan every statement-list container so a following
			// sort call is visible to the sorted-keys idiom check.
			var list []ast.Stmt
			switch s := n.(type) {
			case *ast.BlockStmt:
				list = s.List
			case *ast.CaseClause:
				list = s.Body
			case *ast.CommClause:
				list = s.Body
			case *ast.LabeledStmt:
				if rs, ok := s.Stmt.(*ast.RangeStmt); ok {
					checkRange(pass, rs, nil)
				}
				return true
			default:
				return true
			}
			for i, st := range list {
				if rs, ok := st.(*ast.RangeStmt); ok {
					checkRange(pass, rs, list[i+1:])
				}
			}
			return true
		})
	}
	return nil
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	key := identOf(rs.Key)
	if ok, _ := orderIndependent(pass, rs.Body.List, key); ok {
		return
	}
	if target := sortedAppendTarget(rs, key); target != "" && sortedBefore(pass, target, rest) {
		return
	}
	pass.Reportf(rs.For, "range over map %s: iteration order is randomized and the body is not provably order-independent; iterate sorted keys or annotate with %sdetrange <reason>",
		types.ExprString(rs.X), analysis.AllowPrefix[2:])
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

// orderIndependent reports whether every statement commutes across
// iterations. The second result is unused padding for symmetry with
// recursive calls that may want detail later.
func orderIndependent(pass *analysis.Pass, stmts []ast.Stmt, key *ast.Ident) (bool, ast.Stmt) {
	for _, st := range stmts {
		if !stmtOK(pass, st, key) {
			return false, st
		}
	}
	return true, nil
}

func stmtOK(pass *analysis.Pass, st ast.Stmt, key *ast.Ident) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return isInteger(pass.TypeOf(s.X))
	case *ast.AssignStmt:
		return assignOK(pass, s, key)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		return isBuiltin(pass, call.Fun, "delete")
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	case *ast.IfStmt:
		if minMaxAccum(pass, s) {
			return true
		}
		if s.Init != nil && !stmtOK(pass, s.Init, key) {
			return false
		}
		if hasCall(pass, s.Cond) {
			return false
		}
		if ok, _ := orderIndependent(pass, s.Body.List, key); !ok {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			ok, _ := orderIndependent(pass, e.List, key)
			return ok
		case *ast.IfStmt:
			return stmtOK(pass, e, key)
		}
		return false
	case *ast.DeclStmt:
		// Local declarations with call-free initializers are private to
		// the iteration.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				return false
			}
			for _, v := range vs.Values {
				if hasCall(pass, v) {
					return false
				}
			}
		}
		return true
	}
	return false
}

func assignOK(pass *analysis.Pass, s *ast.AssignStmt, key *ast.Ident) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative-associative integer accumulation. (SUB against a
		// single accumulator commutes too: the sum of deltas is
		// order-free. Floats are excluded — their addition does not
		// associate.)
		return len(s.Lhs) == 1 && isInteger(pass.TypeOf(s.Lhs[0])) && !hasCall(pass, s.Rhs[0])
	case token.ASSIGN, token.DEFINE:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 || hasCall(pass, s.Rhs[0]) {
			return false
		}
		ix, ok := s.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		if _, isMap := typeUnderlying(pass.TypeOf(ix.X)).(*types.Map); !isMap {
			return false
		}
		// m2[k] = ... with k the loop key: keys are distinct per
		// iteration, so writes never collide.
		if keyIx, ok := ix.Index.(*ast.Ident); ok && key != nil && keyIx.Obj == key.Obj {
			return true
		}
		// m2[anything] = <constant literal>: colliding writes store
		// identical bytes.
		return isConstLiteral(s.Rhs[0])
	}
	return false
}

// minMaxAccum recognizes extremum accumulation:
//
//	if v > acc { acc = v }     (any of > < >= <=, either operand order)
//
// The final value is the max/min over all iterations no matter the
// visit order, so the pattern commutes. The condition's operands must
// be exactly the assignment's two sides and call-free — side effects
// would reintroduce order sensitivity.
func minMaxAccum(pass *analysis.Pass, s *ast.IfStmt) bool {
	if s.Init != nil || s.Else != nil || len(s.Body.List) != 1 {
		return false
	}
	cond, ok := s.Cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case token.GTR, token.LSS, token.GEQ, token.LEQ:
	default:
		return false
	}
	as, ok := s.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	if hasCall(pass, as.Lhs[0]) || hasCall(pass, as.Rhs[0]) {
		return false
	}
	l, r := types.ExprString(as.Lhs[0]), types.ExprString(as.Rhs[0])
	x, y := types.ExprString(cond.X), types.ExprString(cond.Y)
	return (l == x && r == y) || (l == y && r == x)
}

// sortedAppendTarget recognizes the body `dst = append(dst, k)` (or
// the value variable) and returns dst's name, else "".
func sortedAppendTarget(rs *ast.RangeStmt, key *ast.Ident) string {
	if len(rs.Body.List) != 1 {
		return ""
	}
	s, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || s.Tok != token.ASSIGN || len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return ""
	}
	dst, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return ""
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return ""
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return ""
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || arg0.Name != dst.Name {
		return ""
	}
	return dst.Name
}

// sortedBefore reports whether, among the statements following the
// range in its enclosing block, the first mention of name is a
// sort.*/slices.Sort* call with name as the first argument.
func sortedBefore(pass *analysis.Pass, name string, rest []ast.Stmt) bool {
	for _, st := range rest {
		if !mentions(st, name) {
			continue
		}
		es, ok := st.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return false
		}
		arg0, ok := call.Args[0].(*ast.Ident)
		return ok && arg0.Name == name
	}
	return false
}

func mentions(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

func hasCall(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		// len/cap and conversions are pure.
		if isBuiltin(pass, call.Fun, "len") || isBuiltin(pass, call.Fun, "cap") {
			return true
		}
		if t := pass.TypeOf(call.Fun); t != nil {
			if _, isSig := t.Underlying().(*types.Signature); !isSig {
				return true // type conversion
			}
		}
		found = true
		return false
	})
	return found
}

func isBuiltin(pass *analysis.Pass, fn ast.Expr, name string) bool {
	id, ok := fn.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	if pass.Info == nil {
		return true
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isInteger(t types.Type) bool {
	b, ok := typeUnderlying(t).(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func typeUnderlying(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isConstLiteral(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		return v.Name == "true" || v.Name == "false"
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if !isConstLiteral(el) {
				return false
			}
		}
		return true
	}
	return false
}
