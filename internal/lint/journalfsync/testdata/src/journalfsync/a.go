package journalfsync

import (
	"os"
	"path/filepath"
)

// writeFileSync is the blessed atomic writer: raw os mutation is its
// implementation, not a bypass.
//
//replicalint:journal-writer
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "tmp-*") // ok: inside the blessed writer
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path) // ok: inside the blessed writer
}

func saveRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os\.WriteFile bypasses the atomic fsync'd journal writer`
}

func createRaw(path string) error {
	f, err := os.Create(path) // want `os\.Create bypasses the atomic fsync'd journal writer`
	if err != nil {
		return err
	}
	return f.Close()
}

func load(path string) ([]byte, error) {
	return os.ReadFile(path) // ok: reads are unrestricted
}

func annotated(path string) error {
	f, err := os.Create(path) //lint:allow journalfsync scratch trace dump, not checkpoint state
	if err != nil {
		return err
	}
	return f.Close()
}
