package journalfsync_test

import (
	"testing"

	"repro/internal/lint/journalfsync"
	"repro/internal/lint/linttest"
)

func TestJournalfsync(t *testing.T) {
	linttest.Run(t, journalfsync.New(journalfsync.Config{}), "journalfsync")
}
