// Package journalfsync guards the controller's crash-safety spine:
// every write to checkpoint state must flow through the one atomic
// fsync'd writer (temp file + fsync + rename + directory fsync). A raw
// os.WriteFile / os.Create / os.OpenFile / os.Rename on journal state
// can tear on crash — exactly the window the two-phase move machine's
// recovery proof assumes away.
//
// The blessed writer carries `//replicalint:journal-writer` on its
// declaration; inside it the raw calls are the implementation. Anywhere
// else in the scoped package they are findings, unless the site carries
// `//lint:allow journalfsync <reason>`. Reads (os.ReadFile, os.Open)
// are unrestricted.
package journalfsync

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Config scopes the analyzer; empty Packages means all (fixtures).
type Config struct {
	Packages []string
}

// DefaultPackages is the production scope: the journaling controller.
var DefaultPackages = []string{"repro/internal/controller"}

// bannedOS are the file-mutating os functions that can tear a
// checkpoint when used directly.
var bannedOS = map[string]bool{
	"WriteFile":  true,
	"Create":     true,
	"OpenFile":   true,
	"CreateTemp": true,
	"Rename":     true,
	"Truncate":   true,
	"NewFile":    true,
}

// New builds the analyzer.
func New(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "journalfsync",
		Doc:  "checkpoint writes must flow through the atomic fsync'd journal writer",
		Run: func(pass *analysis.Pass) error {
			return run(pass, cfg)
		},
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if !analysis.PathMatches(pass.Pkg.Path(), cfg.Packages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if analysis.HasMarker(fd.Doc, analysis.JournalWriterMarker) {
				continue // the blessed atomic writer
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
					return true
				}
				if bannedOS[fn.Name()] {
					pass.Reportf(call.Pos(), "os.%s bypasses the atomic fsync'd journal writer; route checkpoint writes through the %s function, or annotate with %sjournalfsync <reason>",
						fn.Name(), analysis.JournalWriterMarker[2:], analysis.AllowPrefix[2:])
				}
				return true
			})
		}
	}
	return nil
}
