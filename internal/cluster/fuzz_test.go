package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// model is an independent, trivially-correct reference for the cluster's
// availability reporting: it tracks object replica sets and failed nodes
// in plain maps.
type model struct {
	s       int
	objects map[string][]int
	failed  map[int]bool
}

func (m *model) available() int {
	count := 0
	for _, nodes := range m.objects {
		failedReplicas := 0
		for _, nd := range nodes {
			if m.failed[nd] {
				failedReplicas++
			}
		}
		if failedReplicas < m.s {
			count++
		}
	}
	return count
}

// TestClusterRandomOpsAgainstModel drives random operation sequences
// against both the cluster and the reference model and cross-checks the
// availability report after every step.
func TestClusterRandomOpsAgainstModel(t *testing.T) {
	for _, strategy := range []Strategy{StrategyCombo, StrategyRandom} {
		strategy := strategy
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			cfg := Config{
				Nodes:             13,
				Replicas:          3,
				FatalityThreshold: 1 + rng.Intn(3),
				PlannedFailures:   3,
				ExpectedObjects:   10,
				Strategy:          strategy,
				Seed:              seed,
			}
			if cfg.PlannedFailures < cfg.FatalityThreshold {
				cfg.PlannedFailures = cfg.FatalityThreshold
			}
			c, err := New(cfg)
			if err != nil {
				t.Logf("New: %v", err)
				return false
			}
			m := &model{s: cfg.FatalityThreshold,
				objects: make(map[string][]int), failed: make(map[int]bool)}
			next := 0
			var live []string
			for op := 0; op < 60; op++ {
				switch choice := rng.Intn(10); {
				case choice < 4: // add
					id := fmt.Sprintf("o%d", next)
					next++
					if err := c.AddObject(id); err != nil {
						t.Logf("AddObject: %v", err)
						return false
					}
					pl, ids, err := c.Snapshot()
					if err != nil {
						return false
					}
					// Locate the new object's replica set.
					for i, sid := range ids {
						if sid == id {
							m.objects[id] = pl.ReplicaNodes(i)
						}
					}
					live = append(live, id)
				case choice < 6 && len(live) > 0: // remove
					i := rng.Intn(len(live))
					id := live[i]
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := c.RemoveObject(id); err != nil {
						t.Logf("RemoveObject: %v", err)
						return false
					}
					delete(m.objects, id)
				case choice < 8: // fail a node
					nd := rng.Intn(cfg.Nodes)
					if err := c.FailNode(nd); err != nil {
						return false
					}
					m.failed[nd] = true
				default: // restore a node
					nd := rng.Intn(cfg.Nodes)
					if err := c.RestoreNode(nd); err != nil {
						return false
					}
					delete(m.failed, nd)
				}
				st := c.Report()
				if st.Objects != len(m.objects) {
					t.Logf("objects: cluster %d, model %d", st.Objects, len(m.objects))
					return false
				}
				if st.AvailableObjects != m.available() {
					t.Logf("available: cluster %d, model %d", st.AvailableObjects, m.available())
					return false
				}
				if st.AvailableObjects+st.FailedObjects != st.Objects {
					t.Log("report does not partition objects")
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
			t.Errorf("strategy %v: %v", strategy, err)
		}
	}
}
