package cluster

import (
	"fmt"
	"testing"
)

func comboConfig() Config {
	return Config{
		Nodes:             13,
		Replicas:          3,
		FatalityThreshold: 2,
		PlannedFailures:   3,
		ExpectedObjects:   20,
		Strategy:          StrategyCombo,
		Seed:              1,
	}
}

func TestClusterAddRemoveLifecycle(t *testing.T) {
	c, err := New(comboConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.AddObject(fmt.Sprintf("obj-%d", i)); err != nil {
			t.Fatalf("AddObject(%d): %v", i, err)
		}
	}
	if err := c.AddObject("obj-3"); err == nil {
		t.Error("duplicate id accepted")
	}
	st := c.Report()
	if st.Objects != 20 || st.AvailableObjects != 20 || st.FailedObjects != 0 {
		t.Errorf("Report = %+v", st)
	}
	if err := c.RemoveObject("obj-3"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveObject("obj-3"); err == nil {
		t.Error("double remove accepted")
	}
	if got := c.Report().Objects; got != 19 {
		t.Errorf("Objects = %d, want 19", got)
	}
	// The freed replica set must be reusable.
	if err := c.AddObject("obj-3b"); err != nil {
		t.Fatal(err)
	}
}

func TestClusterFailureSemantics(t *testing.T) {
	c, err := New(comboConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddObject("a"); err != nil {
		t.Fatal(err)
	}
	pl, ids, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "a" {
		t.Fatalf("Snapshot ids = %v", ids)
	}
	replicas := pl.ReplicaNodes(0)

	// Fail s-1 replicas: object stays available.
	if err := c.FailNode(replicas[0]); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.ObjectAvailable("a"); err != nil || !ok {
		t.Errorf("object should survive 1 replica failure (s=2): ok=%v err=%v", ok, err)
	}
	// Fail the s-th replica: object fails.
	if err := c.FailNode(replicas[1]); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.ObjectAvailable("a"); ok {
		t.Error("object should fail at s=2 failed replicas")
	}
	st := c.Report()
	if st.FailedObjects != 1 || st.AvailableObjects != 0 {
		t.Errorf("Report = %+v", st)
	}
	// Restore: object revives.
	if err := c.RestoreNode(replicas[0]); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.ObjectAvailable("a"); !ok {
		t.Error("object should revive after restore")
	}
	// Unknown object and out-of-range nodes error.
	if _, err := c.ObjectAvailable("zzz"); err == nil {
		t.Error("unknown object accepted")
	}
	if err := c.FailNode(-1); err == nil {
		t.Error("negative node accepted")
	}
	if err := c.RestoreNode(99); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestClusterGrowsBeyondPlan(t *testing.T) {
	cfg := comboConfig()
	cfg.ExpectedObjects = 5
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Admit 4x the planned objects; λ growth must kick in.
	for i := 0; i < 20; i++ {
		if err := c.AddObject(fmt.Sprintf("o%d", i)); err != nil {
			t.Fatalf("AddObject(%d): %v", i, err)
		}
	}
	st := c.Report()
	if st.Objects != 20 {
		t.Fatalf("Objects = %d, want 20", st.Objects)
	}
	total := 0
	for _, l := range st.Lambdas {
		total += l
	}
	if total == 0 {
		t.Error("λ never grew despite exceeding planned capacity")
	}
}

func TestClusterRandomStrategy(t *testing.T) {
	cfg := comboConfig()
	cfg.Strategy = StrategyRandom
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.AddObject(fmt.Sprintf("o%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Report()
	if st.Objects != 20 {
		t.Fatalf("Objects = %d", st.Objects)
	}
	// Load stays within the (possibly organically grown) cap; with the
	// planned b=20, r=3, n=13 the cap is ceil(60/13) = 5.
	if st.MaxLoad > 6 {
		t.Errorf("MaxLoad = %d, suspiciously above cap", st.MaxLoad)
	}
	if st.Lambdas != nil {
		t.Error("Random strategy should not report lambdas")
	}
}

func TestClusterWorstCase(t *testing.T) {
	c, err := New(comboConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Empty cluster: nothing to fail.
	res, err := c.WorstCase(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Errorf("empty cluster worst case = %d", res.Failed)
	}
	for i := 0; i < 15; i++ {
		if err := c.AddObject(fmt.Sprintf("o%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err = c.WorstCase(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("small instance should be exact")
	}
	if res.Failed < 1 || res.Failed > 15 {
		t.Errorf("worst case = %d out of range", res.Failed)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	bad := comboConfig()
	bad.Strategy = 0
	if _, err := New(bad); err == nil {
		t.Error("unknown strategy accepted")
	}
	bad = comboConfig()
	bad.Replicas = 99
	if _, err := New(bad); err == nil {
		t.Error("r > n accepted")
	}
}

func TestClusterComboBeatsRandomWorstCase(t *testing.T) {
	// The paper's headline: for suitable parameters, Combo's worst case
	// preserves at least as many objects as Random's. Run both at the
	// same size and compare exactly.
	mk := func(strategy Strategy) int {
		cfg := comboConfig()
		cfg.Strategy = strategy
		cfg.ExpectedObjects = 26
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 26; i++ {
			if err := c.AddObject(fmt.Sprintf("o%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := c.WorstCase(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Failed
	}
	comboFailed := mk(StrategyCombo)
	randomFailed := mk(StrategyRandom)
	if comboFailed > randomFailed {
		t.Errorf("Combo worst case fails %d > Random %d objects at n=13 b=26 (paper expects Combo <= Random here)",
			comboFailed, randomFailed)
	}
}
