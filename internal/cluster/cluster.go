// Package cluster provides a small storage-cluster simulation built on the
// placement library: named objects are admitted to (and removed from) a
// set of nodes, replica sets are assigned by a placement strategy, node
// failures are injected, and availability is reported — the control-plane
// shape a downstream system (VM scheduler, file system master) would embed.
//
// Two strategies are offered: Combo (the paper's contribution) and Random
// (load-balanced, the baseline). The Combo strategy also implements the
// adaptation the paper leaves as future work: when its pre-planned
// capacity is exhausted, it grows the λ_x that costs the least worst-case
// availability per unit of new capacity, and freed replica sets are
// recycled for later admissions.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/adversary"
	"repro/internal/combin"
	"repro/internal/placement"
)

// Strategy selects the placement policy for a cluster.
type Strategy int

const (
	// StrategyCombo places objects using Simple(x, λ_x) packings chosen by
	// the paper's dynamic program.
	StrategyCombo Strategy = iota + 1
	// StrategyRandom places objects uniformly at random subject to the
	// load cap ℓ = ceil(r·b/n) over the expected object count.
	StrategyRandom
)

// Config configures a Cluster.
type Config struct {
	Nodes             int      // n
	Replicas          int      // r
	FatalityThreshold int      // s: replica failures that fail an object
	PlannedFailures   int      // k: failures the placement is optimized for
	ExpectedObjects   int      // initial capacity plan (may grow)
	Strategy          Strategy // placement policy
	Seed              int64    // randomness for Random strategy and greedy packings
	AllowGreedy       bool     // permit greedy packings for unconstructible orders
}

func (c Config) validate() error {
	p := placement.Params{N: c.Nodes, B: c.ExpectedObjects, R: c.Replicas,
		S: c.FatalityThreshold, K: c.PlannedFailures}
	if err := p.Validate(); err != nil {
		return err
	}
	if c.Strategy != StrategyCombo && c.Strategy != StrategyRandom {
		return fmt.Errorf("cluster: unknown strategy %d", c.Strategy)
	}
	return nil
}

// assignment records where one object's replicas live.
type assignment struct {
	x     int // the Simple(x, ·) pool the block came from; -1 for Random
	nodes []int
}

// Cluster is a simulated cluster. It is not safe for concurrent use; wrap
// it with external synchronization if shared.
type Cluster struct {
	cfg     Config
	rng     *rand.Rand
	objects map[string]assignment
	failed  map[int]bool
	loads   []int

	// Combo strategy state.
	units   []placement.Unit
	lambdas []int     // current λ_x
	pools   [][][]int // free replica sets per x
	specErr error

	// Random strategy state.
	loadCap int
}

// New builds a cluster and, for the Combo strategy, plans the initial
// ⟨λx⟩ for the expected object count using the paper's DP.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		objects: make(map[string]assignment),
		failed:  make(map[int]bool),
		loads:   make([]int, cfg.Nodes),
	}
	switch cfg.Strategy {
	case StrategyCombo:
		units, err := placement.DefaultUnits(cfg.Nodes, cfg.Replicas, cfg.FatalityThreshold, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: planning units: %w", err)
		}
		c.units = units
		spec, _, err := placement.OptimizeCombo(cfg.ExpectedObjects, cfg.PlannedFailures,
			cfg.FatalityThreshold, units)
		if err != nil {
			return nil, fmt.Errorf("cluster: optimizing λ: %w", err)
		}
		c.lambdas = make([]int, len(spec.Lambdas))
		c.pools = make([][][]int, len(spec.Lambdas))
		for x, lambda := range spec.Lambdas {
			if lambda > 0 {
				if err := c.growPool(x, lambda); err != nil {
					return nil, err
				}
			}
		}
	case StrategyRandom:
		c.loadCap = placement.Params{N: cfg.Nodes, B: cfg.ExpectedObjects,
			R: cfg.Replicas, S: cfg.FatalityThreshold, K: cfg.PlannedFailures}.Load()
		if c.loadCap < cfg.Replicas {
			c.loadCap = cfg.Replicas
		}
	}
	return c, nil
}

// growPool raises λ_x to the given value, materializing the new replica
// sets (deltaλ/μ fresh copies of the base packing) into the free pool.
func (c *Cluster) growPool(x, newLambda int) error {
	delta := newLambda - c.lambdas[x]
	if delta <= 0 {
		return nil
	}
	u := c.units[x]
	count := int64(delta/u.Mu) * u.CapPerMu
	sub, err := placement.BuildSimple(c.cfg.Nodes, c.cfg.Replicas, x, delta, int(count),
		placement.SimpleOptions{AllowGreedy: c.cfg.AllowGreedy, Seed: c.cfg.Seed})
	if err != nil {
		return fmt.Errorf("cluster: growing Simple(%d) pool to λ=%d: %w", x, newLambda, err)
	}
	for obj := 0; obj < sub.B(); obj++ {
		c.pools[x] = append(c.pools[x], sub.ReplicaNodes(obj))
	}
	c.lambdas[x] = newLambda
	return nil
}

// AddObject admits a named object and assigns it a replica set.
func (c *Cluster) AddObject(id string) error {
	if _, exists := c.objects[id]; exists {
		return fmt.Errorf("cluster: object %q already placed", id)
	}
	var a assignment
	switch c.cfg.Strategy {
	case StrategyCombo:
		x, err := c.poolWithCapacity()
		if err != nil {
			return err
		}
		pool := c.pools[x]
		a = assignment{x: x, nodes: pool[len(pool)-1]}
		c.pools[x] = pool[:len(pool)-1]
	case StrategyRandom:
		nodes, err := c.randomNodes()
		if err != nil {
			return err
		}
		a = assignment{x: -1, nodes: nodes}
	}
	c.objects[id] = a
	for _, nd := range a.nodes {
		c.loads[nd]++
	}
	return nil
}

// poolWithCapacity returns an x with free replica sets, growing the
// cheapest pool when all are empty (the future-work adaptation): the pool
// whose λ growth costs the fewest additional worst-case failures per new
// object of capacity.
func (c *Cluster) poolWithCapacity() (int, error) {
	// Prefer the largest x with spare sets: the DP fills from high x down.
	for x := len(c.pools) - 1; x >= 0; x-- {
		if len(c.pools[x]) > 0 {
			return x, nil
		}
	}
	bestX := -1
	bestCost := 0.0
	s := c.cfg.FatalityThreshold
	k := c.cfg.PlannedFailures
	for x, u := range c.units {
		t := x + 1
		den := combin.Choose(s, t)
		if den == 0 {
			continue
		}
		oldFail := combin.FloorDiv(int64(c.lambdas[x])*combin.Choose(k, t), den)
		newFail := combin.FloorDiv(int64(c.lambdas[x]+u.Mu)*combin.Choose(k, t), den)
		cost := float64(newFail-oldFail) / float64(u.CapPerMu)
		if bestX == -1 || cost < bestCost {
			bestX = x
			bestCost = cost
		}
	}
	if bestX < 0 {
		return 0, fmt.Errorf("cluster: no pool can grow")
	}
	if err := c.growPool(bestX, c.lambdas[bestX]+c.units[bestX].Mu); err != nil {
		return 0, err
	}
	return bestX, nil
}

// randomNodes samples r distinct nodes under the load cap, growing the
// cap when the cluster outgrows its expected size.
func (c *Cluster) randomNodes() ([]int, error) {
	for attempt := 0; attempt < 3; attempt++ {
		var available []int
		for nd := 0; nd < c.cfg.Nodes; nd++ {
			if c.loads[nd] < c.loadCap {
				available = append(available, nd)
			}
		}
		if len(available) < c.cfg.Replicas {
			c.loadCap++ // organic growth beyond the planned b
			continue
		}
		nodes := make([]int, c.cfg.Replicas)
		for i := 0; i < c.cfg.Replicas; i++ {
			j := i + c.rng.Intn(len(available)-i)
			available[i], available[j] = available[j], available[i]
			nodes[i] = available[i]
		}
		sort.Ints(nodes)
		return nodes, nil
	}
	return nil, fmt.Errorf("cluster: cannot find %d nodes under load cap", c.cfg.Replicas)
}

// RemoveObject releases an object; Combo replica sets return to their
// pool for reuse.
func (c *Cluster) RemoveObject(id string) error {
	a, ok := c.objects[id]
	if !ok {
		return fmt.Errorf("cluster: object %q not placed", id)
	}
	delete(c.objects, id)
	for _, nd := range a.nodes {
		c.loads[nd]--
	}
	if a.x >= 0 {
		c.pools[a.x] = append(c.pools[a.x], a.nodes)
	}
	return nil
}

// FailNode marks a node failed. Failing an already-failed node is a no-op.
func (c *Cluster) FailNode(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: node %d out of range", node)
	}
	c.failed[node] = true
	return nil
}

// RestoreNode clears a node's failure.
func (c *Cluster) RestoreNode(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: node %d out of range", node)
	}
	delete(c.failed, node)
	return nil
}

// ObjectAvailable reports whether the object survives the current
// failures (fewer than s of its replicas are on failed nodes).
func (c *Cluster) ObjectAvailable(id string) (bool, error) {
	a, ok := c.objects[id]
	if !ok {
		return false, fmt.Errorf("cluster: object %q not placed", id)
	}
	return c.countFailedReplicas(a) < c.cfg.FatalityThreshold, nil
}

func (c *Cluster) countFailedReplicas(a assignment) int {
	failedReplicas := 0
	for _, nd := range a.nodes {
		if c.failed[nd] {
			failedReplicas++
		}
	}
	return failedReplicas
}

// Status is a cluster health report.
type Status struct {
	Objects          int
	FailedNodes      int
	AvailableObjects int
	FailedObjects    int
	MaxLoad          int
	Lambdas          []int // Combo only: current ⟨λx⟩
}

// Report summarizes the cluster under the current failure set.
func (c *Cluster) Report() Status {
	st := Status{Objects: len(c.objects), FailedNodes: len(c.failed)}
	for _, a := range c.objects {
		if c.countFailedReplicas(a) < c.cfg.FatalityThreshold {
			st.AvailableObjects++
		} else {
			st.FailedObjects++
		}
	}
	for _, l := range c.loads {
		if l > st.MaxLoad {
			st.MaxLoad = l
		}
	}
	if c.cfg.Strategy == StrategyCombo {
		st.Lambdas = append(st.Lambdas, c.lambdas...)
	}
	return st
}

// Snapshot exports the current objects as a placement.Placement (object
// order is deterministic: sorted by id) for analysis tools.
func (c *Cluster) Snapshot() (*placement.Placement, []string, error) {
	ids := make([]string, 0, len(c.objects))
	for id := range c.objects {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	pl := placement.NewPlacement(c.cfg.Nodes, c.cfg.Replicas)
	for _, id := range ids {
		if err := pl.Add(c.objects[id].nodes); err != nil {
			return nil, nil, err
		}
	}
	return pl, ids, nil
}

// WorstCase evaluates the current object set against the worst k-node
// failure (ignoring currently failed nodes; it answers "how bad could k
// fresh failures be"). budget bounds the branch-and-bound search.
func (c *Cluster) WorstCase(k int, budget int64) (adversary.Result, error) {
	pl, _, err := c.Snapshot()
	if err != nil {
		return adversary.Result{}, err
	}
	if pl.B() == 0 {
		return adversary.Result{Exact: true}, nil
	}
	return adversary.WorstCase(pl, c.cfg.FatalityThreshold, k, budget)
}
