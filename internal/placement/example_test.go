package placement_test

import (
	"fmt"

	"repro/internal/placement"
)

// ExampleOptimizeCombo plans the paper's headline configuration: the DP
// places all 600 objects in a Simple(1, 1) packing (a Steiner triple
// system on 69 of the 71 nodes), guaranteeing at most 6 objects lost to
// any 4 node failures.
func ExampleOptimizeCombo() {
	units, err := placement.DefaultUnits(71, 3, 2, false)
	if err != nil {
		panic(err)
	}
	spec, bound, err := placement.OptimizeCombo(600, 4, 2, units)
	if err != nil {
		panic(err)
	}
	fmt.Println("lambdas:", spec.Lambdas)
	fmt.Println("guaranteed available:", bound)
	// Output:
	// lambdas: [0 1]
	// guaranteed available: 594
}

// ExampleLBAvailSimple evaluates Lemma 2: a Simple(1, 13) placement of
// 9600 objects loses at most 130 objects to 5 failures when s = 2.
func ExampleLBAvailSimple() {
	fmt.Println(placement.LBAvailSimple(9600, 5, 2, 1, 13))
	// Output:
	// 9470
}

// ExampleBuildSimple materializes a Simple(1, 1) placement on STS(13)
// and verifies Definition 2 directly.
func ExampleBuildSimple() {
	pl, err := placement.BuildSimple(13, 3, 1, 1, 26, placement.SimpleOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("objects:", pl.B())
	fmt.Println("max pair overlap:", pl.MaxOverlap(1))
	// Output:
	// objects: 26
	// max pair overlap: 1
}
