package placement

import (
	"encoding/json"
	"fmt"
	"io"
)

// placementJSON is the on-disk form of a Placement: replica node lists
// per object. It is the interchange format of the replicaplace CLI.
type placementJSON struct {
	N       int     `json:"n"`
	R       int     `json:"r"`
	Objects [][]int `json:"objects"`
}

// EncodeJSON writes the placement as JSON.
func (p *Placement) EncodeJSON(w io.Writer) error {
	out := placementJSON{N: p.N, R: p.R, Objects: make([][]int, p.B())}
	for i := range p.Objects {
		out.Objects[i] = p.ReplicaNodes(i)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// DecodeJSON reads a placement written by EncodeJSON and validates it.
func DecodeJSON(r io.Reader) (*Placement, error) {
	var in placementJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("placement: decoding JSON: %w", err)
	}
	pl := NewPlacement(in.N, in.R)
	for i, nodes := range in.Objects {
		if err := pl.Add(nodes); err != nil {
			return nil, fmt.Errorf("placement: object %d: %w", i, err)
		}
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return pl, nil
}
