package placement

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/design"
)

// Unit describes one Simple(x, ·) building block available for placement:
// a supply of (x+1)-(n_x, r, μ_x) packings (possibly chunked across
// several sub-orders per Observation 2). CapPerMu is the number of objects
// placeable per μ_x worth of λ — for a single chunk this is
// μ_x·C(n_x, x+1)/C(r, x+1), which the paper requires to be integral.
type Unit struct {
	X        int   // overlap bound x (0 <= x < s)
	Mu       int   // multiplicity granularity μ_x (λ_x must be a multiple)
	CapPerMu int64 // objects placeable per μ_x of λ_x
}

// Validate checks unit consistency.
func (u Unit) Validate() error {
	if u.X < 0 {
		return fmt.Errorf("placement: unit x = %d negative", u.X)
	}
	if u.Mu < 1 {
		return fmt.Errorf("placement: unit μ = %d must be positive", u.Mu)
	}
	if u.CapPerMu < 1 {
		return fmt.Errorf("placement: unit capacity %d must be positive", u.CapPerMu)
	}
	return nil
}

// SimpleCapacity returns the Lemma 1 capacity of a Simple(x, λ) placement
// built from chunks of the given orders: λ·Σ_i C(n_i, x+1)/C(r, x+1)
// evaluated exactly; the bool result reports whether each chunk's
// capacity is integral at multiplicity mu (the paper's requirement).
func SimpleCapacity(orders []int, r, x, lambda, mu int) (int64, bool) {
	t := x + 1
	den := combin.Choose(r, t)
	if den == 0 || lambda%mu != 0 {
		return 0, false
	}
	var perMu int64
	for _, nx := range orders {
		c, err := combin.Binomial(nx, t)
		if err != nil || (mu > 0 && c > math.MaxInt64/int64(mu)) {
			// Overflow: integrality cannot be verified — report "not
			// integral" rather than a fake exact zero capacity.
			return 0, false
		}
		num := int64(mu) * c
		if num%den != 0 {
			return 0, false
		}
		perMu += num / den
	}
	return int64(lambda/mu) * perMu, true
}

// MinimalLambda returns the smallest λ that is a positive multiple of μ
// and satisfies Eqn. 1, i.e. the capacity λ/μ·capPerMu is at least b.
func MinimalLambda(b int64, capPerMu int64, mu int) (int, error) {
	if capPerMu < 1 || mu < 1 {
		return 0, fmt.Errorf("placement: invalid capacity unit cap=%d μ=%d", capPerMu, mu)
	}
	if b <= 0 {
		return 0, nil
	}
	copies := combin.CeilDiv(b, capPerMu)
	lambda := copies * int64(mu)
	const maxLambda = 1 << 30
	if lambda > maxLambda {
		return 0, fmt.Errorf("placement: λ = %d unreasonably large", lambda)
	}
	return int(lambda), nil
}

// LBAvailSimple returns lbAvail_si(x, λ) = b − ⌊λ·C(k, x+1)/C(s, x+1)⌋,
// the Lemma 2 lower bound on Avail(π) for any Simple(x, λ) placement of b
// objects facing k node failures with fatality threshold s. The value can
// be negative (a vacuous bound), which the paper reports as-is in Fig. 10.
func LBAvailSimple(b int64, k, s, x, lambda int) int64 {
	t := x + 1
	den := combin.Choose(s, t)
	if den == 0 {
		// x >= s: the bound is vacuous; arbitrarily many objects can share
		// s nodes, so nothing is guaranteed.
		return 0
	}
	// An int64 overflow in λ·C(k, t) means the failure term is
	// astronomical: the bound degrades to 0, never to b (Choose's 0
	// convention would silently claim every object survives).
	num := combin.ChooseOrHuge(k, t)
	var failed int64
	if lambda > 0 && num > math.MaxInt64/int64(lambda) {
		failed = b
	} else {
		failed = combin.FloorDiv(int64(lambda)*num, den)
	}
	if failed > b {
		failed = b // at most b objects can fail
	}
	return b - failed
}

// CompetitiveConstants returns the constants (c, α) of Theorem 1 for which
// any placement π′ satisfies Avail(π′) < c·Avail(π) + α against any
// Simple(x, λ) placement π built on n_x nodes with multiplicity μ_x.
// ok is false when C(r,x+1)·C(k,x+1) >= C(n_x,x+1)·C(s,x+1), in which
// case the theorem gives no guarantee (c would be <= 0 or undefined).
func CompetitiveConstants(nx, r, s, k, x, mu int) (c, alpha float64, ok bool) {
	t := x + 1
	rr := float64(combin.Choose(r, t))
	kk := float64(combin.Choose(k, t))
	nn := float64(combin.Choose(nx, t))
	ss := float64(combin.Choose(s, t))
	if nn == 0 || ss == 0 {
		return 0, 0, false
	}
	ratio := rr * kk / (nn * ss)
	if ratio >= 1 {
		return 0, 0, false
	}
	c = 1 / (1 - ratio)
	alpha = c * float64(mu) * kk / ss
	return c, alpha, true
}

// SimpleOptions configures BuildSimple.
type SimpleOptions struct {
	// Orders lists the chunk orders to use (Observation 2). When empty,
	// the builder picks the largest constructible order <= n as a single
	// chunk.
	Orders []int
	// AllowGreedy permits a greedy maximal packing when no algebraic
	// construction exists for a chunk order. The capacity may then fall
	// below the design bound.
	AllowGreedy bool
	// Seed feeds the greedy fallback.
	Seed int64
}

// BuildSimple materializes a concrete Simple(x, λ) placement of b objects
// on n nodes with r replicas each: an (x+1)-(n, r, λ) packing. Per
// Observation 1 the placement is λ copies of μ=1 Steiner systems (or
// greedy packings when permitted); per Observation 2 it may span several
// chunks of nodes. It fails if b exceeds the achievable capacity.
func BuildSimple(n, r, x, lambda, b int, opts SimpleOptions) (*Placement, error) {
	if x < 0 || x >= r {
		return nil, fmt.Errorf("placement: x = %d must satisfy 0 <= x < r = %d", x, r)
	}
	if lambda < 1 {
		return nil, fmt.Errorf("placement: λ = %d must be positive", lambda)
	}
	t := x + 1
	orders := opts.Orders
	if len(orders) == 0 {
		nx, ok := design.BestConstructibleOrder(t, r, n)
		if !ok {
			if !opts.AllowGreedy {
				return nil, fmt.Errorf("placement: no constructible %d-(·, %d, 1) order <= %d", t, r, n)
			}
			nx = n
		}
		orders = []int{nx}
	}
	total := 0
	for _, nx := range orders {
		total += nx
	}
	if total > n {
		return nil, fmt.Errorf("placement: chunk orders sum to %d > n = %d", total, n)
	}

	pl := NewPlacement(n, r)
	remaining := b
	offset := 0
	for _, nx := range orders {
		if remaining == 0 {
			break
		}
		base, err := chunkDesign(t, nx, r, remaining, opts)
		if err != nil {
			return nil, err
		}
		// λ copies of the base packing; stop once b objects are placed.
		nodes := make([]int, r)
		for copyIdx := 0; copyIdx < lambda && remaining > 0; copyIdx++ {
			for _, blk := range base.Blocks {
				if remaining == 0 {
					break
				}
				for i, pt := range blk {
					nodes[i] = offset + pt
				}
				if err := pl.Add(nodes); err != nil {
					return nil, err
				}
				remaining--
			}
		}
		offset += nx
	}
	if remaining > 0 {
		return nil, fmt.Errorf("placement: Simple(%d, %d) capacity exhausted with %d of %d objects unplaced",
			x, lambda, remaining, b)
	}
	return pl, nil
}

// chunkDesign builds the μ=1 base packing for one chunk. need bounds the
// number of blocks actually consumed, which keeps the degenerate
// x+1 = r case (the complete design, astronomically many blocks) lazy.
func chunkDesign(t, nx, r, need int, opts SimpleOptions) (*design.Packing, error) {
	if t == r {
		return design.Complete(nx, r, int64(need))
	}
	if design.SteinerConstructible(t, nx, r) {
		return design.BuildSteiner(t, nx, r)
	}
	if !opts.AllowGreedy {
		return nil, fmt.Errorf("placement: no construction for %d-(%d, %d, 1); set AllowGreedy to use a maximal packing", t, nx, r)
	}
	return design.GreedyPacking(t, nx, r, 1, opts.Seed, 0)
}
