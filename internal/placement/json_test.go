package placement

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	pl := NewPlacement(10, 3)
	mustAdd(t, pl, []int{0, 4, 7})
	mustAdd(t, pl, []int{1, 2, 9})
	var buf bytes.Buffer
	if err := pl.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 10 || got.R != 3 || got.B() != 2 {
		t.Fatalf("round trip shape: n=%d r=%d b=%d", got.N, got.R, got.B())
	}
	for i := 0; i < 2; i++ {
		if !got.Objects[i].Equal(pl.Objects[i]) {
			t.Errorf("object %d differs after round trip", i)
		}
	}
}

func TestDecodeJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"n": 5, "r": 3, "objects": [[0, 1]]}`,    // wrong replica count
		`{"n": 5, "r": 3, "objects": [[0, 1, 9]]}`, // node out of range
		`{"n": 5, "r": 3, "objects": [[0, 1, 1]]}`, // duplicate node
		`{"n": 0, "r": 3, "objects": []}`,          // bad shape
	}
	for _, c := range cases {
		if _, err := DecodeJSON(strings.NewReader(c)); err == nil {
			t.Errorf("DecodeJSON accepted %q", c)
		}
	}
}
