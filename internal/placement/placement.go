package placement

import (
	"fmt"

	"repro/internal/combin"
)

// Placement assigns each object a replica set: π(obj) ⊆ N with
// |π(obj)| = R. Replica sets are stored both as bitsets (for fast
// intersection counting against failure sets) and implicitly as sorted
// node lists recoverable via ReplicaNodes.
type Placement struct {
	N       int              // number of nodes
	R       int              // replicas per object
	Objects []*combin.Bitset // replica set per object, each of capacity N
}

// NewPlacement returns an empty placement for n nodes and r replicas.
func NewPlacement(n, r int) *Placement {
	return &Placement{N: n, R: r}
}

// Add appends an object with the given replica nodes.
func (p *Placement) Add(nodes []int) error {
	if len(nodes) != p.R {
		return fmt.Errorf("placement: object has %d replicas, want %d", len(nodes), p.R)
	}
	bs := combin.NewBitset(p.N)
	for _, nd := range nodes {
		if nd < 0 || nd >= p.N {
			return fmt.Errorf("placement: node %d out of range [0, %d)", nd, p.N)
		}
		bs.Set(nd)
	}
	if bs.Count() != p.R {
		return fmt.Errorf("placement: replica nodes %v not distinct", nodes)
	}
	p.Objects = append(p.Objects, bs)
	return nil
}

// B returns the number of placed objects.
func (p *Placement) B() int { return len(p.Objects) }

// Clone returns an independent deep copy of the placement.
func (p *Placement) Clone() *Placement {
	cp := &Placement{N: p.N, R: p.R, Objects: make([]*combin.Bitset, len(p.Objects))}
	for i, o := range p.Objects {
		cp.Objects[i] = o.Clone()
	}
	return cp
}

// RangeError is the typed error MoveReplica returns when an index —
// object or node — lies outside the placement's universe. The
// incremental layers above MoveReplica (adversary.Session.Move, the
// controller's re-plan probes) surface it unwrapped, so callers can
// errors.As on it instead of pattern-matching a message — and no
// out-of-range index ever reaches the CSR patch layer, whose ApplyMove
// treats bad indices as programmer error and panics.
type RangeError struct {
	Kind  string // "object" or "node"
	Index int    // the offending index
	Limit int    // exclusive upper bound: B() for objects, N for nodes
}

func (e *RangeError) Error() string {
	return fmt.Sprintf("placement: %s %d out of range [0, %d)", e.Kind, e.Index, e.Limit)
}

// MoveReplica transfers one replica of obj from node from to node to —
// the unit of change incremental re-plans are chains of. It fails if
// from does not hold a replica or to already does (replica sets stay
// distinct), leaving the placement untouched. Out-of-range indices
// return a *RangeError.
func (p *Placement) MoveReplica(obj, from, to int) error {
	if obj < 0 || obj >= len(p.Objects) {
		return &RangeError{Kind: "object", Index: obj, Limit: len(p.Objects)}
	}
	if from < 0 || from >= p.N {
		return &RangeError{Kind: "node", Index: from, Limit: p.N}
	}
	if to < 0 || to >= p.N {
		return &RangeError{Kind: "node", Index: to, Limit: p.N}
	}
	o := p.Objects[obj]
	if !o.Get(from) {
		return fmt.Errorf("placement: object %d has no replica on node %d", obj, from)
	}
	if o.Get(to) {
		return fmt.Errorf("placement: object %d already has a replica on node %d", obj, to)
	}
	o.Clear(from)
	o.Set(to)
	return nil
}

// ReplicaNodes returns the sorted replica nodes of object obj.
func (p *Placement) ReplicaNodes(obj int) []int {
	return p.Objects[obj].Members(nil)
}

// Validate checks every object has exactly R distinct in-range replicas.
func (p *Placement) Validate() error {
	if p.N < 1 || p.R < 1 || p.R > p.N {
		return fmt.Errorf("placement: invalid shape n=%d r=%d", p.N, p.R)
	}
	for i, o := range p.Objects {
		if o.Len() != p.N {
			return fmt.Errorf("placement: object %d bitset capacity %d, want %d", i, o.Len(), p.N)
		}
		if o.Count() != p.R {
			return fmt.Errorf("placement: object %d has %d replicas, want %d", i, o.Count(), p.R)
		}
	}
	return nil
}

// FailedObjects returns the number of objects with at least s replicas on
// the failed node set K.
func (p *Placement) FailedObjects(failed *combin.Bitset, s int) int {
	count := 0
	for _, o := range p.Objects {
		if o.IntersectCount(failed) >= s {
			count++
		}
	}
	return count
}

// AvailableObjects returns B() minus FailedObjects.
func (p *Placement) AvailableObjects(failed *combin.Bitset, s int) int {
	return p.B() - p.FailedObjects(failed, s)
}

// NodeLoads returns the number of replicas each node hosts.
func (p *Placement) NodeLoads() []int {
	loads := make([]int, p.N)
	var buf []int
	for _, o := range p.Objects {
		buf = o.Members(buf[:0])
		for _, nd := range buf {
			loads[nd]++
		}
	}
	return loads
}

// MaxLoad returns the maximum node load.
func (p *Placement) MaxLoad() int {
	maxLoad := 0
	for _, l := range p.NodeLoads() {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// OverlapCounts returns, for every (x+1)-subset of nodes that hosts at
// least one object's replicas in common, the number of objects whose
// replica sets contain it. It is the brute-force verifier for the
// Simple(x, λ) property (Definition 2) used in tests.
func (p *Placement) OverlapCounts(x int) map[string]int {
	t := x + 1
	counts := make(map[string]int)
	sub := make([]int, t)
	var nodes []int
	for _, o := range p.Objects {
		nodes = o.Members(nodes[:0])
		combin.ForEachSubset(len(nodes), t, func(idx []int) bool {
			for i, j := range idx {
				sub[i] = nodes[j]
			}
			counts[subsetKey(sub)]++
			return true
		})
	}
	return counts
}

// MaxOverlap returns the largest number of objects sharing any common
// (x+1)-subset of nodes — the smallest λ for which the placement is
// Simple(x, λ).
func (p *Placement) MaxOverlap(x int) int {
	maxC := 0
	for _, c := range p.OverlapCounts(x) {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}

func subsetKey(s []int) string {
	b := make([]byte, 2*len(s))
	for i, v := range s {
		b[2*i] = byte(v >> 8)
		b[2*i+1] = byte(v)
	}
	return string(b)
}
