package placement

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// TestSpreadSessionCapCorrectAfterEviction pins the bounded-memo
// satellite: a spreadSession whose cap forces evictions keeps
// answering exactly — an evicted placement simply re-searches — and
// counts every eviction in the telemetry.
func TestSpreadSessionCapCorrectAfterEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n, r, b, s, d = 8, 3, 16, 2, 2
	topo, err := topology.UniformTree(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	flat := topo // UniformTree is already flat at the leaf level

	pl := NewPlacement(n, r)
	for o := 0; o < b; o++ {
		nodes := rng.Perm(n)[:r]
		if err := pl.Add(nodes); err != nil {
			t.Fatal(err)
		}
	}

	const cap = 4
	var tel SpreadTelemetry
	ss := newSpreadSession(s, d, b, flat.NumDomains(), cap, &tel)

	// Drive a chain of distinct placements far past the cap, recording
	// each exact answer, then re-ask them all: the early ones were
	// evicted and must re-search to the same damage.
	placements := []*Placement{pl.Clone()}
	cur := pl.Clone()
	for i := 0; i < 5*cap; i++ {
		obj := rng.Intn(b)
		from := -1
		for _, nd := range rng.Perm(n) {
			if cur.Objects[obj].Get(nd) {
				from = nd
				break
			}
		}
		to := -1
		for _, nd := range rng.Perm(n) {
			if !cur.Objects[obj].Get(nd) {
				to = nd
				break
			}
		}
		if err := cur.MoveReplica(obj, from, to); err != nil {
			t.Fatal(err)
		}
		placements = append(placements, cur.Clone())
	}
	want := make([]int, len(placements))
	for i, p := range placements {
		want[i] = ss.damage(p, flat, nil)
		exact, err := WorstDomainDamage(p, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if want[i] != exact {
			t.Fatalf("placement %d: session damage %d, evaluator %d", i, want[i], exact)
		}
	}
	if tel.MemoEvicted == 0 {
		t.Fatalf("%d distinct placements under cap %d evicted nothing: %+v", len(placements), cap, tel)
	}
	if len(ss.memo) > cap {
		t.Fatalf("memo holds %d entries, cap %d", len(ss.memo), cap)
	}
	for i, p := range placements {
		if got := ss.damage(p, flat, nil); got != want[i] {
			t.Fatalf("re-evaluation %d after eviction: damage %d, want %d", i, got, want[i])
		}
	}
	if tel.MemoHits+tel.Rebuilds != tel.Evals {
		t.Fatalf("telemetry does not balance: %+v", tel)
	}
}
