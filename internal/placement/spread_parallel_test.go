// Parallel candidate scoring must be invisible: SpreadAcrossDomainsWith
// with ProbeWorkers > 1 stripes exact-level scoring over private
// sessions, but the dedup-first design keeps the chosen mapping AND the
// work telemetry byte-identical to the serial scan.
package placement_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/placement"
	"repro/internal/topology"
)

func TestSpreadProbeWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 3; trial++ {
		pl := randomSpreadPlacement(rng, 12, 3, 20+rng.Intn(20))
		topo, err := topology.UniformHierarchy(12, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		var serialTel placement.SpreadTelemetry
		serial, serialMap, err := placement.SpreadAcrossDomainsWith(pl, topo, 2, 2,
			placement.SpreadOpts{Telemetry: &serialTel})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			var tel placement.SpreadTelemetry
			spread, mapping, err := placement.SpreadAcrossDomainsWith(pl, topo, 2, 2,
				placement.SpreadOpts{Telemetry: &tel, ProbeWorkers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mapping, serialMap) {
				t.Fatalf("trial %d workers=%d: mapping %v, serial %v", trial, workers, mapping, serialMap)
			}
			if !reflect.DeepEqual(spread, serial) {
				t.Fatalf("trial %d workers=%d: spread placement differs from serial", trial, workers)
			}
			// Dedup-first scoring performs exactly the serial session's
			// work: candidate evaluations, memo hits, and rebuilds all
			// match (only warm-seed opportunities depend on striping).
			if tel.Evals != serialTel.Evals || tel.MemoHits != serialTel.MemoHits || tel.Rebuilds != serialTel.Rebuilds {
				t.Fatalf("trial %d workers=%d: telemetry %+v, serial %+v", trial, workers, tel, serialTel)
			}
			if tel.MemoHits+tel.Rebuilds != tel.Evals {
				t.Fatalf("trial %d workers=%d: telemetry does not balance: %+v", trial, workers, tel)
			}
		}
	}
}
