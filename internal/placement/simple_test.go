package placement

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimpleCapacity(t *testing.T) {
	// STS(69): C(69,2)/C(3,2) = 782 blocks per λ.
	cap1, ok := SimpleCapacity([]int{69}, 3, 1, 1, 1)
	if !ok || cap1 != 782 {
		t.Errorf("SimpleCapacity(STS(69)) = %d, %v; want 782", cap1, ok)
	}
	// λ = 13 copies.
	cap13, ok := SimpleCapacity([]int{69}, 3, 1, 13, 1)
	if !ok || cap13 != 782*13 {
		t.Errorf("SimpleCapacity λ=13 = %d, want %d", cap13, 782*13)
	}
	// Chunked: STS(69) plus STS(7) wait — capacity adds across chunks.
	capChunk, ok := SimpleCapacity([]int{9, 7}, 3, 1, 1, 1)
	if !ok || capChunk != 12+7 {
		t.Errorf("SimpleCapacity chunks = %d, want 19", capChunk)
	}
	// Non-integral: C(70,2)/C(4,2) = 2415/6 is not integral.
	if _, ok := SimpleCapacity([]int{70}, 4, 1, 1, 1); ok {
		t.Error("SimpleCapacity(70, r=4) should be non-integral")
	}
	// λ not a multiple of μ.
	if _, ok := SimpleCapacity([]int{69}, 3, 1, 3, 2); ok {
		t.Error("SimpleCapacity with μ ∤ λ should fail")
	}
}

func TestMinimalLambdaEqn1(t *testing.T) {
	// capPerMu = 782 (STS(69), r = 3, x = 1).
	tests := []struct {
		b    int64
		want int
	}{
		{0, 0}, {1, 1}, {782, 1}, {783, 2}, {9600, 13}, {38400, 50},
	}
	for _, tt := range tests {
		got, err := MinimalLambda(tt.b, 782, 1)
		if err != nil {
			t.Fatalf("MinimalLambda(%d): %v", tt.b, err)
		}
		if got != tt.want {
			t.Errorf("MinimalLambda(%d) = %d, want %d", tt.b, got, tt.want)
		}
		// Eqn. 1: (λ-μ)·cap < b <= λ·cap for b > 0.
		if tt.b > 0 {
			if !(int64(got-1)*782 < tt.b && tt.b <= int64(got)*782) {
				t.Errorf("MinimalLambda(%d) = %d violates Eqn. 1", tt.b, got)
			}
		}
	}
	// μ = 3 granularity.
	got, err := MinimalLambda(100, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 { // ceil(100/30) = 4 copies → λ = 12
		t.Errorf("MinimalLambda(100, 30, μ=3) = %d, want 12", got)
	}
	if _, err := MinimalLambda(5, 0, 1); err == nil {
		t.Error("MinimalLambda with zero capacity should fail")
	}
}

func TestLBAvailSimpleLemma2(t *testing.T) {
	// b=600, λ=1, x=1, s=2, k=2: 600 − ⌊C(2,2)/C(2,2)⌋ = 599.
	if got := LBAvailSimple(600, 2, 2, 1, 1); got != 599 {
		t.Errorf("lbAvail_si = %d, want 599", got)
	}
	// k=5, s=2, x=1, λ=13: 9600 − ⌊13·C(5,2)/C(2,2)⌋ = 9600 − 130.
	if got := LBAvailSimple(9600, 5, 2, 1, 13); got != 9600-130 {
		t.Errorf("lbAvail_si = %d, want %d", got, 9600-130)
	}
	// s=3, x=2: k=5: ⌊λ·C(5,3)/C(3,3)⌋ = 10λ.
	if got := LBAvailSimple(1000, 5, 3, 2, 7); got != 1000-70 {
		t.Errorf("lbAvail_si = %d, want 930", got)
	}
	// Bound is capped: failures cannot exceed b.
	if got := LBAvailSimple(10, 5, 2, 1, 100); got != 0 {
		t.Errorf("lbAvail_si capped = %d, want 0", got)
	}
	// x >= s: vacuous.
	if got := LBAvailSimple(100, 5, 2, 2, 1); got != 0 {
		t.Errorf("lbAvail_si vacuous = %d, want 0", got)
	}
}

func TestCompetitiveConstants(t *testing.T) {
	// Theorem 1 illustration with s = r: c = [1 − C(k,x+1)/C(nx,x+1)]^{-1}.
	c, alpha, ok := CompetitiveConstants(69, 3, 3, 6, 1, 1)
	if !ok {
		t.Fatal("CompetitiveConstants: want ok")
	}
	wantC := 1 / (1 - 15.0/2346.0) // C(6,2)=15, C(69,2)=2346
	if math.Abs(c-wantC) > 1e-12 {
		t.Errorf("c = %g, want %g", c, wantC)
	}
	wantAlpha := wantC * 15.0 / 3.0 // α = c·μ·C(k,2)/C(s,2) = c·15/3
	if math.Abs(alpha-wantAlpha) > 1e-12 {
		t.Errorf("α = %g, want %g", alpha, wantAlpha)
	}
	// Degenerate: ratio >= 1 gives no guarantee.
	if _, _, ok := CompetitiveConstants(5, 5, 1, 4, 1, 1); ok {
		t.Error("CompetitiveConstants should fail when ratio >= 1")
	}
}

func TestBuildSimpleSTS(t *testing.T) {
	// n=9, r=3, x=1: STS(9) has 12 blocks; λ=2 doubles capacity.
	pl, err := BuildSimple(9, 3, 1, 2, 20, SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.B() != 20 {
		t.Errorf("B = %d, want 20", pl.B())
	}
	if got := pl.MaxOverlap(1); got > 2 {
		t.Errorf("MaxOverlap(1) = %d exceeds λ = 2 (Definition 2 violated)", got)
	}
}

func TestBuildSimpleUsesSubOrder(t *testing.T) {
	// n=71, r=3, x=1: best constructible STS order is 69; nodes 69 and 70
	// must stay empty.
	pl, err := BuildSimple(71, 3, 1, 1, 700, SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	loads := pl.NodeLoads()
	if loads[69] != 0 || loads[70] != 0 {
		t.Errorf("nodes beyond n_x = 69 were used: loads[69..70] = %v", loads[69:])
	}
	if got := pl.MaxOverlap(1); got > 1 {
		t.Errorf("MaxOverlap(1) = %d exceeds λ = 1", got)
	}
}

func TestBuildSimplePartition(t *testing.T) {
	// x=0: disjoint replica groups; λ=3 copies.
	pl, err := BuildSimple(10, 3, 0, 3, 9, SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.B() != 9 {
		t.Fatalf("B = %d, want 9", pl.B())
	}
	// No single node hosts more than λ = 3 objects.
	if got := pl.MaxOverlap(0); got > 3 {
		t.Errorf("MaxOverlap(0) = %d exceeds λ = 3", got)
	}
}

func TestBuildSimpleComplete(t *testing.T) {
	// x+1 = r: any distinct blocks work; stays lazy for big n.
	pl, err := BuildSimple(71, 5, 4, 1, 100, SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.B() != 100 {
		t.Fatalf("B = %d, want 100", pl.B())
	}
	if got := pl.MaxOverlap(4); got > 1 {
		t.Errorf("MaxOverlap(4) = %d exceeds λ = 1", got)
	}
}

func TestBuildSimpleChunked(t *testing.T) {
	// Two explicit chunks: STS(9) on nodes 0-8, STS(7) on nodes 9-15.
	pl, err := BuildSimple(16, 3, 1, 1, 19, SimpleOptions{Orders: []int{9, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.B() != 19 {
		t.Fatalf("B = %d, want 19", pl.B())
	}
	if got := pl.MaxOverlap(1); got > 1 {
		t.Errorf("MaxOverlap(1) = %d exceeds λ = 1", got)
	}
	// Replica sets must not span chunks: every object within 0-8 or 9-15.
	for i := 0; i < pl.B(); i++ {
		nodes := pl.ReplicaNodes(i)
		if nodes[0] < 9 && nodes[len(nodes)-1] >= 9 {
			t.Errorf("object %d spans chunks: %v", i, nodes)
		}
	}
}

func TestBuildSimpleCapacityExhausted(t *testing.T) {
	// STS(9), λ=1: capacity 12 < 13.
	if _, err := BuildSimple(9, 3, 1, 1, 13, SimpleOptions{}); err == nil {
		t.Error("over-capacity build should fail")
	}
}

func TestBuildSimpleGreedyFallback(t *testing.T) {
	// 3-(14, 4, 1) has no construction; greedy must be explicitly allowed.
	if _, err := BuildSimple(14, 4, 2, 1, 5, SimpleOptions{Orders: []int{14}}); err == nil {
		t.Error("greedy fallback should require AllowGreedy")
	}
	pl, err := BuildSimple(14, 4, 2, 1, 5, SimpleOptions{Orders: []int{14}, AllowGreedy: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.MaxOverlap(2); got > 1 {
		t.Errorf("MaxOverlap(2) = %d exceeds λ = 1", got)
	}
}

func TestBuildSimpleRejectsBadParams(t *testing.T) {
	if _, err := BuildSimple(9, 3, 3, 1, 5, SimpleOptions{}); err == nil {
		t.Error("x >= r accepted")
	}
	if _, err := BuildSimple(9, 3, 1, 0, 5, SimpleOptions{}); err == nil {
		t.Error("λ = 0 accepted")
	}
	if _, err := BuildSimple(9, 3, 1, 1, 5, SimpleOptions{Orders: []int{9, 7}}); err == nil {
		t.Error("chunk orders exceeding n accepted")
	}
}

// TestBuildSimpleDefinition2Property: for random parameters, the built
// placement always satisfies Definition 2 (no x+1 nodes host more than λ
// common objects).
func TestBuildSimpleDefinition2Property(t *testing.T) {
	f := func(raw uint32) bool {
		xs := []struct{ n, r, x int }{
			{9, 3, 1}, {13, 3, 1}, {8, 4, 2}, {10, 4, 2}, {12, 3, 0}, {7, 3, 2},
		}
		cfg := xs[int(raw)%len(xs)]
		lambda := 1 + int(raw/8)%3
		capOne, ok := SimpleCapacity([]int{cfg.n}, cfg.r, cfg.x, 1, 1)
		if !ok {
			// Use the largest constructible sub-order implicitly.
			capOne = 1
		}
		b := 1 + int(raw/64)%int(capOne*int64(lambda))
		pl, err := BuildSimple(cfg.n, cfg.r, cfg.x, lambda, b, SimpleOptions{AllowGreedy: true, Seed: int64(raw)})
		if err != nil {
			// Capacity misses are acceptable for greedy fallbacks; other
			// errors are not. Treat build failure as vacuous pass when the
			// greedy packing simply came up short.
			return true
		}
		return pl.Validate() == nil && pl.MaxOverlap(cfg.x) <= lambda
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
