package placement

import (
	"fmt"
	"math"

	"repro/internal/combin"
	"repro/internal/design"
)

// ComboSpec is a configured Combo(⟨λx⟩) placement strategy: Lambdas[x] is
// λ_x for x = 0..s-1 (Definition 3), and Units[x] describes the building
// block that backs it. Objects are divided across Simple(x, λ_x)
// placements; Eqn. 3 (total capacity >= b) must hold.
type ComboSpec struct {
	Lambdas []int
	Units   []Unit
}

// S returns the fatality threshold the spec was built for.
func (cs ComboSpec) S() int { return len(cs.Lambdas) }

// Capacity returns Σ_x (λ_x/μ_x)·capPerMu_x, the number of objects the
// spec can place (left side of Eqn. 3).
func (cs ComboSpec) Capacity() int64 {
	var total int64
	for x, lambda := range cs.Lambdas {
		if lambda == 0 {
			continue
		}
		u := cs.Units[x]
		total += int64(lambda/u.Mu) * u.CapPerMu
	}
	return total
}

// Validate checks structural consistency: one unit per x, λ_x a
// non-negative multiple of μ_x.
func (cs ComboSpec) Validate() error {
	if len(cs.Lambdas) != len(cs.Units) {
		return fmt.Errorf("placement: %d lambdas but %d units", len(cs.Lambdas), len(cs.Units))
	}
	for x, u := range cs.Units {
		if u.X != x {
			return fmt.Errorf("placement: unit %d has x = %d", x, u.X)
		}
		if err := u.Validate(); err != nil {
			return err
		}
		if cs.Lambdas[x] < 0 || cs.Lambdas[x]%u.Mu != 0 {
			return fmt.Errorf("placement: λ_%d = %d not a non-negative multiple of μ = %d",
				x, cs.Lambdas[x], u.Mu)
		}
	}
	return nil
}

// LBAvailCombo returns lbAvail_co(⟨λx⟩) = b − Σ_x ⌊λ_x·C(k, x+1)/C(s, x+1)⌋,
// the Lemma 3 lower bound on the availability of a Combo placement of b
// objects under k failures. Unlike the DP (which clamps at zero via its
// base case), the raw bound may be negative.
func LBAvailCombo(b int64, k, s int, lambdas []int) int64 {
	var failed int64
	for x, lambda := range lambdas {
		if lambda == 0 {
			continue
		}
		t := x + 1
		den := combin.Choose(s, t)
		if den == 0 {
			continue
		}
		// An overflowed λ_x·C(k, t) means this term alone fails
		// everything — saturate at b, never at 0.
		term := failedFloor(int64(lambda), failNumOf(1, k, t), den, b)
		if term >= b-failed {
			failed = b
			break
		}
		failed += term
	}
	if failed > b {
		failed = b
	}
	return b - failed
}

// failNumOf returns μ·C(k, t), or -1 when the product overflows int64 —
// the "this unit\'s failure term is astronomical" sentinel consumed by
// failedFloor. (Audit note: Choose returns 0 on overflow, which the DP
// below would read as "this unit never fails an object", the exact
// opposite of the truth.)
func failNumOf(mu, k, t int) int64 {
	c, err := combin.Binomial(k, t)
	if err != nil || (mu > 0 && c > math.MaxInt64/int64(mu)) {
		return -1
	}
	return int64(mu) * c
}

// failedFloor returns ⌊mult·failNum/failDen⌋, reading any overflow (the
// failNum sentinel -1, or the product) as overflowValue — an overflowed
// failure count must never shrink to 0. Non-overflow arithmetic is
// exactly the old FloorDiv expression.
func failedFloor(mult, failNum, failDen, overflowValue int64) int64 {
	if failNum < 0 || (mult > 0 && failNum > math.MaxInt64/mult) {
		return overflowValue
	}
	return combin.FloorDiv(mult*failNum, failDen)
}

// OptimizeCombo computes the ⟨λx⟩ maximizing the Lemma 3 lower bound for
// placing b objects under k failures, via the dynamic program of
// Sec. III-B1 (Eqns. 5–7). units must supply one Unit per x in 0..s-1.
// It returns the optimal spec together with lbav(s-1, b), which is always
// >= 0 (the DP's base case clamps at zero).
//
// The DP runs in O(s·b·d_max) time where d_max is the largest multiple of
// μ_x needed to cover b alone — O(s·b) treating capacities as constants,
// as the paper states.
func OptimizeCombo(b, k, s int, units []Unit) (ComboSpec, int64, error) {
	if s < 1 {
		return ComboSpec{}, 0, fmt.Errorf("placement: s = %d must be positive", s)
	}
	if len(units) != s {
		return ComboSpec{}, 0, fmt.Errorf("placement: need %d units (one per x), got %d", s, len(units))
	}
	for x, u := range units {
		if u.X != x {
			return ComboSpec{}, 0, fmt.Errorf("placement: units[%d].X = %d, want %d", x, u.X, x)
		}
		if err := u.Validate(); err != nil {
			return ComboSpec{}, 0, err
		}
	}
	if b < 0 {
		return ComboSpec{}, 0, fmt.Errorf("placement: b = %d negative", b)
	}

	// failPerMu[x] = ⌊d·μ_x·C(k,x+1)/C(s,x+1)⌋ is computed on the fly;
	// precompute the numerator factor μ_x·C(k,x+1) and denominator C(s,x+1).
	type xconst struct {
		capPerMu int64
		failNum  int64 // μ_x·C(k, x+1)
		failDen  int64 // C(s, x+1)
	}
	consts := make([]xconst, s)
	for x, u := range units {
		t := x + 1
		consts[x] = xconst{
			capPerMu: u.CapPerMu,
			failNum:  failNumOf(u.Mu, k, t),
			failDen:  combin.Choose(s, t),
		}
	}

	// lbav(0, b′) per Eqn. 6, in closed form.
	base := func(bPrime int64) int64 {
		if bPrime <= 0 {
			return 0
		}
		copies := combin.CeilDiv(bPrime, consts[0].capPerMu) // λ_0/μ_0
		failed := failedFloor(copies, consts[0].failNum, consts[0].failDen, bPrime)
		v := bPrime - failed
		if v < 0 {
			return 0
		}
		return v
	}
	// copiesFor0 returns the λ_0/μ_0 implied by Eqn. 6 for bPrime objects.
	copiesFor0 := func(bPrime int64) int64 {
		if bPrime <= 0 {
			return 0
		}
		return combin.CeilDiv(bPrime, consts[0].capPerMu)
	}

	if s == 1 {
		lambda0 := copiesFor0(int64(b)) * int64(units[0].Mu)
		spec := ComboSpec{Lambdas: []int{int(lambda0)}, Units: append([]Unit(nil), units...)}
		return spec, base(int64(b)), nil
	}

	// Layered DP over x′ = 1..s-1; prev[bPrime] = lbav(x′-1, bPrime).
	prev := make([]int64, b+1)
	for bPrime := 0; bPrime <= b; bPrime++ {
		prev[bPrime] = base(int64(bPrime))
	}
	// choice[x′][bPrime] records the optimal d (λ_{x′} = d·μ_{x′}).
	choice := make([][]int32, s)
	cur := make([]int64, b+1)
	for x := 1; x < s; x++ {
		choice[x] = make([]int32, b+1)
		cc := consts[x]
		for bPrime := 0; bPrime <= b; bPrime++ {
			bestVal := int64(-1 << 62)
			bestD := int32(0)
			dMax := combin.CeilDiv(int64(bPrime), cc.capPerMu)
			for d := int64(0); d <= dMax; d++ {
				placed := d * cc.capPerMu
				contribution := placed
				if int64(bPrime) < placed {
					contribution = int64(bPrime)
				}
				contribution -= failedFloor(d, cc.failNum, cc.failDen, int64(bPrime)+placed)
				rest := int64(bPrime) - placed
				var below int64
				if rest > 0 {
					below = prev[rest]
				}
				if v := contribution + below; v > bestVal {
					bestVal = v
					bestD = int32(d)
				}
			}
			cur[bPrime] = bestVal
			choice[x][bPrime] = bestD
		}
		prev, cur = cur, prev
	}
	best := prev[b]

	// Reconstruct ⟨λx⟩ by walking the recorded choices back down.
	lambdas := make([]int, s)
	remaining := int64(b)
	for x := s - 1; x >= 1; x-- {
		var d int64
		if remaining > 0 {
			d = int64(choice[x][remaining])
		}
		lambdas[x] = int(d) * units[x].Mu
		remaining -= d * consts[x].capPerMu
		if remaining < 0 {
			remaining = 0
		}
	}
	lambdas[0] = int(copiesFor0(remaining)) * units[0].Mu

	spec := ComboSpec{Lambdas: lambdas, Units: append([]Unit(nil), units...)}
	return spec, best, nil
}

// ComboBoundSweep computes the optimal DP bound lbav(s-1, b′) for every
// object count b′ = 0..bMax in a single pass — the batched form of
// OptimizeCombo used by the experiment harness, where one (n, r, s, k)
// table row needs the bound at many values of b. Only the bound values
// are produced (no ⟨λx⟩ reconstruction).
func ComboBoundSweep(bMax, k, s int, units []Unit) ([]int64, error) {
	if s < 1 || len(units) != s {
		return nil, fmt.Errorf("placement: need %d units, got %d", s, len(units))
	}
	for x, u := range units {
		if u.X != x {
			return nil, fmt.Errorf("placement: units[%d].X = %d, want %d", x, u.X, x)
		}
		if err := u.Validate(); err != nil {
			return nil, err
		}
	}
	if bMax < 0 {
		return nil, fmt.Errorf("placement: bMax = %d negative", bMax)
	}
	prev := make([]int64, bMax+1)
	cap0 := units[0].CapPerMu
	failNum0 := failNumOf(units[0].Mu, k, 1)
	failDen0 := combin.Choose(s, 1)
	for bPrime := int64(1); bPrime <= int64(bMax); bPrime++ {
		copies := combin.CeilDiv(bPrime, cap0)
		v := bPrime - failedFloor(copies, failNum0, failDen0, bPrime)
		if v < 0 {
			v = 0
		}
		prev[bPrime] = v
	}
	cur := make([]int64, bMax+1)
	for x := 1; x < s; x++ {
		u := units[x]
		t := x + 1
		capX := u.CapPerMu
		failNum := failNumOf(u.Mu, k, t)
		failDen := combin.Choose(s, t)
		for bPrime := 0; bPrime <= bMax; bPrime++ {
			best := prev[bPrime] // d = 0
			dMax := combin.CeilDiv(int64(bPrime), capX)
			for d := int64(1); d <= dMax; d++ {
				placed := d * capX
				contribution := placed
				if int64(bPrime) < placed {
					contribution = int64(bPrime)
				}
				contribution -= failedFloor(d, failNum, failDen, int64(bPrime)+placed)
				rest := int64(bPrime) - placed
				var below int64
				if rest > 0 {
					below = prev[rest]
				}
				if v := contribution + below; v > best {
					best = v
				}
			}
			cur[bPrime] = best
		}
		prev, cur = cur, prev
	}
	return prev, nil
}

// DefaultUnits derives catalog-backed units for each x in 0..s-1 on n
// nodes with r replicas: the largest known Steiner order <= n per the
// design catalog (μ = 1), matching the paper's parameter selection
// (Sec. III-C, Fig. 4). When constructibleOnly is set, orders are limited
// to systems this repository can actually build, for materializing
// concrete placements.
func DefaultUnits(n, r, s int, constructibleOnly bool) ([]Unit, error) {
	if s < 1 || s > r || r > n {
		return nil, fmt.Errorf("placement: invalid unit parameters n=%d r=%d s=%d", n, r, s)
	}
	units := make([]Unit, s)
	for x := 0; x < s; x++ {
		t := x + 1
		var (
			nx int
			ok bool
		)
		switch {
		case t == 1:
			// Partition chunks: μ=1 requires r | n_0.
			nx, ok = (n/r)*r, n >= r
		case t == r:
			// Complete designs exist for every order.
			nx, ok = n, true
		case constructibleOnly:
			nx, ok = design.BestConstructibleOrder(t, r, n)
		default:
			nx, ok = design.BestKnownOrder(t, r, n)
		}
		if !ok {
			return nil, fmt.Errorf("placement: no %d-(·, %d, 1) order available <= %d", t, r, n)
		}
		capPerMu, integral := SimpleCapacity([]int{nx}, r, x, 1, 1)
		if !integral || capPerMu < 1 {
			return nil, fmt.Errorf("placement: order n_%d = %d gives non-integral capacity", x, nx)
		}
		units[x] = Unit{X: x, Mu: 1, CapPerMu: capPerMu}
	}
	return units, nil
}

// BuildDefaultCombo runs the full constructible pipeline — DefaultUnits,
// OptimizeCombo, BuildCombo — returning the materialized placement along
// with the optimized spec and its Lemma 3 bound. It is the one-call form
// used by the CLI and the experiment harness.
func BuildDefaultCombo(n, r, s, k, b int) (*Placement, ComboSpec, int64, error) {
	units, err := DefaultUnits(n, r, s, true)
	if err != nil {
		return nil, ComboSpec{}, 0, err
	}
	spec, bound, err := OptimizeCombo(b, k, s, units)
	if err != nil {
		return nil, ComboSpec{}, 0, err
	}
	pl, err := BuildCombo(n, r, spec, b, SimpleOptions{})
	if err != nil {
		return nil, ComboSpec{}, 0, err
	}
	return pl, spec, bound, nil
}

// BuildCombo materializes a concrete Combo placement of b objects on n
// nodes following spec: objects are assigned to Simple(x, λ_x)
// sub-placements from the largest x down (matching how the DP allocates
// capacity). All sub-placements share the same n nodes — overlaps between
// sub-placements do not affect the Lemma 3 bound, which sums worst cases.
func BuildCombo(n, r int, spec ComboSpec, b int, opts SimpleOptions) (*Placement, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Capacity() < int64(b) {
		return nil, fmt.Errorf("placement: spec capacity %d < b = %d (violates Eqn. 3)",
			spec.Capacity(), b)
	}
	pl := NewPlacement(n, r)
	remaining := int64(b)
	for x := len(spec.Lambdas) - 1; x >= 0 && remaining > 0; x-- {
		lambda := spec.Lambdas[x]
		if lambda == 0 {
			continue
		}
		u := spec.Units[x]
		quota := int64(lambda/u.Mu) * u.CapPerMu
		if quota > remaining {
			quota = remaining
		}
		sub, err := BuildSimple(n, r, x, lambda, int(quota), opts)
		if err != nil {
			return nil, fmt.Errorf("placement: Simple(%d, %d) sub-placement: %w", x, lambda, err)
		}
		pl.Objects = append(pl.Objects, sub.Objects...)
		remaining -= quota
	}
	if remaining > 0 {
		return nil, fmt.Errorf("placement: %d objects unplaced", remaining)
	}
	return pl, nil
}
