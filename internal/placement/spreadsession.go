package placement

import (
	"sort"

	"repro/internal/search"
	"repro/internal/topology"
)

// SpreadTelemetry reports how much search work SpreadAcrossDomainsWith's
// candidate scoring actually performed. Hand one in via
// SpreadOpts.Telemetry to have the counters accumulated across every
// exact level (an evaluation either hits the damage memo or costs a
// rebuild; warm seeds count the searches that started from the previous
// candidate's re-validated witness instead of greedy alone).
type SpreadTelemetry struct {
	Evals     int64 // exact candidate evaluations requested
	MemoHits  int64 // answered from the damage memo, no search run
	WarmSeeds int64 // searches seeded by the previous candidate's witness
	Rebuilds  int64 // instance reinitializations (memo misses)
}

// spreadSession scores spread candidates at one (level, d) through a
// single reused search instance: candidates Reinit the same backing
// arrays instead of allocating fresh instances, the previous
// candidate's witness re-validates into a warm branch-and-bound seed
// (candidate mappings permute the same placement, so their worst
// attacks tend to overlap heavily), and exact damages memoize by
// canonical placement signature so duplicate candidates — the identity
// relabeling chief among them — cost one search, not several.
type spreadSession struct {
	s, d int
	in   *search.HitInstance
	memo map[Sig]int
	tel  *SpreadTelemetry

	lastSel []int // previous witness, in domain-id space
	pos     []int // pos[domain id] = candidate position after the last Reinit
	ids     []int
	lists   [][]search.Hit
	loads   []int64
}

func newSpreadSession(s, d, b, numDomains int, tel *SpreadTelemetry) *spreadSession {
	return &spreadSession{
		s: s, d: d,
		in:    search.NewHitInstance(s, b),
		memo:  make(map[Sig]int),
		tel:   tel,
		pos:   make([]int, numDomains),
		ids:   make([]int, numDomains),
		lists: make([][]search.Hit, numDomains),
		loads: make([]int64, numDomains),
	}
}

// damage returns the exact worst d-domain damage of pl under flat —
// the same number WorstDomainDamageWeighted computes — via memo or
// warm-seeded exact branch-and-bound on the reused instance.
func (ss *spreadSession) damage(pl *Placement, flat *topology.Topology, w []int64) int {
	ss.tel.Evals++
	sig := WeightSignature(Signature(pl), w)
	if v, ok := ss.memo[sig]; ok {
		ss.tel.MemoHits++
		return v
	}
	ss.tel.Rebuilds++

	byDomain, loads := DomainHits(pl, flat)
	if w != nil {
		for di, hl := range byDomain {
			var sum int64
			for _, h := range hl {
				sum += int64(h.C) * w[h.Obj]
			}
			loads[di] = sum
		}
	}
	nd := len(byDomain)
	order := ss.ids[:nd]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	for p, di := range order {
		ss.pos[di] = p
		ss.lists[p] = byDomain[di]
		ss.loads[p] = loads[di]
	}
	ss.in.Reinit(ss.d, ss.lists[:nd], ss.loads[:nd])
	ss.in.SetWeights(w)

	seed := search.Greedy(ss.in)
	ss.in.Reset()
	if ss.lastSel != nil {
		sel := make([]int, len(ss.lastSel))
		for i, di := range ss.lastSel {
			sel[i] = ss.pos[di]
		}
		sort.Ints(sel)
		if rv := search.Revalidate(ss.in, sel); rv > seed.Failed {
			seed = search.Result{Failed: rv, Sel: sel}
			ss.tel.WarmSeeds++
		}
	}
	res := search.BranchAndBoundWith(ss.in, seed, search.NewBudget(0), search.BoundResidual)

	sel := make([]int, len(res.Sel))
	for i, p := range res.Sel {
		sel[i] = order[p]
	}
	ss.lastSel = sel
	ss.memo[sig] = res.Failed
	return res.Failed
}
