package placement

import (
	"sort"

	"repro/internal/search"
	"repro/internal/topology"
)

// SpreadTelemetry reports how much search work SpreadAcrossDomainsWith's
// candidate scoring actually performed. Hand one in via
// SpreadOpts.Telemetry to have the counters accumulated across every
// exact level (an evaluation either hits the damage memo or costs a
// rebuild; warm seeds count the searches that started from the previous
// candidate's re-validated witness instead of greedy alone).
type SpreadTelemetry struct {
	Evals       int64 // exact candidate evaluations requested
	MemoHits    int64 // answered from the damage memo, no search run
	WarmSeeds   int64 // searches seeded by the previous candidate's witness
	Rebuilds    int64 // instance reinitializations (memo misses)
	MemoEvicted int64 // memo entries evicted by the capacity cap
}

// add folds a worker's counters in — the parallel scorer accumulates
// per-worker telemetry and merges it under one lock (addition
// commutes, so the totals are deterministic at any worker count).
func (t *SpreadTelemetry) add(o SpreadTelemetry) {
	t.Evals += o.Evals
	t.MemoHits += o.MemoHits
	t.WarmSeeds += o.WarmSeeds
	t.Rebuilds += o.Rebuilds
	t.MemoEvicted += o.MemoEvicted
}

// spreadMemoCap bounds a spreadSession's damage memo: comfortably
// above any candidate set the spread pass scores, so eviction only
// triggers for callers that drive a session directly past it.
const spreadMemoCap = 1 << 16

// spreadSession scores spread candidates at one (level, d) through a
// single reused search instance: candidates Reinit the same backing
// arrays instead of allocating fresh instances, the previous
// candidate's witness re-validates into a warm branch-and-bound seed
// (candidate mappings permute the same placement, so their worst
// attacks tend to overlap heavily), and exact damages memoize by
// canonical placement signature so duplicate candidates — the identity
// relabeling chief among them — cost one search, not several.
type spreadSession struct {
	s, d int
	in   *search.HitInstance
	memo map[Sig]int
	tel  *SpreadTelemetry

	// FIFO eviction state: memoCap (<= 0 = unlimited) bounds len(memo);
	// fifo[head:] queues the insertion order.
	memoCap int
	fifo    []Sig
	head    int

	lastSel []int // previous witness, in domain-id space
	pos     []int // pos[domain id] = candidate position after the last Reinit
	ids     []int
	lists   [][]search.Hit
	loads   []int64
}

func newSpreadSession(s, d, b, numDomains, memoCap int, tel *SpreadTelemetry) *spreadSession {
	return &spreadSession{
		s: s, d: d,
		in:      search.NewHitInstance(s, b),
		memo:    make(map[Sig]int),
		memoCap: memoCap,
		tel:     tel,
		pos:     make([]int, numDomains),
		ids:     make([]int, numDomains),
		lists:   make([][]search.Hit, numDomains),
		loads:   make([]int64, numDomains),
	}
}

// memoize records an exact damage under sig, evicting the oldest entry
// once the cap is crossed — a capped session stays correct (an evicted
// placement just re-searches) while a long probe chain's memory stays
// bounded.
func (ss *spreadSession) memoize(sig Sig, damage int) {
	if _, ok := ss.memo[sig]; ok {
		return
	}
	ss.memo[sig] = damage
	ss.fifo = append(ss.fifo, sig)
	if ss.memoCap > 0 && len(ss.memo) > ss.memoCap {
		delete(ss.memo, ss.fifo[ss.head])
		ss.head++
		ss.tel.MemoEvicted++
		if ss.head > len(ss.fifo)/2 {
			ss.fifo = append(ss.fifo[:0], ss.fifo[ss.head:]...)
			ss.head = 0
		}
	}
}

// damage returns the exact worst d-domain damage of pl under flat —
// the same number WorstDomainDamageWeighted computes — via memo or
// warm-seeded exact branch-and-bound on the reused instance.
func (ss *spreadSession) damage(pl *Placement, flat *topology.Topology, w []int64) int {
	ss.tel.Evals++
	sig := WeightSignature(Signature(pl), w)
	if v, ok := ss.memo[sig]; ok {
		ss.tel.MemoHits++
		return v
	}
	ss.tel.Rebuilds++

	byDomain, loads := DomainHits(pl, flat)
	if w != nil {
		for di, hl := range byDomain {
			var sum int64
			for _, h := range hl {
				sum += int64(h.C) * w[h.Obj]
			}
			loads[di] = sum
		}
	}
	nd := len(byDomain)
	order := ss.ids[:nd]
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	for p, di := range order {
		ss.pos[di] = p
		ss.lists[p] = byDomain[di]
		ss.loads[p] = loads[di]
	}
	ss.in.Reinit(ss.d, ss.lists[:nd], ss.loads[:nd])
	ss.in.SetWeights(w)

	seed := search.Greedy(ss.in)
	ss.in.Reset()
	if ss.lastSel != nil {
		sel := make([]int, len(ss.lastSel))
		for i, di := range ss.lastSel {
			sel[i] = ss.pos[di]
		}
		sort.Ints(sel)
		if rv := search.Revalidate(ss.in, sel); rv > seed.Failed {
			seed = search.Result{Failed: rv, Sel: sel}
			ss.tel.WarmSeeds++
		}
	}
	res := search.BranchAndBoundWith(ss.in, seed, search.NewBudget(0), search.BoundResidual)

	sel := make([]int, len(res.Sel))
	for i, p := range res.Sel {
		sel[i] = order[p]
	}
	ss.lastSel = sel
	ss.memoize(sig, res.Failed)
	return res.Failed
}
