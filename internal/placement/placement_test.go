package placement

import (
	"testing"

	"repro/internal/combin"
)

func TestParamsValidate(t *testing.T) {
	good := Params{N: 71, B: 600, R: 3, S: 2, K: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{N: 0, B: 1, R: 1, S: 1, K: 1},
		{N: 10, B: -1, R: 3, S: 2, K: 4},
		{N: 10, B: 5, R: 0, S: 1, K: 2},
		{N: 10, B: 5, R: 11, S: 1, K: 2},
		{N: 10, B: 5, R: 3, S: 0, K: 2},
		{N: 10, B: 5, R: 3, S: 4, K: 4},
		{N: 10, B: 5, R: 3, S: 2, K: 1},  // k < s
		{N: 10, B: 5, R: 3, S: 2, K: 10}, // k >= n
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d (%+v) accepted", i, p)
		}
	}
}

func TestParamsLoad(t *testing.T) {
	p := Params{N: 71, B: 600, R: 3, S: 2, K: 4}
	// ceil(3*600/71) = ceil(25.35) = 26.
	if got := p.Load(); got != 26 {
		t.Errorf("Load = %d, want 26", got)
	}
	p2 := Params{N: 10, B: 10, R: 2, S: 1, K: 1}
	if got := p2.Load(); got != 2 {
		t.Errorf("Load = %d, want 2", got)
	}
}

func TestPlacementAddValidate(t *testing.T) {
	pl := NewPlacement(10, 3)
	if err := pl.Add([]int{0, 3, 7}); err != nil {
		t.Fatal(err)
	}
	if err := pl.Add([]int{1, 2}); err == nil {
		t.Error("short replica list accepted")
	}
	if err := pl.Add([]int{0, 3, 10}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := pl.Add([]int{0, 3, 3}); err == nil {
		t.Error("duplicate replica node accepted")
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.B() != 1 {
		t.Errorf("B = %d, want 1", pl.B())
	}
	nodes := pl.ReplicaNodes(0)
	if len(nodes) != 3 || nodes[0] != 0 || nodes[1] != 3 || nodes[2] != 7 {
		t.Errorf("ReplicaNodes = %v", nodes)
	}
}

func TestPlacementFailedObjects(t *testing.T) {
	pl := NewPlacement(6, 3)
	mustAdd(t, pl, []int{0, 1, 2})
	mustAdd(t, pl, []int{0, 3, 4})
	mustAdd(t, pl, []int{3, 4, 5})

	failed := combin.NewBitsetFrom(6, []int{0, 1})
	// s = 1: objects 0 and 1 touch {0,1}.
	if got := pl.FailedObjects(failed, 1); got != 2 {
		t.Errorf("FailedObjects(s=1) = %d, want 2", got)
	}
	// s = 2: only object 0 has two replicas in {0,1}.
	if got := pl.FailedObjects(failed, 2); got != 1 {
		t.Errorf("FailedObjects(s=2) = %d, want 1", got)
	}
	if got := pl.AvailableObjects(failed, 2); got != 2 {
		t.Errorf("AvailableObjects(s=2) = %d, want 2", got)
	}
}

func TestPlacementNodeLoadsAndOverlap(t *testing.T) {
	pl := NewPlacement(6, 3)
	mustAdd(t, pl, []int{0, 1, 2})
	mustAdd(t, pl, []int{0, 1, 3})
	loads := pl.NodeLoads()
	want := []int{2, 2, 1, 1, 0, 0}
	for i := range want {
		if loads[i] != want[i] {
			t.Fatalf("NodeLoads = %v, want %v", loads, want)
		}
	}
	if got := pl.MaxLoad(); got != 2 {
		t.Errorf("MaxLoad = %d, want 2", got)
	}
	// Pair {0,1} shared by both objects.
	if got := pl.MaxOverlap(1); got != 2 {
		t.Errorf("MaxOverlap(x=1) = %d, want 2", got)
	}
	// No triple shared.
	if got := pl.MaxOverlap(2); got != 1 {
		t.Errorf("MaxOverlap(x=2) = %d, want 1", got)
	}
}

func mustAdd(t *testing.T, pl *Placement, nodes []int) {
	t.Helper()
	if err := pl.Add(nodes); err != nil {
		t.Fatal(err)
	}
}
