package placement

// Canonical placement signatures: the memo key incremental adversary
// sessions (internal/adversary, and the spread pass's candidate
// scoring) cache exact damage under. Two placements collide only if
// both 64-bit FNV-style streams collide, and the stream is canonical
// by construction — objects in index order, each object's replica set
// ascending (the bitset order ReplicaNodes already guarantees) — so
// two placements assigning the same replica sets hash identically no
// matter how they were built or mutated.

// Sig is a 128-bit canonical placement signature.
type Sig struct {
	Lo, Hi uint64
}

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
	// The second stream runs the same mixing from an unrelated offset
	// (digits of e) so a collision must defeat both.
	altOffset64 = 0xadf85458a2bb4a9a
)

func mix(h, v uint64) uint64 { return (h ^ v) * fnvPrime64 }

// Signature returns the canonical signature of the placement's replica
// assignment (shape included). Cost is O(b·r); recomputing it per
// evaluation is noise next to any search.
func Signature(pl *Placement) Sig {
	sig, _ := SignatureScratch(pl, nil)
	return sig
}

// SignatureScratch is Signature with a caller-provided members scratch
// buffer, returned (possibly grown) for reuse — the allocation-free
// variant for hot memo-lookup paths that hash per probe.
func SignatureScratch(pl *Placement, buf []int) (Sig, []int) {
	lo, hi := SigSeed()
	lo, hi = sigInt(lo, hi, pl.N)
	lo, hi = sigInt(lo, hi, pl.R)
	for _, o := range pl.Objects {
		buf = o.Members(buf[:0])
		for _, nd := range buf {
			lo, hi = sigInt(lo, hi, nd)
		}
		// Object separator: replica sets never contain N, so streams
		// cannot be confused across object boundaries.
		lo, hi = sigInt(lo, hi, pl.N)
	}
	return Sig{Lo: lo, Hi: hi}, buf
}

// SigSeed returns the two stream offsets, for callers folding extra
// state (per-object weights, engine parameters) into a signature with
// SigInt64.
func SigSeed() (lo, hi uint64) { return fnvOffset64, altOffset64 }

// SigInt64 folds one 64-bit value into both signature streams.
func SigInt64(s Sig, v int64) Sig {
	return Sig{Lo: mix(s.Lo, uint64(v)), Hi: mix(s.Hi, uint64(v))}
}

func sigInt(lo, hi uint64, v int) (uint64, uint64) {
	return mix(lo, uint64(v)), mix(hi, uint64(v))
}

// WeightSignature folds a per-object weight vector into a signature
// (distinguishing nil — unit weights — from any explicit vector), so
// weighted evaluations memoize per (placement, weights) pair.
func WeightSignature(s Sig, w []int64) Sig {
	if w == nil {
		return SigInt64(s, -1)
	}
	s = SigInt64(s, int64(len(w)))
	for _, v := range w {
		s = SigInt64(s, v)
	}
	return s
}
