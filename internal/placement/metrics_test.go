package placement

import (
	"math/rand"
	"testing"
)

func TestOverlapHistogramExact(t *testing.T) {
	pl := NewPlacement(8, 3)
	mustAdd(t, pl, []int{0, 1, 2})
	mustAdd(t, pl, []int{0, 1, 3}) // overlap 2 with first
	mustAdd(t, pl, []int{4, 5, 6}) // overlap 0 with both
	hist, err := pl.OverlapHistogram(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: (0,1) overlap 2; (0,2) overlap 0; (1,2) overlap 0.
	want := []int64{2, 0, 1, 0}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
}

func TestOverlapHistogramSimpleRespectsX(t *testing.T) {
	// Simple(1, 1) placements: no two objects share more than 1 node,
	// so the histogram above overlap 1 must be empty.
	pl, err := BuildSimple(13, 3, 1, 1, 26, SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hist, err := pl.OverlapHistogram(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for o := 2; o < len(hist); o++ {
		if hist[o] != 0 {
			t.Errorf("Simple(1,1) has %d pairs with overlap %d", hist[o], o)
		}
	}
	maxO, err := pl.MaxPairOverlap()
	if err != nil {
		t.Fatal(err)
	}
	if maxO > 1 {
		t.Errorf("MaxPairOverlap = %d, want <= 1", maxO)
	}
}

func TestOverlapHistogramSampledSumsToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pl := NewPlacement(20, 3)
	for i := 0; i < 200; i++ {
		perm := rng.Perm(20)
		mustAdd(t, pl, perm[:3])
	}
	// 200 objects -> 19900 pairs; sample 1000.
	hist, err := pl.OverlapHistogram(1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range hist {
		total += c
	}
	// Scaled estimates should land near the true pair count.
	if total < 19000 || total > 20000 {
		t.Errorf("sampled histogram total = %d, want ~19900", total)
	}
}

func TestOverlapHistogramEmpty(t *testing.T) {
	pl := NewPlacement(5, 2)
	hist, err := pl.OverlapHistogram(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range hist {
		if c != 0 {
			t.Error("empty placement should have an all-zero histogram")
		}
	}
}

func TestLoadImbalance(t *testing.T) {
	pl := NewPlacement(4, 2)
	mustAdd(t, pl, []int{0, 1})
	mustAdd(t, pl, []int{0, 2})
	spread, mean, err := pl.LoadImbalance()
	if err != nil {
		t.Fatal(err)
	}
	if spread != 2 { // node 0 has 2, node 3 has 0
		t.Errorf("spread = %d, want 2", spread)
	}
	if mean != 1.0 { // 4 replicas over 4 nodes
		t.Errorf("mean = %g, want 1", mean)
	}
}
