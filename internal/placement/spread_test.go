// Spread tests live in the external test package so they can exercise
// the never-worse guarantee against the real domain adversary (package
// adversary imports placement, so the internal package cannot).
package placement_test

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/topology"
)

func randomSpreadPlacement(rng *rand.Rand, n, r, b int) *placement.Placement {
	pl := placement.NewPlacement(n, r)
	nodes := make([]int, r)
	for i := 0; i < b; i++ {
		perm := rng.Perm(n)
		copy(nodes, perm[:r])
		if err := pl.Add(nodes); err != nil {
			panic(err)
		}
	}
	return pl
}

func TestRelabel(t *testing.T) {
	pl := placement.NewPlacement(4, 2)
	for _, obj := range [][]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	out, err := placement.Relabel(pl, []int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 3}, {1, 2}, {0, 1}}
	for i, w := range want {
		got := out.ReplicaNodes(i)
		if len(got) != 2 || got[0] != w[0] || got[1] != w[1] {
			t.Errorf("object %d relabeled to %v, want %v", i, got, w)
		}
	}
	if _, err := placement.Relabel(pl, []int{0, 1, 2}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := placement.Relabel(pl, []int{0, 1, 2, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := placement.Relabel(pl, []int{0, 1, 2, 4}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

func TestDomainSpreadStats(t *testing.T) {
	pl := placement.NewPlacement(6, 3)
	// One object entirely inside rack0, one spread over all three racks.
	for _, obj := range [][]int{{0, 1, 2}, {0, 3, 5}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.New(6, []topology.Domain{
		{Name: "a", Zone: -1, Nodes: []int{0, 1, 2}},
		{Name: "b", Zone: -1, Nodes: []int{3, 4}},
		{Name: "c", Zone: -1, Nodes: []int{5}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := placement.DomainSpread(pl, topo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinDomains != 1 || stats.MaxDomains != 3 {
		t.Errorf("spread = [%d, %d], want [1, 3]", stats.MinDomains, stats.MaxDomains)
	}
	if stats.Histogram[1] != 1 || stats.Histogram[3] != 1 {
		t.Errorf("histogram = %v", stats.Histogram)
	}
}

// TestSpreadPerfectOnBlockAlignedRacks: when objects exactly coincide
// with racks, the oblivious placement loses an object per rack failure
// while the spread placement survives every single-rack failure.
func TestSpreadPerfectOnBlockAlignedRacks(t *testing.T) {
	pl := placement.NewPlacement(9, 3)
	for _, obj := range [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.Uniform(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	const s, d = 2, 1
	before, err := placement.WorstDomainDamage(pl, topo, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if before != 1 {
		t.Fatalf("oblivious damage = %d, want 1 (one object per rack)", before)
	}
	aware, mapping, err := placement.SpreadAcrossDomains(pl, topo, s, d)
	if err != nil {
		t.Fatal(err)
	}
	after, err := placement.WorstDomainDamage(aware, topo, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if after != 0 {
		t.Errorf("spread damage = %d, want 0 (each object across 3 racks); mapping %v", after, mapping)
	}
	stats, err := placement.DomainSpread(aware, topo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinDomains != 3 {
		t.Errorf("spread MinDomains = %d, want 3", stats.MinDomains)
	}
}

// TestSpreadNeverWorseProperty is the PR's core guarantee: under the
// exact domain adversary, the spread placement never does worse than the
// domain-oblivious one — on random placements, random topologies, and
// across s and d.
func TestSpreadNeverWorseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(8)
		r := 2 + rng.Intn(3)
		b := 10 + rng.Intn(30)
		pl := randomSpreadPlacement(rng, n, r, b)
		racks := 2 + rng.Intn(4)
		if racks > n {
			racks = n
		}
		topo, err := topology.Uniform(n, racks)
		if err != nil {
			t.Fatal(err)
		}
		s := 1 + rng.Intn(r)
		d := 1 + rng.Intn(racks)
		aware, mapping, err := placement.SpreadAcrossDomains(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		// The mapping must be a permutation (Relabel validates), and the
		// relabeled placement must still be structurally sound.
		if err := aware.Validate(); err != nil {
			t.Fatalf("trial %d: spread placement invalid: %v", trial, err)
		}
		if len(mapping) != n {
			t.Fatalf("trial %d: mapping has %d entries, want %d", trial, len(mapping), n)
		}
		before, err := placement.WorstDomainDamage(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		after, err := placement.WorstDomainDamage(aware, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if after > before {
			t.Errorf("trial %d (n=%d r=%d b=%d s=%d racks=%d d=%d): spread damage %d > oblivious %d",
				trial, n, r, b, s, racks, d, after, before)
		}
	}
}

// TestSpreadNeverWorseUnderAdversaryEngine re-verifies the guarantee
// with the independent branch-and-bound domain adversary, on Combo
// placements (the configuration the PR ships): domain-aware Combo's
// availability is >= domain-oblivious Combo's for every scenario.
func TestSpreadNeverWorseUnderAdversaryEngine(t *testing.T) {
	for _, tc := range []struct {
		n, r, s, k, b, racks, d int
	}{
		{9, 3, 2, 3, 12, 3, 1},
		{13, 3, 2, 3, 26, 4, 1},
		{13, 3, 2, 4, 26, 4, 2},
		{13, 3, 3, 4, 26, 4, 2},
	} {
		units, err := placement.DefaultUnits(tc.n, tc.r, tc.s, true)
		if err != nil {
			t.Fatal(err)
		}
		spec, _, err := placement.OptimizeCombo(tc.b, tc.k, tc.s, units)
		if err != nil {
			t.Fatal(err)
		}
		combo, err := placement.BuildCombo(tc.n, tc.r, spec, tc.b, placement.SimpleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		topo, err := topology.Uniform(tc.n, tc.racks)
		if err != nil {
			t.Fatal(err)
		}
		aware, _, err := placement.SpreadAcrossDomains(combo, topo, tc.s, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		obliv, err := adversary.DomainWorstCase(combo, topo, tc.s, tc.d, 0)
		if err != nil {
			t.Fatal(err)
		}
		awareRes, err := adversary.DomainWorstCase(aware, topo, tc.s, tc.d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if awareRes.Avail(tc.b) < obliv.Avail(tc.b) {
			t.Errorf("%+v: aware Avail %d < oblivious %d", tc, awareRes.Avail(tc.b), obliv.Avail(tc.b))
		}
		// Spreading is label-only: the node-level worst case is unchanged.
		nodeObliv, err := adversary.WorstCase(combo, tc.s, tc.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		nodeAware, err := adversary.WorstCase(aware, tc.s, tc.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if nodeObliv.Failed != nodeAware.Failed {
			t.Errorf("%+v: node-level damage changed by relabeling: %d vs %d",
				tc, nodeObliv.Failed, nodeAware.Failed)
		}
	}
}

func TestSpreadValidation(t *testing.T) {
	pl := placement.NewPlacement(6, 2)
	if err := pl.Add([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Uniform(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, topo, 0, 1); err == nil {
		t.Error("s = 0 accepted")
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, topo, 1, 0); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, topo, 1, 4); err == nil {
		t.Error("d > domains accepted")
	}
	other, err := topology.Uniform(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, other, 1, 1); err == nil {
		t.Error("mismatched topology accepted")
	}
	if _, err := placement.WorstDomainDamage(pl, other, 1, 1); err == nil {
		t.Error("WorstDomainDamage with mismatched topology accepted")
	}
}
