// Spread tests live in the external test package so they can exercise
// the never-worse guarantee against the real domain adversary (package
// adversary imports placement, so the internal package cannot).
package placement_test

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/topology"
)

func randomSpreadPlacement(rng *rand.Rand, n, r, b int) *placement.Placement {
	pl := placement.NewPlacement(n, r)
	nodes := make([]int, r)
	for i := 0; i < b; i++ {
		perm := rng.Perm(n)
		copy(nodes, perm[:r])
		if err := pl.Add(nodes); err != nil {
			panic(err)
		}
	}
	return pl
}

func TestRelabel(t *testing.T) {
	pl := placement.NewPlacement(4, 2)
	for _, obj := range [][]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	out, err := placement.Relabel(pl, []int{3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{2, 3}, {1, 2}, {0, 1}}
	for i, w := range want {
		got := out.ReplicaNodes(i)
		if len(got) != 2 || got[0] != w[0] || got[1] != w[1] {
			t.Errorf("object %d relabeled to %v, want %v", i, got, w)
		}
	}
	if _, err := placement.Relabel(pl, []int{0, 1, 2}); err == nil {
		t.Error("short mapping accepted")
	}
	if _, err := placement.Relabel(pl, []int{0, 1, 2, 2}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := placement.Relabel(pl, []int{0, 1, 2, 4}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
}

func TestDomainSpreadStats(t *testing.T) {
	pl := placement.NewPlacement(6, 3)
	// One object entirely inside rack0, one spread over all three racks.
	for _, obj := range [][]int{{0, 1, 2}, {0, 3, 5}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.New(6, []topology.Domain{
		{Name: "a", Parent: -1, Nodes: []int{0, 1, 2}},
		{Name: "b", Parent: -1, Nodes: []int{3, 4}},
		{Name: "c", Parent: -1, Nodes: []int{5}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := placement.DomainSpread(pl, topo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinDomains != 1 || stats.MaxDomains != 3 {
		t.Errorf("spread = [%d, %d], want [1, 3]", stats.MinDomains, stats.MaxDomains)
	}
	if stats.Histogram[1] != 1 || stats.Histogram[3] != 1 {
		t.Errorf("histogram = %v", stats.Histogram)
	}
}

// TestSpreadPerfectOnBlockAlignedRacks: when objects exactly coincide
// with racks, the oblivious placement loses an object per rack failure
// while the spread placement survives every single-rack failure.
func TestSpreadPerfectOnBlockAlignedRacks(t *testing.T) {
	pl := placement.NewPlacement(9, 3)
	for _, obj := range [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.Uniform(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	const s, d = 2, 1
	before, err := placement.WorstDomainDamage(pl, topo, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if before != 1 {
		t.Fatalf("oblivious damage = %d, want 1 (one object per rack)", before)
	}
	aware, mapping, err := placement.SpreadAcrossDomains(pl, topo, s, d)
	if err != nil {
		t.Fatal(err)
	}
	after, err := placement.WorstDomainDamage(aware, topo, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if after != 0 {
		t.Errorf("spread damage = %d, want 0 (each object across 3 racks); mapping %v", after, mapping)
	}
	stats, err := placement.DomainSpread(aware, topo)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MinDomains != 3 {
		t.Errorf("spread MinDomains = %d, want 3", stats.MinDomains)
	}
}

// TestSpreadNeverWorseProperty is the PR's core guarantee: under the
// exact domain adversary, the spread placement never does worse than the
// domain-oblivious one — on random placements, random topologies, and
// across s and d.
func TestSpreadNeverWorseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(8)
		r := 2 + rng.Intn(3)
		b := 10 + rng.Intn(30)
		pl := randomSpreadPlacement(rng, n, r, b)
		racks := 2 + rng.Intn(4)
		if racks > n {
			racks = n
		}
		topo, err := topology.Uniform(n, racks)
		if err != nil {
			t.Fatal(err)
		}
		s := 1 + rng.Intn(r)
		d := 1 + rng.Intn(racks)
		aware, mapping, err := placement.SpreadAcrossDomains(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		// The mapping must be a permutation (Relabel validates), and the
		// relabeled placement must still be structurally sound.
		if err := aware.Validate(); err != nil {
			t.Fatalf("trial %d: spread placement invalid: %v", trial, err)
		}
		if len(mapping) != n {
			t.Fatalf("trial %d: mapping has %d entries, want %d", trial, len(mapping), n)
		}
		before, err := placement.WorstDomainDamage(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		after, err := placement.WorstDomainDamage(aware, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if after > before {
			t.Errorf("trial %d (n=%d r=%d b=%d s=%d racks=%d d=%d): spread damage %d > oblivious %d",
				trial, n, r, b, s, racks, d, after, before)
		}
	}
}

// TestSpreadNeverWorseUnderAdversaryEngine re-verifies the guarantee
// with the independent branch-and-bound domain adversary, on Combo
// placements (the configuration the PR ships): domain-aware Combo's
// availability is >= domain-oblivious Combo's for every scenario.
func TestSpreadNeverWorseUnderAdversaryEngine(t *testing.T) {
	for _, tc := range []struct {
		n, r, s, k, b, racks, d int
	}{
		{9, 3, 2, 3, 12, 3, 1},
		{13, 3, 2, 3, 26, 4, 1},
		{13, 3, 2, 4, 26, 4, 2},
		{13, 3, 3, 4, 26, 4, 2},
	} {
		units, err := placement.DefaultUnits(tc.n, tc.r, tc.s, true)
		if err != nil {
			t.Fatal(err)
		}
		spec, _, err := placement.OptimizeCombo(tc.b, tc.k, tc.s, units)
		if err != nil {
			t.Fatal(err)
		}
		combo, err := placement.BuildCombo(tc.n, tc.r, spec, tc.b, placement.SimpleOptions{})
		if err != nil {
			t.Fatal(err)
		}
		topo, err := topology.Uniform(tc.n, tc.racks)
		if err != nil {
			t.Fatal(err)
		}
		aware, _, err := placement.SpreadAcrossDomains(combo, topo, tc.s, tc.d)
		if err != nil {
			t.Fatal(err)
		}
		obliv, err := adversary.DomainWorstCase(combo, topo, tc.s, tc.d, 0)
		if err != nil {
			t.Fatal(err)
		}
		awareRes, err := adversary.DomainWorstCase(aware, topo, tc.s, tc.d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if awareRes.Avail(tc.b) < obliv.Avail(tc.b) {
			t.Errorf("%+v: aware Avail %d < oblivious %d", tc, awareRes.Avail(tc.b), obliv.Avail(tc.b))
		}
		// Spreading is label-only: the node-level worst case is unchanged.
		nodeObliv, err := adversary.WorstCase(combo, tc.s, tc.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		nodeAware, err := adversary.WorstCase(aware, tc.s, tc.k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if nodeObliv.Failed != nodeAware.Failed {
			t.Errorf("%+v: node-level damage changed by relabeling: %d vs %d",
				tc, nodeObliv.Failed, nodeAware.Failed)
		}
	}
}

func TestSpreadValidation(t *testing.T) {
	pl := placement.NewPlacement(6, 2)
	if err := pl.Add([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Uniform(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, topo, 0, 1); err == nil {
		t.Error("s = 0 accepted")
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, topo, 1, 0); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, topo, 1, 4); err == nil {
		t.Error("d > domains accepted")
	}
	other, err := topology.Uniform(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := placement.SpreadAcrossDomains(pl, other, 1, 1); err == nil {
		t.Error("mismatched topology accepted")
	}
	if _, err := placement.WorstDomainDamage(pl, other, 1, 1); err == nil {
		t.Error("WorstDomainDamage with mismatched topology accepted")
	}
}

// TestWorstDomainDamageAt pins the level plumbing: damage at a level
// equals damage on that level's flat Collapse, and bad levels error.
func TestWorstDomainDamageAt(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	pl := randomSpreadPlacement(rng, 12, 3, 20)
	topo, err := topology.UniformTree(12, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for level := 0; level < topo.Levels(); level++ {
		flat, err := topo.Collapse(level)
		if err != nil {
			t.Fatal(err)
		}
		want, err := placement.WorstDomainDamage(pl, flat, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := placement.WorstDomainDamageAt(pl, topo, level, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("level %d: WorstDomainDamageAt = %d, Collapse damage = %d", level, got, want)
		}
	}
	if _, err := placement.WorstDomainDamageAt(pl, topo, 3, 2, 1); err == nil {
		t.Error("level 3 accepted on a depth-3 topology")
	}
}

// TestSpreadHierarchicalNeverWorseEveryLevel is the tentpole guarantee
// on trees: the spread placement never does worse than the oblivious
// one under the exact adversary at ANY level of the hierarchy.
func TestSpreadHierarchicalNeverWorseEveryLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 12; trial++ {
		n := 12 + rng.Intn(8)
		r := 2 + rng.Intn(2)
		b := 10 + rng.Intn(25)
		s := 1 + rng.Intn(r)
		pl := randomSpreadPlacement(rng, n, r, b)
		var topo *topology.Topology
		var err error
		if trial%2 == 0 {
			topo, err = topology.UniformTree(n, 2, 2, 2)
		} else {
			topo, err = topology.UniformTree(n, 2, 3)
		}
		if err != nil {
			t.Fatal(err)
		}
		d := 1 + rng.Intn(2)
		aware, _, err := placement.SpreadAcrossDomains(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		for level := 0; level < topo.Levels(); level++ {
			nd, err := topo.NumDomainsAt(level)
			if err != nil {
				t.Fatal(err)
			}
			dl := d
			if dl > nd {
				dl = nd
			}
			before, err := placement.WorstDomainDamageAt(pl, topo, level, s, dl)
			if err != nil {
				t.Fatal(err)
			}
			after, err := placement.WorstDomainDamageAt(aware, topo, level, s, dl)
			if err != nil {
				t.Fatal(err)
			}
			if after > before {
				t.Errorf("trial %d (n=%d r=%d b=%d s=%d d=%d) level %d: spread damage %d > oblivious %d",
					trial, n, r, b, s, dl, level, after, before)
			}
		}
	}
}

// TestSpreadHierarchicalSeparatesZones: rack-aligned objects on a
// zones→racks tree can be relabeled to survive any single rack AND any
// single zone failure; the hierarchical pass must find such a mapping
// (top level first, then within each zone).
func TestSpreadHierarchicalSeparatesZones(t *testing.T) {
	pl := placement.NewPlacement(8, 2)
	for _, obj := range [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.UniformTree(8, 2, 2) // 2 zones x 2 racks x 2 nodes
	if err != nil {
		t.Fatal(err)
	}
	const s, d = 2, 1
	beforeZone, err := placement.WorstDomainDamageAt(pl, topo, 0, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if beforeZone != 2 {
		t.Fatalf("oblivious zone damage = %d, want 2 (two objects per zone)", beforeZone)
	}
	aware, _, err := placement.SpreadAcrossDomains(pl, topo, s, d)
	if err != nil {
		t.Fatal(err)
	}
	afterRack, err := placement.WorstDomainDamageAt(aware, topo, topology.Leaf, s, d)
	if err != nil {
		t.Fatal(err)
	}
	afterZone, err := placement.WorstDomainDamageAt(aware, topo, 0, s, d)
	if err != nil {
		t.Fatal(err)
	}
	if afterRack != 0 || afterZone != 0 {
		t.Errorf("spread damage rack=%d zone=%d, want 0 and 0 (replicas split across zones)", afterRack, afterZone)
	}
}

// TestSpreadCapsNeverExceeded is the capacity satellite's contract: the
// relabeled placement never exceeds a leaf domain's replica cap, the
// never-worse selection still runs among cap-feasible candidates, and
// infeasible caps error out rather than silently overflowing.
func TestSpreadCapsNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(8)
		r := 2 + rng.Intn(2)
		b := 8 + rng.Intn(16)
		s := 1 + rng.Intn(r)
		pl := randomSpreadPlacement(rng, n, r, b)
		racks := 2 + rng.Intn(3)
		topo, err := topology.Uniform(n, racks)
		if err != nil {
			t.Fatal(err)
		}
		// A loose-but-binding cap: a bit above a perfectly balanced
		// share, sometimes unlimited on one domain.
		caps := make([]int, racks)
		for i := range caps {
			caps[i] = (r*b+racks-1)/racks + 1 + rng.Intn(2)
		}
		if rng.Intn(3) == 0 {
			caps[rng.Intn(racks)] = -1
		}
		aware, mapping, err := placement.SpreadAcrossDomainsWith(pl, topo, s, 1, placement.SpreadOpts{Caps: caps})
		if err != nil {
			// Feasibility is not guaranteed for every draw; an error is
			// acceptable, silently exceeding a cap is not.
			continue
		}
		if len(mapping) != n {
			t.Fatalf("trial %d: mapping has %d entries, want %d", trial, len(mapping), n)
		}
		_, loads := placement.DomainHits(aware, topo)
		for di, load := range loads {
			if caps[di] >= 0 && load > int64(caps[di]) {
				t.Errorf("trial %d: domain %d holds %d replicas, cap %d", trial, di, load, caps[di])
			}
		}
	}
	// Impossible caps must error.
	pl := randomSpreadPlacement(rng, 8, 2, 10)
	topo, err := topology.Uniform(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := placement.SpreadAcrossDomainsWith(pl, topo, 1, 1, placement.SpreadOpts{Caps: []int{0, 0, 0, 0}}); err == nil {
		t.Error("all-zero caps accepted for a placement with replicas")
	}
	if _, _, err := placement.SpreadAcrossDomainsWith(pl, topo, 1, 1, placement.SpreadOpts{Caps: []int{5, 5}}); err == nil {
		t.Error("cap vector shorter than the domain count accepted")
	}
}

// TestSpreadCapsRedistribute: when the oblivious layout overloads one
// rack beyond its cap, the capped spread must move replicas off it —
// identity is excluded and a feasible candidate found.
func TestSpreadCapsRedistribute(t *testing.T) {
	// Every object touches node 0 or 1: rack0 = {0, 1} holds 4 of the 8
	// replicas, double its cap.
	pl := placement.NewPlacement(8, 2)
	for _, obj := range [][]int{{0, 2}, {0, 4}, {1, 6}, {1, 3}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.Uniform(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{2, 2, 2, 2}
	aware, _, err := placement.SpreadAcrossDomainsWith(pl, topo, 2, 1, placement.SpreadOpts{Caps: caps})
	if err != nil {
		t.Fatal(err)
	}
	_, loads := placement.DomainHits(aware, topo)
	for di, load := range loads {
		if load > 2 {
			t.Errorf("domain %d holds %d replicas, cap 2", di, load)
		}
	}
}

// TestSpreadUnlimitedCapsStillSpread is the regression test for the
// unlimited-cap sentinel: all-negative caps mean "no cap", so the
// hierarchical candidates must still compete (the sentinel sum must not
// overflow into a negative subtree budget) and reach the same
// zone-separating layout the uncapped pass finds.
func TestSpreadUnlimitedCapsStillSpread(t *testing.T) {
	pl := placement.NewPlacement(8, 2)
	for _, obj := range [][]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.UniformTree(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{-1, -1, -1, -1}
	aware, _, err := placement.SpreadAcrossDomainsWith(pl, topo, 2, 1, placement.SpreadOpts{Caps: caps})
	if err != nil {
		t.Fatal(err)
	}
	afterZone, err := placement.WorstDomainDamageAt(aware, topo, 0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if afterZone != 0 {
		t.Errorf("unlimited caps: zone damage = %d, want 0 (hierarchical candidates must compete)", afterZone)
	}
	// Mixed unlimited + finite caps under one parent must not disable
	// the finite ones either.
	mixed := []int{-1, 2, -1, 2}
	aware, _, err = placement.SpreadAcrossDomainsWith(pl, topo, 2, 1, placement.SpreadOpts{Caps: mixed})
	if err != nil {
		t.Fatal(err)
	}
	_, loads := placement.DomainHits(aware, topo)
	for di, load := range loads {
		if mixed[di] >= 0 && load > int64(mixed[di]) {
			t.Errorf("domain %d holds %d replicas, cap %d", di, load, mixed[di])
		}
	}
}

// TestSpreadSessionMatchesOneShotEvaluator pins the candidate-scoring
// rewrite: scoring through the reused warm-started session must pick
// the same mapping a per-candidate WorstDomainDamageWeighted rebuild
// would (the session is exact, so the damage vectors are identical),
// and the telemetry must account for every evaluation.
func TestSpreadSessionMatchesOneShotEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		pl := randomSpreadPlacement(rng, 12, 3, 20+rng.Intn(20))
		topo, err := topology.UniformHierarchy(12, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		var tel placement.SpreadTelemetry
		spread, mapping, err := placement.SpreadAcrossDomainsWith(pl, topo, 2, 2, placement.SpreadOpts{Telemetry: &tel})
		if err != nil {
			t.Fatal(err)
		}
		if tel.Evals == 0 || tel.Rebuilds == 0 {
			t.Fatalf("telemetry recorded no scoring work: %+v", tel)
		}
		if tel.MemoHits+tel.Rebuilds != tel.Evals {
			t.Fatalf("telemetry does not balance: %+v", tel)
		}
		// The winner's damage at every level equals the one-shot
		// evaluator on the same relabeled placement.
		for _, lv := range []struct{ level, d int }{{topology.Leaf, 2}, {0, 2}} {
			want, err := placement.WorstDomainDamageAt(spread, topo, lv.level, 2, lv.d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := adversary.DomainWorstCaseAt(spread, topo, lv.level, 2, lv.d, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed != want {
				t.Fatalf("level %d: engine %d != evaluator %d on spread result (mapping %v)",
					lv.level, res.Failed, want, mapping)
			}
		}
	}
}
