package placement_test

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/placement"
	"repro/internal/topology"
)

// capFixturePlacement is the regression instance for the capped-spread
// bugfix: 4 abstract nodes with replica loads (5, 4, 4, 1) on 2 racks
// of 2 slots with caps (8, 6). The ONLY feasible split puts the two
// load-4 nodes together ({4,4}/{5,1}), which the identity, the striped
// and conflict-greedy heuristics, and BOTH hierMapping variants miss —
// only CheckCaps's witness assignment finds it.
func capFixturePlacement(t *testing.T) *placement.Placement {
	t.Helper()
	pl := placement.NewPlacement(4, 2)
	for _, obj := range [][]int{{0, 1}, {0, 1}, {0, 2}, {0, 2}, {0, 3}, {1, 2}, {1, 2}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	return pl
}

// TestSpreadCapsCheckerFallback is the bugfix regression: the capped
// spread must accept this provably satisfiable cap set instead of
// erroring, because the checker's witness competes as a candidate.
func TestSpreadCapsCheckerFallback(t *testing.T) {
	pl := capFixturePlacement(t)
	topo, err := topology.Uniform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	caps := []int{8, 6}
	aware, mapping, err := placement.SpreadAcrossDomainsWith(pl, topo, 1, 1, placement.SpreadOpts{Caps: caps})
	if err != nil {
		t.Fatalf("feasible cap set rejected: %v", err)
	}
	if len(mapping) != 4 {
		t.Fatalf("mapping has %d entries, want 4", len(mapping))
	}
	_, loads := placement.DomainHits(aware, topo)
	for di, load := range loads {
		if load > int64(caps[di]) {
			t.Errorf("domain %d holds %d replicas, cap %d", di, load, caps[di])
		}
	}
	// CheckCaps itself must certify feasibility with a valid witness.
	assign, cert, err := placement.CheckCaps(topo, pl.NodeLoads(), [][]int{{8, 6}})
	if err != nil || cert != nil {
		t.Fatalf("CheckCaps = (%v, %v, %v), want witness", assign, cert, err)
	}
	perDomain := make([]int64, 2)
	slots := make([]int, 2)
	nodeLoads := pl.NodeLoads()
	for abstract, di := range assign {
		perDomain[di] += int64(nodeLoads[abstract])
		slots[di]++
	}
	for di := range perDomain {
		if slots[di] != 2 {
			t.Errorf("witness assigns %d nodes to domain %d, want 2", slots[di], di)
		}
		if perDomain[di] > int64(caps[di]) {
			t.Errorf("witness puts %d replicas in domain %d, cap %d", perDomain[di], di, caps[di])
		}
	}
}

// TestCheckCapsCertificates pins the certificate side: infeasible cap
// sets yield a named-subtree pigeonhole explanation, at leaf and
// interior levels.
func TestCheckCapsCertificates(t *testing.T) {
	pl := capFixturePlacement(t)
	topo, err := topology.Uniform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	loads := pl.NodeLoads() // (5, 4, 4, 1), total 14

	// rack0 can hold at best the two lightest nodes (4 + 1 = 5): cap 4
	// is a pigeonhole violation.
	_, cert, err := placement.CheckCaps(topo, loads, [][]int{{4, -1}})
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("infeasible caps produced no certificate")
	}
	if cert.Name != "rack0" || cert.Cap != 4 || cert.Need != 5 {
		t.Errorf("certificate = %+v, want rack0 cap 4 need 5", cert)
	}
	if !strings.Contains(cert.Reason, "rack0") || !strings.Contains(cert.Reason, "allows 4") {
		t.Errorf("certificate reason %q does not name the subtree", cert.Reason)
	}

	// Sibling-forced violation: rack1 absorbs at most 6, so at least
	// 14 - 6 = 8 replicas must land in rack0, which allows 7.
	_, cert, err = placement.CheckCaps(topo, loads, [][]int{{7, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("sibling-forced infeasible caps produced no certificate")
	}
	if cert.Name != "rack0" || cert.Need < 8 {
		t.Errorf("certificate = %+v, want rack0 forced to >= 8", cert)
	}

	// Interior-level certificate: a zone capped below what its racks
	// must absorb, named with the zone vocabulary.
	deep, err := topology.ParseSpec(8, "r0@za:0,1;r1@za:2,3;r2@zb:4,5;r3@zb:6,7")
	if err != nil {
		t.Fatal(err)
	}
	unit := make([]int, 8)
	for i := range unit {
		unit[i] = 2
	}
	deep.Tree[0][0].Cap = 7 // zone za: 4 slots x load 2 = 8 needed
	_, cert, err = placement.CheckCaps(deep, unit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("capped zone produced no certificate")
	}
	if cert.Name != "za" || cert.Level != 0 || cert.Need != 8 || cert.Cap != 7 {
		t.Errorf("certificate = %+v, want zone za cap 7 need 8", cert)
	}
	if !strings.Contains(cert.Reason, "zone za allows 7 replicas but its racks need 8") {
		t.Errorf("certificate reason %q lacks the zone/racks pigeonhole wording", cert.Reason)
	}
}

// bruteFeasible decides cap feasibility by exhaustive assignment of
// abstract nodes (in id order — deliberately different from CheckCaps's
// load order) to leaf domains with exact slot occupancy.
func bruteFeasible(topo *topology.Topology, loads []int, caps [][]int) bool {
	leaves := topo.Leaves()
	levels := topo.Levels()
	capRem := make([][]int64, levels)
	for l := 0; l < levels; l++ {
		capRem[l] = make([]int64, len(topo.Tree[l]))
		for di := range capRem[l] {
			capRem[l][di] = int64(1) << 40
			if caps != nil && caps[l] != nil && caps[l][di] >= 0 {
				capRem[l][di] = int64(caps[l][di])
			}
		}
	}
	anc := make([][]int, levels)
	for l := range anc {
		anc[l] = make([]int, len(leaves))
	}
	for di := range leaves {
		cur := di
		for l := levels - 1; l >= 0; l-- {
			anc[l][di] = cur
			if l > 0 {
				cur = topo.Tree[l][cur].Parent
			}
		}
	}
	slotRem := make([]int, len(leaves))
	for di, d := range leaves {
		slotRem[di] = len(d.Nodes)
	}
	var rec func(nd int) bool
	rec = func(nd int) bool {
		if nd == topo.N {
			return true
		}
		load := int64(loads[nd])
		for di := range leaves {
			if slotRem[di] == 0 {
				continue
			}
			ok := true
			for l := levels - 1; l >= 0; l-- {
				if capRem[l][anc[l][di]] < load {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			slotRem[di]--
			for l := levels - 1; l >= 0; l-- {
				capRem[l][anc[l][di]] -= load
			}
			if rec(nd + 1) {
				return true
			}
			slotRem[di]++
			for l := levels - 1; l >= 0; l-- {
				capRem[l][anc[l][di]] += load
			}
		}
		return false
	}
	return rec(0)
}

// TestSpreadCapsDifferential is the satellite property test: whenever
// brute-force enumeration finds ANY caps-respecting relabeling,
// SpreadAcrossDomainsWith must succeed (never the infeasibility error),
// and CheckCaps must agree in both directions — witness on feasible
// instances, certificate on infeasible ones.
func TestSpreadCapsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	feasibleSeen, infeasibleSeen := 0, 0
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(5)
		r := 2
		b := 4 + rng.Intn(8)
		pl := placement.NewPlacement(n, r)
		nodes := make([]int, r)
		for i := 0; i < b; i++ {
			perm := rng.Perm(n)
			copy(nodes, perm[:r])
			if err := pl.Add(nodes); err != nil {
				t.Fatal(err)
			}
		}
		var topo *topology.Topology
		var err error
		racks := 2 + rng.Intn(2)
		if racks > n {
			racks = n
		}
		if rng.Intn(2) == 0 && n >= 4 {
			topo, err = topology.UniformTree(n, 2, 2)
		} else {
			topo, err = topology.Uniform(n, racks)
		}
		if err != nil {
			t.Fatal(err)
		}
		// Random caps: leaf caps around the balanced share (sometimes
		// binding, sometimes not), occasionally an interior cap.
		total := r * b
		nd := topo.NumDomains()
		leafCaps := make([]int, nd)
		for di := range leafCaps {
			leafCaps[di] = total/nd + rng.Intn(5) - 1
			if leafCaps[di] < 0 {
				leafCaps[di] = 0
			}
			if rng.Intn(4) == 0 {
				leafCaps[di] = -1
			}
		}
		if topo.Levels() > 1 && rng.Intn(2) == 0 {
			topo.Tree[0][rng.Intn(len(topo.Tree[0]))].Cap = total/2 + rng.Intn(4)
		}

		caps := make([][]int, topo.Levels())
		for l := range caps {
			caps[l] = make([]int, len(topo.Tree[l]))
			for di := range caps[l] {
				caps[l][di] = -1
				if c := topo.Tree[l][di].Cap; c > 0 {
					caps[l][di] = c
				}
			}
		}
		leaf := topo.Levels() - 1
		for di, c := range leafCaps {
			if c >= 0 && (caps[leaf][di] < 0 || c < caps[leaf][di]) {
				caps[leaf][di] = c
			}
		}
		loads := pl.NodeLoads()
		feasible := bruteFeasible(topo, loads, caps)

		assign, cert, err := placement.CheckCaps(topo, loads, caps)
		if err != nil {
			t.Fatalf("trial %d: CheckCaps error: %v", trial, err)
		}
		if feasible && assign == nil {
			t.Fatalf("trial %d: brute force feasible, CheckCaps returned certificate %v", trial, cert)
		}
		if !feasible && cert == nil {
			t.Fatalf("trial %d: brute force infeasible, CheckCaps returned witness %v", trial, assign)
		}

		s := 1 + rng.Intn(r)
		d := 1 + rng.Intn(nd)
		aware, mapping, serr := placement.SpreadAcrossDomainsWith(pl, topo, s, d, placement.SpreadOpts{Caps: leafCaps})
		if feasible {
			feasibleSeen++
			if serr != nil {
				t.Fatalf("trial %d: feasible caps rejected: %v", trial, serr)
			}
			if len(mapping) != n {
				t.Fatalf("trial %d: mapping has %d entries, want %d", trial, len(mapping), n)
			}
			// The chosen candidate must respect every cap at every level.
			_, leafLoads := placement.DomainHits(aware, topo)
			sums := append([]int64(nil), leafLoads...)
			for l := leaf; l >= 0; l-- {
				for di, load := range sums {
					if caps[l] != nil && caps[l][di] >= 0 && load > int64(caps[l][di]) {
						t.Errorf("trial %d: level %d domain %d holds %d replicas, cap %d",
							trial, l, di, load, caps[l][di])
					}
				}
				if l > 0 {
					up := make([]int64, len(topo.Tree[l-1]))
					for di, dom := range topo.Tree[l] {
						up[dom.Parent] += sums[di]
					}
					sums = up
				}
			}
		} else {
			infeasibleSeen++
			if serr == nil {
				t.Fatalf("trial %d: infeasible caps accepted", trial)
			}
			if !strings.Contains(serr.Error(), "no relabeling satisfies the domain caps") {
				t.Errorf("trial %d: infeasibility error %q lacks the certificate wording", trial, serr)
			}
		}
	}
	if feasibleSeen == 0 || infeasibleSeen == 0 {
		t.Errorf("differential test did not exercise both directions: %d feasible, %d infeasible",
			feasibleSeen, infeasibleSeen)
	}
}

// TestCheckCapsValidation pins the argument checks and the trivial
// uncapped path.
func TestCheckCapsValidation(t *testing.T) {
	topo, err := topology.Uniform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := placement.CheckCaps(topo, []int{1, 2}, nil); err == nil {
		t.Error("short loads accepted")
	}
	if _, _, err := placement.CheckCaps(topo, []int{1, 2, 3, -1}, nil); err == nil {
		t.Error("negative load accepted")
	}
	if _, _, err := placement.CheckCaps(topo, []int{1, 1, 1, 1}, [][]int{{1}}); err == nil {
		t.Error("wrong caps shape accepted")
	}
	assign, cert, err := placement.CheckCaps(topo, []int{3, 1, 4, 1}, nil)
	if err != nil || cert != nil {
		t.Fatalf("uncapped CheckCaps = (%v, %v, %v)", assign, cert, err)
	}
	for nd, di := range assign {
		if di != topo.DomainOf(nd) {
			t.Errorf("uncapped witness moves node %d to domain %d", nd, di)
		}
	}
}
