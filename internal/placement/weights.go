package placement

import (
	"fmt"

	"repro/internal/topology"
)

// This file derives per-object weights from a topology's per-node
// weights, the bridge between heterogeneous clusters (hot nodes serving
// more traffic than cold ones) and the weighted adversary engines
// (adversary.SearchOpts.ObjWeights), which maximize lost WEIGHT instead
// of lost object count.

// ObjectWeights derives a per-object weight vector from topo's node
// weights: an object's weight is the MAXIMUM weight among the nodes
// hosting its replicas — the traffic an object serves is dominated by
// its hottest host, so losing it costs that host's weight. With unit
// node weights every object weighs 1 and weighted damage degenerates to
// the plain object count; ObjectWeights then returns nil (the engines'
// unit-weight convention), so unweighted topologies take the exact
// unweighted code paths.
//
// The weights depend on the placement's labeling: relabeling moves
// objects on and off the hot nodes, which is exactly what a
// weighted-aware spreading pass (SpreadOpts.Weighted) exploits.
func ObjectWeights(pl *Placement, topo *topology.Topology) ([]int64, error) {
	if topo.N != pl.N {
		return nil, fmt.Errorf("placement: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	if !topo.Weighted() {
		return nil, nil
	}
	w := make([]int64, pl.B())
	var buf []int
	for obj, o := range pl.Objects {
		buf = o.Members(buf[:0])
		maxW := 1
		for _, nd := range buf {
			if nw := topo.Weight(nd); nw > maxW {
				maxW = nw
			}
		}
		w[obj] = int64(maxW)
	}
	return w, nil
}

// SumWeights returns the total weight of b objects under w — the
// weighted analogue of the object count b, and the "b" of weighted
// availability (total weight − lost weight). A nil w means unit
// weights, so the sum is b itself.
func SumWeights(w []int64, b int) int64 {
	if w == nil {
		return int64(b)
	}
	var sum int64
	for _, v := range w {
		sum += v
	}
	return sum
}
