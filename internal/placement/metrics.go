package placement

import (
	"fmt"
	"math/rand"
)

// OverlapHistogram reports how strongly objects' replica sets overlap:
// result[o] counts object pairs sharing exactly o nodes. This is the
// placement-level view of the "inter-object correlation" that Yu &
// Gibbons identified as the driver of multi-object availability (the
// paper's Sec. II/III motivation): Simple(x, λ) placements cap the
// number of pairs with overlap > x by construction, while Random only
// makes large overlaps improbable.
//
// All pairs are examined when their number is at most samplePairs;
// otherwise samplePairs random pairs are drawn (deterministically from
// seed) and the counts are scaled estimates. samplePairs <= 0 selects a
// default of 2^20.
func (p *Placement) OverlapHistogram(samplePairs int64, seed int64) ([]int64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if samplePairs <= 0 {
		samplePairs = 1 << 20
	}
	hist := make([]int64, p.R+1)
	b := int64(p.B())
	totalPairs := b * (b - 1) / 2
	if totalPairs == 0 {
		return hist, nil
	}
	if totalPairs <= samplePairs {
		for i := 0; i < p.B(); i++ {
			for j := i + 1; j < p.B(); j++ {
				hist[p.Objects[i].IntersectCount(p.Objects[j])]++
			}
		}
		return hist, nil
	}
	rng := rand.New(rand.NewSource(seed))
	for draw := int64(0); draw < samplePairs; draw++ {
		i := rng.Int63n(b)
		j := rng.Int63n(b - 1)
		if j >= i {
			j++
		}
		hist[p.Objects[i].IntersectCount(p.Objects[j])]++
	}
	// Scale the sample back to the full pair population.
	for o := range hist {
		hist[o] = hist[o] * totalPairs / samplePairs
	}
	return hist, nil
}

// MaxPairOverlap returns the largest replica-set overlap between any two
// objects (exact; O(b²) — intended for analysis, not hot paths).
func (p *Placement) MaxPairOverlap() (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	maxO := 0
	for i := 0; i < p.B(); i++ {
		for j := i + 1; j < p.B(); j++ {
			if o := p.Objects[i].IntersectCount(p.Objects[j]); o > maxO {
				maxO = o
				if maxO == p.R {
					return maxO, nil
				}
			}
		}
	}
	return maxO, nil
}

// LoadImbalance returns max load minus min load across nodes that the
// placement was allowed to use, and the mean load, as a quick fairness
// diagnostic.
func (p *Placement) LoadImbalance() (spread int, mean float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	loads := p.NodeLoads()
	if len(loads) == 0 {
		return 0, 0, fmt.Errorf("placement: no nodes")
	}
	minL, maxL, sum := loads[0], loads[0], 0
	for _, l := range loads {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
		sum += l
	}
	return maxL - minL, float64(sum) / float64(len(loads)), nil
}
