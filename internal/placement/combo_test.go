package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/combin"
)

// paperUnits71R3 are the catalog units for n=71, r=3 (paper Fig. 4):
// n_0 = 69 (partition), n_1 = 69 (STS), n_2 = 71 (complete).
func paperUnits71R3(t *testing.T, s int) []Unit {
	t.Helper()
	units, err := DefaultUnits(71, 3, s, false)
	if err != nil {
		t.Fatal(err)
	}
	return units
}

func TestDefaultUnitsMatchPaperFig4(t *testing.T) {
	units := paperUnits71R3(t, 3)
	if units[0].CapPerMu != 23 { // 69/3
		t.Errorf("x=0 capacity = %d, want 23", units[0].CapPerMu)
	}
	if units[1].CapPerMu != 782 { // C(69,2)/C(3,2)
		t.Errorf("x=1 capacity = %d, want 782", units[1].CapPerMu)
	}
	if units[2].CapPerMu != 57155 { // C(71,3)
		t.Errorf("x=2 capacity = %d, want 57155", units[2].CapPerMu)
	}

	// n=71, r=5, s=3: n_1 = 65 (2-(65,5,1)), n_2 = 65 (3-(65,5,1)).
	units5, err := DefaultUnits(71, 5, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if units5[1].CapPerMu != 208 { // C(65,2)/C(5,2) = 2080/10
		t.Errorf("r=5 x=1 capacity = %d, want 208", units5[1].CapPerMu)
	}
	if units5[2].CapPerMu != 4368 { // C(65,3)/C(5,3) = 43680/10
		t.Errorf("r=5 x=2 capacity = %d, want 4368", units5[2].CapPerMu)
	}
}

func TestDefaultUnitsConstructibleMode(t *testing.T) {
	// In constructible mode the r=4, x=2 unit for n=71 must use the
	// Boolean SQS(64) rather than the (unconstructible) SQS(70).
	units, err := DefaultUnits(71, 4, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	// C(64,3)/C(4,3) = 41664/4 = 10416.
	if units[2].CapPerMu != 10416 {
		t.Errorf("constructible x=2 capacity = %d, want 10416", units[2].CapPerMu)
	}
}

func TestLBAvailComboLemma3(t *testing.T) {
	// λ_0 = 3, λ_1 = 2; s = 2, k = 4:
	// failures = ⌊3·C(4,1)/C(2,1)⌋ + ⌊2·C(4,2)/C(2,2)⌋ = 6 + 12 = 18.
	if got := LBAvailCombo(100, 4, 2, []int{3, 2}); got != 82 {
		t.Errorf("lbAvail_co = %d, want 82", got)
	}
	// Zero lambdas contribute nothing.
	if got := LBAvailCombo(100, 4, 2, []int{0, 0}); got != 100 {
		t.Errorf("lbAvail_co all-zero = %d, want 100", got)
	}
	// Cap at b.
	if got := LBAvailCombo(5, 4, 2, []int{100, 0}); got != 0 {
		t.Errorf("lbAvail_co capped = %d, want 0", got)
	}
}

func TestOptimizeComboSmallAgainstBruteForce(t *testing.T) {
	units := paperUnits71R3(t, 3)
	for _, b := range []int{1, 23, 24, 600, 1200, 2400} {
		for _, k := range []int{3, 4, 5, 6} {
			spec, got, err := OptimizeCombo(b, k, 3, units)
			if err != nil {
				t.Fatalf("OptimizeCombo(b=%d, k=%d): %v", b, k, err)
			}
			if err := spec.Validate(); err != nil {
				t.Fatalf("spec invalid: %v", err)
			}
			if spec.Capacity() < int64(b) {
				t.Fatalf("b=%d k=%d: spec capacity %d violates Eqn. 3", b, k, spec.Capacity())
			}
			want := bruteForceCombo(b, k, 3, units)
			if got != want {
				t.Errorf("b=%d k=%d: DP = %d, brute force = %d (λ = %v)", b, k, got, want, spec.Lambdas)
			}
		}
	}
}

// bruteForceCombo evaluates the recurrence of Eqns. 5–7 by direct
// recursion without memoization — an independent oracle for the DP.
func bruteForceCombo(b, k, s int, units []Unit) int64 {
	var rec func(x int, bPrime int64) int64
	rec = func(x int, bPrime int64) int64 {
		if bPrime <= 0 {
			return 0
		}
		u := units[x]
		t := x + 1
		failNum := int64(u.Mu) * combin.Choose(k, t)
		failDen := combin.Choose(s, t)
		if x == 0 {
			copies := combin.CeilDiv(bPrime, u.CapPerMu)
			v := bPrime - combin.FloorDiv(copies*failNum, failDen)
			if v < 0 {
				return 0
			}
			return v
		}
		best := int64(-1 << 62)
		dMax := combin.CeilDiv(bPrime, u.CapPerMu)
		for d := int64(0); d <= dMax; d++ {
			placed := d * u.CapPerMu
			contribution := placed
			if bPrime < placed {
				contribution = bPrime
			}
			contribution -= combin.FloorDiv(d*failNum, failDen)
			if v := contribution + rec(x-1, bPrime-placed); v > best {
				best = v
			}
		}
		return best
	}
	return rec(s-1, int64(b))
}

func TestOptimizeComboRandomUnitsProperty(t *testing.T) {
	// DP equals the direct recurrence for randomly drawn capacity units —
	// independent of the paper's catalog.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 2 + rng.Intn(3)
		units := make([]Unit, s)
		for x := range units {
			units[x] = Unit{
				X:        x,
				Mu:       1 + rng.Intn(2),
				CapPerMu: int64(3 + rng.Intn(60)),
			}
		}
		b := 1 + rng.Intn(400)
		k := s + rng.Intn(4)
		_, got, err := OptimizeCombo(b, k, s, units)
		if err != nil {
			return false
		}
		return got == bruteForceCombo(b, k, s, units)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestOptimizeComboReconstructionConsistent(t *testing.T) {
	// The reconstructed ⟨λx⟩ must reproduce the DP's bound via Lemma 3
	// whenever the bound is positive.
	units := paperUnits71R3(t, 3)
	for _, b := range []int{600, 1200, 4800, 9600} {
		for _, k := range []int{3, 5, 7} {
			spec, bound, err := OptimizeCombo(b, k, 3, units)
			if err != nil {
				t.Fatal(err)
			}
			if bound <= 0 {
				continue
			}
			if got := LBAvailCombo(int64(b), k, 3, spec.Lambdas); got != bound {
				t.Errorf("b=%d k=%d: Lemma 3 on reconstructed λ %v = %d, DP bound = %d",
					b, k, spec.Lambdas, got, bound)
			}
		}
	}
}

func TestComboBoundSweepMatchesOptimize(t *testing.T) {
	units := paperUnits71R3(t, 3)
	for _, k := range []int{3, 5, 7} {
		sweep, err := ComboBoundSweep(2500, k, 3, units)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []int{0, 1, 23, 600, 1200, 2400, 2500} {
			_, want, err := OptimizeCombo(b, k, 3, units)
			if err != nil {
				t.Fatal(err)
			}
			if sweep[b] != want {
				t.Errorf("k=%d b=%d: sweep = %d, optimize = %d", k, b, sweep[b], want)
			}
		}
	}
	if _, err := ComboBoundSweep(10, 3, 0, nil); err == nil {
		t.Error("s = 0 accepted")
	}
	if _, err := ComboBoundSweep(-1, 3, 3, units); err == nil {
		t.Error("negative bMax accepted")
	}
}

func TestOptimizeComboS1(t *testing.T) {
	units, err := DefaultUnits(71, 3, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	spec, bound, err := OptimizeCombo(100, 2, 1, units)
	if err != nil {
		t.Fatal(err)
	}
	// λ_0 = ceil(100/23) = 5; failures = ⌊5·2/1⌋ = 10.
	if spec.Lambdas[0] != 5 {
		t.Errorf("λ_0 = %d, want 5", spec.Lambdas[0])
	}
	if bound != 90 {
		t.Errorf("bound = %d, want 90", bound)
	}
}

func TestOptimizeComboRejectsBadInput(t *testing.T) {
	units := paperUnits71R3(t, 3)
	if _, _, err := OptimizeCombo(10, 3, 0, nil); err == nil {
		t.Error("s = 0 accepted")
	}
	if _, _, err := OptimizeCombo(10, 3, 3, units[:2]); err == nil {
		t.Error("missing units accepted")
	}
	if _, _, err := OptimizeCombo(-1, 3, 3, units); err == nil {
		t.Error("negative b accepted")
	}
	swapped := []Unit{units[1], units[0], units[2]}
	if _, _, err := OptimizeCombo(10, 3, 3, swapped); err == nil {
		t.Error("misordered units accepted")
	}
}

func TestBuildComboMaterializes(t *testing.T) {
	// Small concrete Combo: n=9, r=3, s=2.
	units, err := DefaultUnits(9, 3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	spec, _, err := OptimizeCombo(20, 3, 2, units)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := BuildCombo(9, 3, spec, 20, SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.B() != 20 {
		t.Errorf("B = %d, want 20", pl.B())
	}
}

func TestBuildComboRejectsOverCapacity(t *testing.T) {
	units, err := DefaultUnits(9, 3, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	spec := ComboSpec{Lambdas: []int{1, 0}, Units: units}
	if _, err := BuildCombo(9, 3, spec, 100, SimpleOptions{}); err == nil {
		t.Error("over-capacity spec accepted")
	}
}

func TestComboSpecValidate(t *testing.T) {
	units := []Unit{{X: 0, Mu: 2, CapPerMu: 10}, {X: 1, Mu: 1, CapPerMu: 50}}
	good := ComboSpec{Lambdas: []int{4, 3}, Units: units}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if got := good.Capacity(); got != 2*10+3*50 {
		t.Errorf("Capacity = %d, want 170", got)
	}
	bad := ComboSpec{Lambdas: []int{3, 3}, Units: units} // 3 not multiple of μ=2
	if err := bad.Validate(); err == nil {
		t.Error("λ not multiple of μ accepted")
	}
	mismatched := ComboSpec{Lambdas: []int{2}, Units: units}
	if err := mismatched.Validate(); err == nil {
		t.Error("length mismatch accepted")
	}
}
