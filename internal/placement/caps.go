package placement

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// This file is the standalone capacity-feasibility checker behind the
// capped spreading pass: given per-abstract-node replica loads and
// per-domain replica caps at ANY level of the topology tree (the
// QoS/bandwidth-style constraints of Rehn-Sonigo's tree networks), it
// either certifies feasibility with an explicit witness assignment of
// abstract nodes to leaf domains, or proves infeasibility with a
// human-readable pigeonhole certificate naming the violated subtree.
// SpreadAcrossDomainsWith wires the witness in as a repair-fallback
// candidate, so its "no relabeling satisfies the domain caps" error
// fires exactly when the certificate exists.

// unlimitedCap is the internal sentinel for "no cap": far above any
// real replica total, low enough that sums of a few sentinels cannot
// overflow int64.
const unlimitedCap = int64(1) << 62

// satCapAdd adds two cap values, saturating at the unlimited sentinel
// so sums of several unlimited entries cannot overflow int64.
func satCapAdd(a, b int64) int64 {
	if s := a + b; s >= 0 && s < unlimitedCap {
		return s
	}
	return unlimitedCap
}

// CapCert explains why no assignment of node loads can satisfy a cap
// set. On a pigeonhole certificate the named domain's subtree must
// absorb at least Need replicas (every physical slot in it receives
// exactly one abstract node, and even the globally lightest nodes sum
// past the cap — or the rest of the tree is too capped to absorb the
// difference) yet allows only Cap, so Need > Cap. When infeasibility is
// instead proved by the exhaustive assignment search (a joint violation
// across several subtrees, with no single-subtree pigeonhole), the cert
// names the tightest capped subtree as the best explanation and Need is
// that subtree's minimum slot load, which may be <= Cap; Reason always
// says which kind it is.
type CapCert struct {
	Level  int    // level of the violated domain (0 = top)
	Domain int    // domain index at that level
	Name   string // domain name
	Cap    int64  // replicas the domain allows
	Need   int64  // replicas its subtree must absorb (see doc for exhaustive certs)
	Reason string // rendered explanation
}

func (c *CapCert) String() string { return c.Reason }

// leafSig identifies interchangeable leaves during the assignment
// search: same parent (hence identical ancestor state), same remaining
// slots and same remaining cap means the branches are symmetric.
type leafSig struct {
	parent int
	slots  int
	capRem int64
}

// checkCapsMaxSteps bounds the assignment search. The pigeonhole
// pre-checks plus the smallest-completion prune decide every instance
// arising from balanced placements almost immediately; the budget is a
// backstop against adversarial load multisets (the underlying problem
// contains 3-partition). Hitting it returns an error, not a
// certificate: CheckCaps never claims infeasibility it has not proved.
const checkCapsMaxSteps = 4 << 20

// CheckCaps decides whether the per-abstract-node replica loads can be
// assigned to topo's leaf domains — every leaf receiving exactly as
// many abstract nodes as it has physical slots — without any domain's
// subtree exceeding its replica cap, at any level.
//
// caps[level][di] is the cap of domain di at that level, negative for
// unlimited; a nil level means the whole level is unlimited, and a nil
// caps uses the topology's own Domain.Cap annotations (LevelCaps).
//
// Exactly one of the first two results is non-nil: a witness assignment
// assign[abstract] = leaf-domain index proving feasibility, or a
// certificate naming a violated subtree. err reports invalid arguments,
// or a search-budget exhaustion on adversarial instances (see
// checkCapsMaxSteps) — never plain infeasibility.
func CheckCaps(topo *topology.Topology, loads []int, caps [][]int) ([]int, *CapCert, error) {
	n := topo.N
	if len(loads) != n {
		return nil, nil, fmt.Errorf("placement: %d loads for %d nodes", len(loads), n)
	}
	for nd, l := range loads {
		if l < 0 {
			return nil, nil, fmt.Errorf("placement: node %d load %d negative", nd, l)
		}
	}
	if caps == nil {
		caps = topo.LevelCaps()
	}
	if caps == nil {
		// No cap anywhere: the identity assignment trivially fits.
		assign := make([]int, n)
		for nd := range assign {
			assign[nd] = topo.DomainOf(nd)
		}
		return assign, nil, nil
	}
	levels := topo.Levels()
	if len(caps) != levels {
		return nil, nil, fmt.Errorf("placement: caps cover %d levels, topology has %d", len(caps), levels)
	}
	capRem := make([][]int64, levels)
	for l := 0; l < levels; l++ {
		doms := topo.Tree[l]
		if caps[l] != nil && len(caps[l]) != len(doms) {
			return nil, nil, fmt.Errorf("placement: %d caps for %d domains at level %d", len(caps[l]), len(doms), l)
		}
		capRem[l] = make([]int64, len(doms))
		for di := range doms {
			capRem[l][di] = unlimitedCap
			if caps[l] != nil && caps[l][di] >= 0 {
				capRem[l][di] = int64(caps[l][di])
			}
		}
	}

	// Sorted views of the load multiset: descending for the assignment
	// order (heavy nodes first), ascending prefix sums for the
	// pigeonhole minimum a subtree of s slots must absorb.
	nodesDesc := make([]int, n)
	for i := range nodesDesc {
		nodesDesc[i] = i
	}
	sort.Slice(nodesDesc, func(a, b int) bool {
		if loads[nodesDesc[a]] != loads[nodesDesc[b]] {
			return loads[nodesDesc[a]] > loads[nodesDesc[b]]
		}
		return nodesDesc[a] < nodesDesc[b]
	})
	prefixAsc := make([]int64, n+1)
	{
		asc := make([]int64, n)
		for i, nd := range nodesDesc {
			asc[n-1-i] = int64(loads[nd])
		}
		for i, l := range asc {
			prefixAsc[i+1] = prefixAsc[i] + l
		}
	}
	totalLoad := prefixAsc[n]

	// Pigeonhole pre-checks, for crisp certificates: (a) even the
	// globally lightest nodes overfill the subtree's slots; (b) the
	// sibling caps force more load in than the cap allows.
	for l := 0; l < levels; l++ {
		var levelCapSum int64 // saturating: unlimitedCap once any sibling is uncapped
		for _, c := range capRem[l] {
			levelCapSum = satCapAdd(levelCapSum, c)
		}
		for di, d := range topo.Tree[l] {
			c := capRem[l][di]
			if c >= unlimitedCap {
				continue
			}
			slots := len(d.Nodes)
			if need := prefixAsc[slots]; need > c {
				childWord := "nodes"
				if l < levels-1 {
					childWord = topo.LevelName(l+1) + "s"
				}
				return nil, &CapCert{
					Level: l, Domain: di, Name: d.Name, Cap: c, Need: need,
					Reason: fmt.Sprintf("%s %s allows %d replicas but its %s need %d",
						topo.LevelName(l), d.Name, c, childWord, need),
				}, nil
			}
			if levelCapSum < unlimitedCap {
				if forced := totalLoad - (levelCapSum - c); forced > c {
					return nil, &CapCert{
						Level: l, Domain: di, Name: d.Name, Cap: c, Need: forced,
						Reason: fmt.Sprintf("%s %s allows %d replicas but at least %d of the placement's %d must land in it (its sibling %ss absorb at most %d)",
							topo.LevelName(l), d.Name, c, forced, totalLoad, topo.LevelName(l), levelCapSum-c),
					}, nil
				}
			}
		}
	}

	// Ancestor chain of every leaf, per level.
	leafLevel := levels - 1
	leaves := topo.Leaves()
	anc := make([][]int, levels)
	for l := range anc {
		anc[l] = make([]int, len(leaves))
	}
	for di := range leaves {
		cur := di
		for l := leafLevel; l >= 0; l-- {
			anc[l][di] = cur
			if l > 0 {
				cur = topo.Tree[l][cur].Parent
			}
		}
	}
	slotRem := make([][]int, levels)
	for l := 0; l < levels; l++ {
		slotRem[l] = make([]int, len(topo.Tree[l]))
		for di, d := range topo.Tree[l] {
			slotRem[l][di] = len(d.Nodes)
		}
	}

	assign := make([]int, n)
	// Per-depth symmetry scratch (few distinct signatures per step; a
	// linear scan beats a per-node map allocation in a search bounded at
	// millions of steps).
	triedAt := make([][]leafSig, n)
	steps := 0
	overBudget := false
	var dfs func(idx int) bool
	dfs = func(idx int) bool {
		if idx == n {
			return true
		}
		if steps++; steps > checkCapsMaxSteps {
			overBudget = true
			return false
		}
		v := nodesDesc[idx]
		load := int64(loads[v])
		tried := triedAt[idx][:0]
		for di := range leaves {
			if slotRem[leafLevel][di] == 0 {
				continue
			}
			sig := leafSig{parent: leaves[di].Parent, slots: slotRem[leafLevel][di], capRem: capRem[leafLevel][di]}
			seen := false
			for _, t := range tried {
				if t == sig {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			tried = append(tried, sig)
			triedAt[idx] = tried
			ok := true
			for l := leafLevel; l >= 0; l-- {
				if capRem[l][anc[l][di]] < load {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for l := leafLevel; l >= 0; l-- {
				a := anc[l][di]
				capRem[l][a] -= load
				slotRem[l][a]--
			}
			// Smallest-completion prune: the slots still empty in each
			// ancestor must at least absorb the lightest unassigned
			// loads (unassigned = the ascending prefix, since nodes are
			// consumed heaviest-first).
			feasible := true
			for l := leafLevel; l >= 0; l-- {
				a := anc[l][di]
				if capRem[l][a] < unlimitedCap/2 && prefixAsc[slotRem[l][a]] > capRem[l][a] {
					feasible = false
					break
				}
			}
			if feasible {
				assign[v] = di
				if dfs(idx + 1) {
					return true
				}
			}
			for l := leafLevel; l >= 0; l-- {
				a := anc[l][di]
				capRem[l][a] += load
				slotRem[l][a]++
			}
			if overBudget {
				return false
			}
		}
		return false
	}
	if dfs(0) {
		return assign, nil, nil
	}
	if overBudget {
		return nil, nil, fmt.Errorf("placement: cap feasibility search exceeded %d states (adversarial load multiset)", checkCapsMaxSteps)
	}
	// Exhaustively infeasible without a single-subtree pigeonhole: name
	// the tightest capped subtree as the best explanation.
	bestSlack := int64(1) << 62
	var cert *CapCert
	for l := 0; l < levels; l++ {
		for di, d := range topo.Tree[l] {
			c := capRem[l][di]
			if c >= unlimitedCap {
				continue
			}
			need := prefixAsc[len(d.Nodes)]
			if slack := c - need; slack < bestSlack {
				bestSlack = slack
				cert = &CapCert{
					Level: l, Domain: di, Name: d.Name, Cap: c, Need: need,
					Reason: fmt.Sprintf("exhaustive search proves no assignment of the node loads satisfies the caps jointly; tightest capped subtree: %s %s (cap %d, minimum slot load %d)",
						topo.LevelName(l), d.Name, c, need),
				}
			}
		}
	}
	if cert == nil {
		// Unreachable: with every domain unlimited the DFS cannot fail.
		return nil, nil, fmt.Errorf("placement: cap feasibility search failed without a capped domain")
	}
	return nil, cert, nil
}

// mergedLevelCaps combines topo's own Domain.Cap annotations with extra
// per-leaf caps (the SpreadOpts.Caps convention: negative = unlimited)
// into the CheckCaps caps form, or nil when no cap exists anywhere.
func mergedLevelCaps(topo *topology.Topology, leafCaps []int) [][]int {
	caps := topo.LevelCaps()
	hasExtra := false
	for _, c := range leafCaps {
		if c >= 0 {
			hasExtra = true
			break
		}
	}
	if !hasExtra {
		return caps
	}
	if caps == nil {
		caps = make([][]int, topo.Levels())
		for l := range caps {
			caps[l] = make([]int, len(topo.Tree[l]))
			for di := range caps[l] {
				caps[l][di] = -1
			}
		}
	}
	leaf := topo.Levels() - 1
	for di, c := range leafCaps {
		if c < 0 {
			continue
		}
		if caps[leaf][di] < 0 || c < caps[leaf][di] {
			caps[leaf][di] = c
		}
	}
	return caps
}

// capTreeInt64 converts the CheckCaps caps form into the internal
// sentinel form hierMapping and the candidate filter consume.
func capTreeInt64(topo *topology.Topology, caps [][]int) [][]int64 {
	tree := make([][]int64, topo.Levels())
	for l := range tree {
		tree[l] = make([]int64, len(topo.Tree[l]))
		for di := range tree[l] {
			tree[l][di] = unlimitedCap
			if caps[l] != nil && caps[l][di] >= 0 {
				tree[l][di] = int64(caps[l][di])
			}
		}
	}
	return tree
}

// mappingRespectsCaps reports whether the relabeling mapping keeps
// every domain's subtree replica load within capTree at every level.
func mappingRespectsCaps(mapping []int, nodeLoads []int, topo *topology.Topology, capTree [][]int64) bool {
	levels := topo.Levels()
	loadAt := make([]int64, len(topo.Leaves()))
	for abstract, phys := range mapping {
		loadAt[topo.DomainOf(phys)] += int64(nodeLoads[abstract])
	}
	for l := levels - 1; l >= 0; l-- {
		for di, load := range loadAt {
			if load > capTree[l][di] {
				return false
			}
		}
		if l > 0 {
			up := make([]int64, len(topo.Tree[l-1]))
			for di, d := range topo.Tree[l] {
				up[d.Parent] += loadAt[di]
			}
			loadAt = up
		}
	}
	return true
}

// assignMapping turns a CheckCaps witness (abstract node → leaf domain)
// into a relabeling (abstract node → physical node): each leaf's
// assigned abstract nodes fill its sorted physical slots in ascending
// abstract-id order.
func assignMapping(topo *topology.Topology, assign []int) []int {
	perLeaf := make([][]int, len(topo.Leaves()))
	for abstract, di := range assign {
		perLeaf[di] = append(perLeaf[di], abstract)
	}
	mapping := make([]int, len(assign))
	for di, abstracts := range perLeaf {
		slots := append([]int(nil), topo.Leaves()[di].Nodes...)
		sort.Ints(slots)
		for i, abstract := range abstracts {
			mapping[abstract] = slots[i]
		}
	}
	return mapping
}
