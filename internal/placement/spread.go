package placement

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/combin"
	"repro/internal/search"
	"repro/internal/topology"
)

// This file adds failure-domain awareness to placements. Combo and
// Simple construct placements over abstract node ids 0..n-1; a Topology
// names which physical nodes share a rack or zone. SpreadAcrossDomains
// chooses a relabeling (abstract id → physical node) so that each
// object's replicas land in as many distinct domains as possible,
// hardening the placement against correlated whole-domain failures while
// preserving every node-level property (the node adversary is label
// blind, so Avail under k independent failures is unchanged).

// Relabel returns a copy of pl with node ids renamed through mapping:
// replica node v becomes mapping[v]. mapping must be a permutation of
// [0, N).
func Relabel(pl *Placement, mapping []int) (*Placement, error) {
	if len(mapping) != pl.N {
		return nil, fmt.Errorf("placement: mapping covers %d nodes, want %d", len(mapping), pl.N)
	}
	seen := make([]bool, pl.N)
	for v, p := range mapping {
		if p < 0 || p >= pl.N {
			return nil, fmt.Errorf("placement: mapping[%d] = %d out of range [0, %d)", v, p, pl.N)
		}
		if seen[p] {
			return nil, fmt.Errorf("placement: mapping is not a permutation (%d hit twice)", p)
		}
		seen[p] = true
	}
	out := NewPlacement(pl.N, pl.R)
	nodes := make([]int, 0, pl.R)
	var buf []int
	for _, o := range pl.Objects {
		buf = o.Members(buf[:0])
		nodes = nodes[:0]
		for _, nd := range buf {
			nodes = append(nodes, mapping[nd])
		}
		if err := out.Add(nodes); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SpreadStats summarizes how an object's replicas spread over failure
// domains: Histogram[c] counts objects whose replicas touch exactly c
// distinct domains.
type SpreadStats struct {
	MinDomains int
	MaxDomains int
	Histogram  map[int]int
}

// DomainSpread computes per-object domain-spread statistics of pl under
// topo.
func DomainSpread(pl *Placement, topo *topology.Topology) (SpreadStats, error) {
	if err := pl.Validate(); err != nil {
		return SpreadStats{}, err
	}
	if topo.N != pl.N {
		return SpreadStats{}, fmt.Errorf("placement: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	stats := SpreadStats{MinDomains: pl.N + 1, Histogram: make(map[int]int)}
	seen := make([]int, topo.NumDomains())
	var buf []int
	for obj, o := range pl.Objects {
		buf = o.Members(buf[:0])
		distinct := 0
		for _, nd := range buf {
			di := topo.DomainOf(nd)
			if seen[di] != obj+1 {
				seen[di] = obj + 1
				distinct++
			}
		}
		stats.Histogram[distinct]++
		if distinct < stats.MinDomains {
			stats.MinDomains = distinct
		}
		if distinct > stats.MaxDomains {
			stats.MaxDomains = distinct
		}
	}
	if pl.B() == 0 {
		stats.MinDomains = 0
	}
	return stats, nil
}

// DomainHits aggregates, per domain of topo, the (object, replicas
// inside the domain) hits of pl in ascending object order, plus each
// domain's total replica load. It is the one construction both domain
// search adapters — package adversary's engine instance and this
// package's never-worse evaluator — build their candidates from.
func DomainHits(pl *Placement, topo *topology.Topology) ([][]search.Hit, []int64) {
	nd := topo.NumDomains()
	perDomain := make([]map[int32]int32, nd)
	loads := make([]int64, nd)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, node := range buf {
			di := topo.DomainOf(node)
			if perDomain[di] == nil {
				perDomain[di] = make(map[int32]int32)
			}
			perDomain[di][int32(obj)]++
			loads[di]++
		}
	}
	hits := make([][]search.Hit, nd)
	for di := 0; di < nd; di++ {
		h := make([]search.Hit, 0, len(perDomain[di]))
		for obj, c := range perDomain[di] {
			h = append(h, search.Hit{Obj: obj, C: c})
		}
		sort.Slice(h, func(a, b int) bool { return h[a].Obj < h[b].Obj })
		hits[di] = h
	}
	return hits, loads
}

// newDomainDamage adapts a placement and topology to the unified search
// core so the never-worse check runs on the very code the adversary
// engines run (package adversary cannot be imported here — it depends on
// placement). Candidates are all D domains in descending replica-load
// order (weighted load under a non-nil per-object weight vector w);
// object j fails once s of its replicas lie in the chosen domains. The
// exhaustive driver never consults the index→domain mapping, so none is
// kept.
func newDomainDamage(pl *Placement, topo *topology.Topology, s, d int, w []int64) *search.HitInstance {
	byDomain, loads := DomainHits(pl, topo)
	nd := topo.NumDomains()
	if w != nil {
		for di, hl := range byDomain {
			var sum int64
			for _, h := range hl {
				sum += int64(h.C) * w[h.Obj]
			}
			loads[di] = sum
		}
	}
	order := make([]int, nd)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	hitLists := make([][]search.Hit, nd)
	ordered := make([]int64, nd)
	for i, di := range order {
		hitLists[i] = byDomain[di]
		ordered[i] = loads[di]
	}
	in := search.NewHitInstance(s, pl.B())
	in.Reinit(d, hitLists, ordered)
	in.SetWeights(w)
	return in
}

// WorstDomainDamage returns the exact number of objects failed by the
// worst d-whole-domain failure, evaluated by the unified search core's
// exhaustive driver over all C(D, d) domain subsets. It is the
// placement-side evaluator behind SpreadAcrossDomains' never-worse
// guarantee and always returns the same damage as package adversary's
// DomainExhaustive (the candidate sets differ — this adapter keeps
// unloaded domains, the adversary prunes them — so only the result,
// not the visited-state count, is comparable).
func WorstDomainDamage(pl *Placement, topo *topology.Topology, s, d int) (int, error) {
	return WorstDomainDamageWeighted(pl, topo, s, d, nil)
}

// WorstDomainDamageWeighted is WorstDomainDamage scoring lost weight:
// the exact maximum Σ w[obj] over the objects failed by any d-domain
// failure. w is a per-object weight vector (len b, entries >= 0); nil
// reduces to WorstDomainDamage. Derive w from a topology's node weights
// with ObjectWeights.
func WorstDomainDamageWeighted(pl *Placement, topo *topology.Topology, s, d int, w []int64) (int, error) {
	if w != nil {
		if len(w) != pl.B() {
			return 0, fmt.Errorf("placement: %d object weights for %d objects", len(w), pl.B())
		}
		for obj, v := range w {
			if v < 0 {
				return 0, fmt.Errorf("placement: object %d weight %d negative", obj, v)
			}
		}
	}
	if err := pl.Validate(); err != nil {
		return 0, err
	}
	if topo.N != pl.N {
		return 0, fmt.Errorf("placement: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	if s < 1 || s > pl.R {
		return 0, fmt.Errorf("placement: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if d < 1 || d > topo.NumDomains() {
		return 0, fmt.Errorf("placement: d = %d must satisfy 1 <= d <= domains = %d", d, topo.NumDomains())
	}
	return search.Exhaustive(newDomainDamage(pl, topo, s, d, w)).Failed, nil
}

// maxExactSpreadSubsets caps the C(D, d) enumeration inside
// SpreadAcrossDomains; beyond it, candidates are ranked by the
// top-loaded-domains proxy instead of the exact worst case.
const maxExactSpreadSubsets = 200_000

// WorstDomainDamageAt is WorstDomainDamage with the adversary failing
// whole domains of the given topology level (0 = top, topology.Leaf =
// the leaves), evaluated on the flat Collapse of that level.
func WorstDomainDamageAt(pl *Placement, topo *topology.Topology, level, s, d int) (int, error) {
	l, err := topo.ResolveLevel(level)
	if err != nil {
		return 0, fmt.Errorf("placement: %w", err)
	}
	if l != topo.Levels()-1 {
		if topo, err = topo.Collapse(l); err != nil {
			return 0, err
		}
	}
	return WorstDomainDamage(pl, topo, s, d)
}

// SpreadOpts tunes SpreadAcrossDomainsWith; the zero value matches
// SpreadAcrossDomains.
type SpreadOpts struct {
	// Caps[di] bounds the total replicas the relabeled placement may put
	// in leaf domain di (a rack has nodes, but also disks and uplinks);
	// a negative entry means unlimited. Non-nil Caps must cover every
	// leaf domain. Caps combine (by min) with the topology's own
	// Domain.Cap annotations, which may sit at any level — zone and
	// region caps are enforced too. Candidate mappings that would exceed
	// a cap are discarded — including the identity, so the never-worse
	// guarantee then holds relative to the best cap-feasible candidate
	// instead of the oblivious layout. CheckCaps decides feasibility: its
	// witness assignment always competes as a repair fallback, so the
	// infeasibility error fires exactly when CheckCaps proves a
	// certificate (no relabeling at all can satisfy the caps).
	Caps []int
	// Weighted scores every candidate by its weighted worst-case damage
	// (lost weight, with per-object weights derived from the topology's
	// node weights via ObjectWeights on each candidate's own labeling)
	// instead of the failed-object count. On unweighted topologies it is
	// a no-op. The never-worse guarantee then holds in weight units:
	// the result never loses more weight than the identity at any level.
	Weighted bool
	// Telemetry, when non-nil, accumulates the candidate-scoring search
	// counters (exact evaluations, memo hits, warm seeds, rebuilds)
	// across every exact level. See SpreadTelemetry.
	Telemetry *SpreadTelemetry
	// ProbeWorkers > 1 fans each exact level's candidate scoring out
	// over that many goroutines. Selection is unchanged at any worker
	// count — candidate damages are exact, so the winning mapping is
	// identical to the serial scan's — and the Evals/MemoHits/Rebuilds
	// telemetry totals match the serial scan too (duplicate candidates
	// are deduplicated by placement signature up front, exactly what
	// the serial memo catches); only WarmSeeds may differ, since warm
	// witnesses chain per worker stripe instead of across the whole
	// candidate order. 0 or 1 is the serial scan.
	ProbeWorkers int
}

// SpreadAcrossDomains relabels pl's abstract node ids onto physical
// nodes so that each object's r replicas land in maximally distinct
// failure domains, and returns the relabeled placement together with the
// mapping used (mapping[abstract] = physical).
//
// Candidate mappings are evaluated — the identity, a striped and a
// conflict-minimizing greedy assignment over the leaf domains, and (on
// hierarchies) their level-recursive variants, which separate each
// object's replicas across the top level first and then recursively
// within each subtree. Each candidate is scored by its worst-case
// d-domain damage at every level of the tree (leaf level first;
// d clamps to the level's domain count), candidates worse than the
// identity at any level are discarded, and the survivor with the
// lexicographically least damage vector wins (ties: candidate order,
// identity first). Because the identity competes, the result is never
// worse than the domain-oblivious placement under the exact adversary
// at ANY level of the hierarchy whenever C(D_level, d) <= 200000 (the
// exact evaluation regime; larger searches fall back to a
// top-loaded-domains proxy, which preserves the guarantee in spirit
// but not provably).
func SpreadAcrossDomains(pl *Placement, topo *topology.Topology, s, d int) (*Placement, []int, error) {
	return SpreadAcrossDomainsWith(pl, topo, s, d, SpreadOpts{})
}

// SpreadAcrossDomainsWith is SpreadAcrossDomains with explicit options
// (per-leaf-domain replica caps).
func SpreadAcrossDomainsWith(pl *Placement, topo *topology.Topology, s, d int, opts SpreadOpts) (*Placement, []int, error) {
	if err := pl.Validate(); err != nil {
		return nil, nil, err
	}
	if topo.N != pl.N {
		return nil, nil, fmt.Errorf("placement: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	if s < 1 || s > pl.R {
		return nil, nil, fmt.Errorf("placement: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if d < 1 || d > topo.NumDomains() {
		return nil, nil, fmt.Errorf("placement: d = %d must satisfy 1 <= d <= domains = %d", d, topo.NumDomains())
	}
	if opts.Caps != nil && len(opts.Caps) != topo.NumDomains() {
		return nil, nil, fmt.Errorf("placement: %d caps for %d leaf domains", len(opts.Caps), topo.NumDomains())
	}

	identity := make([]int, pl.N)
	for i := range identity {
		identity[i] = i
	}
	var candidates [][]int
	identityIdx := -1
	add := func(mapping []int, ok bool) {
		if ok && mapping != nil {
			candidates = append(candidates, mapping)
		}
	}
	levelCaps := mergedLevelCaps(topo, opts.Caps)
	if levelCaps == nil {
		identityIdx = 0
		add(identity, true)
		add(stripedMapping(pl, topo), true)
		add(conflictGreedyMapping(pl, topo), true)
		if topo.Levels() > 1 {
			add(hierMapping(pl, topo, false, nil))
			add(hierMapping(pl, topo, true, nil))
		}
	} else {
		// CheckCaps decides feasibility up front: a certificate means NO
		// relabeling can fit, so the error names it; otherwise its
		// witness assignment always competes, and every heuristic
		// candidate that happens to fit the caps competes too (the
		// identity among them, preserving never-worse when it fits).
		capTree := capTreeInt64(topo, levelCaps)
		nodeLoads := pl.NodeLoads()
		assign, cert, capErr := CheckCaps(topo, nodeLoads, levelCaps)
		if cert != nil {
			return nil, nil, fmt.Errorf("placement: no relabeling satisfies the domain caps: %s", cert)
		}
		fits := func(mapping []int) bool {
			return mapping != nil && mappingRespectsCaps(mapping, nodeLoads, topo, capTree)
		}
		if fits(identity) {
			identityIdx = 0
			add(identity, true)
		}
		if m := stripedMapping(pl, topo); fits(m) {
			add(m, true)
		}
		if m := conflictGreedyMapping(pl, topo); fits(m) {
			add(m, true)
		}
		add(hierMapping(pl, topo, false, capTree))
		add(hierMapping(pl, topo, true, capTree))
		if assign != nil {
			add(assignMapping(topo, assign), true)
		}
		if len(candidates) == 0 {
			// Only reachable when CheckCaps exhausted its search budget
			// (capErr != nil) and no heuristic candidate fits either.
			if capErr != nil {
				return nil, nil, capErr
			}
			return nil, nil, fmt.Errorf("placement: no relabeling satisfies the domain caps")
		}
	}

	// Candidates are scored by weighted damage when asked (per-object
	// weights derived from each candidate's own labeling — relabeling
	// moves objects on and off the hot nodes).
	useWeights := opts.Weighted && topo.Weighted()

	// Score every candidate at every level, finest first. Choose
	// returns 0 on int64 overflow — treat that as "too many subsets",
	// not as under the cap.
	type levelEval struct {
		flat  *topology.Topology
		d     int
		exact bool
	}
	var levels []levelEval
	for l := topo.Levels() - 1; l >= 0; l-- {
		flat := topo
		if l != topo.Levels()-1 {
			var err error
			if flat, err = topo.Collapse(l); err != nil {
				return nil, nil, err
			}
		}
		dl := d
		if nd := flat.NumDomains(); dl > nd {
			dl = nd
		}
		subsets := combin.Choose(flat.NumDomains(), dl)
		levels = append(levels, levelEval{flat: flat, d: dl, exact: subsets > 0 && subsets <= maxExactSpreadSubsets})
	}
	mapped := make([]*Placement, len(candidates))
	objWs := make([][]int64, len(candidates))
	for i, mapping := range candidates {
		m, err := Relabel(pl, mapping)
		if err != nil {
			return nil, nil, err
		}
		mapped[i] = m
		if useWeights {
			if objWs[i], err = ObjectWeights(m, topo); err != nil {
				return nil, nil, err
			}
		}
	}
	// Score level by level so each exact level's spreadSession carries
	// its memo and warm witness across every candidate: candidate
	// mappings permute one placement, so consecutive candidates share
	// worst attacks (warm seeds) and duplicates — the identity most
	// often — share whole evaluations (memo hits).
	tel := opts.Telemetry
	if tel == nil {
		tel = &SpreadTelemetry{}
	}
	damages := make([][]int, len(candidates))
	for i := range damages {
		damages[i] = make([]int, len(levels))
	}
	for li, le := range levels {
		if le.exact {
			if w := opts.ProbeWorkers; w > 1 && len(candidates) > 1 {
				scoreExactLevelParallel(damages, li, mapped, objWs, le.flat, s, le.d, pl.B(), tel, w)
			} else {
				ss := newSpreadSession(s, le.d, pl.B(), le.flat.NumDomains(), spreadMemoCap, tel)
				for i := range candidates {
					damages[i][li] = ss.damage(mapped[i], le.flat, objWs[i])
				}
			}
		} else {
			for i := range candidates {
				damages[i][li] = topLoadedDamage(mapped[i], le.flat, s, le.d, objWs[i])
			}
		}
	}
	bestIdx := -1
	for i := range candidates {
		if identityIdx >= 0 && i != identityIdx && worseAtAnyLevel(damages[i], damages[identityIdx]) {
			continue
		}
		if bestIdx < 0 || lessVec(damages[i], damages[bestIdx]) {
			bestIdx = i
		}
	}
	return mapped[bestIdx], candidates[bestIdx], nil
}

// scoreExactLevelParallel scores one exact level's candidates over
// workers goroutines, filling damages[i][li] for every candidate i.
// Candidates are deduplicated by weighted placement signature first —
// the duplicates the serial scan's memo would catch — then the unique
// placements are dealt to workers in deterministic stripes, each worker
// scoring its stripe through a private spreadSession (warm witnesses
// chain within the stripe). Damages are exact, so the filled vector —
// hence the spread pass's selection — is byte-identical to the serial
// scan at any worker count.
func scoreExactLevelParallel(damages [][]int, li int, mapped []*Placement, objWs [][]int64,
	flat *topology.Topology, s, d, b int, tel *SpreadTelemetry, workers int) {
	n := len(mapped)
	sigs := make([]Sig, n)
	uniq := make(map[Sig]int, n) // signature → first candidate index
	var order []int              // first-candidate indexes, in candidate order
	for i := range mapped {
		sigs[i] = WeightSignature(Signature(mapped[i]), objWs[i])
		if _, ok := uniq[sigs[i]]; !ok {
			uniq[sigs[i]] = i
			order = append(order, i)
		}
	}
	if workers > len(order) {
		workers = len(order)
	}
	scored := make([]int, n) // damage per first-candidate index
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var wtel SpreadTelemetry
			ss := newSpreadSession(s, d, b, flat.NumDomains(), spreadMemoCap, &wtel)
			for oi := w; oi < len(order); oi += workers {
				i := order[oi]
				scored[i] = ss.damage(mapped[i], flat, objWs[i])
			}
			mu.Lock()
			tel.add(wtel)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for i := range mapped {
		damages[i][li] = scored[uniq[sigs[i]]]
	}
	// The deduplicated candidates are the serial scan's memo hits: count
	// them so the Evals/MemoHits/Rebuilds totals match serial exactly.
	tel.Evals += int64(n - len(order))
	tel.MemoHits += int64(n - len(order))
}

// worseAtAnyLevel reports whether a does more damage than b at any
// level — the per-level never-worse filter against the identity.
func worseAtAnyLevel(a, b []int) bool {
	for i := range a {
		if a[i] > b[i] {
			return true
		}
	}
	return false
}

// lessVec is strict lexicographic order on damage vectors (leaf level
// first).
func lessVec(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// hierMapping assigns abstract node ids to physical nodes one level at
// a time: ids are distributed over the top-level domains first (striped
// round-robin, or conflict-minimizing greedy when greedy is set), then
// recursively within each subtree, so each object's replicas separate
// at the coarsest level before the finer ones. capTree, when non-nil,
// bounds the replica load each domain's subtree may receive at EVERY
// level (unlimitedCap = no cap; a subtree's effective budget is the
// minimum of its own cap and its children's summed budgets); an
// infeasible distribution reports ok = false and the candidate is
// dropped.
func hierMapping(pl *Placement, topo *topology.Topology, greedy bool, capTree [][]int64) ([]int, bool) {
	loads := pl.NodeLoads()
	numLevels := topo.Levels()
	// children[level][di] lists the level+1 domains nested in di.
	children := make([][][]int, numLevels-1)
	for level := 0; level < numLevels-1; level++ {
		children[level] = make([][]int, len(topo.Tree[level]))
		for ci, child := range topo.Tree[level+1] {
			children[level][child.Parent] = append(children[level][child.Parent], ci)
		}
	}
	// capOf[level][di]: the subtree's effective replica budget — its own
	// cap tightened by the children's summed budgets (saturating at the
	// unlimited sentinel so several unlimited children cannot overflow
	// into a negative budget); nil when caps are unlimited.
	var capOf [][]int64
	if capTree != nil {
		capOf = make([][]int64, numLevels)
		capOf[numLevels-1] = append([]int64(nil), capTree[numLevels-1]...)
		for level := numLevels - 2; level >= 0; level-- {
			capOf[level] = make([]int64, len(topo.Tree[level]))
			for ci, child := range topo.Tree[level+1] {
				capOf[level][child.Parent] = satCapAdd(capOf[level][child.Parent], capOf[level+1][ci])
			}
			for di, own := range capTree[level] {
				if own < capOf[level][di] {
					capOf[level][di] = own
				}
			}
		}
	}
	var objsOf [][]int32
	if greedy {
		objsOf = make([][]int32, pl.N)
		var buf []int
		for obj := 0; obj < pl.B(); obj++ {
			buf = pl.Objects[obj].Members(buf[:0])
			for _, nd := range buf {
				objsOf[nd] = append(objsOf[nd], int32(obj))
			}
		}
	}

	mapping := make([]int, pl.N)
	var assign func(level int, doms []int, ids []int) bool
	assign = func(level int, doms []int, ids []int) bool {
		buckets := make([][]int, len(doms))
		slotsFree := make([]int, len(doms))
		loadUsed := make([]int64, len(doms))
		for i, di := range doms {
			slotsFree[i] = len(topo.Tree[level][di].Nodes)
		}
		eligible := func(i, id int) bool {
			if slotsFree[i] == 0 {
				return false
			}
			return capOf == nil || loadUsed[i]+int64(loads[id]) <= capOf[level][doms[i]]
		}
		place := func(i, id int) {
			buckets[i] = append(buckets[i], id)
			slotsFree[i]--
			loadUsed[i] += int64(loads[id])
		}
		if greedy {
			// placed[obj*len(doms)+i] = replicas of obj already routed to
			// branch i: route each id to the branch sharing the fewest of
			// its objects (ties: most free slots, then lowest index).
			placed := make([]int32, pl.B()*len(doms))
			for _, id := range ids {
				bestI, bestConflict, bestFree := -1, int64(1)<<62, -1
				for i := range doms {
					if !eligible(i, id) {
						continue
					}
					var conflict int64
					for _, obj := range objsOf[id] {
						conflict += int64(placed[int(obj)*len(doms)+i])
					}
					if conflict < bestConflict || (conflict == bestConflict && slotsFree[i] > bestFree) {
						bestI, bestConflict, bestFree = i, conflict, slotsFree[i]
					}
				}
				if bestI < 0 {
					return false
				}
				place(bestI, id)
				for _, obj := range objsOf[id] {
					placed[int(obj)*len(doms)+bestI]++
				}
			}
		} else {
			next := 0
			for _, id := range ids {
				picked := -1
				for step := 0; step < len(doms); step++ {
					i := (next + step) % len(doms)
					if eligible(i, id) {
						picked = i
						break
					}
				}
				if picked < 0 {
					return false
				}
				place(picked, id)
				next = (picked + 1) % len(doms)
			}
		}
		for i, di := range doms {
			if level == numLevels-1 {
				slots := append([]int(nil), topo.Tree[level][di].Nodes...)
				sort.Ints(slots)
				for j, id := range buckets[i] {
					mapping[id] = slots[j]
				}
			} else if len(buckets[i]) > 0 {
				if !assign(level+1, children[level][di], buckets[i]) {
					return false
				}
			}
		}
		return true
	}
	top := make([]int, len(topo.Tree[0]))
	for i := range top {
		top[i] = i
	}
	if !assign(0, top, nodesByLoad(pl)) {
		return nil, false
	}
	return mapping, true
}

// stripedMapping deals abstract node ids across domains round-robin in
// descending load order, so consecutive (and typically co-hosting)
// abstract nodes land in different domains.
func stripedMapping(pl *Placement, topo *topology.Topology) []int {
	order := nodesByLoad(pl)
	// Physical slots per domain, lowest node ids first.
	slots := make([][]int, topo.NumDomains())
	for di, dom := range topo.Leaves() {
		slots[di] = append([]int(nil), dom.Nodes...)
		sort.Ints(slots[di])
	}
	mapping := make([]int, pl.N)
	di := 0
	for _, abstract := range order {
		for len(slots[di]) == 0 {
			di = (di + 1) % len(slots)
		}
		mapping[abstract] = slots[di][0]
		slots[di] = slots[di][1:]
		di = (di + 1) % len(slots)
	}
	return mapping
}

// conflictGreedyMapping assigns abstract nodes (heaviest first) to the
// domain currently holding the fewest replicas of the objects the node
// hosts, breaking ties toward the domain with the most free slots and
// then the lowest index. This directly minimizes co-location of each
// object's replicas.
func conflictGreedyMapping(pl *Placement, topo *topology.Topology) []int {
	order := nodesByLoad(pl)
	objsOf := make([][]int32, pl.N)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, nd := range buf {
			objsOf[nd] = append(objsOf[nd], int32(obj))
		}
	}
	nd := topo.NumDomains()
	slots := make([][]int, nd)
	for di, dom := range topo.Leaves() {
		slots[di] = append([]int(nil), dom.Nodes...)
		sort.Ints(slots[di])
	}
	// placed[obj*nd + di] = replicas of obj already assigned to domain di.
	placed := make([]int32, pl.B()*nd)
	mapping := make([]int, pl.N)
	for _, abstract := range order {
		bestDi, bestConflict, bestFree := -1, int64(1)<<62, -1
		for di := 0; di < nd; di++ {
			free := len(slots[di])
			if free == 0 {
				continue
			}
			var conflict int64
			for _, obj := range objsOf[abstract] {
				conflict += int64(placed[int(obj)*nd+di])
			}
			if conflict < bestConflict || (conflict == bestConflict && free > bestFree) {
				bestDi, bestConflict, bestFree = di, conflict, free
			}
		}
		mapping[abstract] = slots[bestDi][0]
		slots[bestDi] = slots[bestDi][1:]
		for _, obj := range objsOf[abstract] {
			placed[int(obj)*nd+bestDi]++
		}
	}
	return mapping
}

// nodesByLoad returns abstract node ids by descending replica load,
// ties broken by ascending id (deterministic).
func nodesByLoad(pl *Placement) []int {
	loads := pl.NodeLoads()
	order := make([]int, pl.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// topLoadedDamage is the cheap candidate-ranking proxy used when C(D, d)
// is too large to enumerate: the damage of failing the d domains
// carrying the most replicas (a valid attack, hence a lower bound on the
// true worst case). A non-nil w scores in weight units: domains rank by
// weighted load, damage is the failed objects' total weight.
func topLoadedDamage(pl *Placement, topo *topology.Topology, s, d int, w []int64) int {
	loads := make([]int64, topo.NumDomains())
	var buf []int
	for obj, o := range pl.Objects {
		buf = o.Members(buf[:0])
		hit := int64(1)
		if w != nil {
			hit = w[obj]
		}
		for _, nd := range buf {
			loads[topo.DomainOf(nd)] += hit
		}
	}
	order := make([]int, len(loads))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if loads[order[a]] != loads[order[b]] {
			return loads[order[a]] > loads[order[b]]
		}
		return order[a] < order[b]
	})
	failed := topo.FailedSet(order[:d])
	if w == nil {
		return pl.FailedObjects(failed, s)
	}
	damage := 0
	for obj, o := range pl.Objects {
		if o.IntersectCount(failed) >= s {
			damage += int(w[obj])
		}
	}
	return damage
}
