package placement_test

import (
	"math/rand"
	"testing"

	"repro/internal/placement"
	"repro/internal/topology"
)

func TestObjectWeights(t *testing.T) {
	pl := placement.NewPlacement(4, 2)
	for _, obj := range [][]int{{0, 1}, {2, 3}, {0, 3}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.Uniform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Unweighted topology: nil (the engines' unit convention).
	w, err := placement.ObjectWeights(pl, topo)
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Errorf("unweighted topology yields weights %v, want nil", w)
	}
	// Node 0 is hot: objects touching it inherit its weight (max rule).
	topo.Weights = []int{5, 1, 1, 3}
	w, err = placement.ObjectWeights(pl, topo)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 3, 5}
	for obj := range want {
		if w[obj] != want[obj] {
			t.Errorf("object %d weight = %d, want %d", obj, w[obj], want[obj])
		}
	}
	if got := placement.SumWeights(w, pl.B()); got != 13 {
		t.Errorf("SumWeights = %d, want 13", got)
	}
	if got := placement.SumWeights(nil, 7); got != 7 {
		t.Errorf("SumWeights(nil, 7) = %d, want 7", got)
	}
	other, err := topology.Uniform(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := placement.ObjectWeights(pl, other); err == nil {
		t.Error("mismatched topology accepted")
	}
}

// TestWeightedWorstDomainDamage pins the weighted evaluator against a
// direct computation and the unit reduction.
func TestWeightedWorstDomainDamage(t *testing.T) {
	pl := placement.NewPlacement(6, 2)
	for _, obj := range [][]int{{0, 1}, {2, 3}, {4, 5}, {0, 2}} {
		if err := pl.Add(obj); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.Uniform(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Rack0 = {0,1}: failing it kills objects 0 (both replicas, s=2? no:
	// s=1 means one replica suffices). With s = 1, rack0 covers objects
	// 0 and 3; rack1 covers 1 and 3; rack2 covers 2.
	w := []int64{10, 1, 1, 1}
	got, err := placement.WorstDomainDamageWeighted(pl, topo, 1, 1, w)
	if err != nil {
		t.Fatal(err)
	}
	if got != 11 { // rack0: objects 0 (10) + 3 (1)
		t.Errorf("weighted damage = %d, want 11", got)
	}
	unit, err := placement.WorstDomainDamage(pl, topo, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	viaNil, err := placement.WorstDomainDamageWeighted(pl, topo, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unit != viaNil {
		t.Errorf("nil weights diverge: %d vs %d", viaNil, unit)
	}
	if _, err := placement.WorstDomainDamageWeighted(pl, topo, 1, 1, []int64{1}); err == nil {
		t.Error("short weight vector accepted")
	}
}

// TestWeightedSpreadNeverWorse is the weighted analogue of the spread
// guarantee: with Weighted scoring on a hot-node topology, the spread
// placement never loses more WEIGHT than the oblivious layout at any
// level (each layout scored with its own labeling's object weights).
func TestWeightedSpreadNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(8)
		r := 2 + rng.Intn(2)
		b := 8 + rng.Intn(16)
		s := 1 + rng.Intn(r)
		pl := placement.NewPlacement(n, r)
		nodes := make([]int, r)
		for i := 0; i < b; i++ {
			perm := rng.Perm(n)
			copy(nodes, perm[:r])
			if err := pl.Add(nodes); err != nil {
				t.Fatal(err)
			}
		}
		var topo *topology.Topology
		var err error
		if trial%2 == 0 {
			topo, err = topology.UniformTree(n, 2, 2)
		} else {
			topo, err = topology.Uniform(n, 2+rng.Intn(3))
		}
		if err != nil {
			t.Fatal(err)
		}
		weights := make([]int, n)
		for i := range weights {
			weights[i] = 1
		}
		// A couple of hot nodes.
		for h := 0; h < 1+rng.Intn(2); h++ {
			weights[rng.Intn(n)] = 2 + rng.Intn(5)
		}
		topo.Weights = weights
		d := 1 + rng.Intn(2)
		if nd := topo.NumDomains(); d > nd {
			d = nd
		}
		aware, _, err := placement.SpreadAcrossDomainsWith(pl, topo, s, d, placement.SpreadOpts{Weighted: true})
		if err != nil {
			t.Fatal(err)
		}
		for level := 0; level < topo.Levels(); level++ {
			flat, err := topo.Collapse(level)
			if err != nil {
				t.Fatal(err)
			}
			dl := d
			if nd := flat.NumDomains(); dl > nd {
				dl = nd
			}
			oblivW, err := placement.ObjectWeights(pl, topo)
			if err != nil {
				t.Fatal(err)
			}
			awareW, err := placement.ObjectWeights(aware, topo)
			if err != nil {
				t.Fatal(err)
			}
			before, err := placement.WorstDomainDamageWeighted(pl, flat, s, dl, oblivW)
			if err != nil {
				t.Fatal(err)
			}
			after, err := placement.WorstDomainDamageWeighted(aware, flat, s, dl, awareW)
			if err != nil {
				t.Fatal(err)
			}
			if after > before {
				t.Errorf("trial %d (n=%d r=%d b=%d s=%d d=%d) level %d: weighted spread damage %d > oblivious %d",
					trial, n, r, b, s, dl, level, after, before)
			}
		}
	}
}

// TestWeightedSpreadUnitNoop: Weighted scoring on an unweighted
// topology must reproduce the plain spread exactly (same mapping).
func TestWeightedSpreadUnitNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.Intn(6)
		pl := placement.NewPlacement(n, 2)
		for i := 0; i < 10; i++ {
			perm := rng.Perm(n)
			if err := pl.Add(perm[:2]); err != nil {
				t.Fatal(err)
			}
		}
		topo, err := topology.Uniform(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		_, plain, err := placement.SpreadAcrossDomains(pl, topo, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		_, weighted, err := placement.SpreadAcrossDomainsWith(pl, topo, 2, 1, placement.SpreadOpts{Weighted: true})
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i] != weighted[i] {
				t.Fatalf("trial %d: Weighted on an unweighted topology changed the mapping: %v vs %v",
					trial, plain, weighted)
			}
		}
	}
}
