// Package placement implements the paper's primary contribution: replica
// placement strategies that maximize worst-case object availability.
//
// The model (paper Fig. 1): n nodes host b objects, each replicated on r
// distinct nodes; an object fails once s of its replicas sit on failed
// nodes; an adversary fails k nodes knowing the placement. Avail(π) is the
// number of objects surviving the worst such failure (Definition 1).
//
// Two strategies are provided:
//
//   - Simple(x, λ) (Definition 2): an (x+1)-(n, r, λ) packing — no x+1
//     nodes host replicas of more than λ common objects. Its availability
//     is lower-bounded by Lemma 2 and is c-competitive with the optimal
//     placement (Theorem 1).
//   - Combo(⟨λx⟩) (Definition 3): a partition of the objects across
//     Simple(x, λx) placements for x = 0..s-1, with ⟨λx⟩ chosen by the
//     dynamic program of Sec. III-B1 (Eqns. 5–7) to maximize the Lemma 3
//     lower bound.
//
// Both strategies build over abstract node ids; SpreadAcrossDomains maps
// those ids onto physical nodes of a failure-domain topology (racks,
// zones — see internal/topology) so each object's replicas land in
// maximally distinct domains, without ever hurting availability under
// the correlated whole-domain adversary.
package placement

import (
	"fmt"
)

// Params are the system model parameters, using the paper's notation.
type Params struct {
	N int // number of nodes
	B int // number of objects
	R int // replicas per object
	S int // replica failures that fail an object; 1 <= S <= R
	K int // failed nodes planned for; S <= K < N
}

// Validate checks the parameter constraints of the model.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("placement: n = %d must be positive", p.N)
	}
	if p.B < 0 {
		return fmt.Errorf("placement: b = %d must be non-negative", p.B)
	}
	if p.R < 1 || p.R > p.N {
		return fmt.Errorf("placement: r = %d must satisfy 1 <= r <= n = %d", p.R, p.N)
	}
	if p.S < 1 || p.S > p.R {
		return fmt.Errorf("placement: s = %d must satisfy 1 <= s <= r = %d", p.S, p.R)
	}
	if p.K < p.S || p.K >= p.N {
		return fmt.Errorf("placement: k = %d must satisfy s = %d <= k < n = %d", p.K, p.S, p.N)
	}
	return nil
}

// Load returns the load-balance target ℓ = ceil(r·b/n), the average number
// of replicas per node rounded up (Sec. IV).
func (p Params) Load() int {
	return int((int64(p.R)*int64(p.B) + int64(p.N) - 1) / int64(p.N))
}
