package combin

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 129} {
		b.Set(i)
	}
	if got := b.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if !b.Get(64) || b.Get(2) {
		t.Error("Get returned wrong membership")
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("Clear(64) did not clear")
	}
	if got := b.Count(); got != 5 {
		t.Errorf("Count after clear = %d, want 5", got)
	}
}

func TestBitsetOutOfRangeIgnored(t *testing.T) {
	b := NewBitset(10)
	b.Set(-1)
	b.Set(10)
	b.Clear(-5)
	b.Clear(99)
	if b.Count() != 0 {
		t.Error("out-of-range Set should be ignored")
	}
	if b.Get(-1) || b.Get(10) {
		t.Error("out-of-range Get should be false")
	}
}

func TestBitsetIntersectCount(t *testing.T) {
	a := NewBitsetFrom(200, []int{1, 5, 70, 130, 199})
	b := NewBitsetFrom(200, []int{5, 70, 131, 199})
	if got := a.IntersectCount(b); got != 3 {
		t.Errorf("IntersectCount = %d, want 3", got)
	}
	if !a.Intersects(b) {
		t.Error("Intersects = false, want true")
	}
	c := NewBitsetFrom(200, []int{2, 3})
	if a.Intersects(c) {
		t.Error("Intersects disjoint = true, want false")
	}
	// Different capacities.
	d := NewBitsetFrom(64, []int{5})
	if got := a.IntersectCount(d); got != 1 {
		t.Errorf("IntersectCount mixed capacity = %d, want 1", got)
	}
}

func TestBitsetSubsetEqualClone(t *testing.T) {
	a := NewBitsetFrom(100, []int{3, 50, 99})
	b := NewBitsetFrom(100, []int{3, 50, 99, 7})
	if !a.SubsetOf(b) {
		t.Error("a should be a subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be a subset of a")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone should equal original")
	}
	c.Set(0)
	if a.Equal(c) {
		t.Error("mutating clone must not affect original")
	}
	// Equal across different capacities with same members.
	d := NewBitsetFrom(300, []int{3, 50, 99})
	if !a.Equal(d) || !d.Equal(a) {
		t.Error("Equal should ignore trailing zero words")
	}
}

func TestBitsetMembersRoundTrip(t *testing.T) {
	members := []int{0, 17, 63, 64, 100}
	b := NewBitsetFrom(128, members)
	got := b.Members(nil)
	if !reflect.DeepEqual(got, members) {
		t.Errorf("Members = %v, want %v", got, members)
	}
	if s := b.String(); s != "{0, 17, 63, 64, 100}" {
		t.Errorf("String = %q", s)
	}
	var empty Bitset
	if s := empty.String(); s != "{}" {
		t.Errorf("empty String = %q", s)
	}
}

func TestBitsetUnionReset(t *testing.T) {
	a := NewBitsetFrom(70, []int{1, 2})
	b := NewBitsetFrom(70, []int{2, 69})
	a.UnionWith(b)
	if got := a.Members(nil); !reflect.DeepEqual(got, []int{1, 2, 69}) {
		t.Errorf("UnionWith = %v", got)
	}
	a.Reset()
	if a.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestBitsetIntersectCountProperty(t *testing.T) {
	// |A ∩ B| computed via bitset equals the map-based reference.
	f := func(xs, ys []uint8) bool {
		a := NewBitset(256)
		b := NewBitset(256)
		inA := make(map[int]bool)
		for _, x := range xs {
			a.Set(int(x))
			inA[int(x)] = true
		}
		shared := make(map[int]bool)
		for _, y := range ys {
			b.Set(int(y))
			if inA[int(y)] {
				shared[int(y)] = true
			}
		}
		return a.IntersectCount(b) == len(shared)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsetCountProperty(t *testing.T) {
	f := func(xs []uint8) bool {
		b := NewBitset(256)
		distinct := make(map[uint8]bool)
		for _, x := range xs {
			b.Set(int(x))
			distinct[x] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewBitsetNegative(t *testing.T) {
	b := NewBitset(-5)
	if b.Len() != 0 || b.Count() != 0 {
		t.Error("NewBitset(-5) should be empty with zero capacity")
	}
}
