// The Choose-overflow audit test lives in the external test package so
// it can pin the behavior of every downstream call site (design,
// placement, capacity) alongside the combin helper itself: Choose
// returns 0 on int64 overflow, and a 0 must always read as "too many /
// astronomically large / cannot verify" — never as "zero, we're under
// the budget".
package combin_test

import (
	"math"
	"testing"

	"repro/internal/capacity"
	"repro/internal/combin"
	"repro/internal/design"
	"repro/internal/placement"
)

// hugeK makes C(hugeK, 2) ≈ 1.25e19 overflow int64.
const hugeK = 5_000_000_000

func TestChooseOverflowCallSites(t *testing.T) {
	// C(100, 30) ≈ 2.9e25 overflows int64; C(31, 30) = 31 does not.
	if v := combin.Choose(100, 30); v != 0 {
		t.Fatalf("Choose(100, 30) = %d, want the 0 overflow convention", v)
	}

	for _, tc := range []struct {
		name string
		got  int64
		want int64
	}{
		{"ChooseOrHuge overflow saturates", combin.ChooseOrHuge(100, 30), math.MaxInt64},
		{"ChooseOrHuge small exact", combin.ChooseOrHuge(5, 2), 10},
		{"ChooseOrHuge undefined still 0", combin.ChooseOrHuge(2, 5), 0},
		{"ChooseOrHuge negative n still 0", combin.ChooseOrHuge(-1, 1), 0},

		// design.MaxBlocks is an UPPER bound on packable blocks (tested
		// separately below: an overflowed numerator must stay huge).
		{"MaxBlocks small exact", design.MaxBlocks(2, 7, 3, 1), 7},

		// placement.LBAvailSimple: an overflowed λ·C(k, t) means the
		// failure term is astronomical — the availability bound degrades
		// to 0, it must NOT claim all b objects survive.
		{"LBAvailSimple overflow degrades to 0", placement.LBAvailSimple(100, hugeK, 2, 1, 1), 0},
		{"LBAvailSimple small exact", placement.LBAvailSimple(100, 4, 2, 1, 1), 100 - 6},

		// placement.LBAvailCombo: same saturation per term.
		{"LBAvailCombo overflow degrades to 0", placement.LBAvailCombo(100, hugeK, 2, []int{0, 1}), 0},
	} {
		if tc.got != tc.want {
			t.Errorf("%s: got %d, want %d", tc.name, tc.got, tc.want)
		}
	}

	// design.MaxBlocks with an overflowed C(v, t): the bound must stay a
	// valid (astronomical) upper bound — the old path returned 0, which
	// claims nothing can be packed at all.
	if mb := design.MaxBlocks(30, 100, 31, 1); mb < math.MaxInt64/31 {
		t.Errorf("MaxBlocks on an overflowing numerator = %d, want an astronomically large bound", mb)
	}

	// design.DesignBlocks / Admissible: overflow means the divisibility
	// conditions cannot be verified — both must report false, where the
	// old Choose-is-0 path reported an exact zero-block design and
	// vacuous admissibility.
	if blocks, exact := design.DesignBlocks(30, 100, 31, 1); exact {
		t.Errorf("DesignBlocks on overflowing parameters reported exact %d blocks", blocks)
	}
	if design.Admissible(30, 100, 31, 1) {
		t.Error("Admissible reported true on overflowing parameters")
	}
	if blocks, exact := design.DesignBlocks(2, 7, 3, 1); !exact || blocks != 7 {
		t.Errorf("DesignBlocks(2,7,3,1) = (%d, %v), want (7, true)", blocks, exact)
	}
	if !design.Admissible(2, 7, 3, 1) {
		t.Error("Admissible(2,7,3,1) = false, want true (the Fano plane exists)")
	}

	// placement.SimpleCapacity: overflowed chunk capacity cannot verify
	// integrality — (0, false), not an exact zero capacity.
	if c, ok := placement.SimpleCapacity([]int{hugeK}, 3, 1, 1, 1); ok {
		t.Errorf("SimpleCapacity on an overflowing order reported exact capacity %d", c)
	}

	// capacity.BestGap: the ideal capacity saturates high instead of
	// reporting a zero ideal (which would read as "no gap at all").
	gap, err := capacity.BestGap(2, 3, 7, 1, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if gap.Ideal != 21 {
		t.Errorf("BestGap small ideal = %d, want 21", gap.Ideal)
	}
}
