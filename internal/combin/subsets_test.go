package combin

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestForEachSubsetCountsAndOrder(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			var count int64
			var prev []int
			ForEachSubset(n, k, func(s []int) bool {
				count++
				// Strictly increasing within the subset.
				for i := 1; i < len(s); i++ {
					if s[i] <= s[i-1] {
						t.Fatalf("n=%d k=%d: subset %v not increasing", n, k, s)
					}
				}
				// Lexicographically after the previous subset.
				if prev != nil && !lexLess(prev, s) {
					t.Fatalf("n=%d k=%d: %v not after %v", n, k, s, prev)
				}
				prev = append(prev[:0], s...)
				return true
			})
			want := Choose(n, k)
			if count != want {
				t.Errorf("n=%d k=%d: enumerated %d subsets, want %d", n, k, count, want)
			}
		}
	}
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestForEachSubsetEarlyStop(t *testing.T) {
	count := 0
	ForEachSubset(10, 3, func(s []int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d subsets, want 5", count)
	}
}

func TestForEachSubsetInvalidK(t *testing.T) {
	called := false
	ForEachSubset(3, 5, func(s []int) bool { called = true; return true })
	if called {
		t.Error("ForEachSubset(3, 5) should not invoke fn")
	}
	ForEachSubset(3, -1, func(s []int) bool { called = true; return true })
	if called {
		t.Error("ForEachSubset(3, -1) should not invoke fn")
	}
}

func TestSubsetRankUnrankRoundTrip(t *testing.T) {
	n, k := 12, 4
	var rank int64
	ForEachSubset(n, k, func(s []int) bool {
		if got := SubsetRank(n, s); got != rank {
			t.Fatalf("SubsetRank(%v) = %d, want %d", s, got, rank)
		}
		dst := make([]int, k)
		if !SubsetUnrank(n, rank, dst) {
			t.Fatalf("SubsetUnrank(%d) failed", rank)
		}
		if !reflect.DeepEqual(dst, s) {
			t.Fatalf("SubsetUnrank(%d) = %v, want %v", rank, dst, s)
		}
		rank++
		return true
	})
	if rank != Choose(n, k) {
		t.Fatalf("enumerated %d ranks, want %d", rank, Choose(n, k))
	}
}

func TestSubsetUnrankOutOfRange(t *testing.T) {
	dst := make([]int, 3)
	if SubsetUnrank(5, -1, dst) {
		t.Error("SubsetUnrank with negative rank should fail")
	}
	if SubsetUnrank(5, Choose(5, 3), dst) {
		t.Error("SubsetUnrank past the last rank should fail")
	}
}

func TestSubsetRankUnrankProperty(t *testing.T) {
	f := func(seed uint32) bool {
		n := 5 + int(seed%20)
		k := 1 + int(seed/20)%5
		if k > n {
			k = n
		}
		total := Choose(n, k)
		rank := int64(seed) % total
		dst := make([]int, k)
		if !SubsetUnrank(n, rank, dst) {
			return false
		}
		return SubsetRank(n, dst) == rank
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFirstNextSubset(t *testing.T) {
	s := make([]int, 3)
	if !FirstSubset(5, s) {
		t.Fatal("FirstSubset(5, len 3) failed")
	}
	if !reflect.DeepEqual(s, []int{0, 1, 2}) {
		t.Fatalf("FirstSubset = %v", s)
	}
	last := []int{2, 3, 4}
	copy(s, last)
	if NextSubset(5, s) {
		t.Errorf("NextSubset past the end returned true, s = %v", s)
	}
	if FirstSubset(2, make([]int, 3)) {
		t.Error("FirstSubset(2, len 3) should fail")
	}
}

func TestPermutationsCount(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n := 0; n <= 6; n++ {
		seen := make(map[string]bool)
		count := 0
		Permutations(n, func(p []int) bool {
			count++
			key := ""
			for _, v := range p {
				key += string(rune('a' + v))
			}
			seen[key] = true
			return true
		})
		if int64(count) != want[n] {
			t.Errorf("Permutations(%d): %d calls, want %d", n, count, want[n])
		}
		if int64(len(seen)) != want[n] {
			t.Errorf("Permutations(%d): %d distinct, want %d", n, len(seen), want[n])
		}
	}
}

func TestPermutationsEarlyStop(t *testing.T) {
	count := 0
	Permutations(5, func(p []int) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Errorf("early stop after %d permutations, want 7", count)
	}
}
