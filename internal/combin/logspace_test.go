package combin

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExp(t *testing.T) {
	tests := []struct {
		a, b, want float64
	}{
		{math.Log(1), math.Log(1), math.Log(2)},
		{math.Log(3), math.Log(5), math.Log(8)},
		{math.Inf(-1), math.Log(2), math.Log(2)},
		{math.Log(2), math.Inf(-1), math.Log(2)},
		{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
	}
	for _, tt := range tests {
		got := LogSumExp(tt.a, tt.b)
		if math.IsInf(tt.want, -1) {
			if !math.IsInf(got, -1) {
				t.Errorf("LogSumExp(%g, %g) = %g, want -Inf", tt.a, tt.b, got)
			}
			continue
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("LogSumExp(%g, %g) = %g, want %g", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLogSumExpCommutative(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 700)
		b = math.Mod(b, 700)
		x := LogSumExp(a, b)
		y := LogSumExp(b, a)
		return x == y || math.Abs(x-y) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExpSlice(t *testing.T) {
	xs := []float64{math.Log(1), math.Log(2), math.Log(3), math.Log(4)}
	got := LogSumExpSlice(xs)
	want := math.Log(10)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogSumExpSlice = %g, want %g", got, want)
	}
	if !math.IsInf(LogSumExpSlice(nil), -1) {
		t.Error("LogSumExpSlice(nil): want -Inf")
	}
}

// directBinomTail computes P(X >= f) by direct summation in linear space,
// usable for small n as a reference implementation.
func directBinomTail(n, f int, p float64) float64 {
	sum := 0.0
	for x := f; x <= n; x++ {
		c, _ := Binomial(n, x)
		sum += float64(c) * math.Pow(p, float64(x)) * math.Pow(1-p, float64(n-x))
	}
	return sum
}

func TestLogBinomTailGEMatchesDirect(t *testing.T) {
	for _, n := range []int{1, 5, 20, 50} {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.9} {
			logP := math.Log(p)
			log1mP := math.Log1p(-p)
			for f := 0; f <= n; f++ {
				want := directBinomTail(n, f, p)
				got := math.Exp(LogBinomTailGE(n, f, logP, log1mP))
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("n=%d p=%g f=%d: tail = %g, want %g", n, p, f, got, want)
				}
			}
		}
	}
}

func TestLogBinomTailBoundaries(t *testing.T) {
	logP := math.Log(0.3)
	log1mP := math.Log(0.7)
	if got := LogBinomTailGE(10, 0, logP, log1mP); got != 0 {
		t.Errorf("P(X >= 0) log = %g, want 0", got)
	}
	if got := LogBinomTailGE(10, 11, logP, log1mP); !math.IsInf(got, -1) {
		t.Errorf("P(X >= n+1) log = %g, want -Inf", got)
	}
	if got := LogBinomTailLE(10, 10, logP, log1mP); got != 0 {
		t.Errorf("P(X <= n) log = %g, want 0", got)
	}
	if got := LogBinomTailLE(10, -1, logP, log1mP); !math.IsInf(got, -1) {
		t.Errorf("P(X <= -1) log = %g, want -Inf", got)
	}
}

func TestLogBinomTailComplement(t *testing.T) {
	// P(X >= f) + P(X <= f-1) = 1.
	n := 200
	p := 0.37
	logP := math.Log(p)
	log1mP := math.Log1p(-p)
	for _, f := range []int{1, 10, 74, 100, 150, 200} {
		ge := math.Exp(LogBinomTailGE(n, f, logP, log1mP))
		le := math.Exp(LogBinomTailLE(n, f-1, logP, log1mP))
		if math.Abs(ge+le-1) > 1e-9 {
			t.Errorf("f=%d: P(X>=f)+P(X<=f-1) = %g, want 1", f, ge+le)
		}
	}
}

func TestLogBinomTailLargeN(t *testing.T) {
	// Regression guard: the paper's largest workload is b = 38400 objects.
	// Check the tail at the mean is close to 1/2 and monotone decreasing.
	n := 38400
	p := 0.25
	logP := math.Log(p)
	log1mP := math.Log1p(-p)
	mean := int(float64(n) * p)
	atMean := math.Exp(LogBinomTailGE(n, mean, logP, log1mP))
	if atMean < 0.4 || atMean > 0.6 {
		t.Errorf("tail at mean = %g, want ~0.5", atMean)
	}
	prev := math.Inf(1)
	for f := 0; f <= n; f += 1200 {
		cur := LogBinomTailGE(n, f, logP, log1mP)
		if cur > prev+1e-12 {
			t.Fatalf("tail not monotone at f=%d: %g > %g", f, cur, prev)
		}
		prev = cur
	}
}

func TestLogBinomPMFSumsToOne(t *testing.T) {
	n := 30
	p := 0.42
	logP := math.Log(p)
	log1mP := math.Log1p(-p)
	sum := 0.0
	for x := 0; x <= n; x++ {
		sum += math.Exp(LogBinomPMF(n, x, logP, log1mP))
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Errorf("PMF sums to %g, want 1", sum)
	}
	if !math.IsInf(LogBinomPMF(n, -1, logP, log1mP), -1) {
		t.Error("PMF(-1): want -Inf")
	}
}
