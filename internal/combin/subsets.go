package combin

// FirstSubset fills dst with the lexicographically first k-subset of
// {0, ..., n-1}, namely {0, 1, ..., k-1}, and reports whether such a subset
// exists (k <= n, k >= 0). dst must have length k.
func FirstSubset(n int, dst []int) bool {
	k := len(dst)
	if k > n {
		return false
	}
	for i := range dst {
		dst[i] = i
	}
	return true
}

// NextSubset advances s, a strictly increasing k-subset of {0, ..., n-1},
// to its lexicographic successor in place. It reports false when s was the
// last subset (in which case s is left unchanged).
func NextSubset(n int, s []int) bool {
	k := len(s)
	i := k - 1
	for i >= 0 && s[i] == n-k+i {
		i--
	}
	if i < 0 {
		return false
	}
	s[i]++
	for j := i + 1; j < k; j++ {
		s[j] = s[j-1] + 1
	}
	return true
}

// ForEachSubset invokes fn for every k-subset of {0, ..., n-1} in
// lexicographic order. The slice passed to fn is reused between calls and
// must not be retained. Iteration stops early if fn returns false.
func ForEachSubset(n, k int, fn func(s []int) bool) {
	if k < 0 || k > n {
		return
	}
	s := make([]int, k)
	if !FirstSubset(n, s) {
		return
	}
	for {
		if !fn(s) {
			return
		}
		if !NextSubset(n, s) {
			return
		}
	}
}

// SubsetRank returns the lexicographic rank (0-based) of the strictly
// increasing k-subset s of {0, ..., n-1}.
func SubsetRank(n int, s []int) int64 {
	k := len(s)
	var rank int64
	prev := -1
	for i, si := range s {
		for v := prev + 1; v < si; v++ {
			rank += Choose(n-v-1, k-i-1)
		}
		prev = si
	}
	return rank
}

// SubsetUnrank fills dst with the k-subset of {0, ..., n-1} that has the
// given lexicographic rank, where k = len(dst). It reports false if rank is
// out of range.
func SubsetUnrank(n int, rank int64, dst []int) bool {
	k := len(dst)
	total := Choose(n, k)
	if rank < 0 || rank >= total {
		return false
	}
	v := 0
	for i := 0; i < k; i++ {
		for {
			c := Choose(n-v-1, k-i-1)
			if rank < c {
				dst[i] = v
				v++
				break
			}
			rank -= c
			v++
		}
	}
	return true
}

// Permutations invokes fn for every permutation of {0, ..., n-1} using
// Heap's algorithm. The slice passed to fn is reused between calls.
// Iteration stops early if fn returns false.
func Permutations(n int, fn func(p []int) bool) {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	if n == 0 {
		fn(p)
		return
	}
	c := make([]int, n)
	if !fn(p) {
		return
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				p[0], p[i] = p[i], p[0]
			} else {
				p[c[i]], p[i] = p[i], p[c[i]]
			}
			if !fn(p) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}
