package combin

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialSmallValues(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{5, 2, 10},
		{10, 3, 120},
		{52, 5, 2598960},
		{71, 2, 2485},
		{71, 5, 13019909},
		{257, 4, 177556160},
		{800, 5, 2696682400160},
		{38400, 1, 38400},
	}
	for _, tt := range tests {
		got, err := Binomial(tt.n, tt.k)
		if err != nil {
			t.Fatalf("Binomial(%d, %d): unexpected error %v", tt.n, tt.k, err)
		}
		if got != tt.want {
			t.Errorf("Binomial(%d, %d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestBinomialConventions(t *testing.T) {
	if v, err := Binomial(5, -1); err != nil || v != 0 {
		t.Errorf("Binomial(5, -1) = %d, %v; want 0, nil", v, err)
	}
	if v, err := Binomial(5, 6); err != nil || v != 0 {
		t.Errorf("Binomial(5, 6) = %d, %v; want 0, nil", v, err)
	}
	if _, err := Binomial(-1, 0); err == nil {
		t.Error("Binomial(-1, 0): want error for negative n")
	}
}

func TestBinomialOverflow(t *testing.T) {
	// C(1000, 500) vastly exceeds int64.
	if _, err := Binomial(1000, 500); !errors.Is(err, ErrOverflow) {
		t.Errorf("Binomial(1000, 500): want ErrOverflow, got %v", err)
	}
	// C(66, 33) = 7219428434016265740 fits in int64 (max ~9.22e18).
	got, err := Binomial(66, 33)
	if err != nil {
		t.Fatalf("Binomial(66, 33): %v", err)
	}
	if got != 7219428434016265740 {
		t.Errorf("Binomial(66, 33) = %d, want 7219428434016265740", got)
	}
}

func TestBinomialSymmetry(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8 % 60)
		k := int(k8) % (n + 1)
		a, err1 := Binomial(n, k)
		b, err2 := Binomial(n, n-k)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPascalIdentity(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := 1 + int(n8%59)
		k := 1 + int(k8)%n
		whole, _ := Binomial(n, k)
		left, _ := Binomial(n-1, k-1)
		right, _ := Binomial(n-1, k)
		return whole == left+right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChoose(t *testing.T) {
	if got := Choose(6, 2); got != 15 {
		t.Errorf("Choose(6, 2) = %d, want 15", got)
	}
	if got := Choose(6, 9); got != 0 {
		t.Errorf("Choose(6, 9) = %d, want 0", got)
	}
	if got := Choose(1000, 500); got != 0 {
		t.Errorf("Choose(1000, 500) = %d, want 0 on overflow", got)
	}
}

func TestLogBinomialMatchesExact(t *testing.T) {
	for n := 0; n <= 60; n++ {
		for k := 0; k <= n; k++ {
			exact, err := Binomial(n, k)
			if err != nil {
				t.Fatalf("Binomial(%d,%d): %v", n, k, err)
			}
			got := LogBinomial(n, k)
			want := math.Log(float64(exact))
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("LogBinomial(%d, %d) = %g, want %g", n, k, got, want)
			}
		}
	}
}

func TestLogBinomialOutOfRange(t *testing.T) {
	if !math.IsInf(LogBinomial(5, 7), -1) {
		t.Error("LogBinomial(5, 7): want -Inf")
	}
	if !math.IsInf(LogBinomial(5, -1), -1) {
		t.Error("LogBinomial(5, -1): want -Inf")
	}
}

func TestMultinomial(t *testing.T) {
	got, err := Multinomial(10, 3, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4200 {
		t.Errorf("Multinomial(10; 3,3,4) = %d, want 4200", got)
	}
	if _, err := Multinomial(9, 3, 3, 4); err == nil {
		t.Error("Multinomial with mismatched sum: want error")
	}
	if _, err := Multinomial(2, 3, -1); err == nil {
		t.Error("Multinomial with negative part: want error")
	}
}

func TestGCDLCM(t *testing.T) {
	tests := []struct {
		a, b, gcd, lcm int
	}{
		{12, 18, 6, 36},
		{7, 13, 1, 91},
		{0, 5, 5, 0},
		{0, 0, 0, 0},
		{-4, 6, 2, 12},
	}
	for _, tt := range tests {
		if g := GCD(tt.a, tt.b); g != tt.gcd {
			t.Errorf("GCD(%d, %d) = %d, want %d", tt.a, tt.b, g, tt.gcd)
		}
		l, err := LCM(tt.a, tt.b)
		if err != nil {
			t.Fatalf("LCM(%d, %d): %v", tt.a, tt.b, err)
		}
		if l != tt.lcm {
			t.Errorf("LCM(%d, %d) = %d, want %d", tt.a, tt.b, l, tt.lcm)
		}
	}
}

func TestCeilFloorDiv(t *testing.T) {
	tests := []struct {
		a, b, ceil, floor int64
	}{
		{7, 2, 4, 3},
		{8, 2, 4, 4},
		{0, 3, 0, 0},
		{-7, 2, -3, -4},
	}
	for _, tt := range tests {
		if c := CeilDiv(tt.a, tt.b); c != tt.ceil {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", tt.a, tt.b, c, tt.ceil)
		}
		if f := FloorDiv(tt.a, tt.b); f != tt.floor {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", tt.a, tt.b, f, tt.floor)
		}
	}
}
