package combin

import (
	"math/bits"
	"strconv"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-capacity dense bit set over {0, ..., n-1}. The zero
// value is an empty set of capacity 0; use NewBitset to size one.
//
// Bitsets are the hot-path representation for replica sets and failure
// sets: counting how many of an object's replicas lie inside a failed-node
// set is a word-wise AND plus popcount.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bit set with capacity for n bits.
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewBitsetFrom returns a bit set of capacity n with the given members set.
func NewBitsetFrom(n int, members []int) *Bitset {
	b := NewBitset(n)
	for _, m := range members {
		b.Set(m)
	}
	return b
}

// Len returns the capacity (number of addressable bits).
func (b *Bitset) Len() int { return b.n }

// Set sets bit i. Out-of-range indices are ignored.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. Out-of-range indices are ignored.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		return
	}
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// IntersectCount returns |b ∩ o|. The two sets may have different
// capacities; bits beyond the shorter capacity do not intersect.
func (b *Bitset) IntersectCount(o *Bitset) int {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(b.words[i] & o.words[i])
	}
	return total
}

// Intersects reports whether b and o share any member.
func (b *Bitset) Intersects(o *Bitset) bool {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every member of b is also a member of o.
func (b *Bitset) SubsetOf(o *Bitset) bool {
	for i, w := range b.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether b and o contain exactly the same members.
func (b *Bitset) Equal(o *Bitset) bool {
	longer, shorter := b.words, o.words
	if len(shorter) > len(longer) {
		longer, shorter = shorter, longer
	}
	for i, w := range shorter {
		if w != longer[i] {
			return false
		}
	}
	for _, w := range longer[len(shorter):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// Reset clears all bits.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// UnionWith sets b = b ∪ o in place. o must not exceed b's capacity.
func (b *Bitset) UnionWith(o *Bitset) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] |= o.words[i]
	}
}

// Members appends the members of b to dst and returns the result.
func (b *Bitset) Members(dst []int) []int {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+bit)
			w &= w - 1
		}
	}
	return dst
}

// String renders the set as "{a, b, c}".
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for _, m := range b.Members(nil) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(strconv.Itoa(m))
	}
	sb.WriteByte('}')
	return sb.String()
}
