// Package combin provides the combinatorial substrate used throughout the
// repository: exact and log-space binomial coefficients, numerically stable
// binomial tail probabilities, k-subset enumeration and (un)ranking, and
// dense bitsets with fast intersection counting.
//
// Every quantity in the paper's analysis (capacities of t-packings,
// availability lower bounds, the vulnerability of random placement) reduces
// to expressions over binomial coefficients; this package is the single
// source of truth for those primitives.
package combin

import (
	"errors"
	"math"
)

// ErrOverflow reports that an exact integer computation would exceed the
// range of int64.
var ErrOverflow = errors.New("combin: int64 overflow")

// Binomial returns the binomial coefficient C(n, k) exactly.
//
// Following the standard convention it returns 0 (and no error) when k < 0
// or k > n. Negative n is rejected. If the exact value does not fit in an
// int64, Binomial returns ErrOverflow.
func Binomial(n, k int) (int64, error) {
	if n < 0 {
		return 0, errors.New("combin: negative n")
	}
	if k < 0 || k > n {
		return 0, nil
	}
	if k > n-k {
		k = n - k
	}
	// Multiplicative formula, keeping intermediate values exact:
	// C(n, i) = C(n, i-1) * (n - i + 1) / i, which always divides evenly.
	var result int64 = 1
	for i := 1; i <= k; i++ {
		factor := int64(n - i + 1)
		if result > math.MaxInt64/factor {
			// The multiplication may still be fine after the division,
			// so retry with the divide-first split via GCD reduction.
			r, err := binomialCareful(n, k)
			if err != nil {
				return 0, err
			}
			return r, nil
		}
		result = result * factor / int64(i)
	}
	return result, nil
}

// binomialCareful computes C(n, k) with per-step GCD reduction so that it
// only fails when the true result overflows int64.
func binomialCareful(n, k int) (int64, error) {
	var result int64 = 1
	for i := 1; i <= k; i++ {
		num := int64(n - i + 1)
		den := int64(i)
		g := gcd64(result, den)
		r := result / g
		den /= g
		g = gcd64(num, den)
		num /= g
		den /= g
		if den != 1 {
			// Cannot happen: C(n, i) is integral, so after reducing against
			// both factors the denominator must cancel.
			return 0, errors.New("combin: internal error in binomial reduction")
		}
		if r > math.MaxInt64/num {
			return 0, ErrOverflow
		}
		result = r * num
	}
	return result, nil
}

// Choose returns C(n, k), or 0 if the value is undefined or overflows.
// It is a convenience wrapper for call sites that have already validated
// their parameter ranges; prefer Binomial when overflow must be
// detected, and ChooseOrHuge when the value feeds a budget comparison
// or an upper bound — a 0 there silently reads as "tiny", the exact
// opposite of an overflow.
func Choose(n, k int) int64 {
	v, err := Binomial(n, k)
	if err != nil {
		return 0
	}
	return v
}

// ChooseOrHuge returns C(n, k), saturating at math.MaxInt64 when the
// exact value overflows int64. This is the right form wherever the
// binomial is compared against an enumeration budget or used as an
// upper bound: an overflowed C(n, k) means "astronomically many",
// never "zero", so budget guards built on Choose's 0 convention would
// treat the largest instances as the cheapest. Undefined values (k < 0,
// k > n) still return 0, matching Choose.
func ChooseOrHuge(n, k int) int64 {
	v, err := Binomial(n, k)
	if err != nil {
		if errors.Is(err, ErrOverflow) {
			return math.MaxInt64
		}
		return 0
	}
	return v
}

// LogBinomial returns ln C(n, k). It returns math.Inf(-1) when k < 0 or
// k > n (i.e. ln 0), matching the convention of Binomial.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// Multinomial returns n! / (k1! k2! ... km!) for the parts ks, which must
// sum to n. It returns ErrOverflow if the value exceeds int64.
func Multinomial(n int, ks ...int) (int64, error) {
	sum := 0
	for _, k := range ks {
		if k < 0 {
			return 0, errors.New("combin: negative part")
		}
		sum += k
	}
	if sum != n {
		return 0, errors.New("combin: parts do not sum to n")
	}
	var result int64 = 1
	remaining := n
	for _, k := range ks {
		c, err := Binomial(remaining, k)
		if err != nil {
			return 0, err
		}
		if c != 0 && result > math.MaxInt64/c {
			return 0, ErrOverflow
		}
		result *= c
		remaining -= k
	}
	return result, nil
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// GCD returns the greatest common divisor of a and b, with GCD(0, 0) = 0.
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, with LCM(x, 0) = 0.
// It returns ErrOverflow if the value exceeds int64 range when computed
// in int; parameters are expected to be small multiplicities.
func LCM(a, b int) (int, error) {
	if a == 0 || b == 0 {
		return 0, nil
	}
	g := GCD(a, b)
	q := a / g
	if q != 0 && abs(b) > math.MaxInt/abs(q) {
		return 0, ErrOverflow
	}
	l := q * b
	if l < 0 {
		l = -l
	}
	return l, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// CeilDiv returns ceil(a / b) for b > 0.
func CeilDiv(a, b int64) int64 {
	if a <= 0 {
		return -((-a) / b)
	}
	return (a + b - 1) / b
}

// FloorDiv returns floor(a / b) for b > 0.
func FloorDiv(a, b int64) int64 {
	if a < 0 {
		return -CeilDiv(-a, b)
	}
	return a / b
}
