package combin

import "math"

// LogSumExp returns ln(exp(a) + exp(b)) computed stably.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSumExpSlice returns ln(sum exp(xs[i])) computed stably.
func LogSumExpSlice(xs []float64) float64 {
	maxVal := math.Inf(-1)
	for _, x := range xs {
		if x > maxVal {
			maxVal = x
		}
	}
	if math.IsInf(maxVal, -1) {
		return maxVal
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp(x - maxVal)
	}
	return maxVal + math.Log(sum)
}

// LogBinomPMF returns ln P(X = x) for X ~ Binomial(n, p), where the success
// probability is supplied in log space as logP = ln p and log1mP = ln(1-p).
// Supplying both logs avoids catastrophic cancellation when p is extreme.
func LogBinomPMF(n, x int, logP, log1mP float64) float64 {
	if x < 0 || x > n {
		return math.Inf(-1)
	}
	term := LogBinomial(n, x)
	if x > 0 {
		term += float64(x) * logP
	}
	if n-x > 0 {
		term += float64(n-x) * log1mP
	}
	return term
}

// LogBinomTailGE returns ln P(X >= f) for X ~ Binomial(n, p) with the
// success probability supplied in log space (see LogBinomPMF).
//
// The sum is evaluated in log space starting at f; once past the mode of the
// distribution the terms decay geometrically, so summation stops when the
// running term can no longer affect the result. The result is exact to
// float64 rounding for all parameter sizes used in the paper (n up to
// 38400 objects).
func LogBinomTailGE(n, f int, logP, log1mP float64) float64 {
	if f <= 0 {
		return 0 // P(X >= 0) = 1
	}
	if f > n {
		return math.Inf(-1)
	}
	// Accumulate terms from x = f upward.
	logSum := math.Inf(-1)
	maxTerm := math.Inf(-1)
	mode := int(math.Floor(float64(n+1) * math.Exp(logP)))
	for x := f; x <= n; x++ {
		term := LogBinomPMF(n, x, logP, log1mP)
		logSum = LogSumExp(logSum, term)
		if term > maxTerm {
			maxTerm = term
		}
		// Past the mode the PMF is strictly decreasing; once the current
		// term is negligible relative to the accumulated sum, stop.
		if x > mode && term < logSum-46 { // e^-46 ~ 1e-20
			break
		}
	}
	if logSum > 0 {
		// P(X >= f) <= 1; clamp rounding noise.
		logSum = 0
	}
	return logSum
}

// LogBinomTailLE returns ln P(X <= f) for X ~ Binomial(n, p) with the
// success probability supplied in log space (see LogBinomPMF).
func LogBinomTailLE(n, f int, logP, log1mP float64) float64 {
	if f >= n {
		return 0
	}
	if f < 0 {
		return math.Inf(-1)
	}
	// P(X <= f) = P(n - X >= n - f) where n - X ~ Binomial(n, 1-p).
	return LogBinomTailGE(n, n-f, log1mP, logP)
}
