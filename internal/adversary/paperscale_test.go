package adversary_test

import (
	"testing"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/randplace"
)

// TestLemma3AtPaperScaleN31 validates the Combo guarantee end to end at
// one of the paper's actual system sizes (n = 31) with exact adversaries:
// optimize, materialize, attack, compare to the bound — for both r = 3
// and r = 5 replication and the paper's b = 600 workload.
func TestLemma3AtPaperScaleN31(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale validation skipped in short mode")
	}
	cases := []struct {
		r, s, k, b int
	}{
		{3, 2, 2, 600},
		{3, 2, 3, 600},
		{3, 3, 3, 600},
		{3, 3, 4, 600},
		{5, 3, 3, 600},
		{5, 3, 4, 600},
	}
	for _, tc := range cases {
		units, err := placement.DefaultUnits(31, tc.r, tc.s, true)
		if err != nil {
			t.Fatal(err)
		}
		spec, bound, err := placement.OptimizeCombo(tc.b, tc.k, tc.s, units)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := placement.BuildCombo(31, tc.r, spec, tc.b, placement.SimpleOptions{})
		if err != nil {
			t.Fatalf("BuildCombo(%+v, λ=%v): %v", tc, spec.Lambdas, err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatal(err)
		}
		res, err := adversary.WorstCaseParallel(pl, tc.s, tc.k, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("%+v: expected exact search", tc)
		}
		avail := int64(res.Avail(tc.b))
		if avail < bound {
			t.Errorf("%+v λ=%v: Avail = %d < guaranteed %d (Lemma 3 violated at paper scale)",
				tc, spec.Lambdas, avail, bound)
		}
		t.Logf("n=31 r=%d s=%d k=%d b=%d: guaranteed %d, exact worst case %d (gap %d)",
			tc.r, tc.s, tc.k, tc.b, bound, avail, avail-bound)
	}
}

// TestComboBeatsRandomAtPaperScale verifies the paper's central claim on
// concrete placements at n = 31: the Combo worst case is no worse than
// Random's worst case across seeds, for a configuration where Fig. 9
// predicts a Combo win.
func TestComboBeatsRandomAtPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale validation skipped in short mode")
	}
	const (
		n, r, s, k = 31, 3, 2, 3
		b          = 600
	)
	units, err := placement.DefaultUnits(n, r, s, true)
	if err != nil {
		t.Fatal(err)
	}
	spec, bound, err := placement.OptimizeCombo(b, k, s, units)
	if err != nil {
		t.Fatal(err)
	}
	combo, err := placement.BuildCombo(n, r, spec, b, placement.SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	comboRes, err := adversary.WorstCaseParallel(combo, s, k, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	comboAvail := comboRes.Avail(b)
	if int64(comboAvail) < bound {
		t.Fatalf("combo Avail %d below bound %d", comboAvail, bound)
	}
	for seed := int64(1); seed <= 3; seed++ {
		rp, err := randplace.Generate(placement.Params{N: n, B: b, R: r, S: s, K: k}, seed)
		if err != nil {
			t.Fatal(err)
		}
		randomRes, err := adversary.WorstCaseParallel(rp, s, k, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if randomRes.Avail(b) > comboAvail {
			t.Errorf("seed %d: random placement survived %d > combo %d against the worst case",
				seed, randomRes.Avail(b), comboAvail)
		}
	}
}
