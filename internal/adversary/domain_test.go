package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/topology"
)

// referenceDomainWorst computes the worst d-domain failure by direct
// subset enumeration through an entirely independent code path (bitsets
// via topology.FailedSet, no incremental state).
func referenceDomainWorst(pl *placement.Placement, topo *topology.Topology, s, d int) int {
	worst := 0
	combin.ForEachSubset(topo.NumDomains(), d, func(domains []int) bool {
		if f := pl.FailedObjects(topo.FailedSet(domains), s); f > worst {
			worst = f
		}
		return true
	})
	return worst
}

// referenceConstrainedWorst computes the worst k-node failure spanning at
// most d domains by enumerating every k-subset of nodes and filtering.
func referenceConstrainedWorst(pl *placement.Placement, topo *topology.Topology, s, k, d int) int {
	worst := 0
	combin.ForEachSubset(pl.N, k, func(nodes []int) bool {
		if len(domainsOfNodes(topo, nodes)) > d {
			return true
		}
		failedSet := combin.NewBitsetFrom(pl.N, nodes)
		if f := pl.FailedObjects(failedSet, s); f > worst {
			worst = f
		}
		return true
	})
	return worst
}

func randomTopology(rng *rand.Rand, n int) *topology.Topology {
	racks := 2 + rng.Intn(n/2)
	if rng.Intn(2) == 0 {
		topo, err := topology.Uniform(n, racks)
		if err != nil {
			panic(err)
		}
		return topo
	}
	// Random (non-contiguous) assignment with every rack non-empty.
	domains := make([]topology.Domain, racks)
	for i := range domains {
		domains[i] = topology.Domain{Name: string(rune('a' + i)), Parent: -1}
	}
	perm := rng.Perm(n)
	for i, nd := range perm {
		di := i % racks
		if i >= racks {
			di = rng.Intn(racks)
		}
		domains[di].Nodes = append(domains[di].Nodes, nd)
	}
	topo, err := topology.New(n, domains, nil)
	if err != nil {
		panic(err)
	}
	return topo
}

// TestDomainEnginesCrossCheck is the three-engine agreement property on
// small instances: exhaustive equals the independent reference,
// branch-and-bound equals exhaustive exactly, and greedy never exceeds
// either while its witness reproduces its claimed damage.
func TestDomainEnginesCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(7)
		r := 2 + rng.Intn(3)
		b := 10 + rng.Intn(30)
		s := 1 + rng.Intn(r)
		pl := randomPlacement(rng, n, r, b)
		topo := randomTopology(rng, n)
		d := 1 + rng.Intn(topo.NumDomains()-1)

		want := referenceDomainWorst(pl, topo, s, d)
		ex, err := DomainExhaustive(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Failed != want {
			t.Errorf("trial %d (n=%d r=%d b=%d s=%d D=%d d=%d): DomainExhaustive = %d, reference = %d",
				trial, n, r, b, s, topo.NumDomains(), d, ex.Failed, want)
		}
		if !ex.Exact {
			t.Error("DomainExhaustive must report Exact")
		}
		if len(ex.Domains) != d {
			t.Errorf("witness has %d domains, want %d", len(ex.Domains), d)
		}

		bnb, err := DomainWorstCase(pl, topo, s, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bnb.Failed != want {
			t.Errorf("trial %d: DomainWorstCase = %d, reference = %d", trial, bnb.Failed, want)
		}
		if !bnb.Exact {
			t.Error("unbounded DomainWorstCase must report Exact")
		}
		if bnb.Visited > ex.Visited {
			t.Errorf("B&B visited %d > exhaustive %d: pruning is not working", bnb.Visited, ex.Visited)
		}

		greedy, err := DomainGreedy(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Failed > want {
			t.Errorf("trial %d: greedy %d exceeds exact %d", trial, greedy.Failed, want)
		}
		// Every witness must reproduce its claimed damage.
		for _, res := range []DomainResult{ex, bnb, greedy} {
			if f := pl.FailedObjects(topo.FailedSet(res.Domains), s); f != res.Failed {
				t.Errorf("trial %d: witness %v reproduces %d failures, reported %d",
					trial, res.Domains, f, res.Failed)
			}
			if f := pl.FailedObjects(combin.NewBitsetFrom(n, res.Nodes), s); f != res.Failed {
				t.Errorf("trial %d: node witness reproduces %d failures, reported %d",
					trial, f, res.Failed)
			}
		}
	}
}

func TestConstrainedEnginesCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(4)
		r := 2 + rng.Intn(2)
		b := 10 + rng.Intn(20)
		s := 1 + rng.Intn(r)
		pl := randomPlacement(rng, n, r, b)
		racks := 3 + rng.Intn(2)
		topo, err := topology.Uniform(n, racks)
		if err != nil {
			t.Fatal(err)
		}
		d := 1 + rng.Intn(racks)
		k := 1 + rng.Intn(4)
		if k >= n {
			k = n - 1
		}

		want := referenceConstrainedWorst(pl, topo, s, k, d)
		ex, err := ConstrainedExhaustive(pl, topo, s, k, d)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Failed != want {
			t.Errorf("trial %d (n=%d r=%d b=%d s=%d k=%d racks=%d d=%d): ConstrainedExhaustive = %d, reference = %d",
				trial, n, r, b, s, k, racks, d, ex.Failed, want)
		}
		bnb, err := ConstrainedWorstCase(pl, topo, s, k, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bnb.Failed != want {
			t.Errorf("trial %d: ConstrainedWorstCase = %d, reference = %d", trial, bnb.Failed, want)
		}
		if !bnb.Exact || !ex.Exact {
			t.Error("unbounded constrained searches must report Exact")
		}
		if len(ex.Domains) > d {
			t.Errorf("witness spans %d domains, budget %d", len(ex.Domains), d)
		}
		if f := pl.FailedObjects(combin.NewBitsetFrom(n, ex.Nodes), s); f != ex.Failed {
			t.Errorf("trial %d: witness reproduces %d failures, reported %d", trial, f, ex.Failed)
		}
	}
}

// TestConstrainedBracketsNodeAdversary: confining k failures to d domains
// can only reduce the damage relative to the unconstrained node
// adversary, and d = NumDomains lifts the constraint entirely.
func TestConstrainedBracketsNodeAdversary(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pl := randomPlacement(rng, 12, 3, 30)
	topo, err := topology.Uniform(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	const s, k = 2, 4
	free, err := WorstCase(pl, s, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1
	for d := 1; d <= topo.NumDomains(); d++ {
		res, err := ConstrainedWorstCase(pl, topo, s, k, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed > free.Failed {
			t.Errorf("d=%d: constrained damage %d exceeds unconstrained %d", d, res.Failed, free.Failed)
		}
		if res.Failed < prev {
			t.Errorf("d=%d: damage %d decreased from %d; more domains must not hurt the attacker",
				d, res.Failed, prev)
		}
		prev = res.Failed
	}
	if prev != free.Failed {
		t.Errorf("d=D damage %d != unconstrained %d", prev, free.Failed)
	}
}

func TestDomainAdversaryValidation(t *testing.T) {
	pl := placement.NewPlacement(6, 2)
	if err := pl.Add([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Uniform(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DomainExhaustive(pl, topo, 0, 1); err == nil {
		t.Error("s = 0 accepted")
	}
	if _, err := DomainExhaustive(pl, topo, 3, 1); err == nil {
		t.Error("s > r accepted")
	}
	if _, err := DomainWorstCase(pl, topo, 1, 0, 0); err == nil {
		t.Error("d = 0 accepted")
	}
	if _, err := DomainWorstCase(pl, topo, 1, 4, 0); err == nil {
		t.Error("d > NumDomains accepted")
	}
	// d = NumDomains is the "everything fails" query and must work.
	all, err := DomainWorstCase(pl, topo, 1, 3, 0)
	if err != nil {
		t.Fatalf("d = NumDomains rejected: %v", err)
	}
	if all.Failed != pl.B() {
		t.Errorf("failing every domain failed %d of %d objects", all.Failed, pl.B())
	}
	other, err := topology.Uniform(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DomainGreedy(pl, other, 1, 1); err == nil {
		t.Error("mismatched topology size accepted")
	}
	if _, err := ConstrainedWorstCase(pl, topo, 1, 6, 2, 0); err == nil {
		t.Error("k >= n accepted")
	}
	if _, err := ConstrainedWorstCase(pl, topo, 1, 2, 4, 0); err == nil {
		t.Error("d > NumDomains accepted")
	}
}

func TestDomainFewerLoadedDomainsThanD(t *testing.T) {
	// All objects on rack0's nodes {0,1}; d = 2 > 1 loaded domain.
	pl := placement.NewPlacement(9, 2)
	for i := 0; i < 3; i++ {
		if err := pl.Add([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.Uniform(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() (DomainResult, error){
		"exhaustive": func() (DomainResult, error) { return DomainExhaustive(pl, topo, 2, 2) },
		"greedy":     func() (DomainResult, error) { return DomainGreedy(pl, topo, 2, 2) },
		"bnb":        func() (DomainResult, error) { return DomainWorstCase(pl, topo, 2, 2, 0) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Failed != 3 {
			t.Errorf("%s: Failed = %d, want 3", name, res.Failed)
		}
		if len(res.Domains) != 2 {
			t.Errorf("%s: witness has %d domains, want 2", name, len(res.Domains))
		}
	}
}

// TestDomainBudgetDegradesGracefully mirrors the node-level budget test.
func TestDomainBudgetDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pl := randomPlacement(rng, 24, 3, 150)
	topo, err := topology.Uniform(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	full, err := DomainWorstCase(pl, topo, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := DomainWorstCase(pl, topo, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Exact {
		t.Error("budget-limited domain search claims exactness")
	}
	if tiny.Failed > full.Failed {
		t.Errorf("budget result %d exceeds exact %d", tiny.Failed, full.Failed)
	}
	if tiny.Failed <= 0 {
		t.Error("budget result should still carry the greedy incumbent")
	}
}

// TestDomainVsNodeAdversary: failing d whole racks is at least as
// damaging as failing d arbitrary nodes, and no more damaging than
// failing the same number of nodes as the racks contain.
func TestDomainVsNodeAdversary(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pl := randomPlacement(rng, 12, 3, 40)
	topo, err := topology.Uniform(12, 4) // 3 nodes per rack
	if err != nil {
		t.Fatal(err)
	}
	const s, d = 2, 2
	dom, err := DomainWorstCase(pl, topo, s, d, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodesCovered := len(dom.Nodes)
	few, err := WorstCase(pl, s, d, 0) // d free nodes
	if err != nil {
		t.Fatal(err)
	}
	many, err := WorstCase(pl, s, nodesCovered, 0) // as many free nodes as the racks held
	if err != nil {
		t.Fatal(err)
	}
	if dom.Failed < few.Failed {
		t.Errorf("failing %d racks (%d nodes) does %d damage, less than %d free nodes doing %d",
			d, nodesCovered, dom.Failed, d, few.Failed)
	}
	if dom.Failed > many.Failed {
		t.Errorf("constrained rack attack %d beats free %d-node attack %d",
			dom.Failed, nodesCovered, many.Failed)
	}
}
