package adversary

import (
	"sync"
	"sync/atomic"

	"repro/internal/placement"
)

// Move names one replica transfer — the unit of work Session.ProbeMoves
// fans out. It mirrors the (obj, from, to) triple Session.Move takes.
type Move struct {
	Obj, From, To int
}

// memoShards is the lock-stripe width of sessionMemo. Probing batches
// run at most a few tens of workers, so 16 stripes keep contention on
// the shared memo negligible without bloating small sessions.
const memoShards = 16

// defaultMemoCap bounds a session memo when SearchOpts.MemoCap is left
// zero: large enough that bounded workloads (every tracked benchmark,
// the reconcile goldens) never evict — eviction order is publish order,
// which parallel probing does not fix, so the determinism contract is
// strongest when the cap is not reached — yet a hard ceiling on a
// years-long reconcile loop's memory.
const defaultMemoCap = 1 << 16

// memoShard is one stripe: a signature→result map plus the FIFO queue
// its evictions follow.
type memoShard struct {
	mu   sync.Mutex
	m    map[placement.Sig]SessionResult
	fifo []placement.Sig
	head int
}

// sessionMemo is the sharded, lock-striped damage memo a Session and
// every fork of it share: exact results published by any worker are
// hits for all. Entries are only ever written once per signature (exact
// damage is a pure function of the placement, so concurrent publishers
// agree) and evicted FIFO per shard once the capacity cap is reached.
type sessionMemo struct {
	shardCap int // per-shard entry cap; <= 0 = unlimited
	evicted  atomic.Int64
	shards   [memoShards]memoShard
}

// newSessionMemo sizes a memo for a total capacity of cap entries
// (<= 0 = unlimited), spread over the shards.
func newSessionMemo(cap int) *sessionMemo {
	sm := &sessionMemo{}
	if cap > 0 {
		sm.shardCap = (cap + memoShards - 1) / memoShards
	}
	return sm
}

func (sm *sessionMemo) shard(sig placement.Sig) *memoShard {
	return &sm.shards[sig.Lo%memoShards]
}

// get returns the memoized result for sig, if present. The result's
// slices are shared — callers copy before handing them out (copyOut).
func (sm *sessionMemo) get(sig placement.Sig) (SessionResult, bool) {
	sh := sm.shard(sig)
	sh.mu.Lock()
	res, ok := sh.m[sig]
	sh.mu.Unlock()
	return res, ok
}

// put publishes an exact result under sig. The first publisher wins;
// a duplicate publish (two workers finishing the same placement) is
// dropped, keeping the FIFO queue and the map in lockstep. Crossing the
// capacity cap evicts the shard's oldest entry.
func (sm *sessionMemo) put(sig placement.Sig, res SessionResult) {
	sh := sm.shard(sig)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.m == nil {
		sh.m = make(map[placement.Sig]SessionResult)
	}
	if _, ok := sh.m[sig]; ok {
		return
	}
	sh.m[sig] = res
	sh.fifo = append(sh.fifo, sig)
	if sm.shardCap > 0 && len(sh.m) > sm.shardCap {
		delete(sh.m, sh.fifo[sh.head])
		sh.head++
		sm.evicted.Add(1)
		// Compact the queue once the dead prefix dominates it.
		if sh.head > len(sh.fifo)/2 {
			sh.fifo = append(sh.fifo[:0], sh.fifo[sh.head:]...)
			sh.head = 0
		}
	}
}
