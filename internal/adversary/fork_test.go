package adversary

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/placement"
	"repro/internal/topology"
)

// probeBatch derives count deterministic valid moves on pl (none
// applied; ProbeMoves reverts each, so they need not compose).
func probeBatch(rng *rand.Rand, pl *placement.Placement, count int) []Move {
	seen := make(map[Move]bool)
	var moves []Move
	for len(moves) < count {
		obj, from, to := randomSessionMove(rng, pl)
		m := Move{Obj: obj, From: from, To: to}
		if seen[m] {
			continue
		}
		seen[m] = true
		moves = append(moves, m)
	}
	return moves
}

// TestForkIsolation pins the fork contract: moves driven through a
// child never corrupt the parent. The child walks a random move chain
// (checked against a cold engine at every step); afterwards the parent
// still evaluates its original placement to the original damage, and a
// parent move chain still matches cold engines.
func TestForkIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	topo, err := topology.UniformTree(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl := randomPlacement(rng, 12, 3, 24)
	const s, d = 2, 2
	se, err := NewDomainSession(pl, topo, topology.Leaf, s, d, SearchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := se.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}

	child := se.Fork()
	cur := pl.Clone()
	for mv := 0; mv < 6; mv++ {
		obj, from, to := randomSessionMove(rng, cur)
		if err := cur.MoveReplica(obj, from, to); err != nil {
			t.Fatal(err)
		}
		got, err := child.Move(obj, from, to)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := DomainWorstCase(cur, topo, s, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Failed != cold.Failed {
			t.Fatalf("child move %d: damage %d, cold engine %d", mv, got.Failed, cold.Failed)
		}
	}

	// The parent's placement and instance are untouched by the child.
	after, err := se.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Failed != base.Failed {
		t.Fatalf("parent damage drifted after child moves: %d, want %d", after.Failed, base.Failed)
	}
	if !reflect.DeepEqual(se.Placement(), pl) {
		t.Fatal("parent placement mutated by child moves")
	}
	// And the parent still moves correctly on its own.
	parentCur := pl.Clone()
	for mv := 0; mv < 4; mv++ {
		obj, from, to := randomSessionMove(rng, parentCur)
		if err := parentCur.MoveReplica(obj, from, to); err != nil {
			t.Fatal(err)
		}
		got, err := se.Move(obj, from, to)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := DomainWorstCase(parentCur, topo, s, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Failed != cold.Failed {
			t.Fatalf("parent move %d after fork: damage %d, cold engine %d", mv, got.Failed, cold.Failed)
		}
	}
}

// TestProbeMovesDeterministic pins the batch contract: ProbeMoves at
// every worker count returns results byte-identical to the serial
// probe scan — damage, witness, exactness, and the visited-state
// counts — and leaves the session at its base state (the next
// Evaluate answers the base placement).
func TestProbeMovesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	topo, err := topology.UniformTree(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl := randomPlacement(rng, 12, 3, 24)
	const s, d = 2, 2
	moves := probeBatch(rng, pl, 24)
	// An invalid move must report Failed = -1 in its slot without
	// disturbing its neighbors.
	moves[7] = Move{Obj: 0, From: moves[7].From, To: moves[7].To}
	for pl.Objects[0].Get(moves[7].From) { // ensure From really lacks a replica
		moves[7].From = (moves[7].From + 1) % pl.N
	}

	var want []SessionResult
	var wantStats SessionStats
	for _, workers := range []int{1, 2, 8} {
		se, err := NewDomainSession(pl, topo, topology.Leaf, s, d, SearchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		base, err := se.Evaluate(nil)
		if err != nil {
			t.Fatal(err)
		}
		got := se.ProbeMoves(moves, workers)
		if want == nil {
			want = got
			wantStats = se.Stats()
			wantStats.Forks = 0
			// Sanity: every valid probe matches a cold engine.
			for i, m := range moves {
				cur := pl.Clone()
				if err := cur.MoveReplica(m.Obj, m.From, m.To); err != nil {
					if got[i].Failed != -1 {
						t.Fatalf("invalid move %d reported %d, want -1", i, got[i].Failed)
					}
					continue
				}
				cold, err := DomainWorstCase(cur, topo, s, d, 0)
				if err != nil {
					t.Fatal(err)
				}
				if got[i].Failed != cold.Failed {
					t.Fatalf("probe %d: damage %d, cold engine %d", i, got[i].Failed, cold.Failed)
				}
			}
		} else if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: probe results differ from serial\n got %+v\nwant %+v", workers, got, want)
		}
		st := se.Stats()
		st.Forks = 0 // fork count legitimately varies with workers
		if st != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, st, wantStats)
		}
		after, err := se.Evaluate(nil)
		if err != nil {
			t.Fatal(err)
		}
		if after.Failed != base.Failed || !reflect.DeepEqual(after.Nodes, base.Nodes) {
			t.Fatalf("workers=%d: base state disturbed: %+v, want %+v", workers, after, base)
		}
	}
}

// TestSessionMemoEviction pins the capped-memo contract: a session
// whose memo cap forces evictions still answers every re-evaluation
// correctly (an evicted placement re-searches), and reports the
// evictions in its stats.
func TestSessionMemoEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pl := randomPlacement(rng, 10, 3, 20)
	const s, k = 2, 3
	// Cap far below the chain's distinct placements: one entry per
	// shard at most.
	se, err := NewNodeSession(pl, s, k, SearchOpts{MemoCap: memoShards})
	if err != nil {
		t.Fatal(err)
	}
	cur := pl.Clone()
	type step struct{ obj, from, to, damage int }
	var chain []step
	for mv := 0; mv < 40; mv++ {
		obj, from, to := randomSessionMove(rng, cur)
		if err := cur.MoveReplica(obj, from, to); err != nil {
			t.Fatal(err)
		}
		got, err := se.Move(obj, from, to)
		if err != nil {
			t.Fatal(err)
		}
		chain = append(chain, step{obj, from, to, got.Failed})
	}
	if st := se.Stats(); st.MemoEvicted == 0 {
		t.Fatalf("40 distinct placements under MemoCap=%d evicted nothing: %+v", memoShards, st)
	}
	// Walk the chain backwards: every revert's damage must match what
	// the forward pass measured, evicted or not.
	for i := len(chain) - 1; i > 0; i-- {
		st := chain[i]
		got, err := se.Move(st.obj, st.to, st.from)
		if err != nil {
			t.Fatal(err)
		}
		if got.Failed != chain[i-1].damage {
			t.Fatalf("revert %d: damage %d, want %d", i, got.Failed, chain[i-1].damage)
		}
		if !got.Exact {
			t.Fatalf("revert %d not exact", i)
		}
	}
}

// TestMoveIntoScratchAllocs pins the satellite's allocation contract:
// once a probe pair (apply + revert) is answered by the memo, driving
// it through MoveInto with reused result scratch allocates nothing.
func TestMoveIntoScratchAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	topo, err := topology.UniformTree(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl := randomPlacement(rng, 12, 3, 24)
	se, err := NewDomainSession(pl, topo, topology.Leaf, 2, 2, SearchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.Evaluate(nil); err != nil {
		t.Fatal(err)
	}
	m := Move{}
	m.Obj, m.From, m.To = randomSessionMove(rng, pl)
	var dst SessionResult
	// Warm up: both placements of the pair land in the memo and the
	// scratch slices grow to size.
	for i := 0; i < 3; i++ {
		if err := se.MoveInto(&dst, m.Obj, m.From, m.To); err != nil {
			t.Fatal(err)
		}
		if err := se.MoveInto(&dst, m.Obj, m.To, m.From); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := se.MoveInto(&dst, m.Obj, m.From, m.To); err != nil {
			t.Fatal(err)
		}
		if err := se.MoveInto(&dst, m.Obj, m.To, m.From); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("memo-hit probe pair allocated %.1f times, want 0", allocs)
	}
}
