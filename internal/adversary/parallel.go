package adversary

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/placement"
)

// WorstCaseParallel is WorstCase fanned out over worker goroutines: the
// top-level branches of the search tree (the choice of the first failed
// candidate) are distributed across workers, which share the incumbent
// bound through an atomic so that a strong attack found by one worker
// prunes the others. workers <= 0 selects GOMAXPROCS. The budget, when
// positive, is shared (approximately) across the whole search.
//
// The result equals WorstCase's on exact runs; with a budget, the set of
// states visited differs between runs, so budgeted results may vary
// (each is still a valid attack and lower bound on the damage).
func WorstCaseParallel(pl *placement.Placement, s, k int, budget int64, workers int) (Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	seed, err := Greedy(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	// Probe instance to size the search; each worker builds its own.
	probe, err := newInstance(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	m := len(probe.candidates)
	if m < k || workers == 1 {
		return WorstCase(pl, s, k, budget)
	}

	var (
		mu        sync.Mutex
		best      = seed
		bestScore atomic.Int64 // mirror of best.Failed for lock-free pruning
		visited   atomic.Int64
		exhausted atomic.Bool
	)
	bestScore.Store(int64(seed.Failed))
	report := func(failed int, nodes []int) {
		mu.Lock()
		defer mu.Unlock()
		if failed > best.Failed {
			best.Failed = failed
			best.Nodes = nodes
			bestScore.Store(int64(failed))
		}
	}

	// Top-level branches: first chosen candidate index. Starts are
	// consumed from a shared counter so fast workers steal work.
	var nextStart atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			in, ierr := newInstance(pl, s, k)
			if ierr != nil {
				return // cannot happen: probe succeeded
			}
			cur := make([]int, 0, k)
			var dfs func(start, failed int, loadSum int64)
			dfs = func(start, failed int, loadSum int64) {
				if exhausted.Load() {
					return
				}
				if v := visited.Add(1); budget > 0 && v > budget {
					exhausted.Store(true)
					return
				}
				rem := k - len(cur)
				if rem == 0 {
					if int64(failed) > bestScore.Load() {
						report(failed, candidateNodes(in, cur))
					}
					return
				}
				if start+rem > m {
					return
				}
				maxLoad := loadSum + in.prefix[start+rem] - in.prefix[start]
				if maxLoad/int64(in.s) <= bestScore.Load() {
					return
				}
				if rem == 1 {
					bestI, bestGain := -1, -1
					for i := start; i < m; i++ {
						if g := in.marginal(i); g > bestGain {
							bestGain = g
							bestI = i
						}
					}
					if bestI >= 0 && int64(failed+bestGain) > bestScore.Load() {
						cur = append(cur, bestI)
						report(failed+bestGain, candidateNodes(in, cur))
						cur = cur[:len(cur)-1]
					}
					return
				}
				for i := start; i <= m-rem; i++ {
					newly := in.add(i)
					cur = append(cur, i)
					dfs(i+1, failed+newly, loadSum+in.loads[i])
					cur = cur[:len(cur)-1]
					in.remove(i)
					if exhausted.Load() {
						return
					}
				}
			}
			for {
				first := int(nextStart.Add(1)) - 1
				if first > m-k || exhausted.Load() {
					return
				}
				newly := in.add(first)
				cur = append(cur[:0], first)
				dfs(first+1, newly, in.loads[first])
				cur = cur[:0]
				in.remove(first)
			}
		}()
	}
	wg.Wait()

	best.Visited = visited.Load()
	best.Exact = !exhausted.Load()
	if best.Nodes == nil {
		best.Nodes = seed.Nodes
	}
	sort.Ints(best.Nodes)
	return best, nil
}
