package adversary

import (
	"runtime"
	"sync"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/search"
	"repro/internal/topology"
)

// This file fans the branch-and-bound engines out over worker
// goroutines. The node- and domain-level parallel engines ride the same
// core driver (search.BranchAndBoundParallelWith — a work-stealing
// scheduler over explicit {prefix, sibling-range} frontier tasks, so
// skewed trees rebalance instead of starving workers) through the With
// variants in adversary.go and domain.go; the constrained pair is
// already task-parallel by construction and shards the domain-subset
// enumeration here. In every case workers share the incumbent bound, so
// a strong attack found by one worker prunes the others, and they share
// the state budget — consumed in leased chunks that are settled at
// exit, keeping the package-wide one-state-per-partial-attack
// accounting exact.

// WorstCaseParallel is WorstCase fanned out over work-stealing worker
// goroutines. workers <= 0 selects GOMAXPROCS; workers == 1 is exactly
// the serial engine. The budget, when positive, is shared across the
// whole search.
//
// Exact runs return byte-identical results to WorstCase; with a budget,
// the set of states visited differs between runs, so budgeted results
// may vary (each is still a valid attack and lower bound on the damage).
func WorstCaseParallel(pl *placement.Placement, s, k int, budget int64, workers int) (Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default only; results are proven worker-count invariant
	}
	return WorstCaseWith(pl, s, k, SearchOpts{Budget: budget, Workers: workers})
}

// DomainWorstCasePar is DomainWorstCase fanned out over worker
// goroutines, mirroring WorstCaseParallel at the whole-domain level;
// needed once topologies reach hundreds of domains. workers <= 0 selects
// GOMAXPROCS; workers == 1 is exactly the serial engine. Exact runs
// return the same DomainResult damage as DomainWorstCase.
func DomainWorstCasePar(pl *placement.Placement, topo *topology.Topology, s, d int, budget int64, workers int) (DomainResult, error) {
	return DomainWorstCaseParAt(pl, topo, topology.Leaf, s, d, budget, workers)
}

// DomainWorstCaseParAt is DomainWorstCasePar attacking whole domains of
// the given topology level (0 = top, topology.Leaf = racks).
func DomainWorstCaseParAt(pl *placement.Placement, topo *topology.Topology, level, s, d int, budget int64, workers int) (DomainResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default only; results are proven worker-count invariant
	}
	return DomainWorstCaseAtWith(pl, topo, level, s, d, SearchOpts{Budget: budget, Workers: workers})
}

// ConstrainedWorstCasePar is ConstrainedWorstCase with the C(D, d)
// domain subsets sharded across worker goroutines; each worker runs the
// per-subset branch-and-bound serially with its own reusable scratch
// instance, while the incumbent damage and the state budget are shared.
// workers <= 0 selects GOMAXPROCS; workers == 1 is exactly the serial
// engine.
func ConstrainedWorstCasePar(pl *placement.Placement, topo *topology.Topology, s, k, d int, budget int64, workers int) (DomainResult, error) {
	return ConstrainedWorstCaseParAt(pl, topo, topology.Leaf, s, k, d, budget, workers)
}

// ConstrainedWorstCaseParAt is ConstrainedWorstCasePar with the blast
// radius counted in whole domains of the given topology level.
func ConstrainedWorstCaseParAt(pl *placement.Placement, topo *topology.Topology, level, s, k, d int, budget int64, workers int) (DomainResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default only; results are proven worker-count invariant
	}
	return ConstrainedWorstCaseAtWith(pl, topo, level, s, k, d, SearchOpts{Budget: budget, Workers: workers})
}

// constrainedSearchPar is the sharded constrained search behind
// ConstrainedWorstCaseWith for workers > 1.
func constrainedSearchPar(pl *placement.Placement, topo *topology.Topology, level, s, k, d int, budget int64, workers int, bound search.Bound, w []int64) (DomainResult, error) {
	sh, err := newConstrainedShared(pl, topo, level, s, k, d, w)
	if err != nil {
		return DomainResult{}, err
	}
	bud := search.NewBudget(budget)
	var (
		mu   sync.Mutex
		best = DomainResult{Failed: -1, Exact: true}
	)
	// One producer enumerates the C(D, d) subsets; workers steal them
	// from the channel, so expensive subsets don't serialize behind a
	// static partition. A drained budget aborts the enumeration; the
	// skipped subsets make the result inexact even if every search that
	// did run happened to complete (aborted is ordered before the
	// channel close the workers observe, so reading it after Wait is
	// race-free).
	jobs := make(chan []int, 2*workers)
	aborted := false
	go func() {
		defer close(jobs)
		combin.ForEachSubset(sh.topo.NumDomains(), d, func(domains []int) bool {
			if bud.Exhausted() {
				aborted = true
				return false
			}
			jobs <- append([]int(nil), domains...)
			return true
		})
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := sh.newScratch()
			for domains := range jobs {
				in := sh.subsetInstance(domains, sc)
				seed := search.Greedy(in)
				in.Reset()
				// Lift the shared incumbent into this subset's seed so
				// the bound prunes across subsets and workers alike.
				mu.Lock()
				global := best.Failed
				mu.Unlock()
				if global > seed.Failed {
					seed = search.Result{Failed: global}
				}
				sub := search.BranchAndBoundWith(in, seed, bud, bound)
				res := in.result(sub)
				mu.Lock()
				if res.Failed > best.Failed {
					best.Failed = res.Failed
					best.Nodes = res.Nodes
					best.Domains = domainsOfNodes(sh.topo, res.Nodes)
				}
				if !res.Exact {
					best.Exact = false
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if aborted {
		best.Exact = false
	}
	if best.Failed < 0 {
		best.Failed = 0
	}
	best.Visited = bud.Used()
	return best, nil
}
