package adversary

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/placement"
	"repro/internal/search"
	"repro/internal/topology"
)

// Session is the incremental face of the adversary: one live
// search.HitInstance per engine configuration, kept in sync with a
// placement across one-replica moves, so chains of nearly identical
// evaluations (spread candidate scoring, reconciler re-plans) skip the
// per-call instance rebuild the one-shot engines pay.
//
// Three accelerations stack, every one provably exact:
//
//   - CSR move deltas: Move patches the live instance in place
//     (HitInstance.ApplyMove) instead of re-aggregating hits — and a
//     move that stays inside one attack-level domain does not change
//     the domain instance at all, so the previous result is returned
//     verbatim.
//   - Warm-started search: the previous witness is re-validated on the
//     patched instance (search.Revalidate) and seeds branch-and-bound
//     whenever it beats the greedy incumbent, so the first prune is
//     already tight; and since one replica of weight w shifts the
//     optimum by at most ±w, a re-validated witness that gains the
//     full +w is provably optimal and skips the search entirely.
//   - Damage memoization: exact results are cached by canonical
//     placement signature (placement.Signature, folded with the weight
//     vector), so re-evaluating a placement the session has already
//     seen — the revert half of a probe-and-revert re-plan — costs a
//     hash lookup. Budgeted (inexact) results are never memoized: a
//     later call with budget to spare may improve them.
//
// A Session is safe for concurrent use; evaluations serialize on an
// internal lock. Parallelism lives in two places: inside one evaluation
// (SearchOpts.Workers) and across probe evaluations (ProbeMoves fans a
// batch of probes over Fork children that share the session's damage
// memo). The memo is capped (SearchOpts.MemoCap) with FIFO eviction, so
// an unbounded reconcile run cannot grow it without limit.
type Session struct {
	mu   sync.Mutex
	s, k int
	topo *topology.Topology // collapsed attack-level view; nil = node-level
	opts SearchOpts

	pl   *placement.Placement // the session's own copy, in sync with inst
	inst *search.HitInstance
	ids  []int // candidate position → node/domain id
	pos  []int // node/domain id → candidate position

	last  *lastEval    // reused across evaluations (steady state: no alloc)
	memo  *sessionMemo // sharded signature→result memo, shared with forks
	stats SessionStats

	sigBuf []int // SignatureScratch reuse

	// Rebuild scratch.
	lists [][]search.Hit
	loads []int64
	keys  []int32
	byID  [][]search.Hit
}

// lastEval remembers the previous evaluation of the live instance: the
// warm-start seed and the baseline of the ±w move bracket.
type lastEval struct {
	res SessionResult
	ids []int // witness identities (node or domain ids), ascending
}

// SessionResult is one evaluation's outcome, a DomainResult-shaped
// answer plus the incremental provenance flags.
type SessionResult struct {
	Failed  int   // objects (or weight, under ObjWeights) failed by the best attack found
	Domains []int // attacked domains at the session's level (nil for node-level sessions)
	Nodes   []int // the attacking node set, sorted
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search states visited by THIS evaluation (0 on memo/skip paths)
	Warm    bool  // branch-and-bound was seeded by the previous witness
	Memo    bool  // answered from the damage memo without searching
}

// SessionStats counts a session's incremental activity — the numbers
// the CLI surfaces under -stats.
type SessionStats struct {
	Evals        int64 // evaluations answered (all paths)
	MemoHits     int64 // answered by the placement-signature memo
	WarmSeeds    int64 // searches seeded by the previous witness (it beat greedy)
	BracketSkips int64 // searches skipped: the re-validated witness hit the ±w move bracket
	NoopMoves    int64 // moves inside one domain: instance unchanged, previous result returned
	Moves        int64 // one-replica CSR deltas applied to the live instance
	Rebuilds     int64 // full instance (re)builds
	Visited      int64 // total search states across all evaluations
	Forks        int64 // children forked for parallel probe batches
	BatchProbes  int64 // probes answered through ProbeMoves
	MemoEvicted  int64 // memo entries evicted by the capacity cap (shared across forks)
}

// add folds a fork's counters into the parent's after a probe batch.
// MemoEvicted is deliberately skipped: forks share the parent's memo,
// whose global eviction counter Stats reads directly.
func (st *SessionStats) add(o SessionStats) {
	st.Evals += o.Evals
	st.MemoHits += o.MemoHits
	st.WarmSeeds += o.WarmSeeds
	st.BracketSkips += o.BracketSkips
	st.NoopMoves += o.NoopMoves
	st.Moves += o.Moves
	st.Rebuilds += o.Rebuilds
	st.Visited += o.Visited
	st.Forks += o.Forks
	st.BatchProbes += o.BatchProbes
}

// NewNodeSession opens an incremental session for the node-level
// adversary (the WorstCase family): k node failures, fatality
// threshold s, searched per opts. The session copies pl and owns its
// copy; drive it with Move/Evaluate.
func NewNodeSession(pl *placement.Placement, s, k int, opts SearchOpts) (*Session, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if k < 1 || k >= pl.N {
		return nil, fmt.Errorf("adversary: k = %d must satisfy 1 <= k < n = %d", k, pl.N)
	}
	if err := checkObjWeights(opts.ObjWeights, pl.B()); err != nil {
		return nil, err
	}
	se := &Session{s: s, k: k, opts: opts, pl: pl.Clone(),
		inst: search.NewHitInstance(s, pl.B()),
		memo: newSessionMemo(opts.resolveMemoCap())}
	se.rebuild()
	return se, nil
}

// NewDomainSession opens an incremental session for the whole-domain
// adversary (the DomainWorstCase family) at the given topology level:
// d whole-domain failures per evaluation.
func NewDomainSession(pl *placement.Placement, topo *topology.Topology, level, s, d int, opts SearchOpts) (*Session, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	flat, err := collapseTo(pl, topo, level)
	if err != nil {
		return nil, err
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if d < 1 || d > flat.NumDomains() {
		return nil, fmt.Errorf("adversary: d = %d must satisfy 1 <= d <= domains = %d", d, flat.NumDomains())
	}
	if err := checkObjWeights(opts.ObjWeights, pl.B()); err != nil {
		return nil, err
	}
	se := &Session{s: s, k: d, topo: flat, opts: opts, pl: pl.Clone(),
		inst: search.NewHitInstance(s, pl.B()),
		memo: newSessionMemo(opts.resolveMemoCap())}
	se.rebuild()
	return se, nil
}

// Placement returns a copy of the placement the session currently
// evaluates.
func (se *Session) Placement() *placement.Placement {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.pl.Clone()
}

// Stats returns a snapshot of the session's incremental counters.
// After a ProbeMoves batch the forks' counters are already folded in;
// MemoEvicted reads the shared memo's global eviction count.
func (se *Session) Stats() SessionStats {
	se.mu.Lock()
	defer se.mu.Unlock()
	st := se.stats
	st.MemoEvicted = se.memo.evicted.Load()
	return st
}

// Move transfers one replica of obj between nodes and returns the
// worst-case damage of the resulting placement — the incremental fast
// path: the live instance is patched in place, the previous witness
// warms the search, and the ±w bracket or the memo may answer without
// searching at all.
//
// An out-of-range object or node index returns a
// *placement.RangeError (match with errors.As) and leaves the session
// untouched: the range check runs before any CSR patch, so a bad index
// can never reach search.HitInstance.ApplyMove, which panics on one.
func (se *Session) Move(obj, from, to int) (SessionResult, error) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if err := se.pl.MoveReplica(obj, from, to); err != nil {
		return SessionResult{}, err
	}
	return se.copyOut(se.applyMove(obj, from, to)), nil
}

// MoveInto is Move writing the result into dst, reusing dst's Nodes
// and Domains capacity — the allocation-free variant for hot probe
// loops (a memo- or bracket-answered move then allocates nothing at
// all). dst is untouched on error.
func (se *Session) MoveInto(dst *SessionResult, obj, from, to int) error {
	se.mu.Lock()
	defer se.mu.Unlock()
	if err := se.pl.MoveReplica(obj, from, to); err != nil {
		return err
	}
	copyInto(dst, se.applyMove(obj, from, to))
	return nil
}

// Evaluate returns the worst-case damage of pl, re-targeting the
// session at it. A pl differing from the session's current placement
// by exactly one replica move rides the incremental path; anything
// else (including a nil pl: evaluate the current placement) falls back
// to one full rebuild. The placement must keep the session's shape
// (same node count, replication factor and object count).
func (se *Session) Evaluate(pl *placement.Placement) (SessionResult, error) {
	se.mu.Lock()
	defer se.mu.Unlock()
	if pl == nil {
		return se.copyOut(se.eval(false, 0)), nil
	}
	if pl.N != se.pl.N || pl.R != se.pl.R || pl.B() != se.pl.B() {
		return SessionResult{}, fmt.Errorf("adversary: session shaped (n=%d r=%d b=%d) cannot evaluate (n=%d r=%d b=%d)",
			se.pl.N, se.pl.R, se.pl.B(), pl.N, pl.R, pl.B())
	}
	// Diff against the held placement: 0 changed objects → evaluate as
	// is; 1 changed object that is a single replica move → patch; more
	// → rebuild.
	changed := -1
	for obj := range pl.Objects {
		if pl.Objects[obj].Equal(se.pl.Objects[obj]) {
			continue
		}
		if changed >= 0 { // second changed object: rebuild
			changed = -2
			break
		}
		changed = obj
	}
	switch {
	case changed == -1:
		return se.copyOut(se.eval(false, 0)), nil
	case changed >= 0:
		if from, to, ok := singleMove(se.pl.Objects[changed].Members(nil), pl.Objects[changed].Members(nil)); ok {
			if err := se.pl.MoveReplica(changed, from, to); err != nil {
				return SessionResult{}, err
			}
			return se.copyOut(se.applyMove(changed, from, to)), nil
		}
	}
	if err := pl.Validate(); err != nil {
		return SessionResult{}, err
	}
	se.pl = pl.Clone()
	se.rebuild()
	return se.copyOut(se.eval(false, 0)), nil
}

// singleMove reports whether two sorted replica sets differ by exactly
// one element, returning the (removed, added) pair.
func singleMove(old, new []int) (from, to int, ok bool) {
	from, to = -1, -1
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i] == new[j]:
			i++
			j++
		case old[i] < new[j]:
			if from >= 0 {
				return 0, 0, false
			}
			from = old[i]
			i++
		default:
			if to >= 0 {
				return 0, 0, false
			}
			to = new[j]
			j++
		}
	}
	if i < len(old) {
		if from >= 0 || i+1 < len(old) {
			return 0, 0, false
		}
		from = old[i]
	}
	if j < len(new) {
		if to >= 0 || j+1 < len(new) {
			return 0, 0, false
		}
		to = new[j]
	}
	return from, to, from >= 0 && to >= 0
}

// applyMove patches the live instance for a replica of obj moving
// between the given NODES (the placement is already updated) and
// evaluates the result. The returned result's slices are internal
// (retained by the memo and warm-start baseline); public entry points
// copy before handing them out.
func (se *Session) applyMove(obj, from, to int) SessionResult {
	cf, ct := from, to
	if se.topo != nil {
		cf, ct = se.topo.DomainOf(from), se.topo.DomainOf(to)
		if cf == ct {
			// The move never crosses a domain boundary: the domain
			// instance — hence the worst case — is unchanged.
			se.stats.NoopMoves++
			if se.last != nil {
				se.stats.Evals++
				res := se.last.res
				res.Visited = 0
				res.Memo = true
				if res.Exact {
					se.memo.put(se.sig(), res)
				}
				return res
			}
			return se.eval(false, 0)
		}
	}
	se.stats.Moves++
	se.inst.ApplyMove(obj, se.pos[cf], se.pos[ct])
	// One replica of weight w moved, so the optimum shifts by at most
	// ±w: if the previous result was exact, anything achieving
	// prevFailed + w is provably the new optimum (the bracket skip).
	if se.last != nil && se.last.res.Exact {
		wd := int64(1)
		if se.opts.ObjWeights != nil {
			wd = se.opts.ObjWeights[obj]
		}
		return se.eval(true, se.last.res.Failed+int(wd))
	}
	return se.eval(false, 0)
}

// sig is the memo key of the session's current placement, hashed
// through the reused scratch buffer (no allocation in steady state).
func (se *Session) sig() placement.Sig {
	var s placement.Sig
	s, se.sigBuf = placement.SignatureScratch(se.pl, se.sigBuf)
	return placement.WeightSignature(s, se.opts.ObjWeights)
}

// eval answers one evaluation of the current live instance: memo →
// greedy + re-validated witness → bracket skip or (warm-started)
// branch-and-bound. ceiling, when bracketed, is a proven upper bound
// on the optimum. The returned result's slices are internal; public
// entry points copy.
func (se *Session) eval(bracketed bool, ceiling int) SessionResult {
	se.stats.Evals++
	sig := se.sig()
	if cached, ok := se.memo.get(sig); ok {
		se.stats.MemoHits++
		cached.Visited = 0
		cached.Memo = true
		se.remember(cached)
		return cached
	}

	seed := search.Greedy(se.inst)
	se.inst.Reset()
	warm := false
	if se.last != nil {
		sel := make([]int, len(se.last.ids))
		for i, id := range se.last.ids {
			sel[i] = se.pos[id]
		}
		sort.Ints(sel)
		if rv := search.Revalidate(se.inst, sel); rv > seed.Failed {
			seed = search.Result{Failed: rv, Sel: sel}
			warm = true
			se.stats.WarmSeeds++
		}
	}

	var res search.Result
	if bracketed && seed.Failed >= ceiling {
		// The seed meets the ±w bracket: nothing can beat it.
		se.stats.BracketSkips++
		res = search.Result{Failed: seed.Failed, Sel: seed.Sel, Exact: true}
	} else {
		bud := search.NewBudget(se.opts.Budget)
		if workers := se.opts.resolveWorkers(); workers > 1 {
			// The work-stealing driver unwinds the probe before its
			// workers exit, so se.inst stays clean for the next eval.
			res, _ = search.BranchAndBoundParallelWith(se.inst, func() (search.Instance, error) {
				return se.inst.Clone(), nil
			}, seed, bud, workers, se.opts.Bound)
		} else {
			res = search.BranchAndBoundWith(se.inst, seed, bud, se.opts.Bound)
		}
		se.stats.Visited += res.Visited
	}

	out := se.translate(res)
	out.Warm = warm
	se.remember(out)
	if out.Exact {
		se.memo.put(sig, out)
	}
	return out
}

// translate maps a core result from candidate positions to identities.
func (se *Session) translate(res search.Result) SessionResult {
	ids := make([]int, len(res.Sel))
	for i, ci := range res.Sel {
		ids[i] = se.ids[ci]
	}
	sort.Ints(ids)
	out := SessionResult{Failed: res.Failed, Exact: res.Exact, Visited: res.Visited}
	if se.topo != nil {
		out.Domains = ids
		out.Nodes = se.topo.FailedSet(ids).Members(nil)
	} else {
		out.Nodes = ids
	}
	return out
}

// remember stores the evaluation as the warm-start baseline for the
// next one, reusing the lastEval box (result slices are replaced
// wholesale and never mutated in place, so aliasing them is safe).
func (se *Session) remember(res SessionResult) {
	ids := res.Nodes
	if se.topo != nil {
		ids = res.Domains
	}
	if se.last == nil {
		se.last = &lastEval{}
	}
	se.last.res = res
	se.last.ids = ids
}

// copyOut hands the caller its own slices: results are retained in the
// memo and the warm-start baseline, which a caller must not mutate.
func (se *Session) copyOut(res SessionResult) SessionResult {
	res.Domains = append([]int(nil), res.Domains...)
	res.Nodes = append([]int(nil), res.Nodes...)
	return res
}

// copyInto is copyOut into caller-owned storage: dst's slice capacity
// is reused, so a steady-state probe loop allocates nothing.
func copyInto(dst *SessionResult, res SessionResult) {
	doms, nodes := dst.Domains, dst.Nodes
	*dst = res
	dst.Domains = append(doms[:0], res.Domains...)
	dst.Nodes = append(nodes[:0], res.Nodes...)
}

// Fork clones the session into an independent child sharing the
// parent's damage memo: the live instance is deep-copied
// (search.CloneForMoves), the id ↔ position maps and warm-start
// baseline come along, and the child re-binds its own onSwap mirror —
// so moves on the child never corrupt the parent, while every exact
// result either side publishes is a memo hit for both. Children are
// what ProbeMoves fans batches over; a caller driving a fork directly
// gets the full Session API on it.
func (se *Session) Fork() *Session {
	se.mu.Lock()
	defer se.mu.Unlock()
	return se.forkLocked()
}

func (se *Session) forkLocked() *Session {
	se.stats.Forks++
	child := &Session{
		s: se.s, k: se.k, topo: se.topo, opts: se.opts,
		pl:   se.pl.Clone(),
		inst: se.inst.CloneForMoves(),
		ids:  append([]int(nil), se.ids...),
		pos:  append([]int(nil), se.pos...),
		memo: se.memo,
	}
	if se.last != nil {
		l := *se.last
		child.last = &l
	}
	child.keys = make([]int32, len(child.ids))
	for i, id := range child.ids {
		child.keys[i] = int32(id)
	}
	child.inst.EnableMoves(child.keys, func(i, j int) {
		a, b := child.ids[i], child.ids[j]
		child.ids[i], child.ids[j] = b, a
		child.pos[a], child.pos[b] = j, i
	})
	return child
}

// probe scores one apply→evaluate→revert candidate without disturbing
// the warm-start baseline: the instance is patched, evaluated exactly
// as Session.Move would, then patched straight back (no revert
// evaluation — the canonical re-sort makes the round trip the
// identity) and the pre-probe baseline restored, so every probe in a
// chain is the same pure function of (base state, move). A move the
// placement rejects (no replica at From, or To already holds one)
// reports Failed = -1. Callers hold the session private (the lock, or
// a goroutine-private fork).
func (se *Session) probe(m Move) SessionResult {
	if err := se.pl.MoveReplica(m.Obj, m.From, m.To); err != nil {
		return SessionResult{Failed: -1}
	}
	var saved lastEval
	savedOK := se.last != nil
	if savedOK {
		saved = *se.last // the box is reused; save by value
	}
	res := se.copyOut(se.applyMove(m.Obj, m.From, m.To))
	if err := se.pl.MoveReplica(m.Obj, m.To, m.From); err != nil {
		panic(fmt.Sprintf("adversary: probe revert failed: %v", err))
	}
	cf, ct := m.From, m.To
	if se.topo != nil {
		cf, ct = se.topo.DomainOf(m.From), se.topo.DomainOf(m.To)
	}
	if cf != ct {
		se.stats.Moves++
		se.inst.ApplyMove(m.Obj, se.pos[ct], se.pos[cf])
	}
	if savedOK {
		*se.last = saved
	} else {
		se.last = nil
	}
	return res
}

// ProbeMoves scores a batch of candidate moves — apply, evaluate,
// revert each — and returns their results in candidate order. workers
// > 1 fans the batch over that many Fork children sharing the
// session's memo; because every probe is evaluated from the same base
// state and warm baseline (see probe), the results — damage, witness,
// exactness, even the visited-state counts — are byte-identical at any
// worker count, as long as the memo cap is not reached (eviction order
// is publish order, which parallelism does not fix; results stay
// correct regardless, only memo hits vary). The forks' counters fold
// into the session's stats before the call returns. An invalid move
// reports Failed = -1 in its slot.
func (se *Session) ProbeMoves(moves []Move, workers int) []SessionResult {
	se.mu.Lock()
	defer se.mu.Unlock()
	out := make([]SessionResult, len(moves))
	if len(moves) == 0 {
		return out
	}
	se.stats.BatchProbes += int64(len(moves))
	if workers > len(moves) {
		workers = len(moves)
	}
	if workers <= 1 {
		for i, m := range moves {
			out[i] = se.probe(m)
		}
		return out
	}
	children := make([]*Session, workers)
	for wi := range children {
		children[wi] = se.forkLocked()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, ch := range children {
		wg.Add(1)
		go func(ch *Session) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(moves) {
					return
				}
				out[i] = ch.probe(moves[i])
			}
		}(ch)
	}
	wg.Wait()
	for _, ch := range children {
		se.stats.add(ch.stats)
	}
	return out
}

// rebuild (re)derives the live instance from the session's placement:
// every node (or attack-level domain) is a candidate — any move target
// must exist — ordered canonically by weighted load descending, ties
// by id ascending, exactly how the one-shot engines order theirs. The
// id ↔ position maps then track every ApplyMove re-sort through the
// EnableMoves onSwap mirror.
func (se *Session) rebuild() {
	se.stats.Rebuilds++
	w := se.opts.ObjWeights
	if se.topo != nil {
		se.byID, _ = placement.DomainHits(se.pl, se.topo)
	} else {
		se.byID = nodeHits(se.pl)
	}
	wloads := weightedLoads(se.byID, w)
	m := len(se.byID)
	if se.ids == nil {
		se.ids = make([]int, m)
		se.pos = make([]int, m)
		se.keys = make([]int32, m)
		se.lists = make([][]search.Hit, m)
		se.loads = make([]int64, m)
	}
	for i := range se.ids {
		se.ids[i] = i
	}
	sort.Slice(se.ids, func(a, b int) bool {
		if wloads[se.ids[a]] != wloads[se.ids[b]] {
			return wloads[se.ids[a]] > wloads[se.ids[b]]
		}
		return se.ids[a] < se.ids[b]
	})
	for i, id := range se.ids {
		se.pos[id] = i
		se.keys[i] = int32(id)
		se.lists[i] = se.byID[id]
		se.loads[i] = wloads[id]
	}
	se.inst.Reinit(se.k, se.lists, se.loads)
	se.inst.SetWeights(w)
	se.inst.EnableMoves(se.keys, func(i, j int) {
		a, b := se.ids[i], se.ids[j]
		se.ids[i], se.ids[j] = b, a
		se.pos[a], se.pos[b] = j, i
	})
	se.last = nil // witness positions and instance are fresh; memo survives
}
