package adversary

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/combin"
	"repro/internal/placement"
)

// referenceWorst computes the worst k-failure by direct subset enumeration
// using an entirely independent code path (bitsets, no incremental state).
func referenceWorst(pl *placement.Placement, s, k int) int {
	worst := 0
	combin.ForEachSubset(pl.N, k, func(nodes []int) bool {
		failedSet := combin.NewBitsetFrom(pl.N, nodes)
		if f := pl.FailedObjects(failedSet, s); f > worst {
			worst = f
		}
		return true
	})
	return worst
}

func randomPlacement(rng *rand.Rand, n, r, b int) *placement.Placement {
	pl := placement.NewPlacement(n, r)
	nodes := make([]int, r)
	for i := 0; i < b; i++ {
		perm := rng.Perm(n)
		copy(nodes, perm[:r])
		if err := pl.Add(nodes); err != nil {
			panic(err)
		}
	}
	return pl
}

func TestExhaustiveMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(5)
		r := 2 + rng.Intn(3)
		if r > n {
			r = n
		}
		b := 5 + rng.Intn(25)
		s := 1 + rng.Intn(r)
		k := s + rng.Intn(n-s-1)
		pl := randomPlacement(rng, n, r, b)
		got, err := Exhaustive(pl, s, k)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceWorst(pl, s, k)
		if got.Failed != want {
			t.Errorf("trial %d (n=%d r=%d b=%d s=%d k=%d): Exhaustive = %d, reference = %d",
				trial, n, r, b, s, k, got.Failed, want)
		}
		if !got.Exact {
			t.Error("Exhaustive must report Exact")
		}
		// The witness must reproduce the count.
		failedSet := combin.NewBitsetFrom(n, got.Nodes)
		if f := pl.FailedObjects(failedSet, s); f != got.Failed {
			t.Errorf("witness reproduces %d failures, reported %d", f, got.Failed)
		}
		if len(got.Nodes) != k {
			t.Errorf("witness has %d nodes, want %d", len(got.Nodes), k)
		}
	}
}

func TestWorstCaseMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(6)
		r := 2 + rng.Intn(3)
		b := 10 + rng.Intn(40)
		s := 1 + rng.Intn(r)
		k := s + 1 + rng.Intn(3)
		if k >= n {
			k = n - 1
		}
		pl := randomPlacement(rng, n, r, b)
		exact, err := Exhaustive(pl, s, k)
		if err != nil {
			t.Fatal(err)
		}
		bnb, err := WorstCase(pl, s, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bnb.Failed != exact.Failed {
			t.Errorf("trial %d (n=%d r=%d b=%d s=%d k=%d): B&B = %d, exhaustive = %d",
				trial, n, r, b, s, k, bnb.Failed, exact.Failed)
		}
		if !bnb.Exact {
			t.Error("unbounded B&B must report Exact")
		}
		if bnb.Visited > exact.Visited {
			t.Errorf("B&B visited %d > exhaustive %d: pruning is not working",
				bnb.Visited, exact.Visited)
		}
	}
}

func TestGreedyIsValidLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(5)
		r := 3
		b := 20 + rng.Intn(30)
		s := 1 + rng.Intn(3)
		k := s + rng.Intn(3)
		if k >= n {
			k = n - 1
		}
		pl := randomPlacement(rng, n, r, b)
		greedy, err := Greedy(pl, s, k)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := Exhaustive(pl, s, k)
		if err != nil {
			t.Fatal(err)
		}
		if greedy.Failed > exact.Failed {
			t.Errorf("greedy %d exceeds exact %d", greedy.Failed, exact.Failed)
		}
		// The witness must reproduce the claimed damage.
		failedSet := combin.NewBitsetFrom(n, greedy.Nodes)
		if f := pl.FailedObjects(failedSet, s); f != greedy.Failed {
			t.Errorf("greedy witness reproduces %d, reported %d", f, greedy.Failed)
		}
	}
}

func TestWorstCaseBudgetDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pl := randomPlacement(rng, 20, 3, 200)
	full, err := WorstCase(pl, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := WorstCase(pl, 2, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.Exact {
		t.Error("budget-limited search on a large instance claims exactness")
	}
	if tiny.Failed > full.Failed {
		t.Errorf("budget result %d exceeds exact %d", tiny.Failed, full.Failed)
	}
	if tiny.Failed <= 0 {
		t.Error("budget result should still carry the greedy incumbent")
	}
}

func TestAdversaryParameterValidation(t *testing.T) {
	pl := placement.NewPlacement(5, 2)
	if err := pl.Add([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Exhaustive(pl, 0, 2); err == nil {
		t.Error("s = 0 accepted")
	}
	if _, err := Exhaustive(pl, 3, 2); err == nil {
		t.Error("s > r accepted")
	}
	if _, err := WorstCase(pl, 1, 0, 0); err == nil {
		t.Error("k = 0 accepted")
	}
	if _, err := WorstCase(pl, 1, 5, 0); err == nil {
		t.Error("k >= n accepted")
	}
}

func TestFewerLoadedNodesThanK(t *testing.T) {
	// 3 objects all on nodes {0,1}; k = 4 > 2 loaded nodes.
	pl := placement.NewPlacement(10, 2)
	for i := 0; i < 3; i++ {
		if err := pl.Add([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, engine := range []func(*placement.Placement, int, int) (Result, error){
		Exhaustive,
		func(p *placement.Placement, s, k int) (Result, error) { return WorstCase(p, s, k, 0) },
		Greedy,
	} {
		res, err := engine(pl, 2, 4)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 3 {
			t.Errorf("Failed = %d, want 3", res.Failed)
		}
		if len(res.Nodes) != 4 {
			t.Errorf("witness size = %d, want 4", len(res.Nodes))
		}
	}
}

// TestLemma2OnConcretePlacements is the central paper-validation property:
// every Simple(x, λ) placement must achieve Avail(π) >= lbAvail_si(x, λ)
// under the exact worst-case adversary.
func TestLemma2OnConcretePlacements(t *testing.T) {
	cases := []struct {
		n, r, x, lambda, b int
	}{
		{9, 3, 1, 1, 12},
		{9, 3, 1, 2, 20},
		{13, 3, 1, 1, 26},
		{12, 3, 0, 2, 8},
		{8, 4, 2, 1, 14},
		{10, 5, 4, 1, 40},
	}
	for _, tc := range cases {
		pl, err := placement.BuildSimple(tc.n, tc.r, tc.x, tc.lambda, tc.b, placement.SimpleOptions{})
		if err != nil {
			t.Fatalf("BuildSimple(%+v): %v", tc, err)
		}
		for s := 1; s <= tc.r; s++ {
			for k := s; k <= s+2 && k < tc.n; k++ {
				if tc.x >= s {
					continue // Lemma 2 applies for x < s
				}
				res, err := WorstCase(pl, s, k, 0)
				if err != nil {
					t.Fatal(err)
				}
				avail := int64(res.Avail(pl.B()))
				lb := placement.LBAvailSimple(int64(pl.B()), k, s, tc.x, tc.lambda)
				if avail < lb {
					t.Errorf("case %+v s=%d k=%d: Avail = %d < lbAvail_si = %d (Lemma 2 violated)",
						tc, s, k, avail, lb)
				}
			}
		}
	}
}

// TestLemma3OnConcreteCombo validates the Combo lower bound end to end:
// optimize a spec, materialize it, attack it exactly, compare to the bound.
func TestLemma3OnConcreteCombo(t *testing.T) {
	n, r, s := 13, 3, 2
	units, err := placement.DefaultUnits(n, r, s, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []int{4, 10, 30, 52} {
		for k := s; k <= 4; k++ {
			spec, bound, err := placement.OptimizeCombo(b, k, s, units)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := placement.BuildCombo(n, r, spec, b, placement.SimpleOptions{})
			if err != nil {
				t.Fatalf("BuildCombo(b=%d, k=%d, λ=%v): %v", b, k, spec.Lambdas, err)
			}
			res, err := WorstCase(pl, s, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if avail := int64(res.Avail(b)); avail < bound {
				t.Errorf("b=%d k=%d λ=%v: Avail = %d < lbAvail_co = %d (Lemma 3 violated)",
					b, k, spec.Lambdas, avail, bound)
			}
		}
	}
}

// TestTheorem1Competitive checks the c-competitive guarantee empirically:
// no random alternative placement beats c·Avail(π) + α.
func TestTheorem1Competitive(t *testing.T) {
	n, r, s, k, x := 13, 3, 3, 4, 1
	b := 26
	pl, err := placement.BuildSimple(n, r, x, 1, b, placement.SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := WorstCase(pl, s, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	availSimple := float64(res.Avail(b))
	c, alpha, ok := placement.CompetitiveConstants(13, r, s, k, x, 1)
	if !ok {
		t.Fatal("competitive constants unavailable")
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		alt := randomPlacement(rng, n, r, b)
		altRes, err := WorstCase(alt, s, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		if float64(altRes.Avail(b)) >= c*availSimple+alpha {
			t.Errorf("trial %d: Avail(π') = %d >= c·Avail(π)+α = %.2f (Theorem 1 violated)",
				trial, altRes.Avail(b), c*availSimple+alpha)
		}
	}
}

func TestWorstCasePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 7 + rng.Intn(4)
		r := 2 + rng.Intn(2)
		b := 5 + rng.Intn(20)
		s := 1 + rng.Intn(r)
		k := s + rng.Intn(2)
		if k >= n {
			k = n - 1
		}
		pl := randomPlacement(rng, n, r, b)
		ex, err1 := Exhaustive(pl, s, k)
		bb, err2 := WorstCase(pl, s, k, 0)
		return err1 == nil && err2 == nil && ex.Failed == bb.Failed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
