package adversary

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/topology"
)

// damageOf replays an attack independently of every search path: the
// (weighted) damage of failing exactly the given nodes.
func damageOf(pl *placement.Placement, nodes []int, s int, w []int64) int {
	failed := combin.NewBitsetFrom(pl.N, nodes)
	total := 0
	for obj := 0; obj < pl.B(); obj++ {
		if pl.Objects[obj].IntersectCount(failed) >= s {
			if w != nil {
				total += int(w[obj])
			} else {
				total++
			}
		}
	}
	return total
}

// randomSessionMove picks a random valid replica move on pl (without
// applying it).
func randomSessionMove(rng *rand.Rand, pl *placement.Placement) (obj, from, to int) {
	for {
		obj = rng.Intn(pl.B())
		members := pl.ReplicaNodes(obj)
		from = members[rng.Intn(len(members))]
		to = rng.Intn(pl.N)
		if !pl.Objects[obj].Get(to) {
			return obj, from, to
		}
	}
}

// TestSessionNodeMatchesEngines drives random move chains through a
// node-level session and checks every incremental answer against the
// engines rebuilding from scratch: exact damage equals WorstCaseWith
// and ExhaustiveWith, greedy stays a lower bound, and the witness
// replays to the claimed damage.
func TestSessionNodeMatchesEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 4; trial++ {
		n, r, b, s, k := 10+rng.Intn(3), 3, 20+rng.Intn(15), 2, 3
		pl := randomPlacement(rng, n, r, b)
		se, err := NewNodeSession(pl, s, k, SearchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		cur := pl.Clone()
		for mv := 0; mv < 8; mv++ {
			obj, from, to := randomSessionMove(rng, cur)
			if err := cur.MoveReplica(obj, from, to); err != nil {
				t.Fatal(err)
			}
			got, err := se.Move(obj, from, to)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Exact {
				t.Fatalf("unbudgeted session evaluation not exact")
			}
			if replay := damageOf(cur, got.Nodes, s, nil); replay != got.Failed {
				t.Fatalf("witness %v replays to %d, session claims %d", got.Nodes, replay, got.Failed)
			}
			cold, err := WorstCaseWith(cur, s, k, SearchOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Failed != cold.Failed {
				t.Fatalf("move %d: session damage %d, cold engine %d", mv, got.Failed, cold.Failed)
			}
			exh, err := Exhaustive(cur, s, k)
			if err != nil {
				t.Fatal(err)
			}
			if got.Failed != exh.Failed {
				t.Fatalf("move %d: session damage %d, exhaustive %d", mv, got.Failed, exh.Failed)
			}
			gr, err := Greedy(cur, s, k)
			if err != nil {
				t.Fatal(err)
			}
			if gr.Failed > got.Failed {
				t.Fatalf("move %d: greedy %d exceeds session optimum %d", mv, gr.Failed, got.Failed)
			}
		}
	}
}

// TestSessionDomainMatchesEngines is the domain-mode differential:
// move chains through sessions at the rack and zone levels, unweighted
// and weighted, against the DomainWorstCase and DomainExhaustive
// engines on the moved placement.
func TestSessionDomainMatchesEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 4; trial++ {
		n, r, b, s, d := 12, 3, 25+rng.Intn(15), 2, 2
		pl := randomPlacement(rng, n, r, b)
		topo, err := topology.UniformHierarchy(n, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		var w []int64
		if trial%2 == 1 {
			w = make([]int64, b)
			for i := range w {
				w[i] = int64(1 + rng.Intn(5))
			}
		}
		for _, level := range []int{topology.Leaf, 0} {
			se, err := NewDomainSession(pl, topo, level, s, d, SearchOpts{ObjWeights: w})
			if err != nil {
				t.Fatal(err)
			}
			cur := pl.Clone()
			for mv := 0; mv < 8; mv++ {
				obj, from, to := randomSessionMove(rng, cur)
				if err := cur.MoveReplica(obj, from, to); err != nil {
					t.Fatal(err)
				}
				got, err := se.Move(obj, from, to)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Exact {
					t.Fatalf("unbudgeted session evaluation not exact")
				}
				if replay := damageOf(cur, got.Nodes, s, w); replay != got.Failed {
					t.Fatalf("level %d witness domains %v replay to %d, session claims %d",
						level, got.Domains, replay, got.Failed)
				}
				cold, err := DomainWorstCaseAtWith(cur, topo, level, s, d, SearchOpts{ObjWeights: w})
				if err != nil {
					t.Fatal(err)
				}
				if got.Failed != cold.Failed {
					t.Fatalf("level %d move %d: session damage %d, cold engine %d", level, mv, got.Failed, cold.Failed)
				}
				exh, err := DomainExhaustiveAtWith(cur, topo, level, s, d, SearchOpts{ObjWeights: w})
				if err != nil {
					t.Fatal(err)
				}
				if got.Failed != exh.Failed {
					t.Fatalf("level %d move %d: session damage %d, exhaustive %d", level, mv, got.Failed, exh.Failed)
				}
			}
		}
	}
}

// TestSessionEvaluatePaths checks Evaluate picks the right
// implementation path — memo for a placement already seen, a CSR delta
// for a one-move diff, a rebuild for anything larger — and that every
// path returns the cold-engine damage.
func TestSessionEvaluatePaths(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pl := randomPlacement(rng, 12, 3, 30)
	const s, k = 2, 3
	se, err := NewNodeSession(pl, s, k, SearchOpts{})
	if err != nil {
		t.Fatal(err)
	}

	base, err := se.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same placement again: answered by the memo.
	again, err := se.Evaluate(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Memo || again.Failed != base.Failed {
		t.Fatalf("re-evaluating the same placement: memo=%v failed=%d, want memo=true failed=%d",
			again.Memo, again.Failed, base.Failed)
	}

	// One-move diff: the delta path, no rebuild.
	moved := pl.Clone()
	obj, from, to := randomSessionMove(rng, moved)
	if err := moved.MoveReplica(obj, from, to); err != nil {
		t.Fatal(err)
	}
	preRebuilds := se.Stats().Rebuilds
	one, err := se.Evaluate(moved)
	if err != nil {
		t.Fatal(err)
	}
	if se.Stats().Rebuilds != preRebuilds {
		t.Fatalf("one-move diff triggered a rebuild")
	}
	if se.Stats().Moves == 0 {
		t.Fatalf("one-move diff did not ride the CSR delta path")
	}
	cold, err := WorstCaseWith(moved, s, k, SearchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if one.Failed != cold.Failed {
		t.Fatalf("delta path damage %d, cold engine %d", one.Failed, cold.Failed)
	}

	// Reverting to the original placement: a delta move answered by the
	// memo (the revert half of probe-and-revert).
	back, err := se.Evaluate(pl)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Memo || back.Failed != base.Failed {
		t.Fatalf("revert evaluation: memo=%v failed=%d, want memo=true failed=%d", back.Memo, back.Failed, base.Failed)
	}

	// A multi-move diff: full rebuild, still the cold damage.
	far := randomPlacement(rng, 12, 3, 30)
	rebuilt, err := se.Evaluate(far)
	if err != nil {
		t.Fatal(err)
	}
	if se.Stats().Rebuilds == preRebuilds {
		t.Fatalf("multi-move diff did not rebuild")
	}
	coldFar, err := WorstCaseWith(far, s, k, SearchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Failed != coldFar.Failed {
		t.Fatalf("rebuild path damage %d, cold engine %d", rebuilt.Failed, coldFar.Failed)
	}
}

// TestSessionNoopMove pins the same-domain fast path: a move that
// stays inside one rack cannot change the rack-level worst case, and
// the session answers it without touching the instance.
func TestSessionNoopMove(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	// 4 nodes per rack so same-rack moves exist.
	pl := randomPlacement(rng, 12, 2, 30)
	topo, err := topology.UniformHierarchy(12, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewDomainSession(pl, topo, topology.Leaf, 2, 2, SearchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := se.Evaluate(nil)
	if err != nil {
		t.Fatal(err)
	}
	cur := pl.Clone()
	var noop bool
	for try := 0; try < 200 && !noop; try++ {
		obj, from, to := randomSessionMove(rng, cur)
		if topo.DomainOf(from) != topo.DomainOf(to) {
			continue
		}
		if err := cur.MoveReplica(obj, from, to); err != nil {
			t.Fatal(err)
		}
		got, err := se.Move(obj, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if got.Failed != base.Failed || !got.Exact {
			t.Fatalf("same-rack move changed the reported worst case: %d → %d", base.Failed, got.Failed)
		}
		cold, err := DomainWorstCase(cur, topo, 2, 2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got.Failed != cold.Failed {
			t.Fatalf("noop path damage %d, cold engine %d", got.Failed, cold.Failed)
		}
		noop = true
	}
	if !noop {
		t.Skip("no same-rack move found")
	}
	if se.Stats().NoopMoves == 0 {
		t.Fatalf("same-rack move did not take the noop fast path")
	}
}

// TestSessionConcurrentEvaluators hammers one memoizing session from
// concurrent goroutines (the -race coverage the CI run relies on):
// every evaluation must still report the cold-engine damage for the
// placement it evaluated.
func TestSessionConcurrentEvaluators(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, r, b, s, k = 12, 3, 30, 2, 3
	base := randomPlacement(rng, n, r, b)
	// A small pool of placements, each one move apart from base, with
	// known cold damages.
	const pool = 6
	placements := make([]*placement.Placement, pool)
	want := make([]int, pool)
	for i := range placements {
		p := base.Clone()
		if i > 0 {
			obj, from, to := randomSessionMove(rng, p)
			if err := p.MoveReplica(obj, from, to); err != nil {
				t.Fatal(err)
			}
		}
		cold, err := WorstCaseWith(p, s, k, SearchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		placements[i], want[i] = p, cold.Failed
	}
	se, err := NewNodeSession(base, s, k, SearchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				pi := (g + i) % pool
				res, err := se.Evaluate(placements[pi])
				if err != nil {
					errs <- err
					return
				}
				if res.Failed != want[pi] {
					errs <- errMismatch{got: res.Failed, want: want[pi]}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := se.Stats(); st.MemoHits == 0 {
		t.Fatalf("concurrent revisits produced no memo hits: %+v", st)
	}
}

type errMismatch struct{ got, want int }

func (e errMismatch) Error() string {
	return "concurrent evaluation damage mismatch"
}

// TestConstrainedPairAfterMoves extends the warm≡cold coverage to the
// constrained engines: after arbitrary move chains the budgetless
// branch-and-bound pair must still agree with exhaustive enumeration.
func TestConstrainedPairAfterMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		n, r, b := 10, 3, 20+rng.Intn(10)
		pl := randomPlacement(rng, n, r, b)
		topo, err := topology.Uniform(n, 5)
		if err != nil {
			t.Fatal(err)
		}
		for mv := 0; mv < 5; mv++ {
			obj, from, to := randomSessionMove(rng, pl)
			if err := pl.MoveReplica(obj, from, to); err != nil {
				t.Fatal(err)
			}
		}
		s, k, d := 2, 3, 2
		bb, err := ConstrainedWorstCase(pl, topo, s, k, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		exh, err := ConstrainedExhaustive(pl, topo, s, k, d)
		if err != nil {
			t.Fatal(err)
		}
		if bb.Failed != exh.Failed || !bb.Exact {
			t.Fatalf("constrained pair diverged after moves: b&b %d (exact=%v), exhaustive %d",
				bb.Failed, bb.Exact, exh.Failed)
		}
	}
}

// TestSessionMoveRangeError pins the typed-error contract of
// Session.Move: an out-of-range object or node index returns a
// *placement.RangeError — never a panic from the CSR patch layer — and
// leaves the session fully usable: the next evaluation still matches a
// cold engine.
func TestSessionMoveRangeError(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n, r, b, s := 12, 3, 24, 2
	pl := randomPlacement(rng, n, r, b)
	topo, err := topology.Uniform(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	sessions := map[string]*Session{}
	if se, err := NewNodeSession(pl, s, 3, SearchOpts{}); err != nil {
		t.Fatal(err)
	} else {
		sessions["node"] = se
	}
	if se, err := NewDomainSession(pl, topo, topology.Leaf, s, 1, SearchOpts{}); err != nil {
		t.Fatal(err)
	} else {
		sessions["domain"] = se
	}
	obj0 := pl.ReplicaNodes(0)
	for name, se := range sessions {
		t.Run(name, func(t *testing.T) {
			bad := []struct {
				label         string
				obj, from, to int
				kind          string
				index         int
			}{
				{"object-negative", -1, obj0[0], n - 1, "object", -1},
				{"object-high", b, obj0[0], n - 1, "object", b},
				{"from-negative", 0, -1, n - 1, "node", -1},
				{"to-high", 0, obj0[0], n, "node", n},
			}
			for _, tc := range bad {
				_, err := se.Move(tc.obj, tc.from, tc.to)
				var re *placement.RangeError
				if !errors.As(err, &re) {
					t.Fatalf("%s: Move(%d, %d, %d) = %v, want *placement.RangeError",
						tc.label, tc.obj, tc.from, tc.to, err)
				}
				if re.Kind != tc.kind || re.Index != tc.index {
					t.Errorf("%s: RangeError{%s, %d}, want {%s, %d}",
						tc.label, re.Kind, re.Index, tc.kind, tc.index)
				}
			}
			// The failed moves left the session consistent: its answer
			// still matches a cold engine on the unchanged placement.
			res, err := se.Evaluate(nil)
			if err != nil {
				t.Fatal(err)
			}
			var want int
			if name == "node" {
				cold, err := ExhaustiveWith(pl, s, 3, SearchOpts{})
				if err != nil {
					t.Fatal(err)
				}
				want = cold.Failed
			} else {
				cold, err := DomainExhaustiveAtWith(pl, topo, topology.Leaf, s, 1, SearchOpts{})
				if err != nil {
					t.Fatal(err)
				}
				want = cold.Failed
			}
			if !res.Exact || res.Failed != want {
				t.Errorf("after range errors: session says %d (exact=%v), cold engine %d",
					res.Failed, res.Exact, want)
			}
		})
	}
}
