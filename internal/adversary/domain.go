package adversary

import (
	"fmt"
	"sort"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/search"
	"repro/internal/topology"
)

// This file extends the worst-case adversary to correlated failures: the
// attacker picks whole failure domains from a Topology instead of
// independent nodes, modeling the hierarchical correlated failure
// setting of Mills, Chandrasekaran & Mittal (arXiv:1701.01539). Every
// engine takes the attack level of the topology tree — racks, zones,
// regions, or any deeper tier — through its At variant (the plain
// functions attack the leaf level); the level only selects which
// Collapse of the tree the instance is built from, so all depths run
// the same generic search core (internal/search) as the node-level
// trio, with no level-specific search code. Two attack models:
//
//   - d whole-domain failures: DomainExhaustive, DomainGreedy and
//     DomainWorstCase find the d domains at the attack level whose
//     combined node set fails the most objects (an object fails once s
//     of its replicas are covered, as in Definition 1).
//   - k node failures confined to at most d domains:
//     ConstrainedExhaustive and ConstrainedWorstCase bound how much an
//     attacker with the paper's node budget can gain from correlation.

// DomainResult reports the outcome of a worst-case domain failure
// search. Domains indexes the topology level the search ran at (leaf
// domains for the plain engines, Tree[level] for the At variants).
// Under SearchOpts.ObjWeights, Failed is the lost weight (see Result).
type DomainResult struct {
	Failed  int   // objects (or weight, under ObjWeights) failed by the best attack found
	Domains []int // attacking domain indices at the search level, sorted
	Nodes   []int // union of the attacked domains' nodes, sorted
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search states visited (diagnostics/ablation)
}

// Avail returns b - Failed for the placement the result was computed on.
func (r DomainResult) Avail(b int) int { return b - r.Failed }

// domInstance implements search.Instance with whole domains as the unit
// of failure: a search.HitInstance over the aggregated replica hits of
// placement.DomainHits, plus the candidate policy (prune unloaded
// domains, pad back up to d) and the index→domain mapping.
type domInstance struct {
	*search.HitInstance
	topo  *topology.Topology
	cands []int // domains hosting at least one replica, by descending load
}

// collapseTo validates the topology and projects it to the requested
// attack level: the flat depth-1 view every engine instance is built
// from. The leaf level of any depth is already flat for the leaf-only
// accessors, so it avoids the copy.
func collapseTo(pl *placement.Placement, topo *topology.Topology, level int) (*topology.Topology, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if topo.N != pl.N {
		return nil, fmt.Errorf("adversary: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	l, err := topo.ResolveLevel(level)
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	if l == topo.Levels()-1 {
		return topo, nil
	}
	return topo.Collapse(l)
}

func newDomInstance(pl *placement.Placement, topo *topology.Topology, level, s, d int, w []int64) (*domInstance, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	topo, err := collapseTo(pl, topo, level)
	if err != nil {
		return nil, err
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if err := checkObjWeights(w, pl.B()); err != nil {
		return nil, err
	}
	nd := topo.NumDomains()
	// Unlike the node-level k < n, d = NumDomains is allowed: "every
	// domain fails" is a well-defined (if grim) query, and the placement
	// side (WorstDomainDamage, SpreadAcrossDomains) accepts it too.
	if d < 1 || d > nd {
		return nil, fmt.Errorf("adversary: d = %d must satisfy 1 <= d <= domains = %d", d, nd)
	}
	in := &domInstance{HitInstance: search.NewHitInstance(s, pl.B()), topo: topo}
	byDomain, loads := placement.DomainHits(pl, topo)
	wloads := weightedLoads(byDomain, w)
	for di := 0; di < nd; di++ {
		if loads[di] > 0 {
			in.cands = append(in.cands, di)
		}
	}
	sort.Slice(in.cands, func(i, j int) bool {
		if wloads[in.cands[i]] != wloads[in.cands[j]] {
			return wloads[in.cands[i]] > wloads[in.cands[j]]
		}
		return in.cands[i] < in.cands[j]
	})
	// Pad with empty domains so the attack set can always have d members.
	for di := 0; di < nd && len(in.cands) < d; di++ {
		if loads[di] == 0 {
			in.cands = append(in.cands, di)
		}
	}
	hitLists := make([][]search.Hit, len(in.cands))
	ordered := make([]int64, len(in.cands))
	for i, di := range in.cands {
		hitLists[i] = byDomain[di]
		ordered[i] = wloads[di]
	}
	in.Reinit(d, hitLists, ordered)
	in.SetWeights(w)
	return in, nil
}

// clone returns an independent searcher sharing the immutable
// preprocessing (hits, loads, candidate order) with fresh counters.
func (in *domInstance) clone() *domInstance {
	return &domInstance{HitInstance: in.HitInstance.Clone(), topo: in.topo, cands: in.cands}
}

// result translates a core result from candidate-index space to domain
// indices and their node union.
func (in *domInstance) result(res search.Result) DomainResult {
	domains := make([]int, len(res.Sel))
	for i, ci := range res.Sel {
		domains[i] = in.cands[ci]
	}
	sort.Ints(domains)
	return DomainResult{
		Failed:  res.Failed,
		Domains: domains,
		Nodes:   in.topo.FailedSet(domains).Members(nil),
		Exact:   res.Exact,
		Visited: res.Visited,
	}
}

// DomainExhaustive enumerates every d-subset of leaf domains. Cost is
// C(D, d) times the incremental update cost; the reference oracle for
// tests. (newDomInstance pads its candidates with empty domains up to
// d, and d <= NumDomains, so every engine always has at least d
// candidates.)
func DomainExhaustive(pl *placement.Placement, topo *topology.Topology, s, d int) (DomainResult, error) {
	return DomainExhaustiveAt(pl, topo, topology.Leaf, s, d)
}

// DomainExhaustiveAt is DomainExhaustive attacking whole domains of the
// given topology level (0 = top, topology.Leaf = racks).
func DomainExhaustiveAt(pl *placement.Placement, topo *topology.Topology, level, s, d int) (DomainResult, error) {
	return DomainExhaustiveAtWith(pl, topo, level, s, d, SearchOpts{})
}

// DomainExhaustiveAtWith is DomainExhaustiveAt with explicit search
// options; only ObjWeights applies.
func DomainExhaustiveAtWith(pl *placement.Placement, topo *topology.Topology, level, s, d int, opts SearchOpts) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, level, s, d, opts.ObjWeights)
	if err != nil {
		return DomainResult{}, err
	}
	return in.result(search.Exhaustive(in)), nil
}

// DomainGreedy picks d leaf domains by maximum marginal damage, then
// improves the set with single-swap local search. The result is a valid
// correlated attack (a lower bound on the worst case) but not
// guaranteed optimal.
func DomainGreedy(pl *placement.Placement, topo *topology.Topology, s, d int) (DomainResult, error) {
	return DomainGreedyAt(pl, topo, topology.Leaf, s, d)
}

// DomainGreedyAt is DomainGreedy attacking whole domains of the given
// topology level.
func DomainGreedyAt(pl *placement.Placement, topo *topology.Topology, level, s, d int) (DomainResult, error) {
	return DomainGreedyAtWith(pl, topo, level, s, d, SearchOpts{})
}

// DomainGreedyAtWith is DomainGreedyAt with explicit search options;
// only ObjWeights applies.
func DomainGreedyAtWith(pl *placement.Placement, topo *topology.Topology, level, s, d int, opts SearchOpts) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, level, s, d, opts.ObjWeights)
	if err != nil {
		return DomainResult{}, err
	}
	return in.result(search.Greedy(in)), nil
}

// DomainWorstCase runs branch-and-bound over leaf domains seeded with
// the greedy incumbent, pruned with the shared residual-load bound.
// With budget <= 0 the search is unbounded and the result is exact;
// otherwise the incumbent is returned with Exact reflecting whether the
// search completed (same state semantics as the node-level WorstCase —
// the drivers are shared).
func DomainWorstCase(pl *placement.Placement, topo *topology.Topology, s, d int, budget int64) (DomainResult, error) {
	return DomainWorstCaseAtWith(pl, topo, topology.Leaf, s, d, SearchOpts{Budget: budget})
}

// DomainWorstCaseAt is DomainWorstCase attacking whole domains of the
// given topology level — the one change needed to fail zones or regions
// instead of racks; the search itself is identical at every level.
func DomainWorstCaseAt(pl *placement.Placement, topo *topology.Topology, level, s, d int, budget int64) (DomainResult, error) {
	return DomainWorstCaseAtWith(pl, topo, level, s, d, SearchOpts{Budget: budget})
}

// DomainWorstCaseWith is DomainWorstCase with explicit search options
// (budget, worker fan-out, pruning-bound ablation).
func DomainWorstCaseWith(pl *placement.Placement, topo *topology.Topology, s, d int, opts SearchOpts) (DomainResult, error) {
	return DomainWorstCaseAtWith(pl, topo, topology.Leaf, s, d, opts)
}

// DomainWorstCaseAtWith is DomainWorstCaseAt with explicit search
// options (budget, worker fan-out, pruning-bound ablation).
func DomainWorstCaseAtWith(pl *placement.Placement, topo *topology.Topology, level, s, d int, opts SearchOpts) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, level, s, d, opts.ObjWeights)
	if err != nil {
		return DomainResult{}, err
	}
	res, err := runBranchAndBound(in, func() search.Instance { return in.clone() }, opts)
	if err != nil {
		return DomainResult{}, err
	}
	return in.result(res), nil
}

// DomainAvail computes b − (worst d-domain damage): the availability
// guarantee under the correlated adversary, with its witnessing attack.
func DomainAvail(pl *placement.Placement, topo *topology.Topology, s, d int, budget int64) (int, DomainResult, error) {
	return DomainAvailAt(pl, topo, topology.Leaf, s, d, budget)
}

// DomainAvailAt is DomainAvail with the adversary attacking whole
// domains of the given topology level.
func DomainAvailAt(pl *placement.Placement, topo *topology.Topology, level, s, d int, budget int64) (int, DomainResult, error) {
	res, err := DomainWorstCaseAt(pl, topo, level, s, d, budget)
	if err != nil {
		return 0, DomainResult{}, err
	}
	return pl.B() - res.Failed, res, nil
}

// constrainedShared is the subset-independent preprocessing of a
// constrained search: per-node hit lists, per-node loads, candidate
// orderings and parameter validation, shared by the serial and parallel
// drivers.
type constrainedShared struct {
	pl          *placement.Placement
	topo        *topology.Topology
	s, k, d     int
	w           []int64        // optional per-object weights (nil = unit)
	nodeHits    [][]search.Hit // per node, C = 1, objects ascending
	loadsByNode []int
	wloads      []int64 // per-node weighted loads Σ w[obj] (== loads when w nil)
	loaded      []int   // nodes with load, by descending weighted load (ties: id)
	empty       []int   // zero-load nodes, ascending id
}

func newConstrainedShared(pl *placement.Placement, topo *topology.Topology, level, s, k, d int, w []int64) (*constrainedShared, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	topo, err := collapseTo(pl, topo, level)
	if err != nil {
		return nil, err
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if k < 1 || k >= pl.N {
		return nil, fmt.Errorf("adversary: k = %d must satisfy 1 <= k < n = %d", k, pl.N)
	}
	if d < 1 || d > topo.NumDomains() {
		return nil, fmt.Errorf("adversary: d = %d must satisfy 1 <= d <= domains = %d", d, topo.NumDomains())
	}
	if err := checkObjWeights(w, pl.B()); err != nil {
		return nil, err
	}
	sh := &constrainedShared{pl: pl, topo: topo, s: s, k: k, d: d, w: w}
	sh.nodeHits = nodeHits(pl)
	sh.loadsByNode = pl.NodeLoads()
	sh.wloads = weightedLoads(sh.nodeHits, w)
	for node, l := range sh.loadsByNode {
		if l > 0 {
			sh.loaded = append(sh.loaded, node)
		} else {
			sh.empty = append(sh.empty, node)
		}
	}
	sort.Slice(sh.loaded, func(i, j int) bool {
		if sh.wloads[sh.loaded[i]] != sh.wloads[sh.loaded[j]] {
			return sh.wloads[sh.loaded[i]] > sh.wloads[sh.loaded[j]]
		}
		return sh.loaded[i] < sh.loaded[j]
	})
	return sh, nil
}

// constrainedScratch holds one worker's reusable per-subset state: a
// HitInstance whose CSR arrays (and object counters, left balanced by
// the drivers) are recycled across every domain subset, plus the
// candidate scratch slices.
type constrainedScratch struct {
	inst  *search.HitInstance
	cands []int
	lists [][]search.Hit
	loads []int64
}

func (sh *constrainedShared) newScratch() *constrainedScratch {
	return &constrainedScratch{inst: search.NewHitInstance(sh.s, sh.pl.B())}
}

// subsetInstance re-initializes the scratch instance restricted to the
// given domains: the attacker fails min(k, nodes available) nodes inside
// them (smaller unions simply yield smaller attacks).
func (sh *constrainedShared) subsetInstance(domains []int, sc *constrainedScratch) *nodeInstance {
	allowedSet := sh.topo.FailedSet(domains)
	kEff := sh.k
	if c := allowedSet.Count(); c < kEff {
		kEff = c
	}
	sc.cands = sc.cands[:0]
	for _, node := range sh.loaded {
		if allowedSet.Get(node) {
			sc.cands = append(sc.cands, node)
		}
	}
	// Pad with allowed zero-load nodes so the attack set can always
	// have kEff members (kEff <= allowedSet.Count() guarantees enough
	// of them exist).
	for _, node := range sh.empty {
		if len(sc.cands) >= kEff {
			break
		}
		if allowedSet.Get(node) {
			sc.cands = append(sc.cands, node)
		}
	}
	sc.lists = sc.lists[:0]
	sc.loads = sc.loads[:0]
	for _, node := range sc.cands {
		sc.lists = append(sc.lists, sh.nodeHits[node])
		sc.loads = append(sc.loads, sh.wloads[node])
	}
	sc.inst.Reinit(kEff, sc.lists, sc.loads)
	sc.inst.SetWeights(sh.w)
	return &nodeInstance{HitInstance: sc.inst, candidates: sc.cands}
}

// constrainedSearch finds the worst k node failures confined to at most d
// domains, running the core search (branch-and-bound when bnb, else
// exhaustive enumeration) within every d-subset of domains. The budget,
// when positive, is shared across the whole search — every per-subset
// branch-and-bound draws states from the same pool, matching the
// unconstrained engines' semantics.
func constrainedSearch(pl *placement.Placement, topo *topology.Topology, level, s, k, d int, budget int64, bnb bool, bound search.Bound, w []int64) (DomainResult, error) {
	sh, err := newConstrainedShared(pl, topo, level, s, k, d, w)
	if err != nil {
		return DomainResult{}, err
	}
	sc := sh.newScratch()
	bud := search.NewBudget(budget)
	best := DomainResult{Failed: -1, Exact: true}
	var exhaustiveVisited int64
	combin.ForEachSubset(sh.topo.NumDomains(), d, func(domains []int) bool {
		// A drained budget ends the whole search — skipped subsets make
		// the result inexact, and running their budget-free greedy
		// seeding anyway would leave the budget unable to bound runtime
		// (and diverge from the parallel engine, which aborts too).
		if bnb && bud.Exhausted() {
			best.Exact = false
			return false
		}
		in := sh.subsetInstance(domains, sc)
		var sub search.Result
		if bnb {
			seed := search.Greedy(in)
			in.Reset()
			// Lift the cross-subset incumbent into the seed so the
			// bound prunes across subsets, exactly as the parallel
			// engine does — budget isn't wasted on dominated states.
			if best.Failed > seed.Failed {
				seed = search.Result{Failed: best.Failed}
			}
			sub = search.BranchAndBoundWith(in, seed, bud, bound)
		} else {
			sub = search.Exhaustive(in)
			exhaustiveVisited += sub.Visited
		}
		res := in.result(sub)
		if res.Failed > best.Failed {
			best.Failed = res.Failed
			best.Nodes = res.Nodes
			best.Domains = domainsOfNodes(sh.topo, res.Nodes)
		}
		if !res.Exact {
			best.Exact = false
		}
		return true
	})
	if bnb {
		best.Visited = bud.Used()
	} else {
		best.Visited = exhaustiveVisited
	}
	return best, nil
}

// ConstrainedExhaustive finds the exact worst k node failures spanning at
// most d leaf domains by full enumeration. Reference oracle for tests.
func ConstrainedExhaustive(pl *placement.Placement, topo *topology.Topology, s, k, d int) (DomainResult, error) {
	return ConstrainedExhaustiveAt(pl, topo, topology.Leaf, s, k, d)
}

// ConstrainedExhaustiveAt is ConstrainedExhaustive with the blast
// radius counted in whole domains of the given topology level.
func ConstrainedExhaustiveAt(pl *placement.Placement, topo *topology.Topology, level, s, k, d int) (DomainResult, error) {
	return ConstrainedExhaustiveAtWith(pl, topo, level, s, k, d, SearchOpts{})
}

// ConstrainedExhaustiveAtWith is ConstrainedExhaustiveAt with explicit
// search options; only ObjWeights applies.
func ConstrainedExhaustiveAtWith(pl *placement.Placement, topo *topology.Topology, level, s, k, d int, opts SearchOpts) (DomainResult, error) {
	return constrainedSearch(pl, topo, level, s, k, d, 0, false, search.BoundResidual, opts.ObjWeights)
}

// ConstrainedWorstCase finds the worst k node failures spanning at most
// d leaf domains via per-subset branch-and-bound. budget, when
// positive, bounds the state total across all subsets (one shared pool,
// the package-wide semantics); Exact reports whether every subset
// completed.
func ConstrainedWorstCase(pl *placement.Placement, topo *topology.Topology, s, k, d int, budget int64) (DomainResult, error) {
	return ConstrainedWorstCaseAtWith(pl, topo, topology.Leaf, s, k, d, SearchOpts{Budget: budget})
}

// ConstrainedWorstCaseAt is ConstrainedWorstCase with the blast radius
// counted in whole domains of the given topology level (k nodes inside
// at most d zones, regions, ...).
func ConstrainedWorstCaseAt(pl *placement.Placement, topo *topology.Topology, level, s, k, d int, budget int64) (DomainResult, error) {
	return ConstrainedWorstCaseAtWith(pl, topo, level, s, k, d, SearchOpts{Budget: budget})
}

// ConstrainedWorstCaseWith is ConstrainedWorstCase with explicit search
// options (budget, worker fan-out, pruning-bound ablation).
func ConstrainedWorstCaseWith(pl *placement.Placement, topo *topology.Topology, s, k, d int, opts SearchOpts) (DomainResult, error) {
	return ConstrainedWorstCaseAtWith(pl, topo, topology.Leaf, s, k, d, opts)
}

// ConstrainedWorstCaseAtWith is ConstrainedWorstCaseAt with explicit
// search options (budget, worker fan-out, pruning-bound ablation).
func ConstrainedWorstCaseAtWith(pl *placement.Placement, topo *topology.Topology, level, s, k, d int, opts SearchOpts) (DomainResult, error) {
	if workers := opts.resolveWorkers(); workers > 1 {
		return constrainedSearchPar(pl, topo, level, s, k, d, opts.Budget, workers, opts.Bound, opts.ObjWeights)
	}
	return constrainedSearch(pl, topo, level, s, k, d, opts.Budget, true, opts.Bound, opts.ObjWeights)
}

// domainsOfNodes returns the sorted, deduplicated domain indices touched
// by the given nodes.
func domainsOfNodes(topo *topology.Topology, nodes []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, nd := range nodes {
		di := topo.DomainOf(nd)
		if !seen[di] {
			seen[di] = true
			out = append(out, di)
		}
	}
	sort.Ints(out)
	return out
}
