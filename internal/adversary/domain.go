package adversary

import (
	"fmt"
	"sort"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/search"
	"repro/internal/topology"
)

// This file extends the worst-case adversary to correlated failures: the
// attacker picks whole failure domains (racks, zones) from a Topology
// instead of independent nodes, modeling the hierarchical correlated
// failure setting of Mills, Chandrasekaran & Mittal (arXiv:1701.01539).
// Two attack models are provided, both running on the same generic
// search core (internal/search) as the node-level trio:
//
//   - d whole-domain failures: DomainExhaustive, DomainGreedy and
//     DomainWorstCase find the d domains whose combined node set fails
//     the most objects (an object fails once s of its replicas are
//     covered, as in Definition 1).
//   - k node failures confined to at most d domains:
//     ConstrainedExhaustive and ConstrainedWorstCase bound how much an
//     attacker with the paper's node budget can gain from correlation.

// DomainResult reports the outcome of a worst-case domain failure search.
type DomainResult struct {
	Failed  int   // objects failed by the best attack found
	Domains []int // attacking domain indices, sorted
	Nodes   []int // union of the attacked domains' nodes, sorted
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search states visited (diagnostics/ablation)
}

// Avail returns b - Failed for the placement the result was computed on.
func (r DomainResult) Avail(b int) int { return b - r.Failed }

// domInstance implements search.Instance with whole domains as the unit
// of failure: a search.HitInstance over the aggregated replica hits of
// placement.DomainHits, plus the candidate policy (prune unloaded
// domains, pad back up to d) and the index→domain mapping.
type domInstance struct {
	search.HitInstance
	topo  *topology.Topology
	cands []int // domains hosting at least one replica, by descending load
}

var _ search.Instance = (*domInstance)(nil)

func newDomInstance(pl *placement.Placement, topo *topology.Topology, s, d int) (*domInstance, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if topo.N != pl.N {
		return nil, fmt.Errorf("adversary: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	nd := topo.NumDomains()
	// Unlike the node-level k < n, d = NumDomains is allowed: "every
	// domain fails" is a well-defined (if grim) query, and the placement
	// side (WorstDomainDamage, SpreadAcrossDomains) accepts it too.
	if d < 1 || d > nd {
		return nil, fmt.Errorf("adversary: d = %d must satisfy 1 <= d <= domains = %d", d, nd)
	}
	in := &domInstance{
		HitInstance: search.HitInstance{
			Count: d,
			Ctr:   search.HitCounter{S: int32(s), Cnt: make([]int32, pl.B())},
		},
		topo: topo,
	}
	byDomain, loads := placement.DomainHits(pl, topo)
	for di := 0; di < nd; di++ {
		if loads[di] > 0 {
			in.cands = append(in.cands, di)
		}
	}
	sort.Slice(in.cands, func(i, j int) bool {
		if loads[in.cands[i]] != loads[in.cands[j]] {
			return loads[in.cands[i]] > loads[in.cands[j]]
		}
		return in.cands[i] < in.cands[j]
	})
	// Pad with empty domains so the attack set can always have d members.
	for di := 0; di < nd && len(in.cands) < d; di++ {
		if loads[di] == 0 {
			in.cands = append(in.cands, di)
		}
	}
	in.Loads = make([]int64, len(in.cands))
	in.Hits = make([][]search.Hit, len(in.cands))
	for i, di := range in.cands {
		in.Loads[i] = loads[di]
		in.Hits[i] = byDomain[di]
	}
	return in, nil
}

// clone returns an independent searcher sharing the immutable
// preprocessing (hits, loads, candidate order) with fresh counters.
func (in *domInstance) clone() *domInstance {
	return &domInstance{HitInstance: *in.HitInstance.Clone(), topo: in.topo, cands: in.cands}
}

// result translates a core result from candidate-index space to domain
// indices and their node union.
func (in *domInstance) result(res search.Result) DomainResult {
	domains := make([]int, len(res.Sel))
	for i, ci := range res.Sel {
		domains[i] = in.cands[ci]
	}
	sort.Ints(domains)
	return DomainResult{
		Failed:  res.Failed,
		Domains: domains,
		Nodes:   in.topo.FailedSet(domains).Members(nil),
		Exact:   res.Exact,
		Visited: res.Visited,
	}
}

// DomainExhaustive enumerates every d-subset of domains. Cost is C(D, d)
// times the incremental update cost; the reference oracle for tests.
// (newDomInstance pads its candidates with empty domains up to d, and
// d <= NumDomains, so every engine always has at least d candidates.)
func DomainExhaustive(pl *placement.Placement, topo *topology.Topology, s, d int) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, s, d)
	if err != nil {
		return DomainResult{}, err
	}
	return in.result(search.Exhaustive(in)), nil
}

// DomainGreedy picks d domains by maximum marginal damage, then improves
// the set with single-swap local search. The result is a valid correlated
// attack (a lower bound on the worst case) but not guaranteed optimal.
func DomainGreedy(pl *placement.Placement, topo *topology.Topology, s, d int) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, s, d)
	if err != nil {
		return DomainResult{}, err
	}
	return in.result(search.Greedy(in)), nil
}

// DomainWorstCase runs branch-and-bound over domains seeded with the
// greedy incumbent, pruned with the replica-counting bound
// failed(K) <= ⌊(Σ_{D∈K} load(D)) / s⌋. With budget <= 0 the search is
// unbounded and the result is exact; otherwise the incumbent is returned
// with Exact reflecting whether the search completed (same state
// semantics as the node-level WorstCase — the drivers are shared).
func DomainWorstCase(pl *placement.Placement, topo *topology.Topology, s, d int, budget int64) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, s, d)
	if err != nil {
		return DomainResult{}, err
	}
	seed := search.Greedy(in)
	in.Reset()
	return in.result(search.BranchAndBound(in, seed, search.NewBudget(budget))), nil
}

// DomainAvail computes b − (worst d-domain damage): the availability
// guarantee under the correlated adversary, with its witnessing attack.
func DomainAvail(pl *placement.Placement, topo *topology.Topology, s, d int, budget int64) (int, DomainResult, error) {
	res, err := DomainWorstCase(pl, topo, s, d, budget)
	if err != nil {
		return 0, DomainResult{}, err
	}
	return pl.B() - res.Failed, res, nil
}

// constrainedShared is the subset-independent preprocessing of a
// constrained search: object index, per-node loads, candidate orderings
// and parameter validation, shared by the serial and parallel drivers.
type constrainedShared struct {
	pl          *placement.Placement
	topo        *topology.Topology
	s, k, d     int
	objsOf      [][]int32
	loadsByNode []int
	loaded      []int // nodes with load, by descending load (ties: id)
	empty       []int // zero-load nodes, ascending id
}

func newConstrainedShared(pl *placement.Placement, topo *topology.Topology, s, k, d int) (*constrainedShared, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if topo.N != pl.N {
		return nil, fmt.Errorf("adversary: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if k < 1 || k >= pl.N {
		return nil, fmt.Errorf("adversary: k = %d must satisfy 1 <= k < n = %d", k, pl.N)
	}
	if d < 1 || d > topo.NumDomains() {
		return nil, fmt.Errorf("adversary: d = %d must satisfy 1 <= d <= domains = %d", d, topo.NumDomains())
	}
	sh := &constrainedShared{pl: pl, topo: topo, s: s, k: k, d: d}
	sh.objsOf = make([][]int32, pl.N)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, node := range buf {
			sh.objsOf[node] = append(sh.objsOf[node], int32(obj))
		}
	}
	sh.loadsByNode = pl.NodeLoads()
	for node, l := range sh.loadsByNode {
		if l > 0 {
			sh.loaded = append(sh.loaded, node)
		} else {
			sh.empty = append(sh.empty, node)
		}
	}
	sort.Slice(sh.loaded, func(i, j int) bool {
		if sh.loadsByNode[sh.loaded[i]] != sh.loadsByNode[sh.loaded[j]] {
			return sh.loadsByNode[sh.loaded[i]] > sh.loadsByNode[sh.loaded[j]]
		}
		return sh.loaded[i] < sh.loaded[j]
	})
	return sh, nil
}

// subsetInstance stamps out the node-level instance restricted to the
// given domains, reusing the shared object index and the caller's
// failure counters (which the drivers leave balanced back to zero, so a
// serial caller can share one array across subsets).
func (sh *constrainedShared) subsetInstance(domains []int, cnt []int32) *instance {
	allowedSet := sh.topo.FailedSet(domains)
	// The attacker fails min(k, nodes available) nodes inside the
	// chosen domains; smaller unions simply yield smaller attacks.
	kEff := sh.k
	if c := allowedSet.Count(); c < kEff {
		kEff = c
	}
	cands := make([]int, 0, kEff)
	for _, node := range sh.loaded {
		if allowedSet.Get(node) {
			cands = append(cands, node)
		}
	}
	// Pad with allowed zero-load nodes so the attack set can always
	// have kEff members (kEff <= allowedSet.Count() guarantees enough
	// of them exist).
	for _, node := range sh.empty {
		if len(cands) >= kEff {
			break
		}
		if allowedSet.Get(node) {
			cands = append(cands, node)
		}
	}
	in := &instance{
		s: sh.s, k: kEff,
		candidates: cands,
		loads:      make([]int64, len(cands)),
		objsOf:     sh.objsOf,
		cnt:        cnt,
	}
	for i, node := range cands {
		in.loads[i] = int64(sh.loadsByNode[node])
	}
	return in
}

// constrainedSearch finds the worst k node failures confined to at most d
// domains, running the core search (branch-and-bound when bnb, else
// exhaustive enumeration) within every d-subset of domains. The budget,
// when positive, is shared across the whole search — every per-subset
// branch-and-bound draws states from the same pool, matching the
// unconstrained engines' semantics.
func constrainedSearch(pl *placement.Placement, topo *topology.Topology, s, k, d int, budget int64, bnb bool) (DomainResult, error) {
	sh, err := newConstrainedShared(pl, topo, s, k, d)
	if err != nil {
		return DomainResult{}, err
	}
	cnt := make([]int32, pl.B())
	bud := search.NewBudget(budget)
	best := DomainResult{Failed: -1, Exact: true}
	var exhaustiveVisited int64
	combin.ForEachSubset(topo.NumDomains(), d, func(domains []int) bool {
		// A drained budget ends the whole search — skipped subsets make
		// the result inexact, and running their budget-free greedy
		// seeding anyway would leave the budget unable to bound runtime
		// (and diverge from the parallel engine, which aborts too).
		if bnb && bud.Exhausted() {
			best.Exact = false
			return false
		}
		in := sh.subsetInstance(domains, cnt)
		var sub search.Result
		if bnb {
			seed := search.Greedy(in)
			in.Reset()
			// Lift the cross-subset incumbent into the seed so the
			// bound prunes across subsets, exactly as the parallel
			// engine does — budget isn't wasted on dominated states.
			if best.Failed > seed.Failed {
				seed = search.Result{Failed: best.Failed}
			}
			sub = search.BranchAndBound(in, seed, bud)
		} else {
			sub = search.Exhaustive(in)
			exhaustiveVisited += sub.Visited
		}
		res := in.result(sub)
		if res.Failed > best.Failed {
			best.Failed = res.Failed
			best.Nodes = res.Nodes
			best.Domains = domainsOfNodes(topo, res.Nodes)
		}
		if !res.Exact {
			best.Exact = false
		}
		return true
	})
	if bnb {
		best.Visited = bud.Used()
	} else {
		best.Visited = exhaustiveVisited
	}
	return best, nil
}

// ConstrainedExhaustive finds the exact worst k node failures spanning at
// most d domains by full enumeration. Reference oracle for tests.
func ConstrainedExhaustive(pl *placement.Placement, topo *topology.Topology, s, k, d int) (DomainResult, error) {
	return constrainedSearch(pl, topo, s, k, d, 0, false)
}

// ConstrainedWorstCase finds the worst k node failures spanning at most d
// domains via per-subset branch-and-bound. budget, when positive, bounds
// the state total across all subsets (one shared pool, the package-wide
// semantics); Exact reports whether every subset completed.
func ConstrainedWorstCase(pl *placement.Placement, topo *topology.Topology, s, k, d int, budget int64) (DomainResult, error) {
	return constrainedSearch(pl, topo, s, k, d, budget, true)
}

// domainsOfNodes returns the sorted, deduplicated domain indices touched
// by the given nodes.
func domainsOfNodes(topo *topology.Topology, nodes []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, nd := range nodes {
		di := topo.DomainOf(nd)
		if !seen[di] {
			seen[di] = true
			out = append(out, di)
		}
	}
	sort.Ints(out)
	return out
}
