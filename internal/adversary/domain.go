package adversary

import (
	"fmt"
	"sort"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/topology"
)

// This file extends the worst-case adversary to correlated failures: the
// attacker picks whole failure domains (racks, zones) from a Topology
// instead of independent nodes, modeling the hierarchical correlated
// failure setting of Mills, Chandrasekaran & Mittal (arXiv:1701.01539).
// Two attack models are provided, mirroring the node-level engine trio:
//
//   - d whole-domain failures: DomainExhaustive, DomainGreedy and
//     DomainWorstCase find the d domains whose combined node set fails
//     the most objects (an object fails once s of its replicas are
//     covered, as in Definition 1).
//   - k node failures confined to at most d domains:
//     ConstrainedExhaustive and ConstrainedWorstCase bound how much an
//     attacker with the paper's node budget can gain from correlation.

// DomainResult reports the outcome of a worst-case domain failure search.
type DomainResult struct {
	Failed  int   // objects failed by the best attack found
	Domains []int // attacking domain indices, sorted
	Nodes   []int // union of the attacked domains' nodes, sorted
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search nodes visited (diagnostics/ablation)
}

// Avail returns b - Failed for the placement the result was computed on.
func (r DomainResult) Avail(b int) int { return b - r.Failed }

// domHit records that failing a domain adds C failed replicas to object
// Obj (C = replicas of Obj hosted inside the domain).
type domHit struct {
	obj int32
	c   int32
}

// domInstance is the preprocessed search state shared by the domain
// engines; it mirrors instance with domains as the unit of failure.
type domInstance struct {
	s, d   int
	topo   *topology.Topology
	cands  []int   // domains hosting at least one replica, by descending load
	loads  []int64 // replicas per candidate domain (aligned with cands)
	prefix []int64 // prefix[i] = sum of loads[0:i]
	hits   [][]domHit
	cnt    []int32 // replicas of each object currently failed
	b      int
}

func newDomInstance(pl *placement.Placement, topo *topology.Topology, s, d int) (*domInstance, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if topo.N != pl.N {
		return nil, fmt.Errorf("adversary: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	nd := topo.NumDomains()
	// Unlike the node-level k < n, d = NumDomains is allowed: "every
	// domain fails" is a well-defined (if grim) query, and the placement
	// side (WorstDomainDamage, SpreadAcrossDomains) accepts it too.
	if d < 1 || d > nd {
		return nil, fmt.Errorf("adversary: d = %d must satisfy 1 <= d <= domains = %d", d, nd)
	}
	in := &domInstance{s: s, d: d, topo: topo, b: pl.B()}
	perDomain := make([]map[int32]int32, nd)
	loads := make([]int64, nd)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, node := range buf {
			di := topo.DomainOf(node)
			if perDomain[di] == nil {
				perDomain[di] = make(map[int32]int32)
			}
			perDomain[di][int32(obj)]++
			loads[di]++
		}
	}
	for di := 0; di < nd; di++ {
		if loads[di] > 0 {
			in.cands = append(in.cands, di)
		}
	}
	sort.Slice(in.cands, func(i, j int) bool {
		if loads[in.cands[i]] != loads[in.cands[j]] {
			return loads[in.cands[i]] > loads[in.cands[j]]
		}
		return in.cands[i] < in.cands[j]
	})
	// Pad with empty domains so the attack set can always have d members.
	for di := 0; di < nd && len(in.cands) < d; di++ {
		if loads[di] == 0 {
			in.cands = append(in.cands, di)
		}
	}
	in.loads = make([]int64, len(in.cands))
	in.prefix = make([]int64, len(in.cands)+1)
	in.hits = make([][]domHit, len(in.cands))
	for i, di := range in.cands {
		in.loads[i] = loads[di]
		in.prefix[i+1] = in.prefix[i] + in.loads[i]
		hits := make([]domHit, 0, len(perDomain[di]))
		for obj, c := range perDomain[di] {
			hits = append(hits, domHit{obj: obj, c: c})
		}
		sort.Slice(hits, func(a, b int) bool { return hits[a].obj < hits[b].obj })
		in.hits[i] = hits
	}
	in.cnt = make([]int32, pl.B())
	return in, nil
}

// add fails candidate domain i, returning the number of newly failed
// objects (those whose failed-replica count crossed s).
func (in *domInstance) add(i int) int {
	newly := 0
	s := int32(in.s)
	for _, h := range in.hits[i] {
		old := in.cnt[h.obj]
		in.cnt[h.obj] = old + h.c
		if old < s && old+h.c >= s {
			newly++
		}
	}
	return newly
}

// remove reverts add(i).
func (in *domInstance) remove(i int) {
	for _, h := range in.hits[i] {
		in.cnt[h.obj] -= h.c
	}
}

// marginal returns how many additional objects fail if candidate domain i
// is added to the current set, without mutating state.
func (in *domInstance) marginal(i int) int {
	gain := 0
	s := int32(in.s)
	for _, h := range in.hits[i] {
		if c := in.cnt[h.obj]; c < s && c+h.c >= s {
			gain++
		}
	}
	return gain
}

// result assembles a DomainResult from candidate indices.
func (in *domInstance) result(idxs []int, failed int, exact bool, visited int64) DomainResult {
	domains := make([]int, len(idxs))
	for i, ci := range idxs {
		domains[i] = in.cands[ci]
	}
	sort.Ints(domains)
	return DomainResult{
		Failed:  failed,
		Domains: domains,
		Nodes:   in.topo.FailedSet(domains).Members(nil),
		Exact:   exact,
		Visited: visited,
	}
}

// DomainExhaustive enumerates every d-subset of domains. Cost is C(D, d)
// times the incremental update cost; the reference oracle for tests.
// (newDomInstance pads its candidates with empty domains up to d, and
// d <= NumDomains, so every engine always has at least d candidates.)
func DomainExhaustive(pl *placement.Placement, topo *topology.Topology, s, d int) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, s, d)
	if err != nil {
		return DomainResult{}, err
	}
	m := len(in.cands)
	best := DomainResult{Failed: -1, Exact: true}
	cur := make([]int, 0, d)
	var visited int64
	var dfs func(start, failed int)
	dfs = func(start, failed int) {
		visited++
		if len(cur) == d {
			if failed > best.Failed {
				best = in.result(cur, failed, true, 0)
			}
			return
		}
		rem := d - len(cur)
		for i := start; i <= m-rem; i++ {
			newly := in.add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly)
			cur = cur[:len(cur)-1]
			in.remove(i)
		}
	}
	dfs(0, 0)
	best.Visited = visited
	if best.Failed < 0 {
		best.Failed = 0
	}
	return best, nil
}

// DomainGreedy picks d domains by maximum marginal damage, then improves
// the set with single-swap local search. The result is a valid correlated
// attack (a lower bound on the worst case) but not guaranteed optimal.
func DomainGreedy(pl *placement.Placement, topo *topology.Topology, s, d int) (DomainResult, error) {
	in, err := newDomInstance(pl, topo, s, d)
	if err != nil {
		return DomainResult{}, err
	}
	m := len(in.cands)
	chosen := make([]bool, m)
	sel := make([]int, 0, d)
	failed := 0
	for len(sel) < d {
		bestI, bestGain := -1, -1
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			if g := in.marginal(i); g > bestGain {
				bestGain = g
				bestI = i
			}
		}
		failed += in.add(bestI)
		chosen[bestI] = true
		sel = append(sel, bestI)
	}
	improved := true
	rounds := 0
	for improved && rounds < 4*d {
		improved = false
		rounds++
		for si, ci := range sel {
			in.remove(ci)
			lost := in.marginal(ci)
			bestI, bestGain := ci, lost
			for i := 0; i < m; i++ {
				if chosen[i] {
					continue
				}
				if g := in.marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			in.add(bestI)
			if bestI != ci {
				chosen[ci] = false
				chosen[bestI] = true
				sel[si] = bestI
				failed += bestGain - lost
				improved = true
			}
		}
	}
	return in.result(sel, failed, false, int64(rounds)*int64(m)), nil
}

// DomainWorstCase runs branch-and-bound over domains seeded with the
// greedy incumbent, pruned with the replica-counting bound
// failed(K) <= ⌊(Σ_{D∈K} load(D)) / s⌋. With budget <= 0 the search is
// unbounded and the result is exact; otherwise the incumbent is returned
// with Exact reflecting whether the search completed.
func DomainWorstCase(pl *placement.Placement, topo *topology.Topology, s, d int, budget int64) (DomainResult, error) {
	seed, err := DomainGreedy(pl, topo, s, d)
	if err != nil {
		return DomainResult{}, err
	}
	in, err := newDomInstance(pl, topo, s, d)
	if err != nil {
		return DomainResult{}, err
	}
	m := len(in.cands)
	best := seed
	best.Exact = true // until proven otherwise by budget exhaustion
	cur := make([]int, 0, d)
	var visited int64
	exhausted := false

	var dfs func(start, failed int, loadSum int64)
	dfs = func(start, failed int, loadSum int64) {
		if exhausted {
			return
		}
		visited++
		if budget > 0 && visited > budget {
			exhausted = true
			return
		}
		rem := d - len(cur)
		if rem == 0 {
			if failed > best.Failed {
				best = in.result(cur, failed, true, 0)
			}
			return
		}
		if start+rem > m {
			return
		}
		maxLoad := loadSum + in.prefix[start+rem] - in.prefix[start]
		if int(maxLoad/int64(in.s)) <= best.Failed {
			return
		}
		if rem == 1 {
			bestI, bestGain := -1, -1
			for i := start; i < m; i++ {
				if g := in.marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			if bestI >= 0 && failed+bestGain > best.Failed {
				cur = append(cur, bestI)
				best = in.result(cur, failed+bestGain, true, 0)
				cur = cur[:len(cur)-1]
			}
			return
		}
		for i := start; i <= m-rem; i++ {
			newly := in.add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly, loadSum+in.loads[i])
			cur = cur[:len(cur)-1]
			in.remove(i)
			if exhausted {
				return
			}
		}
	}
	dfs(0, 0, 0)
	best.Visited = visited
	if exhausted {
		best.Exact = false
	}
	return best, nil
}

// DomainAvail computes b − (worst d-domain damage): the availability
// guarantee under the correlated adversary, with its witnessing attack.
func DomainAvail(pl *placement.Placement, topo *topology.Topology, s, d int, budget int64) (int, DomainResult, error) {
	res, err := DomainWorstCase(pl, topo, s, d, budget)
	if err != nil {
		return 0, DomainResult{}, err
	}
	return pl.B() - res.Failed, res, nil
}

// constrainedSearch finds the worst k node failures confined to at most d
// domains, running the node-level engine (branch-and-bound when bnb, else
// exhaustive enumeration) within every d-subset of domains. Budget, when
// positive, applies to each per-subset search independently.
func constrainedSearch(pl *placement.Placement, topo *topology.Topology, s, k, d int, budget int64, bnb bool) (DomainResult, error) {
	if err := pl.Validate(); err != nil {
		return DomainResult{}, err
	}
	if err := topo.Validate(); err != nil {
		return DomainResult{}, err
	}
	if topo.N != pl.N {
		return DomainResult{}, fmt.Errorf("adversary: topology covers %d nodes, placement has %d", topo.N, pl.N)
	}
	if s < 1 || s > pl.R {
		return DomainResult{}, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if k < 1 || k >= pl.N {
		return DomainResult{}, fmt.Errorf("adversary: k = %d must satisfy 1 <= k < n = %d", k, pl.N)
	}
	nd := topo.NumDomains()
	if d < 1 || d > nd {
		return DomainResult{}, fmt.Errorf("adversary: d = %d must satisfy 1 <= d <= domains = %d", d, nd)
	}

	// Everything except the candidate filter is subset-independent:
	// build the object index, loads and failure counters once, and stamp
	// out a lightweight per-subset instance that shares them. The
	// engines leave cnt balanced back to zero (greedy's dirty counters
	// are reset before branch-and-bound), so sharing is safe.
	objsOf := make([][]int32, pl.N)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, node := range buf {
			objsOf[node] = append(objsOf[node], int32(obj))
		}
	}
	loadsByNode := pl.NodeLoads()
	loaded := make([]int, 0, pl.N) // nodes with load, by descending load
	var empty []int                // zero-load nodes, ascending id
	for node, l := range loadsByNode {
		if l > 0 {
			loaded = append(loaded, node)
		} else {
			empty = append(empty, node)
		}
	}
	sort.Slice(loaded, func(i, j int) bool {
		if loadsByNode[loaded[i]] != loadsByNode[loaded[j]] {
			return loadsByNode[loaded[i]] > loadsByNode[loaded[j]]
		}
		return loaded[i] < loaded[j]
	})
	cnt := make([]int32, pl.B())

	best := DomainResult{Failed: -1, Exact: true}
	var visited int64
	combin.ForEachSubset(nd, d, func(domains []int) bool {
		allowedSet := topo.FailedSet(domains)
		// The attacker fails min(k, nodes available) nodes inside the
		// chosen domains; smaller unions simply yield smaller attacks.
		kEff := k
		if c := allowedSet.Count(); c < kEff {
			kEff = c
		}
		cands := make([]int, 0, kEff)
		for _, node := range loaded {
			if allowedSet.Get(node) {
				cands = append(cands, node)
			}
		}
		// Pad with allowed zero-load nodes so the attack set can always
		// have kEff members (kEff <= allowedSet.Count() guarantees
		// enough of them exist).
		for _, node := range empty {
			if len(cands) >= kEff {
				break
			}
			if allowedSet.Get(node) {
				cands = append(cands, node)
			}
		}
		in := &instance{
			s: s, k: kEff, n: pl.N, b: pl.B(),
			candidates: cands,
			loads:      make([]int64, len(cands)),
			prefix:     make([]int64, len(cands)+1),
			objsOf:     objsOf,
			cnt:        cnt,
		}
		for i, node := range cands {
			in.loads[i] = int64(loadsByNode[node])
			in.prefix[i+1] = in.prefix[i] + in.loads[i]
		}
		var sub Result
		if bnb {
			seed := greedyOn(in)
			in.reset()
			sub = branchAndBoundOn(in, seed, budget)
		} else {
			sub = exhaustiveOn(in)
		}
		visited += sub.Visited
		if sub.Failed > best.Failed {
			best.Failed = sub.Failed
			best.Nodes = sub.Nodes
			best.Domains = domainsOfNodes(topo, sub.Nodes)
		}
		if !sub.Exact {
			best.Exact = false
		}
		return true
	})
	best.Visited = visited
	return best, nil
}

// ConstrainedExhaustive finds the exact worst k node failures spanning at
// most d domains by full enumeration. Reference oracle for tests.
func ConstrainedExhaustive(pl *placement.Placement, topo *topology.Topology, s, k, d int) (DomainResult, error) {
	return constrainedSearch(pl, topo, s, k, d, 0, false)
}

// ConstrainedWorstCase finds the worst k node failures spanning at most d
// domains via per-subset branch-and-bound. budget, when positive, bounds
// each subset's search; Exact reports whether every subset completed.
func ConstrainedWorstCase(pl *placement.Placement, topo *topology.Topology, s, k, d int, budget int64) (DomainResult, error) {
	return constrainedSearch(pl, topo, s, k, d, budget, true)
}

// exhaustiveOn enumerates every k-subset of a prepared instance's
// candidates. The instance's failure counters must be clean.
func exhaustiveOn(in *instance) Result {
	m := len(in.candidates)
	k := in.k
	best := Result{Failed: -1, Exact: true}
	cur := make([]int, 0, k)
	var visited int64
	var dfs func(start, failed int)
	dfs = func(start, failed int) {
		visited++
		if len(cur) == k {
			if failed > best.Failed {
				best.Failed = failed
				best.Nodes = candidateNodes(in, cur)
			}
			return
		}
		rem := k - len(cur)
		for i := start; i <= m-rem; i++ {
			newly := in.add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly)
			cur = cur[:len(cur)-1]
			in.remove(i)
		}
	}
	dfs(0, 0)
	best.Visited = visited
	if best.Failed < 0 {
		best.Failed = 0
	}
	return best
}

// domainsOfNodes returns the sorted, deduplicated domain indices touched
// by the given nodes.
func domainsOfNodes(topo *topology.Topology, nodes []int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, nd := range nodes {
		di := topo.DomainOf(nd)
		if !seen[di] {
			seen[di] = true
			out = append(out, di)
		}
	}
	sort.Ints(out)
	return out
}
