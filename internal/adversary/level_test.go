package adversary

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/topology"
)

// singletonRegionTree wraps a depth-2 zones→racks topology in a depth-3
// tree whose region level holds exactly one zone per region: region i =
// zone i, node for node. Attacks at any level of the wrapper must be
// indistinguishable from the depth-2 original.
func singletonRegionTree(t *testing.T, d2 *topology.Topology) *topology.Topology {
	t.Helper()
	zones, err := d2.NumDomainsAt(0)
	if err != nil {
		t.Fatal(err)
	}
	regions := make([]topology.Domain, zones)
	mid := make([]topology.Domain, zones)
	for i := 0; i < zones; i++ {
		regions[i] = topology.Domain{Name: d2.Tree[0][i].Name + "reg", Parent: -1}
		mid[i] = topology.Domain{Name: d2.Tree[0][i].Name, Parent: i}
	}
	leaves := make([]topology.Domain, d2.NumDomains())
	for i, d := range d2.Leaves() {
		leaves[i] = topology.Domain{Name: d.Name, Parent: d.Parent, Nodes: append([]int(nil), d.Nodes...)}
	}
	d3, err := topology.NewTree(d2.N, [][]topology.Domain{regions, mid, leaves})
	if err != nil {
		t.Fatal(err)
	}
	return d3
}

// TestSingletonLevelParity extends the node↔domain isomorphism to
// levels: on a depth-3 topology whose region level has one zone each,
// every engine must report byte-identical results — damage, witness,
// exactness AND visited states — at each of its three levels to the
// depth-2 equivalent (racks ≡ racks, zones ≡ zones, regions ≡ zones).
// The engines build their instances from Collapse(level) and share the
// search core, so any divergence means the collapse is lossy.
func TestSingletonLevelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 8; trial++ {
		n := 12 + rng.Intn(6)
		r := 2 + rng.Intn(2)
		b := 10 + rng.Intn(30)
		s := 1 + rng.Intn(r)
		pl := randomPlacement(rng, n, r, b)
		const zones, racksPerZone = 3, 2
		d2, err := topology.UniformHierarchy(n, zones, racksPerZone)
		if err != nil {
			t.Fatal(err)
		}
		d3 := singletonRegionTree(t, d2)

		dRack := 1 + rng.Intn(zones*racksPerZone-1)
		dZone := 1 + rng.Intn(zones)
		k := 1 + rng.Intn(n/3)
		type engine func(topo *topology.Topology, level, d int) (DomainResult, error)
		engines := map[string]engine{
			"exhaustive": func(topo *topology.Topology, level, d int) (DomainResult, error) {
				return DomainExhaustiveAt(pl, topo, level, s, d)
			},
			"greedy": func(topo *topology.Topology, level, d int) (DomainResult, error) {
				return DomainGreedyAt(pl, topo, level, s, d)
			},
			"worstcase": func(topo *topology.Topology, level, d int) (DomainResult, error) {
				return DomainWorstCaseAt(pl, topo, level, s, d, 0)
			},
			"worstcase-par": func(topo *topology.Topology, level, d int) (DomainResult, error) {
				return DomainWorstCaseParAt(pl, topo, level, s, d, 0, 4)
			},
			"constrained": func(topo *topology.Topology, level, d int) (DomainResult, error) {
				return ConstrainedWorstCaseAt(pl, topo, level, s, k, d, 0)
			},
		}
		for name, run := range engines {
			cases := []struct {
				label          string
				lvl3, lvl2, dd int
			}{
				{"rack", 2, topology.Leaf, dRack},
				{"zone", 1, 0, dZone},
				{"region-as-zone", 0, 0, dZone},
			}
			for _, tc := range cases {
				a, err := run(d3, tc.lvl3, tc.dd)
				if err != nil {
					t.Fatal(err)
				}
				bres, err := run(d2, tc.lvl2, tc.dd)
				if err != nil {
					t.Fatal(err)
				}
				comparePair(t, trial, name, tc.label, a, bres, name != "worstcase-par")
			}
		}
	}
}

// comparePair asserts two DomainResults are identical; visited-state
// equality is skipped for the parallel engine, whose exploration order
// is schedule-dependent (damage and exactness still must match).
func comparePair(t *testing.T, trial int, engine, level string, a, b DomainResult, checkVisited bool) {
	t.Helper()
	if a.Failed != b.Failed || a.Exact != b.Exact {
		t.Errorf("trial %d %s @%s: depth-3 {failed %d exact %v} != depth-2 {failed %d exact %v}",
			trial, engine, level, a.Failed, a.Exact, b.Failed, b.Exact)
	}
	if checkVisited && a.Visited != b.Visited {
		t.Errorf("trial %d %s @%s: visited %d != %d — the collapsed searches diverged",
			trial, engine, level, a.Visited, b.Visited)
	}
	if checkVisited && !reflect.DeepEqual(a.Domains, b.Domains) {
		t.Errorf("trial %d %s @%s: witness domains %v != %v", trial, engine, level, a.Domains, b.Domains)
	}
	if checkVisited && !reflect.DeepEqual(a.Nodes, b.Nodes) {
		t.Errorf("trial %d %s @%s: witness nodes %v != %v", trial, engine, level, a.Nodes, b.Nodes)
	}
}

// TestLevelValidation pins the level plumbing's error handling and the
// plain-name ≡ leaf-level contract.
func TestLevelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	pl := randomPlacement(rng, 12, 3, 20)
	topo, err := topology.UniformTree(12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []int{2, 5, -2} {
		if _, err := DomainWorstCaseAt(pl, topo, level, 2, 1, 0); err == nil {
			t.Errorf("level %d accepted on a depth-2 topology", level)
		}
		if _, err := ConstrainedWorstCaseAt(pl, topo, level, 2, 2, 1, 0); err == nil {
			t.Errorf("constrained level %d accepted on a depth-2 topology", level)
		}
	}
	plain, err := DomainWorstCase(pl, topo, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := DomainWorstCaseAt(pl, topo, topology.Leaf, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := DomainWorstCaseAt(pl, topo, 1, 2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Failed != leaf.Failed || plain.Failed != explicit.Failed {
		t.Errorf("plain %d, Leaf %d, level-1 %d must agree", plain.Failed, leaf.Failed, explicit.Failed)
	}
	// d is validated against the attacked level's domain count: level 0
	// has 2 zones, so d = 4 must be rejected there even though the leaf
	// level's 6 racks accept it.
	if _, err := DomainWorstCaseAt(pl, topo, 0, 2, 4, 0); err == nil {
		t.Error("d = 4 accepted at a 2-domain level")
	}
	// Attacking the top level ≡ attacking the same partition directly.
	top, err := DomainWorstCaseAt(pl, topo, 0, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := topo.Collapse(0)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := DomainWorstCase(pl, flat, 2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if top.Failed != direct.Failed || top.Visited != direct.Visited {
		t.Errorf("level-0 attack {failed %d visited %d} != collapsed attack {failed %d visited %d}",
			top.Failed, top.Visited, direct.Failed, direct.Visited)
	}
}
