package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/topology"
)

func TestWorstCaseParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 12; trial++ {
		n := 10 + rng.Intn(8)
		r := 2 + rng.Intn(3)
		b := 20 + rng.Intn(60)
		s := 1 + rng.Intn(r)
		k := s + rng.Intn(3)
		if k >= n {
			k = n - 1
		}
		pl := randomPlacement(rng, n, r, b)
		seq, err := WorstCase(pl, s, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			par, err := WorstCaseParallel(pl, s, k, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Failed != seq.Failed {
				t.Errorf("trial %d (n=%d r=%d b=%d s=%d k=%d, %d workers): parallel %d != sequential %d",
					trial, n, r, b, s, k, workers, par.Failed, seq.Failed)
			}
			if !par.Exact {
				t.Error("unbounded parallel search must be exact")
			}
			// The witness reproduces the damage.
			failedSet := combin.NewBitsetFrom(n, par.Nodes)
			if f := pl.FailedObjects(failedSet, s); f != par.Failed {
				t.Errorf("parallel witness reproduces %d, reported %d", f, par.Failed)
			}
		}
	}
}

func TestWorstCaseParallelBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pl := randomPlacement(rng, 24, 3, 300)
	res, err := WorstCaseParallel(pl, 2, 5, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("tiny budget should not complete exactly")
	}
	if res.Failed <= 0 {
		t.Error("budgeted parallel search lost the greedy incumbent")
	}
	exact, err := WorstCase(pl, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > exact.Failed {
		t.Errorf("budgeted result %d exceeds exact %d", res.Failed, exact.Failed)
	}
}

func TestWorstCaseParallelDegenerate(t *testing.T) {
	// Fewer loaded candidates than k falls back to the sequential path.
	pl := placement.NewPlacement(10, 2)
	for i := 0; i < 3; i++ {
		if err := pl.Add([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := WorstCaseParallel(pl, 2, 4, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 3 {
		t.Errorf("Failed = %d, want 3", res.Failed)
	}
	// Single worker delegates to WorstCase.
	res, err = WorstCaseParallel(pl, 2, 4, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 3 {
		t.Errorf("single worker Failed = %d, want 3", res.Failed)
	}
}

func TestDomainWorstCaseParBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	pl := randomPlacement(rng, 24, 3, 150)
	topo, err := topology.Uniform(24, 12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DomainWorstCasePar(pl, topo, 2, 4, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("tiny budget should not complete exactly")
	}
	if res.Failed <= 0 {
		t.Error("budgeted parallel domain search lost the greedy incumbent")
	}
	exact, err := DomainWorstCase(pl, topo, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed > exact.Failed {
		t.Errorf("budgeted result %d exceeds exact %d", res.Failed, exact.Failed)
	}
}

func TestDomainWorstCaseParDegenerate(t *testing.T) {
	// All load in one rack; d = 2 > 1 loaded domain, several workers.
	pl := placement.NewPlacement(9, 2)
	for i := 0; i < 3; i++ {
		if err := pl.Add([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	topo, err := topology.Uniform(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		res, err := DomainWorstCasePar(pl, topo, 2, 2, 0, workers)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 3 {
			t.Errorf("workers=%d: Failed = %d, want 3", workers, res.Failed)
		}
		if len(res.Domains) != 2 {
			t.Errorf("workers=%d: witness has %d domains, want 2", workers, len(res.Domains))
		}
	}
}

func TestConstrainedWorstCaseParBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pl := randomPlacement(rng, 20, 3, 200)
	topo, err := topology.Uniform(20, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ConstrainedWorstCase(pl, topo, 2, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Serial and parallel share the abort semantics: a drained budget
	// ends the subset sweep with the incumbent so far, inexactly.
	for name, run := range map[string]func() (DomainResult, error){
		"serial":   func() (DomainResult, error) { return ConstrainedWorstCase(pl, topo, 2, 5, 2, 20) },
		"parallel": func() (DomainResult, error) { return ConstrainedWorstCasePar(pl, topo, 2, 5, 2, 20, 3) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Exact {
			t.Errorf("%s: tiny shared budget should not complete exactly", name)
		}
		if res.Failed <= 0 {
			t.Errorf("%s: budgeted constrained search lost every incumbent", name)
		}
		if res.Failed > exact.Failed {
			t.Errorf("%s: budgeted result %d exceeds exact %d", name, res.Failed, exact.Failed)
		}
	}
}

// TestBudgetedParallelAlwaysValidAttack pins the only run-invariant
// contract the budgeted+parallel regime offers. Which incumbent wins a
// budget race legitimately varies run to run (see the scheduling note
// in internal/search/parallel.go), so nothing here compares Failed
// across runs — every run must instead return a self-consistent valid
// attack: the witness replays to the reported damage, the damage never
// exceeds the true optimum, and a drained budget is reported inexact.
func TestBudgetedParallelAlwaysValidAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	pl := randomPlacement(rng, 24, 3, 300)
	const s, k = 2, 5
	exact, err := WorstCase(pl, s, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := topology.Uniform(24, 8)
	if err != nil {
		t.Fatal(err)
	}
	exactDom, err := DomainWorstCase(pl, topo, s, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 6; run++ {
		res, err := WorstCaseParallel(pl, s, k, 60, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes) == 0 || len(res.Nodes) > k {
			t.Fatalf("run %d: witness %v is not a ≤%d-node attack", run, res.Nodes, k)
		}
		failedSet := combin.NewBitsetFrom(pl.N, res.Nodes)
		if got := pl.FailedObjects(failedSet, s); got != res.Failed {
			t.Fatalf("run %d: witness %v replays to %d, reported %d", run, res.Nodes, got, res.Failed)
		}
		if res.Failed > exact.Failed {
			t.Fatalf("run %d: budgeted damage %d exceeds exact optimum %d", run, res.Failed, exact.Failed)
		}
		if res.Exact && res.Failed != exact.Failed {
			t.Fatalf("run %d: claims exact with damage %d, optimum is %d", run, res.Failed, exact.Failed)
		}

		dom, err := DomainWorstCasePar(pl, topo, s, 3, 60, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(dom.Domains) == 0 || len(dom.Domains) > 3 {
			t.Fatalf("run %d: domain witness %v is not a ≤3-domain attack", run, dom.Domains)
		}
		if got := pl.FailedObjects(topo.FailedSet(dom.Domains), s); got != dom.Failed {
			t.Fatalf("run %d: domain witness %v replays to %d, reported %d", run, dom.Domains, got, dom.Failed)
		}
		if dom.Failed > exactDom.Failed {
			t.Fatalf("run %d: budgeted domain damage %d exceeds exact optimum %d", run, dom.Failed, exactDom.Failed)
		}
		if dom.Exact && dom.Failed != exactDom.Failed {
			t.Fatalf("run %d: claims exact with damage %d, domain optimum is %d", run, dom.Failed, exactDom.Failed)
		}
	}
}

func TestWorstCaseParallelOnStructuredPlacement(t *testing.T) {
	pl, err := placement.BuildSimple(19, 3, 1, 2, 100, placement.SimpleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := WorstCase(pl, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := WorstCaseParallel(pl, 2, 4, 0, 0) // 0 => GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if par.Failed != seq.Failed {
		t.Errorf("parallel %d != sequential %d", par.Failed, seq.Failed)
	}
}
