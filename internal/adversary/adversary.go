// Package adversary computes (or bounds) the worst-case k-node failure
// against a placement: the set K of k nodes maximizing the number of
// failed objects, where an object fails once s of its replicas lie in K
// (paper Definition 1: Avail(π) is b minus this maximum).
//
// The problem generalizes maximum coverage and is NP-hard, so three
// engines are provided:
//
//   - Exhaustive: enumerate all C(n, k) subsets. Reference oracle for
//     tests and tiny instances.
//   - Greedy: greedy marginal-gain selection followed by swap-based local
//     search. Fast; yields a lower bound on the damage (upper bound on
//     availability).
//   - WorstCase: branch-and-bound over candidates ordered by load, seeded
//     with the greedy incumbent, pruned with the replica-counting bound
//     failed(K) <= ⌊(Σ_{nd∈K} load(nd)) / s⌋. Exact when it completes
//     within its node budget; otherwise it degrades gracefully and
//     reports Exact = false.
package adversary

import (
	"fmt"
	"sort"

	"repro/internal/combin"
	"repro/internal/placement"
)

// Result reports the outcome of a worst-case search.
type Result struct {
	Failed  int   // objects failed by the best attack found
	Nodes   []int // the attacking node set, sorted
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search nodes visited (diagnostics/ablation)
}

// Avail returns b - Failed for the placement the result was computed on.
func (r Result) Avail(b int) int { return b - r.Failed }

// instance is the preprocessed search state shared by all engines.
type instance struct {
	s, k       int
	candidates []int   // nodes hosting at least one replica, by descending load
	loads      []int64 // static load per candidate (aligned with candidates)
	prefix     []int64 // prefix[i] = sum of loads[0:i]
	objsOf     [][]int32
	cnt        []int32 // replicas of each object currently failed
	n          int
	b          int
}

func newInstance(pl *placement.Placement, s, k int) (*instance, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if k < 1 || k >= pl.N {
		return nil, fmt.Errorf("adversary: k = %d must satisfy 1 <= k < n = %d", k, pl.N)
	}
	inst := &instance{s: s, k: k, n: pl.N, b: pl.B()}
	inst.objsOf = make([][]int32, pl.N)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, nd := range buf {
			inst.objsOf[nd] = append(inst.objsOf[nd], int32(obj))
		}
	}
	loadsByNode := pl.NodeLoads()
	for nd, l := range loadsByNode {
		if l > 0 {
			inst.candidates = append(inst.candidates, nd)
		}
	}
	sort.Slice(inst.candidates, func(i, j int) bool {
		return loadsByNode[inst.candidates[i]] > loadsByNode[inst.candidates[j]]
	})
	// If fewer than k nodes carry load, pad with empty nodes (they do no
	// harm, but the attack set must have k members).
	for nd := 0; nd < pl.N && len(inst.candidates) < k; nd++ {
		if loadsByNode[nd] == 0 {
			inst.candidates = append(inst.candidates, nd)
		}
	}
	inst.loads = make([]int64, len(inst.candidates))
	inst.prefix = make([]int64, len(inst.candidates)+1)
	for i, nd := range inst.candidates {
		inst.loads[i] = int64(loadsByNode[nd])
		inst.prefix[i+1] = inst.prefix[i] + inst.loads[i]
	}
	inst.cnt = make([]int32, pl.B())
	return inst, nil
}

// add fails candidate i, returning the number of newly failed objects.
func (in *instance) add(i int) int {
	newly := 0
	s := int32(in.s)
	for _, obj := range in.objsOf[in.candidates[i]] {
		in.cnt[obj]++
		if in.cnt[obj] == s {
			newly++
		}
	}
	return newly
}

// remove reverts add(i).
func (in *instance) remove(i int) {
	for _, obj := range in.objsOf[in.candidates[i]] {
		in.cnt[obj]--
	}
}

// marginal returns how many additional objects fail if candidate i is
// added to the current set, without mutating state.
func (in *instance) marginal(i int) int {
	gain := 0
	target := int32(in.s - 1)
	for _, obj := range in.objsOf[in.candidates[i]] {
		if in.cnt[obj] == target {
			gain++
		}
	}
	return gain
}

func (in *instance) reset() {
	for i := range in.cnt {
		in.cnt[i] = 0
	}
}

// Exhaustive enumerates every k-subset of nodes. Cost is C(n, k) times the
// incremental update cost; use only when that product is small.
func Exhaustive(pl *placement.Placement, s, k int) (Result, error) {
	in, err := newInstance(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	if len(in.candidates) < k {
		// Fewer candidates than k: fail all of them (plus arbitrary nodes).
		return exhaustTiny(pl, s, k)
	}
	return exhaustiveOn(in), nil
}

// exhaustTiny handles the degenerate case of fewer loaded candidates than
// k by failing all loaded nodes.
func exhaustTiny(pl *placement.Placement, s, k int) (Result, error) {
	failedSet := combin.NewBitset(pl.N)
	nodes := make([]int, 0, k)
	loads := pl.NodeLoads()
	for nd := 0; nd < pl.N && len(nodes) < k; nd++ {
		if loads[nd] > 0 {
			failedSet.Set(nd)
			nodes = append(nodes, nd)
		}
	}
	for nd := 0; nd < pl.N && len(nodes) < k; nd++ {
		if loads[nd] == 0 {
			failedSet.Set(nd)
			nodes = append(nodes, nd)
		}
	}
	sort.Ints(nodes)
	return Result{
		Failed: pl.FailedObjects(failedSet, s),
		Nodes:  nodes,
		Exact:  true,
	}, nil
}

// Greedy picks k nodes by maximum marginal damage, then improves the set
// with single-swap local search. The result is a valid attack (its damage
// is a lower bound on the worst case) but is not guaranteed optimal.
func Greedy(pl *placement.Placement, s, k int) (Result, error) {
	in, err := newInstance(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	if len(in.candidates) < k {
		return exhaustTiny(pl, s, k)
	}
	return greedyOn(in), nil
}

// greedyOn runs greedy selection plus swap local search on a prepared
// instance with at least in.k candidates. The instance's failure counters
// are left dirty; reset before reuse.
func greedyOn(in *instance) Result {
	m := len(in.candidates)
	k := in.k
	chosen := make([]bool, m)
	sel := make([]int, 0, k)
	failed := 0
	for len(sel) < k {
		bestI, bestGain := -1, -1
		for i := 0; i < m; i++ {
			if chosen[i] {
				continue
			}
			if g := in.marginal(i); g > bestGain {
				bestGain = g
				bestI = i
			}
		}
		failed += in.add(bestI)
		chosen[bestI] = true
		sel = append(sel, bestI)
	}
	// Swap local search: replace one chosen node with one unchosen node
	// when it strictly increases damage.
	improved := true
	rounds := 0
	for improved && rounds < 4*k {
		improved = false
		rounds++
		for si, ci := range sel {
			in.remove(ci)
			lost := in.marginal(ci) // damage this node was contributing
			bestI, bestGain := ci, lost
			for i := 0; i < m; i++ {
				if chosen[i] { // includes ci itself
					continue
				}
				if g := in.marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			in.add(bestI)
			if bestI != ci {
				chosen[ci] = false
				chosen[bestI] = true
				sel[si] = bestI
				failed += bestGain - lost
				improved = true
			}
		}
	}
	return Result{
		Failed:  failed,
		Nodes:   candidateNodes(in, sel),
		Exact:   false,
		Visited: int64(rounds) * int64(m),
	}
}

// WorstCase runs branch-and-bound seeded with the greedy incumbent. With
// budget <= 0 the search is unbounded and the result is exact; otherwise
// the search stops after visiting budget nodes and the incumbent is
// returned with Exact reflecting whether the search completed.
func WorstCase(pl *placement.Placement, s, k int, budget int64) (Result, error) {
	seed, err := Greedy(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	in, err := newInstance(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	if len(in.candidates) < k {
		return seed, nil
	}
	return branchAndBoundOn(in, seed, budget), nil
}

// branchAndBoundOn runs the branch-and-bound search on a prepared
// instance with at least in.k candidates, starting from the given
// incumbent. The instance's failure counters must be clean.
func branchAndBoundOn(in *instance, seed Result, budget int64) Result {
	m := len(in.candidates)
	k := in.k
	best := seed
	best.Exact = true // until proven otherwise by budget exhaustion
	cur := make([]int, 0, k)
	var visited int64
	exhausted := false

	var dfs func(start int, failed int, loadSum int64)
	dfs = func(start int, failed int, loadSum int64) {
		if exhausted {
			return
		}
		visited++
		if budget > 0 && visited > budget {
			exhausted = true
			return
		}
		rem := k - len(cur)
		if rem == 0 {
			if failed > best.Failed {
				best.Failed = failed
				best.Nodes = candidateNodes(in, cur)
			}
			return
		}
		// Replica-counting bound: any completion adds at most the top rem
		// remaining loads; s replicas in K are needed per failed object.
		if start+rem > m {
			return
		}
		maxLoad := loadSum + in.prefix[start+rem] - in.prefix[start]
		if int(maxLoad/int64(in.s)) <= best.Failed {
			return
		}
		if rem == 1 {
			// Final level: scan candidates for the best single extension.
			bestI, bestGain := -1, -1
			for i := start; i < m; i++ {
				if g := in.marginal(i); g > bestGain {
					bestGain = g
					bestI = i
				}
			}
			if bestI >= 0 && failed+bestGain > best.Failed {
				cur = append(cur, bestI)
				best.Failed = failed + bestGain
				best.Nodes = candidateNodes(in, cur)
				cur = cur[:len(cur)-1]
			}
			return
		}
		for i := start; i <= m-rem; i++ {
			newly := in.add(i)
			cur = append(cur, i)
			dfs(i+1, failed+newly, loadSum+in.loads[i])
			cur = cur[:len(cur)-1]
			in.remove(i)
			if exhausted {
				return
			}
		}
	}
	dfs(0, 0, 0)
	best.Visited = visited
	if exhausted {
		best.Exact = false
	}
	return best
}

func candidateNodes(in *instance, idxs []int) []int {
	nodes := make([]int, len(idxs))
	for i, ci := range idxs {
		nodes[i] = in.candidates[ci]
	}
	sort.Ints(nodes)
	return nodes
}

// Avail computes Avail(π) = b − WorstCase damage. It returns the
// availability, the witnessing failure set, and whether the value is
// exact.
func Avail(pl *placement.Placement, s, k int, budget int64) (int, Result, error) {
	res, err := WorstCase(pl, s, k, budget)
	if err != nil {
		return 0, Result{}, err
	}
	return pl.B() - res.Failed, res, nil
}
