// Package adversary computes (or bounds) the worst-case k-node failure
// against a placement: the set K of k nodes maximizing the number of
// failed objects, where an object fails once s of its replicas lie in K
// (paper Definition 1: Avail(π) is b minus this maximum).
//
// The problem generalizes maximum coverage and is NP-hard. Every engine
// in this package — the node-level trio (Exhaustive, Greedy, WorstCase),
// the whole-domain trio (DomainExhaustive, DomainGreedy,
// DomainWorstCase), the constrained k-nodes-in-≤d-domains pair, and the
// parallel variants — is a thin adapter over the one generic search core
// in internal/search; see that package (and this package's README) for
// the shared driver and budget semantics:
//
//   - Exhaustive: enumerate all C(n, k) subsets. Reference oracle for
//     tests and tiny instances.
//   - Greedy: greedy marginal-gain selection followed by swap-based local
//     search. Fast; yields a lower bound on the damage (upper bound on
//     availability).
//   - WorstCase: branch-and-bound over candidates ordered by load, seeded
//     with the greedy incumbent, pruned with the replica-counting bound
//     failed(K) <= ⌊(Σ_{nd∈K} load(nd)) / s⌋. Exact when it completes
//     within its state budget; otherwise it degrades gracefully and
//     reports Exact = false.
package adversary

import (
	"fmt"
	"sort"

	"repro/internal/placement"
	"repro/internal/search"
)

// Result reports the outcome of a worst-case search.
type Result struct {
	Failed  int   // objects failed by the best attack found
	Nodes   []int // the attacking node set, sorted
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search states visited (diagnostics/ablation)
}

// Avail returns b - Failed for the placement the result was computed on.
func (r Result) Avail(b int) int { return b - r.Failed }

// instance implements search.Instance with individual nodes as the unit
// of failure.
type instance struct {
	s, k       int
	candidates []int   // nodes hosting at least one replica, by descending load
	loads      []int64 // static load per candidate (aligned with candidates)
	objsOf     [][]int32
	cnt        []int32 // replicas of each object currently failed
}

var _ search.Instance = (*instance)(nil)

func newInstance(pl *placement.Placement, s, k int) (*instance, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if k < 1 || k >= pl.N {
		return nil, fmt.Errorf("adversary: k = %d must satisfy 1 <= k < n = %d", k, pl.N)
	}
	inst := &instance{s: s, k: k}
	inst.objsOf = make([][]int32, pl.N)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, nd := range buf {
			inst.objsOf[nd] = append(inst.objsOf[nd], int32(obj))
		}
	}
	loadsByNode := pl.NodeLoads()
	for nd, l := range loadsByNode {
		if l > 0 {
			inst.candidates = append(inst.candidates, nd)
		}
	}
	sort.Slice(inst.candidates, func(i, j int) bool {
		if loadsByNode[inst.candidates[i]] != loadsByNode[inst.candidates[j]] {
			return loadsByNode[inst.candidates[i]] > loadsByNode[inst.candidates[j]]
		}
		return inst.candidates[i] < inst.candidates[j]
	})
	// If fewer than k nodes carry load, pad with empty nodes (they do no
	// harm, but the attack set must have k members; k < n guarantees
	// enough nodes exist).
	for nd := 0; nd < pl.N && len(inst.candidates) < k; nd++ {
		if loadsByNode[nd] == 0 {
			inst.candidates = append(inst.candidates, nd)
		}
	}
	inst.loads = make([]int64, len(inst.candidates))
	for i, nd := range inst.candidates {
		inst.loads[i] = int64(loadsByNode[nd])
	}
	inst.cnt = make([]int32, pl.B())
	return inst, nil
}

func (in *instance) Len() int         { return len(in.candidates) }
func (in *instance) K() int           { return in.k }
func (in *instance) S() int           { return in.s }
func (in *instance) Load(i int) int64 { return in.loads[i] }

// Add fails candidate i, returning the number of newly failed objects.
func (in *instance) Add(i int) int {
	newly := 0
	s := int32(in.s)
	for _, obj := range in.objsOf[in.candidates[i]] {
		in.cnt[obj]++
		if in.cnt[obj] == s {
			newly++
		}
	}
	return newly
}

// Remove reverts Add(i).
func (in *instance) Remove(i int) {
	for _, obj := range in.objsOf[in.candidates[i]] {
		in.cnt[obj]--
	}
}

// Marginal returns how many additional objects fail if candidate i is
// added to the current set, without mutating state.
func (in *instance) Marginal(i int) int {
	gain := 0
	target := int32(in.s - 1)
	for _, obj := range in.objsOf[in.candidates[i]] {
		if in.cnt[obj] == target {
			gain++
		}
	}
	return gain
}

func (in *instance) Reset() {
	for i := range in.cnt {
		in.cnt[i] = 0
	}
}

// clone returns an independent searcher sharing the immutable
// preprocessing (object index, candidate order, loads) with fresh
// counters — how the parallel driver stamps out per-worker instances.
func (in *instance) clone() *instance {
	cp := *in
	cp.cnt = make([]int32, len(in.cnt))
	return &cp
}

// result translates a core result from candidate-index space to node ids.
func (in *instance) result(res search.Result) Result {
	nodes := make([]int, len(res.Sel))
	for i, ci := range res.Sel {
		nodes[i] = in.candidates[ci]
	}
	sort.Ints(nodes)
	return Result{
		Failed:  res.Failed,
		Nodes:   nodes,
		Exact:   res.Exact,
		Visited: res.Visited,
	}
}

// Exhaustive enumerates every k-subset of nodes. Cost is C(n, k) times the
// incremental update cost; use only when that product is small.
func Exhaustive(pl *placement.Placement, s, k int) (Result, error) {
	in, err := newInstance(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	return in.result(search.Exhaustive(in)), nil
}

// Greedy picks k nodes by maximum marginal damage, then improves the set
// with single-swap local search. The result is a valid attack (its damage
// is a lower bound on the worst case) but is not guaranteed optimal.
func Greedy(pl *placement.Placement, s, k int) (Result, error) {
	in, err := newInstance(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	return in.result(search.Greedy(in)), nil
}

// WorstCase runs branch-and-bound seeded with the greedy incumbent. With
// budget <= 0 the search is unbounded and the result is exact; otherwise
// the search stops after visiting budget states and the incumbent is
// returned with Exact reflecting whether the search completed. (One state
// = one partial attack set considered; greedy seeding is budget-free —
// the semantics every engine in this package shares.)
func WorstCase(pl *placement.Placement, s, k int, budget int64) (Result, error) {
	in, err := newInstance(pl, s, k)
	if err != nil {
		return Result{}, err
	}
	seed := search.Greedy(in)
	in.Reset()
	return in.result(search.BranchAndBound(in, seed, search.NewBudget(budget))), nil
}

// Avail computes Avail(π) = b − WorstCase damage. It returns the
// availability, the witnessing failure set, and whether the value is
// exact.
func Avail(pl *placement.Placement, s, k int, budget int64) (int, Result, error) {
	res, err := WorstCase(pl, s, k, budget)
	if err != nil {
		return 0, Result{}, err
	}
	return pl.B() - res.Failed, res, nil
}
