// Package adversary computes (or bounds) the worst-case k-node failure
// against a placement: the set K of k nodes maximizing the number of
// failed objects, where an object fails once s of its replicas lie in K
// (paper Definition 1: Avail(π) is b minus this maximum).
//
// The problem generalizes maximum coverage and is NP-hard. Every engine
// in this package — the node-level trio (Exhaustive, Greedy, WorstCase),
// the whole-domain trio (DomainExhaustive, DomainGreedy,
// DomainWorstCase), the constrained k-nodes-in-≤d-domains pair, and the
// parallel variants — is a thin adapter over the one generic search core
// in internal/search; see that package (and this package's README) for
// the shared drivers, the residual-load pruning bound, and the budget
// semantics:
//
//   - Exhaustive: enumerate all C(n, k) subsets. Reference oracle for
//     tests and tiny instances.
//   - Greedy: greedy marginal-gain selection followed by swap-based local
//     search. Fast; yields a lower bound on the damage (upper bound on
//     availability).
//   - WorstCase: branch-and-bound over candidates ordered by load, seeded
//     with the greedy incumbent, pruned with the residual-load bound (or,
//     under SearchOpts{Bound: search.BoundStatic}, the static
//     replica-counting bound failed(K) <= ⌊(Σ_{nd∈K} load(nd)) / s⌋).
//     Exact when it completes within its state budget; otherwise it
//     degrades gracefully and reports Exact = false.
//
// Every adapter is a search.HitInstance — one flat CSR hit layout for
// node-level (C = 1), whole-domain (aggregated C), and constrained
// searches alike — plus a candidate-selection policy and the candidate
// index → identity mapping.
package adversary

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/placement"
	"repro/internal/search"
)

// Result reports the outcome of a worst-case search. Under
// SearchOpts.ObjWeights, Failed is the total WEIGHT of the failed
// objects (lost weight, not count); Avail then reads b as the total
// weight — pair weighted searches with placement.SumWeights.
type Result struct {
	Failed  int   // objects (or weight, under ObjWeights) failed by the best attack found
	Nodes   []int // the attacking node set, sorted
	Exact   bool  // true if Failed is provably the maximum
	Visited int64 // search states visited (diagnostics/ablation)
}

// Avail returns b - Failed for the placement the result was computed on.
func (r Result) Avail(b int) int { return b - r.Failed }

// SearchOpts tunes how a branch-and-bound engine searches; the zero
// value — unlimited budget, serial, residual-load pruning — matches the
// plain engine functions.
type SearchOpts struct {
	// Budget caps the branch-and-bound states visited (<= 0: unlimited,
	// result exact). One shared pool per logical search: across workers
	// and, for the constrained engines, across domain subsets.
	Budget int64
	// Workers fans the search out over goroutines: 0 or 1 serial, < 0
	// GOMAXPROCS. Exact searches return identical damage at any worker
	// count; budgeted parallel searches may report different (still
	// valid) lower bounds run to run.
	Workers int
	// Bound selects the pruning discipline — search.BoundResidual (the
	// default) or search.BoundStatic (the ablation baseline). Both
	// return identical results; residual visits no more states.
	Bound search.Bound
	// MemoCap bounds the damage memo of incremental Sessions (the
	// one-shot engines keep no memo): total memoized results across
	// the memo's shards, evicted FIFO past the cap. 0 picks a default
	// large enough that bounded workloads never evict (1<<16); < 0 is
	// unlimited. Parallel probing (Session.ProbeMoves) is visit-count
	// deterministic only while the cap is unreached — see the session
	// docs — so leave it at the default unless memory is the concern.
	MemoCap int
	// ObjWeights switches every engine to weighted damage: object obj
	// is worth ObjWeights[obj] (>= 0) and the adversary maximizes the
	// total weight of the failed objects instead of their count —
	// Result.Failed / DomainResult.Failed are then lost weight. The
	// candidate ordering, the pruning bounds and the residual ledger all
	// run in weight units (see internal/search), so an all-ones vector
	// reproduces the unweighted search byte for byte: same damage, same
	// witness, same visited-state count. nil means unit weights. Derive
	// per-object weights from a topology's node weights with
	// placement.ObjectWeights.
	ObjWeights []int64
}

// resolveMemoCap maps the SearchOpts convention onto a concrete cap
// for newSessionMemo (0 there = unlimited).
func (o SearchOpts) resolveMemoCap() int {
	if o.MemoCap < 0 {
		return 0
	}
	if o.MemoCap == 0 {
		return defaultMemoCap
	}
	return o.MemoCap
}

// resolveWorkers maps the SearchOpts convention onto a concrete count.
func (o SearchOpts) resolveWorkers() int {
	if o.Workers < 0 {
		return runtime.GOMAXPROCS(0) //lint:allow nodeterm worker-count default only; results are proven worker-count invariant
	}
	if o.Workers == 0 {
		return 1
	}
	return o.Workers
}

// runBranchAndBound is the one greedy-seed → Reset → serial-or-parallel
// branch-and-bound dispatch shared by the node- and domain-level With
// engines (the constrained pair shards domain subsets instead).
func runBranchAndBound(probe search.Instance, clone func() search.Instance, opts SearchOpts) (search.Result, error) {
	seed := search.Greedy(probe)
	probe.Reset()
	bud := search.NewBudget(opts.Budget)
	if workers := opts.resolveWorkers(); workers > 1 {
		return search.BranchAndBoundParallelWith(probe, func() (search.Instance, error) {
			return clone(), nil
		}, seed, bud, workers, opts.Bound)
	}
	return search.BranchAndBoundWith(probe, seed, bud, opts.Bound), nil
}

// nodeInstance adapts a placement to search.HitInstance with individual
// nodes as the unit of failure (every hit has C = 1), keeping the
// candidate index → node id mapping.
type nodeInstance struct {
	*search.HitInstance
	candidates []int // nodes hosting at least one replica, by descending load
}

// checkObjWeights validates an optional per-object weight vector
// against a placement's object count.
func checkObjWeights(w []int64, b int) error {
	if w == nil {
		return nil
	}
	if len(w) != b {
		return fmt.Errorf("adversary: %d object weights for %d objects", len(w), b)
	}
	for obj, v := range w {
		if v < 0 {
			return fmt.Errorf("adversary: object %d weight %d negative", obj, v)
		}
	}
	return nil
}

// weightedLoads maps per-candidate hit lists to their weighted loads
// Σ C·w[obj] — the load contract of a SetWeights instance. With w nil
// it returns the plain replica counts.
func weightedLoads(hitLists [][]search.Hit, w []int64) []int64 {
	loads := make([]int64, len(hitLists))
	for i, hl := range hitLists {
		var sum int64
		for _, h := range hl {
			c := int64(h.C)
			if w != nil {
				c *= w[h.Obj]
			}
			sum += c
		}
		loads[i] = sum
	}
	return loads
}

func newInstance(pl *placement.Placement, s, k int, w []int64) (*nodeInstance, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if s < 1 || s > pl.R {
		return nil, fmt.Errorf("adversary: s = %d must satisfy 1 <= s <= r = %d", s, pl.R)
	}
	if k < 1 || k >= pl.N {
		return nil, fmt.Errorf("adversary: k = %d must satisfy 1 <= k < n = %d", k, pl.N)
	}
	if err := checkObjWeights(w, pl.B()); err != nil {
		return nil, err
	}
	perNode := nodeHits(pl)
	loadsByNode := pl.NodeLoads()
	wloads := weightedLoads(perNode, w)
	var candidates []int
	for nd, l := range loadsByNode {
		if l > 0 {
			candidates = append(candidates, nd)
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if wloads[candidates[i]] != wloads[candidates[j]] {
			return wloads[candidates[i]] > wloads[candidates[j]]
		}
		return candidates[i] < candidates[j]
	})
	// If fewer than k nodes carry load, pad with empty nodes (they do no
	// harm, but the attack set must have k members; k < n guarantees
	// enough nodes exist).
	for nd := 0; nd < pl.N && len(candidates) < k; nd++ {
		if loadsByNode[nd] == 0 {
			candidates = append(candidates, nd)
		}
	}
	hitLists := make([][]search.Hit, len(candidates))
	loads := make([]int64, len(candidates))
	for i, nd := range candidates {
		hitLists[i] = perNode[nd]
		loads[i] = wloads[nd]
	}
	inst := &nodeInstance{HitInstance: search.NewHitInstance(s, pl.B()), candidates: candidates}
	inst.Reinit(k, hitLists, loads)
	inst.SetWeights(w)
	return inst, nil
}

// nodeHits builds the per-node hit lists (C = 1 per hosted replica,
// objects ascending) every node-level adapter shares.
func nodeHits(pl *placement.Placement) [][]search.Hit {
	perNode := make([][]search.Hit, pl.N)
	var buf []int
	for obj := 0; obj < pl.B(); obj++ {
		buf = pl.Objects[obj].Members(buf[:0])
		for _, nd := range buf {
			perNode[nd] = append(perNode[nd], search.Hit{Obj: int32(obj), C: 1})
		}
	}
	return perNode
}

// clone returns an independent searcher sharing the immutable
// preprocessing (CSR hits, candidate order, loads) with fresh counters —
// how the parallel driver stamps out per-worker instances.
func (in *nodeInstance) clone() *nodeInstance {
	return &nodeInstance{HitInstance: in.HitInstance.Clone(), candidates: in.candidates}
}

// result translates a core result from candidate-index space to node ids.
func (in *nodeInstance) result(res search.Result) Result {
	nodes := make([]int, len(res.Sel))
	for i, ci := range res.Sel {
		nodes[i] = in.candidates[ci]
	}
	sort.Ints(nodes)
	return Result{
		Failed:  res.Failed,
		Nodes:   nodes,
		Exact:   res.Exact,
		Visited: res.Visited,
	}
}

// Exhaustive enumerates every k-subset of nodes. Cost is C(n, k) times the
// incremental update cost; use only when that product is small.
func Exhaustive(pl *placement.Placement, s, k int) (Result, error) {
	return ExhaustiveWith(pl, s, k, SearchOpts{})
}

// ExhaustiveWith is Exhaustive with explicit search options; only
// ObjWeights applies (enumeration has no budget, workers or bound).
func ExhaustiveWith(pl *placement.Placement, s, k int, opts SearchOpts) (Result, error) {
	in, err := newInstance(pl, s, k, opts.ObjWeights)
	if err != nil {
		return Result{}, err
	}
	return in.result(search.Exhaustive(in)), nil
}

// Greedy picks k nodes by maximum marginal damage, then improves the set
// with single-swap local search. The result is a valid attack (its damage
// is a lower bound on the worst case) but is not guaranteed optimal.
func Greedy(pl *placement.Placement, s, k int) (Result, error) {
	return GreedyWith(pl, s, k, SearchOpts{})
}

// GreedyWith is Greedy with explicit search options; only ObjWeights
// applies.
func GreedyWith(pl *placement.Placement, s, k int, opts SearchOpts) (Result, error) {
	in, err := newInstance(pl, s, k, opts.ObjWeights)
	if err != nil {
		return Result{}, err
	}
	return in.result(search.Greedy(in)), nil
}

// WorstCase runs branch-and-bound seeded with the greedy incumbent. With
// budget <= 0 the search is unbounded and the result is exact; otherwise
// the search stops after visiting budget states and the incumbent is
// returned with Exact reflecting whether the search completed. (One state
// = one partial attack set considered; greedy seeding is budget-free —
// the semantics every engine in this package shares.)
func WorstCase(pl *placement.Placement, s, k int, budget int64) (Result, error) {
	return WorstCaseWith(pl, s, k, SearchOpts{Budget: budget})
}

// WorstCaseWith is WorstCase with explicit search options (budget,
// worker fan-out, pruning-bound ablation).
func WorstCaseWith(pl *placement.Placement, s, k int, opts SearchOpts) (Result, error) {
	in, err := newInstance(pl, s, k, opts.ObjWeights)
	if err != nil {
		return Result{}, err
	}
	res, err := runBranchAndBound(in, func() search.Instance { return in.clone() }, opts)
	if err != nil {
		return Result{}, err
	}
	// Candidate order is deterministic, so in translates any worker's
	// selection.
	return in.result(res), nil
}

// Avail computes Avail(π) = b − WorstCase damage. It returns the
// availability, the witnessing failure set, and whether the value is
// exact.
func Avail(pl *placement.Placement, s, k int, budget int64) (int, Result, error) {
	res, err := WorstCase(pl, s, k, budget)
	if err != nil {
		return 0, Result{}, err
	}
	return pl.B() - res.Failed, res, nil
}
