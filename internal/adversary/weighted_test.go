package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/topology"
)

// randObjWeights draws a per-object weight vector in [1, 5].
func randObjWeights(rng *rand.Rand, b int) []int64 {
	w := make([]int64, b)
	for i := range w {
		w[i] = int64(1 + rng.Intn(5))
	}
	return w
}

// weightedNodeDamage is the independent weighted oracle: Σ w over
// objects with >= s replicas on the failed node set.
func weightedNodeDamage(pl *placement.Placement, failed *combin.Bitset, s int, w []int64) int {
	damage := 0
	for obj, o := range pl.Objects {
		if o.IntersectCount(failed) >= s {
			damage += int(w[obj])
		}
	}
	return damage
}

// referenceWeightedWorst enumerates every k-subset of nodes.
func referenceWeightedWorst(pl *placement.Placement, s, k int, w []int64) int {
	best := 0
	combin.ForEachSubset(pl.N, k, func(idx []int) bool {
		bs := combin.NewBitset(pl.N)
		for _, nd := range idx {
			bs.Set(nd)
		}
		if dmg := weightedNodeDamage(pl, bs, s, w); dmg > best {
			best = dmg
		}
		return true
	})
	return best
}

// referenceWeightedDomainWorst enumerates every d-subset of domains.
func referenceWeightedDomainWorst(pl *placement.Placement, topo *topology.Topology, s, d int, w []int64) int {
	best := 0
	combin.ForEachSubset(topo.NumDomains(), d, func(idx []int) bool {
		if dmg := weightedNodeDamage(pl, topo.FailedSet(idx), s, w); dmg > best {
			best = dmg
		}
		return true
	})
	return best
}

// TestWeightedNodeEnginesDifferential pins the weighted node trio
// against the independent oracle: exhaustive and branch-and-bound
// (serial and parallel) are exact in lost weight, greedy is a valid
// lower bound.
func TestWeightedNodeEnginesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(4)
		r := 2 + rng.Intn(2)
		b := 8 + rng.Intn(12)
		s := 1 + rng.Intn(r)
		k := 1 + rng.Intn(3)
		pl := randomPlacement(rng, n, r, b)
		w := randObjWeights(rng, b)
		want := referenceWeightedWorst(pl, s, k, w)
		opts := SearchOpts{ObjWeights: w}

		ex, err := ExhaustiveWith(pl, s, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Failed != want {
			t.Errorf("trial %d: weighted Exhaustive %d, oracle %d", trial, ex.Failed, want)
		}
		gr, err := GreedyWith(pl, s, k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Failed > want {
			t.Errorf("trial %d: weighted Greedy %d exceeds oracle %d", trial, gr.Failed, want)
		}
		for _, workers := range []int{1, 4} {
			res, err := WorstCaseWith(pl, s, k, SearchOpts{ObjWeights: w, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact || res.Failed != want {
				t.Errorf("trial %d workers=%d: weighted WorstCase %+v, oracle %d", trial, workers, res, want)
			}
			// The witness must realize the claimed weight.
			bs := combin.NewBitset(pl.N)
			for _, nd := range res.Nodes {
				bs.Set(nd)
			}
			if got := weightedNodeDamage(pl, bs, s, w); got != res.Failed {
				t.Errorf("trial %d: witness %v realizes %d, claimed %d", trial, res.Nodes, got, res.Failed)
			}
		}
	}
}

// TestWeightedDomainEnginesDifferential pins the weighted domain trio
// and the constrained pair against independent enumeration.
func TestWeightedDomainEnginesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	for trial := 0; trial < 12; trial++ {
		n := 7 + rng.Intn(5)
		r := 2 + rng.Intn(2)
		b := 8 + rng.Intn(12)
		s := 1 + rng.Intn(r)
		pl := randomPlacement(rng, n, r, b)
		topo := randomTopology(rng, n)
		d := 1 + rng.Intn(topo.NumDomains())
		w := randObjWeights(rng, b)
		want := referenceWeightedDomainWorst(pl, topo, s, d, w)
		opts := SearchOpts{ObjWeights: w}

		ex, err := DomainExhaustiveAtWith(pl, topo, topology.Leaf, s, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ex.Failed != want {
			t.Errorf("trial %d: weighted DomainExhaustive %d, oracle %d", trial, ex.Failed, want)
		}
		gr, err := DomainGreedyAtWith(pl, topo, topology.Leaf, s, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if gr.Failed > want {
			t.Errorf("trial %d: weighted DomainGreedy %d exceeds oracle %d", trial, gr.Failed, want)
		}
		for _, workers := range []int{1, 4} {
			res, err := DomainWorstCaseAtWith(pl, topo, topology.Leaf, s, d, SearchOpts{ObjWeights: w, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Exact || res.Failed != want {
				t.Errorf("trial %d workers=%d: weighted DomainWorstCase %+v, oracle %d", trial, workers, res, want)
			}
		}

		// Constrained: k nodes in <= d domains, weighted.
		k := 1 + rng.Intn(3)
		wantCon := 0
		combin.ForEachSubset(topo.NumDomains(), d, func(doms []int) bool {
			allowed := topo.FailedSet(doms).Members(nil)
			kEff := k
			if len(allowed) < kEff {
				kEff = len(allowed)
			}
			combin.ForEachSubset(len(allowed), kEff, func(idx []int) bool {
				bs := combin.NewBitset(pl.N)
				for _, i := range idx {
					bs.Set(allowed[i])
				}
				if dmg := weightedNodeDamage(pl, bs, s, w); dmg > wantCon {
					wantCon = dmg
				}
				return true
			})
			return true
		})
		conEx, err := ConstrainedExhaustiveAtWith(pl, topo, topology.Leaf, s, k, d, opts)
		if err != nil {
			t.Fatal(err)
		}
		if conEx.Failed != wantCon {
			t.Errorf("trial %d: weighted ConstrainedExhaustive %d, oracle %d", trial, conEx.Failed, wantCon)
		}
		for _, workers := range []int{1, 4} {
			conRes, err := ConstrainedWorstCaseAtWith(pl, topo, topology.Leaf, s, k, d, SearchOpts{ObjWeights: w, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if !conRes.Exact || conRes.Failed != wantCon {
				t.Errorf("trial %d workers=%d: weighted ConstrainedWorstCase %+v, oracle %d", trial, workers, conRes, wantCon)
			}
		}
	}
}

// TestWeightedUnitParity is the weights≡1 acceptance pin: an explicit
// all-ones weight vector must reproduce the unweighted engines EXACTLY
// — damage, witness, exactness and visited states — for all six
// engines plus the constrained pair.
func TestWeightedUnitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(227))
	for trial := 0; trial < 10; trial++ {
		n := 7 + rng.Intn(5)
		r := 2 + rng.Intn(2)
		b := 10 + rng.Intn(15)
		s := 1 + rng.Intn(r)
		k := 1 + rng.Intn(3)
		pl := randomPlacement(rng, n, r, b)
		topo := randomTopology(rng, n)
		d := 1 + rng.Intn(topo.NumDomains())
		ones := make([]int64, b)
		for i := range ones {
			ones[i] = 1
		}
		wopts := SearchOpts{ObjWeights: ones}

		checkNode := func(name string, plain Result, perr error, weighted Result, werr error) {
			t.Helper()
			if perr != nil || werr != nil {
				t.Fatalf("trial %d %s: %v / %v", trial, name, perr, werr)
			}
			if plain.Failed != weighted.Failed || plain.Exact != weighted.Exact || plain.Visited != weighted.Visited {
				t.Errorf("trial %d %s: unit weights diverge: %+v vs %+v", trial, name, plain, weighted)
			}
		}
		checkDomain := func(name string, plain DomainResult, perr error, weighted DomainResult, werr error) {
			t.Helper()
			if perr != nil || werr != nil {
				t.Fatalf("trial %d %s: %v / %v", trial, name, perr, werr)
			}
			if plain.Failed != weighted.Failed || plain.Exact != weighted.Exact || plain.Visited != weighted.Visited {
				t.Errorf("trial %d %s: unit weights diverge: %+v vs %+v", trial, name, plain, weighted)
			}
		}

		{
			a, aerr := Exhaustive(pl, s, k)
			b2, berr := ExhaustiveWith(pl, s, k, wopts)
			checkNode("Exhaustive", a, aerr, b2, berr)
		}
		{
			a, aerr := Greedy(pl, s, k)
			b2, berr := GreedyWith(pl, s, k, wopts)
			checkNode("Greedy", a, aerr, b2, berr)
		}
		{
			a, aerr := WorstCase(pl, s, k, 0)
			b2, berr := WorstCaseWith(pl, s, k, wopts)
			checkNode("WorstCase", a, aerr, b2, berr)
			if len(a.Nodes) != len(b2.Nodes) {
				t.Errorf("trial %d: witness length diverges: %v vs %v", trial, a.Nodes, b2.Nodes)
			} else {
				for i := range a.Nodes {
					if a.Nodes[i] != b2.Nodes[i] {
						t.Errorf("trial %d: witnesses diverge: %v vs %v", trial, a.Nodes, b2.Nodes)
						break
					}
				}
			}
		}
		{
			a, aerr := DomainExhaustive(pl, topo, s, d)
			b2, berr := DomainExhaustiveAtWith(pl, topo, topology.Leaf, s, d, wopts)
			checkDomain("DomainExhaustive", a, aerr, b2, berr)
		}
		{
			a, aerr := DomainGreedy(pl, topo, s, d)
			b2, berr := DomainGreedyAtWith(pl, topo, topology.Leaf, s, d, wopts)
			checkDomain("DomainGreedy", a, aerr, b2, berr)
		}
		{
			a, aerr := DomainWorstCase(pl, topo, s, d, 0)
			b2, berr := DomainWorstCaseAtWith(pl, topo, topology.Leaf, s, d, wopts)
			checkDomain("DomainWorstCase", a, aerr, b2, berr)
		}
		{
			a, aerr := ConstrainedExhaustive(pl, topo, s, k, d)
			b2, berr := ConstrainedExhaustiveAtWith(pl, topo, topology.Leaf, s, k, d, wopts)
			checkDomain("ConstrainedExhaustive", a, aerr, b2, berr)
		}
		{
			a, aerr := ConstrainedWorstCase(pl, topo, s, k, d, 0)
			b2, berr := ConstrainedWorstCaseAtWith(pl, topo, topology.Leaf, s, k, d, wopts)
			checkDomain("ConstrainedWorstCase", a, aerr, b2, berr)
		}
	}
}

// TestObjWeightsValidation pins the weight-vector argument checks.
func TestObjWeightsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(229))
	pl := randomPlacement(rng, 6, 2, 8)
	if _, err := ExhaustiveWith(pl, 1, 2, SearchOpts{ObjWeights: []int64{1, 2}}); err == nil {
		t.Error("short weight vector accepted")
	}
	bad := make([]int64, pl.B())
	bad[3] = -1
	if _, err := WorstCaseWith(pl, 1, 2, SearchOpts{ObjWeights: bad}); err == nil {
		t.Error("negative weight accepted")
	}
}
