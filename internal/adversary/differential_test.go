package adversary

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/combin"
	"repro/internal/placement"
	"repro/internal/search"
	"repro/internal/topology"
)

// This file is the differential safety net for the unified search core:
// all six engines (plus the parallel variants) against independent
// brute-force references, across node, domain, and constrained modes,
// and the node↔domain isomorphism that pins one budget/visited-state
// semantics for both levels.

// testWorkerCounts returns the worker counts the parallel engines are
// exercised with. CI sets ADVERSARY_TEST_WORKERS to force an
// oversubscribed count under the race detector.
func testWorkerCounts(t *testing.T) []int {
	counts := []int{2, 4}
	if v := os.Getenv("ADVERSARY_TEST_WORKERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("ADVERSARY_TEST_WORKERS = %q: want a positive integer", v)
		}
		counts = append(counts, n)
	}
	return counts
}

// TestDifferentialNodeEngines: the node trio and its parallel variant
// versus the independent subset-enumeration reference.
func TestDifferentialNodeEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	workerCounts := testWorkerCounts(t)
	for trial := 0; trial < 15; trial++ {
		n := 7 + rng.Intn(5)
		r := 2 + rng.Intn(3)
		b := 8 + rng.Intn(25)
		s := 1 + rng.Intn(r)
		k := 1 + rng.Intn(n-2)
		pl := randomPlacement(rng, n, r, b)
		want := referenceWorst(pl, s, k)

		ex, err := Exhaustive(pl, s, k)
		if err != nil {
			t.Fatal(err)
		}
		bnb, err := WorstCase(pl, s, k, 0)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := Greedy(pl, s, k)
		if err != nil {
			t.Fatal(err)
		}
		for name, res := range map[string]Result{"Exhaustive": ex, "WorstCase": bnb} {
			if res.Failed != want || !res.Exact {
				t.Errorf("trial %d (n=%d r=%d b=%d s=%d k=%d): %s = {failed %d, exact %v}, reference %d",
					trial, n, r, b, s, k, name, res.Failed, res.Exact, want)
			}
		}
		if greedy.Failed > want {
			t.Errorf("trial %d: Greedy %d exceeds reference %d", trial, greedy.Failed, want)
		}
		for _, workers := range workerCounts {
			par, err := WorstCaseParallel(pl, s, k, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Failed != want || !par.Exact {
				t.Errorf("trial %d: WorstCaseParallel(%d workers) = {failed %d, exact %v}, reference %d",
					trial, workers, par.Failed, par.Exact, want)
			}
		}
		// Every witness reproduces its claimed damage.
		for name, res := range map[string]Result{"Exhaustive": ex, "WorstCase": bnb, "Greedy": greedy} {
			if f := pl.FailedObjects(combin.NewBitsetFrom(n, res.Nodes), s); f != res.Failed {
				t.Errorf("trial %d: %s witness reproduces %d, reported %d", trial, name, f, res.Failed)
			}
		}
	}
}

// TestDifferentialDomainEngines: the domain trio and its parallel
// variant versus the independent reference, on random topologies.
func TestDifferentialDomainEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	workerCounts := testWorkerCounts(t)
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(6)
		r := 2 + rng.Intn(3)
		b := 8 + rng.Intn(25)
		s := 1 + rng.Intn(r)
		pl := randomPlacement(rng, n, r, b)
		topo := randomTopology(rng, n)
		d := 1 + rng.Intn(topo.NumDomains())
		want := referenceDomainWorst(pl, topo, s, d)

		ex, err := DomainExhaustive(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		bnb, err := DomainWorstCase(pl, topo, s, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := DomainGreedy(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		for name, res := range map[string]DomainResult{"DomainExhaustive": ex, "DomainWorstCase": bnb} {
			if res.Failed != want || !res.Exact {
				t.Errorf("trial %d (n=%d D=%d s=%d d=%d): %s = {failed %d, exact %v}, reference %d",
					trial, n, topo.NumDomains(), s, d, name, res.Failed, res.Exact, want)
			}
		}
		if greedy.Failed > want {
			t.Errorf("trial %d: DomainGreedy %d exceeds reference %d", trial, greedy.Failed, want)
		}
		for _, workers := range workerCounts {
			par, err := DomainWorstCasePar(pl, topo, s, d, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Failed != want || !par.Exact {
				t.Errorf("trial %d: DomainWorstCasePar(%d workers) = {failed %d, exact %v}, reference %d",
					trial, workers, par.Failed, par.Exact, want)
			}
			if f := pl.FailedObjects(topo.FailedSet(par.Domains), s); f != par.Failed {
				t.Errorf("trial %d: parallel witness %v reproduces %d, reported %d",
					trial, par.Domains, f, par.Failed)
			}
		}
	}
}

// referenceConstrainedWorstEff is an independent reference for the
// constrained engines' documented semantics: for every d-subset of
// domains the attacker fails min(k, nodes available) nodes inside it
// (referenceConstrainedWorst instead discards undersized domain unions
// outright, so it only agrees when every d-subset can host k nodes).
// The decomposition — per-subset node enumeration from scratch — shares
// no code with the engines' ordered incremental search.
func referenceConstrainedWorstEff(pl *placement.Placement, topo *topology.Topology, s, k, d int) int {
	worst := 0
	combin.ForEachSubset(topo.NumDomains(), d, func(domains []int) bool {
		allowed := topo.FailedSet(domains).Members(nil)
		kEff := k
		if len(allowed) < kEff {
			kEff = len(allowed)
		}
		combin.ForEachSubset(len(allowed), kEff, func(idxs []int) bool {
			nodes := make([]int, len(idxs))
			for i, idx := range idxs {
				nodes[i] = allowed[idx]
			}
			if f := pl.FailedObjects(combin.NewBitsetFrom(pl.N, nodes), s); f > worst {
				worst = f
			}
			return true
		})
		return true
	})
	return worst
}

// TestDifferentialConstrainedEngines: the constrained pair and its
// parallel variant versus the independent filtered-enumeration reference.
func TestDifferentialConstrainedEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	workerCounts := testWorkerCounts(t)
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(4)
		r := 2 + rng.Intn(2)
		b := 8 + rng.Intn(20)
		s := 1 + rng.Intn(r)
		pl := randomPlacement(rng, n, r, b)
		racks := 3 + rng.Intn(2)
		topo, err := topology.Uniform(n, racks)
		if err != nil {
			t.Fatal(err)
		}
		d := 1 + rng.Intn(racks)
		k := 1 + rng.Intn(4)
		want := referenceConstrainedWorstEff(pl, topo, s, k, d)

		ex, err := ConstrainedExhaustive(pl, topo, s, k, d)
		if err != nil {
			t.Fatal(err)
		}
		bnb, err := ConstrainedWorstCase(pl, topo, s, k, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		for name, res := range map[string]DomainResult{"ConstrainedExhaustive": ex, "ConstrainedWorstCase": bnb} {
			if res.Failed != want || !res.Exact {
				t.Errorf("trial %d (n=%d racks=%d s=%d k=%d d=%d): %s = {failed %d, exact %v}, reference %d",
					trial, n, racks, s, k, d, name, res.Failed, res.Exact, want)
			}
		}
		for _, workers := range workerCounts {
			par, err := ConstrainedWorstCasePar(pl, topo, s, k, d, 0, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Failed != want || !par.Exact {
				t.Errorf("trial %d: ConstrainedWorstCasePar(%d workers) = {failed %d, exact %v}, reference %d",
					trial, workers, par.Failed, par.Exact, want)
			}
			if len(par.Domains) > d {
				t.Errorf("trial %d: parallel witness spans %d domains, budget %d", trial, len(par.Domains), d)
			}
			if f := pl.FailedObjects(combin.NewBitsetFrom(n, par.Nodes), s); f != par.Failed {
				t.Errorf("trial %d: parallel witness reproduces %d, reported %d", trial, f, par.Failed)
			}
		}
	}
}

// TestDifferentialBoundAblation pins the -bound ablation switch across
// all three attack modes: the residual-load bound returns exactly the
// static bound's result — damage (== the exhaustive reference), witness,
// exactness — while never visiting more states. Witness equality holds
// because both modes walk the same tree with the same incumbent
// evolution; residual only removes subtrees that cannot improve it.
func TestDifferentialBoundAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	staticOpts := func() SearchOpts { return SearchOpts{Bound: search.BoundStatic} }
	residOpts := func() SearchOpts { return SearchOpts{} } // zero value = residual
	var tighter int
	for trial := 0; trial < 12; trial++ {
		n := 8 + rng.Intn(6)
		r := 2 + rng.Intn(3)
		b := 10 + rng.Intn(30)
		s := 1 + rng.Intn(r)
		k := 1 + rng.Intn(n-2)
		pl := randomPlacement(rng, n, r, b)
		topo := randomTopology(rng, n)
		d := 1 + rng.Intn(topo.NumDomains())
		kc := 1 + rng.Intn(4)

		type run struct {
			name   string
			exact  int
			search func(SearchOpts) (int, []int, bool, int64)
		}
		nodeRef, err := Exhaustive(pl, s, k)
		if err != nil {
			t.Fatal(err)
		}
		domRef, err := DomainExhaustive(pl, topo, s, d)
		if err != nil {
			t.Fatal(err)
		}
		conRef, err := ConstrainedExhaustive(pl, topo, s, kc, d)
		if err != nil {
			t.Fatal(err)
		}
		asNode := func(res Result, err error) (int, []int, bool, int64) {
			if err != nil {
				t.Fatal(err)
			}
			return res.Failed, res.Nodes, res.Exact, res.Visited
		}
		asDom := func(res DomainResult, err error) (int, []int, bool, int64) {
			if err != nil {
				t.Fatal(err)
			}
			return res.Failed, res.Nodes, res.Exact, res.Visited
		}
		runs := []run{
			{"node", nodeRef.Failed,
				func(o SearchOpts) (int, []int, bool, int64) { return asNode(WorstCaseWith(pl, s, k, o)) }},
			{"domain", domRef.Failed,
				func(o SearchOpts) (int, []int, bool, int64) { return asDom(DomainWorstCaseWith(pl, topo, s, d, o)) }},
			{"constrained", conRef.Failed,
				func(o SearchOpts) (int, []int, bool, int64) { return asDom(ConstrainedWorstCaseWith(pl, topo, s, kc, d, o)) }},
		}
		for _, r := range runs {
			sFailed, sNodes, sExact, sVisited := r.search(staticOpts())
			rFailed, rNodes, rExact, rVisited := r.search(residOpts())
			if sFailed != r.exact || rFailed != r.exact {
				t.Errorf("trial %d %s: damage static=%d residual=%d exhaustive=%d",
					trial, r.name, sFailed, rFailed, r.exact)
			}
			if !sExact || !rExact {
				t.Errorf("trial %d %s: unbounded searches not exact (static %v, residual %v)",
					trial, r.name, sExact, rExact)
			}
			if !reflect.DeepEqual(sNodes, rNodes) {
				t.Errorf("trial %d %s: witness diverged: static %v, residual %v",
					trial, r.name, sNodes, rNodes)
			}
			if rVisited > sVisited {
				t.Errorf("trial %d %s: residual visited %d > static %d",
					trial, r.name, rVisited, sVisited)
			}
			if rVisited < sVisited {
				tighter++
			}
		}
	}
	if tighter == 0 {
		t.Error("residual bound never pruned deeper than static on any engine — upkeep is likely broken")
	}
}

// TestNodeDomainIsomorphism pins the unified core: on a topology of
// singleton domains (domain i = {node i}), the node-level and
// domain-level engines run the very same search, so the full results —
// damage, witness node set, exactness AND visited-state counts — must be
// byte-identical, for the exhaustive, greedy, and branch-and-bound
// drivers alike.
func TestNodeDomainIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(5)
		r := 2 + rng.Intn(3)
		b := 10 + rng.Intn(30)
		s := 1 + rng.Intn(r)
		k := 1 + rng.Intn(n-2)
		pl := randomPlacement(rng, n, r, b)
		topo, err := topology.Uniform(n, n) // singleton domains
		if err != nil {
			t.Fatal(err)
		}

		type pair struct {
			node func() (Result, error)
			dom  func() (DomainResult, error)
		}
		for name, p := range map[string]pair{
			"exhaustive": {
				node: func() (Result, error) { return Exhaustive(pl, s, k) },
				dom:  func() (DomainResult, error) { return DomainExhaustive(pl, topo, s, k) },
			},
			"greedy": {
				node: func() (Result, error) { return Greedy(pl, s, k) },
				dom:  func() (DomainResult, error) { return DomainGreedy(pl, topo, s, k) },
			},
			"worstcase": {
				node: func() (Result, error) { return WorstCase(pl, s, k, 0) },
				dom:  func() (DomainResult, error) { return DomainWorstCase(pl, topo, s, k, 0) },
			},
		} {
			nres, err := p.node()
			if err != nil {
				t.Fatal(err)
			}
			dres, err := p.dom()
			if err != nil {
				t.Fatal(err)
			}
			if nres.Failed != dres.Failed || nres.Exact != dres.Exact || nres.Visited != dres.Visited {
				t.Errorf("trial %d %s: node {failed %d exact %v visited %d} != domain {failed %d exact %v visited %d}",
					trial, name, nres.Failed, nres.Exact, nres.Visited,
					dres.Failed, dres.Exact, dres.Visited)
			}
			if !reflect.DeepEqual(nres.Nodes, dres.Nodes) {
				t.Errorf("trial %d %s: node witness %v != domain witness %v",
					trial, name, nres.Nodes, dres.Nodes)
			}
		}
	}
}

// TestBudgetFrontierParity is the regression test for the budget
// accounting the unified core fixed: one budget semantics (each
// branch-and-bound state consumes one unit; greedy seeding is free)
// shared by the node- and domain-level engines. On singleton domains a
// given budget must exhaust at exactly the same frontier for both —
// same incumbent damage, same visited count (== the budget), and
// Exact = false on both sides.
func TestBudgetFrontierParity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	pl := randomPlacement(rng, 20, 3, 150)
	topo, err := topology.Uniform(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	const s, k = 2, 5
	full, err := WorstCase(pl, s, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Visited < 100 {
		t.Fatalf("instance too small to pin a frontier: %d states", full.Visited)
	}
	for _, budget := range []int64{1, 10, full.Visited / 2} {
		nres, err := WorstCase(pl, s, k, budget)
		if err != nil {
			t.Fatal(err)
		}
		dres, err := DomainWorstCase(pl, topo, s, k, budget)
		if err != nil {
			t.Fatal(err)
		}
		if nres.Exact || dres.Exact {
			t.Errorf("budget %d: exactness claimed (node %v, domain %v)", budget, nres.Exact, dres.Exact)
		}
		if nres.Visited != budget || dres.Visited != budget {
			t.Errorf("budget %d: visited node %d, domain %d — one state per budget unit on both levels",
				budget, nres.Visited, dres.Visited)
		}
		if nres.Failed != dres.Failed {
			t.Errorf("budget %d: node incumbent %d != domain incumbent %d — frontiers diverged",
				budget, nres.Failed, dres.Failed)
		}
	}
	// And the unbudgeted runs agree state-for-state.
	dfull, err := DomainWorstCase(pl, topo, s, k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dfull.Visited != full.Visited || dfull.Failed != full.Failed {
		t.Errorf("exact runs diverge: node {failed %d, visited %d}, domain {failed %d, visited %d}",
			full.Failed, full.Visited, dfull.Failed, dfull.Visited)
	}
}
