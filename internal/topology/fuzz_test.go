package topology

import (
	"testing"
)

// FuzzParseSpec feeds arbitrary specs through the parser; whatever it
// accepts must validate, render a canonical Spec, and survive a second
// parse with the canonical form, the depth, and the per-level
// node→domain maps all unchanged.
func FuzzParseSpec(f *testing.F) {
	f.Add(13, "rack0:0-3;rack1:4-6;rack2:7-9;rack3:10-12")
	f.Add(7, "rack0:0-2;rack1:3,4;rack2:5-6")
	f.Add(4, "a@east:0,1;b@west:2,3")
	f.Add(6, "a:0,2,4;b:1,3,5")
	f.Add(1, "solo:0")
	f.Add(3, "a:0;b:1;c:2")
	// Depth-3 region→zone→rack seeds (one uniform, one ragged with
	// non-contiguous nodes), plus a depth-4 tier.
	f.Add(12, "g0z0r0@g0z0@region0:0-2;g0z0r1@g0z0@region0:3-5;g1z0r0@g1z0@region1:6-8;g1z0r1@g1z0@region1:9-11")
	f.Add(8, "r0@za@east:0,2;r1@za@east:1,3;r2@zb@west:4-6;r3@zc@west:7")
	f.Add(4, "a@b@c@d:0-3")
	// Weighted / capped seeds: *w node weights, cap=N on leaf and
	// interior domains, weight-broken ranges, and a depth-3 mix.
	f.Add(10, "r0 cap=3@za cap=5:0*2,1-3;r1@za cap=5:4-6;r2@zb:7*4,8-9")
	f.Add(6, "hot:0*7,1;cold:2-5")
	f.Add(8, "a cap=4:0-3*2;b:4-7")
	f.Add(12, "r0 cap=2@z0 cap=5@east cap=9:0-2;r1@z0 cap=5@east cap=9:3-5;r2@z1@west:6-8*3;r3@z1@west:9-11")
	f.Fuzz(func(t *testing.T, n int, spec string) {
		if n < 1 || n > 256 || len(spec) > 4096 {
			return
		}
		topo, err := ParseSpec(n, spec)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails validation: %v", spec, err)
		}
		canon := topo.Spec()
		back, err := ParseSpec(n, canon)
		if err != nil {
			t.Fatalf("canonical spec %q does not re-parse: %v", canon, err)
		}
		if got := back.Spec(); got != canon {
			t.Fatalf("canonical spec not a fixed point:\n  first:  %s\n  second: %s", canon, got)
		}
		if back.Levels() != topo.Levels() {
			t.Fatalf("spec %q: depth changed %d -> %d across the round trip", spec, topo.Levels(), back.Levels())
		}
		for level := range topo.Tree {
			for di := range topo.Tree[level] {
				if a, b := topo.Tree[level][di].Cap, back.Tree[level][di].Cap; a != b {
					t.Fatalf("spec %q: level %d domain %d cap %d -> %d across the round trip", spec, level, di, a, b)
				}
			}
		}
		for nd := 0; nd < n; nd++ {
			if a, b := topo.Weight(nd), back.Weight(nd); a != b {
				t.Fatalf("spec %q: node %d weight %d -> %d across the round trip", spec, nd, a, b)
			}
			for level := 0; level < topo.Levels(); level++ {
				ai, err := topo.DomainOfAt(nd, level)
				if err != nil {
					t.Fatal(err)
				}
				bi, err := back.DomainOfAt(nd, level)
				if err != nil {
					t.Fatal(err)
				}
				a := topo.Tree[level][ai].Name
				b := back.Tree[level][bi].Name
				if a != b {
					t.Fatalf("spec %q: node %d in %q at level %d, reparsed in %q", spec, nd, a, level, b)
				}
			}
		}
	})
}
