package topology

import (
	"testing"
)

// FuzzParseSpec feeds arbitrary specs through the parser; whatever it
// accepts must validate, render a canonical Spec, and survive a second
// parse with both the canonical form and the node→domain map unchanged.
func FuzzParseSpec(f *testing.F) {
	f.Add(13, "rack0:0-3;rack1:4-6;rack2:7-9;rack3:10-12")
	f.Add(7, "rack0:0-2;rack1:3,4;rack2:5-6")
	f.Add(4, "a@east:0,1;b@west:2,3")
	f.Add(6, "a:0,2,4;b:1,3,5")
	f.Add(1, "solo:0")
	f.Add(3, "a:0;b:1;c:2")
	f.Fuzz(func(t *testing.T, n int, spec string) {
		if n < 1 || n > 256 || len(spec) > 4096 {
			return
		}
		topo, err := ParseSpec(n, spec)
		if err != nil {
			return
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted spec %q fails validation: %v", spec, err)
		}
		canon := topo.Spec()
		back, err := ParseSpec(n, canon)
		if err != nil {
			t.Fatalf("canonical spec %q does not re-parse: %v", canon, err)
		}
		if got := back.Spec(); got != canon {
			t.Fatalf("canonical spec not a fixed point:\n  first:  %s\n  second: %s", canon, got)
		}
		for nd := 0; nd < n; nd++ {
			a := topo.Domains[topo.DomainOf(nd)].Name
			b := back.Domains[back.DomainOf(nd)].Name
			if a != b {
				t.Fatalf("spec %q: node %d in %q, reparsed in %q", spec, nd, a, b)
			}
		}
	})
}
