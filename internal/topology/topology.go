// Package topology models hierarchical correlated failure domains for
// the n nodes of a placement as a level-indexed tree of named domains:
// region → zone → rack, any depth >= 1. The paper's adversary fails any
// k independent nodes; real outages take out whole racks, power
// domains, zones, or regions at once — the hierarchical
// correlated-failure setting of Mills, Chandrasekaran & Mittal
// (arXiv:1701.01539, arXiv:1503.02654).
//
// A Topology is a Tree of levels: Tree[0] is the coarsest level (e.g.
// regions), Tree[Levels()-1] the leaves (racks). Every leaf domain owns
// a disjoint set of nodes covering [0, n); every domain below the top
// level nests in exactly one parent on the level above, and an interior
// domain's node set is the union of its children's (derived, kept
// up to date by validation). A depth-1 tree is the flat racks-only
// topology; depth 2 is the zone→rack hierarchy.
//
// Three consumers feed off the tree:
//
//   - the domain-correlated adversary (package adversary), which fails
//     whole domains at a chosen level instead of individual nodes,
//   - the domain-aware placement post-pass (package placement), which
//     relabels a placement's abstract node ids onto physical nodes so
//     each object's replicas spread across the top level first and then
//     recursively within each subtree, and
//   - Collapse(level), which projects any level to a flat depth-1
//     topology — the one operation the level-taking engines need, so
//     the generic search core runs unchanged at every depth.
//
// Topologies are constructed with UniformTree (any depth), the
// backward-compatible Uniform / UniformHierarchy / New wrappers, or
// NewTree from explicit levels; or parsed from a compact textual spec
// (ParseSpec) in which each leaf names its ancestor chain
// ("rack@zone@region:nodes"). Spec renders the canonical form of that
// spec, and ParseSpec∘Spec is the identity on valid topologies
// (fuzz-tested at every depth).
//
// # Heterogeneity: node weights and domain capacity caps
//
// Real clusters are not uniform: nodes differ in the traffic they
// serve, and racks, zones and regions are capacity-bounded (disks,
// uplinks, power). Two optional annotations model this — the
// tree-network capacity setting of Rehn-Sonigo (QoS and bandwidth
// constraints in tree networks) on the level-indexed tree:
//
//   - Weights assigns every node an integer weight >= 1 (nil = all 1).
//     Weighted adversaries (package adversary, SearchOpts.ObjWeights)
//     score lost weight instead of lost object count; package
//     placement's ObjectWeights derives per-object weights from them.
//   - Domain.Cap bounds the total replicas a domain's subtree may hold
//     (0 = unlimited, the zero value). Caps may sit at ANY level: a
//     leaf rack, a zone, a region. Package placement's CheckCaps
//     decides whether a placement's node loads can be assigned under
//     every cap, and SpreadAcrossDomainsWith enforces them.
//
// # Spec grammar
//
// The full grammar, each leaf domain one ';'-separated entry:
//
//	entry    = domain { "@" domain } ":" nodes
//	domain   = name [ " cap=" N ]          (N >= 1 replicas, any level)
//	nodes    = token { "," token }
//	token    = id [ "-" id ] [ "*" w ]     (w >= 1, node weight)
//
// Example: "r0 cap=3@za cap=5:0*2,1-3;r1@za cap=5:4-6;r2@zb:7*4,8-9".
// A cap annotation may be repeated at later mentions of the same
// domain, but must then agree; the canonical Spec renders it at every
// mention. Unit weights and zero caps render as nothing — a topology
// without annotations round-trips through the PR-4 grammar unchanged.
package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/combin"
)

// Leaf is the sentinel level value meaning "the leaf (finest) level" —
// Levels()-1 — accepted everywhere a level is taken. It keeps callers
// depth-agnostic: the default adversary and spread behavior is leaf
// level at any depth.
const Leaf = -1

// Domain is one named failure domain at some level of a Topology: a set
// of nodes that fail together. Parent indexes the level above (-1 at
// the top level). Leaf domains list their nodes; an interior domain's
// Nodes is the derived union of its children's, (re)computed by
// validation. Cap, when positive, bounds the total replicas the
// domain's whole subtree may hold (0, the zero value, means unlimited)
// — the per-domain capacity constraint enforced by package placement's
// CheckCaps and SpreadAcrossDomainsWith.
type Domain struct {
	Name   string
	Parent int
	Nodes  []int
	Cap    int
}

// Topology maps n nodes into a level-indexed tree of named failure
// domains. Tree[0] is the coarsest level, Tree[len(Tree)-1] the leaf
// level whose domains partition the nodes. Weights, when non-nil,
// assigns each node an integer weight >= 1 (heterogeneous clusters: a
// hot node serves more traffic than a cold one); nil means every node
// weighs 1.
type Topology struct {
	N       int
	Tree    [][]Domain
	Weights []int

	domainOf []int // node -> leaf domain index
}

// NewTree builds and validates a topology from explicit levels. Every
// node in [0, n) must appear in exactly one leaf domain; every non-top
// domain's Parent must index the level above (top-level parents are
// -1); every interior domain must have at least one child; names must
// be non-empty and unique within their level. Interior Nodes need not
// be filled in — validation derives them from the leaves.
func NewTree(n int, tree [][]Domain) (*Topology, error) {
	t := &Topology{N: n, Tree: tree}
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// New builds a depth-1 (zones nil) or depth-2 topology from leaf
// domains, whose Parent fields index zones. It is the backward-
// compatible constructor predating arbitrary-depth trees.
func New(n int, domains []Domain, zones []string) (*Topology, error) {
	if len(zones) == 0 {
		return NewTree(n, [][]Domain{domains})
	}
	top := make([]Domain, len(zones))
	for i, z := range zones {
		top[i] = Domain{Name: z, Parent: -1}
	}
	return NewTree(n, [][]Domain{top, domains})
}

// index (re)builds the node→domain map and the derived interior node
// sets, validating all invariants.
func (t *Topology) index() error {
	if t.N < 1 {
		return fmt.Errorf("topology: n = %d must be positive", t.N)
	}
	if len(t.Tree) < 1 {
		return fmt.Errorf("topology: no levels")
	}
	for level, doms := range t.Tree {
		if len(doms) < 1 {
			return fmt.Errorf("topology: level %d has no domains", level)
		}
		names := make(map[string]bool, len(doms))
		for di, d := range doms {
			if d.Name == "" {
				return fmt.Errorf("topology: level %d domain %d has no name", level, di)
			}
			if strings.ContainsAny(d.Name, ":;,@-*= \t\n") {
				return fmt.Errorf("topology: domain name %q contains reserved characters", d.Name)
			}
			if d.Cap < 0 {
				return fmt.Errorf("topology: domain %q cap %d must be >= 0 (0 = unlimited)", d.Name, d.Cap)
			}
			if names[d.Name] {
				return fmt.Errorf("topology: duplicate domain name %q at level %d", d.Name, level)
			}
			names[d.Name] = true
			if level == 0 {
				if d.Parent != -1 {
					return fmt.Errorf("topology: top-level domain %q has parent %d, want -1", d.Name, d.Parent)
				}
			} else if d.Parent < 0 || d.Parent >= len(t.Tree[level-1]) {
				return fmt.Errorf("topology: domain %q parent %d out of range [0, %d) at level %d",
					d.Name, d.Parent, len(t.Tree[level-1]), level-1)
			}
		}
	}
	leaves := t.Tree[len(t.Tree)-1]
	t.domainOf = make([]int, t.N)
	for i := range t.domainOf {
		t.domainOf[i] = -1
	}
	for di, d := range leaves {
		if len(d.Nodes) == 0 {
			return fmt.Errorf("topology: domain %q is empty", d.Name)
		}
		for _, nd := range d.Nodes {
			if nd < 0 || nd >= t.N {
				return fmt.Errorf("topology: domain %q node %d out of range [0, %d)", d.Name, nd, t.N)
			}
			if t.domainOf[nd] != -1 {
				return fmt.Errorf("topology: node %d in both %q and %q",
					nd, leaves[t.domainOf[nd]].Name, d.Name)
			}
			t.domainOf[nd] = di
		}
	}
	for nd, di := range t.domainOf {
		if di == -1 {
			return fmt.Errorf("topology: node %d not in any domain", nd)
		}
	}
	if t.Weights != nil {
		if len(t.Weights) != t.N {
			return fmt.Errorf("topology: %d node weights for %d nodes", len(t.Weights), t.N)
		}
		for nd, w := range t.Weights {
			if w < 1 {
				return fmt.Errorf("topology: node %d weight %d must be >= 1", nd, w)
			}
		}
	}
	// Derive interior node sets bottom-up and insist every interior
	// domain has at least one child (childless domains are inexpressible
	// in the spec format, so they would break the round-trip).
	for level := len(t.Tree) - 2; level >= 0; level-- {
		for di := range t.Tree[level] {
			t.Tree[level][di].Nodes = nil
		}
		for _, child := range t.Tree[level+1] {
			d := &t.Tree[level][child.Parent]
			d.Nodes = append(d.Nodes, child.Nodes...)
		}
		for di, d := range t.Tree[level] {
			if len(d.Nodes) == 0 {
				return fmt.Errorf("topology: level %d domain %q has no children", level, d.Name)
			}
			sort.Ints(t.Tree[level][di].Nodes)
		}
	}
	return nil
}

// Validate re-checks every invariant (useful after manual mutation of
// the exported fields), refreshes the node→domain index, and recomputes
// the derived interior node sets.
func (t *Topology) Validate() error { return t.index() }

// levelWord is the display name given to whole levels and to the
// top-level domains of UniformTree topologies, by distance from the
// leaves: racks, then zones, then regions, then numbered tiers.
func levelWord(distFromLeaf int) string {
	switch distFromLeaf {
	case 0:
		return "rack"
	case 1:
		return "zone"
	case 2:
		return "region"
	default:
		return fmt.Sprintf("tier%d", distFromLeaf-2)
	}
}

// levelLetter is the single-letter tag used for path-encoded domain
// names below the top level ("z0r1" = rack 1 of zone 0).
func levelLetter(distFromLeaf int) string {
	switch distFromLeaf {
	case 0:
		return "r"
	case 1:
		return "z"
	case 2:
		return "g"
	default:
		return "t"
	}
}

// UniformTree builds a uniform topology of arbitrary depth: branching
// lists the fan-out per level from the top down, so UniformTree(n, 4)
// is 4 racks, UniformTree(n, 3, 2) is 3 zones of 2 racks, and
// UniformTree(n, 2, 3, 4) is 2 regions × 3 zones × 4 racks. The n
// nodes are spread over the leaf domains as evenly as possible
// (contiguous blocks, the first n mod leaves racks one node larger).
// Top-level domains are named by their level word ("rack0", "zone0",
// "region0", ...); deeper domains path-encode their ancestry with
// per-level letters ("z0r1", "g0z1r2"), which keeps depth-1 and
// depth-2 output identical to Uniform and UniformHierarchy.
func UniformTree(n int, branching ...int) (*Topology, error) {
	depth := len(branching)
	if depth == 0 {
		return nil, fmt.Errorf("topology: no branching factors")
	}
	leaves := 1
	for level, b := range branching {
		if b < 1 {
			return nil, fmt.Errorf("topology: branching %d at level %d must be positive", b, level)
		}
		leaves *= b
	}
	if leaves > n {
		return nil, fmt.Errorf("topology: %d leaf domains exceed n = %d nodes", leaves, n)
	}
	tree := make([][]Domain, depth)
	count := 1
	for level, b := range branching {
		count *= b
		tree[level] = make([]Domain, count)
		for i := range tree[level] {
			parent := -1
			if level > 0 {
				parent = i / b
			}
			tree[level][i] = Domain{Name: uniformName(branching, level, i), Parent: parent}
		}
	}
	next := 0
	for i := range tree[depth-1] {
		size := n / leaves
		if i < n%leaves {
			size++
		}
		nodes := make([]int, size)
		for j := range nodes {
			nodes[j] = next
			next++
		}
		tree[depth-1][i].Nodes = nodes
	}
	return NewTree(n, tree)
}

// uniformName names domain i of the given level in a UniformTree:
// "<levelword><i>" at the top, path-encoded letters below.
func uniformName(branching []int, level, i int) string {
	depth := len(branching)
	if level == 0 {
		return fmt.Sprintf("%s%d", levelWord(depth-1), i)
	}
	// Decompose i into per-level ordinals along the path from the top.
	ordinals := make([]int, level+1)
	for l := level; l >= 0; l-- {
		ordinals[l] = i % branching[l]
		i /= branching[l]
	}
	var sb strings.Builder
	for l, ord := range ordinals {
		sb.WriteString(levelLetter(depth - 1 - l))
		sb.WriteString(strconv.Itoa(ord))
	}
	return sb.String()
}

// Uniform spreads n nodes over numDomains racks named rack0..rackD-1 as
// evenly as possible: contiguous blocks, the first n mod numDomains racks
// one node larger.
func Uniform(n, numDomains int) (*Topology, error) {
	if numDomains < 1 || numDomains > n {
		return nil, fmt.Errorf("topology: %d domains must satisfy 1 <= domains <= n = %d", numDomains, n)
	}
	return UniformTree(n, numDomains)
}

// UniformHierarchy builds a two-level topology: numZones zones named
// zone0.., each holding racksPerZone racks, with the n nodes spread over
// the zones·racks grid as evenly as possible. Rack names are zI.rJ-style
// ("z0r0", "z0r1", ...).
func UniformHierarchy(n, numZones, racksPerZone int) (*Topology, error) {
	if numZones < 1 || racksPerZone < 1 {
		return nil, fmt.Errorf("topology: zones = %d, racks/zone = %d must be positive", numZones, racksPerZone)
	}
	if racks := numZones * racksPerZone; racks > n {
		return nil, fmt.Errorf("topology: %d racks exceed n = %d nodes", racks, n)
	}
	return UniformTree(n, numZones, racksPerZone)
}

// Levels returns the depth of the hierarchy: 1 for flat racks, 2 for
// zone→rack, 3 for region→zone→rack, and so on.
func (t *Topology) Levels() int { return len(t.Tree) }

// ResolveLevel maps a caller-facing level (0 = top, Levels()-1 = leaf,
// or the Leaf sentinel) to a concrete index, validating range.
func (t *Topology) ResolveLevel(level int) (int, error) {
	if level == Leaf {
		return t.Levels() - 1, nil
	}
	if level < 0 || level >= t.Levels() {
		return 0, fmt.Errorf("topology: level %d out of range [0, %d) (or topology.Leaf)", level, t.Levels())
	}
	return level, nil
}

// LevelName returns the display word for a level by its distance from
// the leaves: the leaf level is "rack", the one above "zone", then
// "region", then numbered tiers. Invalid levels return "level?".
func (t *Topology) LevelName(level int) string {
	l, err := t.ResolveLevel(level)
	if err != nil {
		return "level?"
	}
	return levelWord(t.Levels() - 1 - l)
}

// Leaves returns the leaf (finest) level's domains — the partition of
// the nodes the flat consumers (DomainOf, FailedSet, placement's
// DomainHits) operate on.
func (t *Topology) Leaves() []Domain { return t.Tree[len(t.Tree)-1] }

// NumDomains returns the number of leaf failure domains.
func (t *Topology) NumDomains() int { return len(t.Leaves()) }

// NumDomainsAt returns the number of domains at the given level.
func (t *Topology) NumDomainsAt(level int) (int, error) {
	l, err := t.ResolveLevel(level)
	if err != nil {
		return 0, err
	}
	return len(t.Tree[l]), nil
}

// DomainOf returns the index of the leaf domain holding node nd.
func (t *Topology) DomainOf(nd int) int { return t.domainOf[nd] }

// Weight returns node nd's weight: Weights[nd], or 1 when no weights
// are set (the homogeneous default).
func (t *Topology) Weight(nd int) int {
	if t.Weights == nil {
		return 1
	}
	return t.Weights[nd]
}

// Weighted reports whether any node carries a non-unit weight; false
// means weighted damage degenerates to the plain object count.
func (t *Topology) Weighted() bool {
	for _, w := range t.Weights {
		if w != 1 {
			return true
		}
	}
	return false
}

// LevelCaps returns the per-level capacity caps in the convention
// placement.CheckCaps consumes: caps[level][di] is the replica cap of
// domain di at that level, -1 where unlimited. It returns nil when no
// domain of the tree carries a cap.
func (t *Topology) LevelCaps() [][]int {
	any := false
	caps := make([][]int, len(t.Tree))
	for level, doms := range t.Tree {
		caps[level] = make([]int, len(doms))
		for di, d := range doms {
			if d.Cap > 0 {
				caps[level][di] = d.Cap
				any = true
			} else {
				caps[level][di] = -1
			}
		}
	}
	if !any {
		return nil
	}
	return caps
}

// DomainOfAt returns the index of the domain holding node nd at the
// given level, chasing parent pointers up from the leaf.
func (t *Topology) DomainOfAt(nd, level int) (int, error) {
	l, err := t.ResolveLevel(level)
	if err != nil {
		return 0, err
	}
	di := t.domainOf[nd]
	for cur := t.Levels() - 1; cur > l; cur-- {
		di = t.Tree[cur][di].Parent
	}
	return di, nil
}

// FailedSet returns the node bitset covered by the given leaf domain
// indices — the node-level footprint of a correlated domain failure.
func (t *Topology) FailedSet(domains []int) *combin.Bitset {
	leaves := t.Leaves()
	bs := combin.NewBitset(t.N)
	for _, di := range domains {
		for _, nd := range leaves[di].Nodes {
			bs.Set(nd)
		}
	}
	return bs
}

// DomainNames maps leaf domain indices to their names.
func (t *Topology) DomainNames(domains []int) []string {
	return t.DomainNamesAt(Leaf, domains)
}

// DomainNamesAt maps domain indices at the given level to their names
// (an invalid level yields nil — pair it with ResolveLevel when the
// level is untrusted).
func (t *Topology) DomainNamesAt(level int, domains []int) []string {
	l, err := t.ResolveLevel(level)
	if err != nil {
		return nil
	}
	names := make([]string, len(domains))
	for i, di := range domains {
		names[i] = t.Tree[l][di].Name
	}
	return names
}

// Collapse projects the given level to a flat depth-1 topology: one
// leaf domain per level-l domain, in level order, covering the union of
// its subtree's nodes. Collapse is how the level-taking adversary
// engines and the hierarchical spreading pass reduce any depth to the
// flat instance the generic search core runs on; Collapse(Leaf) is the
// flat projection of the leaves themselves.
func (t *Topology) Collapse(level int) (*Topology, error) {
	l, err := t.ResolveLevel(level)
	if err != nil {
		return nil, err
	}
	domains := make([]Domain, len(t.Tree[l]))
	for i, d := range t.Tree[l] {
		domains[i] = Domain{Name: d.Name, Parent: -1, Nodes: append([]int(nil), d.Nodes...), Cap: d.Cap}
	}
	flat, err := NewTree(t.N, [][]Domain{domains})
	if err != nil {
		return nil, err
	}
	// Node weights survive the projection (weighted adversaries run on
	// collapsed views); caps above or below level l do not — a flat view
	// can only carry its own level's constraint.
	if t.Weights != nil {
		flat.Weights = append([]int(nil), t.Weights...)
	}
	return flat, nil
}

// ZoneLevel collapses a hierarchical topology to the level above the
// racks (its zones, in a depth-2 tree). It errors on an already-flat
// topology. Deprecated in favor of Collapse, which reaches any level.
func (t *Topology) ZoneLevel() (*Topology, error) {
	if t.Levels() < 2 {
		return nil, fmt.Errorf("topology: no zones to collapse to")
	}
	return t.Collapse(t.Levels() - 2)
}

// MaxDomainSize returns the node count of the largest leaf domain.
func (t *Topology) MaxDomainSize() int {
	maxSize := 0
	for _, d := range t.Leaves() {
		if len(d.Nodes) > maxSize {
			maxSize = len(d.Nodes)
		}
	}
	return maxSize
}

// Spec renders the canonical textual form parsed by ParseSpec: leaf
// domains separated by ';', each "name:nodes" with the name extended by
// its '@'-separated ancestor chain ("rack@zone@region") below depth 1,
// and nodes as comma-separated values with a-b ranges over sorted node
// ids. Example: "z0r0@zone0:0-3;z0r1@zone0:4-6;z1r0@zone1:7-9".
// Capped domains render " cap=N" after their name at every mention;
// nodes with non-unit weight render a "*w" suffix, with ranges breaking
// wherever the weight changes.
func (t *Topology) Spec() string {
	var sb strings.Builder
	leafLevel := t.Levels() - 1
	writeName := func(d Domain) {
		sb.WriteString(d.Name)
		if d.Cap > 0 {
			sb.WriteString(" cap=")
			sb.WriteString(strconv.Itoa(d.Cap))
		}
	}
	for i, d := range t.Leaves() {
		if i > 0 {
			sb.WriteByte(';')
		}
		writeName(d)
		for level, p := leafLevel-1, d.Parent; level >= 0; level-- {
			sb.WriteByte('@')
			writeName(t.Tree[level][p])
			p = t.Tree[level][p].Parent
		}
		sb.WriteByte(':')
		nodes := append([]int(nil), d.Nodes...)
		sort.Ints(nodes)
		for j := 0; j < len(nodes); {
			if j > 0 {
				sb.WriteByte(',')
			}
			// A range extends while ids stay consecutive AND weights equal:
			// the weight suffix annotates the whole token.
			w := t.Weight(nodes[j])
			k := j
			for k+1 < len(nodes) && nodes[k+1] == nodes[k]+1 && t.Weight(nodes[k+1]) == w {
				k++
			}
			sb.WriteString(strconv.Itoa(nodes[j]))
			if k > j {
				sb.WriteByte('-')
				sb.WriteString(strconv.Itoa(nodes[k]))
			}
			if w != 1 {
				sb.WriteByte('*')
				sb.WriteString(strconv.Itoa(w))
			}
			j = k + 1
		}
	}
	return sb.String()
}

// parseDomainSeg splits one '@'-chain segment into its domain name and
// optional annotations: space-separated "cap=N" tokens after the name
// (N >= 1; the only annotation currently defined).
func parseDomainSeg(seg string) (name string, cap int, err error) {
	fields := strings.Fields(seg)
	if len(fields) == 0 {
		return "", 0, fmt.Errorf("topology: empty domain name in %q", seg)
	}
	name = fields[0]
	for _, f := range fields[1:] {
		val, ok := strings.CutPrefix(f, "cap=")
		if !ok {
			return "", 0, fmt.Errorf("topology: unknown annotation %q on domain %q", f, name)
		}
		c, cerr := strconv.Atoi(val)
		if cerr != nil || c < 1 {
			return "", 0, fmt.Errorf("topology: bad cap %q on domain %q (want a positive integer)", val, name)
		}
		if cap > 0 && cap != c {
			return "", 0, fmt.Errorf("topology: domain %q annotated with two caps", name)
		}
		cap = c
	}
	return name, cap, nil
}

// ParseSpec parses the Spec format for n nodes. Every leaf domain
// carries the same-length ancestor chain (deepest first), fixing the
// tree depth; ancestor domains are declared implicitly by first use and
// ordered by first appearance within their level, and naming an
// ancestor under two different parents is an error. Domains may carry
// "cap=N" annotations (any level; repeated mentions must agree) and
// node tokens a "*w" weight suffix — see the package doc for the full
// grammar.
func ParseSpec(n int, spec string) (*Topology, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("topology: empty spec")
	}
	var (
		tree     [][]Domain
		levelIdx []map[string]int
		depth    = -1
		weights  []int
	)
	for _, part := range strings.Split(spec, ";") {
		head, nodesPart, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("topology: domain %q missing ':'", part)
		}
		chain := strings.Split(head, "@")
		name, leafCap, err := parseDomainSeg(chain[0])
		if err != nil {
			return nil, err
		}
		if depth == -1 {
			depth = len(chain)
			tree = make([][]Domain, depth)
			levelIdx = make([]map[string]int, depth)
			for l := range levelIdx {
				levelIdx[l] = make(map[string]int)
			}
		} else if len(chain) != depth {
			return nil, fmt.Errorf("topology: domain %q names %d levels, others name %d",
				name, len(chain), depth)
		}
		// Resolve the ancestor chain top-down: chain[depth-1] is the
		// top-level name, chain[1] the leaf's parent.
		parent := -1
		for level := 0; level < depth-1; level++ {
			anc, ancCap, err := parseDomainSeg(chain[depth-1-level])
			if err != nil {
				return nil, err
			}
			idx, seen := levelIdx[level][anc]
			if !seen {
				idx = len(tree[level])
				tree[level] = append(tree[level], Domain{Name: anc, Parent: parent, Cap: ancCap})
				levelIdx[level][anc] = idx
			} else {
				if tree[level][idx].Parent != parent {
					return nil, fmt.Errorf("topology: domain %q appears under two parents at level %d", anc, level)
				}
				if ancCap > 0 {
					if c := tree[level][idx].Cap; c > 0 && c != ancCap {
						return nil, fmt.Errorf("topology: domain %q annotated with caps %d and %d", anc, c, ancCap)
					}
					tree[level][idx].Cap = ancCap
				}
			}
			parent = idx
		}
		var nodes []int
		for _, tok := range strings.Split(nodesPart, ",") {
			body, wstr, hasW := strings.Cut(tok, "*")
			w := 1
			if hasW {
				if w, err = strconv.Atoi(wstr); err != nil || w < 1 {
					return nil, fmt.Errorf("topology: bad weight %q in domain %q", tok, name)
				}
			}
			lo, hi, isRange := strings.Cut(body, "-")
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("topology: bad node %q in domain %q", tok, name)
			}
			b := a
			if isRange {
				if b, err = strconv.Atoi(hi); err != nil {
					return nil, fmt.Errorf("topology: bad range %q in domain %q", tok, name)
				}
			}
			if b < a {
				return nil, fmt.Errorf("topology: descending range %q in domain %q", tok, name)
			}
			if b-a >= n {
				return nil, fmt.Errorf("topology: range %q wider than n = %d", tok, n)
			}
			for v := a; v <= b; v++ {
				nodes = append(nodes, v)
				if w != 1 && v >= 0 && v < n {
					// Out-of-range ids fall through to NewTree's validation.
					if weights == nil {
						weights = make([]int, n)
						for i := range weights {
							weights[i] = 1
						}
					}
					weights[v] = w
				}
			}
		}
		tree[depth-1] = append(tree[depth-1], Domain{Name: name, Parent: parent, Nodes: nodes, Cap: leafCap})
	}
	topo, err := NewTree(n, tree)
	if err != nil {
		return nil, err
	}
	if weights != nil {
		topo.Weights = weights
		if err := topo.Validate(); err != nil {
			return nil, err
		}
	}
	return topo, nil
}
