// Package topology models correlated failure domains for the n nodes of
// a placement: racks (flat) or a two-level zone→rack hierarchy. The
// paper's adversary fails any k independent nodes; real outages take out
// whole racks, power domains, or zones at once — the hierarchical
// correlated-failure setting of Mills, Chandrasekaran & Mittal
// (arXiv:1701.01539, arXiv:1503.02654). A Topology assigns every node to
// exactly one domain and feeds two consumers:
//
//   - the domain-correlated adversary (package adversary), which fails
//     whole domains instead of individual nodes, and
//   - the domain-aware placement post-pass (package placement), which
//     relabels a placement's abstract node ids onto physical nodes so
//     each object's replicas land in as many distinct domains as
//     possible.
//
// Topologies are constructed with Uniform / UniformHierarchy / New, or
// parsed from a compact textual spec (ParseSpec); Spec renders the
// canonical form of that spec, and ParseSpec∘Spec is the identity on
// valid topologies (fuzz-tested).
package topology

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/combin"
)

// Domain is one named failure domain (a rack): a set of node ids that
// fail together. Zone indexes Topology.Zones, or is -1 in a flat
// topology.
type Domain struct {
	Name  string
	Zone  int
	Nodes []int
}

// Topology maps n nodes into named failure domains. Zones is empty for a
// flat (racks-only) topology; otherwise every domain's Zone field indexes
// it, giving a two-level zone→rack hierarchy.
type Topology struct {
	N       int
	Zones   []string
	Domains []Domain

	domainOf []int // node -> index into Domains
}

// New builds and validates a topology from explicit domains. Every node
// in [0, n) must appear in exactly one domain; domain names must be
// non-empty and unique; zone indices must all be valid (or all -1 with
// no zones declared).
func New(n int, domains []Domain, zones []string) (*Topology, error) {
	t := &Topology{N: n, Zones: zones, Domains: domains}
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// index (re)builds the node→domain map, validating all invariants.
func (t *Topology) index() error {
	if t.N < 1 {
		return fmt.Errorf("topology: n = %d must be positive", t.N)
	}
	if len(t.Domains) < 1 {
		return fmt.Errorf("topology: no domains")
	}
	names := make(map[string]bool, len(t.Domains))
	t.domainOf = make([]int, t.N)
	for i := range t.domainOf {
		t.domainOf[i] = -1
	}
	for di, d := range t.Domains {
		if d.Name == "" {
			return fmt.Errorf("topology: domain %d has no name", di)
		}
		if strings.ContainsAny(d.Name, ":;,@- \t\n") {
			return fmt.Errorf("topology: domain name %q contains reserved characters", d.Name)
		}
		if names[d.Name] {
			return fmt.Errorf("topology: duplicate domain name %q", d.Name)
		}
		names[d.Name] = true
		if len(t.Zones) == 0 {
			if d.Zone != -1 {
				return fmt.Errorf("topology: domain %q has zone %d but no zones declared", d.Name, d.Zone)
			}
		} else if d.Zone < 0 || d.Zone >= len(t.Zones) {
			return fmt.Errorf("topology: domain %q zone %d out of range [0, %d)", d.Name, d.Zone, len(t.Zones))
		}
		if len(d.Nodes) == 0 {
			return fmt.Errorf("topology: domain %q is empty", d.Name)
		}
		for _, nd := range d.Nodes {
			if nd < 0 || nd >= t.N {
				return fmt.Errorf("topology: domain %q node %d out of range [0, %d)", d.Name, nd, t.N)
			}
			if t.domainOf[nd] != -1 {
				return fmt.Errorf("topology: node %d in both %q and %q",
					nd, t.Domains[t.domainOf[nd]].Name, d.Name)
			}
			t.domainOf[nd] = di
		}
	}
	zoneNames := make(map[string]bool, len(t.Zones))
	zoneUsed := make([]bool, len(t.Zones))
	for zi, z := range t.Zones {
		if z == "" {
			return fmt.Errorf("topology: zone %d has no name", zi)
		}
		if strings.ContainsAny(z, ":;,@- \t\n") {
			return fmt.Errorf("topology: zone name %q contains reserved characters", z)
		}
		if zoneNames[z] {
			return fmt.Errorf("topology: duplicate zone name %q", z)
		}
		zoneNames[z] = true
	}
	for _, d := range t.Domains {
		if d.Zone >= 0 {
			zoneUsed[d.Zone] = true
		}
	}
	for zi, used := range zoneUsed {
		if !used {
			return fmt.Errorf("topology: zone %q has no domains", t.Zones[zi])
		}
	}
	for nd, di := range t.domainOf {
		if di == -1 {
			return fmt.Errorf("topology: node %d not in any domain", nd)
		}
	}
	return nil
}

// Validate re-checks every invariant (useful after manual mutation of the
// exported fields) and refreshes the node→domain index.
func (t *Topology) Validate() error { return t.index() }

// Uniform spreads n nodes over numDomains racks named rack0..rackD-1 as
// evenly as possible: contiguous blocks, the first n mod numDomains racks
// one node larger.
func Uniform(n, numDomains int) (*Topology, error) {
	if numDomains < 1 || numDomains > n {
		return nil, fmt.Errorf("topology: %d domains must satisfy 1 <= domains <= n = %d", numDomains, n)
	}
	domains := make([]Domain, numDomains)
	next := 0
	for i := range domains {
		size := n / numDomains
		if i < n%numDomains {
			size++
		}
		nodes := make([]int, size)
		for j := range nodes {
			nodes[j] = next
			next++
		}
		domains[i] = Domain{Name: fmt.Sprintf("rack%d", i), Zone: -1, Nodes: nodes}
	}
	return New(n, domains, nil)
}

// UniformHierarchy builds a two-level topology: numZones zones named
// zone0.., each holding racksPerZone racks, with the n nodes spread over
// the zones·racks grid as evenly as possible. Rack names are zI.rJ-style
// ("z0r0", "z0r1", ...).
func UniformHierarchy(n, numZones, racksPerZone int) (*Topology, error) {
	if numZones < 1 || racksPerZone < 1 {
		return nil, fmt.Errorf("topology: zones = %d, racks/zone = %d must be positive", numZones, racksPerZone)
	}
	racks := numZones * racksPerZone
	if racks > n {
		return nil, fmt.Errorf("topology: %d racks exceed n = %d nodes", racks, n)
	}
	zones := make([]string, numZones)
	for z := range zones {
		zones[z] = fmt.Sprintf("zone%d", z)
	}
	domains := make([]Domain, racks)
	next := 0
	for i := range domains {
		size := n / racks
		if i < n%racks {
			size++
		}
		nodes := make([]int, size)
		for j := range nodes {
			nodes[j] = next
			next++
		}
		z := i / racksPerZone
		domains[i] = Domain{Name: fmt.Sprintf("z%dr%d", z, i%racksPerZone), Zone: z, Nodes: nodes}
	}
	return New(n, domains, zones)
}

// NumDomains returns the number of failure domains.
func (t *Topology) NumDomains() int { return len(t.Domains) }

// DomainOf returns the index of the domain holding node nd.
func (t *Topology) DomainOf(nd int) int { return t.domainOf[nd] }

// FailedSet returns the node bitset covered by the given domain indices —
// the node-level footprint of a correlated domain failure.
func (t *Topology) FailedSet(domains []int) *combin.Bitset {
	bs := combin.NewBitset(t.N)
	for _, di := range domains {
		for _, nd := range t.Domains[di].Nodes {
			bs.Set(nd)
		}
	}
	return bs
}

// DomainNames maps domain indices to their names.
func (t *Topology) DomainNames(domains []int) []string {
	names := make([]string, len(domains))
	for i, di := range domains {
		names[i] = t.Domains[di].Name
	}
	return names
}

// ZoneLevel collapses a hierarchical topology to its zones: the returned
// flat topology has one domain per zone, covering the union of the zone's
// racks. It errors on an already-flat topology.
func (t *Topology) ZoneLevel() (*Topology, error) {
	if len(t.Zones) == 0 {
		return nil, fmt.Errorf("topology: no zones to collapse to")
	}
	domains := make([]Domain, len(t.Zones))
	for z, name := range t.Zones {
		domains[z] = Domain{Name: name, Zone: -1}
	}
	for _, d := range t.Domains {
		domains[d.Zone].Nodes = append(domains[d.Zone].Nodes, d.Nodes...)
	}
	return New(t.N, domains, nil)
}

// MaxDomainSize returns the node count of the largest domain.
func (t *Topology) MaxDomainSize() int {
	maxSize := 0
	for _, d := range t.Domains {
		if len(d.Nodes) > maxSize {
			maxSize = len(d.Nodes)
		}
	}
	return maxSize
}

// Spec renders the canonical textual form parsed by ParseSpec:
// domains separated by ';', each "name:nodes" (flat) or "name@zone:nodes"
// (hierarchical), with nodes as comma-separated values and a-b ranges
// over sorted node ids. Example: "rack0:0-3;rack1:4-6".
func (t *Topology) Spec() string {
	var sb strings.Builder
	for i, d := range t.Domains {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(d.Name)
		if d.Zone >= 0 {
			sb.WriteByte('@')
			sb.WriteString(t.Zones[d.Zone])
		}
		sb.WriteByte(':')
		nodes := append([]int(nil), d.Nodes...)
		sort.Ints(nodes)
		for j := 0; j < len(nodes); {
			if j > 0 {
				sb.WriteByte(',')
			}
			k := j
			for k+1 < len(nodes) && nodes[k+1] == nodes[k]+1 {
				k++
			}
			sb.WriteString(strconv.Itoa(nodes[j]))
			if k > j {
				sb.WriteByte('-')
				sb.WriteString(strconv.Itoa(nodes[k]))
			}
			j = k + 1
		}
	}
	return sb.String()
}

// ParseSpec parses the Spec format for n nodes. Zones are declared
// implicitly by first use and ordered by first appearance; a spec must
// name zones on either all or none of its domains.
func ParseSpec(n int, spec string) (*Topology, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("topology: empty spec")
	}
	var (
		domains []Domain
		zones   []string
		zoneIdx = make(map[string]int)
		sawZone bool
		sawFlat bool
	)
	for _, part := range strings.Split(spec, ";") {
		head, nodesPart, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("topology: domain %q missing ':'", part)
		}
		name, zoneName, hasZone := strings.Cut(head, "@")
		zone := -1
		if hasZone {
			sawZone = true
			zi, seen := zoneIdx[zoneName]
			if !seen {
				zi = len(zones)
				zones = append(zones, zoneName)
				zoneIdx[zoneName] = zi
			}
			zone = zi
		} else {
			sawFlat = true
		}
		var nodes []int
		for _, tok := range strings.Split(nodesPart, ",") {
			lo, hi, isRange := strings.Cut(tok, "-")
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("topology: bad node %q in domain %q", tok, name)
			}
			b := a
			if isRange {
				if b, err = strconv.Atoi(hi); err != nil {
					return nil, fmt.Errorf("topology: bad range %q in domain %q", tok, name)
				}
			}
			if b < a {
				return nil, fmt.Errorf("topology: descending range %q in domain %q", tok, name)
			}
			if b-a >= n {
				return nil, fmt.Errorf("topology: range %q wider than n = %d", tok, n)
			}
			for v := a; v <= b; v++ {
				nodes = append(nodes, v)
			}
		}
		domains = append(domains, Domain{Name: name, Zone: zone, Nodes: nodes})
	}
	if sawZone && sawFlat {
		return nil, fmt.Errorf("topology: mix of zoned and zoneless domains")
	}
	return New(n, domains, zones)
}
