package topology

import (
	"strings"
	"testing"
)

func TestUniform(t *testing.T) {
	topo, err := Uniform(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Levels() != 1 {
		t.Fatalf("Levels = %d, want 1", topo.Levels())
	}
	if topo.NumDomains() != 4 {
		t.Fatalf("NumDomains = %d, want 4", topo.NumDomains())
	}
	sizes := []int{4, 3, 3, 3}
	total := 0
	for i, d := range topo.Leaves() {
		if len(d.Nodes) != sizes[i] {
			t.Errorf("domain %d has %d nodes, want %d", i, len(d.Nodes), sizes[i])
		}
		total += len(d.Nodes)
	}
	if total != 13 {
		t.Errorf("domains cover %d nodes, want 13", total)
	}
	for nd := 0; nd < 13; nd++ {
		di := topo.DomainOf(nd)
		found := false
		for _, v := range topo.Leaves()[di].Nodes {
			if v == nd {
				found = true
			}
		}
		if !found {
			t.Errorf("DomainOf(%d) = %d, but domain does not list the node", nd, di)
		}
	}
	if topo.MaxDomainSize() != 4 {
		t.Errorf("MaxDomainSize = %d, want 4", topo.MaxDomainSize())
	}
}

func TestUniformErrors(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 0}, {10, 11}, {0, 1}} {
		if _, err := Uniform(tc.n, tc.d); err == nil {
			t.Errorf("Uniform(%d, %d) accepted", tc.n, tc.d)
		}
	}
}

func TestUniformHierarchy(t *testing.T) {
	topo, err := UniformHierarchy(24, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	zones, err := topo.NumDomainsAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Levels() != 2 || zones != 3 || topo.NumDomains() != 6 {
		t.Fatalf("got %d levels, %d zones, %d domains; want 2, 3, 6", topo.Levels(), zones, topo.NumDomains())
	}
	for i, d := range topo.Leaves() {
		if d.Parent != i/2 {
			t.Errorf("domain %d in zone %d, want %d", i, d.Parent, i/2)
		}
		if len(d.Nodes) != 4 {
			t.Errorf("domain %d has %d nodes, want 4", i, len(d.Nodes))
		}
	}
	zl, err := topo.ZoneLevel()
	if err != nil {
		t.Fatal(err)
	}
	if zl.Levels() != 1 || zl.NumDomains() != 3 {
		t.Fatalf("zone level has %d levels, %d domains, want 1, 3", zl.Levels(), zl.NumDomains())
	}
	for _, d := range zl.Leaves() {
		if len(d.Nodes) != 8 {
			t.Errorf("zone %q has %d nodes, want 8", d.Name, len(d.Nodes))
		}
	}
	if _, err := zl.ZoneLevel(); err == nil {
		t.Error("ZoneLevel on a flat topology accepted")
	}
}

// TestUniformTreeBackwardCompatible pins the satellite constructors'
// contract: Uniform and UniformHierarchy are UniformTree at depths 1
// and 2, spec for spec.
func TestUniformTreeBackwardCompatible(t *testing.T) {
	flat, err := Uniform(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	tflat, err := UniformTree(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if flat.Spec() != tflat.Spec() {
		t.Errorf("UniformTree(13, 4) spec %q != Uniform %q", tflat.Spec(), flat.Spec())
	}
	hier, err := UniformHierarchy(24, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	thier, err := UniformTree(24, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if hier.Spec() != thier.Spec() {
		t.Errorf("UniformTree(24, 3, 2) spec %q != UniformHierarchy %q", thier.Spec(), hier.Spec())
	}
}

func TestUniformTreeDepth3(t *testing.T) {
	topo, err := UniformTree(24, 2, 3, 2) // 2 regions x 3 zones x 2 racks
	if err != nil {
		t.Fatal(err)
	}
	if topo.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", topo.Levels())
	}
	for level, want := range []int{2, 6, 12} {
		got, err := topo.NumDomainsAt(level)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("NumDomainsAt(%d) = %d, want %d", level, got, want)
		}
	}
	if name := topo.Tree[0][1].Name; name != "region1" {
		t.Errorf("region name %q, want region1", name)
	}
	if name := topo.Tree[1][4].Name; name != "g1z1" {
		t.Errorf("zone name %q, want g1z1", name)
	}
	if name := topo.Leaves()[5].Name; name != "g0z2r1" {
		t.Errorf("rack name %q, want g0z2r1", name)
	}
	// Every rack nests in its zone, every zone in its region.
	for i, d := range topo.Leaves() {
		if d.Parent != i/2 {
			t.Errorf("rack %d parent %d, want %d", i, d.Parent, i/2)
		}
	}
	for i, d := range topo.Tree[1] {
		if d.Parent != i/3 {
			t.Errorf("zone %d parent %d, want %d", i, d.Parent, i/3)
		}
	}
	// Node 13 lives in rack 6 (2 nodes per rack), zone 3, region 1.
	if di := topo.DomainOf(13); di != 6 {
		t.Errorf("DomainOf(13) = %d, want 6", di)
	}
	for level, want := range []int{1, 3, 6} {
		got, err := topo.DomainOfAt(13, level)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("DomainOfAt(13, %d) = %d, want %d", level, got, want)
		}
	}
	for level, want := range []string{"region", "zone", "rack"} {
		if got := topo.LevelName(level); got != want {
			t.Errorf("LevelName(%d) = %q, want %q", level, got, want)
		}
	}
	if got := topo.LevelName(Leaf); got != "rack" {
		t.Errorf("LevelName(Leaf) = %q, want rack", got)
	}
}

func TestCollapse(t *testing.T) {
	topo, err := UniformTree(24, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for level, wantDomains := range []int{2, 6, 12} {
		flat, err := topo.Collapse(level)
		if err != nil {
			t.Fatal(err)
		}
		if flat.Levels() != 1 || flat.NumDomains() != wantDomains {
			t.Errorf("Collapse(%d): %d levels, %d domains; want 1, %d",
				level, flat.Levels(), flat.NumDomains(), wantDomains)
		}
		// Collapsed domains keep level order and names, and every node
		// lands in the domain DomainOfAt names.
		for nd := 0; nd < 24; nd++ {
			want, err := topo.DomainOfAt(nd, level)
			if err != nil {
				t.Fatal(err)
			}
			if got := flat.DomainOf(nd); got != want {
				t.Errorf("Collapse(%d): node %d in domain %d, want %d", level, nd, got, want)
			}
		}
		for i, d := range flat.Leaves() {
			if d.Name != topo.Tree[level][i].Name {
				t.Errorf("Collapse(%d) domain %d named %q, want %q", level, i, d.Name, topo.Tree[level][i].Name)
			}
		}
	}
	if _, err := topo.Collapse(3); err == nil {
		t.Error("Collapse(3) on a depth-3 topology accepted")
	}
	if _, err := topo.Collapse(-2); err == nil {
		t.Error("Collapse(-2) accepted")
	}
	leaf, err := topo.Collapse(Leaf)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.NumDomains() != topo.NumDomains() {
		t.Errorf("Collapse(Leaf) has %d domains, want %d", leaf.NumDomains(), topo.NumDomains())
	}
}

func TestFailedSet(t *testing.T) {
	topo, err := Uniform(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	bs := topo.FailedSet([]int{0, 3})
	want := map[int]bool{0: true, 1: true, 6: true, 7: true}
	for nd := 0; nd < 10; nd++ {
		if bs.Get(nd) != want[nd] {
			t.Errorf("FailedSet.Get(%d) = %v, want %v", nd, bs.Get(nd), want[nd])
		}
	}
	names := topo.DomainNames([]int{0, 3})
	if names[0] != "rack0" || names[1] != "rack3" {
		t.Errorf("DomainNames = %v", names)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		domains []Domain
		zones   []string
	}{
		{"uncovered node", 3, []Domain{{Name: "a", Parent: -1, Nodes: []int{0, 1}}}, nil},
		{"double booking", 2, []Domain{
			{Name: "a", Parent: -1, Nodes: []int{0, 1}},
			{Name: "b", Parent: -1, Nodes: []int{1}},
		}, nil},
		{"out of range", 2, []Domain{{Name: "a", Parent: -1, Nodes: []int{0, 2}}}, nil},
		{"duplicate names", 2, []Domain{
			{Name: "a", Parent: -1, Nodes: []int{0}},
			{Name: "a", Parent: -1, Nodes: []int{1}},
		}, nil},
		{"empty name", 1, []Domain{{Name: "", Parent: -1, Nodes: []int{0}}}, nil},
		{"reserved chars", 1, []Domain{{Name: "a:b", Parent: -1, Nodes: []int{0}}}, nil},
		{"empty domain", 1, []Domain{
			{Name: "a", Parent: -1, Nodes: []int{0}},
			{Name: "b", Parent: -1, Nodes: nil},
		}, nil},
		{"parent without zones", 1, []Domain{{Name: "a", Parent: 0, Nodes: []int{0}}}, nil},
		{"parent out of range", 1, []Domain{{Name: "a", Parent: 1, Nodes: []int{0}}}, []string{"z"}},
		{"childless zone", 1, []Domain{{Name: "a", Parent: 0, Nodes: []int{0}}}, []string{"z", "w"}},
		{"duplicate zones", 2, []Domain{
			{Name: "a", Parent: 0, Nodes: []int{0}},
			{Name: "b", Parent: 1, Nodes: []int{1}},
		}, []string{"z", "z"}},
		{"no domains", 1, nil, nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.n, tc.domains, tc.zones); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestNewTreeRejectsBadTrees(t *testing.T) {
	leaf := func(name string, parent int, nodes ...int) Domain {
		return Domain{Name: name, Parent: parent, Nodes: nodes}
	}
	cases := []struct {
		name string
		n    int
		tree [][]Domain
	}{
		{"no levels", 1, nil},
		{"empty level", 1, [][]Domain{{}}},
		{"top parent set", 2, [][]Domain{
			{{Name: "z", Parent: 0}},
			{leaf("a", 0, 0, 1)},
		}},
		{"interior parent out of range", 2, [][]Domain{
			{{Name: "z", Parent: -1}},
			{leaf("a", 1, 0, 1)},
		}},
		{"childless interior", 2, [][]Domain{
			{{Name: "z", Parent: -1}, {Name: "w", Parent: -1}},
			{leaf("a", 0, 0, 1)},
		}},
		{"duplicate interior names", 3, [][]Domain{
			{{Name: "z", Parent: -1}, {Name: "z", Parent: -1}},
			{leaf("a", 0, 0), leaf("b", 1, 1, 2)},
		}},
	}
	for _, tc := range cases {
		if _, err := NewTree(tc.n, tc.tree); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Same leaf name under different parents is fine only across levels;
	// within the leaf level it stays rejected.
	if _, err := NewTree(2, [][]Domain{
		{{Name: "z", Parent: -1}, {Name: "w", Parent: -1}},
		{leaf("a", 0, 0), leaf("a", 1, 1)},
	}); err == nil {
		t.Error("duplicate leaf names accepted")
	}
	// Interior Nodes are derived: garbage in the input is overwritten.
	topo, err := NewTree(3, [][]Domain{
		{{Name: "z", Parent: -1, Nodes: []int{9999}}},
		{leaf("a", 0, 0, 1), leaf("b", 0, 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Tree[0][0].Nodes; len(got) != 3 {
		t.Errorf("interior nodes %v, want the derived union of 3 nodes", got)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	topos := []*Topology{}
	u, err := Uniform(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, u)
	h, err := UniformHierarchy(24, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, h)
	deep, err := UniformTree(24, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, deep)
	deeper, err := UniformTree(32, 2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, deeper)
	// Non-contiguous, striped domains exercise the range renderer.
	striped, err := New(6, []Domain{
		{Name: "a", Parent: -1, Nodes: []int{0, 2, 4}},
		{Name: "b", Parent: -1, Nodes: []int{5, 3, 1}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, striped)

	for _, topo := range topos {
		spec := topo.Spec()
		back, err := ParseSpec(topo.N, spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := back.Spec(); got != spec {
			t.Errorf("round trip changed spec:\n  in:  %s\n  out: %s", spec, got)
		}
		if back.Levels() != topo.Levels() {
			t.Errorf("spec %q: round trip changed depth %d -> %d", spec, topo.Levels(), back.Levels())
		}
		for nd := 0; nd < topo.N; nd++ {
			for level := 0; level < topo.Levels(); level++ {
				wi, err := topo.DomainOfAt(nd, level)
				if err != nil {
					t.Fatal(err)
				}
				gi, err := back.DomainOfAt(nd, level)
				if err != nil {
					t.Fatal(err)
				}
				if gn, wn := back.Tree[level][gi].Name, topo.Tree[level][wi].Name; gn != wn {
					t.Errorf("spec %q: node %d mapped to %q at level %d, want %q",
						spec, nd, gn, level, wn)
				}
			}
		}
	}
}

func TestParseSpecExamples(t *testing.T) {
	topo, err := ParseSpec(7, "rack0:0-2;rack1:3,4;rack2:5-6")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumDomains() != 3 || topo.DomainOf(4) != 1 {
		t.Errorf("parsed topology wrong: %d domains, DomainOf(4) = %d", topo.NumDomains(), topo.DomainOf(4))
	}
	zoned, err := ParseSpec(4, "a@east:0,1;b@west:2,3")
	if err != nil {
		t.Fatal(err)
	}
	if zoned.Levels() != 2 || zoned.Leaves()[1].Parent != 1 {
		t.Errorf("levels = %d, domain b parent = %d", zoned.Levels(), zoned.Leaves()[1].Parent)
	}
	if !strings.Contains(zoned.Spec(), "@east") {
		t.Errorf("zoned spec %q lost zones", zoned.Spec())
	}
	// Depth 3: two regions, three zones, four racks — zones declared by
	// first use, each consistently under one region.
	deep, err := ParseSpec(8, "r0@za@east:0,1;r1@za@east:2,3;r2@zb@west:4,5;r3@zc@west:6,7")
	if err != nil {
		t.Fatal(err)
	}
	if deep.Levels() != 3 {
		t.Fatalf("Levels = %d, want 3", deep.Levels())
	}
	if got, _ := deep.NumDomainsAt(0); got != 2 {
		t.Errorf("regions = %d, want 2", got)
	}
	if got, _ := deep.NumDomainsAt(1); got != 3 {
		t.Errorf("zones = %d, want 3", got)
	}
	if ri, _ := deep.DomainOfAt(6, 0); deep.Tree[0][ri].Name != "west" {
		t.Errorf("node 6 in region %q, want west", deep.Tree[0][ri].Name)
	}
	if got := deep.Spec(); got != "r0@za@east:0-1;r1@za@east:2-3;r2@zb@west:4-5;r3@zc@west:6-7" {
		t.Errorf("deep spec not canonical: %q", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		n    int
		spec string
	}{
		{4, ""},
		{4, "rack0"},
		{4, "rack0:x"},
		{4, "rack0:0-x"},
		{4, "rack0:3-1"},
		{4, "rack0:0-9999999"},
		{4, "a:0,1;b@z:2,3"},                 // mixed depths
		{4, "a@z@east:0,1;b@w:2,3"},          // mixed depths, deeper
		{4, "a@z@east:0,1;b@z@west:2,3"},     // zone z under two regions
		{4, "a@:0,1;b@:2,3"},                 // empty ancestor name
		{4, "a:0,1"},                         // nodes 2, 3 uncovered
		{2, "a:0;a:1"},                       // duplicate name
		{4, "a@east:0,1;a@west:2,3"},         // duplicate leaf across zones
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.n, tc.spec); err == nil {
			t.Errorf("ParseSpec(%d, %q) accepted", tc.n, tc.spec)
		}
	}
}
