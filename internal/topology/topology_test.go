package topology

import (
	"strings"
	"testing"
)

func TestUniform(t *testing.T) {
	topo, err := Uniform(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumDomains() != 4 {
		t.Fatalf("NumDomains = %d, want 4", topo.NumDomains())
	}
	sizes := []int{4, 3, 3, 3}
	total := 0
	for i, d := range topo.Domains {
		if len(d.Nodes) != sizes[i] {
			t.Errorf("domain %d has %d nodes, want %d", i, len(d.Nodes), sizes[i])
		}
		total += len(d.Nodes)
	}
	if total != 13 {
		t.Errorf("domains cover %d nodes, want 13", total)
	}
	for nd := 0; nd < 13; nd++ {
		di := topo.DomainOf(nd)
		found := false
		for _, v := range topo.Domains[di].Nodes {
			if v == nd {
				found = true
			}
		}
		if !found {
			t.Errorf("DomainOf(%d) = %d, but domain does not list the node", nd, di)
		}
	}
	if topo.MaxDomainSize() != 4 {
		t.Errorf("MaxDomainSize = %d, want 4", topo.MaxDomainSize())
	}
}

func TestUniformErrors(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 0}, {10, 11}, {0, 1}} {
		if _, err := Uniform(tc.n, tc.d); err == nil {
			t.Errorf("Uniform(%d, %d) accepted", tc.n, tc.d)
		}
	}
}

func TestUniformHierarchy(t *testing.T) {
	topo, err := UniformHierarchy(24, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Zones) != 3 || topo.NumDomains() != 6 {
		t.Fatalf("got %d zones, %d domains; want 3, 6", len(topo.Zones), topo.NumDomains())
	}
	for i, d := range topo.Domains {
		if d.Zone != i/2 {
			t.Errorf("domain %d in zone %d, want %d", i, d.Zone, i/2)
		}
		if len(d.Nodes) != 4 {
			t.Errorf("domain %d has %d nodes, want 4", i, len(d.Nodes))
		}
	}
	zl, err := topo.ZoneLevel()
	if err != nil {
		t.Fatal(err)
	}
	if zl.NumDomains() != 3 {
		t.Fatalf("zone level has %d domains, want 3", zl.NumDomains())
	}
	for _, d := range zl.Domains {
		if len(d.Nodes) != 8 {
			t.Errorf("zone %q has %d nodes, want 8", d.Name, len(d.Nodes))
		}
	}
	if _, err := zl.ZoneLevel(); err == nil {
		t.Error("ZoneLevel on a flat topology accepted")
	}
}

func TestFailedSet(t *testing.T) {
	topo, err := Uniform(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	bs := topo.FailedSet([]int{0, 3})
	want := map[int]bool{0: true, 1: true, 6: true, 7: true}
	for nd := 0; nd < 10; nd++ {
		if bs.Get(nd) != want[nd] {
			t.Errorf("FailedSet.Get(%d) = %v, want %v", nd, bs.Get(nd), want[nd])
		}
	}
	names := topo.DomainNames([]int{0, 3})
	if names[0] != "rack0" || names[1] != "rack3" {
		t.Errorf("DomainNames = %v", names)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		domains []Domain
		zones   []string
	}{
		{"uncovered node", 3, []Domain{{Name: "a", Zone: -1, Nodes: []int{0, 1}}}, nil},
		{"double booking", 2, []Domain{
			{Name: "a", Zone: -1, Nodes: []int{0, 1}},
			{Name: "b", Zone: -1, Nodes: []int{1}},
		}, nil},
		{"out of range", 2, []Domain{{Name: "a", Zone: -1, Nodes: []int{0, 2}}}, nil},
		{"duplicate names", 2, []Domain{
			{Name: "a", Zone: -1, Nodes: []int{0}},
			{Name: "a", Zone: -1, Nodes: []int{1}},
		}, nil},
		{"empty name", 1, []Domain{{Name: "", Zone: -1, Nodes: []int{0}}}, nil},
		{"reserved chars", 1, []Domain{{Name: "a:b", Zone: -1, Nodes: []int{0}}}, nil},
		{"empty domain", 1, []Domain{
			{Name: "a", Zone: -1, Nodes: []int{0}},
			{Name: "b", Zone: -1, Nodes: nil},
		}, nil},
		{"zone without zones", 1, []Domain{{Name: "a", Zone: 0, Nodes: []int{0}}}, nil},
		{"zone out of range", 1, []Domain{{Name: "a", Zone: 1, Nodes: []int{0}}}, []string{"z"}},
		{"unused zone", 1, []Domain{{Name: "a", Zone: 0, Nodes: []int{0}}}, []string{"z", "w"}},
		{"duplicate zones", 2, []Domain{
			{Name: "a", Zone: 0, Nodes: []int{0}},
			{Name: "b", Zone: 1, Nodes: []int{1}},
		}, []string{"z", "z"}},
		{"no domains", 1, nil, nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.n, tc.domains, tc.zones); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	topos := []*Topology{}
	u, err := Uniform(13, 4)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, u)
	h, err := UniformHierarchy(24, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, h)
	// Non-contiguous, striped domains exercise the range renderer.
	striped, err := New(6, []Domain{
		{Name: "a", Zone: -1, Nodes: []int{0, 2, 4}},
		{Name: "b", Zone: -1, Nodes: []int{5, 3, 1}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	topos = append(topos, striped)

	for _, topo := range topos {
		spec := topo.Spec()
		back, err := ParseSpec(topo.N, spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := back.Spec(); got != spec {
			t.Errorf("round trip changed spec:\n  in:  %s\n  out: %s", spec, got)
		}
		for nd := 0; nd < topo.N; nd++ {
			if gn := back.Domains[back.DomainOf(nd)].Name; gn != topo.Domains[topo.DomainOf(nd)].Name {
				t.Errorf("spec %q: node %d mapped to %q, want %q",
					spec, nd, gn, topo.Domains[topo.DomainOf(nd)].Name)
			}
		}
	}
}

func TestParseSpecExamples(t *testing.T) {
	topo, err := ParseSpec(7, "rack0:0-2;rack1:3,4;rack2:5-6")
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumDomains() != 3 || topo.DomainOf(4) != 1 {
		t.Errorf("parsed topology wrong: %d domains, DomainOf(4) = %d", topo.NumDomains(), topo.DomainOf(4))
	}
	zoned, err := ParseSpec(4, "a@east:0,1;b@west:2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(zoned.Zones) != 2 || zoned.Domains[1].Zone != 1 {
		t.Errorf("zones = %v, domain b zone = %d", zoned.Zones, zoned.Domains[1].Zone)
	}
	if !strings.Contains(zoned.Spec(), "@east") {
		t.Errorf("zoned spec %q lost zones", zoned.Spec())
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		n    int
		spec string
	}{
		{4, ""},
		{4, "rack0"},
		{4, "rack0:x"},
		{4, "rack0:0-x"},
		{4, "rack0:3-1"},
		{4, "rack0:0-9999999"},
		{4, "a:0,1;b@z:2,3"}, // mixed flat and zoned
		{4, "a:0,1"},         // nodes 2, 3 uncovered
		{2, "a:0;a:1"},       // duplicate name
	}
	for _, tc := range cases {
		if _, err := ParseSpec(tc.n, tc.spec); err == nil {
			t.Errorf("ParseSpec(%d, %q) accepted", tc.n, tc.spec)
		}
	}
}
