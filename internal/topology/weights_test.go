package topology

import (
	"strings"
	"testing"
)

// TestSpecWeightsAndCapsRoundTrip pins the annotated grammar: node
// weights (*w) and per-domain caps (cap=N, leaf and interior) survive
// ParseSpec∘Spec, and the canonical rendering is a fixed point.
func TestSpecWeightsAndCapsRoundTrip(t *testing.T) {
	spec := "r0 cap=3@za cap=5:0*2,1-3;r1@za cap=5:4-6;r2@zb:7*4,8-9"
	topo, err := ParseSpec(10, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.Weight(0); got != 2 {
		t.Errorf("Weight(0) = %d, want 2", got)
	}
	if got := topo.Weight(7); got != 4 {
		t.Errorf("Weight(7) = %d, want 4", got)
	}
	if got := topo.Weight(1); got != 1 {
		t.Errorf("Weight(1) = %d, want 1", got)
	}
	if !topo.Weighted() {
		t.Error("Weighted() = false with *2 and *4 nodes")
	}
	if got := topo.Leaves()[0].Cap; got != 3 {
		t.Errorf("leaf r0 cap = %d, want 3", got)
	}
	if got := topo.Tree[0][0].Cap; got != 5 {
		t.Errorf("zone za cap = %d, want 5", got)
	}
	if got := topo.Tree[0][1].Cap; got != 0 {
		t.Errorf("zone zb cap = %d, want 0 (unlimited)", got)
	}
	canon := topo.Spec()
	back, err := ParseSpec(10, canon)
	if err != nil {
		t.Fatalf("canonical spec %q does not re-parse: %v", canon, err)
	}
	if got := back.Spec(); got != canon {
		t.Fatalf("canonical spec not a fixed point:\n  first:  %s\n  second: %s", canon, got)
	}
	for nd := 0; nd < 10; nd++ {
		if back.Weight(nd) != topo.Weight(nd) {
			t.Errorf("node %d weight %d -> %d across round trip", nd, topo.Weight(nd), back.Weight(nd))
		}
	}
	for level := range topo.Tree {
		for di := range topo.Tree[level] {
			if back.Tree[level][di].Cap != topo.Tree[level][di].Cap {
				t.Errorf("level %d domain %d cap %d -> %d across round trip",
					level, di, topo.Tree[level][di].Cap, back.Tree[level][di].Cap)
			}
		}
	}
	// A weight range must break where the weight changes.
	if !strings.Contains(canon, "0*2,1-3") {
		t.Errorf("canonical spec %q should render 0*2,1-3", canon)
	}
}

// TestSpecUnannotatedUnchanged: topologies without weights or caps must
// render the exact PR-4 grammar (no stray annotations).
func TestSpecUnannotatedUnchanged(t *testing.T) {
	topo, err := UniformTree(12, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := topo.Spec()
	if strings.ContainsAny(spec, "* ") || strings.Contains(spec, "cap=") {
		t.Errorf("unannotated topology renders annotations: %q", spec)
	}
	// Explicit unit weights are the nil default: *1 tokens parse but
	// canonicalize away.
	got, err := ParseSpec(4, "a:0*1,1-3")
	if err != nil {
		t.Fatal(err)
	}
	if got.Weights != nil {
		t.Errorf("all-*1 spec materialized weights %v", got.Weights)
	}
}

func TestSpecAnnotationErrors(t *testing.T) {
	for _, tc := range []struct{ name, spec string }{
		{"cap zero", "a cap=0:0-3"},
		{"cap negative", "a cap=-2:0-3"},
		{"cap junk", "a cap=x:0-3"},
		{"unknown annotation", "a foo=3:0-3"},
		{"two caps one mention", "a cap=2 cap=3:0-3"},
		{"conflicting ancestor caps", "a@z cap=2:0,1;b@z cap=3:2,3"},
		{"weight zero", "a:0*0,1-3"},
		{"weight junk", "a:0*x,1-3"},
		{"weight negative", "a:0*-1,1-3"},
	} {
		if _, err := ParseSpec(4, tc.spec); err == nil {
			t.Errorf("%s: spec %q accepted", tc.name, tc.spec)
		}
	}
	// Later cap mention agreeing with the first is fine; adding a cap on
	// a later mention upgrades the earlier one.
	topo, err := ParseSpec(4, "a@z cap=4:0,1;b@z cap=4:2,3")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Tree[0][0].Cap != 4 {
		t.Errorf("zone cap = %d, want 4", topo.Tree[0][0].Cap)
	}
	topo, err = ParseSpec(4, "a@z:0,1;b@z cap=6:2,3")
	if err != nil {
		t.Fatal(err)
	}
	if topo.Tree[0][0].Cap != 6 {
		t.Errorf("late-annotated zone cap = %d, want 6", topo.Tree[0][0].Cap)
	}
}

func TestWeightsAndCapsValidation(t *testing.T) {
	topo, err := Uniform(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	topo.Weights = []int{1, 1, 1}
	if err := topo.Validate(); err == nil {
		t.Error("short weights vector accepted")
	}
	topo.Weights = []int{1, 1, 1, 1, 0, 1}
	if err := topo.Validate(); err == nil {
		t.Error("zero weight accepted")
	}
	topo.Weights = []int{1, 2, 3, 1, 1, 1}
	if err := topo.Validate(); err != nil {
		t.Errorf("valid weights rejected: %v", err)
	}
	topo.Tree[0][1].Cap = -1
	if err := topo.Validate(); err == nil {
		t.Error("negative cap accepted")
	}
	topo.Tree[0][1].Cap = 7
	if err := topo.Validate(); err != nil {
		t.Errorf("valid cap rejected: %v", err)
	}
}

// TestCollapseCarriesWeightsAndLevelCaps: the flat projection keeps the
// node weights (weighted adversaries run on collapsed views) and its
// own level's caps, but not caps of other levels.
func TestCollapseCarriesWeightsAndLevelCaps(t *testing.T) {
	topo, err := ParseSpec(8, "r0 cap=2@za cap=9:0*3,1;r1@za cap=9:2,3;r2@zb:4,5;r3@zb:6,7")
	if err != nil {
		t.Fatal(err)
	}
	flatLeaf, err := topo.Collapse(Leaf)
	if err != nil {
		t.Fatal(err)
	}
	if flatLeaf.Weight(0) != 3 {
		t.Errorf("collapsed leaf Weight(0) = %d, want 3", flatLeaf.Weight(0))
	}
	if flatLeaf.Leaves()[0].Cap != 2 {
		t.Errorf("collapsed leaf cap = %d, want 2", flatLeaf.Leaves()[0].Cap)
	}
	flatZone, err := topo.Collapse(0)
	if err != nil {
		t.Fatal(err)
	}
	if flatZone.Leaves()[0].Cap != 9 {
		t.Errorf("collapsed zone cap = %d, want 9", flatZone.Leaves()[0].Cap)
	}
	if flatZone.Weight(0) != 3 {
		t.Errorf("collapsed zone Weight(0) = %d, want 3", flatZone.Weight(0))
	}
}

func TestLevelCaps(t *testing.T) {
	topo, err := UniformTree(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := topo.LevelCaps(); got != nil {
		t.Errorf("uncapped topology LevelCaps = %v, want nil", got)
	}
	topo.Tree[0][1].Cap = 5
	topo.Tree[1][0].Cap = 2
	caps := topo.LevelCaps()
	if caps == nil {
		t.Fatal("capped topology LevelCaps = nil")
	}
	want := [][]int{{-1, 5}, {2, -1, -1, -1}}
	for level := range want {
		for di := range want[level] {
			if caps[level][di] != want[level][di] {
				t.Errorf("LevelCaps[%d][%d] = %d, want %d", level, di, caps[level][di], want[level][di])
			}
		}
	}
}
