package randplace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/combin"
	"repro/internal/placement"
)

func TestGenerateRespectsLoadCap(t *testing.T) {
	for _, p := range []placement.Params{
		{N: 31, B: 150, R: 5, S: 3, K: 3},
		{N: 71, B: 600, R: 3, S: 2, K: 4},
		{N: 10, B: 100, R: 2, S: 1, K: 2},
	} {
		pl, err := Generate(p, 42)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", p, err)
		}
		if err := pl.Validate(); err != nil {
			t.Fatal(err)
		}
		if pl.B() != p.B {
			t.Errorf("placed %d objects, want %d", pl.B(), p.B)
		}
		if got, limit := pl.MaxLoad(), p.Load(); got > limit {
			t.Errorf("max load %d exceeds cap ℓ = %d", got, limit)
		}
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	p := placement.Params{N: 20, B: 50, R: 3, S: 2, K: 3}
	a, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.B; i++ {
		if !a.Objects[i].Equal(b.Objects[i]) {
			t.Fatal("same seed produced different placements")
		}
	}
	c, err := Generate(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < p.B; i++ {
		if !a.Objects[i].Equal(c.Objects[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements")
	}
}

func TestGenerateRejectsInvalidParams(t *testing.T) {
	if _, err := Generate(placement.Params{N: 5, B: 10, R: 6, S: 1, K: 1}, 1); err == nil {
		t.Error("r > n accepted")
	}
}

func TestAlphaMatchesDirectSum(t *testing.T) {
	// Direct small-number evaluation against the log-space version.
	for _, tc := range []struct{ n, k, r, s int }{
		{10, 3, 3, 2}, {20, 5, 4, 2}, {31, 3, 5, 3}, {15, 7, 5, 1},
	} {
		var direct, complement float64
		hi := tc.r
		if tc.k < hi {
			hi = tc.k
		}
		for sp := 0; sp <= hi; sp++ {
			v := float64(combin.Choose(tc.k, sp)) * float64(combin.Choose(tc.n-tc.k, tc.r-sp))
			if sp >= tc.s {
				direct += v
			} else {
				complement += v
			}
		}
		logAlpha, logComp := Alpha(tc.n, tc.k, tc.r, tc.s)
		if math.Abs(math.Exp(logAlpha)-direct) > 1e-6*direct {
			t.Errorf("%+v: alpha = %g, want %g", tc, math.Exp(logAlpha), direct)
		}
		if math.Abs(math.Exp(logComp)-complement) > 1e-6*complement {
			t.Errorf("%+v: complement = %g, want %g", tc, math.Exp(logComp), complement)
		}
		// α + complement = C(n, r).
		total := math.Exp(combin.LogSumExp(logAlpha, logComp))
		want := float64(combin.Choose(tc.n, tc.r))
		if math.Abs(total-want) > 1e-6*want {
			t.Errorf("%+v: α + complement = %g, want C(n,r) = %g", tc, total, want)
		}
	}
}

func TestLogVulnMonotoneInF(t *testing.T) {
	p := placement.Params{N: 71, B: 600, R: 5, S: 2, K: 3}
	prev := math.Inf(1)
	for f := 0; f <= p.B; f += 25 {
		cur := LogVuln(p, f)
		if cur > prev+1e-9 {
			t.Fatalf("Vuln increased at f = %d: %g > %g", f, cur, prev)
		}
		prev = cur
	}
}

func TestPrAvailBasicProperties(t *testing.T) {
	p := placement.Params{N: 71, B: 600, R: 5, S: 2, K: 3}
	v, err := PrAvail(p)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > p.B {
		t.Fatalf("PrAvail = %d out of [0, %d]", v, p.B)
	}

	// Non-increasing in k: more failures cannot help.
	prev := p.B + 1
	for k := 2; k <= 7; k++ {
		pk := p
		pk.K = k
		v, err := PrAvail(pk)
		if err != nil {
			t.Fatal(err)
		}
		if v > prev {
			t.Errorf("PrAvail increased from %d to %d at k = %d", prev, v, k)
		}
		prev = v
	}

	// Non-decreasing in s: harder-to-kill objects survive more.
	prev = -1
	for s := 1; s <= 5; s++ {
		ps := placement.Params{N: 71, B: 600, R: 5, S: s, K: 5}
		v, err := PrAvail(ps)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("PrAvail decreased from %d to %d at s = %d", prev, v, s)
		}
		prev = v
	}
}

func TestPrAvailPaperScaleRuns(t *testing.T) {
	// The paper's largest configuration must evaluate quickly and sanely.
	p := placement.Params{N: 257, B: 38400, R: 5, S: 5, K: 8}
	v, err := PrAvail(p)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8 (s=5): availability stays above 99.8% of b.
	if frac := float64(v) / float64(p.B); frac < 0.99 {
		t.Errorf("PrAvail fraction = %g, expected > 0.99 per Fig. 8", frac)
	}
}

func TestPrAvailS1MatchesLemma4(t *testing.T) {
	// Lemma 4: prAvail <= b(1 − 1/b)^{kℓ} for s = 1, k < n/2.
	for _, tc := range []placement.Params{
		{N: 71, B: 2400, R: 3, S: 1, K: 3},
		{N: 71, B: 2400, R: 5, S: 1, K: 5},
		{N: 257, B: 9600, R: 3, S: 1, K: 8},
	} {
		v, err := PrAvail(tc)
		if err != nil {
			t.Fatal(err)
		}
		bound := Lemma4Bound(tc)
		// Allow one object of slack for the integer floor in prAvail.
		if float64(v) > bound+1 {
			t.Errorf("%+v: prAvail = %d exceeds Lemma 4 bound %g", tc, v, bound)
		}
	}
}

func TestPrAvailTableConvention(t *testing.T) {
	// The table convention is exactly one below Definition 6 (clamped).
	for _, p := range []placement.Params{
		{N: 71, B: 600, R: 3, S: 3, K: 3},
		{N: 71, B: 2400, R: 2, S: 2, K: 2},
		{N: 257, B: 38400, R: 5, S: 2, K: 4},
	} {
		def6, err := PrAvail(p)
		if err != nil {
			t.Fatal(err)
		}
		table, err := PrAvailTable(p)
		if err != nil {
			t.Fatal(err)
		}
		want := def6 - 1
		if def6 == 0 {
			want = 0
		}
		if table != want {
			t.Errorf("%+v: PrAvailTable = %d, want %d (PrAvail = %d)", p, table, want, def6)
		}
	}
	// The documented reproduction anchor: n=71 r=3 s=3 k=3 b=600 gives
	// 598 under Definition 6 and 597 under the paper's tables.
	p := placement.Params{N: 71, B: 600, R: 3, S: 3, K: 3}
	if v, _ := PrAvail(p); v != 598 {
		t.Errorf("PrAvail = %d, want 598", v)
	}
	if v, _ := PrAvailTable(p); v != 597 {
		t.Errorf("PrAvailTable = %d, want 597", v)
	}
}

func TestAvgAvailBudgetedNotExact(t *testing.T) {
	// A large-ish instance with a microscopic budget must degrade to a
	// non-exact estimate rather than failing.
	p := placement.Params{N: 31, B: 300, R: 5, S: 2, K: 4}
	res, err := AvgAvail(p, 2, 11, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Error("budget 5 cannot complete exactly")
	}
	if res.Mean <= 0 || res.Mean > float64(p.B) {
		t.Errorf("mean %g out of range", res.Mean)
	}
}

func TestAvgAvailSmallExact(t *testing.T) {
	p := placement.Params{N: 12, B: 40, R: 3, S: 2, K: 3}
	res, err := AvgAvail(p, 5, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Error("small instance should be exact")
	}
	if res.Min > res.Max || res.Mean < float64(res.Min) || res.Mean > float64(res.Max) {
		t.Errorf("inconsistent stats: %+v", res)
	}
	if res.Max > p.B {
		t.Errorf("availability %d exceeds b", res.Max)
	}
	if res.Busiest > p.Load() {
		t.Errorf("observed load %d beyond cap %d", res.Busiest, p.Load())
	}
	if _, err := AvgAvail(p, 0, 1, 0); err == nil {
		t.Error("trials = 0 accepted")
	}
}

// TestVulnAgainstMonteCarlo spot-checks the Theorem 2 limit against a
// Monte-Carlo estimate of P(at least f objects fail for a FIXED K) under
// the Random′ model (independent uniform r-subsets), which is the
// binomial tail in the theorem. The C(n,k) factor is checked separately
// by construction.
func TestVulnAgainstMonteCarlo(t *testing.T) {
	p := placement.Params{N: 12, B: 30, R: 3, S: 2, K: 3}
	logAlpha, logComp := Alpha(p.N, p.K, p.R, p.S)
	logTotal := combin.LogBinomial(p.N, p.R)
	pFail := math.Exp(logAlpha - logTotal)
	_ = logComp

	rng := rand.New(rand.NewSource(99))
	const samples = 20000
	f := 8
	hits := 0
	for i := 0; i < samples; i++ {
		failures := 0
		for obj := 0; obj < p.B; obj++ {
			// Sample an r-subset, count members inside K = {0,1,2}.
			inK := 0
			perm := rng.Perm(p.N)
			for _, nd := range perm[:p.R] {
				if nd < p.K {
					inK++
				}
			}
			if inK >= p.S {
				failures++
			}
		}
		if failures >= f {
			hits++
		}
	}
	mc := float64(hits) / samples
	analytic := math.Exp(combin.LogBinomTailGE(p.B, f, math.Log(pFail), math.Log1p(-pFail)))
	if math.Abs(mc-analytic) > 0.02 {
		t.Errorf("Monte Carlo tail %g vs analytic %g differ beyond tolerance", mc, analytic)
	}
}
