// Package randplace implements the paper's comparison baseline: Random
// load-balanced replica placement (Definition 4) and the analysis of its
// availability under a worst-case adversary (Sec. IV):
//
//   - Vuln^rnd(f), the expected number of (K, F) pairs where failing the
//     k nodes K fails at least the |F| >= f objects F (Definition 5),
//     evaluated in the b-independent limit of Theorem 2;
//   - prAvail^rnd = b − max{f : Vuln^rnd(f) >= 1}, the number of objects
//     that are "probably available" (Definition 6);
//   - the s = 1 upper bound prAvail^rnd <= b(1−1/b)^{k·ℓ} (Lemma 4);
//   - a generator for concrete Random placements and an empirical
//     avgAvail^rnd estimator driven by the adversary package.
//
// All probability mass computations run in log space (see
// internal/combin) so that the paper's largest workloads (b = 38400,
// C(n, r) up to ~10^9) evaluate without under/overflow.
package randplace

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/combin"
	"repro/internal/placement"
)

// Generate produces a Random load-balanced placement: every object gets r
// replicas on distinct nodes chosen uniformly among nodes that still have
// spare capacity under the load cap ℓ = ceil(r·b/n). The procedure
// resamples (bounded retries) on the rare end-game dead ends where fewer
// than r nodes have spare capacity.
func Generate(p placement.Params, seed int64) (*placement.Placement, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	limit := p.Load()
	const maxAttempts = 64
	rng := rand.New(rand.NewSource(seed))
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pl, ok := tryGenerate(p, limit, rng)
		if ok {
			return pl, nil
		}
	}
	return nil, fmt.Errorf("randplace: failed to place %d objects within load cap %d after %d attempts",
		p.B, limit, maxAttempts)
}

func tryGenerate(p placement.Params, limit int, rng *rand.Rand) (*placement.Placement, bool) {
	loads := make([]int, p.N)
	available := make([]int, p.N) // nodes with loads < limit
	for i := range available {
		available[i] = i
	}
	pl := placement.NewPlacement(p.N, p.R)
	nodes := make([]int, p.R)
	for obj := 0; obj < p.B; obj++ {
		if len(available) < p.R {
			return nil, false
		}
		// Partial Fisher-Yates over the available list: pick r distinct.
		for i := 0; i < p.R; i++ {
			j := i + rng.Intn(len(available)-i)
			available[i], available[j] = available[j], available[i]
			nodes[i] = available[i]
		}
		if err := pl.Add(nodes); err != nil {
			return nil, false
		}
		// Apply load increments and evict saturated nodes. Iterate from
		// the back so removals do not disturb earlier picked slots.
		for i := p.R - 1; i >= 0; i-- {
			nd := available[i]
			loads[nd]++
			if loads[nd] >= limit {
				available[i] = available[len(available)-1]
				available = available[:len(available)-1]
			}
		}
	}
	return pl, true
}

// Alpha returns α(n, k, r, s) = Σ_{s'=s}^{min(r,k)} C(k, s')·C(n−k, r−s'),
// the number of r-subsets of nodes with at least s members inside a fixed
// k-set (Theorem 2), in log space. The second value is the log of the
// complement C(n, r) − α (computed directly as the s' < s sum for
// numerical accuracy).
func Alpha(n, k, r, s int) (logAlpha, logComplement float64) {
	logAlpha = math.Inf(-1)
	logComplement = math.Inf(-1)
	hi := r
	if k < r {
		hi = k
	}
	for sp := 0; sp <= hi; sp++ {
		term := combin.LogBinomial(k, sp) + combin.LogBinomial(n-k, r-sp)
		if sp >= s {
			logAlpha = combin.LogSumExp(logAlpha, term)
		} else {
			logComplement = combin.LogSumExp(logComplement, term)
		}
	}
	return logAlpha, logComplement
}

// LogVuln returns ln Vuln^rnd(f) in the b-independent limit of Theorem 2:
//
//	Vuln(f) → C(n,k) · P(X >= f),  X ~ Binomial(b, α/C(n,r)).
func LogVuln(p placement.Params, f int) float64 {
	logAlpha, logComp := Alpha(p.N, p.K, p.R, p.S)
	logTotal := combin.LogBinomial(p.N, p.R)
	logP := logAlpha - logTotal
	log1mP := logComp - logTotal
	return combin.LogBinomial(p.N, p.K) + combin.LogBinomTailGE(p.B, f, logP, log1mP)
}

// PrAvail returns prAvail^rnd = b − max{f : Vuln^rnd(f) >= 1}
// (Definition 6), using the Theorem 2 limit for Vuln. Vuln is
// non-increasing in f, so the threshold is found by binary search.
func PrAvail(p placement.Params) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if p.B == 0 {
		return 0, nil
	}
	// Invariant: Vuln(lo) >= 1 (f = 0 always qualifies: the empty F with
	// any K gives at least one pair). Find the largest qualifying f.
	lo, hi := 0, p.B
	if LogVuln(p, hi) >= 0 {
		return 0, nil
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if LogVuln(p, mid) >= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return p.B - lo, nil
}

// PrAvailTable returns the prAvail convention that reproduces the
// paper's published tables (Figs. 9 and 10): b − min{f : Vuln^rnd(f) < 1},
// which is exactly one less than the literal reading of Definition 6
// implemented by PrAvail (clamped at 0).
//
// Reproduction finding: reverse-engineering the published Fig. 9a cells
// (e.g. r=3, s=3, k=3, b=600 prints 66%, which forces prAvail = 597,
// while Definition 6 with the Theorem 2 limit yields 598) shows the
// authors' implementation used this convention consistently; see
// EXPERIMENTS.md.
func PrAvailTable(p placement.Params) (int, error) {
	v, err := PrAvail(p)
	if err != nil {
		return 0, err
	}
	if v == 0 {
		return 0, nil
	}
	return v - 1, nil
}

// Lemma4Bound returns the s = 1 upper bound of Lemma 4:
// prAvail^rnd <= b·(1 − 1/b)^{k·ℓ} with ℓ = ceil(r·b/n) (valid for
// k < n/2).
func Lemma4Bound(p placement.Params) float64 {
	b := float64(p.B)
	exponent := float64(p.K) * float64(p.Load())
	return b * math.Pow(1-1/b, exponent)
}

// AvgAvailResult reports an empirical availability estimate.
type AvgAvailResult struct {
	Mean    float64 // average Avail over the trials
	Min     int     // worst trial
	Max     int     // best trial
	Trials  int
	Exact   bool // every trial's adversary search completed exactly
	Busiest int  // highest node load observed (load-balance diagnostics)
}

// AvgAvail estimates avgAvail^rnd: the empirical mean of Avail(π) over
// `trials` independent Random placements, each attacked by the worst-case
// adversary (budget 0 means exact search; positive budgets trade
// exactness for time, as recorded in the result).
func AvgAvail(p placement.Params, trials int, seed int64, budget int64) (AvgAvailResult, error) {
	if trials < 1 {
		return AvgAvailResult{}, fmt.Errorf("randplace: trials = %d must be positive", trials)
	}
	res := AvgAvailResult{Trials: trials, Exact: true, Min: math.MaxInt}
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		pl, err := Generate(p, seed+int64(trial))
		if err != nil {
			return AvgAvailResult{}, err
		}
		if l := pl.MaxLoad(); l > res.Busiest {
			res.Busiest = l
		}
		attack, err := adversary.WorstCase(pl, p.S, p.K, budget)
		if err != nil {
			return AvgAvailResult{}, err
		}
		if !attack.Exact {
			res.Exact = false
		}
		avail := attack.Avail(p.B)
		sum += float64(avail)
		if avail < res.Min {
			res.Min = avail
		}
		if avail > res.Max {
			res.Max = avail
		}
	}
	res.Mean = sum / float64(trials)
	return res, nil
}
