package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/design"
	"repro/internal/placement"
	"repro/internal/randplace"
)

// ---------------------------------------------------------------------------
// Fig. 3 — sensitivity of the Combo configuration to the planned k.
// ---------------------------------------------------------------------------

// Fig3Point is one plotted point: the availability bound of a Combo tuned
// for K, evaluated under KPrime failures, relative to the bound of a
// Combo tuned for KPrime itself.
type Fig3Point struct {
	N, B, KPrime int
	TunedBound   int64   // lbAvail_co at KPrime of the spec tuned for K
	OptimalBound int64   // lbAvail_co at KPrime of the spec tuned for KPrime
	RatioPercent float64 // 100·Tuned/Optimal
}

// Fig3Opts configures the sensitivity sweep; zeros mean the paper values
// (r = 5, s = 3, k = 6, k′ = 4..8, the three (n, b) curves of Fig. 3).
type Fig3Opts struct {
	R, S, K        int
	KPrimes        []int
	Configurations []struct{ N, B int }
}

// Fig3 reproduces Fig. 3.
func Fig3(opts Fig3Opts) ([]Fig3Point, error) {
	if opts.R == 0 {
		opts.R, opts.S, opts.K = 5, 3, 6
	}
	if len(opts.KPrimes) == 0 {
		opts.KPrimes = []int{4, 5, 6, 7, 8}
	}
	if len(opts.Configurations) == 0 {
		opts.Configurations = []struct{ N, B int }{{31, 4800}, {71, 1200}, {257, 9600}}
	}
	var out []Fig3Point
	for _, cfg := range opts.Configurations {
		units, err := placement.DefaultUnits(cfg.N, opts.R, opts.S, false)
		if err != nil {
			return nil, err
		}
		tuned, _, err := placement.OptimizeCombo(cfg.B, opts.K, opts.S, units)
		if err != nil {
			return nil, err
		}
		for _, kp := range opts.KPrimes {
			_, optimal, err := placement.OptimizeCombo(cfg.B, kp, opts.S, units)
			if err != nil {
				return nil, err
			}
			pt := Fig3Point{
				N: cfg.N, B: cfg.B, KPrime: kp,
				TunedBound:   placement.LBAvailCombo(int64(cfg.B), kp, opts.S, tuned.Lambdas),
				OptimalBound: optimal,
			}
			if pt.OptimalBound > 0 {
				pt.RatioPercent = 100 * float64(pt.TunedBound) / float64(pt.OptimalBound)
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// RenderFig3 writes the Fig. 3 series.
func RenderFig3(w io.Writer, points []Fig3Point) error {
	if _, err := fmt.Fprintln(w, "Fig. 3: lbAvail_co(tuned for k)/lbAvail_co(tuned for k') as %, r=5 s=3 k=6"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.B), fmt.Sprintf("%d", p.KPrime),
			fmt.Sprintf("%.2f", p.RatioPercent),
		})
	}
	return renderTable(w, []string{"n", "b", "k'", "ratio %"}, rows)
}

// ---------------------------------------------------------------------------
// Fig. 4 — the Steiner-system orders used for each (n, r, x).
// ---------------------------------------------------------------------------

// Fig4Entry is one table entry: the order n_x chosen for (n, r, x).
type Fig4Entry struct {
	N, R, X       int
	Order         int  // largest known order <= N
	Constructible bool // whether this repository can build it
}

// Fig4 reproduces the order table (Fig. 4) from the design catalog, for
// x = 1..r-1 (x = 0 and x+1 = r are degenerate and not tabulated in the
// paper).
func Fig4(ns []int) ([]Fig4Entry, error) {
	if len(ns) == 0 {
		ns = []int{31, 71, 257}
	}
	var out []Fig4Entry
	for _, n := range ns {
		for r := 2; r <= 5; r++ {
			for x := 1; x < r; x++ {
				order, ok := design.BestKnownOrder(x+1, r, n)
				if !ok {
					return nil, fmt.Errorf("experiments: no known %d-(·,%d,1) order <= %d", x+1, r, n)
				}
				out = append(out, Fig4Entry{
					N: n, R: r, X: x, Order: order,
					Constructible: design.SteinerConstructible(x+1, order, r),
				})
			}
		}
	}
	return out, nil
}

// RenderFig4 writes the order table.
func RenderFig4(w io.Writer, entries []Fig4Entry) error {
	if _, err := fmt.Fprintln(w, "Fig. 4: Steiner-system orders n_x (+ = constructible in this repo)"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(entries))
	for _, e := range entries {
		mark := ""
		if e.Constructible {
			mark = "+"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", e.N), fmt.Sprintf("%d", e.R), fmt.Sprintf("%d", e.X),
			fmt.Sprintf("%d%s", e.Order, mark),
		})
	}
	return renderTable(w, []string{"n", "r", "x", "n_x"}, rows)
}

// ---------------------------------------------------------------------------
// Fig. 8 — prAvail/b of Random placement.
// ---------------------------------------------------------------------------

// Fig8Point is one curve sample of Fig. 8.
type Fig8Point struct {
	N, R, S, K int
	Fraction   float64 // prAvail / b
}

// Fig8Opts configures the sweep; zero values select the paper settings
// (b = 38400, curves (n, r) ∈ {71, 257} × {3, 5}, k up to 10).
type Fig8Opts struct {
	B    int
	KMax int
	NRs  []struct{ N, R int }
	Ss   []int
}

// Fig8 reproduces Fig. 8: the fraction of objects probably available
// under Random placement, per s and k.
func Fig8(opts Fig8Opts) ([]Fig8Point, error) {
	if opts.B == 0 {
		opts.B = 38400
	}
	if opts.KMax == 0 {
		opts.KMax = 10
	}
	if len(opts.NRs) == 0 {
		opts.NRs = []struct{ N, R int }{{71, 3}, {71, 5}, {257, 3}, {257, 5}}
	}
	if len(opts.Ss) == 0 {
		opts.Ss = []int{1, 2, 3, 4, 5}
	}
	var out []Fig8Point
	for _, s := range opts.Ss {
		for _, nr := range opts.NRs {
			if s > nr.R {
				continue // s <= r required
			}
			for k := s; k <= opts.KMax; k++ {
				p := placement.Params{N: nr.N, B: opts.B, R: nr.R, S: s, K: k}
				pr, err := randplace.PrAvailTable(p)
				if err != nil {
					return nil, err
				}
				out = append(out, Fig8Point{
					N: nr.N, R: nr.R, S: s, K: k,
					Fraction: float64(pr) / float64(opts.B),
				})
			}
		}
	}
	return out, nil
}

// RenderFig8 writes the Fig. 8 series.
func RenderFig8(w io.Writer, points []Fig8Point) error {
	if _, err := fmt.Fprintln(w, "Fig. 8: prAvail_rnd/b for Random placement (b = 38400)"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.S), fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.R),
			fmt.Sprintf("%d", p.K), fmt.Sprintf("%.4f", p.Fraction),
		})
	}
	return renderTable(w, []string{"s", "n", "r", "k", "prAvail/b"}, rows)
}

// ---------------------------------------------------------------------------
// Fig. 11 — the s = 1 decay law (Lemma 4).
// ---------------------------------------------------------------------------

// Fig11Point samples the Lemma 4 bound (1 − 1/b)^{k·ℓ}.
type Fig11Point struct {
	N, R, K  int
	Fraction float64
}

// Fig11 reproduces Fig. 11 for b objects (default 38400).
func Fig11(b int) []Fig11Point {
	if b == 0 {
		b = 38400
	}
	var out []Fig11Point
	for _, nr := range []struct{ N, R int }{{71, 3}, {71, 5}, {257, 3}, {257, 5}} {
		for k := 1; k <= 10; k++ {
			load := int(math.Ceil(float64(nr.R) * float64(b) / float64(nr.N)))
			out = append(out, Fig11Point{
				N: nr.N, R: nr.R, K: k,
				Fraction: math.Pow(1-1/float64(b), float64(k*load)),
			})
		}
	}
	return out
}

// RenderFig11 writes the Fig. 11 series.
func RenderFig11(w io.Writer, points []Fig11Point) error {
	if _, err := fmt.Fprintln(w, "Fig. 11: (1 − 1/b)^{k·ℓ} decay of Random for s = 1 (b = 38400)"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.R), fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%.4f", p.Fraction),
		})
	}
	return renderTable(w, []string{"n", "r", "k", "(1-1/b)^kl"}, rows)
}
