package experiments

import (
	"fmt"
	"io"

	"repro/internal/placement"
	"repro/internal/randplace"
)

// Fig10Cell is one entry of the Fig. 10 breakdown: how an individual
// Simple(x, λ) placement (with the minimal λ per Eqn. 1) or the best
// Combo compares against Random.
type Fig10Cell struct {
	N, B, K int
	X       int   // the Simple overlap bound; -1 for the Combo column
	Lambda  int   // minimal λ per Eqn. 1 (0 for Combo)
	LB      int64 // lbAvail_si (or lbAvail_co for Combo)
	PrAvail int
	Percent float64
}

// Fig10Opts configures the breakdown. Zero values choose the paper's
// setting r = s = 3 with b doubling from 600 to BMax = 38400.
type Fig10Opts struct {
	N    int // 31, 71 or 257 in the paper
	BMax int
	KMin int // default s = 3
	KMax int // default: 6 for n = 31, 7 for 71, 8 for 257
}

// Fig10 reproduces one panel of Fig. 10 (r = s = 3): for each b, the
// percentages for Simple(1, λ1), Simple(2, λ2), and the optimized Combo.
func Fig10(opts Fig10Opts) ([]Fig10Cell, error) {
	const r, s = 3, 3
	if opts.N == 0 {
		opts.N = 71
	}
	if opts.BMax == 0 {
		opts.BMax = 38400
	}
	if opts.KMin == 0 {
		opts.KMin = s
	}
	if opts.KMax == 0 {
		switch opts.N {
		case 31:
			opts.KMax = 6
		case 257:
			opts.KMax = 8
		default:
			opts.KMax = 7
		}
	}
	units, err := placement.DefaultUnits(opts.N, r, s, false)
	if err != nil {
		return nil, err
	}
	bs := doublings(600, opts.BMax)
	var out []Fig10Cell
	for k := opts.KMin; k <= opts.KMax; k++ {
		sweep, err := placement.ComboBoundSweep(bs[len(bs)-1], k, s, units)
		if err != nil {
			return nil, err
		}
		for _, b := range bs {
			pr, err := randplace.PrAvailTable(placement.Params{N: opts.N, B: b, R: r, S: s, K: k})
			if err != nil {
				return nil, err
			}
			percent := func(lb int64) float64 {
				if b == pr {
					return 0
				}
				return float64(lb-int64(pr)) / float64(int64(b)-int64(pr)) * 100
			}
			// Simple(x, λx) columns for x = 1, 2.
			for _, x := range []int{1, 2} {
				u := units[x]
				lambda, err := placement.MinimalLambda(int64(b), u.CapPerMu, u.Mu)
				if err != nil {
					return nil, err
				}
				lb := placement.LBAvailSimple(int64(b), k, s, x, lambda)
				out = append(out, Fig10Cell{
					N: opts.N, B: b, K: k, X: x, Lambda: lambda,
					LB: lb, PrAvail: pr, Percent: percent(lb),
				})
			}
			// Combo column.
			out = append(out, Fig10Cell{
				N: opts.N, B: b, K: k, X: -1,
				LB: sweep[b], PrAvail: pr, Percent: percent(sweep[b]),
			})
		}
	}
	return out, nil
}

// RenderFig10 writes the breakdown in the paper's layout.
func RenderFig10(w io.Writer, cells []Fig10Cell) error {
	if len(cells) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "Fig. 10 (n = %d, r = s = 3): Simple(x, λ) and Combo vs Random, %% of max improvement\n",
		cells[0].N); err != nil {
		return err
	}
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		col := "Combo"
		lambda := ""
		if c.X >= 0 {
			col = fmt.Sprintf("x=%d", c.X)
			lambda = fmt.Sprintf("%d", c.Lambda)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.B), fmt.Sprintf("%d", c.K), col, lambda, pct(c.Percent),
		})
	}
	return renderTable(w, []string{"b", "k", "placement", "lambda", "%"}, rows)
}
