package experiments

import (
	"fmt"
	"io"

	"repro/internal/placement"
	"repro/internal/randplace"
)

// Fig9Cell is one entry of the paper's main result tables (Figs. 9a/9b):
// the advantage of the optimized Combo placement over Random placement,
// expressed as a percentage of the maximum possible improvement.
type Fig9Cell struct {
	R, S, K, B int
	LB         int64   // lbAvail_co of the DP-optimized Combo
	PrAvail    int     // prAvail^rnd of Random (Theorem 2 limit)
	Percent    float64 // (LB − PrAvail)/(B − PrAvail)·100; 0 when B = PrAvail
	Outcome    byte    // 'W' Combo wins, 'T' tie, 'L' Random wins
}

// Fig9Opts scales the experiment. Zero values select the paper's full
// configuration for the given N.
type Fig9Opts struct {
	N    int   // 71 or 257 (paper); any valid n works
	KMax int   // default: 7 for n = 71, 8 otherwise
	BMax int   // default: 38400
	Rs   []int // default: 2, 3, 4, 5
}

// Fig9Result holds all cells of one table (one value of n).
type Fig9Result struct {
	N     int
	Cells []Fig9Cell
}

// Fig9 reproduces the paper's main comparison (Fig. 9a for n = 71,
// Fig. 9b for n = 257): for every r, every s in 2..r, every k in s..KMax
// and every b in {600, 1200, ..., BMax}, the Combo lower bound against
// Random's probable availability.
func Fig9(opts Fig9Opts) (*Fig9Result, error) {
	if opts.N == 0 {
		opts.N = 71
	}
	if opts.KMax == 0 {
		if opts.N == 71 {
			opts.KMax = 7
		} else {
			opts.KMax = 8
		}
	}
	if opts.BMax == 0 {
		opts.BMax = 38400
	}
	if len(opts.Rs) == 0 {
		opts.Rs = []int{2, 3, 4, 5}
	}
	bs := doublings(600, opts.BMax)
	if len(bs) == 0 {
		return nil, fmt.Errorf("experiments: BMax = %d below 600", opts.BMax)
	}
	res := &Fig9Result{N: opts.N}
	for _, r := range opts.Rs {
		for s := 2; s <= r; s++ {
			units, err := placement.DefaultUnits(opts.N, r, s, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: units for n=%d r=%d s=%d: %w", opts.N, r, s, err)
			}
			for k := s; k <= opts.KMax; k++ {
				sweep, err := placement.ComboBoundSweep(bs[len(bs)-1], k, s, units)
				if err != nil {
					return nil, err
				}
				for _, b := range bs {
					params := placement.Params{N: opts.N, B: b, R: r, S: s, K: k}
					pr, err := randplace.PrAvailTable(params)
					if err != nil {
						return nil, err
					}
					cell := Fig9Cell{R: r, S: s, K: k, B: b, LB: sweep[b], PrAvail: pr}
					diff := cell.LB - int64(pr)
					switch {
					case diff > 0:
						cell.Outcome = 'W'
					case diff == 0:
						cell.Outcome = 'T'
					default:
						cell.Outcome = 'L'
					}
					if int64(b) != int64(pr) {
						cell.Percent = float64(diff) / float64(int64(b)-int64(pr)) * 100
					}
					res.Cells = append(res.Cells, cell)
				}
			}
		}
	}
	return res, nil
}

// Cell returns the cell for (r, s, k, b), if present.
func (r *Fig9Result) Cell(rr, s, k, b int) (Fig9Cell, bool) {
	for _, c := range r.Cells {
		if c.R == rr && c.S == s && c.K == k && c.B == b {
			return c, true
		}
	}
	return Fig9Cell{}, false
}

// Render writes the tables in the paper's layout: one sub-table per
// (r, s), rows indexed by b and columns by k.
func (r *Fig9Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 9 (n = %d): lbAvail_co − prAvail_rnd as %% of (b − prAvail_rnd)\n", r.N); err != nil {
		return err
	}
	type key struct{ r, s int }
	groups := make(map[key][]Fig9Cell)
	var order []key
	for _, c := range r.Cells {
		k := key{c.R, c.S}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, grp := range order {
		cells := groups[grp]
		ks := sortedUnique(cells, func(c Fig9Cell) int { return c.K })
		bs := sortedUnique(cells, func(c Fig9Cell) int { return c.B })
		if _, err := fmt.Fprintf(w, "\nr = %d, s = %d (cells: %%; W=Combo wins, T=tie, L=Random wins)\n", grp.r, grp.s); err != nil {
			return err
		}
		headers := []string{"b \\ k"}
		for _, k := range ks {
			headers = append(headers, fmt.Sprintf("%d", k))
		}
		var rows [][]string
		for _, b := range bs {
			row := []string{fmt.Sprintf("%d", b)}
			for _, k := range ks {
				var text string
				for _, c := range cells {
					if c.B == b && c.K == k {
						text = fmt.Sprintf("%s%c", pct(c.Percent), c.Outcome)
						break
					}
				}
				row = append(row, text)
			}
			rows = append(rows, row)
		}
		if err := renderTable(w, headers, rows); err != nil {
			return err
		}
	}
	return nil
}

func sortedUnique(cells []Fig9Cell, get func(Fig9Cell) int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, c := range cells {
		v := get(c)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
