package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestDomainTableAwareNeverWorse enforces the PR's acceptance property on
// every scenario of the shipped table: domain-aware Combo's availability
// under the exact domain adversary is >= domain-oblivious Combo's, and
// the spreading pass never reduces an object's rack spread below the
// oblivious layout's minimum.
func TestDomainTableAwareNeverWorse(t *testing.T) {
	cells, err := DomainTable(DomainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty table")
	}
	sawZone, sawRegion, sawWeighted := false, false, false
	for _, c := range cells {
		// Weighted rows report W0 − lost weight against the shared
		// TotalWeight baseline; the never-worse and monotonicity
		// relations below hold verbatim in weight units.
		base := c.B
		if c.HotWeight > 1 {
			sawWeighted = true
			if c.TotalWeight < int64(c.B) {
				t.Errorf("%+v: total weight %d below the object count %d", c.DomainScenario, c.TotalWeight, c.B)
			}
			base = int(c.TotalWeight)
		}
		if c.AwareAvail < c.ObliviousAvail {
			t.Errorf("%+v: aware Avail %d < oblivious %d", c.DomainScenario, c.AwareAvail, c.ObliviousAvail)
		}
		// The per-level guarantee: aware never loses to oblivious under
		// the zone or region adversary either.
		if c.ZoneOblivAvail >= 0 {
			sawZone = true
			if c.ZoneAwareAvail < c.ZoneOblivAvail {
				t.Errorf("%+v: zone aware Avail %d < oblivious %d", c.DomainScenario, c.ZoneAwareAvail, c.ZoneOblivAvail)
			}
		}
		if c.RegionObliv >= 0 {
			sawRegion = true
			if c.RegionAware < c.RegionObliv {
				t.Errorf("%+v: region aware Avail %d < oblivious %d", c.DomainScenario, c.RegionAware, c.RegionObliv)
			}
			// A region failure covers at least a zone, a zone at least a
			// rack: coarser adversaries can only do more damage.
			if c.RegionAware > c.ZoneAwareAvail || c.ZoneAwareAvail > c.AwareAvail {
				t.Errorf("%+v: aware avail not monotone across levels: rack %d, zone %d, region %d",
					c.DomainScenario, c.AwareAvail, c.ZoneAwareAvail, c.RegionAware)
			}
		}
		if c.MinSpreadAfter < c.MinSpreadBefore {
			t.Errorf("%+v: min spread regressed %d -> %d", c.DomainScenario, c.MinSpreadBefore, c.MinSpreadAfter)
		}
		if c.ObliviousAvail < 0 || c.ObliviousAvail > base || c.AwareAvail > base || c.NodeAvail > base {
			t.Errorf("%+v: availability out of range: %+v", c.DomainScenario, c)
		}
	}
	if !sawZone || !sawRegion {
		t.Errorf("default table must include hierarchical rows (zone %v, region %v)", sawZone, sawRegion)
	}
	if !sawWeighted {
		t.Error("default table must include a weighted (hot-node) row")
	}
}

// TestDomainTableShowsCorrelationWin demands the experiment actually
// demonstrates its point: at least one shipped scenario where the
// spreading pass strictly improves availability under the correlated
// adversary. (Pure Steiner rows are label-symmetric — relabeling cannot
// help them — so the win comes from the partition-chunk rows.)
func TestDomainTableShowsCorrelationWin(t *testing.T) {
	cells, err := DomainTable(DomainOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.AwareAvail > c.ObliviousAvail {
			return
		}
	}
	t.Error("no scenario where domain-aware strictly beats domain-oblivious")
}

func TestRenderDomainTable(t *testing.T) {
	cells, err := DomainTable(DomainOpts{Scenarios: []DomainScenario{
		{N: 9, R: 3, S: 2, K: 3, B: 12, Racks: 3, D: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderDomainTable(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Avail(node,k)", "Avail(rack,d) aware", "minspread"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
