package experiments

import (
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/search"
	"repro/internal/topology"
)

// This experiment extends the paper's evaluation beyond its independent-
// failure model: the adversary fails whole failure domains (the
// correlated setting of Mills, Chandrasekaran & Mittal,
// arXiv:1701.01539) instead of k free nodes — racks on the flat rows,
// and every level of the tree (racks, zones, regions) on the
// hierarchical rows. For each scenario the table contrasts, on the same
// DP-optimized Combo placement,
//
//   - Avail under the paper's node adversary (k worst nodes, exact),
//   - Avail under the domain adversary (d worst whole domains, exact,
//     per level) for the domain-oblivious placement (abstract ids =
//     physical nodes), and
//   - the same after the domain-aware spreading post-pass
//     (placement.SpreadAcrossDomains — hierarchical on trees).
//
// Every aware column is never worse than its oblivious twin at the same
// level — the spreading pass guarantees it, and
// TestDomainTableAwareNeverWorse enforces it on every row and level.

// DomainScenario is one row of the domain-adversary table. K is chosen
// per scenario so the node and domain attacks are comparable (k ≈ the
// node count of the d largest racks). Zones, when positive, groups the
// racks into that many zones (Racks divisible by Zones); Regions
// further groups the zones (Zones divisible by Regions). The adversary
// then attacks every level, with d clamped to the level's domain count.
type DomainScenario struct {
	N, R, S, K, B int
	Racks         int // leaf rack count
	Zones         int // optional zone count over the racks (0 = flat)
	Regions       int // optional region count over the zones (0 = none)
	D             int // whole-domain failure budget (per level, clamped)
	// HotWeight, when > 1, makes node 0 a hot node of that weight (all
	// others weigh 1) and switches the row to WEIGHTED accounting: every
	// availability column is W0 − lost weight, where W0 is the oblivious
	// labeling's total object weight (a shared baseline, so the aware
	// column stays >= the oblivious one exactly when it loses no more
	// weight), the spread pass runs weighted-aware, and the adversaries
	// maximize lost weight.
	HotWeight int
}

// DomainCell is a computed row. The zone and region columns are -1 on
// rows whose topology does not have that level. On weighted rows
// (HotWeight > 1) every availability column is in weight units against
// the TotalWeight baseline.
type DomainCell struct {
	DomainScenario
	TotalWeight     int64 // W0 baseline of a weighted row (0: unweighted)
	NodeAvail       int   // oblivious Combo vs k-node adversary
	ObliviousAvail  int   // oblivious Combo vs d-rack adversary
	AwareAvail      int   // spread Combo vs d-rack adversary
	ZoneOblivAvail  int   // oblivious Combo vs d-zone adversary
	ZoneAwareAvail  int   // spread Combo vs d-zone adversary
	RegionObliv     int   // oblivious Combo vs d-region adversary
	RegionAware     int   // spread Combo vs d-region adversary
	MinSpreadBefore int   // min distinct racks per object, oblivious
	MinSpreadAfter  int   // min distinct racks per object, aware
}

// DomainOpts scales the experiment. Zero values select the default
// grid: constructible Combo placements on small Steiner orders, all
// adversaries exact and serial with residual-load pruning.
type DomainOpts struct {
	Scenarios []DomainScenario
	Budget    int64        // adversary search budget (0 = exact)
	Workers   int          // search workers; > 1 picks the parallel engines
	Bound     search.Bound // branch-and-bound pruning ablation (default residual)
}

// defaultDomainScenarios keeps every adversary exactly solvable in
// milliseconds while covering both Steiner orders, two rack widths,
// one- and two-rack failures, and — on the hierarchical rows — zone and
// region adversaries over depth-2 and depth-3 trees.
func defaultDomainScenarios() []DomainScenario {
	return []DomainScenario{
		{N: 9, R: 3, S: 2, K: 3, B: 12, Racks: 3, D: 1},
		{N: 9, R: 3, S: 2, K: 3, B: 24, Racks: 3, D: 1},
		// k = 6 makes the DP favor x = 0 partition chunks, which align
		// catastrophically with contiguous racks until the spreading
		// pass relabels them — the rows where aware strictly wins.
		{N: 12, R: 3, S: 2, K: 6, B: 8, Racks: 3, D: 1},
		{N: 12, R: 3, S: 2, K: 6, B: 16, Racks: 4, D: 1},
		{N: 13, R: 3, S: 2, K: 4, B: 26, Racks: 4, D: 1},
		{N: 13, R: 3, S: 2, K: 7, B: 26, Racks: 4, D: 2},
		{N: 13, R: 3, S: 3, K: 7, B: 26, Racks: 4, D: 2},
		{N: 15, R: 3, S: 2, K: 6, B: 35, Racks: 5, D: 2},
		// Hierarchical rows: the same partition-chunk placement under
		// rack, zone, and region adversaries. The hierarchical spread
		// separates replicas at the coarse levels first, so the aware
		// columns hold up even when a whole region dies.
		{N: 12, R: 3, S: 2, K: 6, B: 16, Racks: 4, Zones: 2, D: 1},
		{N: 12, R: 3, S: 2, K: 6, B: 16, Racks: 8, Zones: 4, Regions: 2, D: 1},
		{N: 13, R: 3, S: 2, K: 7, B: 26, Racks: 8, Zones: 4, Regions: 2, D: 2},
		// Weighted rows: node 0 is hot, the adversaries maximize lost
		// weight, and the spread runs weighted-aware — the heterogeneous
		// row of the table (flat and hierarchical).
		{N: 12, R: 3, S: 2, K: 6, B: 16, Racks: 4, D: 1, HotWeight: 5},
		{N: 12, R: 3, S: 2, K: 6, B: 16, Racks: 8, Zones: 4, Regions: 2, D: 1, HotWeight: 3},
	}
}

// buildScenarioTopology materializes the (possibly hierarchical) tree a
// scenario describes.
func buildScenarioTopology(sc DomainScenario) (*topology.Topology, error) {
	switch {
	case sc.Regions > 0:
		if sc.Zones < 1 || sc.Zones%sc.Regions != 0 || sc.Racks%sc.Zones != 0 {
			return nil, fmt.Errorf("experiments: regions=%d zones=%d racks=%d must nest evenly",
				sc.Regions, sc.Zones, sc.Racks)
		}
		return topology.UniformTree(sc.N, sc.Regions, sc.Zones/sc.Regions, sc.Racks/sc.Zones)
	case sc.Zones > 0:
		if sc.Racks%sc.Zones != 0 {
			return nil, fmt.Errorf("experiments: racks=%d not divisible by zones=%d", sc.Racks, sc.Zones)
		}
		return topology.UniformTree(sc.N, sc.Zones, sc.Racks/sc.Zones)
	default:
		return topology.Uniform(sc.N, sc.Racks)
	}
}

// DomainTable computes the node-vs-domain adversary comparison.
func DomainTable(opts DomainOpts) ([]DomainCell, error) {
	scenarios := opts.Scenarios
	if len(scenarios) == 0 {
		scenarios = defaultDomainScenarios()
	}
	// Workers < 1 clamps to serial (not GOMAXPROCS, which is what
	// SearchOpts would make of a negative count): the zero value keeps
	// the table's historical serial, deterministic behavior.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	searchOpts := adversary.SearchOpts{Budget: opts.Budget, Workers: workers, Bound: opts.Bound}
	cells := make([]DomainCell, 0, len(scenarios))
	for _, sc := range scenarios {
		combo, _, _, err := placement.BuildDefaultCombo(sc.N, sc.R, sc.S, sc.K, sc.B)
		if err != nil {
			return nil, fmt.Errorf("experiments: combo for %+v: %w", sc, err)
		}
		topo, err := buildScenarioTopology(sc)
		if err != nil {
			return nil, err
		}
		weighted := sc.HotWeight > 1
		var w0 int64
		if weighted {
			weights := make([]int, sc.N)
			for i := range weights {
				weights[i] = 1
			}
			weights[0] = sc.HotWeight
			topo.Weights = weights
			oblivW, werr := placement.ObjectWeights(combo, topo)
			if werr != nil {
				return nil, werr
			}
			w0 = placement.SumWeights(oblivW, sc.B)
		}
		// weightedOpts returns the search options carrying pl's own
		// object weights (relabeling moves objects on and off the hot
		// node, so each layout is scored with its own vector).
		weightedOpts := func(pl *placement.Placement) (adversary.SearchOpts, error) {
			opts := searchOpts
			if weighted {
				objW, err := placement.ObjectWeights(pl, topo)
				if err != nil {
					return opts, err
				}
				opts.ObjWeights = objW
			}
			return opts, nil
		}
		nodeOpts, err := weightedOpts(combo)
		if err != nil {
			return nil, err
		}
		nodeRes, err := adversary.WorstCaseWith(combo, sc.S, sc.K, nodeOpts)
		if err != nil {
			return nil, err
		}
		aware, _, err := placement.SpreadAcrossDomainsWith(combo, topo, sc.S, sc.D,
			placement.SpreadOpts{Weighted: weighted})
		if err != nil {
			return nil, err
		}
		// Avail for both layouts under the whole-domain adversary at
		// the given level, with d clamped to the level's domain count;
		// weighted rows report W0 − lost weight.
		levelAvail := func(pl *placement.Placement, level int) (int, error) {
			nd, err := topo.NumDomainsAt(level)
			if err != nil {
				return 0, err
			}
			dl := sc.D
			if dl > nd {
				dl = nd
			}
			opts, err := weightedOpts(pl)
			if err != nil {
				return 0, err
			}
			res, err := adversary.DomainWorstCaseAtWith(pl, topo, level, sc.S, dl, opts)
			if err != nil {
				return 0, err
			}
			if weighted {
				return int(w0) - res.Failed, nil
			}
			return res.Avail(sc.B), nil
		}
		cell := DomainCell{
			DomainScenario: sc,
			TotalWeight:    w0,
			NodeAvail:      nodeRes.Avail(sc.B),
			ZoneOblivAvail: -1, ZoneAwareAvail: -1, RegionObliv: -1, RegionAware: -1,
		}
		if weighted {
			cell.NodeAvail = int(w0) - nodeRes.Failed
		}
		if cell.ObliviousAvail, err = levelAvail(combo, topology.Leaf); err != nil {
			return nil, err
		}
		if cell.AwareAvail, err = levelAvail(aware, topology.Leaf); err != nil {
			return nil, err
		}
		if topo.Levels() >= 2 {
			zoneLevel := topo.Levels() - 2
			if cell.ZoneOblivAvail, err = levelAvail(combo, zoneLevel); err != nil {
				return nil, err
			}
			if cell.ZoneAwareAvail, err = levelAvail(aware, zoneLevel); err != nil {
				return nil, err
			}
		}
		if topo.Levels() >= 3 {
			regionLevel := topo.Levels() - 3
			if cell.RegionObliv, err = levelAvail(combo, regionLevel); err != nil {
				return nil, err
			}
			if cell.RegionAware, err = levelAvail(aware, regionLevel); err != nil {
				return nil, err
			}
		}
		before, err := placement.DomainSpread(combo, topo)
		if err != nil {
			return nil, err
		}
		after, err := placement.DomainSpread(aware, topo)
		if err != nil {
			return nil, err
		}
		cell.MinSpreadBefore = before.MinDomains
		cell.MinSpreadAfter = after.MinDomains
		cells = append(cells, cell)
	}
	return cells, nil
}

// RenderDomainTable writes the comparison in the repo's table layout.
// The zone and region columns print oblivious/aware pairs, "-" on flat
// rows.
func RenderDomainTable(w io.Writer, cells []DomainCell) error {
	if _, err := fmt.Fprintf(w, "Node adversary vs whole-domain adversary (rack/zone/region) on Combo placements\n"); err != nil {
		return err
	}
	pair := func(obliv, aware int) string {
		if obliv < 0 {
			return "-"
		}
		return fmt.Sprintf("%d/%d", obliv, aware)
	}
	topoCol := func(c DomainCell) string {
		var col string
		switch {
		case c.Regions > 0:
			col = fmt.Sprintf("%dx%dx%d", c.Regions, c.Zones/c.Regions, c.Racks/c.Zones)
		case c.Zones > 0:
			col = fmt.Sprintf("%dx%d", c.Zones, c.Racks/c.Zones)
		default:
			col = fmt.Sprintf("%d", c.Racks)
		}
		if c.HotWeight > 1 {
			// Weighted row: availability columns are W0 − lost weight.
			col += fmt.Sprintf(" w%d", c.HotWeight)
		}
		return col
	}
	headers := []string{"n", "r", "s", "k", "b", "topo", "d",
		"Avail(node,k)", "Avail(rack,d) obliv", "Avail(rack,d) aware",
		"Avail(zone,d) ob/aw", "Avail(region,d) ob/aw", "minspread"}
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.N), fmt.Sprintf("%d", c.R), fmt.Sprintf("%d", c.S),
			fmt.Sprintf("%d", c.K), fmt.Sprintf("%d", c.B),
			topoCol(c), fmt.Sprintf("%d", c.D),
			fmt.Sprintf("%d", c.NodeAvail),
			fmt.Sprintf("%d", c.ObliviousAvail),
			fmt.Sprintf("%d", c.AwareAvail),
			pair(c.ZoneOblivAvail, c.ZoneAwareAvail),
			pair(c.RegionObliv, c.RegionAware),
			fmt.Sprintf("%d->%d", c.MinSpreadBefore, c.MinSpreadAfter),
		})
	}
	return renderTable(w, headers, rows)
}
