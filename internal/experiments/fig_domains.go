package experiments

import (
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/search"
	"repro/internal/topology"
)

// This experiment extends the paper's evaluation beyond its independent-
// failure model: the adversary fails whole racks (the correlated
// failure-domain setting of Mills, Chandrasekaran & Mittal,
// arXiv:1701.01539) instead of k free nodes. For each scenario the table
// contrasts, on the same DP-optimized Combo placement,
//
//   - Avail under the paper's node adversary (k worst nodes, exact),
//   - Avail under the domain adversary (d worst whole racks, exact) for
//     the domain-oblivious placement (abstract ids = physical nodes), and
//   - the same after the domain-aware spreading post-pass
//     (placement.SpreadAcrossDomains).
//
// The aware column is never worse than the oblivious column — the
// spreading pass guarantees it, and TestDomainTableAwareNeverWorse
// enforces it on every row.

// DomainScenario is one row of the domain-adversary table. K is chosen
// per scenario so the node and domain attacks are comparable (k ≈ the
// node count of the d largest racks).
type DomainScenario struct {
	N, R, S, K, B int
	Racks         int // flat rack count (topology.Uniform)
	D             int // whole-rack failure budget
}

// DomainCell is a computed row.
type DomainCell struct {
	DomainScenario
	NodeAvail       int // oblivious Combo vs k-node adversary
	ObliviousAvail  int // oblivious Combo vs d-rack adversary
	AwareAvail      int // spread Combo vs d-rack adversary
	MinSpreadBefore int // min distinct racks per object, oblivious
	MinSpreadAfter  int // min distinct racks per object, aware
}

// DomainOpts scales the experiment. Zero values select the default
// grid: constructible Combo placements on small Steiner orders, all
// adversaries exact and serial with residual-load pruning.
type DomainOpts struct {
	Scenarios []DomainScenario
	Budget    int64        // adversary search budget (0 = exact)
	Workers   int          // search workers; > 1 picks the parallel engines
	Bound     search.Bound // branch-and-bound pruning ablation (default residual)
}

// defaultDomainScenarios keeps every adversary exactly solvable in
// milliseconds while covering both Steiner orders, two rack widths, and
// one- and two-rack failures.
func defaultDomainScenarios() []DomainScenario {
	return []DomainScenario{
		{N: 9, R: 3, S: 2, K: 3, B: 12, Racks: 3, D: 1},
		{N: 9, R: 3, S: 2, K: 3, B: 24, Racks: 3, D: 1},
		// k = 6 makes the DP favor x = 0 partition chunks, which align
		// catastrophically with contiguous racks until the spreading
		// pass relabels them — the rows where aware strictly wins.
		{N: 12, R: 3, S: 2, K: 6, B: 8, Racks: 3, D: 1},
		{N: 12, R: 3, S: 2, K: 6, B: 16, Racks: 4, D: 1},
		{N: 13, R: 3, S: 2, K: 4, B: 26, Racks: 4, D: 1},
		{N: 13, R: 3, S: 2, K: 7, B: 26, Racks: 4, D: 2},
		{N: 13, R: 3, S: 3, K: 7, B: 26, Racks: 4, D: 2},
		{N: 15, R: 3, S: 2, K: 6, B: 35, Racks: 5, D: 2},
	}
}

// DomainTable computes the node-vs-domain adversary comparison.
func DomainTable(opts DomainOpts) ([]DomainCell, error) {
	scenarios := opts.Scenarios
	if len(scenarios) == 0 {
		scenarios = defaultDomainScenarios()
	}
	// Workers < 1 clamps to serial (not GOMAXPROCS, which is what
	// SearchOpts would make of a negative count): the zero value keeps
	// the table's historical serial, deterministic behavior.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	searchOpts := adversary.SearchOpts{Budget: opts.Budget, Workers: workers, Bound: opts.Bound}
	cells := make([]DomainCell, 0, len(scenarios))
	for _, sc := range scenarios {
		combo, _, _, err := placement.BuildDefaultCombo(sc.N, sc.R, sc.S, sc.K, sc.B)
		if err != nil {
			return nil, fmt.Errorf("experiments: combo for %+v: %w", sc, err)
		}
		topo, err := topology.Uniform(sc.N, sc.Racks)
		if err != nil {
			return nil, err
		}
		nodeRes, err := adversary.WorstCaseWith(combo, sc.S, sc.K, searchOpts)
		if err != nil {
			return nil, err
		}
		oblivRes, err := adversary.DomainWorstCaseWith(combo, topo, sc.S, sc.D, searchOpts)
		if err != nil {
			return nil, err
		}
		aware, _, err := placement.SpreadAcrossDomains(combo, topo, sc.S, sc.D)
		if err != nil {
			return nil, err
		}
		awareRes, err := adversary.DomainWorstCaseWith(aware, topo, sc.S, sc.D, searchOpts)
		if err != nil {
			return nil, err
		}
		before, err := placement.DomainSpread(combo, topo)
		if err != nil {
			return nil, err
		}
		after, err := placement.DomainSpread(aware, topo)
		if err != nil {
			return nil, err
		}
		cells = append(cells, DomainCell{
			DomainScenario:  sc,
			NodeAvail:       nodeRes.Avail(sc.B),
			ObliviousAvail:  oblivRes.Avail(sc.B),
			AwareAvail:      awareRes.Avail(sc.B),
			MinSpreadBefore: before.MinDomains,
			MinSpreadAfter:  after.MinDomains,
		})
	}
	return cells, nil
}

// RenderDomainTable writes the comparison in the repo's table layout.
func RenderDomainTable(w io.Writer, cells []DomainCell) error {
	if _, err := fmt.Fprintf(w, "Node adversary vs domain (whole-rack) adversary on Combo placements\n"); err != nil {
		return err
	}
	headers := []string{"n", "r", "s", "k", "b", "racks", "d",
		"Avail(node,k)", "Avail(rack,d) obliv", "Avail(rack,d) aware", "minspread"}
	rows := make([][]string, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.N), fmt.Sprintf("%d", c.R), fmt.Sprintf("%d", c.S),
			fmt.Sprintf("%d", c.K), fmt.Sprintf("%d", c.B),
			fmt.Sprintf("%d", c.Racks), fmt.Sprintf("%d", c.D),
			fmt.Sprintf("%d", c.NodeAvail),
			fmt.Sprintf("%d", c.ObliviousAvail),
			fmt.Sprintf("%d", c.AwareAvail),
			fmt.Sprintf("%d->%d", c.MinSpreadBefore, c.MinSpreadAfter),
		})
	}
	return renderTable(w, headers, rows)
}
