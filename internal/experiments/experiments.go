// Package experiments regenerates every figure of the paper's evaluation:
//
//	Fig. 2  — tightness of the Simple(x, λ) availability lower bound
//	Fig. 3  — sensitivity of Combo to the planned failure count k
//	Fig. 4  — Steiner-system orders n_x used per (n, r, x)
//	Fig. 5  — capacity-gap CDFs with up to 3 chunks, μ = 1
//	Fig. 6  — capacity-gap CDFs for r = 5 with μ <= 5 and μ <= 10
//	Fig. 7  — accuracy of prAvail vs the empirical average availability
//	Fig. 8  — prAvail/b of Random placement across k and s
//	Fig. 9  — Combo vs Random: the paper's main result tables
//	Fig. 10 — per-x breakdown of Combo's advantage (r = s = 3)
//	Fig. 11 — the s = 1 decay law of Random placement (Lemma 4)
//
// Beyond the paper, DomainTable contrasts the node adversary with a
// correlated whole-rack adversary on the same Combo placements, before
// and after the domain-aware spreading post-pass (see
// internal/topology).
//
// Analytic figures (3, 4, 8, 9, 10, 11) reproduce the paper's numbers
// exactly (modulo the documented Fig. 4 OCR substitution); simulation
// figures (2, 7) reproduce distributions and shapes, controlled by
// explicit scale options so tests and benchmarks stay fast while the CLI
// can run the full-scale versions.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// renderTable writes a padded text table.
func renderTable(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	for i := range headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// doublings returns start, 2·start, ... up to and including limit.
func doublings(start, limit int) []int {
	var out []int
	for b := start; b <= limit; b *= 2 {
		out = append(out, b)
	}
	return out
}

// pct formats a percentage with sign, rounding toward zero like the
// paper's integer tables.
func pct(v float64) string {
	return fmt.Sprintf("%d", int(v))
}
