package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestFig9ReproducesPaperCells(t *testing.T) {
	// Spot checks against the published Fig. 9a (n = 71). The paper
	// prints integer percentages; allow ±2 points for rounding-convention
	// and catalog differences.
	res, err := Fig9(Fig9Opts{N: 71, BMax: 38400})
	if err != nil {
		t.Fatal(err)
	}
	// The paper prints truncated integer percentages; allow ±1 for the
	// truncation convention. r = 4 cells are excluded: the paper's
	// (n=71, r=4, x=1) order n_1 = 70 violates divisibility and this
	// repository substitutes 64 (see DESIGN.md).
	// Cells where b − prAvail is large reproduce to ±1 point (the
	// paper truncates to integers). Cells with b − prAvail of only a few
	// objects amplify a ±1 difference in the Vuln crossing into tens of
	// points and carry a wider tolerance (see EXPERIMENTS.md).
	checks := []struct {
		r, s, k, b int
		want, tol  float64
	}{
		{2, 2, 2, 2400, 85, 1}, // headline example quoted in the paper text
		{2, 2, 2, 600, 75, 1},
		{2, 2, 7, 600, 16, 1},
		{2, 2, 5, 38400, 28, 1},
		{3, 2, 2, 600, 83, 1},
		{3, 3, 3, 600, 66, 1},
		{3, 3, 3, 2400, 66, 1},
		{3, 3, 7, 2400, -100, 1},
		{3, 3, 7, 38400, 40, 1},
		{5, 5, 5, 600, 50, 1},
		{5, 3, 3, 2400, 83, 1},
		{5, 2, 7, 38400, -22, 4}, // bulk-regime tail crossing: ±4
	}
	for _, c := range checks {
		cell, ok := res.Cell(c.r, c.s, c.k, c.b)
		if !ok {
			t.Fatalf("missing cell r=%d s=%d k=%d b=%d", c.r, c.s, c.k, c.b)
		}
		if math.Abs(cell.Percent-c.want) > c.tol {
			t.Errorf("Fig9 n=71 r=%d s=%d k=%d b=%d: got %.1f%%, paper %d%%",
				c.r, c.s, c.k, c.b, cell.Percent, int(c.want))
		}
	}
	// Hypersensitive cell (b − prAvail ≈ 6 objects): assert agreement at
	// the prAvail level instead of the amplified percentage.
	cell, ok := res.Cell(5, 5, 7, 38400)
	if !ok {
		t.Fatal("missing cell r=5 s=5 k=7 b=38400")
	}
	if d := cell.B - cell.PrAvail; d < 5 || d > 8 {
		t.Errorf("r=5 s=5 k=7 b=38400: b − prAvail = %d, paper implies ~7", d)
	}

	// Entire rows of Fig. 9a as printed, k = 2..7 left to right.
	// Rows at b = 38400 sit in the bulk regime of the Vuln tail, where
	// float conventions shift the crossing by tens of objects; they get
	// ±2 (see the large-b note above), the rest ±1.
	rows := []struct {
		r, s, b int
		tol     float64
		want    []float64
	}{
		{3, 2, 600, 1, []float64{83, 72, 66, 61, 55, 51}},
		{3, 2, 38400, 2, []float64{30, 21, 15, 11, 8, 5}},
		{2, 2, 19200, 2, []float64{60, 48, 42, 37, 34, 31}},
		{2, 2, 1200, 1, []float64{80, 70, 60, 52, 46, 40}},
	}
	for _, row := range rows {
		for i, want := range row.want {
			k := row.s + i
			cell, ok := res.Cell(row.r, row.s, k, row.b)
			if !ok {
				t.Fatalf("missing cell r=%d s=%d k=%d b=%d", row.r, row.s, k, row.b)
			}
			if math.Abs(cell.Percent-want) > row.tol {
				t.Errorf("Fig9a row r=%d s=%d b=%d k=%d: got %.1f%%, paper %d%%",
					row.r, row.s, row.b, k, cell.Percent, int(want))
			}
		}
	}
}

func TestFig9bReproducesPaperCells(t *testing.T) {
	// Spot checks against Fig. 9b (n = 257).
	res, err := Fig9(Fig9Opts{N: 257, BMax: 38400})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		r, s, k, b int
		want, tol  float64
	}{
		{2, 2, 2, 600, 66, 1},
		{2, 2, 8, 38400, 36, 1},
		{3, 2, 2, 2400, 80, 1},
		{3, 3, 3, 2400, 66, 1},
		{5, 5, 5, 600, 50, 1},
		{5, 2, 2, 2400, 85, 1},
		// b − prAvail is only a handful of objects here; ±1 in the Vuln
		// crossing swings the percentage widely (paper prints -100).
		{2, 2, 8, 600, -100, 60},
	}
	for _, c := range checks {
		cell, ok := res.Cell(c.r, c.s, c.k, c.b)
		if !ok {
			t.Fatalf("missing cell r=%d s=%d k=%d b=%d", c.r, c.s, c.k, c.b)
		}
		if math.Abs(cell.Percent-c.want) > c.tol {
			t.Errorf("Fig9 n=257 r=%d s=%d k=%d b=%d: got %.1f%%, paper %d%%",
				c.r, c.s, c.k, c.b, cell.Percent, int(c.want))
		}
	}
}

func TestFig9StructureAndRender(t *testing.T) {
	res, err := Fig9(Fig9Opts{N: 71, BMax: 1200, KMax: 4, Rs: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	// r=2: s=2, k=2..4, b in {600,1200} -> 6 cells; r=3: s=2 and s=3.
	// s=2: k=2..4 (3), s=3: k=3..4 (2); (3+3+2)*2 = 16 cells total.
	if len(res.Cells) != 16 {
		t.Errorf("cell count = %d, want 16", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.LB < 0 || c.LB > int64(c.B) {
			t.Errorf("cell %+v: LB out of range", c)
		}
		if c.PrAvail < 0 || c.PrAvail > c.B {
			t.Errorf("cell %+v: PrAvail out of range", c)
		}
		switch c.Outcome {
		case 'W', 'T', 'L':
		default:
			t.Errorf("cell %+v: bad outcome", c)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "r = 2, s = 2") {
		t.Error("render missing sub-table header")
	}
	if _, err := Fig9(Fig9Opts{N: 71, BMax: 10}); err == nil {
		t.Error("BMax below 600 accepted")
	}
}

func TestFig3TunedMatchesOptimalAtK(t *testing.T) {
	points, err := Fig3(Fig3Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 15 { // 3 configs x 5 k'
		t.Fatalf("point count = %d, want 15", len(points))
	}
	for _, p := range points {
		if p.KPrime == 6 && math.Abs(p.RatioPercent-100) > 1e-9 {
			t.Errorf("n=%d b=%d: ratio at k'=k is %.2f%%, want 100%%", p.N, p.B, p.RatioPercent)
		}
		if p.RatioPercent > 100+1e-9 {
			t.Errorf("n=%d b=%d k'=%d: tuned spec beats the optimal spec (%.2f%%)",
				p.N, p.B, p.KPrime, p.RatioPercent)
		}
		// Fig. 3's y-axis starts at 99%: sensitivity is low.
		if p.RatioPercent < 95 {
			t.Errorf("n=%d b=%d k'=%d: ratio %.2f%% far below the paper's ~99%% floor",
				p.N, p.B, p.KPrime, p.RatioPercent)
		}
	}
	var buf bytes.Buffer
	if err := RenderFig3(&buf, points); err != nil {
		t.Fatal(err)
	}
}

func TestFig4MatchesCatalog(t *testing.T) {
	entries, err := Fig4(nil)
	if err != nil {
		t.Fatal(err)
	}
	find := func(n, r, x int) Fig4Entry {
		for _, e := range entries {
			if e.N == n && e.R == r && e.X == x {
				return e
			}
		}
		t.Fatalf("missing entry n=%d r=%d x=%d", n, r, x)
		return Fig4Entry{}
	}
	// Paper Fig. 4 values (with the documented 70 -> 64 substitution).
	if got := find(71, 3, 1).Order; got != 69 {
		t.Errorf("(71, 3, 1) order = %d, want 69", got)
	}
	if got := find(31, 5, 3).Order; got != 23 {
		t.Errorf("(31, 5, 3) order = %d, want 23", got)
	}
	if got := find(257, 5, 2).Order; got != 257 {
		t.Errorf("(257, 5, 2) order = %d, want 257", got)
	}
	if got := find(71, 4, 1).Order; got != 64 {
		t.Errorf("(71, 4, 1) order = %d, want 64 (documented substitution)", got)
	}
	var buf bytes.Buffer
	if err := RenderFig4(&buf, entries); err != nil {
		t.Fatal(err)
	}
}

func TestFig8Shapes(t *testing.T) {
	points, err := Fig8(Fig8Opts{B: 4800, KMax: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Monotone in k per (s, n, r); fractions within [0, 1].
	last := make(map[[3]int]float64)
	for _, p := range points {
		if p.Fraction < 0 || p.Fraction > 1 {
			t.Errorf("fraction %g out of range at %+v", p.Fraction, p)
		}
		key := [3]int{p.S, p.N, p.R}
		if prev, ok := last[key]; ok && p.Fraction > prev+1e-12 {
			t.Errorf("fraction increased with k at %+v", p)
		}
		last[key] = p.Fraction
	}
	// s = 1 should be far worse than s = r = 5 at the same k (Fig. 8).
	var s1, s5 float64
	for _, p := range points {
		if p.N == 71 && p.R == 5 && p.K == 5 {
			if p.S == 1 {
				s1 = p.Fraction
			}
			if p.S == 5 {
				s5 = p.Fraction
			}
		}
	}
	if s1 >= s5 {
		t.Errorf("s=1 fraction %g not below s=5 fraction %g", s1, s5)
	}
	var buf bytes.Buffer
	if err := RenderFig8(&buf, points); err != nil {
		t.Fatal(err)
	}
}

func TestFig10ComboDominatesSimple(t *testing.T) {
	cells, err := Fig10(Fig10Opts{N: 31, BMax: 4800, KMin: 3, KMax: 5})
	if err != nil {
		t.Fatal(err)
	}
	type key struct{ b, k int }
	bestSimple := make(map[key]int64)
	combo := make(map[key]int64)
	for _, c := range cells {
		k := key{c.B, c.K}
		if c.X >= 0 {
			if c.LB > bestSimple[k] {
				bestSimple[k] = c.LB
			}
		} else {
			combo[k] = c.LB
		}
	}
	for k, cb := range combo {
		if cb < bestSimple[k] {
			t.Errorf("b=%d k=%d: Combo bound %d below best Simple bound %d",
				k.b, k.k, cb, bestSimple[k])
		}
	}
	var buf bytes.Buffer
	if err := RenderFig10(&buf, cells); err != nil {
		t.Fatal(err)
	}
}

func TestFig10PaperCell(t *testing.T) {
	// Fig. 10a (n = 31, r = s = 3): at b = 4800, k in {5, 6}, Combo
	// exceeds every Simple(x, λ) column (44 and 36 in the paper).
	cells, err := Fig10(Fig10Opts{N: 31, BMax: 4800, KMin: 5, KMax: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{5, 6} {
		var comboPct float64
		maxSimple := math.Inf(-1)
		for _, c := range cells {
			if c.B != 4800 || c.K != k {
				continue
			}
			if c.X < 0 {
				comboPct = c.Percent
			} else if c.Percent > maxSimple {
				maxSimple = c.Percent
			}
		}
		if comboPct <= maxSimple {
			t.Errorf("k=%d: Combo %.1f%% does not exceed best Simple %.1f%% (paper shows it must)",
				k, comboPct, maxSimple)
		}
	}
}

func TestFig10bPaperValues(t *testing.T) {
	// Fig. 10b (n = 71, r = s = 3), k = 3 column, from the published
	// sub-tables: at b = 38400 the Simple(1, λ) placement needs λ = 50
	// and collapses to -614%, while Simple(2, 1) and the Combo sit at 85%.
	cells, err := Fig10(Fig10Opts{N: 71, BMax: 38400, KMin: 3, KMax: 3})
	if err != nil {
		t.Fatal(err)
	}
	var x1, x2, combo *Fig10Cell
	for i := range cells {
		c := &cells[i]
		if c.B != 38400 || c.K != 3 {
			continue
		}
		switch c.X {
		case 1:
			x1 = c
		case 2:
			x2 = c
		case -1:
			combo = c
		}
	}
	if x1 == nil || x2 == nil || combo == nil {
		t.Fatal("missing Fig. 10 cells")
	}
	if x1.Lambda != 50 {
		t.Errorf("x=1 λ = %d, want 50", x1.Lambda)
	}
	if math.Abs(x1.Percent-(-614)) > 2 {
		t.Errorf("x=1 percent = %.1f, paper -614", x1.Percent)
	}
	if x2.Lambda != 1 {
		t.Errorf("x=2 λ = %d, want 1", x2.Lambda)
	}
	if math.Abs(x2.Percent-85) > 1 {
		t.Errorf("x=2 percent = %.1f, paper 85", x2.Percent)
	}
	if math.Abs(combo.Percent-85) > 1 {
		t.Errorf("combo percent = %.1f, paper 85", combo.Percent)
	}
	// At b = 600 all three columns print 66 in the paper.
	cells600, err := Fig10(Fig10Opts{N: 71, BMax: 600, KMin: 3, KMax: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells600 {
		if math.Abs(c.Percent-66.7) > 1.5 {
			t.Errorf("b=600 cell (x=%d) percent = %.1f, paper 66", c.X, c.Percent)
		}
	}
}

func TestFig11Decay(t *testing.T) {
	points := Fig11(0)
	if len(points) != 40 {
		t.Fatalf("points = %d, want 40", len(points))
	}
	for _, p := range points {
		if p.Fraction <= 0 || p.Fraction > 1 {
			t.Errorf("fraction %g out of range", p.Fraction)
		}
	}
	// Larger n decays slower at the same r, k.
	var n71, n257 float64
	for _, p := range points {
		if p.R == 3 && p.K == 5 {
			if p.N == 71 {
				n71 = p.Fraction
			}
			if p.N == 257 {
				n257 = p.Fraction
			}
		}
	}
	if n257 <= n71 {
		t.Errorf("n=257 fraction %g should exceed n=71 fraction %g", n257, n71)
	}
	var buf bytes.Buffer
	if err := RenderFig11(&buf, points); err != nil {
		t.Fatal(err)
	}
}

func TestFig2SmallExact(t *testing.T) {
	// Scaled-down Fig. 2: STS(13) placements attacked exactly.
	points, err := Fig2(Fig2Opts{
		N: 13, R: 3, X: 1,
		Bs:     []int{26, 52},
		SKs:    [][2]int{{2, 2}, {2, 3}, {3, 3}},
		Budget: -1, // unbounded: exact
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6", len(points))
	}
	for _, p := range points {
		if !p.Exact {
			t.Errorf("%+v: expected exact adversary", p)
		}
		if p.Gap < 0 {
			t.Errorf("%+v: Avail below the Lemma 2 bound", p)
		}
	}
	var buf bytes.Buffer
	if err := RenderFig2(&buf, points); err != nil {
		t.Fatal(err)
	}
}

func TestFig5CDFMonotone(t *testing.T) {
	curves, err := Fig5(Fig5Opts{NLo: 50, NHi: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 14 { // Σ_{r=2..5} r = 14 (x = 0..r-1)
		t.Fatalf("curves = %d, want 14", len(curves))
	}
	for _, c := range curves {
		prev := -1.0
		for _, v := range c.CDF {
			if v < prev-1e-12 {
				t.Errorf("r=%d x=%d: CDF not monotone", c.R, c.X)
				break
			}
			prev = v
		}
		if c.CDF[len(c.CDF)-1] < 1-1e-12 {
			t.Errorf("r=%d x=%d: CDF does not reach 1", c.R, c.X)
		}
	}
}

func TestFig6MuRelaxationHelps(t *testing.T) {
	curves, err := Fig6(Fig5Opts{NLo: 50, NHi: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d, want 4", len(curves))
	}
	// μ <= 10 must dominate μ <= 5 pointwise for the same (r, x).
	for _, x := range []int{2, 3} {
		var mu5, mu10 []float64
		for _, c := range curves {
			if c.X != x {
				continue
			}
			if c.MaxMu == 5 {
				mu5 = c.CDF
			} else {
				mu10 = c.CDF
			}
		}
		for i := range mu5 {
			if mu10[i] < mu5[i]-1e-12 {
				t.Errorf("x=%d: μ<=10 CDF below μ<=5 at threshold %d", x, i)
				break
			}
		}
	}
	var buf bytes.Buffer
	if err := RenderFig5(&buf, curves); err != nil {
		t.Fatal(err)
	}
}

func TestFig7SmallScale(t *testing.T) {
	points, err := Fig7(Fig7Opts{
		Trials: 2,
		Bs:     []int{150},
		Configs: []struct{ N, R, S, KLo, KHi int }{
			{31, 5, 3, 3, 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d, want 1", len(points))
	}
	p := points[0]
	if p.AvgAvail <= 0 || p.AvgAvail > float64(p.B) {
		t.Errorf("avgAvail %g out of range", p.AvgAvail)
	}
	if p.PrAvail < 0 || p.PrAvail > p.B {
		t.Errorf("prAvail %d out of range", p.PrAvail)
	}
	var buf bytes.Buffer
	if err := RenderFig7(&buf, points); err != nil {
		t.Fatal(err)
	}
}
