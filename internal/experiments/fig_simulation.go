package experiments

import (
	"fmt"
	"io"

	"repro/internal/adversary"
	"repro/internal/capacity"
	"repro/internal/design"
	"repro/internal/placement"
	"repro/internal/randplace"
)

// ---------------------------------------------------------------------------
// Fig. 2 — tightness of the Lemma 2 lower bound on concrete placements.
// ---------------------------------------------------------------------------

// Fig2Point reports Avail(π) − lbAvail_si(x, λ) for one (b, s, k): the
// paper's Fig. 2 measures this gap for Simple(1, λ) placements on STS
// chunks with n = 71, r = 3.
type Fig2Point struct {
	B, S, K int
	Lambda  int
	Avail   int   // b − worst-case failures (simulated adversary)
	LB      int64 // Lemma 2 bound
	Gap     int64 // Avail − LB (>= 0 when Exact)
	Exact   bool  // adversary search completed exactly
}

// Fig2Opts scales the simulation. Zero values choose a configuration
// faithful to the paper but tractable by default: the full paper scale
// (b up to 9600, k up to 5) is selected with Full.
type Fig2Opts struct {
	N, R, X int      // default 71, 3, 1 (the paper's panel)
	Bs      []int    // default 600..2400; Full: 600..9600
	SKs     [][2]int // (s, k) series; default s=2,k=2..4 and s=3,k=3..4
	Budget  int64    // adversary B&B budget per point; 0 = exact (may be slow)
	Full    bool
}

// Fig2 builds the Simple(x, λ) placement for each b (λ minimal per
// Eqn. 1) and attacks it with the worst-case adversary.
func Fig2(opts Fig2Opts) ([]Fig2Point, error) {
	if opts.N == 0 {
		opts.N, opts.R, opts.X = 71, 3, 1
	}
	if len(opts.Bs) == 0 {
		if opts.Full {
			opts.Bs = doublings(600, 9600)
		} else {
			opts.Bs = doublings(600, 2400)
		}
	}
	if len(opts.SKs) == 0 {
		if opts.Full {
			opts.SKs = [][2]int{{2, 2}, {2, 3}, {2, 4}, {2, 5}, {3, 3}, {3, 4}, {3, 5}}
		} else {
			opts.SKs = [][2]int{{2, 2}, {2, 3}, {2, 4}, {3, 3}, {3, 4}}
		}
	}
	if opts.Budget == 0 && !opts.Full {
		opts.Budget = 2_000_000
	}
	t := opts.X + 1
	order, ok := bestOrder(t, opts.R, opts.N)
	if !ok {
		return nil, fmt.Errorf("experiments: no constructible %d-(·,%d,1) order <= %d", t, opts.R, opts.N)
	}
	capPerMu, integral := placement.SimpleCapacity([]int{order}, opts.R, opts.X, 1, 1)
	if !integral {
		return nil, fmt.Errorf("experiments: non-integral capacity at order %d", order)
	}
	var out []Fig2Point
	for _, b := range opts.Bs {
		lambda, err := placement.MinimalLambda(int64(b), capPerMu, 1)
		if err != nil {
			return nil, err
		}
		pl, err := placement.BuildSimple(opts.N, opts.R, opts.X, lambda, b,
			placement.SimpleOptions{Orders: []int{order}})
		if err != nil {
			return nil, err
		}
		for _, sk := range opts.SKs {
			s, k := sk[0], sk[1]
			res, err := adversary.WorstCaseParallel(pl, s, k, opts.Budget, 0)
			if err != nil {
				return nil, err
			}
			avail := res.Avail(b)
			lb := placement.LBAvailSimple(int64(b), k, s, opts.X, lambda)
			out = append(out, Fig2Point{
				B: b, S: s, K: k, Lambda: lambda,
				Avail: avail, LB: lb, Gap: int64(avail) - lb, Exact: res.Exact,
			})
		}
	}
	return out, nil
}

func bestOrder(t, r, n int) (int, bool) {
	// The experiment materializes placements, so only constructible
	// orders qualify.
	return design.BestConstructibleOrder(t, r, n)
}

// RenderFig2 writes the gap series.
func RenderFig2(w io.Writer, points []Fig2Point) error {
	if _, err := fmt.Fprintln(w, "Fig. 2: Avail(π) − lbAvail_si(x, λ) for Simple(1, λ), n = 71, r = 3"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		exact := "exact"
		if !p.Exact {
			exact = "bound"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.B), fmt.Sprintf("%d", p.S), fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%d", p.Lambda), fmt.Sprintf("%d", p.Avail),
			fmt.Sprintf("%d", p.LB), fmt.Sprintf("%d", p.Gap), exact,
		})
	}
	return renderTable(w, []string{"b", "s", "k", "lambda", "Avail", "lb", "gap", "mode"}, rows)
}

// ---------------------------------------------------------------------------
// Figs. 5 and 6 — capacity-gap CDFs.
// ---------------------------------------------------------------------------

// Fig5Curve is one CDF curve: for (r, x), the fraction of system sizes
// whose capacity gap is at most each threshold.
type Fig5Curve struct {
	R, X, MaxMu int
	Thresholds  []float64
	CDF         []float64
}

// Fig5Opts configures the sweep; zeros choose the paper's range
// n ∈ [50, 800] with up to 3 chunks.
type Fig5Opts struct {
	NLo, NHi, M int
}

// Fig5 reproduces the μ = 1 capacity-gap CDFs for r = 2..5, x = 0..r-1.
func Fig5(opts Fig5Opts) ([]Fig5Curve, error) {
	return capacityGapCurves(opts, 1, allRXPairs())
}

// Fig6 reproduces the μ > 1 relaxation for r = 5, x ∈ {2, 3}, with
// μ <= 5 and μ <= 10.
func Fig6(opts Fig5Opts) ([]Fig5Curve, error) {
	pairs := [][2]int{{5, 2}, {5, 3}}
	mu5, err := capacityGapCurves(opts, 5, pairs)
	if err != nil {
		return nil, err
	}
	mu10, err := capacityGapCurves(opts, 10, pairs)
	if err != nil {
		return nil, err
	}
	return append(mu5, mu10...), nil
}

func allRXPairs() [][2]int {
	var pairs [][2]int
	for r := 2; r <= 5; r++ {
		for x := 0; x < r; x++ {
			pairs = append(pairs, [2]int{r, x})
		}
	}
	return pairs
}

func capacityGapCurves(opts Fig5Opts, maxMu int, pairs [][2]int) ([]Fig5Curve, error) {
	if opts.NLo == 0 {
		opts.NLo, opts.NHi = 50, 800
	}
	if opts.M == 0 {
		opts.M = 3
	}
	thresholds := make([]float64, 21)
	for i := range thresholds {
		thresholds[i] = float64(i) / 20
	}
	var out []Fig5Curve
	for _, rx := range pairs {
		r, x := rx[0], rx[1]
		gaps, err := capacity.GapCurve(x+1, r, opts.NLo, opts.NHi, opts.M, maxMu)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig5Curve{
			R: r, X: x, MaxMu: maxMu,
			Thresholds: thresholds,
			CDF:        capacity.CDF(gaps, thresholds),
		})
	}
	return out, nil
}

// RenderFig5 writes CDF curves (Fig. 5 when all MaxMu = 1, Fig. 6
// otherwise).
func RenderFig5(w io.Writer, curves []Fig5Curve) error {
	if _, err := fmt.Fprintln(w, "Figs. 5/6: capacity-gap CDFs (fraction of n in range with gap <= threshold)"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(curves)*4)
	for _, c := range curves {
		for i, th := range c.Thresholds {
			if i%4 != 0 { // sample the curve for compact output
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", c.R), fmt.Sprintf("%d", c.X), fmt.Sprintf("%d", c.MaxMu),
				fmt.Sprintf("%.2f", th), fmt.Sprintf("%.3f", c.CDF[i]),
			})
		}
	}
	return renderTable(w, []string{"r", "x", "maxMu", "gap<=", "fraction"}, rows)
}

// ---------------------------------------------------------------------------
// Fig. 7 — accuracy of prAvail against the empirical average.
// ---------------------------------------------------------------------------

// Fig7Point compares the analytic prAvail to the empirical average
// availability of Random placements under the worst-case adversary.
type Fig7Point struct {
	N, R, S, K, B int
	PrAvail       int
	AvgAvail      float64
	ErrorPercent  float64 // 100·(PrAvail − AvgAvail)/AvgAvail
	Exact         bool
}

// Fig7Opts scales the experiment. The paper uses 20 trials and b up to
// 9600; defaults are reduced for tractability and Full selects the paper
// scale.
type Fig7Opts struct {
	Trials  int
	Bs      []int
	Budget  int64
	Seed    int64
	Full    bool
	Configs []struct{ N, R, S, KLo, KHi int }
}

// Fig7 reproduces Fig. 7.
func Fig7(opts Fig7Opts) ([]Fig7Point, error) {
	if opts.Trials == 0 {
		opts.Trials = 20
		if !opts.Full {
			opts.Trials = 3
		}
	}
	if len(opts.Bs) == 0 {
		if opts.Full {
			opts.Bs = doublings(150, 9600)
		} else {
			opts.Bs = doublings(150, 600)
		}
	}
	if opts.Budget == 0 && !opts.Full {
		opts.Budget = 500_000
	}
	if opts.Seed == 0 {
		opts.Seed = 20150610
	}
	if len(opts.Configs) == 0 {
		opts.Configs = []struct{ N, R, S, KLo, KHi int }{
			{31, 5, 3, 3, 5},
			{71, 5, 2, 2, 5},
		}
		if !opts.Full {
			opts.Configs[0].KHi = 4
			opts.Configs[1].KHi = 3
		}
	}
	var out []Fig7Point
	for _, cfg := range opts.Configs {
		for k := cfg.KLo; k <= cfg.KHi; k++ {
			for _, b := range opts.Bs {
				p := placement.Params{N: cfg.N, B: b, R: cfg.R, S: cfg.S, K: k}
				pr, err := randplace.PrAvailTable(p)
				if err != nil {
					return nil, err
				}
				avg, err := randplace.AvgAvail(p, opts.Trials, opts.Seed, opts.Budget)
				if err != nil {
					return nil, err
				}
				pt := Fig7Point{
					N: cfg.N, R: cfg.R, S: cfg.S, K: k, B: b,
					PrAvail: pr, AvgAvail: avg.Mean, Exact: avg.Exact,
				}
				if avg.Mean > 0 {
					pt.ErrorPercent = 100 * (float64(pr) - avg.Mean) / avg.Mean
				}
				out = append(out, pt)
			}
		}
	}
	return out, nil
}

// RenderFig7 writes the error series.
func RenderFig7(w io.Writer, points []Fig7Point) error {
	if _, err := fmt.Fprintln(w, "Fig. 7: (prAvail − avgAvail)/avgAvail as a percentage"); err != nil {
		return err
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		exact := "exact"
		if !p.Exact {
			exact = "approx"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.N), fmt.Sprintf("%d", p.R), fmt.Sprintf("%d", p.S),
			fmt.Sprintf("%d", p.K), fmt.Sprintf("%d", p.B),
			fmt.Sprintf("%d", p.PrAvail), fmt.Sprintf("%.1f", p.AvgAvail),
			fmt.Sprintf("%.1f", p.ErrorPercent), exact,
		})
	}
	return renderTable(w, []string{"n", "r", "s", "k", "b", "prAvail", "avgAvail", "err %", "adversary"}, rows)
}
