package controller

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/placement"
	"repro/internal/topology"
)

// checkpointVersion guards the journal format; Decode rejects files
// written by an incompatible controller.
const checkpointVersion = 1

// InFlight is the journaled record of the one move currently inside
// the two-phase machine. Its phase decides crash recovery: roll back
// (Abort) below PhaseAdded, roll forward (DropOld + apply) at it.
type InFlight struct {
	Move  Move  `json:"move"`
	Phase Phase `json:"phase"`
}

// Checkpoint is the controller's serialized state: everything a fresh
// process needs to resume reconciling — the cluster (topology spec
// carries weights and caps), the current logical placement, per-node
// statuses, how many mutations of the input stream were consumed, and
// the in-flight move with its journaled phase and the step's
// pre-migration guarantee. Written write-ahead (before every actuation
// phase transition) via an fsync'd atomic rename, so the file on disk
// is always a consistent state at most one actuation call behind the
// physical cluster.
type Checkpoint struct {
	Version  int          `json:"version"`
	N        int          `json:"n"`
	R        int          `json:"r"`
	S        int          `json:"s"`
	DFail    int          `json:"dfail"`
	Level    int          `json:"level"`
	MaxMoves int          `json:"maxMoves"`
	Topo     string       `json:"topo"` // topology.Spec round-trip (weights, caps)
	Status   []NodeStatus `json:"status"`
	Objects  [][]int      `json:"objects"` // replica node lists per object
	Applied  int          `json:"applied"` // mutations consumed from the stream
	Baseline int          `json:"baseline"`
	InFlight *InFlight    `json:"inFlight,omitempty"`
}

// Encode serializes the checkpoint.
func (ck *Checkpoint) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("controller: encoding checkpoint: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeCheckpoint parses and validates a checkpoint: the topology
// spec must parse, the placement must validate against it, statuses
// must cover every node, and an in-flight record must name a known
// phase and in-range move. Anything else is a corrupt or incompatible
// journal, reported rather than half-loaded.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := json.Unmarshal(data, ck); err != nil {
		return nil, fmt.Errorf("controller: decoding checkpoint: %w", err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("controller: checkpoint version %d, want %d", ck.Version, checkpointVersion)
	}
	if _, _, _, err := ck.restore(); err != nil {
		return nil, err
	}
	return ck, nil
}

// restore materializes the checkpoint's topology and placement and
// validates the rest of the record against them.
func (ck *Checkpoint) restore() (*topology.Topology, *placement.Placement, []NodeStatus, error) {
	topo, err := topology.ParseSpec(ck.N, ck.Topo)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("controller: checkpoint topology: %w", err)
	}
	pl := placement.NewPlacement(ck.N, ck.R)
	for obj, nodes := range ck.Objects {
		if err := pl.Add(nodes); err != nil {
			return nil, nil, nil, fmt.Errorf("controller: checkpoint object %d: %w", obj, err)
		}
	}
	if err := pl.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("controller: checkpoint placement: %w", err)
	}
	if len(ck.Status) != ck.N {
		return nil, nil, nil, fmt.Errorf("controller: checkpoint has %d statuses for %d nodes", len(ck.Status), ck.N)
	}
	status := make([]NodeStatus, ck.N)
	for nd, st := range ck.Status {
		if st != NodeActive && st != NodeDraining && st != NodeFailed {
			return nil, nil, nil, fmt.Errorf("controller: checkpoint node %d has unknown status %d", nd, st)
		}
		status[nd] = st
	}
	if ck.Applied < 0 {
		return nil, nil, nil, fmt.Errorf("controller: checkpoint applied %d < 0", ck.Applied)
	}
	if fl := ck.InFlight; fl != nil {
		switch fl.Phase {
		case PhaseIntent, PhasePrepared, PhaseAdded:
		default:
			return nil, nil, nil, fmt.Errorf("controller: checkpoint in-flight phase %q unknown", fl.Phase)
		}
		m := fl.Move
		if m.Obj < 0 || m.Obj >= pl.B() || m.From < 0 || m.From >= ck.N || m.To < 0 || m.To >= ck.N {
			return nil, nil, nil, fmt.Errorf("controller: checkpoint in-flight move %v out of range", m)
		}
	}
	return topo, pl, status, nil
}

// writeFileSync writes data to path atomically and durably: temp file
// in the same directory, fsync, rename over path, fsync the directory.
// A crash at any point leaves either the old or the new checkpoint —
// never a torn one. It is the one function the journalfsync analyzer
// admits raw os file mutation in; everything else routes through it.
//
//replicalint:journal-writer
func writeFileSync(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("controller: journal temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("controller: journal write: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("controller: journal fsync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("controller: journal close: %w", err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		return cleanup(fmt.Errorf("controller: journal rename: %w", err))
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best effort: some filesystems reject directory fsync
		d.Close()
	}
	return nil
}

// LoadCheckpoint reads and validates the journal at path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("controller: reading journal: %w", err)
	}
	return DecodeCheckpoint(data)
}
