package controller

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/placement"
	"repro/internal/topology"
)

// ringPlacement lays object i on nodes {i, i+1, ..., i+r-1} mod n — a
// simple deterministic placement for controller-semantics tests.
func ringPlacement(t testing.TB, n, r, b int) *placement.Placement {
	t.Helper()
	pl := placement.NewPlacement(n, r)
	for i := 0; i < b; i++ {
		nodes := make([]int, r)
		for j := range nodes {
			nodes[j] = (i + j) % n
		}
		if err := pl.Add(nodes); err != nil {
			t.Fatal(err)
		}
	}
	return pl
}

// testOpts keeps unit tests fast: short call deadlines, no real sleeps.
func testOpts() Options {
	return Options{
		CallTimeout: 100 * time.Millisecond,
		Backoff:     time.Millisecond,
		Sleep:       func(time.Duration) {},
	}
}

// opErrActuator injects faults at named operations ("prepare", "add",
// "drop", "abort"): fail[op] clean failures before the op, hang[op]
// blocks until the call deadline, crash[op] simulates the process
// dying at the Nth call to op (optionally after performing it).
type opErrActuator struct {
	inner Actuator
	mu    sync.Mutex
	fail  map[string]int
	hang  map[string]int
	crash map[string]crashPoint
	seen  map[string]int
}

type crashPoint struct {
	at    int  // 1-based call ordinal of op to crash on
	after bool // perform the inner op before crashing
}

func newOpErr(inner Actuator) *opErrActuator {
	return &opErrActuator{
		inner: inner,
		fail:  map[string]int{},
		hang:  map[string]int{},
		crash: map[string]crashPoint{},
		seen:  map[string]int{},
	}
}

func (a *opErrActuator) do(ctx context.Context, op string, call func() error) error {
	a.mu.Lock()
	a.seen[op]++
	if cp, ok := a.crash[op]; ok && a.seen[op] == cp.at {
		a.mu.Unlock()
		if cp.after {
			if err := call(); err != nil {
				return err
			}
		}
		return ErrCrashed
	}
	if a.fail[op] > 0 {
		a.fail[op]--
		a.mu.Unlock()
		return fmt.Errorf("injected %s failure", op)
	}
	if a.hang[op] > 0 {
		a.hang[op]--
		a.mu.Unlock()
		<-ctx.Done()
		return ctx.Err()
	}
	a.mu.Unlock()
	return call()
}

func (a *opErrActuator) PrepareAdd(ctx context.Context, m Move) error {
	return a.do(ctx, "prepare", func() error { return a.inner.PrepareAdd(ctx, m) })
}
func (a *opErrActuator) CommitAdd(ctx context.Context, m Move) error {
	return a.do(ctx, "add", func() error { return a.inner.CommitAdd(ctx, m) })
}
func (a *opErrActuator) DropOld(ctx context.Context, m Move) error {
	return a.do(ctx, "drop", func() error { return a.inner.DropOld(ctx, m) })
}
func (a *opErrActuator) Abort(ctx context.Context, m Move) error {
	return a.do(ctx, "abort", func() error { return a.inner.Abort(ctx, m) })
}

// newTestController wires a ring placement on Uniform(8, 4) racks with
// s = 2, d = 1 through the given actuator.
func newTestController(t *testing.T, act Actuator, maxMoves int, journal string) (*Controller, *placement.Placement) {
	t.Helper()
	topo, err := topology.Uniform(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl := ringPlacement(t, 8, 3, 12)
	c, err := New(pl, Config{
		Topo:     topo,
		Level:    topology.Leaf,
		S:        2,
		DFail:    1,
		MaxMoves: maxMoves,
		Actuator: act,
		Journal:  journal,
		Opts:     testOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, pl
}

// checkReport asserts the never-degrade invariant on one step.
func checkReport(t *testing.T, rep *StepReport) {
	t.Helper()
	if rep.Damage > rep.Baseline {
		t.Fatalf("invariant violated: damage %d > baseline %d (outcome %s, reason %q)",
			rep.Damage, rep.Baseline, rep.Outcome, rep.Reason)
	}
}

// drainUntilQuiet steps the controller until a clean outcome (or the
// step bound trips), checking the invariant at every step.
func drainUntilQuiet(t *testing.T, c *Controller, bound int) *StepReport {
	t.Helper()
	var rep *StepReport
	var err error
	for i := 0; i < bound; i++ {
		rep, err = c.Step()
		if err != nil {
			t.Fatal(err)
		}
		checkReport(t, rep)
		if rep.Outcome == OutcomeClean {
			return rep
		}
		if rep.Outcome == OutcomeDegradedUnsafe || rep.Outcome == OutcomeDegradedStuck {
			t.Fatalf("step %d: stuck at %s: %s", i, rep.Outcome, rep.Reason)
		}
	}
	t.Fatalf("not quiesced after %d steps: %s (%s)", bound, rep.Outcome, rep.Reason)
	return nil
}

func TestControllerDrainEvacuates(t *testing.T) {
	mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
	c, _ := newTestController(t, mem, 2, filepath.Join(t.TempDir(), "ck.json"))

	rep, err := c.Apply(Mutation{Kind: MutDrain, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	drainUntilQuiet(t, c, 20)

	pl := c.Placement()
	if got := pl.NodeLoads()[0]; got != 0 {
		t.Fatalf("drained node 0 still holds %d replicas", got)
	}
	if diff := mem.Diff(pl, nil); diff != "" {
		t.Fatalf("physical/logical divergence: %s", diff)
	}
	if n := mem.PreparedCount(); n != 0 {
		t.Fatalf("leaked %d prepared copies", n)
	}
}

func TestControllerFailRestore(t *testing.T) {
	mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
	c, _ := newTestController(t, mem, 3, "")

	rep, err := c.Apply(Mutation{Kind: MutFail, Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	drainUntilQuiet(t, c, 20)
	if got := c.Placement().NodeLoads()[3]; got != 0 {
		t.Fatalf("failed node 3 still holds %d replicas", got)
	}

	rep, err = c.Apply(Mutation{Kind: MutRestore, Node: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	if rep.AtRisk != 0 {
		t.Fatalf("restore left %d at risk", rep.AtRisk)
	}
	if diff := mem.Diff(c.Placement(), nil); diff != "" {
		t.Fatalf("divergence after restore: %s", diff)
	}
}

func TestControllerRetryThenSuccess(t *testing.T) {
	mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
	act := newOpErr(mem)
	act.fail["prepare"] = 1 // one transient failure, retry succeeds
	c, _ := newTestController(t, act, 2, "")

	rep, err := c.Apply(Mutation{Kind: MutDrain, Node: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	if len(rep.Moves) == 0 {
		t.Fatal("expected at least one move")
	}
	first := rep.Moves[0]
	if first.Result != MoveDone {
		t.Fatalf("move result = %s, want done (err %q)", first.Result, first.Err)
	}
	if first.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", first.Retries)
	}
}

func TestControllerRollbackOnPersistentFailure(t *testing.T) {
	mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
	act := newOpErr(mem)
	act.fail["add"] = 3 // default retries 2 -> all three attempts fail
	c, _ := newTestController(t, act, 2, "")
	before := c.Placement()

	rep, err := c.Apply(Mutation{Kind: MutDrain, Node: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	if rep.Outcome != OutcomeDegradedStuck {
		t.Fatalf("outcome = %s, want %s", rep.Outcome, OutcomeDegradedStuck)
	}
	if rep.Moves[0].Result != MoveRolledBack {
		t.Fatalf("move result = %s, want rolled-back", rep.Moves[0].Result)
	}
	after := c.Placement()
	for obj := 0; obj < before.B(); obj++ {
		if !reflect.DeepEqual(before.ReplicaNodes(obj), after.ReplicaNodes(obj)) {
			t.Fatalf("rolled-back move mutated placement of object %d", obj)
		}
	}
	if diff := mem.Diff(after, nil); diff != "" {
		t.Fatalf("divergence after rollback: %s", diff)
	}
	if n := mem.PreparedCount(); n != 0 {
		t.Fatalf("rollback leaked %d prepared copies", n)
	}

	// Fault exhausted: the next steps complete the evacuation.
	drainUntilQuiet(t, c, 20)
	if got := c.Placement().NodeLoads()[2]; got != 0 {
		t.Fatalf("draining node 2 still holds %d replicas", got)
	}
}

func TestControllerStuckDropRollsForward(t *testing.T) {
	mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
	act := newOpErr(mem)
	act.fail["drop"] = 3 // past the point of no return, all attempts fail
	c, _ := newTestController(t, act, 1, "")

	rep, err := c.Apply(Mutation{Kind: MutDrain, Node: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeDegradedStuck {
		t.Fatalf("outcome = %s, want %s", rep.Outcome, OutcomeDegradedStuck)
	}
	if rep.Moves[0].Result != MovePending {
		t.Fatalf("move result = %s, want pending", rep.Moves[0].Result)
	}
	fl := c.InFlightMove()
	if fl == nil || fl.Phase != PhaseAdded {
		t.Fatalf("in-flight = %+v, want phase added", fl)
	}

	// Next step recovers the pending drop (fault budget spent), then
	// keeps evacuating.
	drainUntilQuiet(t, c, 20)
	if c.InFlightMove() != nil {
		t.Fatal("in-flight move not cleared")
	}
	if got := c.Placement().NodeLoads()[1]; got != 0 {
		t.Fatalf("draining node 1 still holds %d replicas", got)
	}
	if diff := mem.Diff(c.Placement(), nil); diff != "" {
		t.Fatalf("divergence after roll-forward: %s", diff)
	}
}

func TestControllerCrashRecovery(t *testing.T) {
	cases := []struct {
		name  string
		op    string
		after bool
		phase Phase // journaled phase the crash must leave behind
	}{
		{"before-prepare", "prepare", false, PhaseIntent},
		{"after-prepare", "prepare", true, PhaseIntent},
		{"after-add", "add", true, PhasePrepared},
		{"before-drop", "drop", false, PhaseAdded},
		{"after-drop", "drop", true, PhaseAdded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			journal := filepath.Join(t.TempDir(), "ck.json")
			mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
			act := newOpErr(mem)
			act.crash[tc.op] = crashPoint{at: 1, after: tc.after}
			c, _ := newTestController(t, act, 2, journal)

			_, err := c.Apply(Mutation{Kind: MutDrain, Node: 4})
			if !errors.Is(err, ErrCrashed) {
				t.Fatalf("Apply error = %v, want ErrCrashed", err)
			}

			ck, err := LoadCheckpoint(journal)
			if err != nil {
				t.Fatal(err)
			}
			if ck.InFlight == nil || ck.InFlight.Phase != tc.phase {
				t.Fatalf("journaled in-flight = %+v, want phase %s", ck.InFlight, tc.phase)
			}

			// Restart: the data plane (mem) survived; the process state is
			// rebuilt from the journal.
			c2, err := Load(journal, mem, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			if c2.Applied() != 1 {
				t.Fatalf("applied = %d, want 1", c2.Applied())
			}
			rep, err := c2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Moves) != 1 || rep.Moves[0].Result == MovePending {
				t.Fatalf("recovery moves = %+v, want one resolved move", rep.Moves)
			}
			wantResult := MoveRolledBack
			if tc.phase == PhaseAdded {
				wantResult = MoveDone // point of no return: roll forward
			}
			if rep.Moves[0].Result != wantResult {
				t.Fatalf("recovered move result = %s, want %s", rep.Moves[0].Result, wantResult)
			}
			if c2.InFlightMove() != nil {
				t.Fatal("recovery left a move in flight")
			}
			if diff := mem.Diff(c2.Placement(), nil); diff != "" {
				t.Fatalf("divergence after recovery: %s", diff)
			}
			if n := mem.PreparedCount(); n != 0 {
				t.Fatalf("recovery leaked %d prepared copies", n)
			}
		})
	}
}

func TestControllerDegradedUnsafeNoTargets(t *testing.T) {
	topo, err := topology.Uniform(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl := ringPlacement(t, 4, 3, 4)
	c, err := New(pl, Config{
		Topo: topo, Level: topology.Leaf, S: 2, DFail: 1, MaxMoves: 2,
		Actuator: NewMemActuator(pl), Opts: testOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain every node but 0, then fail 0: no active target remains, so
	// the controller must degrade gracefully instead of moving.
	for nd := 1; nd < 4; nd++ {
		if _, err := c.Apply(Mutation{Kind: MutDrain, Node: nd}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := c.Apply(Mutation{Kind: MutFail, Node: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != OutcomeDegradedUnsafe {
		t.Fatalf("outcome = %s (reason %q), want %s", rep.Outcome, rep.Reason, OutcomeDegradedUnsafe)
	}
	if len(rep.Moves) != 0 {
		t.Fatalf("moves = %+v, want none", rep.Moves)
	}
	if rep.AtRisk == 0 {
		t.Fatal("at-risk count should be non-zero")
	}
}

func TestControllerCapRepair(t *testing.T) {
	mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
	c, _ := newTestController(t, mem, 2, "")

	rep, err := c.Apply(Mutation{Kind: MutCap, Domain: "rack0", Cap: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkReport(t, rep)
	rep = drainUntilQuiet(t, c, 20)
	if rep.CapExcess != 0 {
		t.Fatalf("cap excess = %d after quiesce, want 0", rep.CapExcess)
	}
	loads := c.Placement().NodeLoads()
	if got := loads[0] + loads[1]; got > 4 {
		t.Fatalf("rack0 load = %d, want <= 4", got)
	}
	if diff := mem.Diff(c.Placement(), nil); diff != "" {
		t.Fatalf("divergence after cap repair: %s", diff)
	}
}

func TestControllerMutationErrors(t *testing.T) {
	pl := ringPlacement(t, 8, 3, 12)
	c, _ := newTestController(t, NewMemActuator(pl), 2, "")

	var rangeErr *placement.RangeError
	if _, err := c.Apply(Mutation{Kind: MutDrain, Node: 99}); !errors.As(err, &rangeErr) {
		t.Fatalf("drain 99 error = %v, want RangeError", err)
	}
	if _, err := c.Apply(Mutation{Kind: MutCap, Domain: "nope", Cap: 3}); err == nil {
		t.Fatal("cap on unknown domain should fail")
	}
	if _, err := c.Apply(Mutation{Kind: MutWeight, Node: 0, Weight: 0}); err == nil {
		t.Fatal("weight 0 should fail")
	}
	if got := c.Applied(); got != 0 {
		t.Fatalf("failed mutations consumed stream position: applied = %d", got)
	}
}

func TestControllerJournalRoundTrip(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "ck.json")
	mem := NewMemActuator(ringPlacement(t, 8, 3, 12))
	c, _ := newTestController(t, mem, 2, journal)

	muts := []Mutation{
		{Kind: MutWeight, Node: 6, Weight: 3},
		{Kind: MutCap, Domain: "rack1", Cap: 5},
		{Kind: MutDrain, Node: 7},
	}
	for _, m := range muts {
		if rep, err := c.Apply(m); err != nil {
			t.Fatal(err)
		} else {
			checkReport(t, rep)
		}
	}
	drainUntilQuiet(t, c, 20)

	c2, err := Load(journal, mem, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if c2.Applied() != len(muts) {
		t.Fatalf("applied = %d, want %d", c2.Applied(), len(muts))
	}
	a, b := c.Placement(), c2.Placement()
	for obj := 0; obj < a.B(); obj++ {
		if !reflect.DeepEqual(a.ReplicaNodes(obj), b.ReplicaNodes(obj)) {
			t.Fatalf("object %d differs after reload", obj)
		}
	}
	// The reloaded topology must carry the weight and cap mutations.
	ck := c2.Checkpoint()
	topo, _, _, err := ck.restore()
	if err != nil {
		t.Fatal(err)
	}
	if w := topo.Weight(6); w != 3 {
		t.Fatalf("reloaded weight(6) = %d, want 3", w)
	}
}
