//go:build invariants

package controller

import "fmt"

// InvariantsEnabled reports whether the build carries the runtime
// invariant assertions (`go test -tags invariants`).
const InvariantsEnabled = true

// invariantState shadows the two-phase move machine and asserts, at
// every journal write, that the observable sequence is one the
// recovery proof covers:
//
//   - applied (mutations consumed) never decreases;
//   - while applied is unchanged, the in-flight phase only follows the
//     machine's legal arcs — nil→intent→prepared→added→nil forward,
//     intent→nil / prepared→nil on rollback;
//   - consuming a mutation never moves the in-flight machine;
//   - a quiesced checkpoint (no in-flight move) is never journaled
//     while a prepared destination copy is still outstanding — the
//     no-leak property, asserted at the moment it would be persisted.
type invariantState struct {
	lastApplied int
	lastPhase   *Phase
	prepared    bool // an unaborted, uncommitted PrepareAdd is outstanding
}

// init seeds the shadow from a loaded checkpoint. A move journaled at
// intent or prepared may have an outstanding destination copy (the
// crash can land after an unjournaled PrepareAdd), so the shadow
// assumes one until recovery aborts it.
func (st *invariantState) init(applied int, fl *InFlight) {
	st.lastApplied = applied
	st.lastPhase = nil
	st.prepared = false
	if fl != nil {
		p := fl.Phase
		st.lastPhase = &p
		st.prepared = p == PhaseIntent || p == PhasePrepared
	}
}

// notePrepared records a successful PrepareAdd.
func (st *invariantState) notePrepared() { st.prepared = true }

// noteCommitted records a successful CommitAdd: the prepared copy is
// now live, not outstanding.
func (st *invariantState) noteCommitted() { st.prepared = false }

// noteAborted records a successful Abort: any destination trace is
// gone, prepared or live.
func (st *invariantState) noteAborted() { st.prepared = false }

// checkJournal validates one journal write against the shadow and
// advances it. Called for every checkpoint the controller would
// persist, whether or not a journal path is configured.
func (st *invariantState) checkJournal(applied int, fl *InFlight) {
	var phase *Phase
	if fl != nil {
		p := fl.Phase
		phase = &p
	}
	switch {
	case applied < st.lastApplied:
		panic(fmt.Sprintf("controller: invariants: journal applied went backwards: %d -> %d",
			st.lastApplied, applied))
	case applied == st.lastApplied:
		if !legalPhaseArc(st.lastPhase, phase) {
			panic(fmt.Sprintf("controller: invariants: illegal journal phase transition %s -> %s",
				phaseName(st.lastPhase), phaseName(phase)))
		}
	default:
		// Consuming a mutation is journaled before any actuation; the
		// in-flight machine must not have moved in the same write.
		if !samePhase(st.lastPhase, phase) {
			panic(fmt.Sprintf("controller: invariants: journal consumed a mutation (%d -> %d) while moving the in-flight phase %s -> %s",
				st.lastApplied, applied, phaseName(st.lastPhase), phaseName(phase)))
		}
	}
	if phase == nil && st.prepared {
		panic("controller: invariants: quiesced checkpoint journaled with an outstanding prepared copy (leak)")
	}
	st.lastApplied = applied
	st.lastPhase = phase
}

// legalPhaseArc reports whether the journal may move from to in one
// write at constant applied: a rewrite of the same state, one forward
// arc of the machine, or a rollback arm.
func legalPhaseArc(from, to *Phase) bool {
	if samePhase(from, to) {
		return true
	}
	switch {
	case from == nil:
		return to != nil && *to == PhaseIntent
	case to == nil:
		// added→nil completes roll-forward; intent→nil and prepared→nil
		// complete rollback.
		return true
	case *from == PhaseIntent:
		return *to == PhasePrepared
	case *from == PhasePrepared:
		return *to == PhaseAdded
	}
	return false
}

func samePhase(a, b *Phase) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func phaseName(p *Phase) string {
	if p == nil {
		return "<none>"
	}
	return string(*p)
}
