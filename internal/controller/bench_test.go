package controller

import (
	"testing"
	"time"

	"repro/internal/topology"
)

// benchController builds the standard soak-shaped cluster: 40 objects,
// 3 replicas on 24 nodes across 3 zones x 2 racks, rack-level
// adversary with s = 2, d = 1, two moves of budget per step. Serial
// exact session searches keep the visited-states metric deterministic
// (see Makefile bench notes).
func benchController(b *testing.B, maxMoves int) (*Controller, *MemActuator) {
	return benchControllerWorkers(b, maxMoves, 1)
}

func benchControllerWorkers(b *testing.B, maxMoves, probeWorkers int) (*Controller, *MemActuator) {
	b.Helper()
	topo, err := topology.UniformTree(24, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	pl := ringPlacement(b, 24, 3, 40)
	mem := NewMemActuator(pl)
	c, err := New(pl, Config{
		Topo: topo, Level: topology.Leaf, S: 2, DFail: 1, MaxMoves: maxMoves,
		Actuator: mem, Journal: "",
		Opts: Options{
			CallTimeout:  time.Second,
			Backoff:      time.Microsecond,
			Sleep:        func(time.Duration) {},
			ProbeWorkers: probeWorkers,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return c, mem
}

// BenchmarkReconcileStep measures the planning cost of reconcile
// steps: each probe is a warm session Move + revert, so the
// deterministic visited-states metric tracks how much branch-and-bound
// effort one step of continuous operation costs — the number PR 6's
// incremental machinery is supposed to keep small.
func BenchmarkReconcileStep(b *testing.B) {
	apply := func(b *testing.B, c *Controller, mut Mutation) *StepReport {
		b.Helper()
		rep, err := c.Apply(mut)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	quiesce := func(b *testing.B, c *Controller) *StepReport {
		b.Helper()
		for i := 0; i < 30; i++ {
			rep, err := c.Step()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Outcome == OutcomeClean {
				return rep
			}
			if rep.Outcome == OutcomeDegradedUnsafe || rep.Outcome == OutcomeDegradedStuck {
				b.Fatalf("stuck at %s: %s", rep.Outcome, rep.Reason)
			}
		}
		b.Fatal("never quiesced")
		return nil
	}

	var serialVisited int64
	var serialDamage = -1
	b.Run("drain-evacuate", func(b *testing.B) {
		var visited int64
		for i := 0; i < b.N; i++ {
			c, _ := benchController(b, 2)
			before := c.SessionStats().Visited
			apply(b, c, Mutation{Kind: MutDrain, Node: 0})
			serialDamage = quiesce(b, c).Damage
			visited = c.SessionStats().Visited - before
		}
		serialVisited = visited
		b.ReportMetric(float64(visited), "visited-states")
	})

	// The same drain-evacuate script planned through the parallel probe
	// fan-out: the plans (and so the deterministic visited-states and
	// final damage) must match the serial row exactly — the fan-out
	// changes wall-clock, never the outcome.
	b.Run("workers=8", func(b *testing.B) {
		var visited int64
		var damage int
		for i := 0; i < b.N; i++ {
			c, _ := benchControllerWorkers(b, 2, 8)
			before := c.SessionStats().Visited
			apply(b, c, Mutation{Kind: MutDrain, Node: 0})
			damage = quiesce(b, c).Damage
			visited = c.SessionStats().Visited - before
		}
		if serialDamage >= 0 {
			if visited != serialVisited {
				b.Fatalf("workers=8 visited %d states, serial %d — parallel planning diverged", visited, serialVisited)
			}
			if damage != serialDamage {
				b.Fatalf("workers=8 final damage %d, serial %d", damage, serialDamage)
			}
		}
		b.ReportMetric(float64(visited), "visited-states")
	})

	b.Run("churn-script", func(b *testing.B) {
		script := []Mutation{
			{Kind: MutFail, Node: 3},
			{Kind: MutDrain, Node: 10},
			{Kind: MutWeight, Node: 7, Weight: 3},
			{Kind: MutCap, Domain: "z0r0", Cap: 18},
			{Kind: MutRestore, Node: 3},
			{Kind: MutCap, Domain: "z0r0", Cap: 0},
			{Kind: MutRestore, Node: 10},
		}
		var visited int64
		for i := 0; i < b.N; i++ {
			c, _ := benchController(b, 2)
			before := c.SessionStats().Visited
			for _, mut := range script {
				apply(b, c, mut)
			}
			quiesce(b, c)
			visited = c.SessionStats().Visited - before
		}
		b.ReportMetric(float64(visited), "visited-states")
	})
}
