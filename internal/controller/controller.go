// Package controller turns the one-shot batch planner into a
// long-running reconcile loop: a Controller owns the current placement,
// consumes a stream of topology mutations (node drain/fail/restore,
// weight changes, cap changes), and incrementally re-plans under a
// bounded movement budget — at most MaxMoves replica moves per step,
// each scored through a warm adversary.Session probe before it is
// allowed to happen.
//
// The safety contract is the never-degrade migration invariant: within
// one reconcile step, the worst-case damage of every intermediate
// placement — after every individual replica move — stays at or below
// the step's pre-migration baseline. A move that cannot meet the bar
// is not taken; the controller keeps serving the old placement and
// reports a typed degraded outcome instead. Candidate moves are probed
// and reverted through the session (PR 6's CSR deltas, warm seeds and
// damage memo make the revert nearly free), so planning costs a few
// thousand search states per step instead of full rebuilds.
//
// Each planned move executes as a ranger-style two-phase state machine
// (PrepareAdd -> CommitAdd -> DropOld, with Abort as the rollback arm)
// against a pluggable Actuator, under a per-call timeout and bounded
// exponential-backoff retries. Every phase transition is journaled
// write-ahead to an fsync'd JSON checkpoint, so a crashed controller
// reloads (Load) and resumes or rolls back cleanly (Recover): moves
// journaled before PhaseAdded roll back, moves at PhaseAdded roll
// forward. The fault-injecting FaultActuator drives the soak test that
// proves the invariant and the no-leak property under -race.
package controller

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/adversary"
	"repro/internal/placement"
	"repro/internal/topology"
)

// NodeStatus is a node's availability in the controller's cluster
// model. The node universe is fixed at the placement's N slots;
// status is what churns.
//replicalint:exhaustive
type NodeStatus int

const (
	// NodeActive nodes serve replicas and accept new ones.
	NodeActive NodeStatus = iota
	// NodeDraining nodes keep serving but must shed their replicas and
	// accept no new ones (planned maintenance).
	NodeDraining
	// NodeFailed nodes are down: their replicas are at risk and
	// evacuate with top priority; they accept no new ones.
	NodeFailed
)

func (s NodeStatus) String() string {
	switch s {
	case NodeActive:
		return "active"
	case NodeDraining:
		return "draining"
	case NodeFailed:
		return "failed"
	}
	return fmt.Sprintf("NodeStatus(%d)", int(s))
}

// Outcome is a reconcile step's typed result.
//replicalint:exhaustive
type Outcome string

const (
	// OutcomeClean: every obligation met — nothing at risk, no cap
	// excess, invariant held throughout.
	OutcomeClean Outcome = "clean"
	// OutcomeDegradedBudget: the movement budget ran out with work
	// remaining; the controller keeps serving and continues next step.
	OutcomeDegradedBudget Outcome = "degraded-budget"
	// OutcomeDegradedStuck: actuation failed permanently (retries
	// exhausted); the old placement keeps serving and recovery retries
	// on the next step.
	OutcomeDegradedStuck Outcome = "degraded-stuck"
	// OutcomeDegradedUnsafe: work remains but no move satisfies the
	// never-degrade invariant (or has an eligible target); the old
	// placement keeps serving.
	OutcomeDegradedUnsafe Outcome = "degraded-unsafe"
)

// MoveResult is the fate of one attempted move.
//replicalint:exhaustive
type MoveResult string

const (
	MoveDone       MoveResult = "done"        // both phases complete, placement updated
	MoveRolledBack MoveResult = "rolled-back" // failed before the point of no return, destination aborted
	MovePending    MoveResult = "pending"     // in-flight: crash or stuck; recovery finishes it
)

// MoveRecord is the transcript of one attempted move.
type MoveRecord struct {
	Move    Move
	Result  MoveResult
	Retries int    // extra attempts beyond the first, across all phases
	Err     string // last actuation error for non-done results
}

// StepReport is one reconcile step's transcript: the consumed
// mutation, the pre-migration guarantee, every actuation, and the
// typed outcome.
type StepReport struct {
	Mutation  *Mutation    // nil for a bare Step or Recover
	Baseline  int          // worst-case damage entering the step (the guarantee)
	Damage    int          // worst-case damage after the step
	Moves     []MoveRecord // actuations attempted, in order
	Outcome   Outcome
	Reason    string // detail for degraded outcomes
	AtRisk    int    // replicas still on failed or draining nodes
	CapExcess int    // replicas above cap, summed over all domains
}

// Options tune the controller's actuation and planning behavior.
type Options struct {
	// CallTimeout bounds each actuator call (default 2s).
	CallTimeout time.Duration
	// Retries is how many times a failed call is retried (0 uses the
	// default of 2; negative means no retries).
	Retries int
	// Backoff is the first retry's delay, doubled per retry
	// (default 10ms).
	Backoff time.Duration
	// Sleep replaces time.Sleep between retries (tests inject a
	// no-op); nil uses time.Sleep.
	Sleep func(time.Duration)
	// Search configures the adversary session. Leave Budget 0: the
	// invariant is only a proof when evaluations are exact.
	Search adversary.SearchOpts
	// CandTargets bounds the target nodes probed per source replica
	// (default 4); CandProbes bounds session probes per planned move
	// (default 48).
	CandTargets int
	CandProbes  int
	// ProbeWorkers > 1 fans each candidate class's probe batch out over
	// that many forked session workers (adversary.Session.ProbeMoves).
	// Planning is result-deterministic at any worker count: every probe
	// evaluates from the step's base state, results merge in candidate
	// order, and the class-order early exit and earliest-candidate
	// tie-break are preserved, so step reports are byte-identical to
	// the serial scan's. 0 or 1 probes serially.
	ProbeWorkers int
}

func (o Options) withDefaults() Options {
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Second
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 10 * time.Millisecond
	}
	if o.CandTargets <= 0 {
		o.CandTargets = 4
	}
	if o.CandProbes <= 0 {
		o.CandProbes = 48
	}
	if o.ProbeWorkers <= 0 {
		o.ProbeWorkers = 1
	}
	return o
}

// Config assembles a fresh Controller.
type Config struct {
	Topo     *topology.Topology // required; carries weights and caps
	Level    int                // attack level (topology.Leaf = leaf; 0 = top)
	S        int                // replica losses that fail an object
	DFail    int                // whole-domain failures the adversary gets
	MaxMoves int                // movement budget per reconcile step (>= 1)
	Actuator Actuator           // required
	Journal  string             // checkpoint path; "" disables crash safety
	Opts     Options
}

// Controller is the reconcile loop's state. All methods are safe for
// one caller at a time (an internal lock serializes them); actuation
// is deliberately single-file — the movement budget is per step, not
// per worker.
type Controller struct {
	mu       sync.Mutex
	topo     *topology.Topology
	level    int // resolved: 0..Levels()-1
	s, dfail int
	maxMoves int
	pl       *placement.Placement
	status   []NodeStatus
	sess     *adversary.Session
	act      Actuator
	journal  string
	opts     Options
	applied  int
	baseline int
	inflight *InFlight
	// inv is the build-tagged invariant shadow: empty (and free) in
	// regular builds, a journal-sequence and prepared-copy checker
	// under `-tags invariants`.
	inv invariantState
}

// New builds a controller owning pl (a private clone is taken) and
// journals the initial checkpoint.
func New(pl *placement.Placement, cfg Config) (*Controller, error) {
	if cfg.Topo == nil {
		return nil, fmt.Errorf("controller: Config.Topo is required")
	}
	if cfg.Actuator == nil {
		return nil, fmt.Errorf("controller: Config.Actuator is required")
	}
	if cfg.MaxMoves < 1 {
		return nil, fmt.Errorf("controller: MaxMoves = %d must be >= 1", cfg.MaxMoves)
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if cfg.Topo.N != pl.N {
		return nil, fmt.Errorf("controller: topology covers %d nodes, placement has %d", cfg.Topo.N, pl.N)
	}
	level, err := cfg.Topo.ResolveLevel(cfg.Level)
	if err != nil {
		return nil, err
	}
	sess, err := adversary.NewDomainSession(pl, cfg.Topo, level, cfg.S, cfg.DFail, cfg.Opts.Search)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		topo:     cfg.Topo,
		level:    level,
		s:        cfg.S,
		dfail:    cfg.DFail,
		maxMoves: cfg.MaxMoves,
		pl:       pl.Clone(),
		status:   make([]NodeStatus, pl.N),
		sess:     sess,
		act:      cfg.Actuator,
		journal:  cfg.Journal,
		opts:     cfg.Opts.withDefaults(),
	}
	base, err := sess.Evaluate(nil)
	if err != nil {
		return nil, err
	}
	c.baseline = base.Failed
	if err := c.saveJournal(); err != nil {
		return nil, err
	}
	return c, nil
}

// Load rebuilds a controller from the journal at path — the crash
// restart path. The caller supplies the actuator (the data plane
// outlived the process) and then calls Recover to finish or roll back
// whatever move was in flight.
func Load(path string, act Actuator, opts Options) (*Controller, error) {
	if act == nil {
		return nil, fmt.Errorf("controller: actuator is required")
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	topo, pl, status, err := ck.restore()
	if err != nil {
		return nil, err
	}
	sess, err := adversary.NewDomainSession(pl, topo, ck.Level, ck.S, ck.DFail, opts.Search)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		topo:     topo,
		level:    ck.Level,
		s:        ck.S,
		dfail:    ck.DFail,
		maxMoves: ck.MaxMoves,
		pl:       pl,
		status:   status,
		sess:     sess,
		act:      act,
		journal:  path,
		opts:     opts.withDefaults(),
		applied:  ck.Applied,
		baseline: ck.Baseline,
		inflight: ck.InFlight,
	}
	c.inv.init(ck.Applied, ck.InFlight)
	return c, nil
}

// Placement returns a copy of the current logical placement.
func (c *Controller) Placement() *placement.Placement {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pl.Clone()
}

// Applied returns how many mutations the controller has consumed —
// after a crash restart, the stream position to resume from.
func (c *Controller) Applied() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.applied
}

// InFlightMove returns the journaled in-flight move, or nil when the
// controller is quiesced.
func (c *Controller) InFlightMove() *InFlight {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.inflight == nil {
		return nil
	}
	fl := *c.inflight
	return &fl
}

// SessionStats exposes the adversary session's incremental counters.
func (c *Controller) SessionStats() adversary.SessionStats {
	return c.sess.Stats()
}

// Checkpoint snapshots the controller state in journal form.
func (c *Controller) Checkpoint() *Checkpoint {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpointLocked()
}

func (c *Controller) checkpointLocked() *Checkpoint {
	objects := make([][]int, c.pl.B())
	for obj := range objects {
		objects[obj] = c.pl.ReplicaNodes(obj)
	}
	ck := &Checkpoint{
		Version:  checkpointVersion,
		N:        c.pl.N,
		R:        c.pl.R,
		S:        c.s,
		DFail:    c.dfail,
		Level:    c.level,
		MaxMoves: c.maxMoves,
		Topo:     c.topo.Spec(),
		Status:   append([]NodeStatus(nil), c.status...),
		Objects:  objects,
		Applied:  c.applied,
		Baseline: c.baseline,
	}
	if c.inflight != nil {
		fl := *c.inflight
		ck.InFlight = &fl
	}
	return ck
}

func (c *Controller) saveJournal() error {
	// The invariant shadow audits every checkpoint the controller would
	// persist, even when journaling is disabled.
	c.inv.checkJournal(c.applied, c.inflight)
	if c.journal == "" {
		return nil
	}
	data, err := c.checkpointLocked().Encode()
	if err != nil {
		return err
	}
	return writeFileSync(c.journal, data)
}

// Apply consumes one mutation and runs a reconcile step. The returned
// error is nil for every in-protocol outcome (including degraded ones,
// which the report types); it is non-nil only for an invalid mutation
// (state unchanged), a journal write failure, or ErrCrashed from a
// fault-injecting actuator — after which the caller restarts from the
// checkpoint via Load + Recover.
func (c *Controller) Apply(mut Mutation) (*StepReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.applyMutation(mut); err != nil {
		return nil, err
	}
	c.applied++
	// The consumed mutation is journaled before any actuation, so a
	// crash-resume never replays it.
	if err := c.saveJournal(); err != nil {
		return nil, err
	}
	return c.reconcile(&mut)
}

// Step runs a reconcile step without consuming a mutation — draining
// leftover work (at-risk replicas, cap excess, a stuck move) across
// movement budgets.
func (c *Controller) Step() (*StepReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconcile(nil)
}

// Recover finishes or rolls back the journaled in-flight move after a
// crash restart, without planning new work. A no-op when quiesced.
func (c *Controller) Recover() (*StepReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &StepReport{Baseline: c.baseline}
	if c.inflight != nil {
		rec, err := c.finishInFlight()
		rep.Moves = append(rep.Moves, rec)
		if err != nil {
			return rep, err
		}
		if rec.Result == MovePending {
			c.finishReport(rep, OutcomeDegradedStuck, "in-flight move still stuck: "+rec.Err)
			return rep, nil
		}
	}
	c.finishReport(rep, OutcomeClean, "")
	return rep, nil
}

// applyMutation folds one mutation into the cluster model. It fails —
// leaving every piece of state untouched — on out-of-range nodes or
// unknown domains.
func (c *Controller) applyMutation(mut Mutation) error {
	checkNode := func(nd int) error {
		if nd < 0 || nd >= c.pl.N {
			return &placement.RangeError{Kind: "node", Index: nd, Limit: c.pl.N}
		}
		return nil
	}
	switch mut.Kind {
	case MutDrain:
		if err := checkNode(mut.Node); err != nil {
			return err
		}
		c.status[mut.Node] = NodeDraining
	case MutFail:
		if err := checkNode(mut.Node); err != nil {
			return err
		}
		c.status[mut.Node] = NodeFailed
	case MutRestore:
		if err := checkNode(mut.Node); err != nil {
			return err
		}
		c.status[mut.Node] = NodeActive
	case MutWeight:
		if err := checkNode(mut.Node); err != nil {
			return err
		}
		if mut.Weight < 1 {
			return fmt.Errorf("controller: weight %d must be >= 1", mut.Weight)
		}
		if c.topo.Weights == nil {
			c.topo.Weights = make([]int, c.pl.N)
			for i := range c.topo.Weights {
				c.topo.Weights[i] = 1
			}
		}
		c.topo.Weights[mut.Node] = mut.Weight
	case MutCap:
		found := false
		for l := range c.topo.Tree {
			for d := range c.topo.Tree[l] {
				if c.topo.Tree[l][d].Name == mut.Domain {
					c.topo.Tree[l][d].Cap = mut.Cap
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("controller: no domain named %q at any level", mut.Domain)
		}
	default:
		return fmt.Errorf("controller: unknown mutation kind %q", mut.Kind)
	}
	return nil
}

// reconcile is one step: finish stuck work, fix the pre-migration
// baseline, then plan-probe-actuate moves until the budget, the
// admissible moves, or the work runs out.
func (c *Controller) reconcile(mut *Mutation) (*StepReport, error) {
	rep := &StepReport{Mutation: mut}

	// A move stuck from an earlier step blocks new planning: recovery
	// first, and if it is still stuck the step degrades.
	if c.inflight != nil {
		rec, err := c.finishInFlight()
		rep.Moves = append(rep.Moves, rec)
		if err != nil {
			return rep, err
		}
		if rec.Result == MovePending {
			base, eerr := c.sess.Evaluate(nil)
			if eerr == nil {
				rep.Baseline = base.Failed
			}
			c.finishReport(rep, OutcomeDegradedStuck, "in-flight move still stuck: "+rec.Err)
			return rep, nil
		}
	}

	base, err := c.sess.Evaluate(nil)
	if err != nil {
		return rep, err
	}
	c.baseline = base.Failed
	rep.Baseline = base.Failed
	curDamage := base.Failed
	witness := base.Nodes

	for moved := 0; moved < c.maxMoves; {
		pick := c.planOne(curDamage, witness)
		if pick == nil {
			break
		}
		rec, err := c.executeMove(pick.move)
		rep.Moves = append(rep.Moves, rec)
		if err != nil {
			return rep, err
		}
		if rec.Result == MovePending {
			c.finishReport(rep, OutcomeDegradedStuck, "actuation stuck: "+rec.Err)
			return rep, nil
		}
		if rec.Result == MoveRolledBack {
			c.finishReport(rep, OutcomeDegradedStuck, "actuation failed: "+rec.Err)
			return rep, nil
		}
		curDamage = pick.damage
		witness = pick.witness
		moved++
	}

	outcome, reason := OutcomeClean, ""
	if work := c.pendingWork(); work != "" {
		if len(rep.Moves) >= c.maxMoves {
			outcome, reason = OutcomeDegradedBudget, "movement budget exhausted: "+work
		} else {
			outcome, reason = OutcomeDegradedUnsafe, "no admissible move: "+work
		}
	}
	c.finishReport(rep, outcome, reason)
	return rep, nil
}

// finishReport stamps the step's closing observations.
func (c *Controller) finishReport(rep *StepReport, outcome Outcome, reason string) {
	rep.Outcome = outcome
	rep.Reason = reason
	rep.AtRisk = c.atRisk()
	rep.CapExcess = c.capExcess()
	if res, err := c.sess.Evaluate(nil); err == nil { // memo hit: the step just evaluated this placement
		rep.Damage = res.Failed
	}
}

// pick is one planned move with its probed consequences.
type pick struct {
	move    Move
	damage  int   // exact worst-case damage after the move
	witness []int // the attack witness backing damage
}

// planOne probes candidate moves through the session and returns the
// best admissible one, or nil. Each candidate class is probed as one
// ProbeMoves batch (fanned over Opts.ProbeWorkers forked sessions when
// > 1), truncated to the remaining CandProbes budget; batches run in
// class order and stop as soon as a lower class has produced a winner,
// preserving the serial scan's class-order early exit. Urgent work —
// evacuating failed then draining nodes, shedding cap excess — is
// admissible at damage <= the step baseline; pure improvement moves
// must strictly lower the current damage. Results merge in candidate
// order: within a class, lower damage wins, ties to the earliest
// candidate — so the chosen move is byte-identical to the serial
// scan's at any worker count.
func (c *Controller) planOne(curDamage int, witness []int) *pick {
	cands := c.candidateMoves(witness)
	budget := c.opts.CandProbes
	var best *pick
	bestClass := -1
	for lo := 0; lo < len(cands) && budget > 0; {
		class := cands[lo].class
		hi := lo
		for hi < len(cands) && cands[hi].class == class {
			hi++
		}
		if best != nil && bestClass < class {
			break // candidates are class-ordered: a lower class already has a winner
		}
		group := cands[lo:hi]
		if len(group) > budget {
			group = group[:budget]
		}
		moves := make([]adversary.Move, len(group))
		for i, cand := range group {
			moves[i] = adversary.Move(cand.move)
		}
		budget -= len(group)
		for i, res := range c.sess.ProbeMoves(moves, c.opts.ProbeWorkers) {
			if res.Failed < 0 { // the placement rejected the move
				continue
			}
			damage := res.Failed
			admissible := damage <= c.baseline
			if group[i].class == classImprove {
				admissible = damage < curDamage
			}
			if !admissible {
				continue
			}
			if best == nil || damage < best.damage {
				best = &pick{move: group[i].move, damage: damage, witness: res.Nodes}
				bestClass = group[i].class
			}
		}
		lo = hi
	}
	return best
}

// Candidate classes, in planning priority order.
const (
	classEvacFail = iota
	classEvacDrain
	classCapRepair
	classImprove
)

type candidate struct {
	move  Move
	class int
}

// candidateMoves enumerates this step's possible moves, class-ordered:
// replicas leaving failed nodes, then draining nodes, then over-cap
// subtrees, then witness-guided improvement moves (a replica leaving
// the current worst-case attack's node set). Targets are active nodes
// with cap headroom not already hosting the object, lightest replica
// load first (ties: lighter weight, then lower id), at most
// CandTargets per source.
func (c *Controller) candidateMoves(witness []int) []candidate {
	loads := c.pl.NodeLoads()
	domLoads := c.domainLoads(loads)

	order := make([]int, c.pl.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		na, nb := order[a], order[b]
		if loads[na] != loads[nb] {
			return loads[na] < loads[nb]
		}
		if wa, wb := c.topo.Weight(na), c.topo.Weight(nb); wa != wb {
			return wa < wb
		}
		return na < nb
	})

	targetsFor := func(obj, from int, targetOK func(nd int) bool) []int {
		var ts []int
		for _, nd := range order {
			if len(ts) >= c.opts.CandTargets {
				break
			}
			if c.status[nd] != NodeActive || nd == from || c.pl.Objects[obj].Get(nd) {
				continue
			}
			if targetOK != nil && !targetOK(nd) {
				continue
			}
			if !c.capHeadroom(domLoads, from, nd) {
				continue
			}
			ts = append(ts, nd)
		}
		return ts
	}

	var cands []candidate
	addSources := func(class int, onNode, targetOK func(nd int) bool) {
		for obj := 0; obj < c.pl.B(); obj++ {
			for _, nd := range c.pl.ReplicaNodes(obj) {
				if !onNode(nd) {
					continue
				}
				for _, to := range targetsFor(obj, nd, targetOK) {
					cands = append(cands, candidate{Move{Obj: obj, From: nd, To: to}, class})
				}
			}
		}
	}

	addSources(classEvacFail, func(nd int) bool { return c.status[nd] == NodeFailed }, nil)
	addSources(classEvacDrain, func(nd int) bool { return c.status[nd] == NodeDraining }, nil)

	// Cap repair: shed replicas from over-cap subtrees. The target must
	// leave the subtree — a same-domain shuffle is cap-neutral and would
	// livelock the repair.
	over := c.overCapNodes(domLoads)
	if over != nil {
		addSources(classCapRepair,
			func(nd int) bool { return over[nd] && c.status[nd] == NodeActive },
			func(nd int) bool { return !over[nd] })
	}

	// Improvement: break up the current worst-case attack.
	if len(witness) > 0 {
		inWitness := make(map[int]bool, len(witness))
		for _, nd := range witness {
			inWitness[nd] = true
		}
		addSources(classImprove,
			func(nd int) bool { return inWitness[nd] && c.status[nd] == NodeActive }, nil)
	}
	return cands
}

// domainLoads sums replica loads per domain at every level.
func (c *Controller) domainLoads(loads []int) [][]int {
	dl := make([][]int, c.topo.Levels())
	for l := range dl {
		dl[l] = make([]int, len(c.topo.Tree[l]))
	}
	for nd, load := range loads {
		for l := range dl {
			dom, err := c.topo.DomainOfAt(nd, l)
			if err != nil {
				continue
			}
			dl[l][dom] += load
		}
	}
	return dl
}

// capHeadroom reports whether moving one replica from -> to respects
// every capped domain: each of to's ancestors that is not also an
// ancestor of from must have room for one more replica.
func (c *Controller) capHeadroom(domLoads [][]int, from, to int) bool {
	for l := range c.topo.Tree {
		df, errF := c.topo.DomainOfAt(from, l)
		dt, errT := c.topo.DomainOfAt(to, l)
		if errF != nil || errT != nil || df == dt {
			continue
		}
		if cap := c.topo.Tree[l][dt].Cap; cap > 0 && domLoads[l][dt]+1 > cap {
			return false
		}
	}
	return true
}

// overCapNodes marks the nodes inside any over-cap subtree, or nil if
// every cap holds.
func (c *Controller) overCapNodes(domLoads [][]int) map[int]bool {
	var over map[int]bool
	for l := range c.topo.Tree {
		for d, dom := range c.topo.Tree[l] {
			if dom.Cap > 0 && domLoads[l][d] > dom.Cap {
				if over == nil {
					over = make(map[int]bool)
				}
				for _, nd := range dom.Nodes {
					over[nd] = true
				}
			}
		}
	}
	return over
}

// atRisk counts replicas on failed or draining nodes.
func (c *Controller) atRisk() int {
	n := 0
	for obj := 0; obj < c.pl.B(); obj++ {
		for _, nd := range c.pl.ReplicaNodes(obj) {
			if c.status[nd] != NodeActive {
				n++
			}
		}
	}
	return n
}

// capExcess sums replicas above cap over all domains and levels.
func (c *Controller) capExcess() int {
	domLoads := c.domainLoads(c.pl.NodeLoads())
	excess := 0
	for l := range c.topo.Tree {
		for d, dom := range c.topo.Tree[l] {
			if dom.Cap > 0 && domLoads[l][d] > dom.Cap {
				excess += domLoads[l][d] - dom.Cap
			}
		}
	}
	return excess
}

// pendingWork describes the step's unmet obligations, or "".
func (c *Controller) pendingWork() string {
	var parts []string
	if n := c.atRisk(); n > 0 {
		parts = append(parts, fmt.Sprintf("%d replicas on failed/draining nodes", n))
	}
	if e := c.capExcess(); e > 0 {
		parts = append(parts, fmt.Sprintf("%d replicas over cap", e))
	}
	return strings.Join(parts, ", ")
}

// executeMove drives one move through the two-phase machine, journaling
// every transition write-ahead. The returned error is non-nil only for
// a crash (ErrCrashed propagates untouched, state parked in the
// journal) or a journal write failure; actuation failures are typed in
// the record (rolled-back before PhaseAdded, pending after).
func (c *Controller) executeMove(m Move) (MoveRecord, error) {
	rec := MoveRecord{Move: m, Result: MovePending}
	c.inflight = &InFlight{Move: m, Phase: PhaseIntent}
	if err := c.saveJournal(); err != nil {
		return rec, err
	}
	if err := c.callRetry(m, c.act.PrepareAdd, &rec); err != nil {
		return c.rollbackMove(rec, err)
	}
	c.inv.notePrepared()
	c.inflight.Phase = PhasePrepared
	if err := c.saveJournal(); err != nil {
		return rec, err
	}
	if err := c.callRetry(m, c.act.CommitAdd, &rec); err != nil {
		return c.rollbackMove(rec, err)
	}
	c.inv.noteCommitted()
	c.inflight.Phase = PhaseAdded
	if err := c.saveJournal(); err != nil {
		return rec, err
	}
	if err := c.callRetry(m, c.act.DropOld, &rec); err != nil {
		if errors.Is(err, ErrCrashed) {
			return rec, err
		}
		// Past the point of no return: the destination serves. The move
		// stays journaled at PhaseAdded; the next step (or Recover)
		// rolls it forward by finishing the drop.
		rec.Err = err.Error()
		return rec, nil
	}
	return c.applyFinishedMove(rec)
}

// applyFinishedMove folds a fully-actuated move into the logical
// placement and session and quiesces the journal.
func (c *Controller) applyFinishedMove(rec MoveRecord) (MoveRecord, error) {
	m := rec.Move
	if _, err := c.sess.Move(m.Obj, m.From, m.To); err != nil {
		return rec, fmt.Errorf("controller: applying finished move %v: %w", m, err)
	}
	if err := c.pl.MoveReplica(m.Obj, m.From, m.To); err != nil {
		return rec, fmt.Errorf("controller: applying finished move %v: %w", m, err)
	}
	c.inflight = nil
	if err := c.saveJournal(); err != nil {
		return rec, err
	}
	rec.Result = MoveDone
	return rec, nil
}

// rollbackMove aborts a move that failed before the point of no
// return: the destination is scrubbed and the old placement keeps
// serving untouched.
func (c *Controller) rollbackMove(rec MoveRecord, cause error) (MoveRecord, error) {
	if errors.Is(cause, ErrCrashed) {
		return rec, cause
	}
	rec.Err = cause.Error()
	if err := c.callRetry(rec.Move, c.act.Abort, &rec); err != nil {
		if errors.Is(err, ErrCrashed) {
			return rec, err
		}
		// The rollback itself is stuck; recovery retries the abort.
		rec.Err += "; " + err.Error()
		return rec, nil
	}
	c.inv.noteAborted()
	c.inflight = nil
	if err := c.saveJournal(); err != nil {
		return rec, err
	}
	rec.Result = MoveRolledBack
	return rec, nil
}

// finishInFlight resolves a journaled in-flight move: phases before
// PhaseAdded roll back (Abort the destination — idempotent, and safe
// even when the crash landed after an unjournaled CommitAdd, because
// the logical placement still reads from the source); PhaseAdded rolls
// forward (DropOld — idempotent — then apply).
func (c *Controller) finishInFlight() (MoveRecord, error) {
	fl := c.inflight
	m := fl.Move
	rec := MoveRecord{Move: m, Result: MovePending}
	switch fl.Phase {
	case PhaseIntent, PhasePrepared:
		if err := c.callRetry(m, c.act.Abort, &rec); err != nil {
			if errors.Is(err, ErrCrashed) {
				return rec, err
			}
			rec.Err = err.Error()
			return rec, nil
		}
		c.inv.noteAborted()
		c.inflight = nil
		if err := c.saveJournal(); err != nil {
			return rec, err
		}
		rec.Result = MoveRolledBack
		return rec, nil
	case PhaseAdded:
		if err := c.callRetry(m, c.act.DropOld, &rec); err != nil {
			if errors.Is(err, ErrCrashed) {
				return rec, err
			}
			rec.Err = err.Error()
			return rec, nil
		}
		return c.applyFinishedMove(rec)
	}
	return rec, fmt.Errorf("controller: in-flight move %v has unknown phase %q", m, fl.Phase)
}

// callRetry runs one actuator call under the per-call timeout with
// bounded exponential-backoff retries. ErrCrashed propagates
// immediately (the process is "dead"); any other persistent failure
// returns the last error.
func (c *Controller) callRetry(m Move, call func(context.Context, Move) error, rec *MoveRecord) error {
	var last error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			rec.Retries++
			c.sleepFor(c.opts.Backoff << (attempt - 1))
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.opts.CallTimeout)
		err := call(ctx, m)
		cancel()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrCrashed) {
			return err
		}
		last = err
	}
	return last
}

func (c *Controller) sleepFor(d time.Duration) {
	if c.opts.Sleep != nil {
		c.opts.Sleep(d)
		return
	}
	time.Sleep(d)
}
