package controller

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/placement"
)

// Move is one replica transfer the controller actuates: object obj's
// replica leaves node From for node To.
type Move struct {
	Obj  int `json:"obj"`
	From int `json:"from"`
	To   int `json:"to"`
}

func (m Move) String() string {
	return fmt.Sprintf("obj %d: %d -> %d", m.Obj, m.From, m.To)
}

// Phase is the journaled progress of one two-phase move, in the
// ranger place/move shape (PrepareAdd -> CommitAdd -> DropOld):
//
//	phase journaled | meaning                      | on crash / permanent failure
//	----------------+------------------------------+------------------------------
//	intent          | nothing actuated yet         | roll back: Abort destination
//	prepared        | PrepareAdd succeeded         | roll back: Abort destination
//	added           | CommitAdd succeeded (point   | roll forward: DropOld, then
//	                | of no return: dest serves)   | apply the move
//
// Each transition is journaled write-ahead: the phase on disk is always
// at or one actuation call behind the physical cluster, which is why
// Abort and DropOld must be idempotent — recovery may replay the call
// that completed just before the crash.
//
//replicalint:exhaustive
type Phase string

const (
	PhaseIntent   Phase = "intent"
	PhasePrepared Phase = "prepared"
	PhaseAdded    Phase = "added"
)

// ErrCrashed is the sentinel fault-injecting actuators return to
// simulate the controller process dying at that exact point. The
// executor propagates it immediately — no rollback, no journal write —
// exactly as a real crash would leave things; the caller restarts from
// the checkpoint via Load + Recover.
var ErrCrashed = errors.New("controller: crashed (injected)")

// Actuator is the pluggable data plane the controller drives moves
// through. Calls are serialized (one in flight at a time) and bounded
// by the per-call context deadline; any call may be retried after a
// failure, and recovery may replay the last call after a crash, so:
//
//   - DropOld must be idempotent: dropping an already-absent source
//     replica succeeds.
//   - Abort must be idempotent and must remove the destination replica
//     whether it is merely prepared or already added — it is only
//     called before the journal reaches PhaseAdded, so the logical
//     placement still reads from the source.
type Actuator interface {
	// PrepareAdd provisions the destination replica (allocate, begin
	// copying). The destination is not serving yet.
	PrepareAdd(ctx context.Context, m Move) error
	// CommitAdd makes the prepared destination replica live.
	CommitAdd(ctx context.Context, m Move) error
	// DropOld removes the source replica.
	DropOld(ctx context.Context, m Move) error
	// Abort removes any trace of the destination replica.
	Abort(ctx context.Context, m Move) error
}

// MemActuator is the in-memory reference data plane: it tracks live
// replicas and outstanding prepared copies the way a real cluster
// would, and enforces the two-phase protocol strictly (committing an
// unprepared destination is an error). The soak and golden tests use
// it — wrapped in FaultActuator — to prove the no-leak property: after
// any fault schedule, live replicas must equal the controller's
// placement exactly and no prepared copy may linger.
type MemActuator struct {
	mu       sync.Mutex
	replicas []map[int]bool // obj -> nodes holding a live replica
	prepared map[Move]bool  // outstanding prepared (non-serving) copies
}

// NewMemActuator starts the data plane in sync with pl.
func NewMemActuator(pl *placement.Placement) *MemActuator {
	a := &MemActuator{
		replicas: make([]map[int]bool, pl.B()),
		prepared: make(map[Move]bool),
	}
	for obj := 0; obj < pl.B(); obj++ {
		a.replicas[obj] = make(map[int]bool)
		for _, nd := range pl.ReplicaNodes(obj) {
			a.replicas[obj][nd] = true
		}
	}
	return a
}

func (a *MemActuator) PrepareAdd(ctx context.Context, m Move) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.replicas[m.Obj][m.To] {
		return fmt.Errorf("actuator: %v: destination already holds a live replica", m)
	}
	a.prepared[m] = true
	return nil
}

func (a *MemActuator) CommitAdd(ctx context.Context, m Move) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.prepared[m] {
		return fmt.Errorf("actuator: %v: commit without prepare", m)
	}
	delete(a.prepared, m)
	a.replicas[m.Obj][m.To] = true
	return nil
}

func (a *MemActuator) DropOld(ctx context.Context, m Move) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.replicas[m.Obj], m.From) // idempotent: absent is fine
	return nil
}

func (a *MemActuator) Abort(ctx context.Context, m Move) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.prepared, m)
	delete(a.replicas[m.Obj], m.To) // prepared or added: remove any trace
	return nil
}

// PreparedCount returns the number of outstanding prepared copies —
// zero on a quiesced cluster; anything else is a leak.
func (a *MemActuator) PreparedCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.prepared)
}

// Diff compares the live physical replicas against pl — the
// controller's logical placement, which only applies a move after the
// whole two-phase machine completes — tolerating the one in-flight
// move (if any): its destination may already be live (committed but
// unapplied), and once journaled at PhaseAdded its source may already
// be dropped. It returns a description of the first divergence in
// (object, node) order — sorted, so the same inconsistency always
// reports the same divergence — or "" when consistent.
func (a *MemActuator) Diff(pl *placement.Placement, inflight *InFlight) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	for obj := 0; obj < pl.B(); obj++ {
		want := make(map[int]bool)
		for _, nd := range pl.ReplicaNodes(obj) {
			want[nd] = true
		}
		got := a.replicas[obj]
		for _, nd := range sortedKeys(got) {
			if !want[nd] {
				if inflight != nil && inflight.Move.Obj == obj && inflight.Move.To == nd {
					continue // committed but unapplied: destination live early
				}
				return fmt.Sprintf("obj %d: stray live replica on node %d", obj, nd)
			}
		}
		for _, nd := range sortedKeys(want) {
			if !got[nd] {
				if inflight != nil && inflight.Phase == PhaseAdded &&
					inflight.Move.Obj == obj && inflight.Move.From == nd {
					continue // roll-forward pending: source dropped early
				}
				return fmt.Sprintf("obj %d: missing live replica on node %d", obj, nd)
			}
		}
	}
	return ""
}

// sortedKeys returns m's keys in ascending order.
func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
