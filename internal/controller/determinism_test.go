package controller

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/topology"
)

// TestReconcileProbeWorkersDeterministic pins the parallel-planning
// contract: the same mutation script, driven through controllers that
// differ only in ProbeWorkers, produces byte-identical step reports at
// every step — the batched probe fan-out changes wall-clock only, never
// the chosen moves, damages, or outcomes. Run under -race this also
// exercises the fork/shared-memo concurrency.
func TestReconcileProbeWorkersDeterministic(t *testing.T) {
	const (
		n, r, b = 24, 3, 40
		steps   = 60
		maxDown = 6
	)
	topo, err := topology.UniformTree(n, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := func(workers int) Options {
		return Options{
			CallTimeout:  100 * time.Millisecond,
			Backoff:      time.Microsecond,
			Sleep:        func(time.Duration) {},
			ProbeWorkers: workers,
		}
	}
	build := func(workers int) *Controller {
		pl := ringPlacement(t, n, r, b)
		c, err := New(pl, Config{
			Topo: topo, Level: topology.Leaf, S: 2, DFail: 1, MaxMoves: 2,
			Actuator: NewMemActuator(pl),
			Journal:  filepath.Join(t.TempDir(), "det.json"),
			Opts:     opts(workers),
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := build(1)
	parallel := build(8)

	// One generator feeds both controllers the identical script: the
	// gen's status/cap mirror stays truthful because both apply every
	// mutation.
	rng := rand.New(rand.NewSource(303))
	statuses := make([]NodeStatus, n)
	capped := map[string]bool{}
	gen := newMutationGen(rng, topo, statuses, capped, maxDown)

	step := func(i int, what string, s, p *StepReport, serr, perr error) {
		t.Helper()
		if serr != nil || perr != nil {
			t.Fatalf("step %d %s: serial err %v, parallel err %v", i, what, serr, perr)
		}
		if !reflect.DeepEqual(s, p) {
			t.Fatalf("step %d %s: reports diverge\nserial:   %+v\nparallel: %+v", i, what, s, p)
		}
	}
	for i := 0; i < steps; i++ {
		mut := gen()
		sr, serr := serial.Apply(mut)
		pr, perr := parallel.Apply(mut)
		step(i, "apply", sr, pr, serr, perr)
		if i%5 == 4 {
			sr, serr = serial.Step()
			pr, perr = parallel.Step()
			step(i, "drain", sr, pr, serr, perr)
		}
	}
	// The plans agreed step for step, so the logical placements must
	// have converged to the same state too.
	if !reflect.DeepEqual(serial.Placement(), parallel.Placement()) {
		t.Fatal("placements diverged despite identical step reports")
	}
	// Sanity: the parallel controller really forked workers.
	if st := parallel.SessionStats(); st.Forks == 0 || st.BatchProbes == 0 {
		t.Fatalf("parallel controller never forked: %+v", st)
	}
	if st := serial.SessionStats(); st.Forks != 0 {
		t.Fatalf("serial controller forked: %+v", st)
	}
}
