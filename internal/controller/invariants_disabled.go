//go:build !invariants

package controller

// InvariantsEnabled reports whether the build carries the runtime
// invariant assertions (`go test -tags invariants`).
const InvariantsEnabled = false

// invariantState is empty in regular builds; the hook calls inline
// away entirely.
type invariantState struct{}

func (invariantState) init(int, *InFlight)        {}
func (invariantState) notePrepared()              {}
func (invariantState) noteCommitted()             {}
func (invariantState) noteAborted()               {}
func (invariantState) checkJournal(int, *InFlight) {}
