package controller

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MutationKind names one kind of topology churn the controller
// reconciles against.
//
//replicalint:exhaustive
type MutationKind string

const (
	// MutDrain marks a node draining: it keeps serving, but every
	// replica on it must migrate off and it stops being a move target.
	MutDrain MutationKind = "drain"
	// MutFail marks a node failed: replicas on it are at risk and
	// evacuate with top priority; it cannot be a move target.
	MutFail MutationKind = "fail"
	// MutRestore returns a drained or failed node to active service.
	// The node universe is fixed (placement shapes are immutable), so a
	// "node join" is a restore of one of the N provisioned slots.
	MutRestore MutationKind = "restore"
	// MutWeight changes a node's weight (>= 1). Weights order move
	// targets — lighter-loaded, higher-capacity nodes absorb replicas
	// first — but the availability invariant stays in object counts.
	MutWeight MutationKind = "weight"
	// MutCap changes a named domain's replica cap at any tree level
	// (0 lifts the cap). A tightened cap makes the controller shed
	// replicas from the over-cap subtree, never-degrade permitting.
	MutCap MutationKind = "cap"
)

// Mutation is one topology change consumed by the reconcile loop.
type Mutation struct {
	Kind   MutationKind `json:"kind"`
	Node   int          `json:"node,omitempty"`   // drain / fail / restore / weight
	Weight int          `json:"weight,omitempty"` // weight: the new node weight
	Domain string       `json:"domain,omitempty"` // cap: domain name, any level
	Cap    int          `json:"cap,omitempty"`    // cap: the new cap (0 = unlimited)
}

func (m Mutation) String() string {
	switch m.Kind {
	case MutDrain, MutFail, MutRestore:
		return fmt.Sprintf("%s %d", m.Kind, m.Node)
	case MutWeight:
		return fmt.Sprintf("weight %d %d", m.Node, m.Weight)
	case MutCap:
		return fmt.Sprintf("cap %s %d", m.Domain, m.Cap)
	default:
		// Unknown kinds (hand-built Mutation values) print raw.
		return fmt.Sprintf("%s %d", m.Kind, m.Node)
	}
}

// ParseScript reads a mutation script: one mutation per line, blank
// lines and '#' comments ignored.
//
//	drain <node>
//	fail <node>
//	restore <node>
//	weight <node> <w>
//	cap <domain> <n>
func ParseScript(r io.Reader) ([]Mutation, error) {
	var muts []Mutation
	sc := bufio.NewScanner(r)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		m, err := parseMutation(fields)
		if err != nil {
			return nil, fmt.Errorf("controller: script line %d: %w", lineNo, err)
		}
		muts = append(muts, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("controller: reading script: %w", err)
	}
	return muts, nil
}

func parseMutation(fields []string) (Mutation, error) {
	atoi := func(s, what string) (int, error) {
		v, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("%s %q is not an integer", what, s)
		}
		return v, nil
	}
	kind := MutationKind(fields[0])
	switch kind {
	case MutDrain, MutFail, MutRestore:
		if len(fields) != 2 {
			return Mutation{}, fmt.Errorf("%s takes exactly one node argument", kind)
		}
		nd, err := atoi(fields[1], "node")
		if err != nil {
			return Mutation{}, err
		}
		return Mutation{Kind: kind, Node: nd}, nil
	case MutWeight:
		if len(fields) != 3 {
			return Mutation{}, fmt.Errorf("weight takes <node> <w>")
		}
		nd, err := atoi(fields[1], "node")
		if err != nil {
			return Mutation{}, err
		}
		w, err := atoi(fields[2], "weight")
		if err != nil {
			return Mutation{}, err
		}
		if w < 1 {
			return Mutation{}, fmt.Errorf("weight %d must be >= 1", w)
		}
		return Mutation{Kind: MutWeight, Node: nd, Weight: w}, nil
	case MutCap:
		if len(fields) != 3 {
			return Mutation{}, fmt.Errorf("cap takes <domain> <n>")
		}
		c, err := atoi(fields[2], "cap")
		if err != nil {
			return Mutation{}, err
		}
		if c < 0 {
			return Mutation{}, fmt.Errorf("cap %d must be >= 0 (0 lifts the cap)", c)
		}
		return Mutation{Kind: MutCap, Domain: fields[1], Cap: c}, nil
	default:
		return Mutation{}, fmt.Errorf("unknown mutation %q (drain|fail|restore|weight|cap)", fields[0])
	}
}
