package controller

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
)

// FaultProfile sets the per-call injection rates of a FaultActuator.
// The three rates are checked in order (crash, hang, fail) against one
// uniform draw each, so a schedule is fully determined by the seed and
// the call sequence.
type FaultProfile struct {
	// CrashRate simulates the controller process dying at this call:
	// the actuator returns ErrCrashed. Half the crashes land before the
	// operation (nothing happened), half after (the operation completed
	// but the controller never learned) — the two windows crash
	// recovery must distinguish.
	CrashRate float64
	// HangRate blocks the call until its context deadline and returns
	// the context error; the operation is not performed. The executor
	// sees a timeout and retries.
	HangRate float64
	// FailRate fails the call cleanly before the operation.
	FailRate float64
}

// FaultActuator wraps an inner Actuator with deterministic seeded
// fault injection: probabilistic clean failures, hangs until the
// per-call deadline, and simulated crashes before or after the inner
// operation. The controller serializes actuation, so the same seed and
// mutation schedule replays the same fault schedule — the property the
// soak and the reconcile goldens rely on.
type FaultActuator struct {
	mu    sync.Mutex
	inner Actuator
	rng   *rand.Rand
	prof  FaultProfile

	// Counters (read with Counts after the run).
	calls, failures, hangs, crashes int
}

// NewFaultActuator seeds a fault-injecting wrapper around inner.
func NewFaultActuator(inner Actuator, seed int64, prof FaultProfile) *FaultActuator {
	return &FaultActuator{inner: inner, rng: rand.New(rand.NewSource(seed)), prof: prof}
}

// Counts reports (calls, clean failures, hangs, crashes) injected so far.
func (f *FaultActuator) Counts() (calls, failures, hangs, crashes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.failures, f.hangs, f.crashes
}

// verdict is one call's drawn fate.
type verdict int

const (
	vOK verdict = iota
	vFail
	vHang
	vCrashBefore
	vCrashAfter
)

func (f *FaultActuator) draw() verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if r := f.rng.Float64(); r < f.prof.CrashRate {
		f.crashes++
		if f.rng.Float64() < 0.5 {
			return vCrashBefore
		}
		return vCrashAfter
	}
	if f.rng.Float64() < f.prof.HangRate {
		f.hangs++
		return vHang
	}
	if f.rng.Float64() < f.prof.FailRate {
		f.failures++
		return vFail
	}
	return vOK
}

func (f *FaultActuator) call(ctx context.Context, op string, inner func(context.Context) error) error {
	switch f.draw() {
	case vFail:
		return fmt.Errorf("actuator: %s failed (injected)", op)
	case vHang:
		<-ctx.Done()
		return fmt.Errorf("actuator: %s hung (injected): %w", op, ctx.Err())
	case vCrashBefore:
		return ErrCrashed
	case vCrashAfter:
		if err := inner(ctx); err != nil {
			return err
		}
		return ErrCrashed
	}
	return inner(ctx)
}

func (f *FaultActuator) PrepareAdd(ctx context.Context, m Move) error {
	return f.call(ctx, "prepare", func(ctx context.Context) error { return f.inner.PrepareAdd(ctx, m) })
}

func (f *FaultActuator) CommitAdd(ctx context.Context, m Move) error {
	return f.call(ctx, "add", func(ctx context.Context) error { return f.inner.CommitAdd(ctx, m) })
}

func (f *FaultActuator) DropOld(ctx context.Context, m Move) error {
	return f.call(ctx, "drop", func(ctx context.Context) error { return f.inner.DropOld(ctx, m) })
}

func (f *FaultActuator) Abort(ctx context.Context, m Move) error {
	return f.call(ctx, "abort", func(ctx context.Context) error { return f.inner.Abort(ctx, m) })
}
