//go:build !invariants

package controller

import "testing"

// TestInvariantsCompiledOut pins the default-build contract: the shadow
// is an empty struct and every hook is a no-op.
func TestInvariantsCompiledOut(t *testing.T) {
	if InvariantsEnabled {
		t.Fatal("InvariantsEnabled = true without the invariants tag")
	}
	var st invariantState
	st.checkJournal(5, nil)
	st.checkJournal(1, &InFlight{Phase: PhaseAdded}) // would panic if live
}
